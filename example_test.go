package goflay_test

import (
	"context"
	"fmt"
	"log"
	"time"

	goflay "repro"
	"repro/internal/progs"
)

// fig3Insert is the running example's table entry: a ternary match on
// the ethernet type steering to the "set" action.
func fig3Insert(i uint64) *goflay.Update {
	return &goflay.Update{
		Kind:  goflay.InsertEntry,
		Table: "Ingress.eth_table",
		Entry: &goflay.TableEntry{
			Matches: []goflay.FieldMatch{{
				Kind:  goflay.MatchTernary,
				Value: goflay.NewBV(48, 0x100+i),
				Mask:  goflay.NewBV2(48, 0, 0xFFFFFFFFFFFF),
			}},
			Action: "set",
			Params: []goflay.BV{goflay.NewBV(16, i)},
		},
	}
}

// Open with functional options — the current configuration surface.
// Each With* option adjusts one knob; omitted knobs keep their
// defaults.
func ExampleOpen() {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source,
		goflay.WithWorkers(4),
		goflay.WithOverapproxThreshold(100),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	d := pipe.Apply(fig3Insert(1))
	fmt.Println(d.Kind, pipe.Entries("Ingress.eth_table"))
	// Output: recompile 1
}

// The deprecated Options struct still works wherever an Option is
// accepted: it applies itself wholesale, so existing positional
// call sites keep compiling unchanged. New code should prefer the
// functional options of ExampleOpen.
func ExampleOptions() {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source, goflay.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	d := pipe.Apply(fig3Insert(1))
	fmt.Println(d.Kind, len(pipe.Tables()))
	// Output: recompile 1
}

// ApplyCtx attaches a latency budget to one update. Within budget the
// engine answers precisely; when the projected precise cost would blow
// the deadline it degrades the table to the overapproximated
// assignment instead (Decision.Degraded reports which happened), and
// the background repair loop promotes it back during quiescence.
func ExamplePipeline_ApplyCtx() {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source)
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d := pipe.ApplyCtx(ctx, fig3Insert(1))
	fmt.Println(d.Kind, d.Degraded)
	// Output: recompile false
}
