// Package goflay is a from-scratch Go implementation of Flay, the
// incremental specializing compiler for network programs from
// "Incremental Specialization of Network Programs" (HotNets '24).
//
// A Pipeline wraps a P4 program (goflay's P4-16 subset) together with
// its live control-plane configuration. Every control-plane update is
// routed through a taint map to the program points it can influence;
// Flay re-answers the specialization queries at exactly those points
// and decides whether the update can be forwarded to the device as-is
// (the common case) or whether the affected components must be
// respecialized and recompiled.
//
//	pipe, err := goflay.Open("router", source, goflay.Options{})
//	d := pipe.Apply(&goflay.Update{
//		Kind:  goflay.InsertEntry,
//		Table: "Ingress.route",
//		Entry: &goflay.TableEntry{ ... },
//	})
//	if d.Kind == goflay.Recompile {
//		report, _ := pipe.Compile()
//		install(pipe.SpecializedSource(), report)
//	}
package goflay

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/devcompiler"
	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/progs"
	"repro/internal/rmt"
	"repro/internal/sym"
)

// Re-exported control-plane vocabulary. The aliases make the full
// update model usable through this package alone.
type (
	// Update is one control-plane write (P4Runtime-style).
	Update = controlplane.Update
	// TableEntry is one match-action entry.
	TableEntry = controlplane.TableEntry
	// FieldMatch is one key component of an entry.
	FieldMatch = controlplane.FieldMatch
	// ActionCall names an action with bound parameters.
	ActionCall = controlplane.ActionCall
	// ValueSetMember is one parser value-set member.
	ValueSetMember = controlplane.ValueSetMember
	// Decision reports what Flay did with an update.
	Decision = core.Decision
	// Stats aggregates engine counters.
	Stats = core.Stats
	// BV is a bitvector value (match keys, masks, action parameters).
	BV = sym.BV
)

// Re-exported observability vocabulary (the internal/obs package made
// public). A Pipeline carries nil instruments by default — fully
// disabled, with zero allocation on the update path — and Options
// switches each one on independently.
type (
	// Trace records structured spans (parse → dataflow → taint → query
	// → pass) with parent/child links and integer attributes.
	Trace = obs.Trace
	// Span is one recorded region of pipeline work.
	Span = obs.Span
	// SpanID identifies a span within a Trace (0 = none).
	SpanID = obs.SpanID
	// Metrics is a named-instrument registry (counters, gauges,
	// bounded-memory latency histograms).
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot summarizes one histogram (count/sum/min/max and
	// p50/p95/p99).
	HistogramSnapshot = obs.HistogramSnapshot
	// AuditTrail is the decision audit trail: one AuditRecord per
	// control-plane update the engine decided.
	AuditTrail = obs.Trail
	// AuditRecord is one specialization verdict, made inspectable.
	AuditRecord = obs.AuditRecord
	// PointChange is one program point whose verdict flipped during an
	// update.
	PointChange = obs.PointChange
)

// NewTrace returns an empty span tracer.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewAuditTrail returns an audit trail keeping at most limit records;
// limit <= 0 keeps every record.
func NewAuditTrail(limit int) *AuditTrail { return obs.NewTrail(limit) }

// Update kinds.
const (
	InsertEntry  = controlplane.InsertEntry
	ModifyEntry  = controlplane.ModifyEntry
	DeleteEntry  = controlplane.DeleteEntry
	SetDefault   = controlplane.SetDefault
	SetValueSet  = controlplane.SetValueSet
	FillRegister = controlplane.FillRegister
)

// Match kinds.
const (
	MatchExact    = controlplane.MatchExact
	MatchTernary  = controlplane.MatchTernary
	MatchLPM      = controlplane.MatchLPM
	MatchOptional = controlplane.MatchOptional
)

// Decision kinds.
const (
	// Forward: the update does not change the program's implementation.
	Forward = core.Forward
	// Recompile: affected components must be respecialized.
	Recompile = core.Recompile
	// Rejected: the update failed validation.
	Rejected = core.Rejected
)

// NewBV builds a bitvector value of the given width from lo.
func NewBV(width uint16, lo uint64) BV { return sym.NewBV(width, lo) }

// NewBV2 builds a wide bitvector from (hi, lo) 64-bit limbs.
func NewBV2(width uint16, hi, lo uint64) BV { return sym.NewBV2(width, hi, lo) }

// Target selects the device backend for Compile.
type Target = devcompiler.Target

// Device backends.
const (
	// TargetTofino lowers onto the RMT pipeline model (stage
	// allocation, TCAM/SRAM/PHV accounting).
	TargetTofino = devcompiler.TargetTofino
	// TargetBMv2 targets the software switch.
	TargetBMv2 = devcompiler.TargetBMv2
)

// Quality selects how aggressively the specializer rewrites the
// program — the recompilation-time vs specialization-quality tradeoff
// (paper §6).
type Quality = core.Quality

// Quality levels, most to least aggressive.
const (
	QualityFull        = core.QualityFull
	QualityNoNarrowing = core.QualityNoNarrowing
	QualityDCEOnly     = core.QualityDCEOnly
	QualityNone        = core.QualityNone
)

// Options configures Open.
type Options struct {
	// SkipParser skips parser analysis (useful for very large programs;
	// the paper does this for switch.p4).
	SkipParser bool
	// OverapproxThreshold is the per-table entry count past which the
	// table's control-plane assignment is overapproximated (default
	// 100; negative disables overapproximation entirely).
	OverapproxThreshold int
	// Target selects the device backend for Compile (default Tofino).
	Target Target
	// Quality selects specialization aggressiveness (default
	// QualityFull).
	Quality Quality
	// Workers bounds the point re-evaluation worker pool: 1 forces
	// serial evaluation, >1 sets the pool size, and <=0 (the default)
	// uses GOMAXPROCS.
	Workers int
	// NoCache disables the taint-keyed specialization-query cache. The
	// cache is on by default and changes no observable decision — it
	// only skips redundant solver work — so this switch exists for
	// ablation measurements and differential testing.
	NoCache bool

	// Tracer, when non-nil, records a span per pipeline stage and per
	// update. Metrics, when non-nil, resolves the engine's counters,
	// gauges and latency histograms. Audit, when non-nil, receives the
	// decision audit trail. Each defaults to nil (disabled, no update-
	// path allocation).
	Tracer  *Trace
	Metrics *Metrics
	Audit   *AuditTrail
}

// Pipeline is a live program + configuration pair under incremental
// specialization.
type Pipeline struct {
	spec    *core.Specializer
	target  Target
	tracer  *Trace
	metrics *Metrics
	audit   *AuditTrail
}

// Open parses, type-checks and analyzes a program, then runs the
// initial specialization pass under the empty (device-default)
// configuration.
func Open(name, source string, opts Options) (*Pipeline, error) {
	s, err := core.NewFromSource(name, source, core.Options{
		SkipParser:          opts.SkipParser,
		OverapproxThreshold: opts.OverapproxThreshold,
		Quality:             opts.Quality,
		Workers:             opts.Workers,
		NoCache:             opts.NoCache,
		Trace:               opts.Tracer,
		Metrics:             opts.Metrics,
		Audit:               opts.Audit,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		spec:    s,
		target:  opts.Target,
		tracer:  opts.Tracer,
		metrics: opts.Metrics,
		audit:   opts.Audit,
	}, nil
}

// OpenCatalog opens a pipeline over one of the evaluation catalog
// programs (internal/progs) by name — the long-running service's way
// of loading a program without shipping P4 source over the wire. The
// catalog entry's parser accommodation (switch.p4 skips parser
// analysis) is applied on top of opts.
func OpenCatalog(name string, opts Options) (*Pipeline, error) {
	p, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	if p.SkipParser {
		opts.SkipParser = true
	}
	return Open(p.Name, p.Source, opts)
}

// CatalogNames lists the loadable catalog program names.
func CatalogNames() []string {
	var out []string
	for _, p := range progs.Catalog() {
		out = append(out, p.Name)
	}
	return out
}

// Generation counts the pipeline's state-changing updates (forwarded +
// recompiled). A host that checkpoints sessions snapshots only when the
// generation moved since its last snapshot; the counter survives
// Snapshot/Restore, so it is comparable across warm restarts.
func (p *Pipeline) Generation() uint64 { return p.spec.Generation() }

// Snapshot serializes the pipeline's complete warm state — program,
// installed configuration, verdict map, liveness witnesses and query
// cache — to portable bytes. Restore rebuilds an equivalent pipeline
// from them, skipping the initial specialization pass; replaying the
// remaining update stream on the restored pipeline yields exactly the
// decisions the uninterrupted run would have produced.
func (p *Pipeline) Snapshot() ([]byte, error) { return p.spec.Snapshot() }

// Restore rebuilds a pipeline from Snapshot bytes. The snapshot
// dictates the verdict-shaping options (quality, overapproximation
// threshold, parser skipping); runtime options — Target, Workers,
// NoCache, observability — come from opts. Corrupted or truncated
// input yields an error, never a panic.
func Restore(data []byte, opts Options) (*Pipeline, error) {
	s, err := core.Restore(data, core.Options{
		Workers: opts.Workers,
		NoCache: opts.NoCache,
		Trace:   opts.Tracer,
		Metrics: opts.Metrics,
		Audit:   opts.Audit,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		spec:    s,
		target:  opts.Target,
		tracer:  opts.Tracer,
		metrics: opts.Metrics,
		audit:   opts.Audit,
	}, nil
}

// Apply processes one control-plane update and returns Flay's decision.
// Rejected updates leave all state unchanged.
//
// A Pipeline is safe for concurrent use: Apply/ApplyBatch serialize
// against each other, and Statistics, SpecializedProgram and Compile
// may run concurrently with them from other goroutines.
func (p *Pipeline) Apply(u *Update) *Decision { return p.spec.Apply(u) }

// ApplyAll processes a batch one update at a time and returns the
// per-update decisions. It is the sequential baseline; ApplyBatch is
// the coalescing fast path with identical end state.
func (p *Pipeline) ApplyAll(updates []*Update) []*Decision {
	out := make([]*Decision, len(updates))
	for i, u := range updates {
		out[i] = p.spec.Apply(u)
	}
	return out
}

// ApplyBatch processes a batch of updates as one atomic configuration
// transition: per-target assignments are recompiled once and the union
// of tainted program points is re-evaluated in a single parallel pass,
// instead of once per update. The resulting engine state is identical
// to ApplyAll on the same slice; decisions are attributed per target
// group (see core.Specializer.ApplyBatch).
func (p *Pipeline) ApplyBatch(updates []*Update) []*Decision {
	return p.spec.ApplyBatch(updates)
}

// Statistics returns engine counters (points, update timings,
// forward/recompile counts).
func (p *Pipeline) Statistics() Stats { return p.spec.Statistics() }

// Tracer returns the span tracer the pipeline was opened with, or nil
// when tracing is disabled.
func (p *Pipeline) Tracer() *Trace { return p.tracer }

// Metrics returns the metrics registry the pipeline was opened with, or
// nil when metrics are disabled.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// Audit returns the decision audit trail the pipeline was opened with,
// or nil when auditing is disabled.
func (p *Pipeline) Audit() *AuditTrail { return p.audit }

// Tables lists the program's qualified table names in apply order.
func (p *Pipeline) Tables() []string {
	return append([]string(nil), p.spec.An.TableOrder...)
}

// Entries returns the installed entry count of a table.
func (p *Pipeline) Entries(table string) int { return p.spec.Cfg.NumEntries(table) }

// SpecializedProgram returns the AST of the program specialized to the
// current configuration.
func (p *Pipeline) SpecializedProgram() *ast.Program { return p.spec.SpecializedProgram() }

// SpecializedSource renders the specialized program as P4 source.
func (p *Pipeline) SpecializedSource() string { return ast.Print(p.spec.SpecializedProgram()) }

// OriginalSource renders the original (unspecialized) program.
func (p *Pipeline) OriginalSource() string { return ast.Print(p.spec.Prog) }

// CompileReport is the outcome of a device compile.
type CompileReport struct {
	Target       Target
	Statements   int
	Tables       int
	ModelSeconds float64
	// Stage/resource figures are present for the Tofino target.
	Stages     int
	MaxStages  int
	Feasible   bool
	TCAMBlocks int
	SRAMBlocks int
	PHVBits    int
}

func (r CompileReport) String() string {
	if r.MaxStages > 0 {
		return fmt.Sprintf("[%s] %d stmts, %d tables, %d/%d stages, %d TCAM, %d SRAM, %d PHV bits, model %.1fs",
			r.Target, r.Statements, r.Tables, r.Stages, r.MaxStages, r.TCAMBlocks, r.SRAMBlocks, r.PHVBits, r.ModelSeconds)
	}
	return fmt.Sprintf("[%s] %d stmts, %d tables, model %.1fs", r.Target, r.Statements, r.Tables, r.ModelSeconds)
}

// Compile lowers the current specialized program onto the configured
// target device.
func (p *Pipeline) Compile() (CompileReport, error) {
	return p.compileProgram(p.spec.SpecializedProgram())
}

// CompileOriginal lowers the unspecialized program (for
// before/after-specialization comparisons).
func (p *Pipeline) CompileOriginal() (CompileReport, error) {
	return p.compileProgram(p.spec.Prog)
}

func (p *Pipeline) compileProgram(prog *ast.Program) (CompileReport, error) {
	comp := devcompiler.New(p.target)
	res, err := comp.Compile(prog)
	if err != nil {
		return CompileReport{}, err
	}
	rep := CompileReport{
		Target:       p.target,
		Statements:   res.Statements,
		Tables:       res.Tables,
		ModelSeconds: res.ModelSeconds,
	}
	if res.Allocation != nil {
		rep.Stages = res.Allocation.StagesUsed
		rep.MaxStages = res.Allocation.Device.Stages
		rep.Feasible = res.Allocation.Feasible
		rep.TCAMBlocks = res.Allocation.TCAMBlocks
		rep.SRAMBlocks = res.Allocation.SRAMBlocks
		rep.PHVBits = res.Allocation.PHVBits
	}
	return rep, nil
}

// Device returns the Tofino-like device profile used by the Tofino
// backend.
func Device() rmt.Device { return rmt.Tofino2() }
