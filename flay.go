// Package goflay is a from-scratch Go implementation of Flay, the
// incremental specializing compiler for network programs from
// "Incremental Specialization of Network Programs" (HotNets '24).
//
// A Pipeline wraps a P4 program (goflay's P4-16 subset) together with
// its live control-plane configuration. Every control-plane update is
// routed through a taint map to the program points it can influence;
// Flay re-answers the specialization queries at exactly those points
// and decides whether the update can be forwarded to the device as-is
// (the common case) or whether the affected components must be
// respecialized and recompiled.
//
//	pipe, err := goflay.Open("router", source, goflay.WithWorkers(4))
//	d := pipe.Apply(&goflay.Update{
//		Kind:  goflay.InsertEntry,
//		Table: "Ingress.route",
//		Entry: &goflay.TableEntry{ ... },
//	})
//	if d.Kind == goflay.Recompile {
//		report, _ := pipe.Compile()
//		install(pipe.SpecializedSource(), report)
//	}
//
// Latency-sensitive callers hand Apply a budget instead of a bare
// update: ApplyCtx with a context deadline lets the adaptive precision
// controller degrade a table to the conservative overapproximated
// assignment when the precise analysis would miss the deadline (see
// DESIGN.md §4.11). Failures classify with errors.Is against the
// package sentinels (ErrUnknownTable, ErrClosed, ErrDeadlineExceeded,
// ErrSnapshotCorrupt, ErrBackpressure) rather than string matching.
package goflay

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/devcompiler"
	"repro/internal/dpexec"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/progs"
	"repro/internal/rmt"
	"repro/internal/sym"
)

// Typed sentinel errors. Every error the pipeline (and the flayd
// client) returns for one of these conditions satisfies
// errors.Is(err, sentinel), across process boundaries: internal/wire
// maps each sentinel to a machine-readable error code plus HTTP status,
// and internal/client maps responses back.
var (
	// ErrUnknownTable: an update or query named a table (or value set /
	// register target) the program does not declare.
	ErrUnknownTable = flayerr.ErrUnknownTable
	// ErrClosed: the pipeline, session or server has shut down. No state
	// was modified.
	ErrClosed = flayerr.ErrClosed
	// ErrDeadlineExceeded: the call's latency budget expired before the
	// work was attempted. Also satisfies
	// errors.Is(err, context.DeadlineExceeded).
	ErrDeadlineExceeded = flayerr.ErrDeadlineExceeded
	// ErrSnapshotCorrupt: Restore rejected the snapshot bytes
	// (truncation, checksum mismatch, or fields inconsistent with the
	// embedded program).
	ErrSnapshotCorrupt = flayerr.ErrSnapshotCorrupt
	// ErrBackpressure: a bounded queue was full and the write was shed
	// (HTTP 429 on the wire).
	ErrBackpressure = flayerr.ErrBackpressure
	// ErrExecDisabled: Exec/ExecBatch was called on a pipeline opened
	// without WithExec.
	ErrExecDisabled = flayerr.ErrExecDisabled
	// ErrBadPacket: a wire exec request carried a malformed packet.
	ErrBadPacket = flayerr.ErrBadPacket
)

// ExecResult is the observable outcome of executing one packet against
// the pipeline's current specialized program (see Pipeline.Exec).
type ExecResult = dpexec.Result

// PinnedExec is a batch-level pin of one published executable image;
// see Pipeline.PinExec.
type PinnedExec = core.PinnedExec

// Re-exported control-plane vocabulary. The aliases make the full
// update model usable through this package alone.
type (
	// Update is one control-plane write (P4Runtime-style).
	Update = controlplane.Update
	// TableEntry is one match-action entry.
	TableEntry = controlplane.TableEntry
	// FieldMatch is one key component of an entry.
	FieldMatch = controlplane.FieldMatch
	// ActionCall names an action with bound parameters.
	ActionCall = controlplane.ActionCall
	// ValueSetMember is one parser value-set member.
	ValueSetMember = controlplane.ValueSetMember
	// Decision reports what Flay did with an update.
	Decision = core.Decision
	// Stats aggregates engine counters.
	Stats = core.Stats
	// BV is a bitvector value (match keys, masks, action parameters).
	BV = sym.BV
	// Explanation is the introspection record of one program point: the
	// specialization query, the verdict, and — when the point's
	// condition is compiled in the decision-diagram core — the exact
	// predicate path and witness assignment behind it (see
	// Pipeline.Explain).
	Explanation = core.Explanation
	// ExplainStep is one predicate test along an explained path.
	ExplainStep = core.ExplainStep
)

// Re-exported observability vocabulary (the internal/obs package made
// public). A Pipeline carries nil instruments by default — fully
// disabled, with zero allocation on the update path — and Options
// switches each one on independently.
type (
	// Trace records structured spans (parse → dataflow → taint → query
	// → pass) with parent/child links and integer attributes.
	Trace = obs.Trace
	// Span is one recorded region of pipeline work.
	Span = obs.Span
	// SpanID identifies a span within a Trace (0 = none).
	SpanID = obs.SpanID
	// Metrics is a named-instrument registry (counters, gauges,
	// bounded-memory latency histograms).
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot summarizes one histogram (count/sum/min/max and
	// p50/p95/p99).
	HistogramSnapshot = obs.HistogramSnapshot
	// AuditTrail is the decision audit trail: one AuditRecord per
	// control-plane update the engine decided.
	AuditTrail = obs.Trail
	// AuditRecord is one specialization verdict, made inspectable.
	AuditRecord = obs.AuditRecord
	// PointChange is one program point whose verdict flipped during an
	// update.
	PointChange = obs.PointChange
)

// NewTrace returns an empty span tracer.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewAuditTrail returns an audit trail keeping at most limit records;
// limit <= 0 keeps every record.
func NewAuditTrail(limit int) *AuditTrail { return obs.NewTrail(limit) }

// Update kinds.
const (
	InsertEntry  = controlplane.InsertEntry
	ModifyEntry  = controlplane.ModifyEntry
	DeleteEntry  = controlplane.DeleteEntry
	SetDefault   = controlplane.SetDefault
	SetValueSet  = controlplane.SetValueSet
	FillRegister = controlplane.FillRegister
)

// Match kinds.
const (
	MatchExact    = controlplane.MatchExact
	MatchTernary  = controlplane.MatchTernary
	MatchLPM      = controlplane.MatchLPM
	MatchOptional = controlplane.MatchOptional
)

// Decision kinds.
const (
	// Forward: the update does not change the program's implementation.
	Forward = core.Forward
	// Recompile: affected components must be respecialized.
	Recompile = core.Recompile
	// Rejected: the update failed validation.
	Rejected = core.Rejected
)

// NewBV builds a bitvector value of the given width from lo.
func NewBV(width uint16, lo uint64) BV { return sym.NewBV(width, lo) }

// NewBV2 builds a wide bitvector from (hi, lo) 64-bit limbs.
func NewBV2(width uint16, hi, lo uint64) BV { return sym.NewBV2(width, hi, lo) }

// Target selects the device backend for Compile.
type Target = devcompiler.Target

// Device backends.
const (
	// TargetTofino lowers onto the RMT pipeline model (stage
	// allocation, TCAM/SRAM/PHV accounting).
	TargetTofino = devcompiler.TargetTofino
	// TargetBMv2 targets the software switch.
	TargetBMv2 = devcompiler.TargetBMv2
)

// Quality selects how aggressively the specializer rewrites the
// program — the recompilation-time vs specialization-quality tradeoff
// (paper §6).
type Quality = core.Quality

// Quality levels, most to least aggressive.
const (
	QualityFull        = core.QualityFull
	QualityNoNarrowing = core.QualityNoNarrowing
	QualityDCEOnly     = core.QualityDCEOnly
	QualityNone        = core.QualityNone
)

// Option configures Open, OpenCatalog and Restore. Options are built
// with the With* constructors:
//
//	pipe, err := goflay.Open(name, src,
//		goflay.WithWorkers(4), goflay.WithMetrics(reg))
type Option func(*options)

// options is the resolved configuration an Option list folds into.
type options struct {
	skipParser          bool
	overapproxThreshold int
	target              Target
	quality             Quality
	workers             int
	noCache             bool
	noDD                bool
	repairInterval      time.Duration
	exec                bool
	tracer              *Trace
	metrics             *Metrics
	audit               *AuditTrail
}

// WithSkipParser skips parser analysis (the paper does this for
// switch.p4).
func WithSkipParser() Option {
	return func(o *options) { o.skipParser = true }
}

// WithOverapproxThreshold sets the per-table entry count past which the
// table's assignment is overapproximated (default 100; negative
// disables overapproximation entirely).
func WithOverapproxThreshold(n int) Option {
	return func(o *options) { o.overapproxThreshold = n }
}

// WithTarget selects the device backend for Compile (default Tofino).
func WithTarget(t Target) Option {
	return func(o *options) { o.target = t }
}

// WithQuality selects specialization aggressiveness (default
// QualityFull).
func WithQuality(q Quality) Option {
	return func(o *options) { o.quality = q }
}

// WithWorkers bounds the point re-evaluation worker pool: 1 forces
// serial evaluation, >1 sets the pool size, and <=0 (the default) uses
// GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithNoCache disables the taint-keyed specialization-query cache (for
// ablation measurements and differential testing).
func WithNoCache() Option {
	return func(o *options) { o.noCache = true }
}

// WithNoDD disables the canonical decision-diagram query core: every
// specialization query then runs on the substitute-and-probe solver
// path, and Explain reports solver-path verdicts without diagram
// evidence. The core is on by default and changes no observable
// verdict — this switch exists for ablation measurements and the
// DD-vs-solver differential suite.
func WithNoDD() Option {
	return func(o *options) { o.noDD = true }
}

// WithRepairInterval paces the adaptive precision controller's
// background repair goroutine: after d of quiescence, degraded tables
// are differentially checked and promoted back to precise. Zero selects
// the default (100ms); negative disables background repair (promotion
// then only happens through PromoteAll).
func WithRepairInterval(d time.Duration) Option {
	return func(o *options) { o.repairInterval = d }
}

// WithExec enables the data-plane executor: every verdict-changing
// epoch publication also compiles the specialized program into a
// flattened match-action image and atomically hot-swaps it, making
// Pipeline.Exec/ExecBatch available. Off by default (the image compile
// adds work to the update path that pure control-plane users never
// need).
func WithExec() Option {
	return func(o *options) { o.exec = true }
}

// WithTracer records a span per pipeline stage and per update.
func WithTracer(t *Trace) Option {
	return func(o *options) { o.tracer = t }
}

// WithMetrics resolves the engine's counters, gauges and latency
// histograms in the given registry.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// WithAudit routes the decision audit trail to the given trail.
func WithAudit(a *AuditTrail) Option {
	return func(o *options) { o.audit = a }
}

// resolveOptions folds a variadic option list into one options value.
func resolveOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Pipeline is a live program + configuration pair under incremental
// specialization.
type Pipeline struct {
	spec    *core.Specializer
	target  Target
	tracer  *Trace
	metrics *Metrics
	audit   *AuditTrail
}

// Open parses, type-checks and analyzes a program, then runs the
// initial specialization pass under the empty (device-default)
// configuration.
func Open(name, source string, opts ...Option) (*Pipeline, error) {
	return open(name, source, resolveOptions(opts))
}

func open(name, source string, o options) (*Pipeline, error) {
	s, err := core.NewFromSource(name, source, core.Options{
		SkipParser:          o.skipParser,
		OverapproxThreshold: o.overapproxThreshold,
		Quality:             o.quality,
		Workers:             o.workers,
		NoCache:             o.noCache,
		NoDD:                o.noDD,
		RepairInterval:      o.repairInterval,
		Exec:                o.exec,
		Trace:               o.tracer,
		Metrics:             o.metrics,
		Audit:               o.audit,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		spec:    s,
		target:  o.target,
		tracer:  o.tracer,
		metrics: o.metrics,
		audit:   o.audit,
	}, nil
}

// OpenCatalog opens a pipeline over one of the evaluation catalog
// programs (internal/progs) by name — the long-running service's way
// of loading a program without shipping P4 source over the wire. The
// catalog entry's parser accommodation (switch.p4 skips parser
// analysis) is applied on top of opts.
func OpenCatalog(name string, opts ...Option) (*Pipeline, error) {
	p, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	if p.SkipParser {
		o.skipParser = true
	}
	return open(p.Name, p.Source, o)
}

// CatalogNames lists the loadable catalog program names.
func CatalogNames() []string {
	var out []string
	for _, p := range progs.Catalog() {
		out = append(out, p.Name)
	}
	return out
}

// Generation counts the pipeline's state-changing updates (forwarded +
// recompiled). A host that checkpoints sessions snapshots only when the
// generation moved since its last snapshot; the counter survives
// Snapshot/Restore, so it is comparable across warm restarts.
func (p *Pipeline) Generation() uint64 { return p.spec.Generation() }

// Epoch returns the engine's published epoch sequence number: the
// version of the wait-free read state. It advances on every mutating
// call (including rejected updates), so two queries bracketed by equal
// Epoch values observed the same consistent state.
func (p *Pipeline) Epoch() uint64 { return p.spec.EpochSeq() }

// Snapshot serializes the pipeline's complete warm state — program,
// installed configuration, verdict map, liveness witnesses and query
// cache — to portable bytes. Restore rebuilds an equivalent pipeline
// from them, skipping the initial specialization pass; replaying the
// remaining update stream on the restored pipeline yields exactly the
// decisions the uninterrupted run would have produced.
func (p *Pipeline) Snapshot() ([]byte, error) { return p.spec.Snapshot() }

// Restore rebuilds a pipeline from Snapshot bytes. The snapshot
// dictates the verdict-shaping options (quality, overapproximation
// threshold, parser skipping); runtime options — Target, Workers,
// NoCache, observability — come from opts. Corrupted or truncated
// input yields an error satisfying errors.Is(err, ErrSnapshotCorrupt),
// never a panic.
func Restore(data []byte, opts ...Option) (*Pipeline, error) {
	o := resolveOptions(opts)
	s, err := core.Restore(data, core.Options{
		Workers:        o.workers,
		NoCache:        o.noCache,
		NoDD:           o.noDD,
		RepairInterval: o.repairInterval,
		Exec:           o.exec,
		Trace:          o.tracer,
		Metrics:        o.metrics,
		Audit:          o.audit,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		spec:    s,
		target:  o.target,
		tracer:  o.tracer,
		metrics: o.metrics,
		audit:   o.audit,
	}, nil
}

// Apply processes one control-plane update and returns Flay's decision.
// Rejected updates leave all state unchanged.
//
// A Pipeline is safe for concurrent use: Apply/ApplyBatch serialize
// against each other, and Statistics, SpecializedProgram and Compile
// may run concurrently with them from other goroutines.
func (p *Pipeline) Apply(u *Update) *Decision { return p.spec.Apply(u) }

// ApplyAll processes a batch one update at a time and returns the
// per-update decisions. It is the sequential baseline; ApplyBatch is
// the coalescing fast path with identical end state.
func (p *Pipeline) ApplyAll(updates []*Update) []*Decision {
	out := make([]*Decision, len(updates))
	for i, u := range updates {
		out[i] = p.spec.Apply(u)
	}
	return out
}

// ApplyBatch processes a batch of updates as one atomic configuration
// transition: per-target assignments are recompiled once and the union
// of tainted program points is re-evaluated in a single parallel pass,
// instead of once per update. The resulting engine state is identical
// to ApplyAll on the same slice; decisions are attributed per target
// group (see core.Specializer.ApplyBatch).
func (p *Pipeline) ApplyBatch(updates []*Update) []*Decision {
	return p.spec.ApplyBatch(updates)
}

// ApplyCtx is Apply with a latency budget: when ctx carries a deadline
// and the projected precise analysis cost of the update does not fit
// the remaining budget, the adaptive precision controller degrades the
// target table to the conservative overapproximated assignment instead
// of blowing the deadline. The decision then reports Degraded=true, and
// a background repair goroutine promotes the table back to precise
// during the next quiescent period. A context already done on entry
// yields a Rejected decision satisfying
// errors.Is(d.Err, ErrDeadlineExceeded).
func (p *Pipeline) ApplyCtx(ctx context.Context, u *Update) *Decision {
	return p.spec.ApplyCtx(ctx, u)
}

// ApplyAllCtx is ApplyAll under one shared latency budget: each update
// runs through ApplyCtx against the same context.
func (p *Pipeline) ApplyAllCtx(ctx context.Context, updates []*Update) []*Decision {
	out := make([]*Decision, len(updates))
	for i, u := range updates {
		out[i] = p.spec.ApplyCtx(ctx, u)
	}
	return out
}

// ApplyBatchCtx is ApplyBatch with a latency budget: the controller
// projects the precise cost of every target the batch touches and
// degrades the most expensive ones until the projection fits the
// remaining budget.
func (p *Pipeline) ApplyBatchCtx(ctx context.Context, updates []*Update) []*Decision {
	return p.spec.ApplyBatchCtx(ctx, updates)
}

// Exec runs one packet through the pipeline's current specialized
// program and returns the observable outcome (drop, egress port,
// multicast group, emitted bytes). Execution is wait-free with respect
// to concurrent control-plane updates: each call runs against the
// image hot-swapped by the most recently published epoch, and an
// in-flight update never blocks or tears a packet. Requires WithExec;
// otherwise the error satisfies errors.Is(err, ErrExecDisabled).
func (p *Pipeline) Exec(data []byte, port uint16) (ExecResult, error) {
	return p.spec.Exec(data, port)
}

// ExecBatch runs a burst of packets against one consistent image (the
// epoch current at entry), with ports[i] as packet i's ingress port
// (missing entries default to 0). The first failing packet aborts the
// batch.
func (p *Pipeline) ExecBatch(packets [][]byte, ports []uint16) ([]ExecResult, error) {
	return p.spec.ExecBatch(packets, ports)
}

// PinExec pins the currently published executable image for a stream of
// packets: the epoch load and machine rental are paid once per pin
// instead of once per packet, and every Run of the pin executes against
// the same program+configuration cut regardless of concurrent updates.
// Exec and ExecBatch are one-pin conveniences over this. A pin is not
// safe for concurrent use; pin per goroutine, and Close it to return
// the machine to the pool. Requires WithExec; otherwise the error
// satisfies errors.Is(err, ErrExecDisabled).
func (p *Pipeline) PinExec() (*PinnedExec, error) { return p.spec.PinExec() }

// Close releases the pipeline's background resources (the precision
// repair goroutine). Updates applied after Close are rejected with
// ErrClosed; read-only accessors keep working. Close is idempotent.
func (p *Pipeline) Close() { p.spec.Close() }

// DegradedTables lists the tables currently pinned to the
// overapproximated assignment by the adaptive precision controller,
// sorted by name.
func (p *Pipeline) DegradedTables() []string { return p.spec.DegradedTables() }

// Degrade pins a table to the overapproximated assignment now — the
// operator-facing form of what the deadline policy does mid-flight.
// Unknown tables yield an error satisfying
// errors.Is(err, ErrUnknownTable).
func (p *Pipeline) Degrade(table string) error { return p.spec.Degrade(table) }

// PromoteAll promotes every degraded table back to the precise
// assignment now, returning the number of unsound degraded verdicts
// observed while re-proving (zero on a healthy engine: degraded
// verdicts are conservative, never wrong).
func (p *Pipeline) PromoteAll() (unsound int, err error) { return p.spec.PromoteAll() }

// DifferentialCheck re-runs the specialization queries of every point
// tainted by a degraded table against the precise assignment, without
// modifying any state, and reports how many installed degraded verdicts
// disagree unsoundly with the precise answer (must be zero).
func (p *Pipeline) DifferentialCheck() (checked, unsound int, err error) {
	return p.spec.DifferentialCheck()
}

// Statistics returns engine counters (points, update timings,
// forward/recompile counts).
func (p *Pipeline) Statistics() Stats { return p.spec.Statistics() }

// Tracer returns the span tracer the pipeline was opened with, or nil
// when tracing is disabled.
func (p *Pipeline) Tracer() *Trace { return p.tracer }

// Metrics returns the metrics registry the pipeline was opened with, or
// nil when metrics are disabled.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// Audit returns the decision audit trail the pipeline was opened with,
// or nil when auditing is disabled.
func (p *Pipeline) Audit() *AuditTrail { return p.audit }

// Tables lists the program's qualified table names in apply order.
func (p *Pipeline) Tables() []string {
	return append([]string(nil), p.spec.An.TableOrder...)
}

// Entries returns the installed entry count of a table.
func (p *Pipeline) Entries(table string) int { return p.spec.Entries(table) }

// Points returns the IDs of the program points the named control-plane
// object (table, value set or register) can influence through the
// taint map, in ascending order — the enumeration half of the
// introspection API: walk Points, Explain each. Unknown names yield an
// error satisfying errors.Is(err, ErrUnknownTable).
func (p *Pipeline) Points(table string) ([]int, error) {
	an := p.spec.An
	if an.Tables[table] == nil && an.ValueSets[table] == nil && an.Registers[table] == nil {
		return nil, fmt.Errorf("goflay: points: %w: %q", ErrUnknownTable, table)
	}
	pts := an.PointsOf(table)
	ids := make([]int, 0, len(pts))
	for _, pt := range pts {
		ids = append(ids, pt.ID)
	}
	sort.Ints(ids)
	return ids, nil
}

// Explain reports how the published verdict at one program point comes
// about: the specialization query asked there, the verdict, and — when
// the point's condition is compiled in the decision-diagram query core
// — the predicates tested along the witness path through the canonical
// diagram together with the witness assignment itself (a liveness
// witness for executability queries, one realizing assignment for
// constancy). table scopes the lookup: when non-empty, the point must
// be one the named object influences (Points(table) lists them); ""
// addresses any point by global ID. Explain is wait-free — it reads
// the published epoch and walks immutable diagram nodes — and may be
// called concurrently with updates from any number of goroutines.
func (p *Pipeline) Explain(table string, point int) (*Explanation, error) {
	if table != "" {
		ids, err := p.Points(table)
		if err != nil {
			return nil, err
		}
		ok := false
		for _, id := range ids {
			if id == point {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("goflay: explain: point %d is not influenced by %q", point, table)
		}
	}
	return p.spec.Explain(point)
}

// SpecializedProgram returns the AST of the program specialized to the
// current configuration.
func (p *Pipeline) SpecializedProgram() *ast.Program { return p.spec.SpecializedProgram() }

// SpecializedSource renders the specialized program as P4 source.
func (p *Pipeline) SpecializedSource() string { return ast.Print(p.spec.SpecializedProgram()) }

// OriginalSource renders the original (unspecialized) program.
func (p *Pipeline) OriginalSource() string { return ast.Print(p.spec.Prog) }

// CompileReport is the outcome of a device compile.
type CompileReport struct {
	Target       Target
	Statements   int
	Tables       int
	ModelSeconds float64
	// Stage/resource figures are present for the Tofino target.
	Stages     int
	MaxStages  int
	Feasible   bool
	TCAMBlocks int
	SRAMBlocks int
	PHVBits    int
}

func (r CompileReport) String() string {
	if r.MaxStages > 0 {
		return fmt.Sprintf("[%s] %d stmts, %d tables, %d/%d stages, %d TCAM, %d SRAM, %d PHV bits, model %.1fs",
			r.Target, r.Statements, r.Tables, r.Stages, r.MaxStages, r.TCAMBlocks, r.SRAMBlocks, r.PHVBits, r.ModelSeconds)
	}
	return fmt.Sprintf("[%s] %d stmts, %d tables, model %.1fs", r.Target, r.Statements, r.Tables, r.ModelSeconds)
}

// Compile lowers the current specialized program onto the configured
// target device.
func (p *Pipeline) Compile() (CompileReport, error) {
	return p.compileProgram(p.spec.SpecializedProgram())
}

// CompileOriginal lowers the unspecialized program (for
// before/after-specialization comparisons).
func (p *Pipeline) CompileOriginal() (CompileReport, error) {
	return p.compileProgram(p.spec.Prog)
}

func (p *Pipeline) compileProgram(prog *ast.Program) (CompileReport, error) {
	comp := devcompiler.New(p.target)
	res, err := comp.Compile(prog)
	if err != nil {
		return CompileReport{}, err
	}
	rep := CompileReport{
		Target:       p.target,
		Statements:   res.Statements,
		Tables:       res.Tables,
		ModelSeconds: res.ModelSeconds,
	}
	if res.Allocation != nil {
		rep.Stages = res.Allocation.StagesUsed
		rep.MaxStages = res.Allocation.Device.Stages
		rep.Feasible = res.Allocation.Feasible
		rep.TCAMBlocks = res.Allocation.TCAMBlocks
		rep.SRAMBlocks = res.Allocation.SRAMBlocks
		rep.PHVBits = res.Allocation.PHVBits
	}
	return rep, nil
}

// Device returns the Tofino-like device profile used by the Tofino
// backend.
func Device() rmt.Device { return rmt.Tofino2() }
