// Quickstart: open a program, watch Flay decide forward-vs-recompile,
// and inspect the specialized implementation — the Fig. 2 workflow on
// the paper's Fig. 5 example program.
package main

import (
	"fmt"
	"log"

	goflay "repro"
)

const source = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { ethernet_t eth; }
struct metadata { }
parser P(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(h.eth); transition accept; }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) { egress_port = port_var; }
    action noop() { }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        h.eth.dst = egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
        std.egress_port = egress_port;
    }
}
`

func main() {
	pipe, err := goflay.Open("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== original program compiled; initial specialization under the empty config ===")
	fmt.Println(pipe.SpecializedSource())
	fmt.Println()

	// A control-plane update that changes behaviour: the empty table
	// gains its first entry, so the specialized implementation (which
	// had removed the table and constant-folded egress_port to 0) must
	// be recompiled.
	entry := &goflay.Update{
		Kind:  goflay.InsertEntry,
		Table: "Ingress.port_table",
		Entry: &goflay.TableEntry{
			Matches: []goflay.FieldMatch{{
				Kind:  goflay.MatchExact,
				Value: goflay.NewBV(48, 0xDEADBEEFF00D),
			}},
			Action: "set",
			Params: []goflay.BV{goflay.NewBV(9, 1)},
		},
	}
	d := pipe.Apply(entry)
	fmt.Printf("update 1: %s\n", d)

	// A second, similar entry does not change the implementation — it
	// is forwarded to the device without recompilation (the fast path
	// the paper's incremental design exists for).
	entry2 := &goflay.Update{
		Kind:  goflay.InsertEntry,
		Table: "Ingress.port_table",
		Entry: &goflay.TableEntry{
			Matches: []goflay.FieldMatch{{
				Kind:  goflay.MatchExact,
				Value: goflay.NewBV(48, 0xC0FFEE000001),
			}},
			Action: "set",
			Params: []goflay.BV{goflay.NewBV(9, 2)},
		},
	}
	d = pipe.Apply(entry2)
	fmt.Printf("update 2: %s\n\n", d)

	fmt.Println("=== specialized program with two entries installed ===")
	fmt.Println(pipe.SpecializedSource())

	rep, err := pipe.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndevice compile: %s\n", rep)
	st := pipe.Statistics()
	fmt.Printf("stats: %d updates, %d forwarded, %d recompilations, update analysis total %v\n",
		st.Updates, st.Forwarded, st.Recompilations, st.UpdateTime)
}
