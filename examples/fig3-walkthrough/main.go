// fig3-walkthrough replays the paper's Fig. 3 update sequence on the
// eth_table program and prints the specialized implementation after
// every step: empty table removed (A), 0-mask entry inlined, full-mask
// entry narrowed to an exact match with the dead drop action removed
// (B/C), a masked entry forcing ternary again (D), and a final entry
// that needs no recompilation at all.
package main

import (
	"fmt"
	"log"
	"strings"

	goflay "repro"
	"repro/internal/progs"
)

func main() {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source)
	if err != nil {
		log.Fatal(err)
	}

	show := func(step string) {
		fmt.Printf("\n%s\n%s\n", step, strings.Repeat("=", len(step)))
		src := pipe.SpecializedSource()
		// Print only the Ingress control — the headers don't change.
		if i := strings.Index(src, "control Ingress"); i >= 0 {
			src = src[i:]
		}
		fmt.Println(src)
	}

	show("(1) initial configuration: empty table (implementation A)")

	steps := []string{
		"(2) insert entry 1: [key 0x1, mask 0x0] -> set(0x800)   — table inlined",
		"(3a) delete entry 1 (first half of the replace)",
		"(3b) insert [key 0x2, mask full] -> set(0x900)          — exact match, drop removed (impl. B/C)",
		"(4) insert entry 2: [key 0x5, mask 0x8] -> set(0x700)   — back to ternary (impl. D)",
		"(5) insert entry 3: [key 0x6, mask 0x7] -> set(0x200)   — no recompilation",
	}
	for i, u := range progs.Fig3Updates() {
		d := pipe.Apply(u)
		if d.Kind == goflay.Rejected {
			log.Fatalf("step %d rejected: %v", i, d.Err)
		}
		fmt.Printf("\n>>> %s\n>>> decision: %s\n", steps[i], d)
		if d.Kind == goflay.Recompile {
			show("specialized implementation")
		} else {
			fmt.Println("(implementation unchanged; update forwarded to the device)")
		}
	}

	st := pipe.Statistics()
	fmt.Printf("\ntotal: %d updates, %d recompilations, %d forwarded\n",
		st.Updates, st.Recompilations, st.Forwarded)
}
