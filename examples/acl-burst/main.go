// acl-burst demonstrates the paper's Table 3 phenomenon on the
// middleblock Pre-Ingress ACL: precise update analysis slows
// superlinearly as installed entries grow, while the overapproximating
// mode stays flat past the threshold — at the cost of reverting the
// table's verdicts to the general (unspecialized) model.
package main

import (
	"fmt"
	"log"
	"time"

	goflay "repro"
	"repro/internal/progs"
)

func main() {
	p := progs.Middleblock()
	sizes := []int{1, 10, 100, 400}

	fmt.Println("installed | precise     | overapproximate (threshold 100)")
	fmt.Println("----------+-------------+--------------------------------")
	for _, n := range sizes {
		precise := measure(p, n, -1) // never overapproximate
		approx := measure(p, n, 100) // the paper's threshold
		fmt.Printf("%9d | %-11v | %v\n", n, precise, approx)
	}
	fmt.Println("\nprecise mode evaluates the full nested entry expression on every")
	fmt.Println("update; overapproximation assigns *any* to the table's placeholders")
	fmt.Println("once it crosses the threshold, making updates O(1) again (§4.1).")
}

// measure installs n Pre-Ingress ACL entries and times the analysis of
// the (n+1)-th update.
func measure(p *progs.Program, n, threshold int) time.Duration {
	pipe, err := goflay.Open(p.Name, p.Source, goflay.WithOverapproxThreshold(threshold))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d := pipe.Apply(progs.MiddleblockACLEntry(i)); d.Kind == goflay.Rejected {
			log.Fatalf("entry %d rejected: %v", i, d.Err)
		}
	}
	d := pipe.Apply(progs.MiddleblockACLEntry(n))
	if d.Kind == goflay.Rejected {
		log.Fatalf("probe update rejected: %v", d.Err)
	}
	return d.Elapsed.Round(10 * time.Microsecond)
}
