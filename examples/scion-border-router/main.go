// scion-border-router reproduces the paper's §4.2 evaluation flow on
// the SCION border router: compile the full program (maximum Tofino-2
// stages), specialize under the representative IPv6-free deployment
// configuration (20% fewer stages), absorb a burst of IPv4 forwarding
// updates without recompilation, then enable the IPv6 paths and watch
// the program grow back to the maximum stage count.
package main

import (
	"fmt"
	"log"
	"time"

	goflay "repro"
	"repro/internal/progs"
)

func main() {
	p := progs.Scion()
	pipe, err := goflay.Open(p.Name, p.Source, goflay.WithTarget(goflay.TargetTofino))
	if err != nil {
		log.Fatal(err)
	}

	full, err := pipe.CompileOriginal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unspecialized:     %s\n", full)

	// Install the representative deployment configuration (shared path
	// processing + IPv4 underlay; IPv6 unused).
	for _, u := range p.Representative() {
		if d := pipe.Apply(u); d.Kind == goflay.Rejected {
			log.Fatalf("representative config rejected: %v", d.Err)
		}
	}
	spec, err := pipe.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized:       %s\n", spec)
	fmt.Printf("stage savings:     %d -> %d stages (%.0f%%)\n\n",
		full.Stages, spec.Stages, 100*float64(full.Stages-spec.Stages)/float64(full.Stages))

	// Burst of unique IPv4 forwarding entries: semantics-preserving, so
	// Flay forwards them without recompiling.
	const burst = 250
	t0 := time.Now()
	forwarded, recompiled := 0, 0
	for i := 0; i < burst; i++ {
		switch pipe.Apply(progs.ScionBurstEntry(i)).Kind {
		case goflay.Forward:
			forwarded++
		case goflay.Recompile:
			recompiled++
		}
	}
	fmt.Printf("IPv4 burst:        %d updates in %v (%d forwarded, %d recompiled)\n",
		burst, time.Since(t0).Round(time.Millisecond), forwarded, recompiled)

	// Enable the previously unused IPv6 paths: respecialization is
	// required and the program needs the maximum number of stages
	// again.
	t0 = time.Now()
	recompiled = 0
	for _, u := range p.IPv6Enable() {
		if d := pipe.Apply(u); d.Kind == goflay.Recompile {
			recompiled++
		}
	}
	after, err := pipe.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPv6 enable:       %d updates in %v (%d triggered recompilation)\n",
		len(p.IPv6Enable()), time.Since(t0).Round(time.Millisecond), recompiled)
	fmt.Printf("after IPv6 enable: %s\n", after)

	st := pipe.Statistics()
	fmt.Printf("\nengine: %d points, analysis %v, %d updates (%d forwarded / %d recompilations), mean update analysis %v\n",
		st.Points, st.AnalysisTime.Round(time.Millisecond),
		st.Updates, st.Forwarded, st.Recompilations,
		(st.UpdateTime / time.Duration(st.Updates)).Round(time.Microsecond))
}
