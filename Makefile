# goflay build/test tiers. The module is stdlib-only; everything here
# is plain go toolchain invocations.

GO ?= go

# Coverage floor for the engine packages gated by `make cover`.
COVER_MIN ?= 70
COVER_PKGS = ./internal/core ./internal/sym ./internal/dd ./internal/obs ./internal/controlplane ./internal/server ./internal/wire ./internal/wire/binproto ./internal/cluster ./internal/trace ./internal/fuzz ./internal/progs ./internal/dpexec

# Seconds of native fuzzing per target in the `make race` smoke.
FUZZ_SMOKE ?= 5s

.PHONY: all help build test race bench cover bench-json bench-scaling bench-pps bench-dd fuzz-smoke torture-smoke dd-smoke tier1 soak soak-churn soak-churn-smoke soak-cluster soak-cluster-smoke

# Soak-run knobs: where the daemon listens and how many updates
# flayload drives through it.
SOAK_ADDR ?= 127.0.0.1:9444
SOAK_N    ?= 5000

# Churn-soak knobs: per-program update budget and per-pattern cycle
# length. The defaults are the CI-scale run (minutes); raise
# SOAK_CHURN_UPDATES into the millions for an hours-long soak with the
# same assertions (see EXPERIMENTS.md, "churn soak").
SOAK_CHURN_ADDR    ?= 127.0.0.1:9446
SOAK_CHURN_UPDATES ?= 24000
SOAK_CHURN_CYCLE   ?= 1000

# Cluster-soak knobs: the front's address, how many concurrent
# sessions the swarm holds on the fleet, the total update budget split
# across them, and the client-side concurrency cap. The defaults are
# the headline run from EXPERIMENTS.md: 10k concurrent sessions of
# mixed read/write load through the front (minutes on one core).
SOAK_CLUSTER_FRONT    ?= 127.0.0.1:9450
SOAK_CLUSTER_SESSIONS ?= 10000
SOAK_CLUSTER_N        ?= 100000
SOAK_CLUSTER_WORKERS  ?= 512

all: tier1

help:
	@echo "goflay make targets:"
	@echo "  tier1       build + test (the baseline gate; default)"
	@echo "  race        vet + race-detector suite + fuzz smoke (slow, load-bearing)"
	@echo "  cover       per-package coverage, fails under $(COVER_MIN)% for core/sym/obs/controlplane"
	@echo "  bench       run the Go benchmarks"
	@echo "  bench-json  run flaybench with observability on; writes BENCH_flay.json"
	@echo "  bench-scaling  multicore scaling curve at GOMAXPROCS 1/4/8/16; writes BENCH_scaling.json"
	@echo "  bench-pps   packets/sec: bytecode executor vs reference interpreter across the"
	@echo "              catalog, differentially verified, gated >= 2x on >= 3 programs;"
	@echo "              writes BENCH_pps.json"
	@echo "  torture-smoke  epoch/shard concurrency torture suite, smoke slice, under -race"
	@echo "  fuzz-smoke  $(FUZZ_SMOKE) of native fuzzing per target (FuzzP4Parse, FuzzSolver, FuzzSnapshot, FuzzWireDecode, FuzzDpexecVsBmv2)"
	@echo "  soak        build flayd+flayload, drive $(SOAK_N) updates, SIGTERM, assert clean exit + snapshot"
	@echo "  soak-churn  long-horizon churn soak: flaysoak drives $(SOAK_CHURN_UPDATES) updates/program of"
	@echo "              trace-driven churn through flayd, gating flat memory, stable p99,"
	@echo "              audit-seq continuity and zero unsound verdicts"
	@echo "  soak-cluster  fleet soak: 3 flayd shards (each with a replicating standby)"
	@echo "              behind flayfront; flayload swarm mode holds $(SOAK_CLUSTER_SESSIONS) concurrent"
	@echo "              sessions of mixed read/write load through the front and gates"
	@echo "              exact per-session accounting (zero lost writes, zero rejects)"

# Tier-1: the baseline gate every change must keep green.
tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: vet plus the full suite under the race detector, plus a
# short native-fuzz smoke of the frontend and the solver. The
# equivalence suites in internal/core double as the concurrency
# soundness proof of the parallel batch engine, the audit capture path
# and the degrade/promote matrix, so this tier is slow (minutes) but
# load-bearing. The explicit timeout covers single-core machines,
# where the race detector gets no parallelism to hide behind and
# internal/core alone can exceed go test's 10m default.
RACE_TIMEOUT ?= 45m
race: fuzz-smoke soak-churn-smoke soak-cluster-smoke torture-smoke dd-smoke bench-pps
	$(GO) vet ./...
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

# torture-smoke: the epoch/shard concurrency torture suite's smoke
# slice under the race detector, run first so a broken lock-free read
# path fails fast instead of at the end of the full -race sweep. The
# full suite (long mode, GOMAXPROCS grid) runs without -short inside
# `make race`'s package sweep above.
torture-smoke:
	$(GO) test -race -short -run 'TestTortureConcurrency' ./internal/core

# dd-smoke: the diagram-vs-solver differential proof under the race
# detector, run early so a diverging diagram verdict (or a data race
# in the COW store publication) fails fast. The full matrix — every
# catalog program and churn pattern across the worker grid — runs in
# the package sweep above.
dd-smoke:
	$(GO) test -race -run 'TestDDMatchesSolverCatalog|TestDDSnapshotPreservesVariableOrder' ./internal/core

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzP4Parse -fuzztime=$(FUZZ_SMOKE) ./internal/p4/parser
	$(GO) test -run='^$$' -fuzz=FuzzSolver -fuzztime=$(FUZZ_SMOKE) ./internal/sym
	$(GO) test -run='^$$' -fuzz=FuzzSnapshot -fuzztime=$(FUZZ_SMOKE) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=$(FUZZ_SMOKE) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzBinFrameDecode -fuzztime=$(FUZZ_SMOKE) ./internal/wire/binproto
	$(GO) test -run='^$$' -fuzz=FuzzDpexecVsBmv2 -fuzztime=$(FUZZ_SMOKE) ./internal/dpexec

# soak: the daemon's operational acceptance loop as a make target.
# Builds flayd and flayload, boots the daemon with a snapshot dir,
# drives SOAK_N updates through the wire API (mixed single + batched,
# with 429 retry), then SIGTERMs the daemon and requires (a) exit
# status 0 and (b) a session snapshot on disk — i.e. graceful drain
# actually persisted the warm state.
soak:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/flayd ./cmd/flayd; \
	$(GO) build -o $$tmp/flayload ./cmd/flayload; \
	$$tmp/flayd -addr $(SOAK_ADDR) -snapshot-dir $$tmp/snap & pid=$$!; \
	$$tmp/flayload -addr $(SOAK_ADDR) -session soak -program scion -n $(SOAK_N); \
	kill -TERM $$pid; \
	wait $$pid || { echo "FAIL: flayd exited non-zero after SIGTERM"; exit 1; }; \
	test -s $$tmp/snap/soak.snap || { echo "FAIL: no snapshot after graceful shutdown"; exit 1; }; \
	echo "soak OK: clean exit, snapshot $$(wc -c < $$tmp/snap/soak.snap) bytes"

# soak-churn: the long-horizon churn tier. Boots flayd, then flaysoak
# replays every churn pattern against every production-shaped catalog
# program in baseline-restoring cycles and enforces the soak gates
# (flat heap watermark, stable interval p99, gapless audit sequences,
# zero rejected updates, zero unsound degraded verdicts). Time-scaled:
# the default budget finishes in CI minutes; SOAK_CHURN_UPDATES scales
# the same run to hours.
soak-churn:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/flayd ./cmd/flayd; \
	$(GO) build -o $$tmp/flaysoak ./cmd/flaysoak; \
	$$tmp/flayd -addr $(SOAK_CHURN_ADDR) & pid=$$!; \
	$$tmp/flaysoak -addr $(SOAK_CHURN_ADDR) -updates $(SOAK_CHURN_UPDATES) -cycle $(SOAK_CHURN_CYCLE) \
		|| { kill -TERM $$pid; wait $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "FAIL: flayd exited non-zero after SIGTERM"; exit 1; }; \
	echo "soak-churn OK"

# A seconds-scale slice of the churn soak, run as part of `make race`
# so the soak harness itself can never rot.
soak-churn-smoke:
	$(MAKE) soak-churn SOAK_CHURN_UPDATES=2400 SOAK_CHURN_CYCLE=200 SOAK_CHURN_ADDR=127.0.0.1:9447

# soak-cluster: the fleet's operational acceptance loop. Boots three
# active flayd shards, each with its own binary listener and a standby
# it replicates to, puts flayfront in front of them, and runs flayload
# in swarm mode: SOAK_CLUSTER_SESSIONS concurrent sessions (the names
# consistent-hash across the shards) of mixed read/write load driven
# through the front, finishing with an exact per-session accounting
# check — every session must report its full share of updates applied
# and zero rejects, i.e. no accepted write was lost anywhere in the
# fleet. Every process must then exit 0 on SIGTERM.
soak-cluster:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/flayd ./cmd/flayd; \
	$(GO) build -o $$tmp/flayfront ./cmd/flayfront; \
	$(GO) build -o $$tmp/flayload ./cmd/flayload; \
	pids=""; \
	for i in 1 2 3; do \
		$$tmp/flayd -addr 127.0.0.1:947$$i -standby & pids="$$pids $$!"; \
		$$tmp/flayd -addr 127.0.0.1:945$$i -bin-addr 127.0.0.1:946$$i \
			-replicate-to http://127.0.0.1:947$$i & pids="$$pids $$!"; \
	done; \
	sleep 1; \
	$$tmp/flayfront -addr $(SOAK_CLUSTER_FRONT) \
		-shard name=shard-1,addr=http://127.0.0.1:9451,bin=127.0.0.1:9461,standby=http://127.0.0.1:9471 \
		-shard name=shard-2,addr=http://127.0.0.1:9452,bin=127.0.0.1:9462,standby=http://127.0.0.1:9472 \
		-shard name=shard-3,addr=http://127.0.0.1:9453,bin=127.0.0.1:9463,standby=http://127.0.0.1:9473 \
		& pids="$$pids $$!"; \
	$$tmp/flayload -addr $(SOAK_CLUSTER_FRONT) -session swarm -program fig3 \
		-sessions $(SOAK_CLUSTER_SESSIONS) -n $(SOAK_CLUSTER_N) -workers $(SOAK_CLUSTER_WORKERS) \
		-batch 4 -read-every 1 \
		|| { kill -TERM $$pids; exit 1; }; \
	kill -TERM $$pids; \
	fail=0; for p in $$pids; do wait $$p || { echo "FAIL: pid $$p exited non-zero after SIGTERM"; fail=1; }; done; \
	test $$fail -eq 0; \
	echo "soak-cluster OK: $(SOAK_CLUSTER_SESSIONS) sessions, exact accounting across the fleet"

# A seconds-scale slice of the cluster soak, run as part of `make
# race` so the fleet harness (flayfront routing, swarm accounting,
# shard replication) can never rot.
soak-cluster-smoke:
	$(MAKE) soak-cluster SOAK_CLUSTER_SESSIONS=300 SOAK_CLUSTER_N=6000 SOAK_CLUSTER_WORKERS=64

bench:
	$(GO) test -bench=. -benchmem .

# bench-json: the machine-readable evaluation artifact. Runs the burst
# section with the metrics registry and audit trail enabled, plus the
# query-cache and adaptive-precision sections; flaybench cross-checks
# their accounting against the engine's Statistics (the cache's >50%
# hit-rate bar, the precision section's p99-under-deadline and
# zero-unsound-verdict bars) and exits non-zero on any mismatch.
bench-json:
	$(GO) run ./cmd/flaybench -only burst,batch,cache,dd,precision,churn,scaling,cluster -json -o BENCH_flay.json

# bench-dd: the decision-diagram query-core artifact. Replays the
# precise-mode middleblock ACL burst through a diagram engine and a
# solver-only engine, cross-checks every point verdict and the
# specialized source byte-for-byte between the two, and exits non-zero
# unless the diagram engine's query pass beats the solver's by >= 3x.
bench-dd:
	$(GO) run ./cmd/flaybench -only dd -json -o BENCH_flay.json

# bench-scaling: the multicore scaling artifact. Re-runs the scaling
# section (wait-free reads vs the LockedReads seed baseline under
# write churn, with per-cell audit-continuity and replay-equivalence
# verification) at ambient GOMAXPROCS 1, 4, 8 and 16, merged into one
# JSON with each section stamped with the GOMAXPROCS it ran at. Fails
# if lockfree@8 read throughput is under 3x the seed configuration.
bench-scaling:
	$(GO) run ./cmd/flaybench -only scaling -gomaxprocs 1,4,8,16 -json -o BENCH_scaling.json

# bench-pps: the packet-execution artifact. Measures packets/sec for
# the flattened bytecode executor against the tree-walking reference
# interpreter across the production-shaped catalog programs, each cell
# differentially verified packet-for-packet (before and after a
# concurrent-churn arm with gap-free audit and monotone epochs), and
# gated: the executor must beat the interpreter by >= 2x on at least
# three programs. Also runs inside `make race` as the hot-swap smoke.
bench-pps:
	$(GO) run ./cmd/flaybench -only pps -json -o BENCH_pps.json

# cover: enforce the coverage floor on the engine packages. Written
# for a POSIX shell (no pipefail): the summary goes to a temp file and
# the gate parses it afterwards.
cover:
	@tmp=$$(mktemp); \
	$(GO) test -cover $(COVER_PKGS) > $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	cat $$tmp; \
	fail=0; \
	while read -r line; do \
		case "$$line" in \
		*"coverage: "*) \
			pct=$${line##*coverage: }; pct=$${pct%%.*}; \
			if [ "$$pct" -lt "$(COVER_MIN)" ]; then \
				echo "FAIL: coverage $$pct% < $(COVER_MIN)%: $$line"; fail=1; \
			fi ;; \
		esac; \
	done < $$tmp; \
	rm -f $$tmp; \
	exit $$fail
