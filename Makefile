# goflay build/test tiers. The module is stdlib-only; everything here
# is plain go toolchain invocations.

GO ?= go

.PHONY: all build test race bench tier1

all: tier1

# Tier-1: the baseline gate every change must keep green.
tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: vet plus the full suite under the race detector. The
# equivalence suite in internal/core doubles as the concurrency
# soundness proof of the parallel batch engine, so this tier is slow
# (minutes) but load-bearing.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
