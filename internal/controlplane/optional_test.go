package controlplane

import (
	"testing"

	"repro/internal/sym"
)

const optionalSrc = `
header ipv4_t { bit<32> src; bit<32> dst; bit<8> proto; }
struct headers { ipv4_t ipv4; }
struct metadata { }
control Opt(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action pick(bit<9> p) { std.egress_port = p; }
    table sel {
        key = {
            hdr.ipv4.proto: exact;
            hdr.ipv4.dst: optional;
        }
        actions = { pick; NoAction; }
        default_action = NoAction;
    }
    apply {
        sel.apply();
    }
}
`

// TestOptionalMatchCompile covers the fourth match kind end to end: a
// wildcarded optional component matches anything; a valued one matches
// exactly.
func TestOptionalMatchCompile(t *testing.T) {
	an := analyze(t, optionalSrc)
	b := an.Builder
	ti := an.Tables["Opt.sel"]
	cfg := NewConfig(an)

	wild := &TableEntry{
		Priority: 1,
		Matches: []FieldMatch{
			{Kind: MatchExact, Value: sym.NewBV(8, 6)},
			{Kind: MatchOptional, Wildcard: true, Value: sym.NewBV(32, 0)},
		},
		Action: "pick", Params: []sym.BV{sym.NewBV(9, 1)},
	}
	valued := &TableEntry{
		Priority: 2,
		Matches: []FieldMatch{
			{Kind: MatchExact, Value: sym.NewBV(8, 6)},
			{Kind: MatchOptional, Value: sym.NewBV(32, 0x0a0a0a0a)},
		},
		Action: "pick", Params: []sym.BV{sym.NewBV(9, 2)},
	}
	for _, e := range []*TableEntry{wild, valued} {
		if err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Opt.sel", Entry: e}); err != nil {
			t.Fatal(err)
		}
	}
	env, _, err := cfg.CompileTable(b, "Opt.sel")
	if err != nil {
		t.Fatal(err)
	}
	evalPort := func(proto, dst uint64) uint64 {
		p := sym.MustEval(env[ti.Actions[0].Params[0]], sym.Env{
			b.Data("hdr.ipv4.proto", 8): sym.NewBV(8, proto),
			b.Data("hdr.ipv4.dst", 32):  sym.NewBV(32, dst),
		})
		return p.Uint64()
	}
	// Higher-priority valued entry wins on its dst; wildcard catches the
	// rest; non-tcp misses entirely (param falls back to 0).
	if got := evalPort(6, 0x0a0a0a0a); got != 2 {
		t.Fatalf("valued optional: port %d, want 2", got)
	}
	if got := evalPort(6, 0x01020304); got != 1 {
		t.Fatalf("wildcard optional: port %d, want 1", got)
	}
	if got := evalPort(17, 0x0a0a0a0a); got != 0 {
		t.Fatalf("miss: port %d, want 0", got)
	}
	// The wildcard entry covers the valued one only if priorities say
	// so; at higher priority the valued entry must stay active.
	active, eclipsed := cfg.ActiveEntries("Opt.sel")
	if len(active) != 2 || eclipsed != 0 {
		t.Fatalf("active=%d eclipsed=%d", len(active), eclipsed)
	}
	// Reversed: a wildcard at higher priority eclipses the valued entry.
	cfg2 := NewConfig(an)
	wild2 := *wild
	wild2.Priority = 5
	valued2 := *valued
	valued2.Priority = 1
	for _, e := range []*TableEntry{&wild2, &valued2} {
		if err := cfg2.Apply(&Update{Kind: InsertEntry, Table: "Opt.sel", Entry: e}); err != nil {
			t.Fatal(err)
		}
	}
	if _, eclipsed := cfg2.ActiveEntries("Opt.sel"); eclipsed != 1 {
		t.Fatalf("high-priority wildcard should eclipse the valued entry, eclipsed=%d", eclipsed)
	}
}
