package controlplane

import (
	"fmt"
	"sort"

	"repro/internal/sym"
)

// Deep-copyable configuration state, the controlplane half of engine
// snapshots (internal/core). State carries everything Apply has
// accumulated — installed entries with their insertion sequence
// numbers, default overrides, value-set members, register fills — in a
// deterministic order, so the same configuration always produces the
// same State and two snapshots of identical configurations are
// byte-identical.

// State is a self-contained copy of a Config's mutable state.
type State struct {
	Tables    []TableState
	Defaults  []DefaultState
	ValueSets []ValueSetState
	Registers []RegisterState
	// Seq is the global insertion counter; restoring it keeps future
	// entry ordering identical to the uninterrupted run.
	Seq int
}

// TableState holds one table's installed entries in insertion order.
type TableState struct {
	Name    string
	Entries []EntryState
}

// EntryState is one installed entry, with its insertion sequence
// number (the deterministic tie-breaker active-entry sorting uses).
type EntryState struct {
	Priority int
	Seq      int
	Matches  []FieldMatch
	Action   string
	Params   []sym.BV
}

// DefaultState is one table's default-action override.
type DefaultState struct {
	Table  string
	Action ActionCall
}

// ValueSetState holds one value set's configured members.
type ValueSetState struct {
	Name    string
	Members []ValueSetMember
}

// RegisterState is one register's uniform fill.
type RegisterState struct {
	Name string
	Fill sym.BV
}

// State captures the configuration's current mutable state. Tables,
// defaults, value sets and registers are sorted by name; entries keep
// their installed (slice) order.
func (c *Config) State() State {
	var st State
	st.Seq = c.seq
	for name, entries := range c.tables {
		ts := TableState{Name: name, Entries: make([]EntryState, len(entries))}
		for i, e := range entries {
			ts.Entries[i] = EntryState{
				Priority: e.Priority,
				Seq:      e.seq,
				Matches:  append([]FieldMatch(nil), e.Matches...),
				Action:   e.Action,
				Params:   append([]sym.BV(nil), e.Params...),
			}
		}
		st.Tables = append(st.Tables, ts)
	}
	sort.Slice(st.Tables, func(i, j int) bool { return st.Tables[i].Name < st.Tables[j].Name })
	for table, d := range c.defaults {
		st.Defaults = append(st.Defaults, DefaultState{Table: table, Action: ActionCall{
			Name:   d.Name,
			Params: append([]sym.BV(nil), d.Params...),
		}})
	}
	sort.Slice(st.Defaults, func(i, j int) bool { return st.Defaults[i].Table < st.Defaults[j].Table })
	for name, members := range c.valueSets {
		st.ValueSets = append(st.ValueSets, ValueSetState{
			Name:    name,
			Members: append([]ValueSetMember(nil), members...),
		})
	}
	sort.Slice(st.ValueSets, func(i, j int) bool { return st.ValueSets[i].Name < st.ValueSets[j].Name })
	for name, fill := range c.regFills {
		st.Registers = append(st.Registers, RegisterState{Name: name, Fill: fill})
	}
	sort.Slice(st.Registers, func(i, j int) bool { return st.Registers[i].Name < st.Registers[j].Name })
	return st
}

// SetState replaces the configuration's mutable state with st,
// re-validating every element against the analysis schemas exactly as
// Apply would (a snapshot is untrusted input). On error the
// configuration is left unchanged.
func (c *Config) SetState(st State) error {
	tables := make(map[string][]*TableEntry, len(st.Tables))
	maxSeq := st.Seq
	for _, ts := range st.Tables {
		ti, ok := c.Analysis.Tables[ts.Name]
		if !ok {
			return fmt.Errorf("controlplane: state references unknown table %s", ts.Name)
		}
		if _, dup := tables[ts.Name]; dup {
			return fmt.Errorf("controlplane: state lists table %s twice", ts.Name)
		}
		entries := make([]*TableEntry, len(ts.Entries))
		for i, es := range ts.Entries {
			e := &TableEntry{
				Priority: es.Priority,
				Matches:  append([]FieldMatch(nil), es.Matches...),
				Action:   es.Action,
				Params:   append([]sym.BV(nil), es.Params...),
				seq:      es.Seq,
			}
			if err := c.validateEntry(ti, e); err != nil {
				return err
			}
			for _, prev := range entries[:i] {
				if matchesEqual(prev, e) {
					return fmt.Errorf("controlplane: state holds duplicate entry in %s", ts.Name)
				}
			}
			if es.Seq > maxSeq {
				maxSeq = es.Seq
			}
			entries[i] = e
		}
		tables[ts.Name] = entries
	}
	defaults := make(map[string]ActionCall, len(st.Defaults))
	for _, ds := range st.Defaults {
		ti, ok := c.Analysis.Tables[ds.Table]
		if !ok {
			return fmt.Errorf("controlplane: state default references unknown table %s", ds.Table)
		}
		ai := actionInfo(ti, ds.Action.Name)
		if ai == nil {
			return fmt.Errorf("controlplane: table %s has no action %s", ds.Table, ds.Action.Name)
		}
		if err := validateParams(ti.Name, ai, ds.Action.Params); err != nil {
			return err
		}
		defaults[ds.Table] = ActionCall{Name: ds.Action.Name, Params: append([]sym.BV(nil), ds.Action.Params...)}
	}
	valueSets := make(map[string][]ValueSetMember, len(st.ValueSets))
	for _, vs := range st.ValueSets {
		vi := c.valueSetInfo(vs.Name)
		if vi == nil {
			return fmt.Errorf("controlplane: state references unknown value set %s", vs.Name)
		}
		if len(vs.Members) > vi.Decl.Size {
			return fmt.Errorf("controlplane: value set %s holds at most %d members, got %d",
				vs.Name, vi.Decl.Size, len(vs.Members))
		}
		for _, m := range vs.Members {
			if m.Value.W != vi.Width {
				return fmt.Errorf("controlplane: value set %s member width %d, want %d",
					vs.Name, m.Value.W, vi.Width)
			}
			if m.Mask.W != 0 && m.Mask.W != vi.Width {
				return fmt.Errorf("controlplane: value set %s mask width %d, want %d",
					vs.Name, m.Mask.W, vi.Width)
			}
		}
		valueSets[vs.Name] = append([]ValueSetMember(nil), vs.Members...)
	}
	regFills := make(map[string]sym.BV, len(st.Registers))
	for _, rs := range st.Registers {
		ri, ok := c.Analysis.Registers[rs.Name]
		if !ok {
			return fmt.Errorf("controlplane: state fills unknown register %s", rs.Name)
		}
		if rs.Fill.W != ri.Width {
			return fmt.Errorf("controlplane: register %s fill width %d, want %d",
				rs.Name, rs.Fill.W, ri.Width)
		}
		regFills[rs.Name] = rs.Fill
	}
	c.tables = tables
	c.defaults = defaults
	c.valueSets = valueSets
	c.regFills = regFills
	c.seq = maxSeq
	c.observeEntries()
	return nil
}
