// Tests for the snapshotable configuration state (State/SetState) and
// the assignment fingerprints the query cache keys on.
package controlplane

import (
	"reflect"
	"testing"

	"repro/internal/sym"
)

// TestStateRoundTrip: State → SetState on a fresh config reproduces the
// original configuration — same State, same compiled environment.
func TestStateRoundTrip(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	for i, key := range []uint64{0xDEADBEEFF00D, 0x1122334455, 0xABCDEF} {
		up := &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: exactEntry(key, "set", sym.NewBV(9, uint64(i+1)))}
		if err := cfg.Apply(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := cfg.Apply(&Update{Kind: SetDefault, Table: "Ingress.port_table",
		Default: ActionCall{Name: "set", Params: []sym.BV{sym.NewBV(9, 7)}}}); err != nil {
		t.Fatal(err)
	}

	st := cfg.State()
	fresh := NewConfig(an)
	if err := fresh.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if !reflect.DeepEqual(st, fresh.State()) {
		t.Fatalf("state changed across the round trip:\n%+v\nvs\n%+v", st, fresh.State())
	}
	if got, want := fresh.NumEntries("Ingress.port_table"), 3; got != want {
		t.Fatalf("restored table holds %d entries, want %d", got, want)
	}
	env1, _, err := cfg.CompileEnv(an.Builder)
	if err != nil {
		t.Fatal(err)
	}
	env2, _, err := fresh.CompileEnv(an.Builder)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env1, env2) {
		t.Fatal("restored configuration compiles to a different environment")
	}
	// The sequence counter must carry over so future insertions keep
	// deterministic tie-breaking.
	next := &Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0xF00, "noop")}
	if err := cfg.Apply(next); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Apply(next); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.State(), fresh.State()) {
		t.Fatal("post-restore insertion diverged (Seq not carried over)")
	}
}

// TestStateDeterministic: the same configuration reached through
// different update orders (where order is immaterial) yields the same
// State for the parts that are order-free, and State() twice in a row
// is identical.
func TestStateDeterministic(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	up := &Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0x1, "set", sym.NewBV(9, 1))}
	if err := cfg.Apply(up); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.State(), cfg.State()) {
		t.Fatal("State is not deterministic")
	}
}

// TestSetStateRejectsInvalid: a snapshot is untrusted input; every
// schema violation must be rejected, and a failed SetState must leave
// the configuration untouched.
func TestSetStateRejectsInvalid(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	if err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0x42, "set", sym.NewBV(9, 3))}); err != nil {
		t.Fatal(err)
	}
	before := cfg.State()

	entry := func(key uint64, action string, params ...sym.BV) EntryState {
		return EntryState{
			Matches: []FieldMatch{{Kind: MatchExact, Value: sym.NewBV(48, key)}},
			Action:  action, Params: params, Seq: 1,
		}
	}
	cases := map[string]State{
		"unknown-table": {Tables: []TableState{{Name: "Ingress.nope"}}},
		"duplicate-table": {Tables: []TableState{
			{Name: "Ingress.port_table"}, {Name: "Ingress.port_table"}}},
		"unknown-action": {Tables: []TableState{{Name: "Ingress.port_table",
			Entries: []EntryState{entry(1, "frobnicate")}}}},
		"bad-param-width": {Tables: []TableState{{Name: "Ingress.port_table",
			Entries: []EntryState{entry(1, "set", sym.NewBV(16, 1))}}}},
		"duplicate-entry": {Tables: []TableState{{Name: "Ingress.port_table",
			Entries: []EntryState{entry(1, "noop"), entry(1, "noop")}}}},
		"unknown-default": {Defaults: []DefaultState{{Table: "Ingress.nope",
			Action: ActionCall{Name: "noop"}}}},
		"bad-default-action": {Defaults: []DefaultState{{Table: "Ingress.port_table",
			Action: ActionCall{Name: "frobnicate"}}}},
		"unknown-value-set": {ValueSets: []ValueSetState{{Name: "nope"}}},
		"unknown-register":  {Registers: []RegisterState{{Name: "nope", Fill: sym.NewBV(8, 0)}}},
	}
	for name, st := range cases {
		if err := cfg.SetState(st); err == nil {
			t.Errorf("%s: SetState accepted invalid state", name)
		}
		if !reflect.DeepEqual(cfg.State(), before) {
			t.Fatalf("%s: failed SetState mutated the configuration", name)
		}
	}
}

// TestEnvFingerprintProperties: equal environments fingerprint equally
// regardless of builder or construction order; different assignments
// fingerprint differently; the empty environment is stable.
func TestEnvFingerprintProperties(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	b := an.Builder
	empty1 := EnvFingerprint(Env{})
	empty2 := EnvFingerprint(nil)
	if empty1 != empty2 {
		t.Fatal("nil and empty environments fingerprint differently")
	}

	env0, _, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	fpEmptyTable := EnvFingerprint(env0)

	if err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0x1, "set", sym.NewBV(9, 1))}); err != nil {
		t.Fatal(err)
	}
	env1, _, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	fpOneEntry := EnvFingerprint(env1)
	if fpOneEntry == fpEmptyTable {
		t.Fatal("different configurations produced the same fingerprint")
	}

	// Same structural assignment compiled in a *different* builder must
	// fingerprint identically: the fingerprint folds canonical hashes,
	// never builder pointers. Rebuild the whole analysis from scratch.
	an2 := analyze(t, fig5Src)
	cfg2 := NewConfig(an2)
	if err := cfg2.Apply(&Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0x1, "set", sym.NewBV(9, 1))}); err != nil {
		t.Fatal(err)
	}
	env2, _, err := cfg2.CompileTable(an2.Builder, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	if got := EnvFingerprint(env2); got != fpOneEntry {
		t.Fatalf("fingerprint is builder-dependent: %x vs %x", got, fpOneEntry)
	}

	// Order independence: an Env is a map, so the fold must not depend
	// on iteration order — recompute several times.
	for i := 0; i < 10; i++ {
		if got := EnvFingerprint(env1); got != fpOneEntry {
			t.Fatal("fingerprint is iteration-order dependent")
		}
	}

	// Deleting the entry reverts the fingerprint: the same assignment
	// always fingerprints the same, which is what makes revisited
	// configurations cache-hittable.
	if err := cfg.Apply(&Update{Kind: DeleteEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0x1, "set", sym.NewBV(9, 1))}); err != nil {
		t.Fatal(err)
	}
	envBack, _, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	if got := EnvFingerprint(envBack); got != fpEmptyTable {
		t.Fatalf("reverted configuration fingerprints differently: %x vs %x", got, fpEmptyTable)
	}
}
