// Package controlplane models the control-plane configuration of a P4
// program in the style of P4Runtime: table entries with
// exact/ternary/lpm/optional matches and priorities, default-action
// overrides, parser value sets, and register fills. It implements the
// paper's "control-plane assignments" (§4.1): entries compile into
// substitution environments for the data-plane placeholders, with
// duplicate and eclipsed entries omitted, and with overapproximation
// past a configurable entry-count threshold.
package controlplane

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/flayerr"
	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// MatchKind re-exports the table key match kinds.
type MatchKind = ast.MatchKind

// Convenience aliases so callers don't need to import ast.
const (
	MatchExact    = ast.MatchExact
	MatchTernary  = ast.MatchTernary
	MatchLPM      = ast.MatchLPM
	MatchOptional = ast.MatchOptional
)

// FieldMatch is one component of a table entry's match key.
type FieldMatch struct {
	Kind  MatchKind
	Value sym.BV
	// Mask applies to ternary matches. A zero mask matches anything.
	Mask sym.BV
	// PrefixLen applies to lpm matches (0..width).
	PrefixLen int
	// Wildcard marks an omitted optional match.
	Wildcard bool
}

// ternaryMask returns the effective mask of the match: the bits a packet
// key must agree on to match.
func (m FieldMatch) ternaryMask(w uint16) sym.BV {
	switch m.Kind {
	case MatchExact:
		return sym.AllOnes(w)
	case MatchTernary:
		return m.Mask
	case MatchLPM:
		if m.PrefixLen == 0 {
			return sym.BV{W: w}
		}
		return sym.AllOnes(w).Shl(uint(int(w) - m.PrefixLen))
	case MatchOptional:
		if m.Wildcard {
			return sym.BV{W: w}
		}
		return sym.AllOnes(w)
	default:
		return sym.AllOnes(w)
	}
}

// TableEntry is one installed match-action entry.
type TableEntry struct {
	// Priority orders ternary/optional entries; higher wins. It is
	// ignored for pure exact/lpm tables (lpm uses prefix length).
	Priority int
	Matches  []FieldMatch
	Action   string
	Params   []sym.BV

	seq int // insertion order, breaks ties deterministically
}

func (e *TableEntry) String() string {
	return fmt.Sprintf("prio=%d action=%s", e.Priority, e.Action)
}

// matchesEqual reports whether two entries have the same match key
// (P4Runtime identity for MODIFY/DELETE).
func matchesEqual(a, b *TableEntry) bool {
	if len(a.Matches) != len(b.Matches) || a.Priority != b.Priority {
		return false
	}
	for i := range a.Matches {
		x, y := a.Matches[i], b.Matches[i]
		if x.Kind != y.Kind || x.Value != y.Value || x.Mask != y.Mask ||
			x.PrefixLen != y.PrefixLen || x.Wildcard != y.Wildcard {
			return false
		}
	}
	return true
}

// ActionCall names an action with bound parameters (used for
// default-action overrides).
type ActionCall struct {
	Name   string
	Params []sym.BV
}

// ValueSetMember is one member of a parser value set.
type ValueSetMember struct {
	Value sym.BV
	// Mask, when nonzero-width, makes the member a masked match.
	Mask sym.BV
}

// DefaultOverapproxThreshold is the entry count past which a table's
// assignment is overapproximated (paper §4.1 uses 100).
const DefaultOverapproxThreshold = 100

// Config is the complete control-plane state for one program.
type Config struct {
	// Analysis supplies the table/value-set/register schemas.
	Analysis *dataplane.Analysis

	// OverapproxThreshold is the per-table entry budget; past it the
	// table compiles to the "*any*" assignment. Zero means
	// DefaultOverapproxThreshold; negative means never overapproximate.
	OverapproxThreshold int

	tables    map[string][]*TableEntry
	defaults  map[string]ActionCall
	valueSets map[string][]ValueSetMember
	regFills  map[string]sym.BV
	seq       int

	// forced marks tables pinned to the overapproximated ("*any*")
	// assignment regardless of their entry count — the adaptive
	// precision controller's degradation switch (core deadline.go).
	forced map[string]bool

	// met holds the optional observability instruments (SetObserver);
	// the zero value is disabled.
	met cpMetrics
}

// NewConfig returns an empty configuration (every table empty, every
// value set unconfigured, every register unfilled) — the device-spec
// initial assignment the paper describes.
func NewConfig(an *dataplane.Analysis) *Config {
	return &Config{
		Analysis:  an,
		tables:    make(map[string][]*TableEntry),
		defaults:  make(map[string]ActionCall),
		valueSets: make(map[string][]ValueSetMember),
		regFills:  make(map[string]sym.BV),
	}
}

// Threshold returns the effective overapproximation threshold.
func (c *Config) Threshold() int { return c.threshold() }

func (c *Config) threshold() int {
	switch {
	case c.OverapproxThreshold > 0:
		return c.OverapproxThreshold
	case c.OverapproxThreshold < 0:
		return int(^uint(0) >> 1)
	default:
		return DefaultOverapproxThreshold
	}
}

// ForceOverapprox pins (on) or unpins (off) a table to the
// overapproximated assignment, independent of the entry-count
// threshold. It only changes how CompileTable renders the table; the
// installed entries are untouched, so unpinning restores the precise
// assignment exactly.
func (c *Config) ForceOverapprox(table string, on bool) {
	if on {
		if c.forced == nil {
			c.forced = make(map[string]bool)
		}
		c.forced[table] = true
		return
	}
	delete(c.forced, table)
}

// ForcedOverapprox reports whether a table is pinned to the
// overapproximated assignment by ForceOverapprox.
func (c *Config) ForcedOverapprox(table string) bool { return c.forced[table] }

// Overapproximated reports whether CompileTable will render the table's
// assignment as "*any*": either its entry count exceeds the threshold,
// or the precision controller pinned it.
func (c *Config) Overapproximated(table string) bool {
	return c.forced[table] || len(c.tables[table]) > c.threshold()
}

// Entries returns the installed entries of a table (not the active set;
// see ActiveEntries).
func (c *Config) Entries(table string) []*TableEntry { return c.tables[table] }

// NumEntries returns the installed entry count of a table.
func (c *Config) NumEntries(table string) int { return len(c.tables[table]) }

// ValueSet returns the configured members of a value set.
func (c *Config) ValueSet(name string) []ValueSetMember { return c.valueSets[name] }

// Default returns the default-action override for a table, if any.
func (c *Config) Default(table string) (ActionCall, bool) {
	d, ok := c.defaults[table]
	return d, ok
}

// RegisterFill returns the uniform fill value of a register, if set.
func (c *Config) RegisterFill(name string) (sym.BV, bool) {
	v, ok := c.regFills[name]
	return v, ok
}

// ---------------------------------------------------------------------------
// Updates

// UpdateKind enumerates control-plane write operations.
type UpdateKind uint8

const (
	// InsertEntry adds a table entry; duplicate keys are rejected.
	InsertEntry UpdateKind = iota
	// ModifyEntry replaces the action/params of an existing entry.
	ModifyEntry
	// DeleteEntry removes an existing entry.
	DeleteEntry
	// SetDefault overrides a table's default action.
	SetDefault
	// SetValueSet replaces a parser value set's members.
	SetValueSet
	// FillRegister sets a register's uniform fill value.
	FillRegister
)

var updateKindNames = [...]string{
	"insert", "modify", "delete", "set-default", "set-value-set", "fill-register",
}

func (k UpdateKind) String() string {
	if int(k) < len(updateKindNames) {
		return updateKindNames[k]
	}
	return "update?"
}

// Update is one control-plane write (one P4Runtime Write RPC entity).
type Update struct {
	Kind UpdateKind
	// Table is the qualified table name for entry/default updates.
	Table string
	Entry *TableEntry
	// Default applies to SetDefault.
	Default ActionCall
	// ValueSet/Members apply to SetValueSet.
	ValueSet string
	Members  []ValueSetMember
	// Register/Fill apply to FillRegister.
	Register string
	Fill     sym.BV
}

// Target returns the qualified name of the configurable object the
// update touches — the key into the taint map.
func (u *Update) Target() string {
	switch u.Kind {
	case SetValueSet:
		return u.ValueSet
	case FillRegister:
		return u.Register
	default:
		return u.Table
	}
}

func (u *Update) String() string {
	return fmt.Sprintf("%s %s", u.Kind, u.Target())
}

// Apply validates and applies an update. Invalid updates (unknown
// objects, schema mismatches, duplicate inserts, missing entries) are
// rejected with an error and leave the configuration unchanged.
func (c *Config) Apply(u *Update) error {
	err := c.applyInner(u)
	if err != nil {
		c.met.rejects.Inc()
		return err
	}
	c.met.applies.Inc()
	c.observeEntries()
	return nil
}

func (c *Config) applyInner(u *Update) error {
	switch u.Kind {
	case InsertEntry, ModifyEntry, DeleteEntry:
		ti, ok := c.Analysis.Tables[u.Table]
		if !ok {
			return fmt.Errorf("controlplane: %w %s", flayerr.ErrUnknownTable, u.Table)
		}
		if u.Entry == nil {
			return fmt.Errorf("controlplane: %s on %s without an entry", u.Kind, u.Table)
		}
		if err := c.validateEntry(ti, u.Entry); err != nil {
			return err
		}
		cur := c.tables[u.Table]
		idx := -1
		for i, e := range cur {
			if matchesEqual(e, u.Entry) {
				idx = i
				break
			}
		}
		switch u.Kind {
		case InsertEntry:
			if idx >= 0 {
				return fmt.Errorf("controlplane: duplicate entry in %s", u.Table)
			}
			cp := *u.Entry
			c.seq++
			cp.seq = c.seq
			c.tables[u.Table] = append(cur, &cp)
		case ModifyEntry:
			if idx < 0 {
				return fmt.Errorf("controlplane: modify of missing entry in %s", u.Table)
			}
			cp := *u.Entry
			cp.seq = cur[idx].seq
			cur[idx] = &cp
		case DeleteEntry:
			if idx < 0 {
				return fmt.Errorf("controlplane: delete of missing entry in %s", u.Table)
			}
			c.tables[u.Table] = append(cur[:idx:idx], cur[idx+1:]...)
		}
		return nil
	case SetDefault:
		ti, ok := c.Analysis.Tables[u.Table]
		if !ok {
			return fmt.Errorf("controlplane: %w %s", flayerr.ErrUnknownTable, u.Table)
		}
		ai := actionInfo(ti, u.Default.Name)
		if ai == nil {
			return fmt.Errorf("controlplane: table %s has no action %s", u.Table, u.Default.Name)
		}
		if err := validateParams(ti.Name, ai, u.Default.Params); err != nil {
			return err
		}
		c.defaults[u.Table] = u.Default
		return nil
	case SetValueSet:
		vi := c.valueSetInfo(u.ValueSet)
		if vi == nil {
			return fmt.Errorf("controlplane: unknown value set %s", u.ValueSet)
		}
		if len(u.Members) > vi.Decl.Size {
			return fmt.Errorf("controlplane: value set %s holds at most %d members, got %d",
				u.ValueSet, vi.Decl.Size, len(u.Members))
		}
		for _, m := range u.Members {
			if m.Value.W != vi.Width {
				return fmt.Errorf("controlplane: value set %s member width %d, want %d",
					u.ValueSet, m.Value.W, vi.Width)
			}
			if m.Mask.W != 0 && m.Mask.W != vi.Width {
				return fmt.Errorf("controlplane: value set %s mask width %d, want %d",
					u.ValueSet, m.Mask.W, vi.Width)
			}
		}
		c.valueSets[u.ValueSet] = append([]ValueSetMember(nil), u.Members...)
		return nil
	case FillRegister:
		ri, ok := c.Analysis.Registers[u.Register]
		if !ok {
			return fmt.Errorf("controlplane: unknown register %s", u.Register)
		}
		if u.Fill.W != ri.Width {
			return fmt.Errorf("controlplane: register %s fill width %d, want %d",
				u.Register, u.Fill.W, ri.Width)
		}
		c.regFills[u.Register] = u.Fill
		return nil
	default:
		return fmt.Errorf("controlplane: unknown update kind %d", u.Kind)
	}
}

func (c *Config) valueSetInfo(name string) *dataplane.ValueSetInfo {
	for _, vi := range c.Analysis.ValueSets {
		if vi.Name == name {
			return vi
		}
	}
	return nil
}

func actionInfo(ti *dataplane.TableInfo, name string) *dataplane.ActionInfo {
	for i := range ti.Actions {
		if ti.Actions[i].Name == name {
			return &ti.Actions[i]
		}
	}
	return nil
}

func actionIndex(ti *dataplane.TableInfo, name string) int {
	for i := range ti.Actions {
		if ti.Actions[i].Name == name {
			return i
		}
	}
	return -1
}

func validateParams(table string, ai *dataplane.ActionInfo, params []sym.BV) error {
	if len(params) != len(ai.Params) {
		return fmt.Errorf("controlplane: %s action %s takes %d params, got %d",
			table, ai.Name, len(ai.Params), len(params))
	}
	for i, p := range params {
		if p.W != ai.ParamWidths[i] {
			return fmt.Errorf("controlplane: %s action %s param %d width %d, want %d",
				table, ai.Name, i, p.W, ai.ParamWidths[i])
		}
	}
	return nil
}

func (c *Config) validateEntry(ti *dataplane.TableInfo, e *TableEntry) error {
	if len(e.Matches) != len(ti.KeyWidths) {
		return fmt.Errorf("controlplane: %s entry has %d match fields, want %d",
			ti.Name, len(e.Matches), len(ti.KeyWidths))
	}
	for i, m := range e.Matches {
		w := ti.KeyWidths[i]
		if m.Kind != ti.KeyMatch[i] {
			return fmt.Errorf("controlplane: %s key %d is %s, entry supplies %s",
				ti.Name, i, ti.KeyMatch[i], m.Kind)
		}
		if m.Value.W != w {
			return fmt.Errorf("controlplane: %s key %d width %d, want %d",
				ti.Name, i, m.Value.W, w)
		}
		switch m.Kind {
		case MatchTernary:
			if m.Mask.W != w {
				return fmt.Errorf("controlplane: %s key %d ternary mask width %d, want %d",
					ti.Name, i, m.Mask.W, w)
			}
		case MatchLPM:
			if m.PrefixLen < 0 || m.PrefixLen > int(w) {
				return fmt.Errorf("controlplane: %s key %d prefix length %d out of range 0..%d",
					ti.Name, i, m.PrefixLen, w)
			}
		}
	}
	ai := actionInfo(ti, e.Action)
	if ai == nil {
		return fmt.Errorf("controlplane: table %s has no action %s", ti.Name, e.Action)
	}
	if ai.Name == "NoAction" && len(e.Params) != 0 {
		return fmt.Errorf("controlplane: NoAction takes no params")
	}
	if ai.Name != "NoAction" {
		if err := validateParams(ti.Name, ai, e.Params); err != nil {
			return err
		}
	}
	return nil
}
