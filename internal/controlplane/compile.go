package controlplane

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/flayerr"
	"repro/internal/sym"
	"sort"
)

// CompileStats reports what assignment compilation did for one table.
type CompileStats struct {
	Installed       int
	Eclipsed        int
	Overapproximate bool
}

// ActiveEntries returns a table's entries in match order (the order the
// ite chain evaluates them), with duplicate and eclipsed entries
// omitted — "entries that are duplicate or eclipsed by higher-priority
// entries (and thus have no effect) are omitted in the set of
// control-plane assignments" (§4.1).
func (c *Config) ActiveEntries(table string) ([]*TableEntry, int) {
	ti := c.Analysis.Tables[table]
	entries := append([]*TableEntry(nil), c.tables[table]...)
	sortEntries(ti, entries)
	var active []*TableEntry
	eclipsed := 0
	for _, e := range entries {
		if coveredByAny(ti, active, e) {
			eclipsed++
			continue
		}
		active = append(active, e)
	}
	return active, eclipsed
}

// sortEntries orders entries by match precedence: priority descending,
// then total prefix/mask specificity descending (longest-prefix-match),
// then insertion order for determinism.
func sortEntries(ti *dataplane.TableInfo, entries []*TableEntry) {
	spec := func(e *TableEntry) int {
		s := 0
		for i, m := range e.Matches {
			s += m.ternaryMask(ti.KeyWidths[i]).PopCount()
		}
		return s
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Priority != entries[j].Priority {
			return entries[i].Priority > entries[j].Priority
		}
		si, sj := spec(entries[i]), spec(entries[j])
		if si != sj {
			return si > sj
		}
		return entries[i].seq < entries[j].seq
	})
}

// coveredByAny reports whether some earlier (higher-precedence) active
// entry matches every packet that e matches, making e unreachable.
func coveredByAny(ti *dataplane.TableInfo, active []*TableEntry, e *TableEntry) bool {
	for _, a := range active {
		if covers(ti, a, e) {
			return true
		}
	}
	return false
}

// covers reports whether entry a matches a superset of the packets entry
// b matches: for every key component, a's mask is a subset of b's mask
// and the two values agree on a's mask.
func covers(ti *dataplane.TableInfo, a, b *TableEntry) bool {
	for i := range a.Matches {
		w := ti.KeyWidths[i]
		ma := a.Matches[i].ternaryMask(w)
		mb := b.Matches[i].ternaryMask(w)
		if ma.And(mb) != ma {
			return false // a constrains a bit b doesn't: a can miss where b hits
		}
		if a.Matches[i].Value.And(ma) != b.Matches[i].Value.And(ma) {
			return false
		}
	}
	return true
}

// Env is a substitution environment for control-plane placeholders.
type Env = map[*sym.Expr]*sym.Expr

// CompileTable builds the control-plane assignment for one table: the
// selector, hit and parameter placeholders become expressions over the
// table's key expressions (Fig. 5b). Past the overapproximation
// threshold — or while the table is pinned by ForceOverapprox —
// placeholders become fresh unconstrained data variables — the paper's
// "*any*" assignment.
func (c *Config) CompileTable(b *sym.Builder, table string) (Env, CompileStats, error) {
	return c.compileTable(b, table, c.Overapproximated(table))
}

// CompileTablePrecise builds the assignment the table would have
// without any ForceOverapprox pin — the reference the adaptive
// precision controller's differential check compares degraded verdicts
// against. The static entry-count threshold still applies.
func (c *Config) CompileTablePrecise(b *sym.Builder, table string) (Env, CompileStats, error) {
	return c.compileTable(b, table, len(c.tables[table]) > c.threshold())
}

func (c *Config) compileTable(b *sym.Builder, table string, overapprox bool) (Env, CompileStats, error) {
	ti, ok := c.Analysis.Tables[table]
	if !ok {
		return nil, CompileStats{}, fmt.Errorf("controlplane: %w %s", flayerr.ErrUnknownTable, table)
	}
	env := make(Env)
	stats := CompileStats{Installed: len(c.tables[table])}
	c.met.compiles.Inc()

	if overapprox {
		stats.Overapproximate = true
		c.met.overapprox.Inc()
		env[ti.ActionVar] = b.Data(ti.Name+".$action.any", 8)
		env[ti.HitVar] = b.Data(ti.Name+".$hit.any", 1)
		for _, ai := range ti.Actions {
			for pi, pv := range ai.Params {
				env[pv] = b.Data(fmt.Sprintf("%s.%s#%d.any", ti.Name, ai.Name, pi), ai.ParamWidths[pi])
			}
		}
		return env, stats, nil
	}

	active, eclipsed := c.ActiveEntries(table)
	stats.Eclipsed = eclipsed
	c.met.eclipsed.Add(int64(eclipsed))

	// Miss behaviour: the default action (possibly overridden).
	defIdx := ti.DefaultIndex
	defParams := ti.DefaultArgs
	if d, ok := c.defaults[table]; ok {
		defIdx = actionIndex(ti, d.Name)
		defParams = d.Params
	}

	sel := b.ConstUint(8, uint64(defIdx))
	hit := b.False()
	params := make(map[*sym.Expr]*sym.Expr)
	for ai := range ti.Actions {
		info := &ti.Actions[ai]
		for pi, pv := range info.Params {
			// Parameter fallback: the default action's bound argument
			// when this is the default action, else zero (the value is
			// irrelevant unless the selector picks the action).
			val := sym.BV{W: info.ParamWidths[pi]}
			if ai == defIdx && pi < len(defParams) {
				val = defParams[pi]
			}
			params[pv] = b.Const(val.ZeroExtend(info.ParamWidths[pi]))
		}
	}

	// Build the ite chain from lowest to highest precedence so the
	// highest-precedence entry ends up outermost (first evaluated).
	for i := len(active) - 1; i >= 0; i-- {
		e := active[i]
		m := c.entryCond(b, ti, e)
		ai := actionIndex(ti, e.Action)
		sel = b.Ite(m, b.ConstUint(8, uint64(ai)), sel)
		hit = b.Or(m, hit)
		info := &ti.Actions[ai]
		for pi, pv := range info.Params {
			params[pv] = b.Ite(m, b.Const(e.Params[pi]), params[pv])
		}
	}
	env[ti.ActionVar] = sel
	env[ti.HitVar] = hit
	for pv, val := range params {
		env[pv] = val
	}
	return env, stats, nil
}

// entryCond is the match condition of one entry against the table's
// symbolic key expressions.
func (c *Config) entryCond(b *sym.Builder, ti *dataplane.TableInfo, e *TableEntry) *sym.Expr {
	cond := b.True()
	for i, m := range e.Matches {
		key := ti.KeyExprs[i]
		w := ti.KeyWidths[i]
		mask := m.ternaryMask(w)
		switch {
		case mask.IsZero():
			// Wildcard component: matches everything.
		case mask.IsAllOnes():
			cond = b.And(cond, b.Eq(key, b.Const(m.Value)))
		default:
			masked := b.And(key, b.Const(mask))
			cond = b.And(cond, b.Eq(masked, b.Const(m.Value.And(mask))))
		}
	}
	return cond
}

// CompileValueSet builds the assignments for every use site of a value
// set: the match placeholder becomes the disjunction of member matches
// against the site's key expression; an unconfigured set yields false
// (which is what lets the §3 parser specializations remove branches).
func (c *Config) CompileValueSet(b *sym.Builder, name string) Env {
	env := make(Env)
	c.met.vsCompiles.Inc()
	members := c.valueSets[name]
	for _, vi := range c.Analysis.ValueSets {
		if vi.Name != name {
			continue
		}
		cond := b.False()
		for _, m := range members {
			switch {
			case m.Mask.W == 0 || m.Mask.IsAllOnes():
				cond = b.Or(cond, b.Eq(vi.KeyExpr, b.Const(m.Value)))
			case m.Mask.IsZero():
				cond = b.True()
			default:
				masked := b.And(vi.KeyExpr, b.Const(m.Mask))
				cond = b.Or(cond, b.Eq(masked, b.Const(m.Value.And(m.Mask))))
			}
		}
		env[vi.MatchVar] = cond
	}
	return env
}

// CompileRegister builds the assignments for a register's read sites: a
// uniform fill substitutes the constant; otherwise each site becomes an
// independent unconstrained data variable (each read may observe a
// different data-plane-written value).
func (c *Config) CompileRegister(b *sym.Builder, name string) Env {
	env := make(Env)
	c.met.rgCompiles.Inc()
	ri, ok := c.Analysis.Registers[name]
	if !ok {
		return env
	}
	// A register the data plane writes can hold values other than the
	// fill, so its reads must stay unconstrained.
	if fill, ok := c.regFills[name]; ok && !ri.Written {
		v := b.Const(fill)
		for _, rv := range ri.ReadVars {
			env[rv] = v
		}
		return env
	}
	for i, rv := range ri.ReadVars {
		env[rv] = b.Data(fmt.Sprintf("%s#%d.any", name, i), ri.Width)
	}
	return env
}

// CompileEnv compiles the entire configuration into one substitution
// environment covering every control-plane placeholder in the analysis.
func (c *Config) CompileEnv(b *sym.Builder) (Env, map[string]CompileStats, error) {
	env := make(Env)
	stats := make(map[string]CompileStats, len(c.Analysis.Tables))
	for name := range c.Analysis.Tables {
		te, st, err := c.CompileTable(b, name)
		if err != nil {
			return nil, nil, err
		}
		stats[name] = st
		for k, v := range te {
			env[k] = v
		}
	}
	seenVS := make(map[string]bool)
	for _, vi := range c.Analysis.ValueSets {
		if seenVS[vi.Name] {
			continue
		}
		seenVS[vi.Name] = true
		for k, v := range c.CompileValueSet(b, vi.Name) {
			env[k] = v
		}
	}
	for name := range c.Analysis.Registers {
		for k, v := range c.CompileRegister(b, name) {
			env[k] = v
		}
	}
	return env, stats, nil
}
