package controlplane

import "repro/internal/sym"

// Assignment fingerprints. The specialization-query cache (internal/
// core) keys every cached verdict on the control-plane assignment slice
// the point depends on; a fingerprint condenses one compiled fragment —
// the Env a single table/value-set/register compiles to — into a 64-bit
// value that is stable across runs and engines. Stability comes from
// hashing canonical node hashes (sym.Canon), never builder-assigned
// ids, and from combining the pairs with XOR so map iteration order
// cannot leak in.

// EnvFingerprint condenses a compiled assignment fragment into a 64-bit
// fingerprint. Two fragments binding the same placeholders to
// structurally equal expressions fingerprint identically in every run;
// because each (placeholder, value) pair is avalanche-mixed before the
// order-independent XOR combine, any single changed binding flips the
// result with overwhelming probability.
//
// Past the overapproximation threshold a table's fragment degenerates
// to the deterministic "*any*" assignment, so burst inserts into an
// already-overapproximated table keep the fingerprint — and with it
// every dependent cache entry — stable. That is precisely the paper's
// Fig. 1 churn regime, and where the cache earns its keep.
func EnvFingerprint(env Env) uint64 {
	// Non-zero seed so an empty fragment has a well-defined fingerprint
	// distinct from the zero value of a missing one.
	acc := uint64(0x9e3779b97f4a7c15)
	for k, v := range env {
		ck, cv := k.Canon(), v.Canon()
		h := sym.Mix64(ck.Lo + 0xa0761d6478bd642f)
		h = sym.Mix64(h ^ ck.Hi)
		h = sym.Mix64(h ^ cv.Lo)
		h = sym.Mix64(h ^ cv.Hi)
		acc ^= h
	}
	return acc
}
