package controlplane

import (
	"math/rand"
	"testing"

	"repro/internal/sym"
)

// TestCompiledSelectorMatchesOperationalSemantics is the cross-layer
// property tying the two implementations of table matching together:
// evaluating the *compiled* control-plane assignment (the ite chain
// substituted into the data-plane model) on a concrete key must select
// exactly the entry that operational first-match semantics (the
// reference interpreter's path, via ActiveEntries) selects. If these
// ever disagree, specialization decisions would diverge from device
// behaviour.
func TestCompiledSelectorMatchesOperationalSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	an := analyze(t, aclSrc)
	b := an.Builder
	ti := an.Tables["Acl.acl"]

	for trial := 0; trial < 60; trial++ {
		cfg := NewConfig(an)
		cfg.OverapproxThreshold = -1
		n := r.Intn(12)
		for i := 0; i < n; i++ {
			mask := uint64(0xffffffff)
			if r.Intn(3) == 0 {
				mask = uint64(r.Uint32())
			}
			e := &TableEntry{
				Priority: r.Intn(5),
				Matches: []FieldMatch{
					{Kind: MatchTernary, Value: sym.NewBV(32, uint64(r.Uint32())), Mask: sym.NewBV(32, mask)},
					{Kind: MatchLPM, Value: sym.NewBV(32, uint64(r.Uint32())), PrefixLen: r.Intn(33)},
				},
				Action: []string{"allow", "deny"}[r.Intn(2)],
			}
			// Duplicates may be rejected; ignore.
			_ = cfg.Apply(&Update{Kind: InsertEntry, Table: "Acl.acl", Entry: e})
		}
		env, _, err := cfg.CompileTable(b, "Acl.acl")
		if err != nil {
			t.Fatal(err)
		}
		active, _ := cfg.ActiveEntries("Acl.acl")

		for probe := 0; probe < 40; probe++ {
			src := uint64(r.Uint32())
			dst := uint64(r.Uint32())
			if len(active) > 0 && r.Intn(2) == 0 {
				// Half the probes aim at an installed entry.
				e := active[r.Intn(len(active))]
				src = e.Matches[0].Value.Uint64()
				dst = e.Matches[1].Value.Uint64()
			}
			assign := sym.Env{
				b.Data("hdr.ipv4.src", 32): sym.NewBV(32, src),
				b.Data("hdr.ipv4.dst", 32): sym.NewBV(32, dst),
			}
			gotSel := sym.MustEval(env[ti.ActionVar], assign)
			gotHit := sym.MustEval(env[ti.HitVar], assign)

			// Operational first-match over the active (sorted,
			// eclipse-free) entries.
			keys := []sym.BV{sym.NewBV(32, src), sym.NewBV(32, dst)}
			wantIdx := ti.DefaultIndex
			wantHit := false
			for _, e := range active {
				if opMatches(e, keys) {
					wantHit = true
					wantIdx = actionIndex(ti, e.Action)
					break
				}
			}
			if int(gotSel.Uint64()) != wantIdx || gotHit.IsTrue() != wantHit {
				t.Fatalf("trial %d probe %d: compiled (sel=%d hit=%v) vs operational (sel=%d hit=%v)\nentries: %v",
					trial, probe, gotSel.Uint64(), gotHit.IsTrue(), wantIdx, wantHit, active)
			}
		}
	}
}

// opMatches mirrors the interpreter's per-entry matching.
func opMatches(e *TableEntry, keys []sym.BV) bool {
	for i, m := range e.Matches {
		key := keys[i]
		switch m.Kind {
		case MatchExact:
			if key != m.Value {
				return false
			}
		case MatchTernary:
			if key.And(m.Mask) != m.Value.And(m.Mask) {
				return false
			}
		case MatchLPM:
			if m.PrefixLen > 0 {
				mask := sym.AllOnes(key.W).Shl(uint(int(key.W) - m.PrefixLen))
				if key.And(mask) != m.Value.And(mask) {
					return false
				}
			}
		}
	}
	return true
}

// TestEclipseOmissionPreservesSemantics: removing eclipsed entries from
// the assignment must not change which action any packet gets.
func TestEclipseOmissionPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	an := analyze(t, aclSrc)
	ti := an.Tables["Acl.acl"]
	for trial := 0; trial < 40; trial++ {
		cfg := NewConfig(an)
		cfg.OverapproxThreshold = -1
		// Deliberately overlapping entries to provoke eclipses.
		for i := 0; i < 8; i++ {
			e := &TableEntry{
				Priority: r.Intn(3),
				Matches: []FieldMatch{
					{Kind: MatchTernary, Value: sym.NewBV(32, uint64(r.Intn(4))), Mask: sym.NewBV(32, uint64([]uint64{0, 0, 3, 0xffffffff}[r.Intn(4)]))},
					{Kind: MatchLPM, Value: sym.NewBV(32, uint64(r.Intn(2))<<30), PrefixLen: []int{0, 2, 2, 32}[r.Intn(4)]},
				},
				Action: []string{"allow", "deny"}[r.Intn(2)],
			}
			_ = cfg.Apply(&Update{Kind: InsertEntry, Table: "Acl.acl", Entry: e})
		}
		installed := cfg.Entries("Acl.acl")
		sorted := append([]*TableEntry(nil), installed...)
		sortEntries(ti, sorted)
		active, eclipsed := cfg.ActiveEntries("Acl.acl")
		if eclipsed == 0 {
			continue
		}
		// First-match over ALL sorted entries vs first-match over the
		// active subset must agree on every probe.
		for probe := 0; probe < 60; probe++ {
			keys := []sym.BV{sym.NewBV(32, uint64(r.Intn(8))), sym.NewBV(32, uint64(r.Intn(4))<<30)}
			pick := func(list []*TableEntry) string {
				for _, e := range list {
					if opMatches(e, keys) {
						return e.Action
					}
				}
				return "-default-"
			}
			if got, want := pick(active), pick(sorted); got != want {
				t.Fatalf("trial %d: eclipse omission changed behaviour: %s vs %s (eclipsed %d)",
					trial, got, want, eclipsed)
			}
		}
	}
}
