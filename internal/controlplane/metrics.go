package controlplane

import "repro/internal/obs"

// cpMetrics holds the configuration layer's pre-resolved instruments
// under the "cp." prefix. The zero value (all nil) is the disabled
// state; every instrument absorbs writes for free when nil, so Apply
// and the Compile* entry points stay branch-free.
type cpMetrics struct {
	applies  *obs.Counter // updates accepted into the configuration
	rejects  *obs.Counter // updates that failed validation
	compiles *obs.Counter // table-assignment recompilations

	overapprox *obs.Counter // table compiles that took the *any* path
	eclipsed   *obs.Counter // entries omitted as duplicate/eclipsed
	vsCompiles *obs.Counter // value-set assignment recompilations
	rgCompiles *obs.Counter // register assignment recompilations

	entries *obs.Gauge // installed entries across all tables
}

// SetObserver resolves the configuration layer's instruments from a
// registry; a nil registry disables them (the default).
func (c *Config) SetObserver(r *obs.Registry) {
	if r == nil {
		c.met = cpMetrics{}
		return
	}
	c.met = cpMetrics{
		applies:    r.Counter("cp.updates_applied"),
		rejects:    r.Counter("cp.updates_rejected"),
		compiles:   r.Counter("cp.table_compiles"),
		overapprox: r.Counter("cp.table_compiles_overapprox"),
		eclipsed:   r.Counter("cp.entries_eclipsed"),
		vsCompiles: r.Counter("cp.valueset_compiles"),
		rgCompiles: r.Counter("cp.register_compiles"),
		entries:    r.Gauge("cp.entries_installed"),
	}
}

// observeEntries refreshes the installed-entry gauge after a mutation.
func (c *Config) observeEntries() {
	if c.met.entries == nil {
		return
	}
	total := 0
	for _, es := range c.tables {
		total += len(es)
	}
	c.met.entries.Set(int64(total))
}
