package controlplane

import (
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

const fig5Src = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(h.eth); transition accept; }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) { egress_port = port_var; }
    action noop() { }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        std.egress_port = egress_port;
    }
}
`

const aclSrc = `
header ipv4_t { bit<32> src; bit<32> dst; bit<8> proto; }
struct headers { ipv4_t ipv4; }
struct metadata { }
control Acl(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action allow() { }
    action deny() { mark_to_drop(std); }
    table acl {
        key = { hdr.ipv4.src: ternary; hdr.ipv4.dst: lpm; }
        actions = { allow; deny; NoAction; }
        default_action = NoAction;
    }
    apply {
        acl.apply();
    }
}
`

func analyze(t *testing.T, src string) *dataplane.Analysis {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	an, err := dataplane.Analyze(prog, info, dataplane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func exactEntry(key uint64, action string, params ...sym.BV) *TableEntry {
	return &TableEntry{
		Matches: []FieldMatch{{Kind: MatchExact, Value: sym.NewBV(48, key)}},
		Action:  action,
		Params:  params,
	}
}

func TestEmptyTableCompile(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	env, stats, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != 0 || stats.Overapproximate {
		t.Fatalf("stats %+v", stats)
	}
	// Fig. 5b block B: empty table ⇒ selector is the default (noop=1),
	// hit is false.
	if env[ti.ActionVar] != b.ConstUint(8, 1) {
		t.Fatalf("selector = %s", env[ti.ActionVar])
	}
	if !env[ti.HitVar].IsFalse() {
		t.Fatalf("hit = %s", env[ti.HitVar])
	}
}

func TestOneEntryCompile(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	up := &Update{Kind: InsertEntry, Table: "Ingress.port_table",
		Entry: exactEntry(0xDEADBEEFF00D, "set", sym.NewBV(9, 1))}
	if err := cfg.Apply(up); err != nil {
		t.Fatal(err)
	}
	env, _, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5b block C: selector = ite(dst == key, set, noop).
	key := b.Data("h.eth.dst", 48)
	match := b.Eq(key, b.ConstUint(48, 0xDEADBEEFF00D))
	if env[ti.ActionVar] != b.Ite(match, b.ConstUint(8, 0), b.ConstUint(8, 1)) {
		t.Fatalf("selector = %s", env[ti.ActionVar])
	}
	if env[ti.HitVar] != match {
		t.Fatalf("hit = %s", env[ti.HitVar])
	}
	if env[ti.Actions[0].Params[0]] != b.Ite(match, b.ConstUint(9, 1), b.ConstUint(9, 0)) {
		t.Fatalf("param = %s", env[ti.Actions[0].Params[0]])
	}
}

func TestInsertModifyDelete(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	e := exactEntry(1, "set", sym.NewBV(9, 1))
	ins := &Update{Kind: InsertEntry, Table: "Ingress.port_table", Entry: e}
	if err := cfg.Apply(ins); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Apply(ins); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate insert: %v", err)
	}
	mod := exactEntry(1, "set", sym.NewBV(9, 2))
	if err := cfg.Apply(&Update{Kind: ModifyEntry, Table: "Ingress.port_table", Entry: mod}); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Entries("Ingress.port_table"); len(got) != 1 || got[0].Params[0].Uint64() != 2 {
		t.Fatalf("modify did not replace: %+v", got)
	}
	if err := cfg.Apply(&Update{Kind: DeleteEntry, Table: "Ingress.port_table", Entry: mod}); err != nil {
		t.Fatal(err)
	}
	if cfg.NumEntries("Ingress.port_table") != 0 {
		t.Fatal("delete failed")
	}
	if err := cfg.Apply(&Update{Kind: DeleteEntry, Table: "Ingress.port_table", Entry: mod}); err == nil {
		t.Fatal("delete of missing entry should fail")
	}
	if err := cfg.Apply(&Update{Kind: ModifyEntry, Table: "Ingress.port_table", Entry: mod}); err == nil {
		t.Fatal("modify of missing entry should fail")
	}
}

func TestValidationErrors(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	cases := []struct {
		name string
		up   *Update
		sub  string
	}{
		{"unknown table", &Update{Kind: InsertEntry, Table: "Ingress.ghost",
			Entry: exactEntry(1, "set", sym.NewBV(9, 1))}, "unknown table"},
		{"wrong width", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: &TableEntry{Matches: []FieldMatch{{Kind: MatchExact, Value: sym.NewBV(32, 1)}},
				Action: "set", Params: []sym.BV{sym.NewBV(9, 1)}}}, "width"},
		{"wrong kind", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: &TableEntry{Matches: []FieldMatch{{Kind: MatchTernary, Value: sym.NewBV(48, 1), Mask: sym.AllOnes(48)}},
				Action: "set", Params: []sym.BV{sym.NewBV(9, 1)}}}, "entry supplies"},
		{"unknown action", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: exactEntry(1, "ghost")}, "no action"},
		{"param count", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: exactEntry(1, "set")}, "params"},
		{"param width", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: exactEntry(1, "set", sym.NewBV(8, 1))}, "width"},
		{"match count", &Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: &TableEntry{Action: "set", Params: []sym.BV{sym.NewBV(9, 1)}}}, "match fields"},
		{"bad default", &Update{Kind: SetDefault, Table: "Ingress.port_table",
			Default: ActionCall{Name: "ghost"}}, "no action"},
		{"unknown register", &Update{Kind: FillRegister, Register: "Ingress.ghost",
			Fill: sym.NewBV(32, 0)}, "unknown register"},
		{"unknown value set", &Update{Kind: SetValueSet, ValueSet: "P.ghost"}, "unknown value set"},
	}
	for _, c := range cases {
		err := cfg.Apply(c.up)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.sub)
		}
	}
	if cfg.NumEntries("Ingress.port_table") != 0 {
		t.Fatal("failed updates must not mutate the config")
	}
}

func ternaryMatch(src uint64, srcMask uint64, dst uint64, plen int) []FieldMatch {
	return []FieldMatch{
		{Kind: MatchTernary, Value: sym.NewBV(32, src), Mask: sym.NewBV(32, srcMask)},
		{Kind: MatchLPM, Value: sym.NewBV(32, dst), PrefixLen: plen},
	}
}

func TestEclipseDetection(t *testing.T) {
	an := analyze(t, aclSrc)
	cfg := NewConfig(an)
	insert := func(prio int, m []FieldMatch, action string) {
		t.Helper()
		err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Acl.acl",
			Entry: &TableEntry{Priority: prio, Matches: m, Action: action}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// High-priority wildcard-src /8 rule covers a low-priority /16 rule
	// under it.
	insert(10, ternaryMatch(0, 0, 0x0a000000, 8), "allow")
	insert(5, ternaryMatch(0, 0, 0x0a010000, 16), "deny") // eclipsed by the /8
	insert(7, ternaryMatch(0x01020304, 0xffffffff, 0x0b000000, 8), "deny")

	active, eclipsed := cfg.ActiveEntries("Acl.acl")
	if eclipsed != 1 {
		t.Fatalf("eclipsed = %d, want 1", eclipsed)
	}
	if len(active) != 2 {
		t.Fatalf("active = %d, want 2", len(active))
	}
	if active[0].Priority != 10 || active[1].Priority != 7 {
		t.Fatalf("active order wrong: %v, %v", active[0], active[1])
	}
}

func TestEclipseRequiresValueAgreement(t *testing.T) {
	an := analyze(t, aclSrc)
	cfg := NewConfig(an)
	insert := func(prio int, m []FieldMatch, action string) {
		t.Helper()
		if err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Acl.acl",
			Entry: &TableEntry{Priority: prio, Matches: m, Action: action}}); err != nil {
			t.Fatal(err)
		}
	}
	// Same shape but different /8 prefixes: neither covers the other.
	insert(10, ternaryMatch(0, 0, 0x0a000000, 8), "allow")
	insert(5, ternaryMatch(0, 0, 0x0b000000, 8), "deny")
	if _, eclipsed := cfg.ActiveEntries("Acl.acl"); eclipsed != 0 {
		t.Fatalf("eclipsed = %d, want 0", eclipsed)
	}
}

func TestLPMOrdering(t *testing.T) {
	an := analyze(t, aclSrc)
	cfg := NewConfig(an)
	b := an.Builder
	ti := an.Tables["Acl.acl"]
	insert := func(m []FieldMatch, action string) {
		t.Helper()
		if err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Acl.acl",
			Entry: &TableEntry{Matches: m, Action: action}}); err != nil {
			t.Fatal(err)
		}
	}
	// Insert the shorter prefix first; LPM semantics must still prefer
	// the longer prefix.
	insert(ternaryMatch(0, 0, 0x0a000000, 8), "allow")
	insert(ternaryMatch(0, 0, 0x0a010000, 16), "deny")
	env, _, err := cfg.CompileTable(b, "Acl.acl")
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the selector for dst=10.1.2.3: must pick deny (idx 1).
	assign := sym.Env{
		b.Data("hdr.ipv4.src", 32):       sym.NewBV(32, 0x01020304),
		b.Data("hdr.ipv4.dst", 32):       sym.NewBV(32, 0x0a010203),
		b.Data("hdr.ipv4.src.$valid", 1): sym.Bool(true),
	}
	_ = assign
	got, err := sym.Eval(env[ti.ActionVar], sym.Env{
		b.Data("hdr.ipv4.src", 32): sym.NewBV(32, 0x01020304),
		b.Data("hdr.ipv4.dst", 32): sym.NewBV(32, 0x0a010203),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != 1 {
		t.Fatalf("selector picked action %d, want deny(1)", got.Uint64())
	}
	// And for dst=10.2.x the /8 must win: allow (idx 0).
	got, err = sym.Eval(env[ti.ActionVar], sym.Env{
		b.Data("hdr.ipv4.src", 32): sym.NewBV(32, 0),
		b.Data("hdr.ipv4.dst", 32): sym.NewBV(32, 0x0a020203),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != 0 {
		t.Fatalf("selector picked action %d, want allow(0)", got.Uint64())
	}
}

func TestOverapproximation(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	cfg.OverapproxThreshold = 10
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	for i := 0; i < 11; i++ {
		err := cfg.Apply(&Update{Kind: InsertEntry, Table: "Ingress.port_table",
			Entry: exactEntry(uint64(i), "set", sym.NewBV(9, uint64(i%512)))})
		if err != nil {
			t.Fatal(err)
		}
	}
	env, stats, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Overapproximate {
		t.Fatal("expected overapproximation past the threshold")
	}
	sel := env[ti.ActionVar]
	if sel.Op != sym.OpVar || sel.Class != sym.DataVar {
		t.Fatalf("overapproximated selector should be a free data var, got %s", sel)
	}
}

func TestDefaultOverride(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	err := cfg.Apply(&Update{Kind: SetDefault, Table: "Ingress.port_table",
		Default: ActionCall{Name: "set", Params: []sym.BV{sym.NewBV(9, 7)}}})
	if err != nil {
		t.Fatal(err)
	}
	env, _, err := cfg.CompileTable(b, "Ingress.port_table")
	if err != nil {
		t.Fatal(err)
	}
	if env[ti.ActionVar] != b.ConstUint(8, 0) {
		t.Fatalf("selector = %s, want set(0)", env[ti.ActionVar])
	}
	if env[ti.Actions[0].Params[0]] != b.ConstUint(9, 7) {
		t.Fatalf("param = %s, want 7", env[ti.Actions[0].Params[0]])
	}
}

func TestCompileEnvCoversEverything(t *testing.T) {
	an := analyze(t, fig5Src)
	cfg := NewConfig(an)
	env, stats, err := cfg.CompileEnv(an.Builder)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats for %d tables", len(stats))
	}
	ti := an.Tables["Ingress.port_table"]
	for _, v := range []any{env[ti.ActionVar], env[ti.HitVar], env[ti.Actions[0].Params[0]]} {
		if v == nil {
			t.Fatal("env missing a placeholder")
		}
	}
	// After substituting the full env into every point, no control vars
	// may remain.
	for _, p := range an.Points {
		sub := an.Builder.Subst(p.Expr, env)
		if sym.HasCtrlVars(sub) {
			t.Fatalf("point %s still has ctrl vars after full substitution: %s", p, sub)
		}
	}
}
