// Package obs is goflay's observability layer: a stdlib-only metrics
// registry (counters, gauges, bounded-memory latency histograms), a
// structured span tracer, and the specialization decision audit trail.
//
// Everything in the package is nil-tolerant by design: a nil *Counter,
// *Gauge, *Histogram, *Trace or *Trail accepts every write as a no-op
// without allocating, so instrumented hot paths (core.Apply, the solver)
// need neither branches nor indirection when observability is disabled —
// disabled observability is the zero value. Enabled instruments are safe
// for concurrent use.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Max raises the gauge to n if n is larger (a high-water mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the stored value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucketing: values 0..subCount-1 are exact; above that each
// power of two splits into subCount sub-buckets, so the relative
// quantile error is bounded by 1/subCount (6.25%) while the whole
// histogram stays a fixed ~8 KiB regardless of sample count — the
// bounded-memory property a per-update latency recorder needs.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits + 1) * histSubCount
)

// Histogram is a fixed-size log-linear histogram of non-negative int64
// samples (typically latencies in nanoseconds).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> (uint(e) - histSubBits)) & (histSubCount - 1)
	return (e-histSubBits+1)<<histSubBits + int(sub)
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	oct := idx >> histSubBits
	sub := idx & (histSubCount - 1)
	lower := uint64(histSubCount+sub) << uint(oct-1)
	width := uint64(1) << uint(oct-1)
	return int64(lower + width/2)
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		h.min.Store(v)
		h.max.Store(v)
		return
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples (zero for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (zero for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the approximate q-quantile (0 <= q <= 1) of the
// recorded samples, or 0 when the histogram is empty. Concurrent
// observers may move the answer slightly; every read is atomic, so the
// snapshot is race-free. The exact recorded min and max clamp the
// estimate so tails never exceed observed extremes.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the desired sample.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if mn := h.min.Load(); v < mn {
				v = mn
			}
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.count.Load() == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named collection of instruments. Instruments are
// created on first use and live for the registry's lifetime; the same
// name always returns the same instrument. A nil registry hands out nil
// instruments, which absorb writes for free — so "metrics disabled" is
// simply "no registry".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (write-absorbing) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time dump of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteText renders the snapshot as sorted "name value" lines — the
// human-readable dump `flay analyze -metrics` prints.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	lines := make(map[string]string)
	for name, v := range s.Counters {
		names = append(names, name)
		lines[name] = fmt.Sprintf("%-40s %d", name, v)
	}
	for name, v := range s.Gauges {
		names = append(names, name)
		lines[name] = fmt.Sprintf("%-40s %d", name, v)
	}
	for name, h := range s.Histograms {
		names = append(names, name)
		lines[name] = fmt.Sprintf("%-40s count=%d p50=%d p95=%d p99=%d max=%d",
			name, h.Count, h.P50, h.P95, h.P99, h.Max)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintln(w, lines[name]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders a stable JSON object.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}
