package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanID identifies one span within a Trace. The zero SpanID means "no
// span" and is what every operation on a nil Trace returns, so span IDs
// can be threaded through call chains unconditionally.
type SpanID int64

// Attr is one integer-valued span attribute. Attributes are integers on
// purpose: every quantity the pipeline wants to attach (point counts,
// sequence numbers, worker ids, byte sizes) is a number, and keeping the
// value unboxed keeps enabled-path tracing cheap.
type Attr struct {
	Key string `json:"k"`
	Val int64  `json:"v"`
}

// Span is one completed (or in-flight, when EndNS is zero) region of
// pipeline work. Start/end are nanoseconds since the trace epoch, so
// spans from one trace order and nest without wall-clock arithmetic.
type Span struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace collects structured spans: parse → dataflow → taint → query →
// pass, with parent/child links and per-span attributes. A nil *Trace is
// the disabled tracer: Start returns 0 and every other method is a
// zero-allocation no-op, which is what the engine embeds by default.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
	index map[SpanID]int // span id -> slot in spans
	next  SpanID
}

// NewTrace returns an empty trace whose epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now(), index: make(map[SpanID]int)}
}

// Start opens a span under parent (0 for a root span) and returns its
// id. On a nil trace it returns 0 without allocating.
func (t *Trace) Start(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	t.index[id] = len(t.spans)
	t.spans = append(t.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartNS: time.Since(t.epoch).Nanoseconds(),
	})
	return id
}

// End closes the span. Unknown (including zero) ids are ignored, so the
// nil-trace zero id flows through harmlessly.
func (t *Trace) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[id]; ok {
		t.spans[i].EndNS = time.Since(t.epoch).Nanoseconds()
	}
}

// Attr attaches an integer attribute to an open or closed span.
func (t *Trace) Attr(id SpanID, key string, val int64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[id]; ok {
		t.spans[i].Attrs = append(t.spans[i].Attrs, Attr{Key: key, Val: val})
	}
}

// Spans returns a copy of all recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
	}
	return out
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteJSONL dumps every span as one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	for _, sp := range t.Spans() {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
