package obs

import (
	"regexp"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ ns, in, want string }{
		{"flay", "core.update_ns", "flay_core_update_ns"},
		{"", "core.cache-hits", "core_cache_hits"},
		{"", "9lives", "_9lives"},
		{"flay", "9lives", "flay_9lives"},
		{"", "a:b", "a:b"},
		{"", "sym.solver.calls", "sym_solver_calls"},
	}
	for _, c := range cases {
		if got := PromName(c.ns, c.in); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.ns, c.in, got, c.want)
		}
	}
}

func TestWritePromRendersEveryInstrument(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.updates").Add(42)
	r.Counter("core.cache_hits").Add(7)
	r.Gauge("server.sessions").Set(3)
	h := r.Histogram("core.update_ns")
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000)
	}

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, "flay"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE flay_core_updates counter\nflay_core_updates 42\n",
		"# TYPE flay_core_cache_hits counter\nflay_core_cache_hits 7\n",
		"# TYPE flay_server_sessions gauge\nflay_server_sessions 3\n",
		"# TYPE flay_core_update_ns summary\n",
		"flay_core_update_ns_count 100\n",
		"flay_core_update_ns_sum 5050000\n",
		`flay_core_update_ns{quantile="0.5"} `,
		`flay_core_update_ns{quantile="0.95"} `,
		`flay_core_update_ns{quantile="0.99"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromEmptyHistogramOmitsQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("core.eval_ns") // created, never observed

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "quantile") {
		t.Fatalf("empty summary must not emit quantile lines:\n%s", out)
	}
	if !strings.Contains(out, "core_eval_ns_count 0\n") || !strings.Contains(out, "core_eval_ns_sum 0\n") {
		t.Fatalf("empty summary must still emit _sum and _count:\n%s", out)
	}
}

// promLine accepts the three line shapes the encoder may produce.
var promLine = regexp.MustCompile(
	`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|` +
		`[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="0\.\d+"\})? -?\d+)$`)

func TestWritePromIsValidTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird..name-with%chars").Inc()
	r.Gauge("1starts.with.digit").Set(-5)
	r.Histogram("h").Observe(9)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, "flay"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	types := map[string]bool{}
	for _, line := range lines {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if types[name] {
				t.Errorf("duplicate TYPE declaration for %s", name)
			}
			types[name] = true
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("c").Set(1)
	r.Histogram("d").Observe(1)
	snap := r.Snapshot()

	var first strings.Builder
	if err := snap.WriteProm(&first, "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again strings.Builder
		if err := snap.WriteProm(&again, "x"); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	if !strings.HasPrefix(first.String(), "# TYPE x_a counter") {
		t.Fatalf("families not sorted by name:\n%s", first.String())
	}
}
