package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// xorshift is the repo's deterministic test RNG.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545f4914f6cdd1d
}

// TestHistogramQuantileAccuracy checks p50/p95/p99 against a sorted
// reference over 10k samples for three sample shapes. The log-linear
// buckets guarantee ≤ 1/16 relative error per sample; the assertion
// allows 10% to absorb the reference's own rank discretisation.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const n = 10000
	shapes := map[string]func(i int, rng *xorshift) int64{
		// Latency-like: long-tailed, spanning several octaves.
		"longtail": func(i int, rng *xorshift) int64 {
			base := int64(1000 + rng.next()%50000)
			if i%100 == 0 {
				base *= 50 // 1% slow outliers
			}
			return base
		},
		"uniform": func(_ int, rng *xorshift) int64 { return int64(rng.next() % 1_000_000) },
		"small":   func(_ int, rng *xorshift) int64 { return int64(rng.next() % 12) },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := xorshift(42)
			h := &Histogram{}
			ref := make([]int64, n)
			for i := 0; i < n; i++ {
				v := gen(i, &rng)
				ref[i] = v
				h.Observe(v)
			}
			sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
			if h.Count() != n {
				t.Fatalf("count = %d, want %d", h.Count(), n)
			}
			var sum int64
			for _, v := range ref {
				sum += v
			}
			if h.Sum() != sum {
				t.Fatalf("sum = %d, want %d", h.Sum(), sum)
			}
			for _, q := range []float64{0.50, 0.95, 0.99} {
				want := ref[int(q*float64(n-1))]
				got := h.Quantile(q)
				tol := math.Max(float64(want)*0.10, 1.5)
				if math.Abs(float64(got-want)) > tol {
					t.Errorf("q%.2f = %d, reference %d (tolerance %.0f)", q, got, want, tol)
				}
			}
			if h.Quantile(0) < ref[0] || h.Quantile(1) > ref[n-1] {
				t.Errorf("quantiles escape observed [min,max]: q0=%d q1=%d range [%d,%d]",
					h.Quantile(0), h.Quantile(1), ref[0], ref[n-1])
			}
		})
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	h.Observe(777)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 777 {
			t.Fatalf("single-sample q%.2f = %d, want 777", q, got)
		}
	}
	snap := h.Snapshot()
	if snap.Min != 777 || snap.Max != 777 || snap.Count != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestRegistryConcurrent hammers one counter, one gauge and one
// histogram from many goroutines; under `make race` this doubles as the
// data-race proof for the whole instrument set. Counts must be exact —
// the instruments are atomics, not sampled.
func TestRegistryConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve through the registry concurrently on purpose: the
			// same name must converge to the same instrument.
			c := r.Counter("test.updates")
			g := r.Gauge("test.depth")
			h := r.Histogram("test.latency")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Max(int64(w*perWorker + i))
				h.Observe(int64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("test.updates").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("test.latency").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("test.depth").Value(); got != workers*perWorker-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
}

// TestDisabledZeroAlloc pins the contract the hot path relies on: with
// observability disabled (nil instruments — what a Pipeline without
// Options.Tracer/Metrics carries), every instrumentation call allocates
// exactly 0 bytes.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Trace
	var reg *Registry
	var trail *Trail
	rec := AuditRecord{Target: "t", Decision: "forward"}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("update", 0)
		tr.Attr(sp, "seq", 1)
		tr.End(sp)
		reg.Counter("core.updates").Inc()
		reg.Gauge("core.points").Set(5)
		reg.Histogram("core.latency").ObserveDuration(time.Microsecond)
		trail.Append(rec)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f times per op, want 0", allocs)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("update", 0)
	child := tr.Start("query", root)
	tr.Attr(child, "points", 42)
	tr.End(child)
	tr.Attr(root, "seq", 7)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "update" || spans[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].Name != "query" || spans[1].Parent != root {
		t.Fatalf("child span wrong: %+v", spans[1])
	}
	if spans[1].EndNS < spans[1].StartNS || spans[0].EndNS < spans[1].EndNS {
		t.Fatalf("span nesting broken: root %+v child %+v", spans[0], spans[1])
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{Key: "points", Val: 42}) {
		t.Fatalf("child attrs wrong: %+v", spans[1].Attrs)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	var sp Span
	if err := json.Unmarshal([]byte(lines[0]), &sp); err != nil {
		t.Fatalf("jsonl line not parseable: %v", err)
	}
	if sp.Name != "update" {
		t.Fatalf("round-tripped span name %q", sp.Name)
	}
}

func TestTrailBoundedRing(t *testing.T) {
	tr := NewTrail(3)
	for seq := 1; seq <= 5; seq++ {
		tr.Append(AuditRecord{Seq: seq, Decision: "forward"})
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	for i, want := range []int{3, 4, 5} {
		if recs[i].Seq != want {
			t.Fatalf("record %d has seq %d, want %d (ring order broken)", i, recs[i].Seq, want)
		}
	}
	if tr.Dropped() != 2 || tr.Total() != 5 {
		t.Fatalf("dropped=%d total=%d, want 2/5", tr.Dropped(), tr.Total())
	}
}

func TestTrailJSONLAndCounts(t *testing.T) {
	tr := NewTrail(0)
	tr.Append(AuditRecord{Seq: 1, Target: "Ingress.t", Decision: "forward", Affected: 3})
	tr.Append(AuditRecord{Seq: 2, Target: "Ingress.t", Decision: "recompile",
		Changes: []PointChange{{Point: 9, Query: "executable", Old: "dead", New: "live", Worker: 2}}})
	tr.Append(AuditRecord{Seq: 3, Target: "Ingress.u", Decision: "rejected", Err: "bad entry"})

	counts := tr.CountByDecision()
	if counts["forward"] != 1 || counts["recompile"] != 1 || counts["rejected"] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3", len(lines))
	}
	var rec AuditRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 2 || len(rec.Changes) != 1 || rec.Changes[0].New != "live" {
		t.Fatalf("round-tripped record wrong: %+v", rec)
	}
}

func TestBucketMonotonicAndContinuous(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		if b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		mid := bucketMid(b)
		// The representative must stay within one sub-bucket's width.
		if v >= 16 {
			rel := math.Abs(float64(mid-v)) / float64(v)
			if rel > 1.0/histSubCount {
				t.Fatalf("bucketMid(%d)=%d too far from %d (rel %.3f)", b, mid, v, rel)
			}
		}
		prev = b
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(9)
	r.Histogram("c.hist").Observe(100)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ai, bi, ci := strings.Index(out, "a.gauge"), strings.Index(out, "b.count"), strings.Index(out, "c.hist")
	if ai < 0 || bi < 0 || ci < 0 || !(ai < bi && bi < ci) {
		t.Fatalf("text dump not sorted or incomplete:\n%s", out)
	}
}
