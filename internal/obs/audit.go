package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// PointChange records one program point whose specialization verdict
// flipped while processing an update: which query was re-answered
// ("executable" for reachability points, "constant" for value points),
// what the verdict moved from and to, and which evaluation worker
// re-proved it.
type PointChange struct {
	Point  int    `json:"point"`
	Query  string `json:"query"`
	Old    string `json:"old"`
	New    string `json:"new"`
	Worker int    `json:"worker"`
}

// AuditRecord is the audit trail's entry for one control-plane update:
// the paper's Fig.-2 decision, made inspectable. Seq is the engine's
// 1-based update sequence number (aligned with Stats.Updates); Batch is
// the ApplyBatch invocation number, 0 for sequential Apply.
type AuditRecord struct {
	Seq        int           `json:"seq"`
	Batch      int           `json:"batch,omitempty"`
	Target     string        `json:"target"`
	Update     string        `json:"update"`
	Decision   string        `json:"decision"`
	Affected   int           `json:"affected_points"`
	Changes    []PointChange `json:"changes,omitempty"`
	Components []string      `json:"components,omitempty"`
	ImplChange string        `json:"impl_change,omitempty"`
	ElapsedNS  int64         `json:"elapsed_ns"`
	Workers    int           `json:"workers"`
	// Precision marks decisions evaluated under a degraded
	// (deadline-forced overapproximated) assignment, and the adaptive
	// precision controller's own degrade/promote transition records.
	Precision string `json:"precision,omitempty"`
	Err       string `json:"error,omitempty"`
}

// Trail is the decision audit trail: an append-only, optionally bounded
// record of every specialization decision the engine makes. A nil
// *Trail is the disabled trail — Append is a zero-allocation no-op —
// so the engine carries one unconditionally. When a limit is set the
// trail keeps the most recent limit records (a ring) and counts what it
// dropped, keeping memory bounded on long-running controllers.
type Trail struct {
	mu      sync.Mutex
	recs    []AuditRecord
	start   int // ring start when full
	limit   int
	dropped int64
	total   int64
}

// NewTrail returns a trail keeping at most limit records; limit <= 0
// keeps everything.
func NewTrail(limit int) *Trail {
	return &Trail{limit: limit}
}

// Append records one decision. No-op on a nil trail.
func (t *Trail) Append(r AuditRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if t.limit > 0 && len(t.recs) == t.limit {
		t.recs[t.start] = r
		t.start = (t.start + 1) % t.limit
		t.dropped++
		return
	}
	t.recs = append(t.recs, r)
}

// Records returns the retained records in append order.
func (t *Trail) Records() []AuditRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]AuditRecord, 0, len(t.recs))
	out = append(out, t.recs[t.start:]...)
	out = append(out, t.recs[:t.start]...)
	return out
}

// Len returns the number of retained records.
func (t *Trail) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Total returns the number of records ever appended, including dropped
// ones.
func (t *Trail) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many records the ring evicted.
func (t *Trail) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// CountByDecision tallies retained records per decision kind.
func (t *Trail) CountByDecision() map[string]int {
	out := make(map[string]int)
	for _, r := range t.Records() {
		out[r.Decision]++
	}
	return out
}

// WriteJSONL dumps the retained records as one JSON object per line —
// the `flay -audit` / `flaybench -json` interchange format.
func (t *Trail) WriteJSONL(w io.Writer) error {
	for _, r := range t.Records() {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
