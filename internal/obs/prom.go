package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (text format version 0.0.4) for a metrics
// Snapshot. The encoder is independent of any HTTP server so both the
// flayd /metrics endpoint and flaybench can emit it: counters render as
// counter families, gauges as gauge families, and the bounded
// log-linear histograms as summary families with p50/p95/p99 quantile
// lines plus the exact _sum and _count series.
//
// goflay instrument names use dots as separators ("core.update_ns");
// Prometheus metric names may only contain [a-zA-Z0-9_:], so every
// invalid rune is rewritten to '_' and an optional namespace prefix is
// prepended ("flay" -> "flay_core_update_ns"). Output is sorted by
// family name, so the same snapshot always renders byte-identically.

// PromName sanitizes an instrument name into a legal Prometheus metric
// name, prepending the namespace when non-empty.
func PromName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 && namespace == "" {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text format. A summary
// family's quantile lines are emitted only when the histogram has
// samples (an observation-free summary carries just _sum and _count,
// both zero).
func (s Snapshot) WriteProm(w io.Writer, namespace string) error {
	type family struct {
		name  string
		lines []string
	}
	families := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))

	for name, v := range s.Counters {
		pn := PromName(namespace, name)
		families = append(families, family{pn, []string{
			fmt.Sprintf("# TYPE %s counter", pn),
			fmt.Sprintf("%s %d", pn, v),
		}})
	}
	for name, v := range s.Gauges {
		pn := PromName(namespace, name)
		families = append(families, family{pn, []string{
			fmt.Sprintf("# TYPE %s gauge", pn),
			fmt.Sprintf("%s %d", pn, v),
		}})
	}
	for name, h := range s.Histograms {
		pn := PromName(namespace, name)
		lines := []string{fmt.Sprintf("# TYPE %s summary", pn)}
		if h.Count > 0 {
			lines = append(lines,
				fmt.Sprintf(`%s{quantile="0.5"} %d`, pn, h.P50),
				fmt.Sprintf(`%s{quantile="0.95"} %d`, pn, h.P95),
				fmt.Sprintf(`%s{quantile="0.99"} %d`, pn, h.P99),
			)
		}
		lines = append(lines,
			fmt.Sprintf("%s_sum %d", pn, h.Sum),
			fmt.Sprintf("%s_count %d", pn, h.Count),
		)
		families = append(families, family{pn, lines})
	}

	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	for _, f := range families {
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
