// Trace-driven control-plane churn generators: ControlPlaneSmith's
// second mode. Where Stream mixes update kinds uniformly, these
// generators reproduce the *temporal shapes* of real control-plane
// churn that Fig. 1 argues about — diurnal connection drift, route-flap
// storms, incremental ACL rollouts, and delete-heavy garbage
// collection. Every pattern is deterministic per seed, emits batch
// boundaries matching how a controller would push it, and declares a
// steady-state invariant (the number of entries it leaves live) so
// long-horizon soaks can assert the engine tracked it exactly.
package fuzz

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
)

// PatternKind identifies one churn shape.
type PatternKind uint8

const (
	// Diurnal: connection state ramps up toward a daily peak and drains
	// back to a baseline, in repeated cycles.
	Diurnal PatternKind = iota
	// FlapStorm: a small set of entries is withdrawn and re-announced
	// in rapid bursts (route flapping).
	FlapStorm
	// ACLRollout: an incremental policy rollout — waves of inserts that
	// only ever grow the table.
	ACLRollout
	// GCSweep: delete-heavy garbage collection — a build-up phase
	// followed by sweeps that expire most of it.
	GCSweep
)

var patternNames = [...]string{"diurnal", "flapstorm", "acl-rollout", "gc"}

func (k PatternKind) String() string {
	if int(k) < len(patternNames) {
		return patternNames[k]
	}
	return "pattern?"
}

// PatternKinds returns every churn pattern, in canonical order.
func PatternKinds() []PatternKind {
	return []PatternKind{Diurnal, FlapStorm, ACLRollout, GCSweep}
}

// ParsePattern maps a pattern name (as printed by String) to its kind.
func ParsePattern(s string) (PatternKind, error) {
	for i, n := range patternNames {
		if n == s {
			return PatternKind(i), nil
		}
	}
	return 0, fmt.Errorf("fuzz: unknown churn pattern %q (have %v)", s, patternNames)
}

// ChurnSpec configures one churn stream.
type ChurnSpec struct {
	Kind PatternKind
	// Table is the churned table (typically the program's BurstTable).
	Table string
	// Updates is the exact stream length (minimum 8).
	Updates int
	// Seed makes the stream reproducible; 0 picks a fixed default.
	Seed uint64
}

// ChurnStream is a reproducible churn workload. Updates is the full
// ordered stream; batch boundaries partition it the way a controller
// would push it (ramp chunks, flap bursts, rollout waves, GC sweeps).
// Replaying the stream in order against a configuration that has seen
// its prefix never rejects.
type ChurnStream struct {
	Spec    ChurnSpec
	Updates []*controlplane.Update
	// WantLive is the declared steady-state invariant: the number of
	// entries the stream leaves live in Spec.Table, relative to the
	// configuration it started from.
	WantLive int
	// ends[i] is the index one past batch i's last update.
	ends []int
	// live are the entries left installed, in insertion order.
	live []*controlplane.TableEntry
}

// Drain returns delete updates for every entry the stream leaves live,
// in insertion order. Replaying a stream and then its drain returns the
// churned table to exactly its pre-churn configuration — the building
// block long-horizon soaks use to hold steady state (and a flat heap)
// across millions of updates without key-space collisions.
func (cs *ChurnStream) Drain() []*controlplane.Update {
	out := make([]*controlplane.Update, 0, len(cs.live))
	for _, e := range cs.live {
		out = append(out, &controlplane.Update{
			Kind: controlplane.DeleteEntry, Table: cs.Spec.Table, Entry: e,
		})
	}
	return out
}

// Batches partitions the stream at its declared batch boundaries.
func (cs *ChurnStream) Batches() [][]*controlplane.Update {
	var out [][]*controlplane.Update
	start := 0
	for _, end := range cs.ends {
		if end > start {
			out = append(out, cs.Updates[start:end])
		}
		start = end
	}
	if start < len(cs.Updates) {
		out = append(out, cs.Updates[start:])
	}
	return out
}

// CheckInvariant verifies the steady-state invariant against the number
// of entries the churned table gained since the stream's start (callers
// subtract the pre-churn entry count).
func (cs *ChurnStream) CheckInvariant(gained int) error {
	if gained != cs.WantLive {
		return fmt.Errorf("fuzz: %s churn on %s left %d entries, want %d",
			cs.Spec.Kind, cs.Spec.Table, gained, cs.WantLive)
	}
	return nil
}

// Churn generates the churn stream described by spec against the
// program's schemas. Deterministic per (spec, analysis).
func Churn(an *dataplane.Analysis, spec ChurnSpec) (*ChurnStream, error) {
	if spec.Updates < 8 {
		return nil, fmt.Errorf("fuzz: churn needs at least 8 updates, got %d", spec.Updates)
	}
	if _, ok := an.Tables[spec.Table]; !ok {
		return nil, fmt.Errorf("fuzz: unknown table %s", spec.Table)
	}
	c := &churner{g: New(an, spec.Seed), spec: spec}
	var err error
	switch spec.Kind {
	case Diurnal:
		err = c.diurnal()
	case FlapStorm:
		err = c.flapStorm()
	case ACLRollout:
		err = c.aclRollout()
	case GCSweep:
		err = c.gcSweep()
	default:
		return nil, fmt.Errorf("fuzz: unknown churn pattern %d", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	if len(c.out) != spec.Updates {
		return nil, fmt.Errorf("fuzz: %s churn emitted %d updates, want %d", spec.Kind, len(c.out), spec.Updates)
	}
	return &ChurnStream{Spec: spec, Updates: c.out, WantLive: len(c.live), ends: c.ends, live: c.live}, nil
}

// churner accumulates one stream with exact live-entry bookkeeping, so
// the declared invariant holds by construction.
type churner struct {
	g    *Generator
	spec ChurnSpec
	live []*controlplane.TableEntry
	out  []*controlplane.Update
	ends []int
}

func (c *churner) insert() error {
	e, err := c.g.Entry(c.spec.Table)
	if err != nil {
		return err
	}
	c.live = append(c.live, e)
	c.out = append(c.out, &controlplane.Update{
		Kind: controlplane.InsertEntry, Table: c.spec.Table, Entry: e,
	})
	return nil
}

// reinsert re-announces a previously deleted entry unchanged.
func (c *churner) reinsert(e *controlplane.TableEntry) {
	c.live = append(c.live, e)
	c.out = append(c.out, &controlplane.Update{
		Kind: controlplane.InsertEntry, Table: c.spec.Table, Entry: e,
	})
}

func (c *churner) deleteAt(i int) *controlplane.TableEntry {
	e := c.live[i]
	c.live = append(c.live[:i:i], c.live[i+1:]...)
	c.out = append(c.out, &controlplane.Update{
		Kind: controlplane.DeleteEntry, Table: c.spec.Table, Entry: e,
	})
	return e
}

// modify rewrites a live entry's action parameters in place (same key,
// same action, fresh params).
func (c *churner) modify(i int) {
	old := c.live[i]
	ti := c.g.an.Tables[c.spec.Table]
	e := &controlplane.TableEntry{Priority: old.Priority, Matches: old.Matches, Action: old.Action}
	for _, ai := range ti.Actions {
		if ai.Name == old.Action {
			for _, pw := range ai.ParamWidths {
				e.Params = append(e.Params, c.g.bv(pw))
			}
			break
		}
	}
	c.live[i] = e
	c.out = append(c.out, &controlplane.Update{
		Kind: controlplane.ModifyEntry, Table: c.spec.Table, Entry: e,
	})
}

func (c *churner) endBatch() {
	if len(c.ends) == 0 || c.ends[len(c.ends)-1] < len(c.out) {
		c.ends = append(c.ends, len(c.out))
	}
}

func (c *churner) pick() int {
	return int(c.g.next() % uint64(len(c.live)))
}

// diurnal: a baseline is installed, then cycles ramp connections up and
// drain the same connections back down, with occasional modifies of
// baseline entries. Leaves exactly the baseline live.
func (c *churner) diurnal() error {
	n := c.spec.Updates
	base := n / 10
	if base < 3 {
		base = 3
	}
	if base > 24 {
		base = 24
	}
	for i := 0; i < base; i++ {
		if err := c.insert(); err != nil {
			return err
		}
	}
	c.endBatch()
	remaining := n - base
	cycles := 4
	if remaining/cycles < 4 {
		cycles = 1
	}
	per := remaining / cycles
	for cy := 0; cy < cycles; cy++ {
		budget := per
		if cy == cycles-1 {
			budget = remaining - per*(cycles-1)
		}
		rise := budget / 2
		for i := 0; i < rise; i++ {
			if err := c.insert(); err != nil {
				return err
			}
			if (i+1)%8 == 0 {
				c.endBatch()
			}
		}
		c.endBatch()
		// Drain: expire the ramp's connections newest-first.
		for i := 0; i < rise; i++ {
			c.deleteAt(len(c.live) - 1)
			if (i+1)%8 == 0 {
				c.endBatch()
			}
		}
		c.endBatch()
		// Off-peak trickle: reconfigure baseline entries.
		for i := 0; i < budget-2*rise; i++ {
			c.modify(c.pick())
		}
		c.endBatch()
	}
	return nil
}

// flapStorm: a set of flappers is announced, then storms withdraw and
// re-announce them in bursts. Every flapper is live again at the end.
func (c *churner) flapStorm() error {
	n := c.spec.Updates
	flappers := n / 12
	if flappers < 3 {
		flappers = 3
	}
	if flappers > 16 {
		flappers = 16
	}
	for i := 0; i < flappers; i++ {
		if err := c.insert(); err != nil {
			return err
		}
	}
	c.endBatch()
	remaining := n - flappers
	// Each flap is a withdraw + identical re-announce.
	flaps := remaining / 2
	for i := 0; i < flaps; i++ {
		e := c.deleteAt(c.pick())
		c.reinsert(e)
		// Storms arrive in bursts of ~6 flaps, then a quiescent gap.
		if (i+1)%6 == 0 {
			c.endBatch()
		}
	}
	c.endBatch()
	// Odd remainder: one reconfiguration between storms.
	for i := 0; i < remaining-2*flaps; i++ {
		c.modify(c.pick())
	}
	c.endBatch()
	return nil
}

// aclRollout: an incremental rollout — waves of inserts, never a
// delete. Everything inserted stays live.
func (c *churner) aclRollout() error {
	n := c.spec.Updates
	wave := 8
	for i := 0; i < n; i++ {
		if err := c.insert(); err != nil {
			return err
		}
		if (i+1)%wave == 0 {
			c.endBatch()
		}
	}
	c.endBatch()
	return nil
}

// gcSweep: a build-up phase inserts entries, then GC sweeps expire them
// oldest-first in large delete-only batches, retaining a small working
// set.
func (c *churner) gcSweep() error {
	n := c.spec.Updates
	retain := n / 10
	if retain < 2 {
		retain = 2
	}
	build := (n + retain) / 2
	deletes := n - build
	for i := 0; i < build; i++ {
		if err := c.insert(); err != nil {
			return err
		}
		if (i+1)%8 == 0 {
			c.endBatch()
		}
	}
	c.endBatch()
	for i := 0; i < deletes; i++ {
		c.deleteAt(0)
		if (i+1)%16 == 0 {
			c.endBatch()
		}
	}
	c.endBatch()
	return nil
}
