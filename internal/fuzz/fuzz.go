// Package fuzz generates valid random control-plane entries from a
// program's table schemas — the role ControlPlaneSmith plays in the
// paper (§4.2 uses "a fuzzer to generate 1000 unique IPv4 entries").
// Generation is deterministic for a given seed.
package fuzz

import (
	"fmt"
	"sort"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/sym"
)

// Generator builds random-but-valid table entries.
type Generator struct {
	an  *dataplane.Analysis
	rng uint64
	// seen tracks generated match keys per table so entries are unique.
	seen map[string]map[string]bool
	// live tracks entries Stream has inserted and not yet deleted, so
	// modify/delete updates always reference an existing entry.
	live map[string][]*controlplane.TableEntry
}

// New returns a generator over the program's schemas.
func New(an *dataplane.Analysis, seed uint64) *Generator {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Generator{
		an:   an,
		rng:  seed,
		seen: make(map[string]map[string]bool),
		live: make(map[string][]*controlplane.TableEntry),
	}
}

func (g *Generator) next() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (g *Generator) bv(w uint16) sym.BV {
	return sym.NewBV2(w, g.next(), g.next())
}

// Entry generates one valid, previously-ungenerated entry for the
// table. Ternary masks are biased toward full masks (exact-like
// entries), mirroring typical forwarding/NAT updates; priorities are
// assigned increasing so entries never collide.
func (g *Generator) Entry(table string) (*controlplane.TableEntry, error) {
	ti, ok := g.an.Tables[table]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown table %s", table)
	}
	if g.seen[table] == nil {
		g.seen[table] = make(map[string]bool)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		e := &controlplane.TableEntry{Priority: len(g.seen[table]) + 1}
		keyID := ""
		for i, w := range ti.KeyWidths {
			var m controlplane.FieldMatch
			switch ti.KeyMatch[i] {
			case controlplane.MatchExact:
				m = controlplane.FieldMatch{Kind: controlplane.MatchExact, Value: g.bv(w)}
			case controlplane.MatchLPM:
				plen := int(g.next()%uint64(w)) + 1
				m = controlplane.FieldMatch{Kind: controlplane.MatchLPM, Value: g.bv(w), PrefixLen: plen}
			case controlplane.MatchTernary:
				mask := sym.AllOnes(w)
				if g.next()%4 == 0 {
					mask = g.bv(w)
				}
				m = controlplane.FieldMatch{Kind: controlplane.MatchTernary, Value: g.bv(w), Mask: mask}
			case controlplane.MatchOptional:
				m = controlplane.FieldMatch{Kind: controlplane.MatchOptional, Value: g.bv(w), Wildcard: g.next()%4 == 0}
			}
			e.Matches = append(e.Matches, m)
			keyID += fmt.Sprintf("%v|%v|%d;", m.Value, m.Mask, m.PrefixLen)
		}
		if g.seen[table][keyID] {
			continue
		}
		g.seen[table][keyID] = true

		// Pick a non-NoAction action when one exists.
		actIdx := -1
		for tries := 0; tries < 8; tries++ {
			i := int(g.next() % uint64(len(ti.Actions)))
			if ti.Actions[i].Name != "NoAction" {
				actIdx = i
				break
			}
		}
		if actIdx < 0 {
			actIdx = 0
		}
		ai := ti.Actions[actIdx]
		e.Action = ai.Name
		for _, pw := range ai.ParamWidths {
			e.Params = append(e.Params, g.bv(pw))
		}
		return e, nil
	}
	return nil, fmt.Errorf("fuzz: could not generate a unique entry for %s", table)
}

// Stream generates n valid updates mixed across every update kind the
// program's schemas support: entry inserts dominate, with modifies and
// deletes of previously streamed entries, default-action changes, and
// value-set/register writes when the program declares any. Every update
// is valid against a configuration that has seen the stream's prefix,
// so replaying a stream through a fresh engine never rejects — which is
// what the batched-vs-sequential equivalence suite needs (a stream is
// the same worklist no matter how it is chunked). Deterministic per
// seed.
func (g *Generator) Stream(n int) ([]*controlplane.Update, error) {
	tables := g.an.TableOrder
	if len(tables) == 0 {
		return nil, fmt.Errorf("fuzz: program has no tables")
	}
	var regs []string
	for name := range g.an.Registers {
		regs = append(regs, name)
	}
	sort.Strings(regs)
	var vsets []string
	for name := range g.an.ValueSets {
		vsets = append(vsets, name)
	}
	sort.Strings(vsets)

	out := make([]*controlplane.Update, 0, n)
	insert := func(table string) error {
		e, err := g.Entry(table)
		if err != nil {
			return err
		}
		g.live[table] = append(g.live[table], e)
		out = append(out, &controlplane.Update{
			Kind: controlplane.InsertEntry, Table: table, Entry: e,
		})
		return nil
	}
	for len(out) < n {
		table := tables[g.next()%uint64(len(tables))]
		roll := g.next() % 100
		switch {
		case roll < 55:
			if err := insert(table); err != nil {
				return nil, err
			}
		case roll < 70: // modify a streamed entry: same key, fresh action
			cur := g.live[table]
			if len(cur) == 0 {
				if err := insert(table); err != nil {
					return nil, err
				}
				continue
			}
			old := cur[g.next()%uint64(len(cur))]
			ti := g.an.Tables[table]
			ai := ti.Actions[g.next()%uint64(len(ti.Actions))]
			e := &controlplane.TableEntry{
				Priority: old.Priority,
				Matches:  old.Matches,
				Action:   ai.Name,
			}
			for _, pw := range ai.ParamWidths {
				e.Params = append(e.Params, g.bv(pw))
			}
			out = append(out, &controlplane.Update{
				Kind: controlplane.ModifyEntry, Table: table, Entry: e,
			})
		case roll < 80: // delete a streamed entry
			cur := g.live[table]
			if len(cur) == 0 {
				if err := insert(table); err != nil {
					return nil, err
				}
				continue
			}
			i := int(g.next() % uint64(len(cur)))
			e := cur[i]
			g.live[table] = append(cur[:i:i], cur[i+1:]...)
			out = append(out, &controlplane.Update{
				Kind: controlplane.DeleteEntry, Table: table, Entry: e,
			})
		case roll < 90: // change the default action
			ti := g.an.Tables[table]
			ai := ti.Actions[g.next()%uint64(len(ti.Actions))]
			call := controlplane.ActionCall{Name: ai.Name}
			for _, pw := range ai.ParamWidths {
				call.Params = append(call.Params, g.bv(pw))
			}
			out = append(out, &controlplane.Update{
				Kind: controlplane.SetDefault, Table: table, Default: call,
			})
		case roll < 95 && len(vsets) > 0: // rewrite a value set
			vi := g.an.ValueSets[vsets[g.next()%uint64(len(vsets))]]
			k := 1
			if vi.Decl.Size > 1 {
				k = 1 + int(g.next()%uint64(vi.Decl.Size))
			}
			members := make([]controlplane.ValueSetMember, k)
			for i := range members {
				members[i].Value = g.bv(vi.Width)
				if g.next()%4 == 0 {
					members[i].Mask = g.bv(vi.Width)
				}
			}
			out = append(out, &controlplane.Update{
				Kind: controlplane.SetValueSet, ValueSet: vi.Name, Members: members,
			})
		case roll >= 95 && len(regs) > 0: // fill a register uniformly
			name := regs[g.next()%uint64(len(regs))]
			out = append(out, &controlplane.Update{
				Kind:     controlplane.FillRegister,
				Register: name,
				Fill:     g.bv(g.an.Registers[name].Width),
			})
		default:
			if err := insert(table); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Updates generates n unique insert updates for the table.
func (g *Generator) Updates(table string, n int) ([]*controlplane.Update, error) {
	out := make([]*controlplane.Update, 0, n)
	for i := 0; i < n; i++ {
		e, err := g.Entry(table)
		if err != nil {
			return nil, err
		}
		out = append(out, &controlplane.Update{
			Kind: controlplane.InsertEntry, Table: table, Entry: e,
		})
	}
	return out, nil
}
