// Package fuzz generates valid random control-plane entries from a
// program's table schemas — the role ControlPlaneSmith plays in the
// paper (§4.2 uses "a fuzzer to generate 1000 unique IPv4 entries").
// Generation is deterministic for a given seed.
package fuzz

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/sym"
)

// Generator builds random-but-valid table entries.
type Generator struct {
	an  *dataplane.Analysis
	rng uint64
	// seen tracks generated match keys per table so entries are unique.
	seen map[string]map[string]bool
}

// New returns a generator over the program's schemas.
func New(an *dataplane.Analysis, seed uint64) *Generator {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Generator{an: an, rng: seed, seen: make(map[string]map[string]bool)}
}

func (g *Generator) next() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (g *Generator) bv(w uint16) sym.BV {
	return sym.NewBV2(w, g.next(), g.next())
}

// Entry generates one valid, previously-ungenerated entry for the
// table. Ternary masks are biased toward full masks (exact-like
// entries), mirroring typical forwarding/NAT updates; priorities are
// assigned increasing so entries never collide.
func (g *Generator) Entry(table string) (*controlplane.TableEntry, error) {
	ti, ok := g.an.Tables[table]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown table %s", table)
	}
	if g.seen[table] == nil {
		g.seen[table] = make(map[string]bool)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		e := &controlplane.TableEntry{Priority: len(g.seen[table]) + 1}
		keyID := ""
		for i, w := range ti.KeyWidths {
			var m controlplane.FieldMatch
			switch ti.KeyMatch[i] {
			case controlplane.MatchExact:
				m = controlplane.FieldMatch{Kind: controlplane.MatchExact, Value: g.bv(w)}
			case controlplane.MatchLPM:
				plen := int(g.next()%uint64(w)) + 1
				m = controlplane.FieldMatch{Kind: controlplane.MatchLPM, Value: g.bv(w), PrefixLen: plen}
			case controlplane.MatchTernary:
				mask := sym.AllOnes(w)
				if g.next()%4 == 0 {
					mask = g.bv(w)
				}
				m = controlplane.FieldMatch{Kind: controlplane.MatchTernary, Value: g.bv(w), Mask: mask}
			case controlplane.MatchOptional:
				m = controlplane.FieldMatch{Kind: controlplane.MatchOptional, Value: g.bv(w), Wildcard: g.next()%4 == 0}
			}
			e.Matches = append(e.Matches, m)
			keyID += fmt.Sprintf("%v|%v|%d;", m.Value, m.Mask, m.PrefixLen)
		}
		if g.seen[table][keyID] {
			continue
		}
		g.seen[table][keyID] = true

		// Pick a non-NoAction action when one exists.
		actIdx := -1
		for tries := 0; tries < 8; tries++ {
			i := int(g.next() % uint64(len(ti.Actions)))
			if ti.Actions[i].Name != "NoAction" {
				actIdx = i
				break
			}
		}
		if actIdx < 0 {
			actIdx = 0
		}
		ai := ti.Actions[actIdx]
		e.Action = ai.Name
		for _, pw := range ai.ParamWidths {
			e.Params = append(e.Params, g.bv(pw))
		}
		return e, nil
	}
	return nil, fmt.Errorf("fuzz: could not generate a unique entry for %s", table)
}

// Updates generates n unique insert updates for the table.
func (g *Generator) Updates(table string, n int) ([]*controlplane.Update, error) {
	out := make([]*controlplane.Update, 0, n)
	for i := 0; i < n; i++ {
		e, err := g.Entry(table)
		if err != nil {
			return nil, err
		}
		out = append(out, &controlplane.Update{
			Kind: controlplane.InsertEntry, Table: table, Entry: e,
		})
	}
	return out, nil
}
