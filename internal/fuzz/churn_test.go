package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/progs"
)

// churnFpr fingerprints an update deeply enough to distinguish streams
// (Update.String only prints kind and target).
func churnFpr(u *controlplane.Update) string {
	return fmt.Sprintf("%s %+v", u, u.Entry)
}

func churnTarget(t *testing.T) (*progs.Program, *core.Specializer) {
	t.Helper()
	p, err := progs.ByName("nat44")
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestChurnDeterministic(t *testing.T) {
	p, s := churnTarget(t)
	for _, k := range PatternKinds() {
		spec := ChurnSpec{Kind: k, Table: p.BurstTable, Updates: 60, Seed: 11}
		a, err := Churn(s.An, spec)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		b, err := Churn(s.An, spec)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(a.Updates) != len(b.Updates) || a.WantLive != b.WantLive {
			t.Fatalf("%s: streams differ in shape", k)
		}
		for i := range a.Updates {
			if churnFpr(a.Updates[i]) != churnFpr(b.Updates[i]) {
				t.Fatalf("%s: update %d differs: %s vs %s", k, i, a.Updates[i], b.Updates[i])
			}
		}
		spec.Seed = 12
		c, err := Churn(s.An, spec)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(a.Updates) == len(c.Updates) {
			diff := false
			for i := range a.Updates {
				if churnFpr(a.Updates[i]) != churnFpr(c.Updates[i]) {
					diff = true
					break
				}
			}
			if !diff {
				t.Fatalf("%s: different seeds produced identical streams", k)
			}
		}
	}
}

// TestChurnShapes: every pattern emits exactly the requested number of
// updates, its batches partition the stream, and its insert/delete
// arithmetic matches the declared steady-state invariant.
func TestChurnShapes(t *testing.T) {
	p, s := churnTarget(t)
	for _, k := range PatternKinds() {
		for _, n := range []int{8, 48, 200} {
			cs, err := Churn(s.An, ChurnSpec{Kind: k, Table: p.BurstTable, Updates: n, Seed: 3})
			if err != nil {
				t.Fatalf("%s n=%d: %v", k, n, err)
			}
			if len(cs.Updates) != n {
				t.Fatalf("%s n=%d: emitted %d updates", k, n, len(cs.Updates))
			}
			total := 0
			for _, b := range cs.Batches() {
				if len(b) == 0 {
					t.Fatalf("%s n=%d: empty batch", k, n)
				}
				total += len(b)
			}
			if total != n {
				t.Fatalf("%s n=%d: batches cover %d of %d updates", k, n, total, n)
			}
			inserts, deletes := 0, 0
			for _, u := range cs.Updates {
				switch u.Kind {
				case controlplane.InsertEntry:
					inserts++
				case controlplane.DeleteEntry:
					deletes++
				case controlplane.ModifyEntry:
				default:
					t.Fatalf("%s: unexpected update kind %v", k, u.Kind)
				}
			}
			if inserts-deletes != cs.WantLive {
				t.Fatalf("%s n=%d: %d inserts - %d deletes != WantLive %d",
					k, n, inserts, deletes, cs.WantLive)
			}
			if k == ACLRollout && deletes != 0 {
				t.Fatalf("acl-rollout must never delete, saw %d", deletes)
			}
			if k == GCSweep && deletes == 0 {
				t.Fatal("gc must be delete-heavy, saw none")
			}
		}
	}
}

// TestChurnReplaysWithoutRejection: replaying any pattern through a
// live specializer (on top of the representative config) never rejects,
// and leaves exactly WantLive extra entries in the churned table.
func TestChurnReplaysWithoutRejection(t *testing.T) {
	p, s := churnTarget(t)
	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	for _, k := range PatternKinds() {
		before := s.Cfg.NumEntries(p.BurstTable)
		cs, err := Churn(s.An, ChurnSpec{Kind: k, Table: p.BurstTable, Updates: 64, Seed: uint64(k) + 1})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		for i, u := range cs.Updates {
			if d := s.Apply(u); d.Kind == core.Rejected {
				t.Fatalf("%s update %d (%s) rejected: %v", k, i, u, d.Err)
			}
		}
		if err := cs.CheckInvariant(s.Cfg.NumEntries(p.BurstTable) - before); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChurnDrainRestoresBaseline: a stream followed by its drain leaves
// the churned table exactly where it started — the cycle contract the
// soak harness repeats for millions of updates.
func TestChurnDrainRestoresBaseline(t *testing.T) {
	p, s := churnTarget(t)
	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	for _, k := range PatternKinds() {
		baseline := s.Cfg.NumEntries(p.BurstTable)
		cs, err := Churn(s.An, ChurnSpec{Kind: k, Table: p.BurstTable, Updates: 48, Seed: 21})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		drain := cs.Drain()
		if len(drain) != cs.WantLive {
			t.Fatalf("%s: drain has %d deletes, stream leaves %d live", k, len(drain), cs.WantLive)
		}
		for i, u := range append(append([]*controlplane.Update{}, cs.Updates...), drain...) {
			if d := s.Apply(u); d.Kind == core.Rejected {
				t.Fatalf("%s update %d (%s) rejected: %v", k, i, u, d.Err)
			}
		}
		if got := s.Cfg.NumEntries(p.BurstTable); got != baseline {
			t.Fatalf("%s: %d entries after drain, baseline was %d", k, got, baseline)
		}
	}
}

func TestChurnErrors(t *testing.T) {
	p, s := churnTarget(t)
	if _, err := Churn(s.An, ChurnSpec{Kind: Diurnal, Table: "Ingress.ghost", Updates: 40}); err == nil {
		t.Fatal("expected error for unknown table")
	}
	if _, err := Churn(s.An, ChurnSpec{Kind: Diurnal, Table: p.BurstTable, Updates: 4}); err == nil {
		t.Fatal("expected error for tiny stream")
	}
	if _, err := Churn(s.An, ChurnSpec{Kind: PatternKind(99), Table: p.BurstTable, Updates: 40}); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

func TestParsePattern(t *testing.T) {
	for _, k := range PatternKinds() {
		got, err := ParsePattern(k.String())
		if err != nil || got != k {
			t.Fatalf("ParsePattern(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePattern("tidal"); err == nil {
		t.Fatal("expected error for unknown pattern name")
	}
	if PatternKind(99).String() != "pattern?" {
		t.Fatal("out-of-range pattern must print pattern?")
	}
}
