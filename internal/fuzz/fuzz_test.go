package fuzz

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/progs"
)

func TestGeneratedEntriesAreValid(t *testing.T) {
	p := progs.Middleblock()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	g := New(s.An, 42)
	ups, err := g.Updates(p.ACLTable, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 200 {
		t.Fatalf("got %d updates", len(ups))
	}
	cfg := controlplane.NewConfig(s.An)
	cfg.OverapproxThreshold = -1
	for i, u := range ups {
		if err := cfg.Apply(u); err != nil {
			t.Fatalf("entry %d rejected: %v", i, err)
		}
	}
	if cfg.NumEntries(p.ACLTable) != 200 {
		t.Fatalf("installed %d entries", cfg.NumEntries(p.ACLTable))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := progs.Fig3()
	s1, _ := p.Load()
	s2, _ := p.Load()
	g1 := New(s1.An, 7)
	g2 := New(s2.An, 7)
	for i := 0; i < 50; i++ {
		e1, err1 := g1.Entry(p.BurstTable)
		e2, err2 := g2.Entry(p.BurstTable)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if e1.Action != e2.Action || len(e1.Matches) != len(e2.Matches) ||
			e1.Matches[0].Value != e2.Matches[0].Value {
			t.Fatalf("entry %d differs between equal seeds", i)
		}
	}
}

func TestGeneratorUnknownTable(t *testing.T) {
	p := progs.Fig3()
	s, _ := p.Load()
	g := New(s.An, 1)
	if _, err := g.Entry("Ingress.ghost"); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

// TestFuzzBurstAgainstSpecializer mirrors the paper's use: a fuzzer
// burst against a live specializer never produces rejected updates.
func TestFuzzBurstAgainstSpecializer(t *testing.T) {
	p := progs.Fig3()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	g := New(s.An, 99)
	ups, err := g.Updates(p.BurstTable, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range ups {
		if d := s.Apply(u); d.Kind == core.Rejected {
			t.Fatalf("update %d rejected: %v", i, d.Err)
		}
	}
	if s.Statistics().Updates != 120 {
		t.Fatal("not all updates processed")
	}
}
