package fuzz

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/progs"
)

func TestGeneratedEntriesAreValid(t *testing.T) {
	p := progs.Middleblock()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	g := New(s.An, 42)
	ups, err := g.Updates(p.ACLTable, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 200 {
		t.Fatalf("got %d updates", len(ups))
	}
	cfg := controlplane.NewConfig(s.An)
	cfg.OverapproxThreshold = -1
	for i, u := range ups {
		if err := cfg.Apply(u); err != nil {
			t.Fatalf("entry %d rejected: %v", i, err)
		}
	}
	if cfg.NumEntries(p.ACLTable) != 200 {
		t.Fatalf("installed %d entries", cfg.NumEntries(p.ACLTable))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := progs.Fig3()
	s1, _ := p.Load()
	s2, _ := p.Load()
	g1 := New(s1.An, 7)
	g2 := New(s2.An, 7)
	for i := 0; i < 50; i++ {
		e1, err1 := g1.Entry(p.BurstTable)
		e2, err2 := g2.Entry(p.BurstTable)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if e1.Action != e2.Action || len(e1.Matches) != len(e2.Matches) ||
			e1.Matches[0].Value != e2.Matches[0].Value {
			t.Fatalf("entry %d differs between equal seeds", i)
		}
	}
}

func TestGeneratorUnknownTable(t *testing.T) {
	p := progs.Fig3()
	s, _ := p.Load()
	g := New(s.An, 1)
	if _, err := g.Entry("Ingress.ghost"); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

// TestFuzzBurstAgainstSpecializer mirrors the paper's use: a fuzzer
// burst against a live specializer never produces rejected updates.
func TestFuzzBurstAgainstSpecializer(t *testing.T) {
	p := progs.Fig3()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	g := New(s.An, 99)
	ups, err := g.Updates(p.BurstTable, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range ups {
		if d := s.Apply(u); d.Kind == core.Rejected {
			t.Fatalf("update %d rejected: %v", i, d.Err)
		}
	}
	if s.Statistics().Updates != 120 {
		t.Fatal("not all updates processed")
	}
}

// TestStreamReplaysWithoutRejection: every update of a mixed stream
// must be valid against a configuration that has seen the stream's
// prefix, for several seeds — the property the batched-vs-sequential
// equivalence suite builds on.
func TestStreamReplaysWithoutRejection(t *testing.T) {
	p := progs.Scion()
	for seed := uint64(1); seed <= 4; seed++ {
		s, err := p.Load()
		if err != nil {
			t.Fatal(err)
		}
		stream, err := New(s.An, seed).Stream(150)
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[controlplane.UpdateKind]int{}
		for i, u := range stream {
			kinds[u.Kind]++
			if d := s.Apply(u); d.Kind == core.Rejected {
				t.Fatalf("seed %d update %d (%s) rejected: %v", seed, i, u, d.Err)
			}
		}
		if kinds[controlplane.InsertEntry] == 0 || len(kinds) < 3 {
			t.Fatalf("seed %d: stream not mixed enough: %v", seed, kinds)
		}
	}
}

// TestStreamDeterministic: the same seed yields the same stream.
func TestStreamDeterministic(t *testing.T) {
	p := progs.Fig3()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(s.An, 7).Stream(80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(s.An, 7).Stream(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("update %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
