package dataplane

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

func analyze(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// fig5Src mirrors the paper's Fig. 5a.
const fig5Src = `
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(h.eth);
        transition accept;
    }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) {
        egress_port = port_var;
    }
    action noop() { }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        h.eth.dst = egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
        std.egress_port = egress_port;
    }
}
`

// TestFig5DataPlaneExpression reproduces the paper's Fig. 5a annotation:
// after port_table.apply(), the symbolic value of egress_port is
// (|port_table.$action| == set ? |port_table.set.port_var| : 0).
func TestFig5DataPlaneExpression(t *testing.T) {
	an := analyze(t, fig5Src, Options{})
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	if ti == nil {
		t.Fatal("port_table not analysed")
	}
	if len(ti.Actions) != 2 || ti.Actions[0].Name != "set" || ti.Actions[1].Name != "noop" {
		t.Fatalf("actions = %+v", ti.Actions)
	}
	if ti.DefaultIndex != 1 {
		t.Fatalf("default index = %d", ti.DefaultIndex)
	}
	if len(ti.KeyExprs) != 1 {
		t.Fatal("key exprs missing")
	}
	// The key at the apply site is the extracted packet field.
	if ti.KeyExprs[0] != b.Data("h.eth.dst", 48) {
		t.Fatalf("key expr = %s", ti.KeyExprs[0])
	}

	// Find the final egress_port value through std.egress_port.
	v := an.Final["std.egress_port"]
	if v == nil {
		t.Fatal("std.egress_port missing from final store")
	}
	want := b.Ite(
		b.Eq(ti.ActionVar, b.ConstUint(8, 0)),
		ti.Actions[0].Params[0],
		b.ConstUint(9, 0),
	)
	if v != want {
		t.Fatalf("egress_port = %s, want %s", v, want)
	}

	// Substituting the empty-table assignment (Fig. 5b block B): the
	// selector is the default action, so egress_port must fold to 0.
	env := map[*sym.Expr]*sym.Expr{
		ti.ActionVar: b.ConstUint(8, uint64(ti.DefaultIndex)),
		ti.HitVar:    b.False(),
	}
	got := b.Subst(v, env)
	if !got.IsConst() || got.Val.Uint64() != 0 {
		t.Fatalf("empty-table egress_port = %s, want 0", got)
	}

	// One entry (Fig. 5b block C): selector = ite(dst == KEY, set, noop),
	// parameter = 1 → egress_port = ite(dst == KEY, 1, 0).
	key := b.Data("h.eth.dst", 48)
	match := b.Eq(key, b.ConstUint(48, 0xDEADBEEFF00D))
	env = map[*sym.Expr]*sym.Expr{
		ti.ActionVar:            b.Ite(match, b.ConstUint(8, 0), b.ConstUint(8, 1)),
		ti.Actions[0].Params[0]: b.ConstUint(9, 1),
		ti.HitVar:               match,
	}
	got = b.Subst(v, env)
	want = b.Ite(match, b.ConstUint(9, 1), b.ConstUint(9, 0))
	if got != want {
		t.Fatalf("one-entry egress_port = %s, want %s", got, want)
	}
}

func TestFig5AssignPointAndHdrRewrite(t *testing.T) {
	an := analyze(t, fig5Src, Options{})
	b := an.Builder
	ti := an.Tables["Ingress.port_table"]
	// The h.eth.dst assignment point (line 12 in the paper) captures the
	// ternary over egress_port.
	var pt *Point
	for _, p := range an.Points {
		if p.Kind == PointAssignValue && p.Assign != nil {
			if path, _ := typecheckFieldPath(p.Assign.LHS); path == "h.eth.dst" {
				pt = p
			}
		}
	}
	if pt == nil {
		t.Fatal("assignment point for h.eth.dst not recorded")
	}
	// With the empty-table assignment it must fold to the 0xAAA... arm.
	env := map[*sym.Expr]*sym.Expr{
		ti.ActionVar: b.ConstUint(8, uint64(ti.DefaultIndex)),
	}
	got := b.Subst(pt.Expr, env)
	if !got.IsConst() || got.Val.Lo != 0xAAAAAAAAAAAA {
		t.Fatalf("folded h.eth.dst = %s", got)
	}
}

func typecheckFieldPath(e ast.Expr) (string, bool) { return typecheck.FieldPath(e) }

func TestIfBranchPointsAndExit(t *testing.T) {
	src := `
struct metadata { bit<8> a; bit<8> b; }
control C(inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (meta.a == 8w1) {
            exit;
        }
        meta.b = 8w5;
    }
}
`
	an := analyze(t, src, Options{})
	b := an.Builder
	var branches []*Point
	for _, p := range an.Points {
		if p.Kind == PointIfBranch {
			branches = append(branches, p)
		}
	}
	if len(branches) != 2 {
		t.Fatalf("branch points = %d, want 2", len(branches))
	}
	// meta.a is zero-initialised metadata, so the condition folds: the
	// then-branch is statically dead and the else-branch is true.
	if !branches[0].Expr.IsFalse() {
		t.Fatalf("then-branch executability = %s, want false", branches[0].Expr)
	}
	if !branches[1].Expr.IsTrue() {
		t.Fatalf("else-branch executability = %s, want true", branches[1].Expr)
	}
	// Since the exit branch is dead, meta.b must be 5 at the end.
	if v := an.Final["meta.b"]; v != b.ConstUint(8, 5) {
		t.Fatalf("meta.b = %s", v)
	}
}

func TestExitMasksLaterAssignments(t *testing.T) {
	src := `
struct headers_t { bit<8> x; }
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<8> out; }
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (hdr.h.x == 8w1) {
            exit;
        }
        meta.out = 8w7;
    }
}
`
	an := analyze(t, src, Options{SkipParser: true})
	b := an.Builder
	x := b.Data("hdr.h.x", 8)
	cond := b.Eq(x, b.ConstUint(8, 1))
	want := b.Ite(cond, b.ConstUint(8, 0), b.ConstUint(8, 7))
	if v := an.Final["meta.out"]; v != want {
		t.Fatalf("meta.out = %s, want %s", v, want)
	}
}

func TestValueSetAndSelect(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header mpls_t { bit<20> label; bit<12> rest; }
struct headers { ethernet_t eth; mpls_t mpls; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(4) mpls_types;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            mpls_types: parse_mpls;
            default: accept;
        }
    }
    state parse_mpls {
        pkt.extract(hdr.mpls);
        transition accept;
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (hdr.mpls.isValid()) {
            std.egress_port = 9w2;
        }
    }
}
`
	an := analyze(t, src, Options{})
	b := an.Builder
	if len(an.ValueSets) != 1 {
		t.Fatalf("value set sites = %d", len(an.ValueSets))
	}
	var vi *ValueSetInfo
	for _, v := range an.ValueSets {
		vi = v
	}
	if vi.Name != "P.mpls_types" || vi.Width != 16 {
		t.Fatalf("value set info %+v", vi)
	}
	if vi.KeyExpr != b.Data("hdr.eth.type", 16) {
		t.Fatalf("key expr = %s", vi.KeyExpr)
	}
	// mpls validity must equal the match placeholder.
	if v := an.Final["hdr.mpls.$valid"]; v != vi.MatchVar {
		t.Fatalf("mpls validity = %s, want %s", v, vi.MatchVar)
	}
	// Unconfigured set ⇒ substituting false kills the branch: this is
	// the §3 PVS specialization.
	got := b.Subst(an.Final["std.egress_port"], map[*sym.Expr]*sym.Expr{vi.MatchVar: b.False()})
	if !got.IsConst() || got.Val.Uint64() != 0 {
		t.Fatalf("egress_port with unconfigured PVS = %s", got)
	}
}

func TestRegisterReadSites(t *testing.T) {
	src := `
struct metadata { bit<32> a; bit<32> b; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(16) r;
    apply {
        r.read(meta.a, 0);
        r.read(meta.b, 1);
        r.write(0, meta.a + 32w1);
        if (meta.a != meta.b) {
            std.egress_port = 9w1;
        }
    }
}
`
	an := analyze(t, src, Options{})
	ri := an.Registers["C.r"]
	if ri == nil || len(ri.ReadVars) != 2 {
		t.Fatalf("register read sites wrong: %+v", ri)
	}
	if ri.ReadVars[0] == ri.ReadVars[1] {
		t.Fatal("distinct read sites must get distinct placeholders")
	}
	// The if-branch point must depend on both read placeholders, so a
	// register fill update taints it.
	var branch *Point
	for _, p := range an.Points {
		if p.Kind == PointIfBranch && p.ThenBranch {
			branch = p
		}
	}
	cvs := sym.CtrlVars(branch.Expr)
	if len(cvs) != 2 {
		t.Fatalf("branch ctrl vars = %v", cvs)
	}
}

func TestTableAppliedTwiceRejected(t *testing.T) {
	src := `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
    action x() { }
    table t { key = { meta.a: exact; } actions = { x; NoAction; } default_action = NoAction; }
    apply {
        t.apply();
        t.apply();
    }
}
`
	prog, err := parser.Parse("twice", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, info, Options{}); err == nil {
		t.Fatal("expected single-apply-site error")
	} else if !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestSkipParserMakesFieldsFree(t *testing.T) {
	an := analyze(t, fig5Src, Options{SkipParser: true})
	b := an.Builder
	if !an.SkippedParser {
		t.Fatal("flag not set")
	}
	// Validity is unconstrained rather than parser-determined.
	if v := an.Final["h.eth.$valid"]; v != b.Data("h.eth.$valid", 1) {
		t.Fatalf("validity = %s", v)
	}
}

func TestTaintTransitivity(t *testing.T) {
	// Table B's key is written by table A's action: updating A must
	// taint B's points.
	src := `
struct metadata { bit<8> cls; bit<8> k; }
control C(inout metadata meta, inout standard_metadata_t std) {
    action set_cls(bit<8> c) { meta.cls = c; }
    action out1() { std.egress_port = 9w1; }
    table classify {
        key = { meta.k: exact; }
        actions = { set_cls; NoAction; }
        default_action = NoAction;
    }
    table route {
        key = { meta.cls: exact; }
        actions = { out1; NoAction; }
        default_action = NoAction;
    }
    apply {
        classify.apply();
        route.apply();
    }
}
`
	an := analyze(t, src, Options{})
	classify := an.Tables["C.classify"]
	pts := an.PointsOf("C.classify")
	foundRoute := false
	for _, p := range pts {
		if p.Table == "C.route" && p.Kind == PointTableAction {
			foundRoute = true
		}
	}
	if !foundRoute {
		t.Fatalf("classify update should taint route's decision point; tainted points: %v", pts)
	}
	// And the route table's key expr must mention classify's selector.
	route := an.Tables["C.route"]
	deps := sym.CtrlVars(route.KeyExprs[0])
	has := false
	for _, d := range deps {
		if d == classify.ActionVar {
			has = true
		}
	}
	if !has {
		t.Fatalf("route key deps = %v", deps)
	}
}

func TestDirectActionCallInlined(t *testing.T) {
	src := `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
    action bump(bit<8> by) { meta.a = meta.a + by; }
    apply {
        bump(8w3);
        bump(8w4);
    }
}
`
	an := analyze(t, src, Options{})
	b := an.Builder
	if v := an.Final["meta.a"]; v != b.ConstUint(8, 7) {
		t.Fatalf("meta.a = %s, want 7", v)
	}
}

func TestChecksum16Folds(t *testing.T) {
	src := `
struct metadata { bit<16> c; bit<32> x; }
control C(inout metadata meta, inout standard_metadata_t std) {
    apply {
        meta.c = checksum16(32w0x00010002);
        meta.x = 32w5;
        meta.c = meta.c ^ checksum16(meta.x);
    }
}
`
	an := analyze(t, src, Options{})
	b := an.Builder
	// checksum16(0x00010002) = 0x0001 ^ 0x0002 = 3; then ^ checksum16(5)
	// = 3 ^ 5 = 6.
	if v := an.Final["meta.c"]; v != b.ConstUint(16, 6) {
		t.Fatalf("meta.c = %s", v)
	}
}

func TestAnalysisErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"two parsers", `
struct metadata { }
parser P1(packet_in pkt, inout metadata meta) { state start { transition accept; } }
parser P2(packet_in pkt, inout metadata meta) { state start { transition accept; } }
`, "at most one parser"},
		{"param type clash", `
struct m1 { bit<8> a; }
struct m2 { bit<16> a; }
control C1(inout m1 meta, inout standard_metadata_t std) { apply { } }
control C2(inout m2 meta, inout standard_metadata_t std) { apply { } }
`, "must agree"},
		{"apply in compound condition", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
    action x() { }
    table t { key = { meta.a: exact; } actions = { x; NoAction; } default_action = NoAction; }
    apply {
        if (t.apply().hit && meta.a == 8w1) { meta.a = 8w2; }
    }
}
`, "compound condition"},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.name, c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		info, err := typecheck.Check(prog)
		if err != nil {
			t.Fatalf("%s: check: %v", c.name, err)
		}
		if _, err := Analyze(prog, info, Options{}); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestPointsOfOrderedAndDeduped(t *testing.T) {
	an := analyze(t, fig5Src, Options{})
	pts := an.PointsOf("Ingress.port_table")
	if len(pts) == 0 {
		t.Fatal("no tainted points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].ID >= pts[i].ID {
			t.Fatalf("points not strictly ordered: %v", pts)
		}
	}
}
