package dataplane

import (
	"fmt"

	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// aliveSlot is the pseudo-variable tracking whether the pipeline is
// still processing (false after exit).
const aliveSlot = "$alive"

// Analyze runs the one-time data-plane pass over a checked program.
func Analyze(prog *ast.Program, info *typecheck.Info, opts Options) (*Analysis, error) {
	a := &analyzer{
		b:    sym.NewBuilder(),
		prog: prog,
		info: info,
		opts: opts,
	}
	a.an = &Analysis{
		Builder:       a.b,
		Prog:          prog,
		Info:          info,
		Tables:        make(map[string]*TableInfo),
		ValueSets:     make(map[string]*ValueSetInfo),
		Registers:     make(map[string]*RegisterInfo),
		Taint:         make(map[*sym.Expr][]int),
		VarOwner:      make(map[*sym.Expr]string),
		SkippedParser: opts.SkipParser,
	}
	sp := opts.Trace.Start("dataflow", opts.Parent)
	if err := a.run(); err != nil {
		opts.Trace.End(sp)
		return nil, err
	}
	opts.Trace.Attr(sp, "points", int64(len(a.an.Points)))
	opts.Trace.Attr(sp, "tables", int64(len(a.an.Tables)))
	opts.Trace.End(sp)

	sp = opts.Trace.Start("taint", opts.Parent)
	a.buildTaint()
	edges := 0
	for _, ids := range a.an.Taint {
		edges += len(ids)
	}
	opts.Trace.Attr(sp, "vars", int64(len(a.an.Taint)))
	opts.Trace.Attr(sp, "edges", int64(edges))
	opts.Trace.End(sp)

	opts.Metrics.Gauge("dp.points").Set(int64(len(a.an.Points)))
	opts.Metrics.Gauge("dp.tables").Set(int64(len(a.an.Tables)))
	opts.Metrics.Gauge("dp.taint_vars").Set(int64(len(a.an.Taint)))
	opts.Metrics.Gauge("dp.taint_edges").Set(int64(edges))
	opts.Metrics.Gauge("dp.expr_nodes").Set(int64(a.b.NumNodes()))
	return a.an, nil
}

type analyzer struct {
	b    *sym.Builder
	prog *ast.Program
	info *typecheck.Info
	opts Options
	an   *Analysis

	slotSeq int
	vsSeq   map[string]int
	regSeq  map[string]int
}

// binding resolves an identifier: either to a store slot (variables,
// params standing for struct roots) or directly to an expression (action
// data parameters).
type binding struct {
	slot string
	expr *sym.Expr
}

type execCtx struct {
	a      *analyzer
	store  map[string]*sym.Expr
	scopes []map[string]binding
	path   []*sym.Expr

	controlName string
	control     *ast.ControlDecl
	parser      *ast.ParserDecl
	inAction    bool
}

func (a *analyzer) run() error {
	ctx := &execCtx{
		a:      a,
		store:  map[string]*sym.Expr{aliveSlot: a.b.True()},
		scopes: []map[string]binding{make(map[string]binding)},
	}
	a.vsSeq = make(map[string]int)
	a.regSeq = make(map[string]int)

	// Bind every block's parameters up front; identical names share
	// storage, which is how state flows parser → ingress → egress.
	rootTypes := make(map[string]typecheck.T)
	bindParams := func(params []ast.Param) error {
		for _, p := range params {
			t := a.info.Resolve(p.Type)
			if t.Kind == typecheck.KPacket {
				ctx.scopes[0][p.Name] = binding{slot: "$packet:" + p.Name}
				continue
			}
			if prev, ok := rootTypes[p.Name]; ok {
				if prev != t {
					return errorf("parameter %s has type %s in one block and %s in another; pipeline parameters must agree", p.Name, prev, t)
				}
				continue
			}
			rootTypes[p.Name] = t
			ctx.scopes[0][p.Name] = binding{slot: p.Name}
			if err := a.initRoot(ctx, p.Name, t); err != nil {
				return err
			}
		}
		return nil
	}
	for _, pd := range a.prog.Parsers {
		if err := bindParams(pd.Params); err != nil {
			return err
		}
	}
	for _, cd := range a.prog.Controls {
		if err := bindParams(cd.Params); err != nil {
			return err
		}
	}

	if len(a.prog.Parsers) > 1 {
		return errorf("at most one parser is supported, found %d", len(a.prog.Parsers))
	}
	if len(a.prog.Parsers) == 1 && !a.opts.SkipParser {
		pd := a.prog.Parsers[0]
		ctx.parser = pd
		if err := a.execParserState(ctx, pd, "start", 0); err != nil {
			return err
		}
		ctx.parser = nil
	}

	for _, cd := range a.prog.Controls {
		ctx.control = cd
		ctx.controlName = cd.Name
		ctx.pushScope()
		// Control locals.
		for _, v := range cd.Locals {
			if err := a.declVar(ctx, v); err != nil {
				return err
			}
		}
		for _, r := range cd.Registers {
			q := cd.Name + "." + r.Name
			t := a.info.Resolve(r.Elem)
			a.an.Registers[q] = &RegisterInfo{
				Name: q, Control: cd.Name, Decl: r, Width: uint16(t.Width),
			}
			ctx.scopes[len(ctx.scopes)-1][r.Name] = binding{slot: "$register:" + q}
		}
		if err := a.execStmt(ctx, cd.Apply); err != nil {
			return err
		}
		ctx.popScope()
	}
	a.an.Final = ctx.store
	return nil
}

// initRoot seeds the store for a pipeline parameter.
func (a *analyzer) initRoot(ctx *execCtx, path string, t typecheck.T) error {
	haveParser := len(a.prog.Parsers) == 1 && !a.opts.SkipParser
	switch t.Kind {
	case typecheck.KHeader:
		h := a.prog.Header(t.Name)
		if haveParser {
			ctx.store[path+".$valid"] = a.b.False()
		} else {
			ctx.store[path+".$valid"] = a.b.Data(path+".$valid", 1)
		}
		for _, f := range h.Fields {
			ft := a.info.Resolve(f.Type)
			fp := path + "." + f.Name
			if haveParser {
				ctx.store[fp] = a.b.ConstUint(uint16(ft.Width), 0)
			} else {
				ctx.store[fp] = a.b.Data(fp, uint16(ft.Width))
			}
		}
		return nil
	case typecheck.KStruct:
		s := a.prog.Struct(t.Name)
		std := t.Name == "standard_metadata_t"
		for _, f := range s.Fields {
			ft := a.info.Resolve(f.Type)
			fp := path + "." + f.Name
			switch ft.Kind {
			case typecheck.KBits:
				// Standard-metadata inputs come from the environment;
				// user metadata is zero-initialised (BMv2 semantics).
				if std && (f.Name == "ingress_port" || f.Name == "packet_length") {
					ctx.store[fp] = a.b.Data(fp, uint16(ft.Width))
				} else {
					ctx.store[fp] = a.b.ConstUint(uint16(ft.Width), 0)
				}
			case typecheck.KBool:
				ctx.store[fp] = a.b.False()
			case typecheck.KHeader, typecheck.KStruct:
				if err := a.initRoot(ctx, fp, ft); err != nil {
					return err
				}
			default:
				return errorf("unsupported field type %s at %s", ft, fp)
			}
		}
		return nil
	case typecheck.KBits:
		ctx.store[path] = a.b.ConstUint(uint16(t.Width), 0)
		return nil
	case typecheck.KBool:
		ctx.store[path] = a.b.False()
		return nil
	default:
		return errorf("unsupported parameter type %s", t)
	}
}

// ---------------------------------------------------------------------------
// Context helpers

func (c *execCtx) pushScope() { c.scopes = append(c.scopes, make(map[string]binding)) }
func (c *execCtx) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *execCtx) lookup(name string) (binding, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if b, ok := c.scopes[i][name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

func (c *execCtx) clone() *execCtx {
	n := *c
	n.store = make(map[string]*sym.Expr, len(c.store))
	for k, v := range c.store {
		n.store[k] = v
	}
	n.scopes = make([]map[string]binding, len(c.scopes))
	copy(n.scopes, c.scopes)
	n.path = append([]*sym.Expr(nil), c.path...)
	return &n
}

// pathCond is the executability condition at the current program point.
func (c *execCtx) pathCond() *sym.Expr {
	b := c.a.b
	cond := c.store[aliveSlot]
	for _, p := range c.path {
		cond = b.And(cond, p)
	}
	return cond
}

// assign writes a store slot, masking the effect when the pipeline has
// exited.
func (c *execCtx) assign(path string, v *sym.Expr) error {
	old, ok := c.store[path]
	if !ok {
		return errorf("assignment to unknown location %s", path)
	}
	alive := c.store[aliveSlot]
	if alive.IsTrue() {
		c.store[path] = v
	} else {
		c.store[path] = c.a.b.Ite(alive, v, old)
	}
	return nil
}

// mergeInto merges branch stores: for every slot, self[k] =
// ite(cond, then[k], else[k]). Slots missing from either side are
// branch-local and die here.
func (c *execCtx) mergeInto(cond *sym.Expr, thenStore, elseStore map[string]*sym.Expr) {
	b := c.a.b
	for k := range c.store {
		tv, tok := thenStore[k]
		ev, eok := elseStore[k]
		switch {
		case tok && eok:
			c.store[k] = b.Ite(cond, tv, ev)
		case tok:
			c.store[k] = tv
		case eok:
			c.store[k] = ev
		}
	}
}

func (a *analyzer) record(p *Point) *Point {
	p.ID = len(a.an.Points)
	a.an.Points = append(a.an.Points, p)
	return p
}

// ---------------------------------------------------------------------------
// Parser execution

func (a *analyzer) execParserState(ctx *execCtx, pd *ast.ParserDecl, name string, depth int) error {
	if name == "accept" || name == "reject" {
		// Rejected packets never reach the controls; we conservatively
		// treat reject like accept so every control path stays analysed.
		return nil
	}
	if depth > 64 {
		return errorf("parser state graph too deep (loop through %s?)", name)
	}
	st := pd.State(name)
	if st == nil {
		return errorf("unknown parser state %s", name)
	}
	for _, s := range st.Stmts {
		if err := a.execStmt(ctx, s); err != nil {
			return err
		}
	}
	tr := st.Trans
	if tr.Select == nil {
		return a.execParserState(ctx, pd, tr.Next, depth+1)
	}
	sel := make([]*sym.Expr, len(tr.Select))
	for i, e := range tr.Select {
		v, err := a.evalExpr(ctx, e)
		if err != nil {
			return err
		}
		sel[i] = v
	}
	return a.execSelect(ctx, pd, st, sel, tr.Cases, 0, depth)
}

// execSelect walks select cases with first-match semantics, merging the
// resulting stores.
func (a *analyzer) execSelect(ctx *execCtx, pd *ast.ParserDecl, st *ast.State, sel []*sym.Expr, cases []ast.SelectCase, i, depth int) error {
	b := a.b
	if i == len(cases) {
		// No case matched: P4 rejects; we stop parsing here (treated
		// like accept, see execParserState).
		return nil
	}
	cs := cases[i]
	cond := b.True()
	if !(len(cs.Keysets) == 1 && cs.Keysets[0].Kind == ast.KeysetDefault) {
		for ki, ks := range cs.Keysets {
			comp, err := a.keysetCond(ctx, pd, ks, sel[ki])
			if err != nil {
				return err
			}
			cond = b.And(cond, comp)
		}
	}
	a.record(&Point{
		Kind:        PointSelectCase,
		Expr:        b.And(ctx.pathCond(), cond),
		Control:     pd.Name,
		ParserState: st.Name,
		CaseIndex:   i,
	})
	if cond.IsTrue() {
		return a.execParserState(ctx, pd, cs.Next, depth+1)
	}
	thenCtx := ctx.clone()
	thenCtx.path = append(thenCtx.path, cond)
	if err := a.execParserState(thenCtx, pd, cs.Next, depth+1); err != nil {
		return err
	}
	elseCtx := ctx.clone()
	elseCtx.path = append(elseCtx.path, b.Not(cond))
	if err := a.execSelect(elseCtx, pd, st, sel, cases, i+1, depth); err != nil {
		return err
	}
	ctx.mergeInto(cond, thenCtx.store, elseCtx.store)
	return nil
}

func (a *analyzer) keysetCond(ctx *execCtx, pd *ast.ParserDecl, ks ast.Keyset, key *sym.Expr) (*sym.Expr, error) {
	b := a.b
	switch ks.Kind {
	case ast.KeysetDefault:
		return b.True(), nil
	case ast.KeysetValue:
		v, err := a.evalExpr(ctx, ks.Value)
		if err != nil {
			return nil, err
		}
		return b.Eq(key, v), nil
	case ast.KeysetMask:
		v, err := a.evalExpr(ctx, ks.Value)
		if err != nil {
			return nil, err
		}
		m, err := a.evalExpr(ctx, ks.Mask)
		if err != nil {
			return nil, err
		}
		return b.Eq(b.And(key, m), b.And(v, m)), nil
	case ast.KeysetValueSet:
		q := pd.Name + "." + ks.Ref
		var decl *ast.ValueSet
		for _, vs := range pd.ValueSets {
			if vs.Name == ks.Ref {
				decl = vs
			}
		}
		if decl == nil {
			return nil, errorf("unknown value_set %s", ks.Ref)
		}
		site := a.vsSeq[q]
		a.vsSeq[q] = site + 1
		mv := b.Ctrl(fmt.Sprintf("%s#%d", q, site), 1)
		vi := &ValueSetInfo{
			Name:     q,
			Parser:   pd.Name,
			Decl:     decl,
			KeyExpr:  key,
			Width:    key.Width,
			MatchVar: mv,
		}
		a.an.ValueSets[fmt.Sprintf("%s#%d", q, site)] = vi
		a.an.VarOwner[mv] = q
		return mv, nil
	default:
		return nil, errorf("unknown keyset kind")
	}
}

// ---------------------------------------------------------------------------
// Statements

func (a *analyzer) execStmt(ctx *execCtx, s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ctx.pushScope()
		for _, inner := range s.Stmts {
			if err := a.execStmt(ctx, inner); err != nil {
				return err
			}
		}
		ctx.popScope()
		return nil
	case *ast.VarDecl:
		return a.declVar(ctx, s)
	case *ast.AssignStmt:
		v, err := a.evalExpr(ctx, s.RHS)
		if err != nil {
			return err
		}
		a.record(&Point{
			Kind:    PointAssignValue,
			Expr:    v,
			Control: ctx.controlName,
			Assign:  s,
		})
		path, err := a.lvaluePath(ctx, s.LHS)
		if err != nil {
			return err
		}
		return ctx.assign(path, v)
	case *ast.IfStmt:
		return a.execIf(ctx, s)
	case *ast.CallStmt:
		return a.execCall(ctx, s.Call)
	case *ast.ExitStmt:
		ctx.store[aliveSlot] = a.b.False()
		return nil
	default:
		return errorf("unsupported statement %T", s)
	}
}

func (a *analyzer) declVar(ctx *execCtx, v *ast.VarDecl) error {
	t := a.info.Resolve(v.Type)
	a.slotSeq++
	slot := fmt.Sprintf("%s.%s#%d", ctx.controlName, v.Name, a.slotSeq)
	var init *sym.Expr
	if v.Init != nil {
		var err error
		init, err = a.evalExpr(ctx, v.Init)
		if err != nil {
			return err
		}
	} else if t.Kind == typecheck.KBool {
		init = a.b.False()
	} else {
		init = a.b.ConstUint(uint16(t.Width), 0)
	}
	ctx.store[slot] = init
	ctx.scopes[len(ctx.scopes)-1][v.Name] = binding{slot: slot}
	return nil
}

func (a *analyzer) execIf(ctx *execCtx, s *ast.IfStmt) error {
	b := a.b
	cond, err := a.evalCond(ctx, s.Cond)
	if err != nil {
		return err
	}
	pc := ctx.pathCond()
	a.record(&Point{
		Kind: PointIfBranch, Expr: b.And(pc, cond),
		Control: ctx.controlName, If: s, ThenBranch: true,
	})
	a.record(&Point{
		Kind: PointIfBranch, Expr: b.And(pc, b.Not(cond)),
		Control: ctx.controlName, If: s, ThenBranch: false,
	})
	thenCtx := ctx.clone()
	thenCtx.path = append(thenCtx.path, cond)
	if err := a.execStmt(thenCtx, s.Then); err != nil {
		return err
	}
	elseCtx := ctx.clone()
	elseCtx.path = append(elseCtx.path, b.Not(cond))
	if s.Else != nil {
		if err := a.execStmt(elseCtx, s.Else); err != nil {
			return err
		}
	}
	ctx.mergeInto(cond, thenCtx.store, elseCtx.store)
	return nil
}

// evalCond evaluates an if condition, handling the side-effecting
// `t.apply().hit` form.
func (a *analyzer) evalCond(ctx *execCtx, e ast.Expr) (*sym.Expr, error) {
	if m, ok := e.(*ast.Member); ok && m.Name == "hit" {
		if call, ok := m.X.(*ast.CallExpr); ok {
			ti, err := a.tableOfApply(ctx, call)
			if err != nil {
				return nil, err
			}
			if err := a.execTableApply(ctx, ti); err != nil {
				return nil, err
			}
			return ti.HitVar, nil
		}
	}
	// Reject other side-effecting conditions.
	var applyErr error
	ast.WalkExprs(e, func(sub ast.Expr) {
		if call, ok := sub.(*ast.CallExpr); ok {
			if m, ok := call.Fun.(*ast.Member); ok && m.Name == "apply" {
				applyErr = errorf("table apply inside a compound condition is not supported; use `if (t.apply().hit)` alone")
			}
		}
	})
	if applyErr != nil {
		return nil, applyErr
	}
	return a.evalExpr(ctx, e)
}

func (a *analyzer) execCall(ctx *execCtx, call *ast.CallExpr) error {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "mark_to_drop":
			path, err := a.lvaluePath(ctx, call.Args[0])
			if err != nil {
				return err
			}
			return ctx.assign(path+".drop", a.b.True())
		case "count":
			return nil // counters have no data-plane-visible effect
		default:
			// Direct action call: inline the body with argument exprs.
			if ctx.control == nil {
				return errorf("call to %s outside a control", fun.Name)
			}
			act := ctx.control.Action(fun.Name)
			if act == nil {
				return errorf("unknown function %s", fun.Name)
			}
			ctx.pushScope()
			for i, p := range act.Params {
				v, err := a.evalExpr(ctx, call.Args[i])
				if err != nil {
					ctx.popScope()
					return err
				}
				ctx.scopes[len(ctx.scopes)-1][p.Name] = binding{expr: v}
			}
			wasInAction := ctx.inAction
			ctx.inAction = true
			err := a.execStmt(ctx, act.Body)
			ctx.inAction = wasInAction
			ctx.popScope()
			return err
		}
	case *ast.Member:
		switch fun.Name {
		case "apply":
			ti, err := a.tableOfApply(ctx, call)
			if err != nil {
				return err
			}
			return a.execTableApply(ctx, ti)
		case "setValid":
			path, err := a.lvaluePath(ctx, fun.X)
			if err != nil {
				return err
			}
			return ctx.assign(path+".$valid", a.b.True())
		case "setInvalid":
			path, err := a.lvaluePath(ctx, fun.X)
			if err != nil {
				return err
			}
			return ctx.assign(path+".$valid", a.b.False())
		case "extract":
			path, err := a.lvaluePath(ctx, call.Args[0])
			if err != nil {
				return err
			}
			ht := a.info.TypeOf(call.Args[0])
			h := a.prog.Header(ht.Name)
			if h == nil {
				return errorf("extract of non-header %s", path)
			}
			if err := ctx.assign(path+".$valid", a.b.True()); err != nil {
				return err
			}
			for _, f := range h.Fields {
				ft := a.info.Resolve(f.Type)
				fp := path + "." + f.Name
				if err := ctx.assign(fp, a.b.Data(fp, uint16(ft.Width))); err != nil {
					return err
				}
			}
			return nil
		case "read":
			bnd, q, err := a.registerOf(ctx, fun.X)
			if err != nil {
				return err
			}
			_ = bnd
			ri := a.an.Registers[q]
			site := a.regSeq[q]
			a.regSeq[q] = site + 1
			rv := a.b.Ctrl(fmt.Sprintf("%s#%d", q, site), ri.Width)
			ri.ReadVars = append(ri.ReadVars, rv)
			a.an.VarOwner[rv] = q
			dst, err := a.lvaluePath(ctx, call.Args[0])
			if err != nil {
				return err
			}
			return ctx.assign(dst, rv)
		case "write":
			// Data-plane register writes do not feed back into this
			// packet's analysis (documented approximation), but they do
			// disqualify the register from fill-constant specialization.
			_, q, err := a.registerOf(ctx, fun.X)
			if err != nil {
				return err
			}
			a.an.Registers[q].Written = true
			return nil
		default:
			return errorf("unknown method %s", fun.Name)
		}
	default:
		return errorf("invalid call")
	}
}

func (a *analyzer) registerOf(ctx *execCtx, e ast.Expr) (binding, string, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return binding{}, "", errorf("register reference must be an identifier")
	}
	bnd, ok := ctx.lookup(id.Name)
	if !ok || len(bnd.slot) < 10 || bnd.slot[:10] != "$register:" {
		return binding{}, "", errorf("%s is not a register", id.Name)
	}
	return bnd, bnd.slot[10:], nil
}

// ---------------------------------------------------------------------------
// Table application

func (a *analyzer) tableOfApply(ctx *execCtx, call *ast.CallExpr) (*TableInfo, error) {
	m := call.Fun.(*ast.Member)
	id, ok := m.X.(*ast.Ident)
	if !ok {
		return nil, errorf("table apply target must be a table name")
	}
	if ctx.control == nil {
		return nil, errorf("table apply outside a control")
	}
	tbl := ctx.control.Table(id.Name)
	if tbl == nil {
		return nil, errorf("unknown table %s", id.Name)
	}
	q := ctx.controlName + "." + id.Name
	if ti, ok := a.an.Tables[q]; ok {
		return ti, nil
	}
	ti := &TableInfo{
		Name:    q,
		Control: ctx.controlName,
		Table:   tbl,
		Decl:    ctx.control,
	}
	// Resolve the action list and the default.
	defaultName := "NoAction"
	if tbl.Default != nil {
		defaultName = tbl.Default.Name
	}
	ti.DefaultIndex = -1
	for i, ar := range tbl.Actions {
		ai := ActionInfo{Name: ar.Name}
		if ar.Name != "NoAction" {
			ai.Decl = ctx.control.Action(ar.Name)
			for _, p := range ai.Decl.Params {
				pt := a.info.Resolve(p.Type)
				w := uint16(pt.Width)
				if pt.Kind == typecheck.KBool {
					w = 1
				}
				pv := a.b.Ctrl(fmt.Sprintf("%s.%s.%s", q, ar.Name, p.Name), w)
				ai.Params = append(ai.Params, pv)
				ai.ParamWidths = append(ai.ParamWidths, w)
				a.an.VarOwner[pv] = q
			}
		}
		if ar.Name == defaultName {
			ti.DefaultIndex = i
		}
		ti.Actions = append(ti.Actions, ai)
	}
	if ti.DefaultIndex < 0 {
		// An implicit NoAction default that isn't in the actions list:
		// append it.
		ti.DefaultIndex = len(ti.Actions)
		ti.Actions = append(ti.Actions, ActionInfo{Name: "NoAction"})
	}
	if tbl.Default != nil {
		for i, argE := range tbl.Default.Args {
			t := a.info.TypeOf(argE)
			lit, ok := argE.(*ast.IntLit)
			if !ok {
				return nil, errorf("table %s: default_action arguments must be literals", q)
			}
			_ = i
			ti.DefaultArgs = append(ti.DefaultArgs, sym.NewBV2(uint16(t.Width), lit.Hi, lit.Lo))
		}
	}
	ti.ActionVar = a.b.Ctrl(q+".$action", 8)
	ti.HitVar = a.b.Ctrl(q+".$hit", 1)
	a.an.VarOwner[ti.ActionVar] = q
	a.an.VarOwner[ti.HitVar] = q
	a.an.Tables[q] = ti
	a.an.TableOrder = append(a.an.TableOrder, q)
	return ti, nil
}

func (a *analyzer) execTableApply(ctx *execCtx, ti *TableInfo) error {
	b := a.b
	if ti.applied {
		return errorf("table %s is applied more than once; each table may have a single apply site", ti.Name)
	}
	ti.applied = true
	for _, k := range ti.Table.Keys {
		kv, err := a.evalExpr(ctx, k.Expr)
		if err != nil {
			return err
		}
		ti.KeyExprs = append(ti.KeyExprs, kv)
		ti.KeyWidths = append(ti.KeyWidths, kv.Width)
		ti.KeyMatch = append(ti.KeyMatch, k.Match)
	}
	reach := ctx.pathCond()
	a.record(&Point{
		Kind: PointTableReach, Expr: reach,
		Control: ctx.controlName, Table: ti.Name,
	})
	a.record(&Point{
		Kind: PointTableAction, Expr: ti.ActionVar,
		Control: ctx.controlName, Table: ti.Name,
	})

	// Execute every action body on its own copy of the state, then
	// merge with an ite chain over the selector (state merging).
	stores := make([]map[string]*sym.Expr, len(ti.Actions))
	for i, ai := range ti.Actions {
		guard := b.Eq(ti.ActionVar, b.ConstUint(8, uint64(i)))
		a.record(&Point{
			Kind: PointActionReach, Expr: b.And(reach, guard),
			Control: ctx.controlName, Table: ti.Name, ActionIndex: i,
		})
		if ai.Decl == nil { // NoAction
			stores[i] = ctx.store
			continue
		}
		actCtx := ctx.clone()
		actCtx.path = append(actCtx.path, guard)
		actCtx.pushScope()
		for pi, p := range ai.Decl.Params {
			actCtx.scopes[len(actCtx.scopes)-1][p.Name] = binding{expr: ai.Params[pi]}
		}
		actCtx.inAction = true
		if err := a.execStmt(actCtx, ai.Decl.Body); err != nil {
			return err
		}
		actCtx.popScope()
		stores[i] = actCtx.store
	}
	// Fold: result = ite(av==0, s0, ite(av==1, s1, ... s_{n-1})).
	merged := stores[len(stores)-1]
	for i := len(stores) - 2; i >= 0; i-- {
		guard := b.Eq(ti.ActionVar, b.ConstUint(8, uint64(i)))
		next := make(map[string]*sym.Expr, len(ctx.store))
		for k := range ctx.store {
			tv, tok := stores[i][k]
			ev, eok := merged[k]
			switch {
			case tok && eok:
				next[k] = b.Ite(guard, tv, ev)
			case tok:
				next[k] = tv
			case eok:
				next[k] = ev
			}
		}
		merged = next
	}
	ctx.store = merged
	return nil
}
