package dataplane

import (
	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// lvaluePath resolves an assignable expression (a variable or field
// reference) to its store slot.
func (a *analyzer) lvaluePath(ctx *execCtx, e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.Ident:
		bnd, ok := ctx.lookup(e.Name)
		if !ok {
			return "", errorf("unknown identifier %s", e.Name)
		}
		if bnd.expr != nil {
			return "", errorf("cannot assign to action parameter %s", e.Name)
		}
		return bnd.slot, nil
	case *ast.Member:
		base, err := a.lvaluePath(ctx, e.X)
		if err != nil {
			return "", err
		}
		return base + "." + e.Name, nil
	default:
		return "", errorf("invalid assignment target %T", e)
	}
}

// evalExpr computes the symbolic value of an expression under the
// current store.
func (a *analyzer) evalExpr(ctx *execCtx, e ast.Expr) (*sym.Expr, error) {
	b := a.b
	switch e := e.(type) {
	case *ast.IntLit:
		t := a.info.TypeOf(e)
		w := t.Width
		if w == 0 {
			w = e.Width
		}
		if w == 0 {
			return nil, errorf("literal with unknown width at %s", e.Pos())
		}
		return b.Const(sym.NewBV2(uint16(w), e.Hi, e.Lo)), nil
	case *ast.BoolLit:
		if e.Value {
			return b.True(), nil
		}
		return b.False(), nil
	case *ast.Ident:
		if bnd, ok := ctx.lookup(e.Name); ok {
			if bnd.expr != nil {
				return bnd.expr, nil
			}
			if v, ok := ctx.store[bnd.slot]; ok {
				return v, nil
			}
			return nil, errorf("%s has no value (is it a table or register?)", e.Name)
		}
		if cv, ok := a.info.Consts[e.Name]; ok {
			return b.Const(sym.NewBV2(uint16(cv.Width), cv.Hi, cv.Lo)), nil
		}
		return nil, errorf("unknown identifier %s", e.Name)
	case *ast.Member:
		path, err := a.lvaluePath(ctx, e)
		if err != nil {
			return nil, err
		}
		if v, ok := ctx.store[path]; ok {
			return v, nil
		}
		return nil, errorf("unknown field %s", path)
	case *ast.CallExpr:
		return a.evalCall(ctx, e)
	case *ast.UnaryExpr:
		x, err := a.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "!", "~":
			return b.Not(x), nil
		case "-":
			return b.Sub(b.Const(sym.BV{W: x.Width}), x), nil
		default:
			return nil, errorf("unknown unary operator %s", e.Op)
		}
	case *ast.BinaryExpr:
		x, err := a.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		y, err := a.evalExpr(ctx, e.Y)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "&&":
			return b.And(x, y), nil
		case "||":
			return b.Or(x, y), nil
		case "==":
			return b.Eq(x, y), nil
		case "!=":
			return b.Ne(x, y), nil
		case "<":
			return b.Ult(x, y), nil
		case "<=":
			return b.Ule(x, y), nil
		case ">":
			return b.Ugt(x, y), nil
		case ">=":
			return b.Uge(x, y), nil
		case "&":
			return b.And(x, y), nil
		case "|":
			return b.Or(x, y), nil
		case "^":
			return b.Xor(x, y), nil
		case "+":
			return b.Add(x, y), nil
		case "-":
			return b.Sub(x, y), nil
		case "<<":
			return b.Shl(x, a.fitShift(x, y)), nil
		case ">>":
			return b.Lshr(x, a.fitShift(x, y)), nil
		case "++":
			return b.Concat(x, y), nil
		default:
			return nil, errorf("unknown binary operator %s", e.Op)
		}
	case *ast.TernaryExpr:
		c, err := a.evalExpr(ctx, e.Cond)
		if err != nil {
			return nil, err
		}
		t, err := a.evalExpr(ctx, e.Then)
		if err != nil {
			return nil, err
		}
		f, err := a.evalExpr(ctx, e.Else)
		if err != nil {
			return nil, err
		}
		return b.Ite(c, t, f), nil
	case *ast.SliceExpr:
		x, err := a.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		return b.Extract(x, uint16(e.Hi), uint16(e.Lo)), nil
	default:
		return nil, errorf("unsupported expression %T", e)
	}
}

// fitShift widens or narrows a shift amount to the shifted operand's
// width so the sym layer's width discipline holds. Shift semantics are
// unaffected: amounts >= the width already yield zero.
func (a *analyzer) fitShift(x, amount *sym.Expr) *sym.Expr {
	b := a.b
	switch {
	case amount.Width == x.Width:
		return amount
	case amount.Width < x.Width:
		return b.ZeroExtend(amount, x.Width)
	default:
		// Narrowing is safe only when the amount is constant or the
		// dropped bits are zero; for constants fold directly, otherwise
		// saturate via comparison.
		if amount.IsConst() {
			if amount.Val.Hi != 0 || amount.Val.Lo >= uint64(x.Width) {
				return b.ConstUint(x.Width, uint64(x.Width)) // >= width: shifts to zero
			}
			return b.ConstUint(x.Width, amount.Val.Lo)
		}
		// ite(amount >= width, width, amount[w-1:0])
		over := b.Uge(amount, b.ConstUint(amount.Width, uint64(x.Width)))
		return b.Ite(over, b.ConstUint(x.Width, uint64(x.Width)), b.Extract(amount, x.Width-1, 0))
	}
}

// evalCall handles pure (value-returning) builtin calls.
func (a *analyzer) evalCall(ctx *execCtx, call *ast.CallExpr) (*sym.Expr, error) {
	b := a.b
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "checksum16" {
			// The checksum unit is modelled as an XOR fold over 16-bit
			// chunks: deterministic, width-correct, and foldable to a
			// constant exactly when every input is constant — which is
			// the property the §3 extern specialization exploits. (The
			// reference interpreter implements the same function.)
			acc := b.ConstUint(16, 0)
			for _, argE := range call.Args {
				v, err := a.evalExpr(ctx, argE)
				if err != nil {
					return nil, err
				}
				if v.Width%16 != 0 {
					v = b.ZeroExtend(v, v.Width+(16-v.Width%16))
				}
				for lo := uint16(0); lo < v.Width; lo += 16 {
					acc = b.Xor(acc, b.Extract(v, lo+15, lo))
				}
			}
			return acc, nil
		}
		return nil, errorf("function %s cannot be used as a value", fun.Name)
	case *ast.Member:
		if fun.Name == "isValid" {
			path, err := a.lvaluePath(ctx, fun.X)
			if err != nil {
				return nil, err
			}
			v, ok := ctx.store[path+".$valid"]
			if !ok {
				return nil, errorf("%s is not a header instance", path)
			}
			return v, nil
		}
		return nil, errorf("method %s cannot be used as a value (apply().hit may only be an entire if condition)", fun.Name)
	default:
		return nil, errorf("invalid call expression")
	}
}

// ---------------------------------------------------------------------------
// Taint

// buildTaint computes, for every control-plane placeholder, the set of
// program points it can influence. The dependency is transitive: if a
// point mentions table B's selector and B's key expressions mention
// table A's placeholders, then A's placeholders influence the point too
// (A's outcome feeds B's match key).
func (a *analyzer) buildTaint() {
	an := a.an
	// ownerDeps caches the control-plane variables appearing in an
	// object's key expressions.
	ownerDeps := make(map[string][]*sym.Expr)
	depsOf := func(owner string) []*sym.Expr {
		if d, ok := ownerDeps[owner]; ok {
			return d
		}
		var vars []*sym.Expr
		if ti, ok := an.Tables[owner]; ok {
			for _, k := range ti.KeyExprs {
				vars = append(vars, sym.CtrlVars(k)...)
			}
		}
		for _, vi := range an.ValueSets {
			if vi.Name == owner {
				vars = append(vars, sym.CtrlVars(vi.KeyExpr)...)
			}
		}
		ownerDeps[owner] = vars
		return vars
	}

	for _, p := range an.Points {
		seen := make(map[*sym.Expr]bool)
		work := sym.CtrlVars(p.Expr)
		// A table's own point must be tainted by its placeholders even
		// when the recorded expression does not mention them (e.g. the
		// reach condition of an always-reachable table).
		if p.Table != "" {
			if ti, ok := an.Tables[p.Table]; ok {
				work = append(work, ti.ActionVar, ti.HitVar)
			}
		}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			an.Taint[v] = append(an.Taint[v], p.ID)
			if owner, ok := an.VarOwner[v]; ok {
				work = append(work, depsOf(owner)...)
			}
		}
	}
}
