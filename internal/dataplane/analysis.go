// Package dataplane computes the one-time data-plane semantics of a P4
// program: a simple data-flow analysis coupled with state-merging (paper
// §4.1, Fig. 4) that annotates program points of interest with hermetic
// data-plane expressions. Control-plane-configurable objects (tables,
// value sets, registers) appear as control-plane placeholder variables
// that the controlplane package later substitutes away.
package dataplane

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// PointKind classifies an annotated program point.
type PointKind uint8

const (
	// PointIfBranch asks "is this if-branch executable?" (dead-code
	// elimination). Expr is the path condition conjoined with the branch
	// condition (or its negation for the else branch).
	PointIfBranch PointKind = iota
	// PointAssignValue asks "is the assigned value a constant?"
	// (constant propagation). Expr is the symbolic RHS value at the
	// assignment, guarded by nothing — it is the value, not a condition.
	PointAssignValue
	// PointTableAction asks "does this table always select the same
	// action?" (table inlining). Expr is the table's action-selector
	// placeholder; substituting a control-plane assignment turns it into
	// the entry-match ite chain of Fig. 5b.
	PointTableAction
	// PointActionReach asks "can this table action ever run?"
	// (dead-action removal, Fig. 3 C/D). Expr is reach ∧ selector == i.
	PointActionReach
	// PointTableReach asks "is this table's apply site executable at
	// all?" (empty/unreachable table removal). Expr is the reach
	// condition of the apply site.
	PointTableReach
	// PointSelectCase asks "is this parser select case executable?"
	// (parser branch pruning, incl. unconfigured value sets).
	PointSelectCase
)

var pointKindNames = [...]string{
	"if-branch", "assign-value", "table-action", "action-reach",
	"table-reach", "select-case",
}

func (k PointKind) String() string {
	if int(k) < len(pointKindNames) {
		return pointKindNames[k]
	}
	return "point?"
}

// Point is a hermetic program-point annotation: its Expr can be
// evaluated independently of every other point (the state-merging
// property the paper relies on).
type Point struct {
	ID   int
	Kind PointKind
	// Expr is the data-plane expression with |ctrl| placeholders.
	Expr *sym.Expr

	// Back-references into the AST so specialization passes can rewrite
	// the node this point talks about. Only the fields relevant to Kind
	// are set.
	Control     string
	If          *ast.IfStmt
	ThenBranch  bool
	Assign      *ast.AssignStmt
	Table       string // qualified table name
	ActionIndex int
	ParserState string
	CaseIndex   int
}

func (p *Point) String() string {
	return fmt.Sprintf("#%d %s %s", p.ID, p.Kind, p.Expr)
}

// TableInfo is everything the control-plane compiler needs to turn a
// table's entries into assignments for this table's placeholders.
type TableInfo struct {
	Name    string // qualified "<control>.<table>"
	Control string
	Table   *ast.Table
	Decl    *ast.ControlDecl

	// KeyExprs are the symbolic values of the key components at the
	// (single) apply site; KeyWidths are their widths; KeyMatch the
	// declared match kinds.
	KeyExprs  []*sym.Expr
	KeyWidths []uint16
	KeyMatch  []ast.MatchKind

	// Actions lists the table's actions in declaration order; the
	// selector placeholder ranges over their indices.
	Actions []ActionInfo
	// DefaultIndex is the index selected on miss.
	DefaultIndex int
	// DefaultArgs are the bound default_action arguments (nil when the
	// default has no parameters or is NoAction).
	DefaultArgs []sym.BV

	// ActionVar is the selector placeholder |t.$action| (width 8).
	ActionVar *sym.Expr
	// HitVar is the |t.$hit| placeholder (width 1).
	HitVar *sym.Expr

	applied bool // a table may have only one apply site
}

// ActionInfo describes one action bound to a table.
type ActionInfo struct {
	Name string
	// Params holds one placeholder per action data parameter
	// (|t.a.param|).
	Params []*sym.Expr
	// ParamWidths mirrors Params.
	ParamWidths []uint16
	// Decl is nil for NoAction.
	Decl *ast.Action
}

// ValueSetInfo describes one use site of a parser value set.
type ValueSetInfo struct {
	Name    string // qualified "<parser>.<vs>"
	Parser  string
	Decl    *ast.ValueSet
	KeyExpr *sym.Expr
	Width   uint16
	// MatchVar is the |vs#site| placeholder (width 1): "does the select
	// key fall in the configured set?".
	MatchVar *sym.Expr
}

// RegisterInfo describes one register read site.
type RegisterInfo struct {
	Name    string // qualified "<control>.<reg>"
	Control string
	Decl    *ast.Register
	Width   uint16
	// ReadVars holds one placeholder per read site (|reg#site|); the
	// control plane substitutes a constant when the register is filled
	// uniformly, or a fresh unconstrained data variable otherwise.
	ReadVars []*sym.Expr
	// Written records whether the data plane writes the register; a
	// written register's reads can never be specialized to the fill
	// constant (the data plane may have overwritten it).
	Written bool
}

// Analysis is the one-time product of the data-plane pass.
type Analysis struct {
	Builder *sym.Builder
	Prog    *ast.Program
	Info    *typecheck.Info

	Points []*Point
	// Tables, ValueSets and Registers are keyed by qualified name.
	Tables    map[string]*TableInfo
	ValueSets map[string]*ValueSetInfo
	Registers map[string]*RegisterInfo
	// TableOrder lists qualified table names in apply order.
	TableOrder []string

	// Taint maps a control-plane variable (by node) to the IDs of the
	// points it can influence, including transitive influence through
	// table key expressions (paper §4.1: the control-plane variable →
	// program points map).
	Taint map[*sym.Expr][]int
	// VarOwner maps a control-plane placeholder to the qualified name of
	// the object (table/value set/register) it belongs to.
	VarOwner map[*sym.Expr]string

	// Final is the merged store at the end of the pipeline, used by
	// tests and by Fig. 5-style inspection.
	Final map[string]*sym.Expr

	// SkippedParser records whether parser analysis was skipped.
	SkippedParser bool
}

// PointsOf returns the points influenced by the object with the given
// qualified name (table, value set or register), deduplicated, in ID
// order.
func (a *Analysis) PointsOf(qualified string) []*Point {
	seen := make(map[int]bool)
	var out []*Point
	for v, ids := range a.Taint {
		if a.VarOwner[v] != qualified {
			continue
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, a.Points[id])
			}
		}
	}
	// IDs arrive unordered from the map; sort by ID.
	sortPoints(out)
	return out
}

// PointsOfTargets returns the union of PointsOf over the given qualified
// names, deduplicated, in ID order. The batch update engine routes a
// whole coalesced batch through this single taint lookup.
func (a *Analysis) PointsOfTargets(names []string) []*Point {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	seen := make(map[int]bool)
	var out []*Point
	for v, ids := range a.Taint {
		if !want[a.VarOwner[v]] {
			continue
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, a.Points[id])
			}
		}
	}
	sortPoints(out)
	return out
}

func sortPoints(out []*Point) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
}

// Options configures the analysis.
type Options struct {
	// SkipParser skips symbolic execution of parser states; every header
	// field becomes an unconstrained data variable. This reproduces the
	// paper's accommodation for large programs (switch.p4): "we added an
	// option to skip parser analysis" (§4.2).
	SkipParser bool

	// Trace, when set, records "dataflow" and "taint" spans under Parent.
	// Metrics, when set, receives the analysis-shape gauges (point,
	// table and taint-edge counts). Both default to disabled.
	Trace   *obs.Trace
	Parent  obs.SpanID
	Metrics *obs.Registry
}

// Error is an analysis error.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "dataplane: " + e.Msg }

func errorf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}
