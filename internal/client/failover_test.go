// Failover suite: the retrying client against a real active/standby
// pair. The scenario is the one the front door creates — a write is
// applied and replicated, but the shard dies before answering, and the
// retry lands on the freshly promoted standby. The req_id idempotency
// key must make that exactly-once: no duplicate apply, the replayed
// decisions intact, and the error classification (standby, 503)
// surviving the wire round trip in between.
package client_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/server"
	"repro/internal/sym"
	"repro/internal/wire"
)

func insertUpdate(val uint64) *controlplane.Update {
	return &controlplane.Update{
		Kind:  controlplane.InsertEntry,
		Table: "Ingress.eth_table",
		Entry: &controlplane.TableEntry{
			Action: "drop",
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchTernary, Value: sym.NewBV(48, val), Mask: sym.NewBV(48, 0xffffffffffff)},
			},
		},
	}
}

func TestWriteRetryExactlyOnceAcrossFailover(t *testing.T) {
	newServer := func(cfg server.Config) *server.Server {
		cfg.Logf = t.Logf
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	standbySrv := newServer(server.Config{Standby: true})
	standbyTS := httptest.NewServer(standbySrv)
	defer standbyTS.Close()
	activeSrv := newServer(server.Config{ReplicateTo: standbyTS.URL})
	activeTS := httptest.NewServer(activeSrv)
	defer activeTS.Close()

	// The stand-in front door: routes to the current backend, and on the
	// armed request simulates a shard crash after the write was applied
	// and replicated but before the response left — the backend flips to
	// the (not yet promoted) standby and the client's connection dies.
	var backend atomic.Value
	backend.Store(http.Handler(activeSrv))
	var killOnce atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killOnce.CompareAndSwap(true, false) {
			rec := httptest.NewRecorder()
			activeSrv.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				t.Errorf("armed write was not applied: HTTP %d %s", rec.Code, rec.Body)
			}
			backend.Store(http.Handler(standbySrv))
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // response lost
			return
		}
		backend.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer front.Close()

	c := client.New(front.URL)
	if _, err := c.CreateSession(wire.CreateSessionRequest{Name: "fo", Catalog: "fig3"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	const setup = 5
	for i := 0; i < setup; i++ {
		if _, err := c.Write("fo", wire.ModeSingle, []*controlplane.Update{insertUpdate(uint64(0x0a000000 + i))}); err != nil {
			t.Fatalf("setup write %d: %v", i, err)
		}
	}

	// Sentinel mapping across the wire: the unpromoted standby refuses a
	// direct write with a classified 503.
	sc := client.New(standbyTS.URL)
	if _, err := sc.Write("fo", wire.ModeSingle, []*controlplane.Update{insertUpdate(0x0b000000)}); !errors.Is(err, flayerr.ErrStandby) {
		t.Fatalf("standby write error = %v, want errors.Is ErrStandby", err)
	}
	if !client.IsStatus(flayerrOf(t, sc), http.StatusServiceUnavailable) {
		t.Fatal("standby refusal is not a 503")
	}

	// Promote arrives mid-retry, the way a failover detector would.
	killOnce.Store(true)
	promoted := make(chan struct{})
	time.AfterFunc(75*time.Millisecond, func() {
		defer close(promoted)
		if _, err := sc.Promote(); err != nil {
			t.Errorf("promote: %v", err)
		}
	})

	resp, retries, err := c.WriteRetry("fo", wire.ModeSingle, []*controlplane.Update{insertUpdate(0x0c000000)}, 50, 5*time.Millisecond)
	<-promoted
	if err != nil {
		t.Fatalf("write across failover: %v (%d retries)", err, retries)
	}
	if retries == 0 {
		t.Fatal("the killed response did not force a retry")
	}
	if !resp.Replayed {
		t.Fatal("retried write was re-applied instead of replayed from the idempotency cache")
	}
	if len(resp.Decisions) != 1 || resp.Decisions[0].Kind == "" {
		t.Fatalf("replayed decisions malformed: %+v", resp.Decisions)
	}

	// Exactly-once: the promoted standby absorbed the armed write via
	// replication, once.
	st, err := sc.Stats("fo")
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != setup+1 {
		t.Fatalf("standby applied %d updates, want %d (exactly-once violated)", st.Updates, setup+1)
	}

	// Life goes on: a fresh write through the front lands on the
	// promoted standby and is not a replay.
	resp, _, err = c.WriteRetry("fo", wire.ModeSingle, []*controlplane.Update{insertUpdate(0x0d000000)}, 5, 5*time.Millisecond)
	if err != nil || resp.Replayed {
		t.Fatalf("post-failover write: err %v, replayed %v", err, resp.Replayed)
	}
	if st, _ := sc.Stats("fo"); st.Updates != setup+2 {
		t.Fatalf("post-failover write did not apply: %d updates", st.Updates)
	}
}

// flayerrOf re-issues the refused standby write to capture its error
// for status checks.
func flayerrOf(t *testing.T, sc *client.Client) error {
	t.Helper()
	_, err := sc.Write("fo", wire.ModeSingle, []*controlplane.Update{insertUpdate(0x0b000001)})
	if err == nil {
		t.Fatal("standby accepted a write")
	}
	return err
}
