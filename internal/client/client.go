// Package client is the typed Go client for flayd's HTTP/JSON API
// (internal/wire). It is what the server's end-to-end tests and the
// flayload generator speak — every call is one request, strictly
// decoded, with non-2xx responses surfaced as *APIError. An APIError
// carries the server's machine-readable error code and unwraps to the
// matching goflay sentinel, so errors.Is(err, goflay.ErrBackpressure)
// and friends classify failures across the HTTP boundary without
// string matching.
package client

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// APIError is a non-2xx response.
type APIError struct {
	Status int
	Msg    string
	// Code is the server's machine-readable error classification
	// (wire.Code*), empty when the server did not classify.
	Code string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("flayd: HTTP %d: %s", e.Status, e.Msg)
}

// Unwrap maps the wire code back to the goflay sentinel it stands for,
// making errors.Is work through an APIError. Unclassified errors unwrap
// to nil.
func (e *APIError) Unwrap() error {
	return wire.SentinelOf(e.Code)
}

// IsStatus reports whether err is (or wraps) an APIError with the given
// status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Client talks to one flayd instance.
type Client struct {
	base string
	hc   *http.Client
	// conns, when non-nil, counts connection establishment vs reuse for
	// every request (NewPooled turns it on).
	conns *ConnStats
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:9444"). The underlying http.Client has no timeout;
// wrap with WithHTTPClient for one.
func New(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// NewPooled returns a client whose transport keeps up to maxConns idle
// connections to the daemon (default http.Transport keeps only 2 per
// host, which makes a many-worker load generator churn through fresh
// TCP connections). Connection establishment vs reuse is counted per
// request; read it with Conns.
func NewPooled(base string, maxConns int) *Client {
	if maxConns <= 0 {
		maxConns = 16
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}, conns: &ConnStats{}}
}

// ConnStats counts how requests got their TCP connection.
type ConnStats struct {
	dialed atomic.Int64
	reused atomic.Int64
}

// Dialed is the number of requests that needed a fresh connection.
func (s *ConnStats) Dialed() int64 { return s.dialed.Load() }

// Reused is the number of requests served on a kept-alive connection.
func (s *ConnStats) Reused() int64 { return s.reused.Load() }

// Conns returns the client's connection counters (nil unless the client
// was built with NewPooled).
func (c *Client) Conns() *ConnStats { return c.conns }

// WithHTTPClient swaps the transport (timeouts, test servers).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// do runs one request; when out is non-nil the response body is
// strictly decoded into it.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.conns != nil {
		trace := &httptrace.ClientTrace{GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.conns.reused.Add(1)
			} else {
				c.conns.dialed.Add(1)
			}
		}}
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we wire.ErrorResponse
		msg := resp.Status
		if err := wire.Decode(resp.Body, 1<<20, &we); err == nil && we.Error != "" {
			msg = we.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg, Code: we.Code}
	}
	if out == nil {
		return nil
	}
	return wire.Decode(resp.Body, 0, out)
}

// CreateSession loads a new session from a catalog name, P4 source, or
// snapshot (see wire.CreateSessionRequest).
func (c *Client) CreateSession(req wire.CreateSessionRequest) (wire.SessionInfo, error) {
	var info wire.SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", &req, &info)
	return info, err
}

// Sessions lists the live sessions.
func (c *Client) Sessions() ([]wire.SessionInfo, error) {
	var list wire.SessionList
	err := c.do(http.MethodGet, "/v1/sessions", nil, &list)
	return list.Sessions, err
}

// Session fetches one session's info.
func (c *Client) Session(name string) (wire.SessionInfo, error) {
	var info wire.SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions/"+name, nil, &info)
	return info, err
}

// DeleteSession closes a session and deletes its snapshot.
func (c *Client) DeleteSession(name string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+name, nil, nil)
}

// Write applies updates with the given mode (wire.ModeSingle,
// wire.ModeBatch, or "" for the mode-by-count default), returning one
// decision per update.
func (c *Client) Write(name, mode string, updates []*controlplane.Update) (wire.WriteResponse, error) {
	return c.WriteDeadline(name, mode, updates, 0)
}

// WriteDeadline is Write with a per-request latency budget: deadline
// (rounded up to a whole millisecond, 0 = none) travels as the wire
// deadline_ms field, and the server's engine may degrade table
// precision to honor it — affected decisions come back with
// Precision == "degraded".
func (c *Client) WriteDeadline(name, mode string, updates []*controlplane.Update, deadline time.Duration) (wire.WriteResponse, error) {
	req := wire.WriteRequest{Mode: mode, Updates: wire.FromUpdates(updates)}
	if deadline > 0 {
		req.DeadlineMS = int64((deadline + time.Millisecond - 1) / time.Millisecond)
	}
	var resp wire.WriteResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/updates", &req, &resp)
	return resp, err
}

// WriteRetry is Write plus bounded retries, backing off linearly
// (attempt * step). Retried failures are the transient ones: 429
// backpressure, 502/503 (a front door mid-failover, a standby not yet
// promoted), and transport errors (connection killed under the
// request). Every attempt carries the same generated req_id, so a write
// whose response was lost is answered from the server's idempotency
// cache on retry instead of applying twice — exactly-once across a
// shard failover. Other errors return immediately; after the last
// attempt the final *APIError is returned with its sentinel mapping
// intact (e.g. errors.Is(err, goflay.ErrBackpressure) for a 429).
func (c *Client) WriteRetry(name, mode string, updates []*controlplane.Update, attempts int, step time.Duration) (wire.WriteResponse, int, error) {
	return c.WriteRetryDeadline(name, mode, updates, 0, attempts, step)
}

// WriteRetryDeadline is WriteRetry with a per-request latency budget
// (see WriteDeadline).
func (c *Client) WriteRetryDeadline(name, mode string, updates []*controlplane.Update, deadline time.Duration, attempts int, step time.Duration) (wire.WriteResponse, int, error) {
	req := wire.WriteRequest{Mode: mode, Updates: wire.FromUpdates(updates), ReqID: NewReqID()}
	if deadline > 0 {
		req.DeadlineMS = int64((deadline + time.Millisecond - 1) / time.Millisecond)
	}
	retries := 0
	for {
		var resp wire.WriteResponse
		err := c.do(http.MethodPost, "/v1/sessions/"+name+"/updates", &req, &resp)
		if err == nil || !retryable(err) || retries >= attempts {
			return resp, retries, err
		}
		retries++
		time.Sleep(time.Duration(retries) * step)
	}
}

// retryable classifies an error as transient: worth re-sending the same
// req_id at.
func retryable(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		// No HTTP status at all: the transport failed (connection
		// refused or killed mid-request — the failover window).
		return true
	}
	switch ae.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// reqSeq disambiguates req_ids minted by this process.
var reqSeq atomic.Uint64

// NewReqID mints a unique idempotency key: random process prefix plus a
// process-local sequence number.
func NewReqID() string {
	var b [6]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:]) + "-" + fmt.Sprint(reqSeq.Add(1))
}

// Promote flips a standby daemon live (POST /v1/replica/promote),
// returning the sessions now serving. Idempotent.
func (c *Client) Promote() (wire.ReplicaPromoteResponse, error) {
	var resp wire.ReplicaPromoteResponse
	err := c.do(http.MethodPost, "/v1/replica/promote", nil, &resp)
	return resp, err
}

// Exec runs a burst of packets through a session's current specialized
// program (the session must be created with Exec: true). A session
// opened without exec yields an error satisfying
// errors.Is(err, goflay.ErrExecDisabled); a malformed packet satisfies
// errors.Is(err, goflay.ErrBadPacket).
func (c *Client) Exec(name string, packets []wire.Packet) (wire.ExecResponse, error) {
	req := wire.ExecRequest{Packets: packets}
	var resp wire.ExecResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/exec", &req, &resp)
	return resp, err
}

// ExecBytes is Exec over raw packet buffers with per-packet ingress
// ports (short ports default to 0).
func (c *Client) ExecBytes(name string, packets [][]byte, ports []uint16) (wire.ExecResponse, error) {
	wp := make([]wire.Packet, len(packets))
	for i, data := range packets {
		var port uint16
		if i < len(ports) {
			port = ports[i]
		}
		wp[i] = wire.FromPacket(data, port)
	}
	return c.Exec(name, wp)
}

// Stats fetches the session's engine statistics.
func (c *Client) Stats(name string) (wire.Stats, error) {
	var st wire.Stats
	err := c.do(http.MethodGet, "/v1/sessions/"+name+"/stats", nil, &st)
	return st, err
}

// Explain fetches decision-diagram explanations of a session's program
// points: every point the table influences, or — when point >= 0 — just
// that point (membership-checked against the table when both are
// given). Pass table == "" with point >= 0 to explain one point by ID.
func (c *Client) Explain(name, table string, point int) (wire.ExplainResponse, error) {
	q := url.Values{}
	if table != "" {
		q.Set("table", table)
	}
	if point >= 0 {
		q.Set("point", strconv.Itoa(point))
	}
	path := "/v1/sessions/" + name + "/explain"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp wire.ExplainResponse
	err := c.do(http.MethodGet, path, nil, &resp)
	return resp, err
}

// Audit fetches audit records with Seq > since (since 0 = everything
// retained).
func (c *Client) Audit(name string, since int) (wire.AuditResponse, error) {
	var resp wire.AuditResponse
	path := fmt.Sprintf("/v1/sessions/%s/audit?since=%d", name, since)
	err := c.do(http.MethodGet, path, nil, &resp)
	return resp, err
}

// Snapshot checkpoints the session and returns the warm state.
func (c *Client) Snapshot(name string) (wire.SnapshotResponse, error) {
	var resp wire.SnapshotResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/snapshot", nil, &resp)
	return resp, err
}

// Source fetches the session's specialized ("specialized" or "") or
// original ("original") P4 source.
func (c *Client) Source(name, which string) (string, error) {
	path := "/v1/sessions/" + name + "/source"
	if which != "" {
		path += "?which=" + which
	}
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, wire.DefaultMaxBody))
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: string(data)}
	}
	return string(data), nil
}

// Metrics fetches the JSON metrics snapshot.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.do(http.MethodGet, "/v1/metrics", nil, &snap)
	return snap, err
}

// MetricsText fetches the Prometheus text exposition.
func (c *Client) MetricsText() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, wire.DefaultMaxBody))
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: string(data)}
	}
	return string(data), nil
}

// Health fetches /healthz.
func (c *Client) Health() (wire.HealthResponse, error) {
	var h wire.HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// WaitReady polls /healthz until the daemon answers or the deadline
// passes — the load generator's startup handshake. A daemon that never
// becomes ready yields an error satisfying
// errors.Is(err, goflay.ErrDeadlineExceeded) (the last health-check
// failure stays in the message).
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Health(); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("client: daemon not ready after %v (%v): %w",
				timeout, err, flayerr.ErrDeadlineExceeded)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
