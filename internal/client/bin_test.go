// BinClient suite: the pipelined binary client against a live daemon —
// concurrent writes on one connection, idempotency keys over the binary
// surface, and error classification parity with the HTTP client.
package client_test

import (
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/server"
)

func startBinServer(t *testing.T, cfg server.Config) (httpURL, binAddr string) {
	t.Helper()
	cfg.Logf = t.Logf
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeBin(ln)
	return ts.URL, ln.Addr().String()
}

func TestBinClientConcurrentWrites(t *testing.T) {
	httpURL, binAddr := startBinServer(t, server.Config{})
	b, err := client.DialBin(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ok, err := b.Attach("bc", "fig3", false)
	if err != nil || !ok.Created {
		t.Fatalf("attach: %+v, %v", ok, err)
	}

	// Many goroutines share the one pipelined connection.
	const writers, per = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := b.Write([]*controlplane.Update{insertUpdate(uint64(w*1000 + i))}, false)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Decisions) != 1 {
					errs <- errors.New("wrong decision count")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent write: %v", err)
	}

	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != writers*per {
		t.Fatalf("session saw %d updates, want %d", st.Updates, writers*per)
	}

	// Idempotency over the binary surface: same req_id answers from the
	// cache, and the HTTP view agrees nothing re-applied.
	u := []*controlplane.Update{insertUpdate(0xbeef)}
	id := client.NewReqID()
	first, err := b.WriteOpts(u, false, 0, id)
	if err != nil || first.Replayed {
		t.Fatalf("first idempotent write: %+v, %v", first, err)
	}
	second, err := b.WriteOpts(u, false, 0, id)
	if err != nil || !second.Replayed {
		t.Fatalf("duplicate req_id over binary: %+v, %v", second, err)
	}
	hc := client.New(httpURL)
	hst, err := hc.Stats("bc")
	if err != nil {
		t.Fatal(err)
	}
	if hst.Updates != writers*per+1 {
		t.Fatalf("HTTP view: %d updates, want %d", hst.Updates, writers*per+1)
	}
}

func TestBinClientErrorClassification(t *testing.T) {
	_, binAddr := startBinServer(t, server.Config{Standby: true})
	b, err := client.DialBin(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Creating a session on a standby is refused with the typed
	// sentinel, same as over HTTP.
	if _, err := b.Attach("sb", "fig3", false); !errors.Is(err, flayerr.ErrStandby) {
		t.Fatalf("standby attach error = %v, want errors.Is ErrStandby", err)
	}
}
