package client

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/sym"
	"repro/internal/wire"
)

// writeWireError answers with a classified wire.ErrorResponse, the way
// flayd's errorErr helper does.
func writeWireError(w http.ResponseWriter, status int, msg, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: msg, Code: code})
}

// testUpdates is a minimal valid insert, enough to survive the wire
// round trip.
func testUpdates() []*controlplane.Update {
	return []*controlplane.Update{{
		Kind:  controlplane.InsertEntry,
		Table: "acl",
		Entry: &controlplane.TableEntry{
			Action: "drop",
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchExact, Value: sym.NewBV(8, 1)},
			},
		},
	}}
}

// TestWaitReadyNeverReady pins the startup-handshake timeout path: a
// daemon that never answers /healthz healthily must yield a typed
// deadline error within bounded time, not hang.
func TestWaitReadyNeverReady(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeWireError(w, http.StatusServiceUnavailable, "warming up", "")
	}))
	defer srv.Close()

	c := New(srv.URL)
	start := time.Now()
	err := c.WaitReady(200 * time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("WaitReady succeeded against a never-ready daemon")
	}
	if !errors.Is(err, flayerr.ErrDeadlineExceeded) {
		t.Fatalf("WaitReady error = %v, want errors.Is ErrDeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("WaitReady took %v, want bounded by ~timeout", elapsed)
	}
}

// TestWaitReadyUnreachable covers the connection-refused variant of the
// same path (no HTTP response at all).
func TestWaitReadyUnreachable(t *testing.T) {
	c := New("http://127.0.0.1:1") // reserved port: connect always fails
	err := c.WaitReady(150 * time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against an unreachable daemon")
	}
	if !errors.Is(err, flayerr.ErrDeadlineExceeded) {
		t.Fatalf("WaitReady error = %v, want errors.Is ErrDeadlineExceeded", err)
	}
}

// TestWriteRetrySustainedBackpressure pins the retry loop against a
// server that answers 429 forever: the client must make exactly
// attempts retries, return the typed backpressure error, and not hang.
func TestWriteRetrySustainedBackpressure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeWireError(w, http.StatusTooManyRequests, "session queue full", wire.CodeBackpressure)
	}))
	defer srv.Close()

	c := New(srv.URL)
	const attempts = 3
	done := make(chan struct{})
	var resp wire.WriteResponse
	var retries int
	var err error
	go func() {
		defer close(done)
		resp, retries, err = c.WriteRetry("s", wire.ModeSingle, testUpdates(), attempts, time.Millisecond)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WriteRetry hung under sustained 429s")
	}

	if err == nil {
		t.Fatalf("WriteRetry succeeded, want 429 error (resp %+v)", resp)
	}
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("WriteRetry error = %v, want status 429", err)
	}
	if !errors.Is(err, flayerr.ErrBackpressure) {
		t.Fatalf("WriteRetry error = %v, want errors.Is ErrBackpressure", err)
	}
	if retries != attempts {
		t.Fatalf("retries = %d, want %d", retries, attempts)
	}
	if got := calls.Load(); got != attempts+1 {
		t.Fatalf("server saw %d calls, want %d (1 initial + %d retries)", got, attempts+1, attempts)
	}
}

// TestAPIErrorUnwrapsSentinels pins the code→sentinel mapping through
// the client: each classified ErrorResponse must satisfy errors.Is for
// its goflay sentinel after the HTTP round trip.
func TestAPIErrorUnwrapsSentinels(t *testing.T) {
	cases := []struct {
		code     string
		status   int
		sentinel error
	}{
		{wire.CodeUnknownTable, http.StatusBadRequest, flayerr.ErrUnknownTable},
		{wire.CodeClosed, http.StatusServiceUnavailable, flayerr.ErrClosed},
		{wire.CodeDeadlineExceeded, http.StatusGatewayTimeout, flayerr.ErrDeadlineExceeded},
		{wire.CodeSnapshotCorrupt, http.StatusUnprocessableEntity, flayerr.ErrSnapshotCorrupt},
		{wire.CodeBackpressure, http.StatusTooManyRequests, flayerr.ErrBackpressure},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				writeWireError(w, tc.status, tc.code, tc.code)
			}))
			defer srv.Close()

			_, err := New(srv.URL).Stats("s")
			if err == nil {
				t.Fatal("Stats succeeded, want error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want errors.Is %v", err, tc.sentinel)
			}
			var ae *APIError
			if !errors.As(err, &ae) || ae.Code != tc.code || ae.Status != tc.status {
				t.Fatalf("APIError = %+v, want code %q status %d", ae, tc.code, tc.status)
			}
		})
	}
}

// TestAPIErrorUnclassified: errors without a wire code still behave
// (Unwrap nil, no false sentinel matches).
func TestAPIErrorUnclassified(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	_, err := New(srv.URL).Stats("s")
	if err == nil {
		t.Fatal("Stats succeeded, want error")
	}
	if !IsStatus(err, http.StatusInternalServerError) {
		t.Fatalf("err = %v, want status 500", err)
	}
	for _, sentinel := range []error{
		flayerr.ErrUnknownTable, flayerr.ErrClosed, flayerr.ErrDeadlineExceeded,
		flayerr.ErrSnapshotCorrupt, flayerr.ErrBackpressure,
	} {
		if errors.Is(err, sentinel) {
			t.Fatalf("unclassified err matched sentinel %v", sentinel)
		}
	}
}

// TestWriteDeadlineWire pins the deadline_ms encoding: sub-millisecond
// budgets round up, zero means absent.
func TestWriteDeadlineWire(t *testing.T) {
	var got atomic.Int64
	got.Store(-1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wire.WriteRequest
		if err := wire.Decode(r.Body, wire.DefaultMaxBody, &req); err != nil {
			writeWireError(w, http.StatusBadRequest, err.Error(), "")
			return
		}
		got.Store(req.DeadlineMS)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.WriteResponse{})
	}))
	defer srv.Close()

	c := New(srv.URL)
	if _, err := c.WriteDeadline("s", wire.ModeSingle, testUpdates(), 1500*time.Microsecond); err != nil {
		t.Fatalf("WriteDeadline: %v", err)
	}
	if ms := got.Load(); ms != 2 {
		t.Fatalf("deadline_ms = %d, want 2 (1.5ms rounded up)", ms)
	}
	if _, err := c.Write("s", wire.ModeSingle, testUpdates()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if ms := got.Load(); ms != 0 {
		t.Fatalf("deadline_ms = %d, want 0 when no budget set", ms)
	}
}
