// BinClient: the native speaker of flayd's length-prefixed binary
// protocol (internal/wire/binproto). One TCP connection, scoped to one
// session by the mandatory Attach, with pipelining: any number of
// concurrent Writes may be in flight, matched to responses by
// correlation ID, so a single connection saturates the dispatcher
// without per-request round-trip stalls or HTTP framing overhead.
//
// Errors carry the same classification as the HTTP surface: a TErr
// frame becomes an *APIError with the server's status and machine code,
// so errors.Is(err, goflay.ErrBackpressure) and friends work unchanged.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// BinClient is one binary-protocol connection attached to one session.
// Safe for concurrent use; Writes pipeline.
type BinClient struct {
	conn net.Conn
	corr atomic.Uint64

	// wmu serializes frame writes onto the connection.
	wmu sync.Mutex

	// pmu guards the pending map and the sticky transport error. A
	// pending channel (capacity 1) is closed without a frame when the
	// connection dies.
	pmu     sync.Mutex
	err     error
	pending map[uint64]chan binproto.Frame

	attached atomic.Bool
}

// DialBin connects and performs the protocol handshake. Attach must be
// the first call on the returned client.
func DialBin(addr string) (*BinClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return NewBin(conn)
}

// NewBin wraps an established connection (tests, custom dialers) and
// performs the handshake.
func NewBin(conn net.Conn) (*BinClient, error) {
	if err := binproto.WriteHandshake(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := binproto.ReadHandshake(br); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	b := &BinClient{conn: conn, pending: make(map[uint64]chan binproto.Frame)}
	go b.readLoop(br)
	return b, nil
}

// Close tears the connection down; in-flight calls fail with the
// connection error.
func (b *BinClient) Close() error {
	return b.conn.Close()
}

func (b *BinClient) readLoop(br *bufio.Reader) {
	for {
		f, err := binproto.ReadFrame(br)
		if err != nil {
			b.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		b.pmu.Lock()
		ch, ok := b.pending[f.Corr]
		delete(b.pending, f.Corr)
		b.pmu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail sets the sticky error and releases every waiter.
func (b *BinClient) fail(err error) {
	b.pmu.Lock()
	if b.err == nil {
		b.err = err
	}
	for corr, ch := range b.pending {
		delete(b.pending, corr)
		close(ch)
	}
	b.pmu.Unlock()
	b.conn.Close()
}

// call sends one frame and waits for its correlated response.
func (b *BinClient) call(t byte, payload []byte) (binproto.Frame, error) {
	corr := b.corr.Add(1)
	ch := make(chan binproto.Frame, 1)
	b.pmu.Lock()
	if b.err != nil {
		err := b.err
		b.pmu.Unlock()
		return binproto.Frame{}, err
	}
	b.pending[corr] = ch
	b.pmu.Unlock()

	b.wmu.Lock()
	err := binproto.WriteFrame(b.conn, binproto.Frame{Type: t, Corr: corr, Payload: payload})
	b.wmu.Unlock()
	if err != nil {
		b.fail(fmt.Errorf("client: write: %w", err))
		return binproto.Frame{}, err
	}

	f, ok := <-ch
	if !ok {
		b.pmu.Lock()
		err := b.err
		b.pmu.Unlock()
		return binproto.Frame{}, err
	}
	if f.Type == binproto.TErr {
		e, derr := binproto.DecodeErrMsg(f.Payload)
		if derr != nil {
			return binproto.Frame{}, fmt.Errorf("client: undecodable error frame: %w", derr)
		}
		return binproto.Frame{}, &APIError{Status: e.Status, Msg: e.Msg, Code: e.Code}
	}
	return f, nil
}

// Attach scopes the connection to a session, creating it from a catalog
// program when a catalog is given and the session does not exist.
func (b *BinClient) Attach(name, catalog string, exec bool) (*binproto.AttachOK, error) {
	if !b.attached.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("client: connection already attached")
	}
	f, err := b.call(binproto.TAttach, binproto.AppendAttach(nil, &binproto.Attach{Name: name, Catalog: catalog, Exec: exec}))
	if err != nil {
		b.attached.Store(false)
		return nil, err
	}
	if f.Type != binproto.TAttachOK {
		return nil, fmt.Errorf("client: attach answered frame type %#x", f.Type)
	}
	ok, err := binproto.DecodeAttachOK(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: attach-ok: %w", err)
	}
	return ok, nil
}

// Write applies updates on the attached session (batch semantics when
// batch is set). Concurrent Writes pipeline on the one connection.
func (b *BinClient) Write(updates []*controlplane.Update, batch bool) (wire.WriteResponse, error) {
	return b.WriteOpts(updates, batch, 0, "")
}

// WriteOpts is Write with a latency budget (0 = none) and an
// idempotency key ("" = none).
func (b *BinClient) WriteOpts(updates []*controlplane.Update, batch bool, deadline time.Duration, reqID string) (wire.WriteResponse, error) {
	w := &binproto.Write{Batch: batch, ReqID: reqID, Updates: updates}
	if deadline > 0 {
		w.DeadlineMS = uint64((deadline + time.Millisecond - 1) / time.Millisecond)
	}
	f, err := b.call(binproto.TWrite, binproto.AppendWrite(nil, w))
	if err != nil {
		return wire.WriteResponse{}, err
	}
	if f.Type != binproto.TWriteOK {
		return wire.WriteResponse{}, fmt.Errorf("client: write answered frame type %#x", f.Type)
	}
	ok, err := binproto.DecodeWriteOK(f.Payload)
	if err != nil {
		return wire.WriteResponse{}, fmt.Errorf("client: write-ok: %w", err)
	}
	return wire.WriteResponse{Decisions: ok.Decisions, Coalesced: ok.Coalesced, Replayed: ok.Replayed}, nil
}

// Stats fetches the attached session's engine statistics.
func (b *BinClient) Stats() (wire.Stats, error) {
	f, err := b.call(binproto.TStats, nil)
	if err != nil {
		return wire.Stats{}, err
	}
	var st wire.Stats
	if err := json.Unmarshal(f.Payload, &st); err != nil {
		return wire.Stats{}, fmt.Errorf("client: stats: %w", err)
	}
	return st, nil
}

// Snapshot fetches the attached session's warm-state checkpoint.
func (b *BinClient) Snapshot() ([]byte, error) {
	f, err := b.call(binproto.TSnapshot, nil)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Ping round-trips an empty frame (liveness, latency probes).
func (b *BinClient) Ping() error {
	_, err := b.call(binproto.TPing, nil)
	return err
}
