package bmv2

import (
	"math/rand"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/sym"
)

// TestDifferentialUpdateStorm throws a mixed storm of updates — valid
// inserts/modifies/deletes, default overrides, and deliberately invalid
// operations — at the specializer and checks after every burst that
// (a) invalid updates were rejected without corrupting state and
// (b) the specialized program stays observationally equivalent to the
// original. This is the failure-injection companion to the clean
// differential tests.
func TestDifferentialUpdateStorm(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	s, err := core.NewFromSource("storm", routerSrc, core.Options{OverapproxThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}

	type live struct{ e *controlplane.TableEntry }
	var installed []live

	randEntry := func() *controlplane.TableEntry {
		action := "fwd"
		params := []sym.BV{sym.NewBV(9, uint64(r.Intn(512)))}
		if r.Intn(4) == 0 {
			action, params = "drop", nil
		}
		return &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind:      controlplane.MatchLPM,
				Value:     sym.NewBV(32, uint64(r.Uint32())),
				PrefixLen: r.Intn(33),
			}},
			Action: action, Params: params,
		}
	}

	gen := func() Packet {
		data := ipv4Packet(uint64(r.Int63())&0xFFFFFFFFFFFF, byte(r.Intn(256)), r.Uint32())
		if r.Intn(6) == 0 {
			data = data[:r.Intn(len(data))]
		}
		return Packet{Data: data}
	}

	for burst := 0; burst < 12; burst++ {
		for op := 0; op < 8; op++ {
			var u *controlplane.Update
			switch choice := r.Intn(10); {
			case choice < 4: // insert
				e := randEntry()
				u = &controlplane.Update{Kind: controlplane.InsertEntry, Table: "Ingress.route", Entry: e}
				if d := s.Apply(u); d.Kind != core.Rejected {
					installed = append(installed, live{e})
				}
			case choice < 6 && len(installed) > 0: // delete an existing entry
				i := r.Intn(len(installed))
				u = &controlplane.Update{Kind: controlplane.DeleteEntry, Table: "Ingress.route", Entry: installed[i].e}
				if d := s.Apply(u); d.Kind == core.Rejected {
					t.Fatalf("delete of live entry rejected: %v", d.Err)
				}
				installed = append(installed[:i], installed[i+1:]...)
			case choice < 7 && len(installed) > 0: // modify an existing entry
				i := r.Intn(len(installed))
				mod := *installed[i].e
				mod.Action = "fwd"
				mod.Params = []sym.BV{sym.NewBV(9, uint64(r.Intn(512)))}
				u = &controlplane.Update{Kind: controlplane.ModifyEntry, Table: "Ingress.route", Entry: &mod}
				if d := s.Apply(u); d.Kind == core.Rejected {
					t.Fatalf("modify of live entry rejected: %v", d.Err)
				}
				installed[i].e = &mod
			case choice < 8: // default override
				name := []string{"NoAction", "drop"}[r.Intn(2)]
				u = &controlplane.Update{Kind: controlplane.SetDefault, Table: "Ingress.route",
					Default: controlplane.ActionCall{Name: name}}
				if d := s.Apply(u); d.Kind == core.Rejected {
					t.Fatalf("default override rejected: %v", d.Err)
				}
			default: // deliberately invalid operations — must all reject
				bad := []*controlplane.Update{
					{Kind: controlplane.InsertEntry, Table: "Ingress.ghost", Entry: randEntry()},
					{Kind: controlplane.InsertEntry, Table: "Ingress.route",
						Entry: &controlplane.TableEntry{
							Matches: []controlplane.FieldMatch{{Kind: controlplane.MatchExact, Value: sym.NewBV(32, 1)}},
							Action:  "fwd", Params: []sym.BV{sym.NewBV(9, 1)}}},
					{Kind: controlplane.DeleteEntry, Table: "Ingress.route", Entry: randEntry()},
					{Kind: controlplane.SetDefault, Table: "Ingress.route",
						Default: controlplane.ActionCall{Name: "fwd"}}, // missing params
					{Kind: controlplane.FillRegister, Register: "Ingress.nope", Fill: sym.NewBV(32, 0)},
				}
				u = bad[r.Intn(len(bad))]
				if d := s.Apply(u); d.Kind != core.Rejected {
					t.Fatalf("invalid update %v accepted: %v", u, d)
				}
			}
		}
		if got := s.Cfg.NumEntries("Ingress.route"); got != len(installed) {
			t.Fatalf("burst %d: config holds %d entries, harness tracks %d", burst, got, len(installed))
		}
		comparePrograms(t, r, s, 25, gen)
	}
}
