package bmv2

import (
	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// ---------------------------------------------------------------------------
// Scopes

func (in *Interp) pushScope() { in.scopes = append(in.scopes, make(map[string]value)) }
func (in *Interp) popScope()  { in.scopes = in.scopes[:len(in.scopes)-1] }

func (in *Interp) lookup(name string) (value, bool) {
	for i := len(in.scopes) - 1; i >= 0; i-- {
		if v, ok := in.scopes[i][name]; ok {
			return v, true
		}
	}
	return value{}, false
}

func (in *Interp) declVar(v *ast.VarDecl) error {
	t := in.info.Resolve(v.Type)
	slot := "$local:" + v.Name + ":" + v.Pos().String()
	var init sym.BV
	if v.Init != nil {
		var err error
		init, err = in.eval(v.Init)
		if err != nil {
			return err
		}
	} else if t.Kind == typecheck.KBool {
		init = sym.Bool(false)
	} else {
		init = sym.BV{W: uint16(t.Width)}
	}
	in.store[slot] = init
	in.scopes[len(in.scopes)-1][v.Name] = value{slot: slot}
	return nil
}

func (in *Interp) lvalue(e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := in.lookup(e.Name)
		if !ok {
			return "", fail("unknown identifier %s", e.Name)
		}
		if v.isVal {
			return "", fail("cannot assign to parameter %s", e.Name)
		}
		return v.slot, nil
	case *ast.Member:
		base, err := in.lvalue(e.X)
		if err != nil {
			return "", err
		}
		return base + "." + e.Name, nil
	default:
		return "", fail("invalid lvalue %T", e)
	}
}

// ---------------------------------------------------------------------------
// Parser

// runParser returns false when the packet is rejected.
func (in *Interp) runParser(pd *ast.ParserDecl) (bool, error) {
	state := "start"
	for steps := 0; ; steps++ {
		if steps > 256 {
			return false, fail("parser did not terminate")
		}
		if state == "accept" {
			return true, nil
		}
		if state == "reject" {
			return false, nil
		}
		st := pd.State(state)
		if st == nil {
			return false, fail("unknown parser state %s", state)
		}
		for _, s := range st.Stmts {
			if err := in.stmt(s); err != nil {
				if _, short := err.(*shortPacket); short {
					return false, nil // short packet: reject
				}
				return false, err
			}
		}
		next, err := in.transition(pd, st.Trans)
		if err != nil {
			return false, err
		}
		state = next
	}
}

type shortPacket struct{}

func (*shortPacket) Error() string { return "bmv2: packet too short" }

func (in *Interp) transition(pd *ast.ParserDecl, tr ast.Transition) (string, error) {
	if tr.Select == nil {
		return tr.Next, nil
	}
	keys := make([]sym.BV, len(tr.Select))
	for i, e := range tr.Select {
		v, err := in.eval(e)
		if err != nil {
			return "", err
		}
		keys[i] = v
	}
	for _, cs := range tr.Cases {
		if len(cs.Keysets) == 1 && cs.Keysets[0].Kind == ast.KeysetDefault {
			return cs.Next, nil
		}
		match := true
		for ki, ks := range cs.Keysets {
			ok, err := in.keysetMatch(pd, ks, keys[ki])
			if err != nil {
				return "", err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			return cs.Next, nil
		}
	}
	return "reject", nil
}

func (in *Interp) keysetMatch(pd *ast.ParserDecl, ks ast.Keyset, key sym.BV) (bool, error) {
	switch ks.Kind {
	case ast.KeysetDefault:
		return true, nil
	case ast.KeysetValue:
		v, err := in.eval(ks.Value)
		if err != nil {
			return false, err
		}
		return key == v, nil
	case ast.KeysetMask:
		v, err := in.eval(ks.Value)
		if err != nil {
			return false, err
		}
		m, err := in.eval(ks.Mask)
		if err != nil {
			return false, err
		}
		return key.And(m) == v.And(m), nil
	case ast.KeysetValueSet:
		if in.cfg == nil {
			return false, nil
		}
		for _, mem := range in.cfg.ValueSet(pd.Name + "." + ks.Ref) {
			switch {
			case mem.Mask.W == 0 || mem.Mask.IsAllOnes():
				if key == mem.Value {
					return true, nil
				}
			case mem.Mask.IsZero():
				return true, nil
			default:
				if key.And(mem.Mask) == mem.Value.And(mem.Mask) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, fail("unknown keyset kind")
	}
}

// ---------------------------------------------------------------------------
// Statements

func (in *Interp) stmt(s ast.Stmt) error {
	if in.exited {
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		in.pushScope()
		for _, inner := range s.Stmts {
			if err := in.stmt(inner); err != nil {
				in.popScope()
				return err
			}
		}
		in.popScope()
		return nil
	case *ast.VarDecl:
		return in.declVar(s)
	case *ast.AssignStmt:
		v, err := in.eval(s.RHS)
		if err != nil {
			return err
		}
		path, err := in.lvalue(s.LHS)
		if err != nil {
			return err
		}
		if _, ok := in.store[path]; !ok {
			return fail("assignment to unknown location %s", path)
		}
		in.store[path] = v
		return nil
	case *ast.IfStmt:
		cond, err := in.evalCond(s.Cond)
		if err != nil {
			return err
		}
		if cond {
			return in.stmt(s.Then)
		}
		if s.Else != nil {
			return in.stmt(s.Else)
		}
		return nil
	case *ast.CallStmt:
		return in.call(s.Call)
	case *ast.ExitStmt:
		in.exited = true
		return nil
	default:
		return fail("unsupported statement %T", s)
	}
}

// evalCond handles the side-effecting `t.apply().hit` condition.
func (in *Interp) evalCond(e ast.Expr) (bool, error) {
	if m, ok := e.(*ast.Member); ok && m.Name == "hit" {
		if call, ok := m.X.(*ast.CallExpr); ok {
			if inner, ok := call.Fun.(*ast.Member); ok && inner.Name == "apply" {
				hit, err := in.applyTable(inner)
				return hit, err
			}
		}
	}
	v, err := in.eval(e)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

func (in *Interp) call(call *ast.CallExpr) error {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "mark_to_drop":
			path, err := in.lvalue(call.Args[0])
			if err != nil {
				return err
			}
			in.store[path+".drop"] = sym.NewBV(1, 1)
			return nil
		case "count":
			return nil
		default:
			act := in.control.Action(fun.Name)
			if act == nil {
				return fail("unknown function %s", fun.Name)
			}
			args := make([]sym.BV, len(call.Args))
			for i, a := range call.Args {
				v, err := in.eval(a)
				if err != nil {
					return err
				}
				args[i] = v
			}
			return in.runAction(act, args)
		}
	case *ast.Member:
		switch fun.Name {
		case "apply":
			_, err := in.applyTable(fun)
			return err
		case "setValid":
			path, err := in.lvalue(fun.X)
			if err != nil {
				return err
			}
			in.store[path+".$valid"] = sym.Bool(true)
			return nil
		case "setInvalid":
			path, err := in.lvalue(fun.X)
			if err != nil {
				return err
			}
			in.store[path+".$valid"] = sym.Bool(false)
			return nil
		case "extract":
			path, err := in.lvalue(call.Args[0])
			if err != nil {
				return err
			}
			ht := in.info.TypeOf(call.Args[0])
			h := in.prog.Header(ht.Name)
			if h == nil {
				return fail("extract of non-header %s", path)
			}
			for _, f := range h.Fields {
				ft := in.info.Resolve(f.Type)
				v, ok := in.readBits(uint16(ft.Width))
				if !ok {
					return &shortPacket{}
				}
				in.store[path+"."+f.Name] = v
			}
			in.store[path+".$valid"] = sym.Bool(true)
			return nil
		case "read":
			cells, err := in.registerCells(fun.X)
			if err != nil {
				return err
			}
			idx, err := in.eval(call.Args[1])
			if err != nil {
				return err
			}
			dst, err := in.lvalue(call.Args[0])
			if err != nil {
				return err
			}
			i := int(idx.Uint64()) % len(cells)
			in.store[dst] = cells[i]
			return nil
		case "write":
			cells, err := in.registerCells(fun.X)
			if err != nil {
				return err
			}
			idx, err := in.eval(call.Args[0])
			if err != nil {
				return err
			}
			v, err := in.eval(call.Args[1])
			if err != nil {
				return err
			}
			cells[int(idx.Uint64())%len(cells)] = v
			return nil
		default:
			return fail("unknown method %s", fun.Name)
		}
	default:
		return fail("invalid call")
	}
}

func (in *Interp) registerCells(e ast.Expr) ([]sym.BV, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, fail("register reference must be an identifier")
	}
	v, ok := in.lookup(id.Name)
	if !ok || len(v.slot) < 10 || v.slot[:10] != "$register:" {
		return nil, fail("%s is not a register", id.Name)
	}
	cells := in.registers[v.slot[10:]]
	if len(cells) == 0 {
		return nil, fail("register %s has no cells", id.Name)
	}
	return cells, nil
}

func (in *Interp) runAction(act *ast.Action, args []sym.BV) error {
	in.pushScope()
	defer in.popScope()
	for i, p := range act.Params {
		in.scopes[len(in.scopes)-1][p.Name] = value{bound: args[i], isVal: true}
	}
	return in.stmt(act.Body)
}

// ---------------------------------------------------------------------------
// Table application

// applyTable matches the table against the configuration and executes
// the selected (or default) action; it returns whether an entry hit.
func (in *Interp) applyTable(fun *ast.Member) (bool, error) {
	id, ok := fun.X.(*ast.Ident)
	if !ok {
		return false, fail("table apply target must be an identifier")
	}
	tbl := in.control.Table(id.Name)
	if tbl == nil {
		return false, fail("unknown table %s", id.Name)
	}
	qname := in.control.Name + "." + id.Name

	keys := make([]sym.BV, len(tbl.Keys))
	for i, k := range tbl.Keys {
		v, err := in.eval(k.Expr)
		if err != nil {
			return false, err
		}
		keys[i] = v
	}

	if in.cfg != nil {
		active, _ := in.cfg.ActiveEntries(qname)
		for _, e := range active {
			if entryMatches(e, keys) {
				if e.Action == "NoAction" {
					return true, nil
				}
				act := in.control.Action(e.Action)
				if act == nil {
					return false, fail("table %s entry references unknown action %s", qname, e.Action)
				}
				return true, in.runAction(act, e.Params)
			}
		}
	}
	// Miss: run the default action.
	name := "NoAction"
	var params []sym.BV
	if tbl.Default != nil {
		name = tbl.Default.Name
		for _, argE := range tbl.Default.Args {
			v, err := in.eval(argE)
			if err != nil {
				return false, err
			}
			params = append(params, v)
		}
	}
	if in.cfg != nil {
		if d, ok := in.cfg.Default(qname); ok {
			name, params = d.Name, d.Params
		}
	}
	if name == "NoAction" {
		return false, nil
	}
	act := in.control.Action(name)
	if act == nil {
		return false, fail("table %s default references unknown action %s", qname, name)
	}
	return false, in.runAction(act, params)
}

// entryMatches applies the entry's match key to concrete values.
func entryMatches(e *controlplane.TableEntry, keys []sym.BV) bool {
	if len(e.Matches) != len(keys) {
		return false
	}
	for i, m := range e.Matches {
		key := keys[i]
		switch m.Kind {
		case controlplane.MatchExact:
			if key != m.Value {
				return false
			}
		case controlplane.MatchTernary:
			if key.And(m.Mask) != m.Value.And(m.Mask) {
				return false
			}
		case controlplane.MatchLPM:
			if m.PrefixLen > 0 {
				mask := sym.AllOnes(key.W).Shl(uint(int(key.W) - m.PrefixLen))
				if key.And(mask) != m.Value.And(mask) {
					return false
				}
			}
		case controlplane.MatchOptional:
			if !m.Wildcard && key != m.Value {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Expressions

func (in *Interp) eval(e ast.Expr) (sym.BV, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		t := in.info.TypeOf(e)
		w := t.Width
		if w == 0 {
			w = e.Width
		}
		if w == 0 {
			return sym.BV{}, fail("literal with unknown width at %s", e.Pos())
		}
		return sym.NewBV2(uint16(w), e.Hi, e.Lo), nil
	case *ast.BoolLit:
		return sym.Bool(e.Value), nil
	case *ast.Ident:
		if v, ok := in.lookup(e.Name); ok {
			if v.isVal {
				return v.bound, nil
			}
			if sv, ok := in.store[v.slot]; ok {
				return sv, nil
			}
			return sym.BV{}, fail("%s has no value", e.Name)
		}
		if cv, ok := in.info.Consts[e.Name]; ok {
			return sym.NewBV2(uint16(cv.Width), cv.Hi, cv.Lo), nil
		}
		return sym.BV{}, fail("unknown identifier %s", e.Name)
	case *ast.Member:
		path, err := in.lvalue(e)
		if err != nil {
			return sym.BV{}, err
		}
		if v, ok := in.store[path]; ok {
			return v, nil
		}
		return sym.BV{}, fail("unknown field %s", path)
	case *ast.CallExpr:
		return in.evalCall(e)
	case *ast.UnaryExpr:
		x, err := in.eval(e.X)
		if err != nil {
			return sym.BV{}, err
		}
		switch e.Op {
		case "!", "~":
			return x.Not(), nil
		case "-":
			return sym.BV{W: x.W}.Sub(x), nil
		}
		return sym.BV{}, fail("unknown unary %s", e.Op)
	case *ast.BinaryExpr:
		x, err := in.eval(e.X)
		if err != nil {
			return sym.BV{}, err
		}
		// Short-circuit booleans.
		switch e.Op {
		case "&&":
			if x.IsZero() {
				return sym.Bool(false), nil
			}
			return in.eval(e.Y)
		case "||":
			if !x.IsZero() {
				return sym.Bool(true), nil
			}
			return in.eval(e.Y)
		}
		y, err := in.eval(e.Y)
		if err != nil {
			return sym.BV{}, err
		}
		switch e.Op {
		case "==":
			return sym.Bool(x == y), nil
		case "!=":
			return sym.Bool(x != y), nil
		case "<":
			return sym.Bool(x.Ult(y)), nil
		case "<=":
			return sym.Bool(!y.Ult(x)), nil
		case ">":
			return sym.Bool(y.Ult(x)), nil
		case ">=":
			return sym.Bool(!x.Ult(y)), nil
		case "&":
			return x.And(y), nil
		case "|":
			return x.Or(y), nil
		case "^":
			return x.Xor(y), nil
		case "+":
			return x.Add(y), nil
		case "-":
			return x.Sub(y), nil
		case "<<":
			if y.Hi != 0 || y.Lo >= uint64(x.W) {
				return sym.BV{W: x.W}, nil
			}
			return x.Shl(uint(y.Lo)), nil
		case ">>":
			if y.Hi != 0 || y.Lo >= uint64(x.W) {
				return sym.BV{W: x.W}, nil
			}
			return x.Lshr(uint(y.Lo)), nil
		case "++":
			return x.Concat(y), nil
		}
		return sym.BV{}, fail("unknown binary %s", e.Op)
	case *ast.TernaryExpr:
		c, err := in.eval(e.Cond)
		if err != nil {
			return sym.BV{}, err
		}
		if c.IsTrue() {
			return in.eval(e.Then)
		}
		return in.eval(e.Else)
	case *ast.SliceExpr:
		x, err := in.eval(e.X)
		if err != nil {
			return sym.BV{}, err
		}
		return x.Extract(uint16(e.Hi), uint16(e.Lo)), nil
	default:
		return sym.BV{}, fail("unsupported expression %T", e)
	}
}

func (in *Interp) evalCall(call *ast.CallExpr) (sym.BV, error) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "checksum16" {
			// Same function as the analyzer's model: XOR fold over
			// 16-bit chunks.
			acc := sym.BV{W: 16}
			for _, argE := range call.Args {
				v, err := in.eval(argE)
				if err != nil {
					return sym.BV{}, err
				}
				if v.W%16 != 0 {
					v = v.ZeroExtend(v.W + (16 - v.W%16))
				}
				for lo := uint16(0); lo < v.W; lo += 16 {
					acc = acc.Xor(v.Extract(lo+15, lo))
				}
			}
			return acc, nil
		}
		return sym.BV{}, fail("function %s cannot be used as a value", fun.Name)
	case *ast.Member:
		if fun.Name == "isValid" {
			path, err := in.lvalue(fun.X)
			if err != nil {
				return sym.BV{}, err
			}
			v, ok := in.store[path+".$valid"]
			if !ok {
				return sym.BV{}, fail("%s is not a header", path)
			}
			return v, nil
		}
		return sym.BV{}, fail("method %s cannot be used as a value", fun.Name)
	default:
		return sym.BV{}, fail("invalid call expression")
	}
}
