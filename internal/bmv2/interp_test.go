package bmv2

import (
	"bytes"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

const routerSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst; }
struct headers { ethernet_t eth; ipv4_t ipv4; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action fwd(bit<9> port) {
        std.egress_port = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std); }
    table route {
        key = { hdr.ipv4.dst: lpm; }
        actions = { fwd; drop; NoAction; }
        default_action = drop;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            route.apply();
        }
    }
}
`

func build(t *testing.T, src string) (*ast.Program, *typecheck.Info, *dataplane.Analysis) {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	an, err := dataplane.Analyze(prog, info, dataplane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, info, an
}

// ipv4Packet builds eth(dst,src,0x0800) + ipv4(ttl,proto,src,dst) bytes.
func ipv4Packet(ethDst uint64, ttl byte, dst uint32) []byte {
	var buf []byte
	for i := 5; i >= 0; i-- {
		buf = append(buf, byte(ethDst>>(8*i)))
	}
	buf = append(buf, 0, 0, 0, 0, 0, 0) // eth.src
	buf = append(buf, 0x08, 0x00)       // type
	buf = append(buf, ttl, 6)           // ttl, proto
	buf = append(buf, 1, 2, 3, 4)       // ipv4.src
	buf = append(buf, byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst))
	return buf
}

func TestInterpRouting(t *testing.T) {
	prog, info, an := build(t, routerSrc)
	cfg := controlplane.NewConfig(an)
	err := cfg.Apply(&controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ingress.route",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind: controlplane.MatchLPM, Value: sym.NewBV(32, 0x0a000000), PrefixLen: 8,
			}},
			Action: "fwd", Params: []sym.BV{sym.NewBV(9, 7)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, info, cfg)

	// 10.x.x.x routes to port 7 with decremented TTL.
	res, err := in.Run(Packet{Data: ipv4Packet(0xAABBCCDDEEFF, 64, 0x0a010203)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.EgressPort != 7 {
		t.Fatalf("res = %+v", res)
	}
	// Emitted packet: ttl must be 63 at offset 14.
	if res.Emitted[14] != 63 {
		t.Fatalf("ttl byte = %d, want 63", res.Emitted[14])
	}

	// 11.x.x.x misses: default drop.
	res, err = in.Run(Packet{Data: ipv4Packet(0xAABBCCDDEEFF, 64, 0x0b010203)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Fatalf("miss should drop: %+v", res)
	}

	// Non-IPv4 packets skip the table (valid check) — not dropped.
	pkt := ipv4Packet(1, 64, 0x0a000001)
	pkt[12], pkt[13] = 0x86, 0xDD // not 0x0800
	res, err = in.Run(Packet{Data: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.EgressPort != 0 {
		t.Fatalf("non-ipv4: %+v", res)
	}
}

func TestInterpDeparsePayloadPassthrough(t *testing.T) {
	prog, info, an := build(t, routerSrc)
	cfg := controlplane.NewConfig(an)
	// Override the default so misses are not dropped.
	if err := cfg.Apply(&controlplane.Update{
		Kind: controlplane.SetDefault, Table: "Ingress.route",
		Default: controlplane.ActionCall{Name: "NoAction"},
	}); err != nil {
		t.Fatal(err)
	}
	in := New(prog, info, cfg)
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	pkt := append(ipv4Packet(5, 9, 0x01020304), payload...)
	res, err := in.Run(Packet{Data: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped {
		t.Fatalf("unexpected drop")
	}
	if !bytes.Equal(res.Emitted, pkt) {
		t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", pkt, res.Emitted)
	}
}

func TestInterpShortPacketRejected(t *testing.T) {
	prog, info, _ := build(t, routerSrc)
	in := New(prog, info, nil)
	res, err := in.Run(Packet{Data: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped || !res.ParserRejected {
		t.Fatalf("short packet should be rejected: %+v", res)
	}
}

func TestInterpRegistersAndExit(t *testing.T) {
	src := `
struct metadata { bit<32> v; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(4) counts;
    apply {
        counts.read(meta.v, 1);
        meta.v = meta.v + 32w10;
        counts.write(1, meta.v);
        if (meta.v == 32w20) {
            exit;
        }
        std.egress_port = 9w3;
    }
}
`
	prog, info, an := build(t, src)
	cfg := controlplane.NewConfig(an)
	in := New(prog, info, cfg)
	// First packet: register starts at 0 → v=10 → egress set.
	res, err := in.Run(Packet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 3 {
		t.Fatalf("first: %+v", res)
	}
	// Second packet: register now 10 → v=20 → exit before egress set.
	res, err = in.Run(Packet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 0 {
		t.Fatalf("second should exit early: %+v", res)
	}
	// Reset clears register state.
	in.Reset()
	res, err = in.Run(Packet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 3 {
		t.Fatalf("after reset: %+v", res)
	}
}

func TestInterpTernaryPriority(t *testing.T) {
	prog, info, an := build(t, routerSrc)
	cfg := controlplane.NewConfig(an)
	// Two overlapping LPM prefixes: /16 must beat /8.
	for _, e := range []struct {
		plen int
		port uint64
	}{{8, 1}, {16, 2}} {
		if err := cfg.Apply(&controlplane.Update{
			Kind: controlplane.InsertEntry, Table: "Ingress.route",
			Entry: &controlplane.TableEntry{
				Matches: []controlplane.FieldMatch{{
					Kind: controlplane.MatchLPM, Value: sym.NewBV(32, 0x0a0a0000), PrefixLen: e.plen,
				}},
				Action: "fwd", Params: []sym.BV{sym.NewBV(9, e.port)},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	in := New(prog, info, cfg)
	res, err := in.Run(Packet{Data: ipv4Packet(1, 64, 0x0a0a0101)})
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 2 {
		t.Fatalf("longest prefix should win: %+v", res)
	}
	res, err = in.Run(Packet{Data: ipv4Packet(1, 64, 0x0a0b0101)})
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 1 {
		t.Fatalf("/8 should match 10.11.x: %+v", res)
	}
}
