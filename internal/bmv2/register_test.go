package bmv2

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

const writtenRegSrc = `
struct metadata { bit<32> v; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(4) mode;
    apply {
        mode.read(meta.v, 0);
        if (meta.v == 32w0) {
            std.egress_port = 9w5;
        }
        mode.write(0, meta.v + 32w1);
    }
}
`

// TestWrittenRegisterFillNotFolded guards the register-soundness rule:
// a register the data plane writes must not have its reads specialized
// to the fill constant — the second packet would observe the write.
func TestWrittenRegisterFillNotFolded(t *testing.T) {
	s, err := core.NewFromSource("wreg", writtenRegSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Apply(&controlplane.Update{
		Kind: controlplane.FillRegister, Register: "C.mode", Fill: sym.NewBV(32, 0),
	})
	if d.Kind == core.Rejected {
		t.Fatal(d.Err)
	}
	// The branch must stay live: with the fill folded (unsound), the
	// condition would be constant-true and the if would be rewritten.
	printed := ast.Print(s.SpecializedProgram())
	if !strings.Contains(printed, "if (meta.v == 32w0x0)") {
		t.Fatalf("written register read must stay unconstrained:\n%s", printed)
	}

	// And differentially: the specialized program behaves identically
	// across a packet sequence during which the register value evolves.
	spec := s.SpecializedProgram()
	specInfo, err := typecheck.Check(spec)
	if err != nil {
		t.Fatalf("specialized program fails typecheck: %v", err)
	}
	orig := New(s.Prog, s.Info, s.Cfg)
	specialized := New(spec, specInfo, s.Cfg)
	for i := 0; i < 5; i++ {
		r1, err1 := orig.Run(Packet{})
		r2, err2 := specialized.Run(Packet{})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !r1.Equal(r2) {
			t.Fatalf("packet %d diverged: %+v vs %+v", i, r1, r2)
		}
		if i == 0 && r1.EgressPort != 5 {
			t.Fatalf("first packet should see the zero fill: %+v", r1)
		}
		if i == 1 && r1.EgressPort == 5 {
			t.Fatalf("second packet must see the write: %+v", r1)
		}
	}
}

// TestReadOnlyRegisterFillFolds: the positive case — a read-only
// register's fill does specialize, and stays differentially sound.
func TestReadOnlyRegisterFillFolds(t *testing.T) {
	src := `
struct metadata { bit<32> v; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(4) mode;
    apply {
        mode.read(meta.v, 0);
        if (meta.v == 32w1) {
            std.egress_port = 9w5;
        }
    }
}
`
	s, err := core.NewFromSource("roreg", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(&controlplane.Update{
		Kind: controlplane.FillRegister, Register: "C.mode", Fill: sym.NewBV(32, 1),
	})
	printed := ast.Print(s.SpecializedProgram())
	if strings.Contains(printed, "if (") {
		t.Fatalf("read-only fill should resolve the branch:\n%s", printed)
	}
	if !strings.Contains(printed, "std.egress_port = 9w0x5;") {
		t.Fatalf("always-true branch body should remain:\n%s", printed)
	}
	r := rand.New(rand.NewSource(5))
	comparePrograms(t, r, s, 10, func() Packet { return Packet{} })
}
