package bmv2

import (
	"math/rand"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// TestDifferentialSoundness is the central soundness property of the
// whole system: for random control-plane configurations and random
// packets, the specialized program is observationally equivalent to the
// original program. This is the guarantee that lets Flay install the
// specialized implementation on the device.
func TestDifferentialSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for round := 0; round < 25; round++ {
		s, err := core.NewFromSource("diff", routerSrc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Random config: up to 8 LPM entries, sometimes a default
		// override.
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			action := "fwd"
			params := []sym.BV{sym.NewBV(9, uint64(r.Intn(512)))}
			if r.Intn(4) == 0 {
				action, params = "drop", nil
			}
			up := &controlplane.Update{
				Kind: controlplane.InsertEntry, Table: "Ingress.route",
				Entry: &controlplane.TableEntry{
					Matches: []controlplane.FieldMatch{{
						Kind:      controlplane.MatchLPM,
						Value:     sym.NewBV(32, uint64(r.Uint32())),
						PrefixLen: r.Intn(33),
					}},
					Action: action, Params: params,
				},
			}
			s.Apply(up) // duplicates may be rejected; fine
		}
		if r.Intn(3) == 0 {
			s.Apply(&controlplane.Update{
				Kind: controlplane.SetDefault, Table: "Ingress.route",
				Default: controlplane.ActionCall{Name: "NoAction"},
			})
		}
		comparePrograms(t, r, s, 40, func() Packet {
			dst := uint32(r.Uint32())
			ttl := byte(r.Intn(256))
			data := ipv4Packet(uint64(r.Int63())&0xFFFFFFFFFFFF, ttl, dst)
			if r.Intn(4) == 0 {
				data[12], data[13] = byte(r.Intn(256)), byte(r.Intn(256)) // random ethertype
			}
			if r.Intn(5) == 0 {
				data = data[:r.Intn(len(data))] // truncated packet
			}
			if r.Intn(3) == 0 {
				data = append(data, make([]byte, r.Intn(16))...) // payload
			}
			return Packet{Data: data, IngressPort: uint16(r.Intn(512))}
		})
	}
}

// comparePrograms runs original vs specialized on generated packets.
func comparePrograms(t *testing.T, r *rand.Rand, s *core.Specializer, packets int, gen func() Packet) {
	t.Helper()
	spec := s.SpecializedProgram()
	specInfo, err := typecheck.Check(spec)
	if err != nil {
		t.Fatalf("specialized program fails typecheck: %v\n%s", err, ast.Print(spec))
	}
	orig := New(s.Prog, s.Info, s.Cfg)
	specialized := New(spec, specInfo, s.Cfg)
	for i := 0; i < packets; i++ {
		pkt := gen()
		r1, err1 := orig.Run(pkt)
		r2, err2 := specialized.Run(pkt)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence: %v vs %v\nspecialized:\n%s", err1, err2, ast.Print(spec))
		}
		if err1 != nil {
			continue
		}
		if !r1.Equal(r2) {
			t.Fatalf("packet %x:\noriginal:    %+v\nspecialized: %+v\nprogram:\n%s",
				pkt.Data, r1, r2, ast.Print(spec))
		}
	}
}

// fig3DiffSrc is the Fig. 3 program, for differential checks across the
// whole update evolution.
const fig3DiffSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set(bit<16> type) { hdr.eth.type = type; }
    action drop() { mark_to_drop(std); }
    action noop() { }
    table eth_table {
        key = { hdr.eth.dst: ternary; }
        actions = { set; drop; noop; }
        default_action = noop;
    }
    apply {
        eth_table.apply();
        std.egress_port = 9w1;
    }
}
`

// TestDifferentialFig3Evolution checks observational equivalence after
// every step of the Fig. 3 sequence.
func TestDifferentialFig3Evolution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s, err := core.NewFromSource("fig3", fig3DiffSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entry := func(key, mask uint64, action string, params ...sym.BV) *controlplane.TableEntry {
		return &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind: controlplane.MatchTernary, Value: sym.NewBV(48, key), Mask: sym.NewBV(48, mask),
			}},
			Action: action, Params: params,
		}
	}
	gen := func() Packet {
		var data []byte
		// Half the packets target the configured keys.
		dst := uint64(r.Int63()) & 0xFFFFFFFFFFFF
		if r.Intn(2) == 0 {
			dst = uint64([]int{0x1, 0x2, 0x5, 0x6, 0x7, 0xD}[r.Intn(6)])
		}
		for i := 5; i >= 0; i-- {
			data = append(data, byte(dst>>(8*i)))
		}
		data = append(data, 1, 2, 3, 4, 5, 6, 0x08, 0x00)
		return Packet{Data: data}
	}
	steps := []*controlplane.Update{
		nil, // initial empty config
		{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: entry(0x1, 0x0, "set", sym.NewBV(16, 0x800))},
		{Kind: controlplane.DeleteEntry, Table: "Ingress.eth_table", Entry: entry(0x1, 0x0, "set", sym.NewBV(16, 0x800))},
		{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: entry(0x2, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 0x900))},
		{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: entry(0x5, 0x8, "set", sym.NewBV(16, 0x700))},
		{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: entry(0x6, 0x7, "set", sym.NewBV(16, 0x200))},
		{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: entry(0xD, 0xFFFFFFFFFFFF, "drop")},
	}
	for si, up := range steps {
		if up != nil {
			if d := s.Apply(up); d.Kind == core.Rejected {
				t.Fatalf("step %d rejected: %v", si, d.Err)
			}
		}
		comparePrograms(t, r, s, 60, gen)
	}
}

// TestDifferentialParserPruning: pruned parser tails and select cases
// must not change emitted packets.
func TestDifferentialParserPruning(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header vlan_t { bit<16> tci; bit<16> next; }
header trailer_t { bit<32> crc; }
struct headers { ethernet_t eth; vlan_t vlan; trailer_t trailer; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(4) vlan_types;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            vlan_types: parse_vlan;
            default: parse_trailer;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition parse_trailer;
    }
    state parse_trailer {
        pkt.extract(hdr.trailer);
        transition accept;
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (hdr.vlan.isValid()) {
            std.egress_port = hdr.vlan.tci[8:0];
        } else {
            std.egress_port = 9w1;
        }
    }
}
`
	r := rand.New(rand.NewSource(17))
	s, err := core.NewFromSource("prune", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() Packet {
		data := make([]byte, 14+4+4+r.Intn(8))
		r.Read(data)
		if r.Intn(2) == 0 {
			data[12], data[13] = 0x81, 0x00
		}
		return Packet{Data: data}
	}
	// Unconfigured VLAN value set: the vlan path is pruned and the
	// trailer (never used) extract dropped.
	comparePrograms(t, r, s, 80, gen)

	// Configure the VLAN set and compare again.
	d := s.Apply(&controlplane.Update{
		Kind: controlplane.SetValueSet, ValueSet: "P.vlan_types",
		Members: []controlplane.ValueSetMember{{Value: sym.NewBV(16, 0x8100)}},
	})
	if d.Kind == core.Rejected {
		t.Fatal(d.Err)
	}
	comparePrograms(t, r, s, 80, gen)
}
