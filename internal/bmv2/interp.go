// Package bmv2 is a concrete reference interpreter for goflay's P4
// subset, in the role BMv2 plays for P4C: it parses packet bytes through
// the parser FSM, matches tables against the actual control-plane
// configuration (exact/lpm/ternary with priorities), executes actions,
// and deparses valid headers followed by the unparsed payload.
//
// Its purpose is differential testing: a specialized program must
// produce the same observable result as the original program under the
// configuration it was specialized for.
package bmv2

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// Packet is the input to one pipeline pass.
type Packet struct {
	Data        []byte
	IngressPort uint16
}

// Result is the observable outcome of one pipeline pass.
type Result struct {
	// Dropped is true when the packet was marked to drop or the parser
	// rejected it.
	Dropped bool
	// ParserRejected distinguishes parser rejects from explicit drops.
	ParserRejected bool
	EgressPort     uint64
	McastGrp       uint64
	// Emitted is the deparsed output: every valid header's fields (in
	// headers-struct order) followed by the unparsed payload. Nil when
	// dropped.
	Emitted []byte
}

// Equal reports whether two results are observably identical.
func (r Result) Equal(o Result) bool {
	if r.Dropped != o.Dropped {
		return false
	}
	if r.Dropped {
		return true
	}
	if r.EgressPort != o.EgressPort || r.McastGrp != o.McastGrp {
		return false
	}
	if len(r.Emitted) != len(o.Emitted) {
		return false
	}
	for i := range r.Emitted {
		if r.Emitted[i] != o.Emitted[i] {
			return false
		}
	}
	return true
}

// Interp interprets one program under one configuration. Register state
// persists across Run calls (like a real switch); use Reset to clear it.
type Interp struct {
	prog *ast.Program
	info *typecheck.Info
	cfg  *controlplane.Config

	registers map[string][]sym.BV

	// Per-run state.
	store   map[string]sym.BV
	scopes  []map[string]value
	cursor  int // parse cursor in bits
	data    []byte
	exited  bool
	control *ast.ControlDecl
}

// value resolves an identifier: a store slot or a bound parameter value.
type value struct {
	slot  string
	bound sym.BV
	isVal bool
}

// New builds an interpreter. cfg may be nil for the empty configuration.
// The cfg's table names are qualified ("Control.table") and must match
// the tables present in prog; entries for tables the (specialized)
// program no longer contains are ignored.
func New(prog *ast.Program, info *typecheck.Info, cfg *controlplane.Config) *Interp {
	in := &Interp{prog: prog, info: info, cfg: cfg}
	in.Reset()
	return in
}

// Reset clears register state (applying configured fills).
func (in *Interp) Reset() {
	in.registers = make(map[string][]sym.BV)
	for _, cd := range in.prog.Controls {
		for _, r := range cd.Registers {
			q := cd.Name + "." + r.Name
			t := in.info.Resolve(r.Elem)
			cells := make([]sym.BV, r.Size)
			fill := sym.BV{W: uint16(t.Width)}
			if in.cfg != nil {
				if f, ok := in.cfg.RegisterFill(q); ok {
					fill = f
				}
			}
			for i := range cells {
				cells[i] = fill
			}
			in.registers[q] = cells
		}
	}
}

type runErr struct{ msg string }

func (e *runErr) Error() string { return "bmv2: " + e.msg }

func fail(format string, args ...any) error {
	return &runErr{msg: fmt.Sprintf(format, args...)}
}

// Run processes one packet through the parser and every control.
func (in *Interp) Run(pkt Packet) (Result, error) {
	in.store = make(map[string]sym.BV, 64)
	in.scopes = []map[string]value{make(map[string]value)}
	in.exited = false
	in.data = pkt.Data
	in.cursor = 0

	// Seed parameters (same sharing-by-name convention as the
	// analyzer).
	seeded := map[string]bool{}
	seed := func(params []ast.Param) error {
		for _, p := range params {
			t := in.info.Resolve(p.Type)
			if t.Kind == typecheck.KPacket {
				in.scopes[0][p.Name] = value{slot: "$packet"}
				continue
			}
			if seeded[p.Name] {
				continue
			}
			seeded[p.Name] = true
			in.scopes[0][p.Name] = value{slot: p.Name}
			if err := in.seedRoot(p.Name, t); err != nil {
				return err
			}
		}
		return nil
	}
	for _, pd := range in.prog.Parsers {
		if err := seed(pd.Params); err != nil {
			return Result{}, err
		}
	}
	for _, cd := range in.prog.Controls {
		if err := seed(cd.Params); err != nil {
			return Result{}, err
		}
	}
	// Environment inputs land in whichever parameter carries the
	// standard metadata.
	for name := range seeded {
		if _, ok := in.store[name+".ingress_port"]; ok {
			in.store[name+".ingress_port"] = sym.NewBV(9, uint64(pkt.IngressPort)%512)
		}
		if _, ok := in.store[name+".packet_length"]; ok {
			in.store[name+".packet_length"] = sym.NewBV(32, uint64(len(pkt.Data)))
		}
	}

	// Parser.
	if len(in.prog.Parsers) == 1 {
		ok, err := in.runParser(in.prog.Parsers[0])
		if err != nil {
			return Result{}, err
		}
		if !ok {
			return Result{Dropped: true, ParserRejected: true}, nil
		}
	}

	// Controls.
	for _, cd := range in.prog.Controls {
		in.control = cd
		in.exited = false
		in.pushScope()
		for _, v := range cd.Locals {
			if err := in.declVar(v); err != nil {
				return Result{}, err
			}
		}
		for _, r := range cd.Registers {
			in.scopes[len(in.scopes)-1][r.Name] = value{slot: "$register:" + cd.Name + "." + r.Name}
		}
		if err := in.stmt(cd.Apply); err != nil {
			return Result{}, err
		}
		in.popScope()
	}

	res := Result{}
	std := in.stdRoot()
	if v, ok := in.store[std+".drop"]; ok && !v.IsZero() {
		res.Dropped = true
		return res, nil
	}
	if v, ok := in.store[std+".egress_port"]; ok {
		res.EgressPort = v.Uint64()
	}
	if v, ok := in.store[std+".mcast_grp"]; ok {
		res.McastGrp = v.Uint64()
	}
	res.Emitted = in.deparse()
	return res, nil
}

// stdRoot returns the name of the standard-metadata parameter ("std" by
// convention, but resolved by type).
func (in *Interp) stdRoot() string {
	check := func(params []ast.Param) string {
		for _, p := range params {
			t := in.info.Resolve(p.Type)
			if t.Kind == typecheck.KStruct && t.Name == "standard_metadata_t" {
				return p.Name
			}
		}
		return ""
	}
	for _, pd := range in.prog.Parsers {
		if n := check(pd.Params); n != "" {
			return n
		}
	}
	for _, cd := range in.prog.Controls {
		if n := check(cd.Params); n != "" {
			return n
		}
	}
	return "std"
}

// seedRoot initialises the store for one pipeline parameter.
func (in *Interp) seedRoot(path string, t typecheck.T) error {
	switch t.Kind {
	case typecheck.KHeader:
		h := in.prog.Header(t.Name)
		in.store[path+".$valid"] = sym.Bool(false)
		for _, f := range h.Fields {
			ft := in.info.Resolve(f.Type)
			in.store[path+"."+f.Name] = sym.BV{W: uint16(ft.Width)}
		}
		return nil
	case typecheck.KStruct:
		s := in.prog.Struct(t.Name)
		for _, f := range s.Fields {
			ft := in.info.Resolve(f.Type)
			fp := path + "." + f.Name
			switch ft.Kind {
			case typecheck.KBits:
				in.store[fp] = sym.BV{W: uint16(ft.Width)}
			case typecheck.KBool:
				in.store[fp] = sym.Bool(false)
			case typecheck.KHeader, typecheck.KStruct:
				if err := in.seedRoot(fp, ft); err != nil {
					return err
				}
			default:
				return fail("unsupported field type at %s", fp)
			}
		}
		return nil
	case typecheck.KBits:
		in.store[path] = sym.BV{W: uint16(t.Width)}
		return nil
	case typecheck.KBool:
		in.store[path] = sym.Bool(false)
		return nil
	default:
		return fail("unsupported parameter type %s", t)
	}
}

// deparse emits every valid header (fields MSB-first in declaration
// order) in headers-struct field order, then the unparsed payload.
func (in *Interp) deparse() []byte {
	var w bitWriter
	emitted := map[string]bool{}
	var emitRoot func(path string, t typecheck.T)
	emitRoot = func(path string, t typecheck.T) {
		switch t.Kind {
		case typecheck.KHeader:
			if emitted[path] {
				return
			}
			emitted[path] = true
			if v, ok := in.store[path+".$valid"]; !ok || v.IsZero() {
				return
			}
			h := in.prog.Header(t.Name)
			for _, f := range h.Fields {
				ft := in.info.Resolve(f.Type)
				w.write(in.store[path+"."+f.Name], uint(ft.Width))
			}
		case typecheck.KStruct:
			if t.Name == "standard_metadata_t" {
				return
			}
			s := in.prog.Struct(t.Name)
			for _, f := range s.Fields {
				ft := in.info.Resolve(f.Type)
				if ft.Kind == typecheck.KHeader || ft.Kind == typecheck.KStruct {
					emitRoot(path+"."+f.Name, ft)
				}
			}
		}
	}
	// Roots in parser-then-control parameter order, first occurrence of
	// each name.
	seen := map[string]bool{}
	var roots []ast.Param
	for _, pd := range in.prog.Parsers {
		roots = append(roots, pd.Params...)
	}
	for _, cd := range in.prog.Controls {
		roots = append(roots, cd.Params...)
	}
	for _, p := range roots {
		if seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		emitRoot(p.Name, in.info.Resolve(p.Type))
	}
	out := w.bytes()
	// Payload: whatever the parser did not consume (bit-aligned to the
	// byte boundary).
	if in.cursor%8 == 0 && in.cursor/8 <= len(in.data) {
		out = append(out, in.data[in.cursor/8:]...)
	}
	return out
}

// bitWriter packs MSB-first bit strings into bytes.
type bitWriter struct {
	buf  []byte
	nbit uint
}

func (w *bitWriter) write(v sym.BV, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		bit := byte(0)
		if v.Bit(uint16(i)) {
			bit = 1
		}
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		w.buf[len(w.buf)-1] |= bit << (7 - w.nbit%8)
		w.nbit++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

// readBits consumes width bits from the packet, MSB-first.
func (in *Interp) readBits(width uint16) (sym.BV, bool) {
	if in.cursor+int(width) > len(in.data)*8 {
		return sym.BV{}, false
	}
	v := sym.BV{W: width}
	for i := 0; i < int(width); i++ {
		byteIdx := (in.cursor + i) / 8
		bitIdx := 7 - uint((in.cursor+i)%8)
		if in.data[byteIdx]>>bitIdx&1 == 1 {
			shift := uint(int(width) - 1 - i)
			one := sym.NewBV(width, 1).Shl(shift)
			v = v.Or(one)
		}
	}
	in.cursor += int(width)
	return v, true
}
