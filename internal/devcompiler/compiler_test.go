package devcompiler_test

import (
	"testing"

	"repro/internal/devcompiler"
	"repro/internal/p4/parser"
	"repro/internal/progs"
)

// TestTable1Ordering checks the shape criterion for the paper's
// Table 1: switch ≫ scion ≫ ACCTurbo ≥ DTA ≥ Beaucoup, and the
// BMv2-target programs compile in the couple-of-seconds class.
func TestTable1Ordering(t *testing.T) {
	model := map[string]float64{}
	for _, p := range progs.Catalog() {
		prog, err := parser.Parse(p.Name, p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, err := devcompiler.New(p.Target).Compile(prog)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		model[p.Name] = res.ModelSeconds
	}
	order := []string{"switch", "scion", "accturbo", "dta", "beaucoup"}
	for i := 1; i < len(order); i++ {
		if model[order[i-1]] <= model[order[i]] {
			t.Errorf("compile-time ordering violated: %s (%.1fs) should exceed %s (%.1fs)",
				order[i-1], model[order[i-1]], order[i], model[order[i]])
		}
	}
	for _, name := range []string{"middleblock", "dash"} {
		if model[name] > 5 {
			t.Errorf("%s modelled at %.1fs; BMv2 compiles are seconds-class", name, model[name])
		}
	}
	// Within 25% (or 1 s absolute, for the seconds-class programs whose
	// paper numbers are rounded to whole seconds) of Table 1/2.
	for _, p := range progs.Catalog() {
		if p.PaperCompileSeconds == 0 {
			continue
		}
		got := model[p.Name]
		slack := p.PaperCompileSeconds * 0.25
		if slack < 1 {
			slack = 1
		}
		if got < p.PaperCompileSeconds-slack || got > p.PaperCompileSeconds+slack {
			t.Errorf("%s: modelled %.1fs, paper %.0fs (outside tolerance)", p.Name, got, p.PaperCompileSeconds)
		}
	}
}

// TestSpecializedCompileIsCheaper: the specialized SCION program must
// model-compile faster than the full program (fewer tables and stages).
func TestSpecializedCompileIsCheaper(t *testing.T) {
	p := progs.Scion()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	comp := devcompiler.New(devcompiler.TargetTofino)
	full, err := comp.Compile(s.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	spec, err := comp.Compile(s.SpecializedProgram())
	if err != nil {
		t.Fatal(err)
	}
	if spec.ModelSeconds >= full.ModelSeconds {
		t.Fatalf("specialized compile (%.1fs) should be cheaper than full (%.1fs)",
			spec.ModelSeconds, full.ModelSeconds)
	}
	if spec.Tables >= full.Tables {
		t.Fatalf("specialized tables %d should be fewer than %d", spec.Tables, full.Tables)
	}
}

func TestTargetString(t *testing.T) {
	if devcompiler.TargetTofino.String() != "tofino" || devcompiler.TargetBMv2.String() != "bmv2" {
		t.Fatal("target names wrong")
	}
}
