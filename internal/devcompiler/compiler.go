// Package devcompiler is the device-specific compiler sitting below the
// incremental specializer (paper Fig. 2: "Recompile" hands the
// specialized program to the device compiler). It lowers a program onto
// a target, reporting resource usage and a modelled from-scratch
// compile time.
//
// Absolute compile seconds are a calibrated cost model, not a measured
// Tofino toolchain run (we have no bf-p4c); the model's drivers —
// statement count, logical tables, allocated stages and TCAM pressure —
// are computed from the real allocation, so *relative* compile costs
// track the paper's Table 1 ordering. Wall time of this package's own
// work is reported separately.
package devcompiler

import (
	"fmt"
	"time"

	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/rmt"
)

// Target selects the backend.
type Target uint8

const (
	// TargetTofino lowers onto the RMT pipeline model (slow, whole
	// program, stage allocation).
	TargetTofino Target = iota
	// TargetBMv2 targets the software switch (no stage fitting; fast).
	TargetBMv2
)

func (t Target) String() string {
	if t == TargetBMv2 {
		return "bmv2"
	}
	return "tofino"
}

// Result is the outcome of a from-scratch compile.
type Result struct {
	Program    string
	Target     Target
	Statements int
	Tables     int
	// Allocation is set for TargetTofino.
	Allocation *rmt.Allocation
	// ModelSeconds is the modelled from-scratch compile time (Tbl. 1).
	ModelSeconds float64
	// Elapsed is this package's real lowering time.
	Elapsed time.Duration
}

func (r *Result) String() string {
	if r.Allocation != nil {
		return fmt.Sprintf("%s [%s]: %d stmts, %d tables, %s, model %.0fs",
			r.Program, r.Target, r.Statements, r.Tables, r.Allocation, r.ModelSeconds)
	}
	return fmt.Sprintf("%s [%s]: %d stmts, %d tables, model %.0fs",
		r.Program, r.Target, r.Statements, r.Tables, r.ModelSeconds)
}

// Compiler compiles programs for one target device.
type Compiler struct {
	Target Target
	Device rmt.Device
}

// New returns a compiler for the target, with the Tofino-2 device
// profile for TargetTofino.
func New(target Target) *Compiler {
	return &Compiler{Target: target, Device: rmt.Tofino2()}
}

// Compile lowers prog from scratch: re-typechecks, derives table
// requirements and (for Tofino) allocates stages.
func (c *Compiler) Compile(prog *ast.Program) (*Result, error) {
	t0 := time.Now()
	info, err := typecheck.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("devcompiler: %w", err)
	}
	reqs, phv, err := rmt.Requirements(prog, info)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Program:    prog.Name,
		Target:     c.Target,
		Statements: ast.CountStatements(prog),
		Tables:     len(reqs),
	}
	switch c.Target {
	case TargetTofino:
		al, err := rmt.Allocate(c.Device, reqs, phv)
		if err != nil {
			return nil, err
		}
		res.Allocation = al
		// Cost model calibrated against the paper's Tbl. 1: bf-p4c
		// spends its time in per-stage fitting and table placement, so
		// cost scales with tables × stages (placement search) plus
		// statement-proportional frontend work and TCAM compilation.
		res.ModelSeconds = 2.0 +
			0.005*float64(res.Statements) +
			0.058*float64(res.Tables*al.StagesUsed) +
			0.100*float64(al.TCAMBlocks)
	case TargetBMv2:
		// Software-switch compiles skip physical fitting entirely.
		res.ModelSeconds = 0.3 + 0.0045*float64(res.Statements)
	default:
		return nil, fmt.Errorf("devcompiler: unknown target %d", c.Target)
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}
