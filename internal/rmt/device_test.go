package rmt

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
)

func TestTableReqResources(t *testing.T) {
	exact := TableReq{
		Name:    "t",
		Keys:    []KeyReq{{Width: 48, Match: ast.MatchExact}},
		Entries: 1024,
		Actions: 2,
	}
	if exact.needsTCAM() {
		t.Fatal("exact table should not need TCAM")
	}
	if got := exact.tcamBlocks(); got != 0 {
		t.Fatalf("tcam = %d", got)
	}
	// 48+16=64 bits → 1 wide; 1024 entries → 1 deep.
	if got := exact.sramBlocks(); got != 1 {
		t.Fatalf("sram = %d, want 1", got)
	}

	tern := TableReq{
		Name:    "acl",
		Keys:    []KeyReq{{Width: 32, Match: ast.MatchTernary}, {Width: 32, Match: ast.MatchLPM}},
		Entries: 1024,
	}
	if !tern.needsTCAM() {
		t.Fatal("ternary table needs TCAM")
	}
	// 64 bits → 2 wide (44b blocks); 1024 entries → 2 deep = 4 blocks.
	if got := tern.tcamBlocks(); got != 4 {
		t.Fatalf("tcam = %d, want 4", got)
	}

	withData := exact
	withData.ActionDataBits = 9
	if got := withData.sramBlocks(); got != 2 {
		t.Fatalf("sram with action data = %d, want 2", got)
	}

	zero := TableReq{Name: "z"}
	if zero.entries() != DefaultTableSize {
		t.Fatal("default size not applied")
	}
}

func TestAllocateRespectsDependencies(t *testing.T) {
	dev := Tofino2()
	tables := []TableReq{
		{Name: "a", Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}}, Entries: 16, Actions: 1},
		{Name: "b", Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}}, Entries: 16, Actions: 1, Deps: []string{"a"}},
		{Name: "c", Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}}, Entries: 16, Actions: 1, Deps: []string{"b"}},
		{Name: "d", Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}}, Entries: 16, Actions: 1}, // independent
	}
	al, err := Allocate(dev, tables, 100)
	if err != nil {
		t.Fatal(err)
	}
	if al.StagesUsed != 3 {
		t.Fatalf("stages = %d, want 3 (chain a→b→c)", al.StagesUsed)
	}
	if al.TableStage["d"] != 0 {
		t.Fatalf("independent table should pack into stage 0, got %d", al.TableStage["d"])
	}
	if !al.Feasible {
		t.Fatal("should be feasible")
	}
}

func TestAllocateStagePressure(t *testing.T) {
	dev := Tofino2()
	// More independent tables than TablesPerStage forces a second stage.
	var tables []TableReq
	for i := 0; i < dev.TablesPerStage+1; i++ {
		tables = append(tables, TableReq{
			Name: string(rune('a' + i)), Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}},
			Entries: 16, Actions: 1,
		})
	}
	al, err := Allocate(dev, tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	if al.StagesUsed != 2 {
		t.Fatalf("stages = %d, want 2", al.StagesUsed)
	}
}

func TestAllocateInfeasible(t *testing.T) {
	dev := Tofino2()
	var tables []TableReq
	prev := ""
	for i := 0; i < dev.Stages+3; i++ {
		name := string(rune('A' + i))
		req := TableReq{Name: name, Keys: []KeyReq{{Width: 8, Match: ast.MatchExact}}, Entries: 16, Actions: 1}
		if prev != "" {
			req.Deps = []string{prev}
		}
		tables = append(tables, req)
		prev = name
	}
	al, err := Allocate(dev, tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	if al.Feasible {
		t.Fatal("a chain longer than the pipeline must be infeasible")
	}
	if al.StagesUsed != dev.Stages+3 {
		t.Fatalf("stages = %d", al.StagesUsed)
	}

	// PHV overflow is also infeasible.
	al, err = Allocate(dev, tables[:1], dev.PHVBits+1)
	if err != nil {
		t.Fatal(err)
	}
	if al.Feasible {
		t.Fatal("PHV overflow must be infeasible")
	}
}

func TestAllocateUnknownDep(t *testing.T) {
	_, err := Allocate(Tofino2(), []TableReq{{Name: "x", Deps: []string{"ghost"}}}, 0)
	if err == nil || !strings.Contains(err.Error(), "unplaced") {
		t.Fatalf("err = %v", err)
	}
}

const chainSrc = `
header ipv4_t { bit<32> dst; bit<8> ttl; }
struct headers { ipv4_t ipv4; }
struct metadata { bit<8> cls; bit<9> port; }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.ipv4); transition accept; }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set_cls(bit<8> c) { meta.cls = c; }
    action set_port(bit<9> p) { meta.port = p; }
    action fwd() { std.egress_port = meta.port; }
    table classify {
        key = { hdr.ipv4.dst: lpm; }
        actions = { set_cls; NoAction; }
        default_action = NoAction;
        size = 512;
    }
    table route {
        key = { meta.cls: exact; }
        actions = { set_port; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    table out_table {
        key = { meta.port: exact; }
        actions = { fwd; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    table stats {
        key = { hdr.ipv4.ttl: exact; }
        actions = { NoAction; }
        default_action = NoAction;
        size = 64;
    }
    apply {
        classify.apply();
        route.apply();
        out_table.apply();
        stats.apply();
    }
}
`

func TestRequirementsDependencyChain(t *testing.T) {
	prog, err := parser.Parse("chain", chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	reqs, phv, err := Requirements(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("tables = %d", len(reqs))
	}
	byName := map[string]TableReq{}
	for _, r := range reqs {
		byName[r.Name] = r
	}
	if deps := byName["Ingress.route"].Deps; len(deps) != 1 || deps[0] != "Ingress.classify" {
		t.Fatalf("route deps = %v", deps)
	}
	if deps := byName["Ingress.out_table"].Deps; len(deps) != 1 || deps[0] != "Ingress.route" {
		t.Fatalf("out_table deps = %v", deps)
	}
	if deps := byName["Ingress.stats"].Deps; len(deps) != 0 {
		t.Fatalf("stats deps = %v (reads only packet fields)", deps)
	}
	if byName["Ingress.classify"].ActionDataBits != 8 {
		t.Fatalf("classify action data bits = %d", byName["Ingress.classify"].ActionDataBits)
	}
	// PHV: ipv4 (40 bits) + metadata (8+9).
	if phv != 40+17 {
		t.Fatalf("phv = %d", phv)
	}

	al, err := Allocate(Tofino2(), reqs, phv)
	if err != nil {
		t.Fatal(err)
	}
	// classify→route→out_table is a 3-chain; stats packs alongside.
	if al.StagesUsed != 3 {
		t.Fatalf("stages = %d, want 3\n%v", al.StagesUsed, al.TableStage)
	}
}

func TestRequirementsGuardDependency(t *testing.T) {
	src := `
struct metadata { bit<8> a; bit<8> b; }
control C(inout metadata meta, inout standard_metadata_t std) {
    action seta(bit<8> v) { meta.a = v; }
    action setb() { meta.b = 8w1; }
    table first {
        key = { meta.b: exact; }
        actions = { seta; NoAction; }
        default_action = NoAction;
    }
    table second {
        key = { meta.b: exact; }
        actions = { setb; NoAction; }
        default_action = NoAction;
    }
    apply {
        first.apply();
        if (meta.a == 8w1) {
            second.apply();
        }
    }
}
`
	prog, _ := parser.Parse("guard", src)
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	reqs, _, err := Requirements(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	if deps := reqs[1].Deps; len(deps) != 1 || deps[0] != "C.first" {
		t.Fatalf("guarded table deps = %v, want [C.first]", deps)
	}
}
