// Package rmt models an RMT-style (Tofino-like) match-action pipeline:
// a fixed number of stages with per-stage TCAM, SRAM, VLIW and
// logical-table budgets, a global PHV budget, and a dependency-ordered
// greedy stage allocator. It is the hardware substrate for the paper's
// resource-savings experiments (§3, §4.2): specialized programs with
// fewer tables, narrower match kinds and pruned parsers allocate fewer
// stages, TCAM blocks and PHV bits.
package rmt

import (
	"fmt"

	"repro/internal/p4/ast"
)

// Device describes the pipeline's capacity.
type Device struct {
	Name string
	// Stages is the number of match-action stages.
	Stages int
	// TCAMPerStage is the number of TCAM blocks per stage (each
	// TCAMBlockBits wide × TCAMBlockRows deep).
	TCAMPerStage int
	// SRAMPerStage is the number of SRAM blocks per stage.
	SRAMPerStage int
	// TablesPerStage bounds the logical tables placed in one stage.
	TablesPerStage int
	// VLIWPerStage bounds the action (ALU) slots per stage.
	VLIWPerStage int
	// PHVBits is the packet-header-vector capacity.
	PHVBits int
}

// Block geometry (Tofino-like).
const (
	TCAMBlockBits = 44
	TCAMBlockRows = 512
	SRAMBlockBits = 128
	SRAMBlockRows = 1024
	// DefaultTableSize is assumed when a table omits `size = N`.
	DefaultTableSize = 512
)

// Tofino2 returns a Tofino-2-like device profile: 20 stages.
func Tofino2() Device {
	return Device{
		Name:           "tofino2",
		Stages:         20,
		TCAMPerStage:   12,
		SRAMPerStage:   20,
		TablesPerStage: 8,
		VLIWPerStage:   32,
		PHVBits:        4096,
	}
}

// TableReq is the resource requirement of one logical table.
type TableReq struct {
	Name           string
	Keys           []KeyReq
	Entries        int
	Actions        int
	ActionDataBits int
	// Deps are the names of tables this table must be placed strictly
	// after (match-after-write and control dependencies).
	Deps []string
}

// KeyReq is one key component requirement.
type KeyReq struct {
	Width int
	Match ast.MatchKind
}

// needsTCAM reports whether the table requires ternary matching
// hardware.
func (t *TableReq) needsTCAM() bool {
	for _, k := range t.Keys {
		if k.Match == ast.MatchTernary || k.Match == ast.MatchLPM || k.Match == ast.MatchOptional {
			return true
		}
	}
	return false
}

func (t *TableReq) keyBits() int {
	bits := 0
	for _, k := range t.Keys {
		bits += k.Width
	}
	return bits
}

// tcamBlocks returns the TCAM block requirement: key slices of
// TCAMBlockBits × entry groups of TCAMBlockRows.
func (t *TableReq) tcamBlocks() int {
	if !t.needsTCAM() {
		return 0
	}
	wide := ceilDiv(t.keyBits(), TCAMBlockBits)
	deep := ceilDiv(t.entries(), TCAMBlockRows)
	return wide * deep
}

// sramBlocks returns the SRAM block requirement: exact-match storage
// (with a hash overhead word) plus action data.
func (t *TableReq) sramBlocks() int {
	blocks := 0
	if !t.needsTCAM() && len(t.Keys) > 0 {
		wide := ceilDiv(t.keyBits()+16, SRAMBlockBits) // 16b overhead/version
		deep := ceilDiv(t.entries(), SRAMBlockRows)
		blocks += wide * deep
	}
	if t.ActionDataBits > 0 {
		wide := ceilDiv(t.ActionDataBits, SRAMBlockBits)
		deep := ceilDiv(t.entries(), SRAMBlockRows)
		blocks += wide * deep
	}
	return blocks
}

func (t *TableReq) entries() int {
	if t.Entries > 0 {
		return t.Entries
	}
	return DefaultTableSize
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// StageUse is the occupancy of one stage.
type StageUse struct {
	Tables []string
	TCAM   int
	SRAM   int
	VLIW   int
}

// Allocation is the result of placing a program onto the device.
type Allocation struct {
	Device Device
	// StagesUsed is the number of stages with at least one table.
	StagesUsed int
	// Feasible is false when the program needs more stages than the
	// device has (StagesUsed then exceeds Device.Stages).
	Feasible bool
	PerStage []StageUse
	// Totals.
	TCAMBlocks int
	SRAMBlocks int
	PHVBits    int
	// TableStage maps table name to its stage index.
	TableStage map[string]int
}

func (a *Allocation) String() string {
	return fmt.Sprintf("%d/%d stages, %d TCAM, %d SRAM, %d PHV bits (feasible=%v)",
		a.StagesUsed, a.Device.Stages, a.TCAMBlocks, a.SRAMBlocks, a.PHVBits, a.Feasible)
}

// Allocate places tables into stages greedily in dependency order: each
// table goes into the earliest stage after all of its dependencies that
// has room in every resource dimension.
func Allocate(dev Device, tables []TableReq, phvBits int) (*Allocation, error) {
	al := &Allocation{
		Device:     dev,
		Feasible:   true,
		TableStage: make(map[string]int, len(tables)),
		PHVBits:    phvBits,
	}
	if phvBits > dev.PHVBits {
		al.Feasible = false
	}
	maxStages := dev.Stages * 4 // allow infeasible programs to place
	stages := make([]StageUse, 0, dev.Stages)
	grow := func(i int) {
		for len(stages) <= i {
			stages = append(stages, StageUse{})
		}
	}
	for i := range tables {
		t := &tables[i]
		minStage := 0
		for _, dep := range t.Deps {
			ds, ok := al.TableStage[dep]
			if !ok {
				return nil, fmt.Errorf("rmt: table %s depends on unplaced table %s", t.Name, dep)
			}
			if ds+1 > minStage {
				minStage = ds + 1
			}
		}
		tcam, sram := t.tcamBlocks(), t.sramBlocks()
		placed := false
		for s := minStage; s < maxStages; s++ {
			grow(s)
			u := &stages[s]
			if len(u.Tables) >= dev.TablesPerStage ||
				u.TCAM+tcam > dev.TCAMPerStage ||
				u.SRAM+sram > dev.SRAMPerStage ||
				u.VLIW+t.Actions > dev.VLIWPerStage {
				continue
			}
			u.Tables = append(u.Tables, t.Name)
			u.TCAM += tcam
			u.SRAM += sram
			u.VLIW += t.Actions
			al.TableStage[t.Name] = s
			al.TCAMBlocks += tcam
			al.SRAMBlocks += sram
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("rmt: table %s does not fit on %s (needs %d TCAM, %d SRAM per stage)",
				t.Name, dev.Name, tcam, sram)
		}
	}
	al.PerStage = stages
	for i, u := range stages {
		if len(u.Tables) > 0 {
			al.StagesUsed = i + 1
		}
	}
	if al.StagesUsed > dev.Stages {
		al.Feasible = false
	}
	return al, nil
}
