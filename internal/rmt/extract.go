package rmt

import (
	"fmt"

	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
)

// Requirements derives the table resource requirements and the PHV
// demand of a checked program: per-table key widths/kinds, capacities,
// action counts, and the match-after-write / control dependencies that
// constrain stage placement.
func Requirements(prog *ast.Program, info *typecheck.Info) ([]TableReq, int, error) {
	x := &extractor{prog: prog, info: info, fieldDeps: make(map[string]set)}
	for _, cd := range prog.Controls {
		x.control = cd
		if err := x.stmt(cd.Apply, nil); err != nil {
			return nil, 0, err
		}
	}
	return x.tables, phvDemand(prog, info), nil
}

type set map[string]bool

func union(a, b set) set {
	if len(b) == 0 {
		return a
	}
	out := make(set, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

type extractor struct {
	prog    *ast.Program
	info    *typecheck.Info
	control *ast.ControlDecl
	tables  []TableReq
	// fieldDeps maps a field path to the set of tables whose outputs
	// flow into its current value.
	fieldDeps map[string]set
}

// readDeps returns the tables whose outputs the expression depends on.
func (x *extractor) readDeps(e ast.Expr) set {
	deps := set{}
	ast.WalkExprs(e, func(sub ast.Expr) {
		if path, ok := typecheck.FieldPath(sub); ok {
			deps = union(deps, x.fieldDeps[path])
		}
	})
	return deps
}

func (x *extractor) stmt(s ast.Stmt, guard set) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.Stmts {
			if err := x.stmt(inner, guard); err != nil {
				return err
			}
		}
		return nil
	case *ast.AssignStmt:
		deps := union(x.readDeps(s.RHS), guard)
		if path, ok := typecheck.FieldPath(s.LHS); ok {
			x.fieldDeps[path] = deps
		}
		return nil
	case *ast.VarDecl:
		if s.Init != nil {
			x.fieldDeps[s.Name] = union(x.readDeps(s.Init), guard)
		}
		return nil
	case *ast.IfStmt:
		g := union(guard, x.readDeps(s.Cond))
		// `if (t.apply().hit)` both applies the table and guards the
		// branches on its outcome.
		if m, ok := s.Cond.(*ast.Member); ok && m.Name == "hit" {
			if call, ok := m.X.(*ast.CallExpr); ok {
				if inner, ok := call.Fun.(*ast.Member); ok && inner.Name == "apply" {
					name, err := x.applyTable(inner, guard)
					if err != nil {
						return err
					}
					g = union(guard, set{name: true})
				}
			}
		}
		if err := x.stmt(s.Then, g); err != nil {
			return err
		}
		if s.Else != nil {
			return x.stmt(s.Else, g)
		}
		return nil
	case *ast.CallStmt:
		switch fun := s.Call.Fun.(type) {
		case *ast.Member:
			switch fun.Name {
			case "apply":
				_, err := x.applyTable(fun, guard)
				return err
			case "read":
				// A register read writes its destination; attribute it
				// to the guarding tables.
				if path, ok := typecheck.FieldPath(s.Call.Args[0]); ok {
					x.fieldDeps[path] = guard
				}
			}
		case *ast.Ident:
			// Direct action call: its writes carry the argument deps.
			if act := x.control.Action(fun.Name); act != nil {
				deps := guard
				for _, a := range s.Call.Args {
					deps = union(deps, x.readDeps(a))
				}
				for _, w := range actionWrites(act) {
					x.fieldDeps[w] = deps
				}
			}
		}
		return nil
	default:
		return nil
	}
}

func (x *extractor) applyTable(fun *ast.Member, guard set) (string, error) {
	id, ok := fun.X.(*ast.Ident)
	if !ok {
		return "", fmt.Errorf("rmt: table apply target must be an identifier")
	}
	tbl := x.control.Table(id.Name)
	if tbl == nil {
		return "", fmt.Errorf("rmt: unknown table %s", id.Name)
	}
	name := x.control.Name + "." + id.Name
	req := TableReq{Name: name, Entries: tbl.Size, Actions: len(tbl.Actions)}

	deps := set{}
	for k := range guard {
		deps[k] = true
	}
	for _, k := range tbl.Keys {
		t := x.info.TypeOf(k.Expr)
		req.Keys = append(req.Keys, KeyReq{Width: t.Width, Match: k.Match})
		deps = union(deps, x.readDeps(k.Expr))
	}
	for d := range deps {
		req.Deps = append(req.Deps, d)
	}
	sortStrings(req.Deps)

	// Action data width and written fields.
	maxData := 0
	for _, ar := range tbl.Actions {
		act := x.control.Action(ar.Name)
		if act == nil {
			continue // NoAction
		}
		bits := 0
		for _, p := range act.Params {
			pt := x.info.Resolve(p.Type)
			bits += pt.Width
		}
		if bits > maxData {
			maxData = bits
		}
		for _, w := range actionWrites(act) {
			x.fieldDeps[w] = set{name: true}
		}
	}
	req.ActionDataBits = maxData
	x.tables = append(x.tables, req)
	return name, nil
}

// actionWrites lists the field paths an action body writes.
func actionWrites(act *ast.Action) []string {
	var out []string
	ast.WalkStmts(act.Body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if path, ok := typecheck.FieldPath(s.LHS); ok {
				out = append(out, path)
			}
		case *ast.CallStmt:
			if m, ok := s.Call.Fun.(*ast.Member); ok && m.Name == "read" {
				if path, ok := typecheck.FieldPath(s.Call.Args[0]); ok {
					out = append(out, path)
				}
			}
			if id, ok := s.Call.Fun.(*ast.Ident); ok && id.Name == "mark_to_drop" {
				if path, ok := typecheck.FieldPath(s.Call.Args[0]); ok {
					out = append(out, path+".drop")
				}
			}
		}
	})
	return out
}

// phvDemand estimates packet-header-vector pressure: every field of
// every header the parser extracts (or of all headers when there is no
// parser), plus user metadata fields. Parser-tail pruning therefore
// directly reduces PHV (paper §3).
func phvDemand(prog *ast.Program, info *typecheck.Info) int {
	bits := 0
	extracted := make(map[string]bool)
	haveParser := len(prog.Parsers) > 0
	for _, pd := range prog.Parsers {
		for _, st := range pd.States {
			for _, s := range st.Stmts {
				call, ok := s.(*ast.CallStmt)
				if !ok {
					continue
				}
				m, ok := call.Call.Fun.(*ast.Member)
				if !ok || m.Name != "extract" {
					continue
				}
				t := info.TypeOf(call.Call.Args[0])
				if t.Kind == typecheck.KHeader && !extracted[headerPathKey(call.Call.Args[0])] {
					extracted[headerPathKey(call.Call.Args[0])] = true
					bits += info.HeaderBits[t.Name]
				}
			}
		}
	}
	if !haveParser {
		for _, h := range prog.Headers {
			bits += info.HeaderBits[h.Name]
		}
	}
	// Metadata structs (anything that is not a header container).
	for _, sd := range prog.Structs {
		if sd.Name == "standard_metadata_t" {
			continue
		}
		for _, f := range sd.Fields {
			ft := info.Resolve(f.Type)
			if ft.Kind == typecheck.KBits {
				bits += ft.Width
			}
		}
	}
	return bits
}

func headerPathKey(e ast.Expr) string {
	p, _ := typecheck.FieldPath(e)
	return p
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
