package sym

import (
	"math/rand"
	"testing"
)

// TestSubstCommutesWithEval: substituting constants then evaluating the
// rest equals evaluating everything at once.
func TestSubstCommutesWithEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		raw := genRaw(r, 1, 4)
		b := NewBuilder()
		e := raw.build(b)
		vars := AllVars(e)
		if len(vars) == 0 {
			continue
		}
		// Substitute a random half of the variables with constants.
		env := make(map[*Expr]*Expr)
		full := make(Env)
		for _, v := range vars {
			val := NewBV2(v.Width, r.Uint64(), r.Uint64())
			full[v] = val
			if r.Intn(2) == 0 {
				env[v] = b.Const(val)
			}
		}
		sub := b.Subst(e, env)
		got, err := Eval(sub, full)
		if err != nil {
			t.Fatalf("eval after subst: %v", err)
		}
		want, err := Eval(e, full)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: subst changed semantics: %s vs %s\nexpr %s\nsub  %s",
				trial, got, want, e, sub)
		}
	}
}

func TestSubstAllCtrlVarsYieldsConstant(t *testing.T) {
	b := NewBuilder()
	key := b.Data("key", 32)
	cfg := b.Ctrl("t.configured", 1)
	act := b.Ctrl("t.action", 8)
	// egress = t.configured && t.action == set ? 1 : 0 — Fig. 5a shape.
	egress := b.Ite(b.And(cfg, b.Eq(act, b.ConstUint(8, 1))), b.ConstUint(9, 1), b.ConstUint(9, 0))

	// Empty table: configured = false. Must fold to 0 regardless of key.
	env := map[*Expr]*Expr{cfg: b.False(), act: b.ConstUint(8, 0)}
	got := b.Subst(egress, env)
	if !got.IsConst() || got.Val.Uint64() != 0 {
		t.Fatalf("empty-table substitution should fold to 0, got %s", got)
	}

	// One entry: action is key-dependent. Result keeps the data var.
	env = map[*Expr]*Expr{
		cfg: b.True(),
		act: b.Ite(b.Eq(key, b.ConstUint(32, 0xD00D)), b.ConstUint(8, 1), b.ConstUint(8, 0)),
	}
	got = b.Subst(egress, env)
	if got.IsConst() {
		t.Fatalf("one-entry substitution should stay symbolic, got %s", got)
	}
	if len(CtrlVars(got)) != 0 {
		t.Fatalf("all ctrl vars should be gone, got %s", got)
	}
	if dv := DataVars(got); len(dv) != 1 || dv[0] != key {
		t.Fatalf("expected only the key data var, got %v", dv)
	}
}

func TestSubstEmptyEnvIsIdentity(t *testing.T) {
	b := NewBuilder()
	e := b.Add(b.Data("x", 8), b.ConstUint(8, 3))
	if b.Subst(e, nil) != e {
		t.Fatal("empty substitution must return the same node")
	}
}

func TestSubstSharedNodesVisitedOnce(t *testing.T) {
	// Build a deep chain of shared nodes; without memoization this would
	// be exponential.
	b := NewBuilder()
	x := b.Data("x", 64)
	e := x
	for i := 0; i < 60; i++ {
		e = b.Add(e, e) // e := 2e, heavily shared DAG
	}
	sub := b.Subst(e, map[*Expr]*Expr{x: b.ConstUint(64, 1)})
	if !sub.IsConst() {
		t.Fatalf("expected constant, got op %v", sub.Op)
	}
	if got := sub.Val.Uint64(); got != 1<<60 {
		t.Fatalf("got %#x, want %#x", got, uint64(1)<<60)
	}
}
