// Native fuzz targets for the symbolic layer. FuzzSolver
// differential-tests the decision procedure against brute-force
// evaluation: a stack machine synthesizes an expression over two small
// free variables from the fuzzer's byte program, and every solver
// answer (Sat witness, Unsat proof, constant-ness verdict) is checked
// against exhaustive enumeration of the 256-assignment domain.
package sym_test

import (
	"testing"

	"repro/internal/sym"
)

// fuzzVarWidths keeps the brute-force domain at 2^8 assignments: small
// enough to enumerate per input, large enough that the solver's
// exhaustive path, probing and witness reuse all exercise.
var fuzzVarWidths = []uint16{3, 5}

// synthExpr runs the byte program on a tiny stack machine over the
// builder, producing an arbitrary (simplified) expression. Every
// operand is width-coerced, so no program can trip the builder's width
// panics; the stack never underflows because it starts non-empty and
// pops push back their result.
func synthExpr(b *sym.Builder, vars []*sym.Expr, program []byte) *sym.Expr {
	stack := []*sym.Expr{vars[0]}
	pop := func() *sym.Expr {
		e := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return e
	}
	push := func(e *sym.Expr) { stack = append(stack, e) }
	// fit coerces x to width w by truncation or zero-extension.
	fit := func(x *sym.Expr, w uint16) *sym.Expr {
		if x.Width == w {
			return x
		}
		if x.Width > w {
			return b.Extract(x, w-1, 0)
		}
		return b.ZeroExtend(x, w)
	}
	bool1 := func(x *sym.Expr) *sym.Expr {
		return b.Ne(x, b.Const(sym.BV{W: x.Width}))
	}
	for i := 0; i < len(program) && len(stack) < 64; i++ {
		op := program[i]
		arg := byte(0)
		if i+1 < len(program) {
			arg = program[i+1]
		}
		switch op % 16 {
		case 0:
			push(vars[int(arg)%len(vars)])
			i++
		case 1:
			w := uint16(arg%8) + 1
			push(b.ConstUint(w, uint64(arg)&((1<<w)-1)))
			i++
		case 2:
			push(b.Not(pop()))
		case 3:
			x := pop()
			push(b.And(x, fit(pop(), x.Width)))
		case 4:
			x := pop()
			push(b.Or(x, fit(pop(), x.Width)))
		case 5:
			x := pop()
			push(b.Xor(x, fit(pop(), x.Width)))
		case 6:
			x := pop()
			push(b.Add(x, fit(pop(), x.Width)))
		case 7:
			x := pop()
			push(b.Sub(x, fit(pop(), x.Width)))
		case 8:
			x := pop()
			push(b.Shl(x, fit(pop(), x.Width)))
		case 9:
			x := pop()
			push(b.Lshr(x, fit(pop(), x.Width)))
		case 10:
			x := pop()
			push(b.Eq(x, fit(pop(), x.Width)))
		case 11:
			x := pop()
			push(b.Ult(x, fit(pop(), x.Width)))
		case 12:
			cond := bool1(pop())
			x := pop()
			push(b.Ite(cond, x, fit(pop(), x.Width)))
		case 13:
			x := pop()
			hi := uint16(arg) % x.Width
			push(b.Extract(x, hi, 0))
			i++
		case 14:
			x := pop()
			if x.Width <= 32 {
				push(b.Concat(x, fit(pop(), x.Width)))
			} else {
				push(x)
			}
		default:
			x := pop()
			if w := x.Width + uint16(arg%8); w <= 64 {
				push(b.ZeroExtend(x, w))
			} else {
				push(x)
			}
			i++
		}
	}
	return pop()
}

// forEachAssignment enumerates every assignment of the fuzz variables.
func forEachAssignment(vars []*sym.Expr, visit func(env sym.Env) bool) {
	env := make(sym.Env, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return visit(env)
		}
		v := vars[i]
		for x := uint64(0); x < 1<<v.Width; x++ {
			env[v] = sym.NewBV(v.Width, x)
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

func FuzzSolver(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 10})            // v0 == v1
	f.Add([]byte{0, 0, 1, 3, 6, 1, 5, 11})   // (v0+3) < 5
	f.Add([]byte{0, 1, 1, 7, 5, 2, 0, 0, 3}) // ~(v1^7) & v0
	f.Add([]byte{0, 0, 0, 0, 10})            // v0 == v0 (tautology)
	f.Add([]byte{0, 0, 1, 1, 8, 0, 0, 11})   // (v0<<1) < v0
	// Shift/concat/slice edge cases: overshift to zero, shift by a
	// symbolic amount, full- and partial-width slices, slice of a
	// concat straddling the seam, and concat self-squaring.
	f.Add([]byte{0, 0, 1, 7, 8, 0, 0, 10})          // (c >> v0-ish shl) == v0: overshift path
	f.Add([]byte{0, 1, 0, 0, 8, 13, 2, 1, 2, 10})   // ((v1 << v0)[2:0]) == 2
	f.Add([]byte{0, 1, 0, 0, 9, 0, 1, 11})          // (v1 >> v0) < v1: lshr by symbolic amount
	f.Add([]byte{0, 0, 0, 1, 14, 13, 5, 1, 5, 10})  // concat(v1,v0)[5:0] == 5: slice across the seam
	f.Add([]byte{0, 1, 0, 1, 14, 13, 4, 0, 1, 10})  // concat(v1,v1)[4:0] == v1: self-concat slice
	f.Add([]byte{0, 0, 13, 0, 2, 14, 1, 3, 10})     // concat(~v0[0:0], c): width-1 slice then concat
	f.Add([]byte{0, 1, 1, 4, 8, 1, 4, 9, 0, 1, 10}) // ((v1<<4)>>4) == v1: shift round trip losing bits
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 96 {
			t.Skip("cap expression size")
		}
		b := sym.NewBuilder()
		names := []string{"v0", "v1"}
		vars := make([]*sym.Expr, len(fuzzVarWidths))
		for i, w := range fuzzVarWidths {
			vars[i] = b.Data(names[i], w)
		}
		e := synthExpr(b, vars, program)

		// Brute-force ground truth over the full 2^8 domain.
		bruteSat := false
		var firstVal sym.BV
		haveVal, allSame, evalOK := false, true, true
		forEachAssignment(vars, func(env sym.Env) bool {
			out, err := sym.Eval(e, env)
			if err != nil {
				evalOK = false
				return false
			}
			if !haveVal {
				firstVal, haveVal = out, true
			} else if out != firstVal {
				allSame = false
			}
			if e.Width == 1 && out.IsTrue() {
				bruteSat = true
			}
			return true
		})
		if !evalOK {
			t.Skip("expression not evaluable")
		}

		solver := sym.NewSolver()

		// Constant-ness must agree with enumeration whenever decided.
		res := solver.ConstValue(e)
		if res.Known && res.IsConst {
			if !allSame {
				t.Fatalf("ConstValue claims constant %s but evaluations differ: %s", res.Val, e)
			}
			if res.Val != firstVal {
				t.Fatalf("ConstValue = %s, enumeration says %s: %s", res.Val, firstVal, e)
			}
		}
		if res.Known && !res.IsConst && allSame {
			t.Fatalf("ConstValue refutes constant-ness but all %d evaluations equal %s: %s",
				1<<8, firstVal, e)
		}

		// Satisfiability of the width-1 projection must agree with
		// enumeration: Sat needs a checkable witness, Unsat a truly
		// empty domain. (The domain is 8 bits total, so the solver's
		// exhaustive path decides it; Unknown would itself be a bug.)
		cond := e
		if cond.Width != 1 {
			cond = b.Ne(e, b.Const(sym.BV{W: e.Width}))
			bruteSat = false
			forEachAssignment(vars, func(env sym.Env) bool {
				if out, err := sym.Eval(cond, env); err == nil && out.IsTrue() {
					bruteSat = true
					return false
				}
				return true
			})
		}
		verdict, witness := solver.CheckWitness(cond, nil)
		switch verdict {
		case sym.Sat:
			if !bruteSat {
				t.Fatalf("solver says Sat, enumeration says Unsat: %s", cond)
			}
			if out, err := sym.Eval(cond, witness); err != nil || !out.IsTrue() {
				t.Fatalf("witness does not satisfy: %v (err %v): %s", witness, err, cond)
			}
		case sym.Unsat:
			if bruteSat {
				t.Fatalf("solver says Unsat, enumeration found a model: %s", cond)
			}
		case sym.Unknown:
			t.Fatalf("solver answered Unknown on an 8-bit domain: %s", cond)
		}

		// Re-querying with the witness as hint must stay stable.
		if verdict == sym.Sat {
			again, _ := solver.CheckWitness(cond, witness)
			if again != sym.Sat {
				t.Fatalf("witness hint flipped verdict to %s: %s", again, cond)
			}
		}
	})
}
