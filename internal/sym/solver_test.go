package sym

import (
	"math/rand"
	"testing"
)

func TestSolverBasics(t *testing.T) {
	b := NewBuilder()
	s := NewSolver()
	x := b.Data("x", 8)
	y := b.Data("y", 8)

	cases := []struct {
		e    *Expr
		want Verdict
		name string
	}{
		{b.True(), Sat, "true"},
		{b.False(), Unsat, "false"},
		{b.Eq(x, b.ConstUint(8, 5)), Sat, "x==5"},
		{b.And(b.Eq(x, b.ConstUint(8, 5)), b.Eq(x, b.ConstUint(8, 6))), Unsat, "x==5 && x==6"},
		{b.And(b.Eq(x, b.ConstUint(8, 5)), b.Eq(y, b.ConstUint(8, 6))), Sat, "two vars"},
		{b.Ult(x, b.ConstUint(8, 1)), Sat, "x<1 (x=0)"},
		{b.Ne(x, x), Unsat, "x!=x"},
		{b.Or(b.Eq(x, y), b.Ne(x, y)), Sat, "tautology"},
		{b.And(b.Ult(x, b.ConstUint(8, 3)), b.Ugt(x, b.ConstUint(8, 200))), Unsat, "empty interval"},
	}
	for _, c := range cases {
		if got := s.Check(c.e); got != c.want {
			t.Errorf("%s: Check = %v, want %v (expr %s)", c.name, got, c.want, c.e)
		}
	}
}

// TestSolverNeverContradictsBruteForce: on small widths the solver's
// definite answers must agree with exhaustive enumeration.
func TestSolverNeverContradictsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		raw := genRaw(r, 1, 3)
		b := NewBuilder()
		e := raw.build(b)
		vars := AllVars(e)
		total := 0
		for _, v := range vars {
			total += int(v.Width)
		}
		if total > 14 {
			continue // keep brute force cheap
		}
		s := NewSolver()
		got := s.Check(e)

		// Brute force.
		env := make(Env, len(vars))
		sat := false
		var rec func(i int)
		rec = func(i int) {
			if sat {
				return
			}
			if i == len(vars) {
				if out, err := Eval(e, env); err == nil && out.IsTrue() {
					sat = true
				}
				return
			}
			v := vars[i]
			for x := uint64(0); x < 1<<v.Width; x++ {
				env[v] = NewBV(v.Width, x)
				rec(i + 1)
			}
		}
		rec(0)

		switch got {
		case Sat:
			if !sat {
				t.Fatalf("trial %d: solver says Sat but formula is Unsat: %s", trial, e)
			}
		case Unsat:
			if sat {
				t.Fatalf("trial %d: solver says Unsat but formula is Sat: %s", trial, e)
			}
		}
	}
}

func TestSolverWideWidthsSatWitness(t *testing.T) {
	b := NewBuilder()
	s := NewSolver()
	ip := b.Data("ipv6.dst", 128)
	// A single 128-bit equality: exhaustive search is impossible, but the
	// harvested candidate makes the witness immediate.
	target := b.Const(NewBV2(128, 0x20010db8, 0x1))
	if got := s.Check(b.Eq(ip, target)); got != Sat {
		t.Fatalf("wide equality should be Sat via candidates, got %v", got)
	}
	// Contradiction at wide width must not be reported Sat (Unknown is
	// acceptable: the domain is too big for exhaustion).
	contra := b.And(b.Eq(ip, target), b.Ne(ip, target))
	if contra != b.False() {
		t.Fatalf("simplifier should fold the contradiction, got %s", contra)
	}
}

func TestConstValue(t *testing.T) {
	b := NewBuilder()
	s := NewSolver()
	x := b.Data("x", 8)

	if res := s.ConstValue(b.ConstUint(8, 9)); !res.Known || !res.IsConst || res.Val.Uint64() != 9 {
		t.Fatalf("literal: %+v", res)
	}
	if res := s.ConstValue(x); !res.Known || res.IsConst {
		t.Fatalf("bare variable should be refuted as constant: %+v", res)
	}
	if res := s.ConstValue(b.Add(x, b.ConstUint(8, 1))); !res.Known || res.IsConst {
		t.Fatalf("x+1 should be refuted: %+v", res)
	}
	// An algebraically-constant expression the smart constructors do not
	// reduce: (x >> 4) < 16 holds for every 8-bit x, so the ite always
	// yields 7. Only the exhaustive pass can certify this.
	alwaysTrue := b.Ult(b.Lshr(x, b.ConstUint(8, 4)), b.ConstUint(8, 16))
	if alwaysTrue.IsConst() {
		t.Fatal("test premise broken: simplifier folded the guard")
	}
	e := b.Ite(alwaysTrue, b.ConstUint(4, 7), b.ConstUint(4, 8))
	res := s.ConstValue(e)
	if !res.Known || !res.IsConst || res.Val.Uint64() != 7 {
		t.Fatalf("exhaustive certification failed: %+v (expr %s)", res, e)
	}
}

func TestVerdictString(t *testing.T) {
	if Unsat.String() != "unsat" || Sat.String() != "sat" || Unknown.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
}
