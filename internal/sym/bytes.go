package sym

// Byte-level constant extraction, used by the data-plane executor's
// byte-aligned fast paths: a compiled image deparses whole-byte header
// fields straight out of a BV's limbs, and builds field values straight
// from packet bytes, without going through per-bit Bit()/Shl() loops.

// AppendBE appends the big-endian encoding of v's low `width` bits to
// dst and returns the extended slice. width must be a multiple of 8 and
// at most MaxWidth; bits of v above width are ignored (they are zero by
// the BV invariant whenever width >= v.W).
func AppendBE(dst []byte, v BV, width uint16) []byte {
	for k := int(width)/8 - 1; k >= 0; k-- {
		shift := uint(k * 8)
		var b byte
		if shift >= 64 {
			b = byte(v.Hi >> (shift - 64))
		} else {
			b = byte(v.Lo >> shift)
		}
		dst = append(dst, b)
	}
	return dst
}

// FromBE builds a width-w bitvector from the first w/8 bytes of b,
// most-significant byte first. w must be a multiple of 8, between 8 and
// MaxWidth, and b must hold at least w/8 bytes.
func FromBE(b []byte, w uint16) BV {
	var hi, lo uint64
	for k := 0; k < int(w)/8; k++ {
		hi = hi<<8 | lo>>56
		lo = lo<<8 | uint64(b[k])
	}
	return BV{Hi: hi, Lo: lo, W: w}
}
