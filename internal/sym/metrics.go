package sym

import "repro/internal/obs"

// SolverMetrics is the solver's observability hook: how often each
// query path decides, how well the witness cache works, and how deep
// the expressions reaching the solver are after simplification. A nil
// *SolverMetrics (the default) disables everything at zero cost; the
// counters themselves are atomic, so one SolverMetrics may be shared by
// every per-worker solver of an evaluation pool.
type SolverMetrics struct {
	// Check/CheckWitness accounting.
	Queries     *obs.Counter // satisfiability queries answered
	WitnessHits *obs.Counter // hint witness still satisfied (cache hit)
	WitnessMiss *obs.Counter // hint supplied but no longer satisfies
	Exhaustive  *obs.Counter // decided by exhaustive small-domain search
	ProbeSat    *obs.Counter // satisfied by candidate/random probing
	Unknown     *obs.Counter // gave up within budget

	// ConstValue accounting.
	ConstQueries *obs.Counter // constant-ness queries answered
	ConstProved  *obs.Counter // certified constant (literal or exhaustive)
	ConstRefuted *obs.Counter // two differing evaluations found
	ConstUnknown *obs.Counter // undecided within budget

	// QueryDepth is the high-water DAG depth of expressions entering the
	// solver — the residue the simplifier could not fold away.
	QueryDepth *obs.Gauge
}

// NewSolverMetrics resolves the solver's instruments from a registry
// under the "sym." prefix. A nil registry yields nil (disabled).
func NewSolverMetrics(r *obs.Registry) *SolverMetrics {
	if r == nil {
		return nil
	}
	return &SolverMetrics{
		Queries:      r.Counter("sym.solver.queries"),
		WitnessHits:  r.Counter("sym.solver.witness_hits"),
		WitnessMiss:  r.Counter("sym.solver.witness_misses"),
		Exhaustive:   r.Counter("sym.solver.exhaustive"),
		ProbeSat:     r.Counter("sym.solver.probe_sat"),
		Unknown:      r.Counter("sym.solver.unknown"),
		ConstQueries: r.Counter("sym.solver.const_queries"),
		ConstProved:  r.Counter("sym.solver.const_proved"),
		ConstRefuted: r.Counter("sym.solver.const_refuted"),
		ConstUnknown: r.Counter("sym.solver.const_unknown"),
		QueryDepth:   r.Gauge("sym.solver.query_depth_max"),
	}
}

// The nil-safe instrumentation sites below keep the solver free of nil
// checks at every increment.

func (m *SolverMetrics) query(e *Expr) {
	if m == nil {
		return
	}
	m.Queries.Inc()
	m.QueryDepth.Max(int64(e.Depth()))
}

func (m *SolverMetrics) constQuery(e *Expr) {
	if m == nil {
		return
	}
	m.ConstQueries.Inc()
	m.QueryDepth.Max(int64(e.Depth()))
}

func (m *SolverMetrics) witnessHit() {
	if m != nil {
		m.WitnessHits.Inc()
	}
}

func (m *SolverMetrics) witnessMiss() {
	if m != nil {
		m.WitnessMiss.Inc()
	}
}

func (m *SolverMetrics) exhaustive() {
	if m != nil {
		m.Exhaustive.Inc()
	}
}

func (m *SolverMetrics) probeSat() {
	if m != nil {
		m.ProbeSat.Inc()
	}
}

func (m *SolverMetrics) unknown() {
	if m != nil {
		m.Unknown.Inc()
	}
}

func (m *SolverMetrics) constProved() {
	if m != nil {
		m.ConstProved.Inc()
	}
}

func (m *SolverMetrics) constRefuted() {
	if m != nil {
		m.ConstRefuted.Inc()
	}
}

func (m *SolverMetrics) constUnknown() {
	if m != nil {
		m.ConstUnknown.Inc()
	}
}
