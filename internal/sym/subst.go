package sym

import "sort"

// SubstScratch holds the per-traversal memo of a substitution: result
// and epoch-mark arrays indexed by the Builder's dense node ids. The
// zero value is ready to use. A SubstScratch may not be shared between
// concurrently substituting goroutines; give each worker its own and
// they can all rewrite through the same Builder (interning has its own
// lock, and substitution results are hash-consed so every worker arrives
// at the identical node pointers).
type SubstScratch struct {
	val   []*Expr
	mark  []uint32
	epoch uint32
}

func (sc *SubstScratch) ensure(id uint64) {
	if int(id) < len(sc.val) {
		return
	}
	n := int(id) + 1
	if n < 2*len(sc.val) {
		n = 2 * len(sc.val)
	}
	vals := make([]*Expr, n)
	copy(vals, sc.val)
	sc.val = vals
	marks := make([]uint32, n)
	copy(marks, sc.mark)
	sc.mark = marks
}

// Subst rewrites e by replacing every variable that appears as a key in
// env with its mapped expression. The rewrite is bottom-up through the
// smart constructors, so the result is fully simplified: substituting a
// control-plane assignment into a data-plane expression *is* evaluating a
// specialization query (paper §4.1).
//
// Variables absent from env are left in place. The memo makes the cost
// proportional to the number of distinct DAG nodes, not the tree size.
// Subst uses the Builder's own memo and is therefore single-threaded;
// concurrent callers use SubstWith with per-goroutine scratch.
func (b *Builder) Subst(e *Expr, env map[*Expr]*Expr) *Expr {
	return b.SubstWith(&b.sub, e, env)
}

// SubstWith is Subst with caller-owned memo state, the concurrency-safe
// entry point: any number of goroutines may substitute through the same
// Builder as long as each brings its own SubstScratch and no goroutine
// mutates env during the calls.
func (b *Builder) SubstWith(sc *SubstScratch, e *Expr, env map[*Expr]*Expr) *Expr {
	if len(env) == 0 {
		return e
	}
	// Epoch-marked memo indexed by dense node id: no per-call map.
	sc.epoch++
	return b.subst(sc, e, env)
}

func (b *Builder) subst(sc *SubstScratch, e *Expr, env map[*Expr]*Expr) *Expr {
	id := e.id
	sc.ensure(id)
	if sc.mark[id] == sc.epoch {
		return sc.val[id]
	}
	var r *Expr
	switch e.Op {
	case OpConst:
		r = e
	case OpVar:
		if repl, ok := env[e]; ok {
			r = repl
		} else {
			r = e
		}
	case OpNot:
		r = b.Not(b.subst(sc, e.A, env))
	case OpAnd:
		r = b.And(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpOr:
		r = b.Or(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpXor:
		r = b.Xor(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpAdd:
		r = b.Add(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpSub:
		r = b.Sub(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpShl:
		r = b.Shl(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpLshr:
		r = b.Lshr(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpConcat:
		r = b.Concat(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpExtract:
		r = b.Extract(b.subst(sc, e.A, env), e.Hi, e.Lo)
	case OpEq:
		r = b.Eq(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpUlt:
		r = b.Ult(b.subst(sc, e.A, env), b.subst(sc, e.B, env))
	case OpIte:
		r = b.Ite(b.subst(sc, e.A, env), b.subst(sc, e.B, env), b.subst(sc, e.C, env))
	default:
		panic("sym: unknown op in subst")
	}
	// The smart constructors above may have grown the arena past the
	// point this node was checked; re-ensure before writing.
	sc.ensure(id)
	sc.mark[id] = sc.epoch
	sc.val[id] = r
	return r
}

// Vars returns every distinct variable node reachable from e, in
// deterministic (creation-id) order, optionally filtered by class.
func Vars(e *Expr, class VarClass, includeAll bool) []*Expr {
	seen := make(map[*Expr]bool, 32)
	var out []*Expr
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if n.Op == OpVar && (includeAll || n.Class == class) {
			out = append(out, n)
		}
		walk(n.A)
		walk(n.B)
		walk(n.C)
	}
	walk(e)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CtrlVars returns the control-plane variables appearing in e. The taint
// map of the incremental specializer is built from this (paper §4.1:
// "Flay maintains a map which associates a control-plane variable with
// the set of program points it can influence").
func CtrlVars(e *Expr) []*Expr { return Vars(e, CtrlVar, false) }

// DataVars returns the data-plane variables appearing in e.
func DataVars(e *Expr) []*Expr { return Vars(e, DataVar, false) }

// AllVars returns every variable appearing in e.
func AllVars(e *Expr) []*Expr { return Vars(e, DataVar, true) }

// HasCtrlVars reports whether any control-plane placeholder remains in e.
func HasCtrlVars(e *Expr) bool {
	seen := make(map[*Expr]bool, 32)
	var walk func(*Expr) bool
	walk = func(n *Expr) bool {
		if n == nil || seen[n] {
			return false
		}
		seen[n] = true
		if n.Op == OpVar && n.Class == CtrlVar {
			return true
		}
		return walk(n.A) || walk(n.B) || walk(n.C)
	}
	return walk(e)
}

// Size returns the number of distinct DAG nodes reachable from e.
func Size(e *Expr) int {
	seen := make(map[*Expr]bool, 64)
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		walk(n.A)
		walk(n.B)
		walk(n.C)
	}
	walk(e)
	return len(seen)
}
