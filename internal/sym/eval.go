package sym

import "fmt"

// Env is a concrete assignment of values to variables, keyed by the
// hash-consed variable node.
type Env map[*Expr]BV

// Eval computes the concrete value of e under env. Every variable
// reachable from e must be assigned, otherwise Eval returns an error.
// Eval is the ground-truth oracle for the simplifier's property tests and
// the workhorse of the heuristic solver.
func Eval(e *Expr, env Env) (BV, error) {
	memo := make(map[*Expr]BV, 64)
	return eval(e, env, memo)
}

func eval(e *Expr, env Env, memo map[*Expr]BV) (BV, error) {
	if v, ok := memo[e]; ok {
		return v, nil
	}
	var v BV
	switch e.Op {
	case OpConst:
		v = e.Val
	case OpVar:
		val, ok := env[e]
		if !ok {
			return BV{}, fmt.Errorf("sym: unassigned variable %s", e)
		}
		if val.W != e.Width {
			return BV{}, fmt.Errorf("sym: assignment width %d for %s (want %d)", val.W, e, e.Width)
		}
		v = val
	case OpNot:
		a, err := eval(e.A, env, memo)
		if err != nil {
			return BV{}, err
		}
		v = a.Not()
	case OpExtract:
		a, err := eval(e.A, env, memo)
		if err != nil {
			return BV{}, err
		}
		v = a.Extract(e.Hi, e.Lo)
	case OpIte:
		c, err := eval(e.A, env, memo)
		if err != nil {
			return BV{}, err
		}
		if c.IsTrue() {
			v, err = eval(e.B, env, memo)
		} else {
			v, err = eval(e.C, env, memo)
		}
		if err != nil {
			return BV{}, err
		}
	default:
		a, err := eval(e.A, env, memo)
		if err != nil {
			return BV{}, err
		}
		bb, err := eval(e.B, env, memo)
		if err != nil {
			return BV{}, err
		}
		switch e.Op {
		case OpAnd:
			v = a.And(bb)
		case OpOr:
			v = a.Or(bb)
		case OpXor:
			v = a.Xor(bb)
		case OpAdd:
			v = a.Add(bb)
		case OpSub:
			v = a.Sub(bb)
		case OpShl:
			if bb.Hi != 0 || bb.Lo >= uint64(a.W) {
				v = BV{W: a.W}
			} else {
				v = a.Shl(uint(bb.Lo))
			}
		case OpLshr:
			if bb.Hi != 0 || bb.Lo >= uint64(a.W) {
				v = BV{W: a.W}
			} else {
				v = a.Lshr(uint(bb.Lo))
			}
		case OpConcat:
			v = a.Concat(bb)
		case OpEq:
			v = Bool(a.Eq(bb))
		case OpUlt:
			v = Bool(a.Ult(bb))
		default:
			return BV{}, fmt.Errorf("sym: unknown op %v", e.Op)
		}
	}
	memo[e] = v
	return v, nil
}

// MustEval is Eval for callers that have already ensured the environment
// is total; it panics on error.
func MustEval(e *Expr, env Env) BV {
	v, err := Eval(e, env)
	if err != nil {
		panic(err)
	}
	return v
}
