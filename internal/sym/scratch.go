package sym

import "sort"

// scratch holds the Solver's reusable per-node state: evaluation memos
// and visited marks indexed by the Builder's dense node IDs. Epoch
// counters avoid clearing between queries, which matters because the
// incremental engine evaluates thousands of probe assignments per
// update.
type scratch struct {
	vals     []BV
	valMark  []uint32
	valEpoch uint32

	seen      []uint32
	seenEpoch uint32
}

func (sc *scratch) ensure(id uint64) {
	if int(id) < len(sc.vals) {
		return
	}
	n := int(id) + 1
	if n < 2*len(sc.vals) {
		n = 2 * len(sc.vals)
	}
	vals := make([]BV, n)
	copy(vals, sc.vals)
	sc.vals = vals
	vm := make([]uint32, n)
	copy(vm, sc.valMark)
	sc.valMark = vm
	sn := make([]uint32, n)
	copy(sn, sc.seen)
	sc.seen = sn
}

// eval computes e under env with epoch-memoized reuse. It reports false
// when a variable is unassigned.
func (sc *scratch) eval(e *Expr, env Env) (BV, bool) {
	sc.valEpoch++
	sc.ensure(0)
	return sc.evalRec(e, env)
}

func (sc *scratch) evalRec(e *Expr, env Env) (BV, bool) {
	id := e.id
	sc.ensure(id)
	if sc.valMark[id] == sc.valEpoch {
		return sc.vals[id], true
	}
	var v BV
	switch e.Op {
	case OpConst:
		v = e.Val
	case OpVar:
		val, ok := env[e]
		if !ok || val.W != e.Width {
			return BV{}, false
		}
		v = val
	case OpNot:
		a, ok := sc.evalRec(e.A, env)
		if !ok {
			return BV{}, false
		}
		v = a.Not()
	case OpExtract:
		a, ok := sc.evalRec(e.A, env)
		if !ok {
			return BV{}, false
		}
		v = a.Extract(e.Hi, e.Lo)
	case OpIte:
		c, ok := sc.evalRec(e.A, env)
		if !ok {
			return BV{}, false
		}
		if c.IsTrue() {
			v, ok = sc.evalRec(e.B, env)
		} else {
			v, ok = sc.evalRec(e.C, env)
		}
		if !ok {
			return BV{}, false
		}
	default:
		a, ok := sc.evalRec(e.A, env)
		if !ok {
			return BV{}, false
		}
		b, ok := sc.evalRec(e.B, env)
		if !ok {
			return BV{}, false
		}
		switch e.Op {
		case OpAnd:
			v = a.And(b)
		case OpOr:
			v = a.Or(b)
		case OpXor:
			v = a.Xor(b)
		case OpAdd:
			v = a.Add(b)
		case OpSub:
			v = a.Sub(b)
		case OpShl:
			if b.Hi != 0 || b.Lo >= uint64(a.W) {
				v = BV{W: a.W}
			} else {
				v = a.Shl(uint(b.Lo))
			}
		case OpLshr:
			if b.Hi != 0 || b.Lo >= uint64(a.W) {
				v = BV{W: a.W}
			} else {
				v = a.Lshr(uint(b.Lo))
			}
		case OpConcat:
			v = a.Concat(b)
		case OpEq:
			v = Bool(a.Eq(b))
		case OpUlt:
			v = Bool(a.Ult(b))
		default:
			return BV{}, false
		}
	}
	sc.valMark[id] = sc.valEpoch
	sc.vals[id] = v
	return v, true
}

// vars collects every variable node reachable from e, sorted by id.
func (sc *scratch) vars(e *Expr) []*Expr {
	sc.seenEpoch++
	var out []*Expr
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil {
			return
		}
		sc.ensure(n.id)
		if sc.seen[n.id] == sc.seenEpoch {
			return
		}
		sc.seen[n.id] = sc.seenEpoch
		if n.Op == OpVar {
			out = append(out, n)
			return
		}
		walk(n.A)
		walk(n.B)
		walk(n.C)
	}
	walk(e)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// harvest collects per-variable candidate values from comparisons,
// without allocating a visited map.
func (sc *scratch) harvest(e *Expr, add func(v *Expr, val BV)) {
	sc.seenEpoch++
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil {
			return
		}
		sc.ensure(n.id)
		if sc.seen[n.id] == sc.seenEpoch {
			return
		}
		sc.seen[n.id] = sc.seenEpoch
		if n.Op == OpEq || n.Op == OpUlt {
			va, cb := n.A, n.B
			if va.Op == OpConst {
				va, cb = cb, va
			}
			if va.Op == OpVar && cb.Op == OpConst {
				add(va, cb.Val)
				one := NewBV(cb.Val.W, 1)
				add(va, cb.Val.Add(one))
				add(va, cb.Val.Sub(one))
			}
		}
		walk(n.A)
		walk(n.B)
		walk(n.C)
	}
	walk(e)
}
