// Package sym implements the symbolic expression engine at the heart of
// goflay. It plays the role that Z3 plays in the Flay paper: terms are
// hash-consed bitvector expressions over data-plane and control-plane
// variables, aggressively simplified on construction, substituted when a
// control-plane update arrives, and queried for executability and
// constant-ness.
//
// The engine is single-sorted: booleans are bitvectors of width 1 with 1
// for true and 0 for false. Widths range from 1 to 128 bits, which covers
// every P4 header field our frontend accepts (including IPv6 addresses).
package sym

import (
	"fmt"
	"math/bits"
)

// MaxWidth is the largest supported bitvector width.
const MaxWidth = 128

// BV is a bitvector value of width W (1..128). Bits above W are always
// zero; every constructor and operation maintains that invariant. The
// value of bit i (0-indexed from the least-significant end) lives in Lo
// for i < 64 and in Hi for i >= 64.
type BV struct {
	Hi, Lo uint64
	W      uint16
}

// NewBV returns a width-w bitvector holding lo truncated to w bits.
// It panics if w is out of range; widths are validated by the type
// checker long before values are built, so a bad width is a program bug.
func NewBV(w uint16, lo uint64) BV {
	return NewBV2(w, 0, lo)
}

// NewBV2 returns a width-w bitvector from a (hi, lo) pair of 64-bit limbs,
// truncated to w bits.
func NewBV2(w uint16, hi, lo uint64) BV {
	if w < 1 || w > MaxWidth {
		panic(fmt.Sprintf("sym: invalid bitvector width %d", w))
	}
	v := BV{Hi: hi, Lo: lo, W: w}
	return v.truncate()
}

// Bool returns the canonical width-1 encoding of b.
func Bool(b bool) BV {
	if b {
		return BV{Lo: 1, W: 1}
	}
	return BV{W: 1}
}

func (v BV) truncate() BV {
	switch {
	case v.W >= 128:
		// nothing to mask
	case v.W > 64:
		v.Hi &= (1 << (v.W - 64)) - 1
	case v.W == 64:
		v.Hi = 0
	default:
		v.Hi = 0
		v.Lo &= (1 << v.W) - 1
	}
	return v
}

// IsZero reports whether every bit of v is zero.
func (v BV) IsZero() bool { return v.Hi == 0 && v.Lo == 0 }

// IsTrue reports whether v is the width-1 value 1.
func (v BV) IsTrue() bool { return v.W == 1 && v.Lo == 1 }

// IsAllOnes reports whether every one of v's W bits is set.
func (v BV) IsAllOnes() bool { return v == AllOnes(v.W) }

// AllOnes returns the width-w bitvector with every bit set.
func AllOnes(w uint16) BV {
	return NewBV2(w, ^uint64(0), ^uint64(0))
}

// Uint64 returns the low 64 bits of v. For widths <= 64 this is the
// entire value.
func (v BV) Uint64() uint64 { return v.Lo }

// Eq reports value equality (width and bits).
func (v BV) Eq(o BV) bool { return v == o }

// And returns the bitwise AND of v and o. Widths must match.
func (v BV) And(o BV) BV { v.mustMatch(o); return BV{v.Hi & o.Hi, v.Lo & o.Lo, v.W} }

// Or returns the bitwise OR of v and o. Widths must match.
func (v BV) Or(o BV) BV { v.mustMatch(o); return BV{v.Hi | o.Hi, v.Lo | o.Lo, v.W} }

// Xor returns the bitwise XOR of v and o. Widths must match.
func (v BV) Xor(o BV) BV { v.mustMatch(o); return BV{v.Hi ^ o.Hi, v.Lo ^ o.Lo, v.W} }

// Not returns the bitwise complement of v within its width.
func (v BV) Not() BV { return BV{^v.Hi, ^v.Lo, v.W}.truncate() }

// Add returns v + o modulo 2^W. Widths must match.
func (v BV) Add(o BV) BV {
	v.mustMatch(o)
	lo, carry := bits.Add64(v.Lo, o.Lo, 0)
	hi, _ := bits.Add64(v.Hi, o.Hi, carry)
	return BV{hi, lo, v.W}.truncate()
}

// Sub returns v - o modulo 2^W. Widths must match.
func (v BV) Sub(o BV) BV {
	v.mustMatch(o)
	lo, borrow := bits.Sub64(v.Lo, o.Lo, 0)
	hi, _ := bits.Sub64(v.Hi, o.Hi, borrow)
	return BV{hi, lo, v.W}.truncate()
}

// Shl returns v << n within the width; shifts of W or more yield zero.
func (v BV) Shl(n uint) BV {
	if n >= uint(v.W) {
		return BV{W: v.W}
	}
	switch {
	case n == 0:
		return v
	case n >= 64:
		return BV{Hi: v.Lo << (n - 64), W: v.W}.truncate()
	default:
		return BV{Hi: v.Hi<<n | v.Lo>>(64-n), Lo: v.Lo << n, W: v.W}.truncate()
	}
}

// Lshr returns the logical right shift v >> n; shifts of W or more yield
// zero.
func (v BV) Lshr(n uint) BV {
	if n >= uint(v.W) {
		return BV{W: v.W}
	}
	switch {
	case n == 0:
		return v
	case n >= 64:
		return BV{Lo: v.Hi >> (n - 64), W: v.W}
	default:
		return BV{Hi: v.Hi >> n, Lo: v.Lo>>n | v.Hi<<(64-n), W: v.W}
	}
}

// Ult reports whether v < o as unsigned integers. Widths must match.
func (v BV) Ult(o BV) bool {
	v.mustMatch(o)
	if v.Hi != o.Hi {
		return v.Hi < o.Hi
	}
	return v.Lo < o.Lo
}

// Concat returns the bitvector v ++ o, with v occupying the
// most-significant bits, mirroring P4's ++ operator.
func (v BV) Concat(o BV) BV {
	w := v.W + o.W
	if w > MaxWidth {
		panic(fmt.Sprintf("sym: concat width %d exceeds %d", w, MaxWidth))
	}
	return v.zext(w).Shl(uint(o.W)).Or(o.zext(w))
}

func (v BV) zext(w uint16) BV {
	if w < v.W {
		panic("sym: zext to narrower width")
	}
	return BV{v.Hi, v.Lo, w}
}

// Extract returns bits hi..lo of v (inclusive, hi >= lo) as a bitvector
// of width hi-lo+1, mirroring P4's slice operator v[hi:lo].
func (v BV) Extract(hi, lo uint16) BV {
	if hi < lo || hi >= v.W {
		panic(fmt.Sprintf("sym: extract [%d:%d] out of range for width %d", hi, lo, v.W))
	}
	shifted := v.Lshr(uint(lo))
	return BV{shifted.Hi, shifted.Lo, hi - lo + 1}.truncate()
}

// ZeroExtend returns v widened to w bits with zero fill.
func (v BV) ZeroExtend(w uint16) BV {
	if w > MaxWidth {
		panic("sym: zero-extend beyond max width")
	}
	return v.zext(w)
}

// Bit reports bit i of v.
func (v BV) Bit(i uint16) bool {
	if i >= v.W {
		return false
	}
	if i >= 64 {
		return v.Hi>>(i-64)&1 == 1
	}
	return v.Lo>>i&1 == 1
}

// PopCount returns the number of set bits.
func (v BV) PopCount() int {
	return bits.OnesCount64(v.Hi) + bits.OnesCount64(v.Lo)
}

func (v BV) mustMatch(o BV) {
	if v.W != o.W {
		panic(fmt.Sprintf("sym: width mismatch %d vs %d", v.W, o.W))
	}
}

// String renders the value as width'wHEX, e.g. 16w0x800, matching P4's
// literal syntax.
func (v BV) String() string {
	if v.Hi != 0 {
		return fmt.Sprintf("%dw0x%x%016x", v.W, v.Hi, v.Lo)
	}
	return fmt.Sprintf("%dw0x%x", v.W, v.Lo)
}
