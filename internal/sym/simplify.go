package sym

import "fmt"

// This file holds the smart constructors. Every composite node goes
// through these, so the DAG is permanently in simplified form: constant
// folding, identity and annihilator rules, double-negation and
// ite-collapsing all happen at construction time. This is the
// "preprocessing" step the paper describes (§4.1, "Processing updates
// quickly"): constant folding, common-subexpression elimination (which
// hash-consing provides by construction) and strength reduction.

func (b *Builder) mustWidth(op Op, x, y *Expr) {
	if x.Width != y.Width {
		panic(fmt.Sprintf("sym: %s width mismatch: %d vs %d (%s vs %s)", op, x.Width, y.Width, x, y))
	}
}

// orderCommutative returns the operands of a commutative operator in a
// canonical order so that a&b and b&a intern to the same node.
func orderCommutative(x, y *Expr) (*Expr, *Expr) {
	if y.id < x.id {
		return y, x
	}
	return x, y
}

// Not returns the bitwise complement of x (logical negation on width 1).
func (b *Builder) Not(x *Expr) *Expr {
	switch {
	case x.Op == OpConst:
		return b.Const(x.Val.Not())
	case x.Op == OpNot:
		return x.A // ~~x => x
	case x.Op == OpIte && x.Width == 1:
		// Push negation into boolean ite so chains keep folding.
		return b.Ite(x.A, b.Not(x.B), b.Not(x.C))
	}
	return b.intern(exprKey{op: OpNot, width: x.Width, a: x})
}

// And returns x & y.
func (b *Builder) And(x, y *Expr) *Expr {
	b.mustWidth(OpAnd, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.And(y.Val))
	}
	// Put a constant first for the identity checks below.
	if y.Op == OpConst {
		x, y = y, x
	}
	if x.Op == OpConst {
		switch {
		case x.Val.IsZero():
			return x // 0 & y => 0
		case x.Val.IsAllOnes():
			return y // all-ones & y => y
		}
	}
	if x == y {
		return x // x & x => x
	}
	if (x.Op == OpNot && x.A == y) || (y.Op == OpNot && y.A == x) {
		return b.Const(BV{W: x.Width}) // x & ~x => 0
	}
	// Boolean absorption keeps path conditions small: x & (x & y) => x & y.
	if y.Op == OpAnd && (y.A == x || y.B == x) {
		return y
	}
	if x.Op == OpAnd && (x.A == y || x.B == y) {
		return x
	}
	x, y = orderCommutative(x, y)
	return b.intern(exprKey{op: OpAnd, width: x.Width, a: x, b: y})
}

// Or returns x | y.
func (b *Builder) Or(x, y *Expr) *Expr {
	b.mustWidth(OpOr, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Or(y.Val))
	}
	if y.Op == OpConst {
		x, y = y, x
	}
	if x.Op == OpConst {
		switch {
		case x.Val.IsZero():
			return y // 0 | y => y
		case x.Val.IsAllOnes():
			return x // all-ones | y => all-ones
		}
	}
	if x == y {
		return x
	}
	if (x.Op == OpNot && x.A == y) || (y.Op == OpNot && y.A == x) {
		return b.Const(AllOnes(x.Width)) // x | ~x => all-ones
	}
	if y.Op == OpOr && (y.A == x || y.B == x) {
		return y
	}
	if x.Op == OpOr && (x.A == y || x.B == y) {
		return x
	}
	x, y = orderCommutative(x, y)
	return b.intern(exprKey{op: OpOr, width: x.Width, a: x, b: y})
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y *Expr) *Expr {
	b.mustWidth(OpXor, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Xor(y.Val))
	}
	if y.Op == OpConst {
		x, y = y, x
	}
	if x.Op == OpConst {
		switch {
		case x.Val.IsZero():
			return y // 0 ^ y => y
		case x.Val.IsAllOnes():
			return b.Not(y) // all-ones ^ y => ~y
		}
	}
	if x == y {
		return b.Const(BV{W: x.Width}) // x ^ x => 0
	}
	x, y = orderCommutative(x, y)
	return b.intern(exprKey{op: OpXor, width: x.Width, a: x, b: y})
}

// Add returns x + y mod 2^W.
func (b *Builder) Add(x, y *Expr) *Expr {
	b.mustWidth(OpAdd, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Add(y.Val))
	}
	if y.Op == OpConst {
		x, y = y, x
	}
	if x.Op == OpConst && x.Val.IsZero() {
		return y // 0 + y => y
	}
	x, y = orderCommutative(x, y)
	return b.intern(exprKey{op: OpAdd, width: x.Width, a: x, b: y})
}

// Sub returns x - y mod 2^W.
func (b *Builder) Sub(x, y *Expr) *Expr {
	b.mustWidth(OpSub, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Sub(y.Val))
	}
	if y.Op == OpConst && y.Val.IsZero() {
		return x // x - 0 => x
	}
	if x == y {
		return b.Const(BV{W: x.Width}) // x - x => 0
	}
	return b.intern(exprKey{op: OpSub, width: x.Width, a: x, b: y})
}

// Shl returns x << y (shift amount read as unsigned; amounts >= width
// yield zero, matching P4 semantics for bit<W>).
func (b *Builder) Shl(x, y *Expr) *Expr {
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Shl(uint(y.Val.Uint64())))
	}
	if y.Op == OpConst {
		if y.Val.IsZero() {
			return x
		}
		if y.Val.Hi != 0 || y.Val.Lo >= uint64(x.Width) {
			return b.Const(BV{W: x.Width})
		}
	}
	if x.Op == OpConst && x.Val.IsZero() {
		return x
	}
	return b.intern(exprKey{op: OpShl, width: x.Width, a: x, b: y})
}

// Lshr returns the logical right shift x >> y.
func (b *Builder) Lshr(x, y *Expr) *Expr {
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Lshr(uint(y.Val.Uint64())))
	}
	if y.Op == OpConst {
		if y.Val.IsZero() {
			return x
		}
		if y.Val.Hi != 0 || y.Val.Lo >= uint64(x.Width) {
			return b.Const(BV{W: x.Width})
		}
	}
	if x.Op == OpConst && x.Val.IsZero() {
		return x
	}
	return b.intern(exprKey{op: OpLshr, width: x.Width, a: x, b: y})
}

// Concat returns x ++ y with x in the most-significant position.
func (b *Builder) Concat(x, y *Expr) *Expr {
	w := x.Width + y.Width
	if w > MaxWidth {
		panic(fmt.Sprintf("sym: concat width %d exceeds %d", w, MaxWidth))
	}
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(x.Val.Concat(y.Val))
	}
	// (a ++ b)[…] fusions are handled in Extract; here fold nested
	// constant concats left-to-right.
	return b.intern(exprKey{op: OpConcat, width: w, a: x, b: y})
}

// Extract returns x[hi:lo].
func (b *Builder) Extract(x *Expr, hi, lo uint16) *Expr {
	if hi < lo || hi >= x.Width {
		panic(fmt.Sprintf("sym: extract [%d:%d] out of range for width %d", hi, lo, x.Width))
	}
	if hi == x.Width-1 && lo == 0 {
		return x // full-range slice
	}
	switch x.Op {
	case OpConst:
		return b.Const(x.Val.Extract(hi, lo))
	case OpExtract:
		// (x[h:l])[h2:l2] => x[h2+l : l2+l]
		return b.Extract(x.A, hi+x.Lo, lo+x.Lo)
	case OpConcat:
		// Route the slice into the side(s) of the concat it touches.
		lowW := x.B.Width
		switch {
		case hi < lowW:
			return b.Extract(x.B, hi, lo)
		case lo >= lowW:
			return b.Extract(x.A, hi-lowW, lo-lowW)
		}
	}
	return b.intern(exprKey{op: OpExtract, width: hi - lo + 1, a: x, hi: hi, lo: lo})
}

// ZeroExtend widens x to w bits with zero fill (a constant concat).
func (b *Builder) ZeroExtend(x *Expr, w uint16) *Expr {
	if w == x.Width {
		return x
	}
	if w < x.Width {
		panic("sym: zero-extend to narrower width")
	}
	return b.Concat(b.Const(BV{W: w - x.Width}.truncate()), x)
}

// Eq returns the width-1 comparison x == y.
func (b *Builder) Eq(x, y *Expr) *Expr {
	b.mustWidth(OpEq, x, y)
	if x == y {
		return b.True()
	}
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(Bool(x.Val.Eq(y.Val)))
	}
	if y.Op == OpConst {
		x, y = y, x // constant first
	}
	if x.Op == OpConst {
		// Width-1 equalities reduce to the operand or its negation.
		if x.Width == 1 {
			if x.Val.IsTrue() {
				return y
			}
			return b.Not(y)
		}
		// k == ite(c, t, e) distributes when a branch is constant; this
		// is the rule that folds table-entry chains (Fig. 5b) into plain
		// conditions.
		if y.Op == OpIte {
			tc, ec := y.B.Op == OpConst, y.C.Op == OpConst
			switch {
			case tc && ec:
				tEq, eEq := y.B.Val.Eq(x.Val), y.C.Val.Eq(x.Val)
				switch {
				case tEq && eEq:
					return b.True()
				case tEq:
					return y.A
				case eEq:
					return b.Not(y.A)
				default:
					return b.False()
				}
			case tc && !y.B.Val.Eq(x.Val):
				// k == ite(c, t≠k, e) => ~c & (k == e)
				return b.And(b.Not(y.A), b.Eq(x, y.C))
			case ec && !y.C.Val.Eq(x.Val):
				// k == ite(c, t, e≠k) => c & (k == t)
				return b.And(y.A, b.Eq(x, y.B))
			}
		}
	}
	x, y = orderCommutative(x, y)
	return b.intern(exprKey{op: OpEq, width: 1, a: x, b: y})
}

// Ne returns x != y.
func (b *Builder) Ne(x, y *Expr) *Expr { return b.Not(b.Eq(x, y)) }

// Ult returns the width-1 unsigned comparison x < y.
func (b *Builder) Ult(x, y *Expr) *Expr {
	b.mustWidth(OpUlt, x, y)
	if x.Op == OpConst && y.Op == OpConst {
		return b.Const(Bool(x.Val.Ult(y.Val)))
	}
	if x == y {
		return b.False()
	}
	if y.Op == OpConst && y.Val.IsZero() {
		return b.False() // nothing is below zero
	}
	if x.Op == OpConst && x.Val.IsAllOnes() {
		return b.False() // nothing is above all-ones
	}
	return b.intern(exprKey{op: OpUlt, width: 1, a: x, b: y})
}

// Ule returns x <= y.
func (b *Builder) Ule(x, y *Expr) *Expr { return b.Not(b.Ult(y, x)) }

// Ugt returns x > y.
func (b *Builder) Ugt(x, y *Expr) *Expr { return b.Ult(y, x) }

// Uge returns x >= y.
func (b *Builder) Uge(x, y *Expr) *Expr { return b.Not(b.Ult(x, y)) }

// Ite returns if cond then t else e. cond must have width 1 and the
// branches must agree on width.
func (b *Builder) Ite(cond, t, e *Expr) *Expr {
	if cond.Width != 1 {
		panic(fmt.Sprintf("sym: ite condition has width %d", cond.Width))
	}
	b.mustWidth(OpIte, t, e)
	switch {
	case cond.IsTrue():
		return t
	case cond.IsFalse():
		return e
	case t == e:
		return t
	}
	if cond.Op == OpNot {
		cond, t, e = cond.A, e, t // ite(~c, t, e) => ite(c, e, t)
	}
	if t.Width == 1 {
		// Boolean-valued ite reduces to connectives, which the And/Or
		// rules then keep folding.
		switch {
		case t.IsTrue() && e.IsFalse():
			return cond
		case t.IsFalse() && e.IsTrue():
			return b.Not(cond)
		case t.IsTrue():
			return b.Or(cond, e)
		case t.IsFalse():
			return b.And(b.Not(cond), e)
		case e.IsTrue():
			return b.Or(b.Not(cond), t)
		case e.IsFalse():
			return b.And(cond, t)
		}
	}
	// Nested ites sharing the exact condition collapse.
	if t.Op == OpIte && t.A == cond {
		t = t.B
	}
	if e.Op == OpIte && e.A == cond {
		e = e.C
	}
	if t == e {
		return t
	}
	return b.intern(exprKey{op: OpIte, width: t.Width, a: cond, b: t, c: e})
}

// AndAll folds a conjunction over width-1 terms; the empty conjunction is
// true.
func (b *Builder) AndAll(xs ...*Expr) *Expr {
	acc := b.True()
	for _, x := range xs {
		acc = b.And(acc, x)
	}
	return acc
}

// OrAll folds a disjunction over width-1 terms; the empty disjunction is
// false.
func (b *Builder) OrAll(xs ...*Expr) *Expr {
	acc := b.False()
	for _, x := range xs {
		acc = b.Or(acc, x)
	}
	return acc
}

// Implies returns (~x | y) on width-1 terms.
func (b *Builder) Implies(x, y *Expr) *Expr { return b.Or(b.Not(x), y) }
