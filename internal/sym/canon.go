package sym

import (
	"encoding/binary"
	"fmt"
)

// Canonical structural hashing and a portable node encoding.
//
// Hash-consing gives pointer identity *within* one Builder, but pointer
// values are meaningless across processes. Canon is the cross-process
// counterpart: a 128-bit structural hash computed once at intern time
// from the node's operator payload and its children's canons — no
// builder-assigned ids enter the hash, so the same structure always
// hashes the same regardless of construction order, builder instance,
// or process. The specialization-query cache keys on it, and snapshots
// use it to re-identify cache entries after a warm restart.

// Canon is the 128-bit canonical structural hash of an expression.
// Equal structures have equal canons in every run; the converse holds
// up to hash collision (2^-128 per pair, which the collision-sanity
// test in canon_test.go spot-checks on the enumerable small domain).
type Canon struct {
	Hi, Lo uint64
}

// String renders the canon as 32 hex digits (the golden-file format).
func (c Canon) String() string { return fmt.Sprintf("%016x%016x", c.Hi, c.Lo) }

// Canon returns the node's canonical structural hash, computed at
// intern time (reading it is free).
func (e *Expr) Canon() Canon { return e.canon }

// Mix64 is a splitmix64-style avalanche: every input bit influences
// every output bit. Shared by the fingerprinting layers above sym.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// canonHasher accumulates 64-bit words into two independently mixed
// lanes. The lanes use different injection functions (xor vs add with a
// golden-ratio multiply), so the pair behaves as one 128-bit state.
type canonHasher struct{ a, b uint64 }

func newCanonHasher() canonHasher {
	return canonHasher{a: 0xcbf29ce484222325, b: 0x9e3779b97f4a7c15}
}

func (h *canonHasher) word(x uint64) {
	h.a = Mix64(h.a ^ x)
	h.b = Mix64(h.b + x*0x9e3779b97f4a7c15 + 1)
}

func (h *canonHasher) sum() Canon { return Canon{Hi: h.a, Lo: h.b} }

// canonOf computes a node's canon from its intern key. Children are
// already interned, so their canons are available; the node id is
// deliberately excluded.
func canonOf(k exprKey) Canon {
	h := newCanonHasher()
	h.word(uint64(k.op)<<48 | uint64(k.width)<<32 | uint64(k.hi)<<16 | uint64(k.lo))
	switch k.op {
	case OpConst:
		h.word(k.valHi)
		h.word(k.valLo)
	case OpVar:
		h.word(uint64(k.class)<<32 | uint64(len(k.name)))
		for i := 0; i < len(k.name); i += 8 {
			var w uint64
			for j := i; j < i+8 && j < len(k.name); j++ {
				w = w<<8 | uint64(k.name[j])
			}
			h.word(w)
		}
	}
	for _, ch := range [...]*Expr{k.a, k.b, k.c} {
		if ch != nil {
			h.word(ch.canon.Hi)
			h.word(ch.canon.Lo)
		}
	}
	return h.sum()
}

// ---------------------------------------------------------------------------
// Portable encoding

// opArity returns an operator's child count, or -1 for unknown ops.
func opArity(op Op) int {
	switch op {
	case OpConst, OpVar:
		return 0
	case OpNot, OpExtract:
		return 1
	case OpIte:
		return 3
	case OpAnd, OpOr, OpXor, OpAdd, OpSub, OpShl, OpLshr, OpConcat, OpEq, OpUlt:
		return 2
	default:
		return -1
	}
}

// maxDecodeNodes bounds DecodeExprs against hostile length prefixes.
const maxDecodeNodes = 1 << 20

// maxVarNameLen bounds variable names in the wire format.
const maxVarNameLen = 4096

// EncodeExprs serializes the DAG reachable from roots into a portable
// byte form: nodes in children-first topological order, each child
// reference an index into the already-emitted prefix. Shared subterms
// are emitted once, so the encoding preserves the DAG shape. Nil roots
// are rejected.
func EncodeExprs(roots []*Expr) ([]byte, error) {
	var order []*Expr
	index := make(map[*Expr]uint64)
	var visit func(e *Expr)
	visit = func(e *Expr) {
		if _, ok := index[e]; ok {
			return
		}
		for _, ch := range [...]*Expr{e.A, e.B, e.C} {
			if ch != nil {
				visit(ch)
			}
		}
		index[e] = uint64(len(order))
		order = append(order, e)
	}
	for _, r := range roots {
		if r == nil {
			return nil, fmt.Errorf("sym: cannot encode nil expression")
		}
		visit(r)
	}
	buf := binary.AppendUvarint(nil, uint64(len(order)))
	for _, e := range order {
		buf = append(buf, byte(e.Op))
		buf = binary.AppendUvarint(buf, uint64(e.Width))
		switch e.Op {
		case OpConst:
			buf = binary.AppendUvarint(buf, e.Val.Hi)
			buf = binary.AppendUvarint(buf, e.Val.Lo)
		case OpVar:
			buf = append(buf, byte(e.Class))
			buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
			buf = append(buf, e.Name...)
		case OpExtract:
			buf = binary.AppendUvarint(buf, uint64(e.Hi))
			buf = binary.AppendUvarint(buf, uint64(e.Lo))
		}
		for _, ch := range [...]*Expr{e.A, e.B, e.C} {
			if ch != nil {
				buf = binary.AppendUvarint(buf, index[ch])
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(roots)))
	for _, r := range roots {
		buf = binary.AppendUvarint(buf, index[r])
	}
	return buf, nil
}

// exprDecoder walks an encoded buffer with sticky error state.
type exprDecoder struct {
	buf []byte
	err error
}

func (d *exprDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sym: decode: "+format, args...)
	}
}

func (d *exprDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated or malformed varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *exprDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("truncated input")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// DecodeExprs rebuilds an EncodeExprs buffer inside the given builder
// and returns the root nodes. Nodes are interned *raw* — exactly the
// structure on the wire, no re-simplification — so a decoded node's
// canon (and print form) matches the encoded one bit-for-bit. Every
// structural invariant the builder's smart constructors would have
// enforced is re-validated here; malformed input yields an error, never
// a panic (FuzzSnapshot holds the loader to that).
func DecodeExprs(b *Builder, data []byte) ([]*Expr, error) {
	d := &exprDecoder{buf: data}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxDecodeNodes {
		return nil, fmt.Errorf("sym: decode: node count %d exceeds limit", n)
	}
	nodes := make([]*Expr, 0, n)
	child := func() *Expr {
		i := d.uvarint()
		if d.err != nil {
			return nil
		}
		if i >= uint64(len(nodes)) {
			d.fail("child reference %d out of range (have %d nodes)", i, len(nodes))
			return nil
		}
		return nodes[i]
	}
	for len(nodes) < int(n) {
		op := Op(d.byte())
		width := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		arity := opArity(op)
		if arity < 0 {
			return nil, fmt.Errorf("sym: decode: unknown operator %d", op)
		}
		if width < 1 || width > MaxWidth {
			return nil, fmt.Errorf("sym: decode: invalid width %d", width)
		}
		w := uint16(width)
		k := exprKey{op: op, width: w}
		switch op {
		case OpConst:
			hi, lo := d.uvarint(), d.uvarint()
			if d.err != nil {
				return nil, d.err
			}
			v := NewBV2(w, hi, lo)
			if v.Hi != hi || v.Lo != lo {
				return nil, fmt.Errorf("sym: decode: constant %x:%x overflows width %d", hi, lo, w)
			}
			k.valHi, k.valLo = hi, lo
		case OpVar:
			class := VarClass(d.byte())
			nameLen := d.uvarint()
			if d.err != nil {
				return nil, d.err
			}
			if class > CtrlVar {
				return nil, fmt.Errorf("sym: decode: invalid variable class %d", class)
			}
			if nameLen == 0 || nameLen > maxVarNameLen || nameLen > uint64(len(d.buf)) {
				return nil, fmt.Errorf("sym: decode: invalid variable name length %d", nameLen)
			}
			k.class = class
			k.name = string(d.buf[:nameLen])
			d.buf = d.buf[nameLen:]
		case OpExtract:
			hi, lo := d.uvarint(), d.uvarint()
			if hi > uint64(MaxWidth) || lo > hi {
				d.fail("invalid extract bounds [%d:%d]", hi, lo)
			}
			k.hi, k.lo = uint16(hi), uint16(lo)
		}
		switch arity {
		case 1:
			k.a = child()
		case 2:
			k.a, k.b = child(), child()
		case 3:
			k.a, k.b, k.c = child(), child(), child()
		}
		if d.err != nil {
			return nil, d.err
		}
		if err := validateNode(k); err != nil {
			return nil, err
		}
		nodes = append(nodes, b.intern(k))
	}
	nroots := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nroots > n {
		return nil, fmt.Errorf("sym: decode: root count %d exceeds node count %d", nroots, n)
	}
	roots := make([]*Expr, 0, nroots)
	for uint64(len(roots)) < nroots {
		r := child()
		if d.err != nil {
			return nil, d.err
		}
		roots = append(roots, r)
	}
	if d.err == nil && len(d.buf) != 0 {
		return nil, fmt.Errorf("sym: decode: %d trailing bytes after root table", len(d.buf))
	}
	return roots, d.err
}

// validateNode enforces the width discipline the smart constructors
// guarantee, so raw-interned nodes are indistinguishable from built
// ones and downstream evaluation cannot hit width panics.
func validateNode(k exprKey) error {
	bad := func(why string) error {
		return fmt.Errorf("sym: decode: %s node violates width discipline: %s", k.op, why)
	}
	switch k.op {
	case OpConst, OpVar:
		return nil
	case OpNot:
		if k.a.Width != k.width {
			return bad("operand width mismatch")
		}
	case OpExtract:
		if k.a.Width <= k.hi {
			return bad("extract bound exceeds operand width")
		}
		if k.width != k.hi-k.lo+1 {
			return bad("result width is not hi-lo+1")
		}
	case OpConcat:
		if uint32(k.a.Width)+uint32(k.b.Width) != uint32(k.width) {
			return bad("result width is not the operand width sum")
		}
	case OpEq, OpUlt:
		if k.a.Width != k.b.Width {
			return bad("operand width mismatch")
		}
		if k.width != 1 {
			return bad("comparison result must be width 1")
		}
	case OpIte:
		if k.a.Width != 1 {
			return bad("condition must be width 1")
		}
		if k.b.Width != k.width || k.c.Width != k.width {
			return bad("branch width mismatch")
		}
	default: // binary bitwise/arithmetic/shift
		if k.a.Width != k.width || k.b.Width != k.width {
			return bad("operand width mismatch")
		}
	}
	return nil
}
