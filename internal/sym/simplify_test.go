package sym

import (
	"math/rand"
	"testing"
)

// rawNode is an unsimplified specification of an expression, used as the
// ground truth in the soundness property test: the simplifier may rewrite
// however it likes, but the built expression must evaluate identically to
// the raw tree under every assignment.
type rawNode struct {
	op     Op
	w      uint16
	val    BV
	name   string
	class  VarClass
	hi, lo uint16
	kids   []*rawNode
}

func (n *rawNode) build(b *Builder) *Expr {
	switch n.op {
	case OpConst:
		return b.Const(n.val)
	case OpVar:
		return b.Var(n.class, n.name, n.w)
	case OpNot:
		return b.Not(n.kids[0].build(b))
	case OpExtract:
		return b.Extract(n.kids[0].build(b), n.hi, n.lo)
	case OpIte:
		return b.Ite(n.kids[0].build(b), n.kids[1].build(b), n.kids[2].build(b))
	}
	x, y := n.kids[0].build(b), n.kids[1].build(b)
	switch n.op {
	case OpAnd:
		return b.And(x, y)
	case OpOr:
		return b.Or(x, y)
	case OpXor:
		return b.Xor(x, y)
	case OpAdd:
		return b.Add(x, y)
	case OpSub:
		return b.Sub(x, y)
	case OpShl:
		return b.Shl(x, y)
	case OpLshr:
		return b.Lshr(x, y)
	case OpConcat:
		return b.Concat(x, y)
	case OpEq:
		return b.Eq(x, y)
	case OpUlt:
		return b.Ult(x, y)
	}
	panic("unreachable")
}

// eval computes the raw tree's value directly from BV semantics.
func (n *rawNode) eval(env map[string]BV) BV {
	switch n.op {
	case OpConst:
		return n.val
	case OpVar:
		return env[n.name]
	case OpNot:
		return n.kids[0].eval(env).Not()
	case OpExtract:
		return n.kids[0].eval(env).Extract(n.hi, n.lo)
	case OpIte:
		if n.kids[0].eval(env).IsTrue() {
			return n.kids[1].eval(env)
		}
		return n.kids[2].eval(env)
	}
	x, y := n.kids[0].eval(env), n.kids[1].eval(env)
	switch n.op {
	case OpAnd:
		return x.And(y)
	case OpOr:
		return x.Or(y)
	case OpXor:
		return x.Xor(y)
	case OpAdd:
		return x.Add(y)
	case OpSub:
		return x.Sub(y)
	case OpShl:
		if y.Hi != 0 || y.Lo >= uint64(x.W) {
			return BV{W: x.W}
		}
		return x.Shl(uint(y.Lo))
	case OpLshr:
		if y.Hi != 0 || y.Lo >= uint64(x.W) {
			return BV{W: x.W}
		}
		return x.Lshr(uint(y.Lo))
	case OpConcat:
		return x.Concat(y)
	case OpEq:
		return Bool(x.Eq(y))
	case OpUlt:
		return Bool(x.Ult(y))
	}
	panic("unreachable")
}

// genRaw builds a random expression of the requested width. Variables are
// drawn from a small pool per width so sharing (and therefore the
// identity rules) gets exercised.
func genRaw(r *rand.Rand, w uint16, depth int) *rawNode {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return &rawNode{op: OpConst, w: w, val: NewBV2(w, r.Uint64(), r.Uint64())}
		}
		names := []string{"a", "b", "c"}
		cls := DataVar
		if r.Intn(3) == 0 {
			cls = CtrlVar
		}
		return &rawNode{op: OpVar, w: w, name: names[r.Intn(len(names))] + widthTag(w), class: cls}
	}
	switch r.Intn(12) {
	case 0:
		return &rawNode{op: OpNot, w: w, kids: []*rawNode{genRaw(r, w, depth-1)}}
	case 1:
		return &rawNode{op: OpAnd, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 2:
		return &rawNode{op: OpOr, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 3:
		return &rawNode{op: OpXor, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 4:
		return &rawNode{op: OpAdd, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 5:
		return &rawNode{op: OpSub, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 6:
		return &rawNode{op: OpShl, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 7:
		return &rawNode{op: OpLshr, w: w, kids: []*rawNode{genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 8:
		// Extract width w from a wider inner expression.
		if w < MaxWidth {
			extra := uint16(1 + r.Intn(int(MaxWidth-w)))
			innerW := w + extra
			lo := uint16(r.Intn(int(extra) + 1))
			inner := genRaw(r, innerW, depth-1)
			return &rawNode{op: OpExtract, w: w, hi: lo + w - 1, lo: lo, kids: []*rawNode{inner}}
		}
		return genRaw(r, w, depth-1)
	case 9:
		return &rawNode{op: OpIte, w: w, kids: []*rawNode{genRaw(r, 1, depth-1), genRaw(r, w, depth-1), genRaw(r, w, depth-1)}}
	case 10:
		if w == 1 {
			w2 := uint16(1 + r.Intn(16))
			return &rawNode{op: OpEq, w: 1, kids: []*rawNode{genRaw(r, w2, depth-1), genRaw(r, w2, depth-1)}}
		}
		return genRaw(r, w, depth-1)
	default:
		if w == 1 {
			w2 := uint16(1 + r.Intn(16))
			return &rawNode{op: OpUlt, w: 1, kids: []*rawNode{genRaw(r, w2, depth-1), genRaw(r, w2, depth-1)}}
		}
		return genRaw(r, w, depth-1)
	}
}

func widthTag(w uint16) string { return "_" + NewBV(8, uint64(w%251)+1).String() }

// collectRawVars gathers name→width of every variable in the tree.
func collectRawVars(n *rawNode, out map[string]uint16) {
	if n.op == OpVar {
		out[n.name] = n.w
	}
	for _, k := range n.kids {
		collectRawVars(k, out)
	}
}

// TestSimplifierPreservesSemantics is the core soundness property: for
// random expression trees and random assignments, the hash-consed,
// aggressively simplified DAG evaluates exactly like the raw tree.
func TestSimplifierPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	widths := []uint16{1, 1, 8, 16, 48, 64, 100, 128}
	for trial := 0; trial < 400; trial++ {
		w := widths[r.Intn(len(widths))]
		raw := genRaw(r, w, 4)
		b := NewBuilder()
		built := raw.build(b)
		if built.Width != w {
			t.Fatalf("trial %d: built width %d, want %d", trial, built.Width, w)
		}
		names := map[string]uint16{}
		collectRawVars(raw, names)
		for round := 0; round < 20; round++ {
			strEnv := make(map[string]BV, len(names))
			env := make(Env, len(names))
			for name, vw := range names {
				v := NewBV2(vw, r.Uint64(), r.Uint64())
				strEnv[name] = v
				for _, cls := range []VarClass{DataVar, CtrlVar} {
					env[b.Var(cls, name, vw)] = v
				}
			}
			want := raw.eval(strEnv)
			got, err := Eval(built, env)
			if err != nil {
				t.Fatalf("trial %d: eval error: %v (expr %s)", trial, err, built)
			}
			if got != want {
				t.Fatalf("trial %d round %d: simplified %s evaluates to %s, raw gives %s",
					trial, round, built, got, want)
			}
		}
	}
}

func TestHashConsingDeduplicates(t *testing.T) {
	b := NewBuilder()
	x := b.Data("x", 8)
	y := b.Data("y", 8)
	e1 := b.Add(x, y)
	e2 := b.Add(y, x) // commutative normalization
	if e1 != e2 {
		t.Fatal("x+y and y+x should intern to the same node")
	}
	if b.Data("x", 8) != x {
		t.Fatal("same variable should intern to the same node")
	}
	if b.Data("x", 16) == x {
		t.Fatal("different width must be a different node")
	}
	if b.Ctrl("x", 8) == x {
		t.Fatal("different class must be a different node")
	}
}

func TestSimplifierAlgebra(t *testing.T) {
	b := NewBuilder()
	x := b.Data("x", 16)
	y := b.Data("y", 16)
	zero := b.ConstUint(16, 0)
	ones := b.Const(AllOnes(16))
	cond := b.Data("c", 1)

	cases := []struct {
		got, want *Expr
		name      string
	}{
		{b.And(x, zero), zero, "x&0"},
		{b.And(x, ones), x, "x&ones"},
		{b.And(x, x), x, "x&x"},
		{b.And(x, b.Not(x)), zero, "x&~x"},
		{b.Or(x, zero), x, "x|0"},
		{b.Or(x, ones), ones, "x|ones"},
		{b.Or(x, b.Not(x)), ones, "x|~x"},
		{b.Xor(x, x), zero, "x^x"},
		{b.Xor(x, zero), x, "x^0"},
		{b.Xor(x, ones), b.Not(x), "x^ones"},
		{b.Add(x, zero), x, "x+0"},
		{b.Sub(x, zero), x, "x-0"},
		{b.Sub(x, x), zero, "x-x"},
		{b.Not(b.Not(x)), x, "~~x"},
		{b.Shl(x, zero), x, "x<<0"},
		{b.Shl(x, b.ConstUint(16, 16)), zero, "x<<16"},
		{b.Lshr(x, b.ConstUint(16, 99)), zero, "x>>99"},
		{b.Eq(x, x), b.True(), "x==x"},
		{b.Ult(x, x), b.False(), "x<x"},
		{b.Ult(x, zero), b.False(), "x<0"},
		{b.Ite(b.True(), x, y), x, "ite(true)"},
		{b.Ite(b.False(), x, y), y, "ite(false)"},
		{b.Ite(cond, x, x), x, "ite same branches"},
		{b.Ite(cond, b.True(), b.False()), cond, "ite(c,1,0)"},
		{b.Ite(cond, b.False(), b.True()), b.Not(cond), "ite(c,0,1)"},
		{b.Ite(b.Not(cond), x, y), b.Ite(cond, y, x), "ite(~c,x,y)"},
		{b.Extract(x, 15, 0), x, "full slice"},
		{b.Extract(b.Concat(y, x), 15, 0), x, "slice of concat low"},
		{b.Extract(b.Concat(y, x), 31, 16), y, "slice of concat high"},
		{b.And(x, b.And(x, y)), b.And(x, y), "absorption"},
		{b.AndAll(), b.True(), "empty conjunction"},
		{b.OrAll(), b.False(), "empty disjunction"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

// TestEqOfIteFolding checks the table-chain folding rule the paper's
// Fig. 5b depends on: a constant compared against a constant-branched ite
// reduces to the branch condition.
func TestEqOfIteFolding(t *testing.T) {
	b := NewBuilder()
	key := b.Data("h.eth.dst", 48)
	entry := b.ConstUint(48, 0xDEADBEEF)
	actSet := b.ConstUint(8, 1)
	actNoop := b.ConstUint(8, 0)
	// |t.action| after one entry: ite(key == 0xDEADBEEF, set, noop)
	actionExpr := b.Ite(b.Eq(key, entry), actSet, actNoop)

	if got := b.Eq(actionExpr, actSet); got != b.Eq(key, entry) {
		t.Fatalf("eq-of-ite should fold to the match condition, got %s", got)
	}
	if got := b.Eq(actionExpr, actNoop); got != b.Not(b.Eq(key, entry)) {
		t.Fatalf("eq-of-ite else case should fold to negated match, got %s", got)
	}
	if got := b.Eq(actionExpr, b.ConstUint(8, 7)); !got.IsFalse() {
		t.Fatalf("comparison with unreachable action should fold to false, got %s", got)
	}
}

func TestExprString(t *testing.T) {
	b := NewBuilder()
	e := b.Ite(b.Eq(b.Data("k", 8), b.ConstUint(8, 3)), b.Ctrl("t.p", 8), b.ConstUint(8, 0))
	want := "((@k@ == 8w0x3) ? |t.p| : 8w0x0)"
	if e.String() != want {
		t.Fatalf("String() = %q, want %q", e.String(), want)
	}
}

func TestSizeAndVars(t *testing.T) {
	b := NewBuilder()
	x := b.Data("x", 8)
	p := b.Ctrl("p", 8)
	e := b.Add(b.And(x, p), b.And(x, p)) // shared subterm
	if Size(e) != 4 {                    // x, p, and, add
		t.Fatalf("Size = %d, want 4", Size(e))
	}
	if cv := CtrlVars(e); len(cv) != 1 || cv[0] != p {
		t.Fatalf("CtrlVars = %v", cv)
	}
	if dv := DataVars(e); len(dv) != 1 || dv[0] != x {
		t.Fatalf("DataVars = %v", dv)
	}
	if !HasCtrlVars(e) {
		t.Fatal("HasCtrlVars should be true")
	}
	if HasCtrlVars(x) {
		t.Fatal("HasCtrlVars(x) should be false")
	}
	if len(AllVars(e)) != 2 {
		t.Fatal("AllVars should report both")
	}
}
