// Golden and property tests for the canonical expression hash — the
// half of the query-cache key that must be stable across builders,
// processes and releases (snapshots embed it). The golden file pins the
// hash values of a fixed expression menagerie: an algorithm change that
// silently alters them would orphan every warm cache carried in a
// snapshot, so changing canon_golden.txt must be a deliberate act (run
// with -update-canon after bumping the snapshot magic).
package sym_test

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/sym"
)

var updateCanon = flag.Bool("update-canon", false, "rewrite testdata/canon_golden.txt")

const canonGoldenPath = "testdata/canon_golden.txt"

// canonMenagerie builds one named expression per structural feature the
// hash folds over: every op, const values near width boundaries, both
// variable classes, shared subtrees, and nesting.
func canonMenagerie(b *sym.Builder) []struct {
	name string
	expr *sym.Expr
} {
	v3 := b.Data("v0", 3)
	v5 := b.Data("v1", 5)
	c48 := b.Ctrl("tbl.key", 48)
	wide := b.Data("wide", 128)
	return []struct {
		name string
		expr *sym.Expr
	}{
		{"const-zero-w1", b.Const(sym.BV{W: 1})},
		{"const-ones-w64", b.Const(sym.AllOnes(64))},
		{"const-ones-w128", b.Const(sym.AllOnes(128))},
		{"var-data-w3", v3},
		{"var-ctrl-w48", c48},
		{"not", b.Not(v3)},
		{"and", b.And(v3, b.ConstUint(3, 5))},
		{"or", b.Or(v5, b.ConstUint(5, 9))},
		{"xor", b.Xor(v3, b.ConstUint(3, 6))},
		{"add", b.Add(v5, b.ConstUint(5, 1))},
		{"sub", b.Sub(v5, b.ConstUint(5, 1))},
		{"shl", b.Shl(v5, b.ConstUint(5, 2))},
		{"lshr", b.Lshr(v5, b.ConstUint(5, 2))},
		{"concat", b.Concat(v3, v5)},
		{"extract", b.Extract(c48, 15, 0)},
		{"eq", b.Eq(v3, b.ConstUint(3, 2))},
		{"ult", b.Ult(v5, b.ConstUint(5, 30))},
		{"ite", b.Ite(b.Eq(v3, b.ConstUint(3, 2)), v5, b.ConstUint(5, 7))},
		{"shared-subtree", b.And(b.Not(v3), b.Not(v3))},
		{"nested", b.Eq(b.Extract(b.Concat(v3, v5), 6, 2), b.ConstUint(5, 3))},
		{"wide-extract", b.Extract(wide, 127, 64)},
	}
}

func TestCanonGolden(t *testing.T) {
	b := sym.NewBuilder()
	menagerie := canonMenagerie(b)

	if *updateCanon {
		var sb strings.Builder
		for _, m := range menagerie {
			fmt.Fprintf(&sb, "%s %s\n", m.name, m.expr.Canon())
		}
		if err := os.WriteFile(canonGoldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(canonGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-canon to create): %v", err)
	}
	defer f.Close()
	golden := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, hash, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if ok {
			golden[name] = hash
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(golden) != len(menagerie) {
		t.Fatalf("golden file has %d entries, menagerie has %d", len(golden), len(menagerie))
	}
	for _, m := range menagerie {
		want, ok := golden[m.name]
		if !ok {
			t.Errorf("%s: missing from golden file", m.name)
			continue
		}
		if got := m.expr.Canon().String(); got != want {
			t.Errorf("%s: canon %s, golden %s (a hash change orphans snapshot caches)",
				m.name, got, want)
		}
	}
}

// TestCanonBuilderIndependence: the same structure built in different
// builders, in different orders, with unrelated interning traffic in
// between, must hash identically — builder ids must never leak into the
// hash.
func TestCanonBuilderIndependence(t *testing.T) {
	b1 := sym.NewBuilder()
	m1 := canonMenagerie(b1)

	b2 := sym.NewBuilder()
	// Pollute b2's id space first so equal structures get different
	// interning ids than in b1.
	for i := 0; i < 100; i++ {
		b2.Data(fmt.Sprintf("noise%d", i), uint16(i%64)+1)
	}
	m2 := canonMenagerie(b2)
	for i := range m1 {
		// Build order reversed relative to b1 would be better still, but
		// the menagerie builder interns depth-first already; the noise
		// vars guarantee differing ids.
		if c1, c2 := m1[i].expr.Canon(), m2[i].expr.Canon(); c1 != c2 {
			t.Errorf("%s: canon differs across builders: %s vs %s", m1[i].name, c1, c2)
		}
	}
}

// TestCanonDistinguishes: structurally different expressions get
// different hashes within one builder — pointer identity and canon
// identity must coincide on an enumerated domain (collision sanity; a
// collision here is possible in principle but at 2^-128 scale, so any
// observed one means the hasher is broken).
func TestCanonDistinguishes(t *testing.T) {
	b := sym.NewBuilder()
	v0 := b.Data("v0", 3)
	v1 := b.Data("v1", 3)
	var pool []*sym.Expr
	for x := uint64(0); x < 8; x++ {
		pool = append(pool, b.ConstUint(3, x))
	}
	pool = append(pool, v0, v1)
	base := pool
	for _, x := range base {
		for _, y := range base {
			pool = append(pool, b.And(x, y), b.Or(x, y), b.Xor(x, y),
				b.Add(x, y), b.Sub(x, y), b.Eq(x, y), b.Ult(x, y))
		}
		pool = append(pool, b.Not(x), b.Extract(x, 1, 0), b.Concat(x, x))
	}
	ptrs := make(map[*sym.Expr]bool)
	canons := make(map[sym.Canon]*sym.Expr)
	for _, e := range pool {
		ptrs[e] = true
		if prev, ok := canons[e.Canon()]; ok && prev != e {
			t.Fatalf("canon collision: %s and %s both hash to %s", prev, e, e.Canon())
		}
		canons[e.Canon()] = e
	}
	if len(ptrs) != len(canons) {
		t.Fatalf("%d distinct nodes but %d distinct canons", len(ptrs), len(canons))
	}
}

// TestEncodeDecodeFixpoint: decoding an encoded expression set into a
// fresh builder reproduces the same canonical hashes and printed forms,
// root for root — the property snapshots rely on to rebuild witness
// tables and cache keys in another process.
func TestEncodeDecodeFixpoint(t *testing.T) {
	b := sym.NewBuilder()
	menagerie := canonMenagerie(b)
	roots := make([]*sym.Expr, len(menagerie))
	for i, m := range menagerie {
		roots[i] = m.expr
	}
	data, err := sym.EncodeExprs(roots)
	if err != nil {
		t.Fatal(err)
	}
	b2 := sym.NewBuilder()
	got, err := sym.DecodeExprs(b2, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(roots) {
		t.Fatalf("decoded %d roots, want %d", len(got), len(roots))
	}
	for i := range roots {
		if roots[i].Canon() != got[i].Canon() {
			t.Errorf("%s: canon changed across encode/decode: %s vs %s",
				menagerie[i].name, roots[i].Canon(), got[i].Canon())
		}
		if roots[i].String() != got[i].String() {
			t.Errorf("%s: printed form changed across encode/decode:\n  %s\nvs\n  %s",
				menagerie[i].name, roots[i], got[i])
		}
		if roots[i].Width != got[i].Width {
			t.Errorf("%s: width changed across encode/decode: %d vs %d",
				menagerie[i].name, roots[i].Width, got[i].Width)
		}
	}
	// Re-encoding the decoded roots must produce identical bytes: the
	// encoder is deterministic given structure, not builder history.
	data2, err := sym.EncodeExprs(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encode ∘ decode ∘ encode is not a fixpoint")
	}
}

// TestDecodeExprsRejectsJunk: the decoder consumes snapshot bytes, so
// malformed input must error — never panic, never build an invalid
// node.
func TestDecodeExprsRejectsJunk(t *testing.T) {
	b := sym.NewBuilder()
	valid, err := sym.EncodeExprs([]*sym.Expr{b.And(b.Data("x", 4), b.ConstUint(4, 5))})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      valid[:len(valid)/2],
		"one-byte":       {0x07},
		"garbage":        {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		"trailing-bytes": append(append([]byte{}, valid...), 0x01, 0x02),
	}
	for name, data := range cases {
		if _, err := sym.DecodeExprs(sym.NewBuilder(), data); err == nil {
			t.Errorf("%s: decode succeeded on malformed input", name)
		}
	}
	// Mutating single bytes must either error or still decode to valid
	// nodes (some mutations hit payload bits and stay well-formed) —
	// the invariant is no panic and no invalid widths.
	for off := range valid {
		mut := append([]byte{}, valid...)
		mut[off] ^= 0x1
		roots, err := sym.DecodeExprs(sym.NewBuilder(), mut)
		if err != nil {
			continue
		}
		for _, r := range roots {
			if r.Width == 0 || r.Width > 128 {
				t.Fatalf("byte %d mutation decoded an invalid width %d", off, r.Width)
			}
		}
	}
}
