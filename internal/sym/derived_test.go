package sym

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDerivedComparisons: Ne/Ule/Ugt/Uge/Implies agree with their
// definitions on random concrete values.
func TestDerivedComparisons(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	b := NewBuilder()
	x := b.Data("x", 16)
	y := b.Data("y", 16)
	for trial := 0; trial < 500; trial++ {
		xv := NewBV(16, uint64(r.Intn(1<<16)))
		yv := NewBV(16, uint64(r.Intn(1<<16)))
		env := Env{x: xv, y: yv}
		cases := []struct {
			name string
			e    *Expr
			want bool
		}{
			{"ne", b.Ne(x, y), xv != yv},
			{"ule", b.Ule(x, y), !yv.Ult(xv)},
			{"ugt", b.Ugt(x, y), yv.Ult(xv)},
			{"uge", b.Uge(x, y), !xv.Ult(yv)},
			{"implies", b.Implies(b.Eq(x, y), b.Ule(x, y)), true},
		}
		for _, c := range cases {
			got := MustEval(c.e, env)
			if got.IsTrue() != c.want {
				t.Fatalf("%s(%s, %s) = %v, want %v", c.name, xv, yv, got.IsTrue(), c.want)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	b := NewBuilder()
	x := b.Data("x", 8)
	if _, err := Eval(b.Add(x, b.ConstUint(8, 1)), nil); err == nil {
		t.Fatal("unassigned variable must error")
	}
	if _, err := Eval(x, Env{x: NewBV(16, 1)}); err == nil {
		t.Fatal("width-mismatched assignment must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustEval should panic on error")
		}
	}()
	MustEval(x, nil)
}

func TestBuilderNodeAccounting(t *testing.T) {
	b := NewBuilder()
	n0 := b.NumNodes()
	x := b.Data("x", 8)
	_ = b.Add(x, x)
	n1 := b.NumNodes()
	_ = b.Add(x, x) // same node, no growth
	if b.NumNodes() != n1 || n1 != n0+2 {
		t.Fatalf("node accounting: %d -> %d -> %d", n0, n1, b.NumNodes())
	}
	if x.ID() >= b.Add(x, b.ConstUint(8, 1)).ID() {
		t.Fatal("ids must increase with creation order")
	}
}

// TestPrintDepthCap: very deep expressions print with an ellipsis
// instead of recursing unboundedly.
func TestPrintDepthCap(t *testing.T) {
	b := NewBuilder()
	e := b.Data("x", 8)
	one := b.ConstUint(8, 1)
	for i := 0; i < 100; i++ {
		e = b.Add(b.Xor(e, one), one)
	}
	s := e.String()
	if !strings.Contains(s, "…") {
		t.Fatalf("deep print should truncate, got %d bytes", len(s))
	}
	if len(s) > 1<<16 {
		t.Fatalf("print too large: %d bytes", len(s))
	}
}

func TestCheckWitnessHint(t *testing.T) {
	b := NewBuilder()
	s := NewSolver()
	x := b.Data("x", 64)
	e := b.Eq(x, b.ConstUint(64, 0x1234))
	v, w := s.CheckWitness(e, nil)
	if v != Sat || w == nil {
		t.Fatalf("first query: %v", v)
	}
	// The returned witness must satisfy the formula and be reusable.
	if out := MustEval(e, w); !out.IsTrue() {
		t.Fatal("witness does not satisfy the formula")
	}
	v2, w2 := s.CheckWitness(e, w)
	if v2 != Sat {
		t.Fatalf("hinted query: %v", v2)
	}
	if len(w2) == 0 {
		t.Fatal("hinted query should return the hint")
	}
	// A stale hint (missing variables) is ignored gracefully.
	y := b.Data("y", 64)
	e2 := b.And(e, b.Eq(y, b.ConstUint(64, 7)))
	if v3, _ := s.CheckWitness(e2, w); v3 != Sat {
		t.Fatalf("query with stale hint: %v", v3)
	}
}
