package sym

import (
	"sync"
	"testing"
)

// buildDeepExpr constructs a moderately deep expression over nv
// control-plane variables, exercising every constructor the specializer
// reaches during substitution.
func buildDeepExpr(b *Builder, nv int) (*Expr, []*Expr) {
	vars := make([]*Expr, nv)
	for i := range vars {
		vars[i] = b.Ctrl(string(rune('a'+i%26))+string(rune('0'+i/26)), 16)
	}
	e := b.ConstUint(16, 7)
	for i, v := range vars {
		e = b.Add(b.Xor(e, v), b.ConstUint(16, uint64(i+1)))
		e = b.Ite(b.Ult(v, b.ConstUint(16, 1000)), e, b.Sub(e, v))
	}
	cond := b.True()
	for i := 0; i+1 < len(vars); i += 2 {
		cond = b.And(cond, b.Or(b.Eq(vars[i], vars[i+1]), b.Ult(vars[i], b.ConstUint(16, 42))))
	}
	return b.Concat(b.Ite(cond, e, b.Not(e)), b.Extract(e, 7, 0)), vars
}

// TestConcurrentInternSameNodes: goroutines racing to intern the same
// structural expressions must all receive the identical node pointers
// (hash-consing stays global under concurrency).
func TestConcurrentInternSameNodes(t *testing.T) {
	b := NewBuilder()
	const workers = 8
	results := make([]*Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, _ := buildDeepExpr(b, 12)
			results[w] = e
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d interned a different node: %p vs %p", w, results[w], results[0])
		}
	}
}

// TestConcurrentSubstWith: concurrent substitution through a shared
// Builder with per-goroutine scratch must agree pointer-for-pointer with
// the single-threaded Subst path.
func TestConcurrentSubstWith(t *testing.T) {
	b := NewBuilder()
	e, vars := buildDeepExpr(b, 12)

	// A family of environments, some partial, some total.
	envs := make([]map[*Expr]*Expr, 16)
	for i := range envs {
		env := make(map[*Expr]*Expr)
		for j, v := range vars {
			if (i+j)%3 == 0 {
				continue // leave some variables symbolic
			}
			env[v] = b.ConstUint(16, uint64(i*31+j*7))
		}
		envs[i] = env
	}
	want := make([]*Expr, len(envs))
	for i, env := range envs {
		want[i] = b.Subst(e, env)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*len(envs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc SubstScratch
			for i, env := range envs {
				if got := b.SubstWith(&sc, e, env); got != want[i] {
					errs <- "substitution diverged from single-threaded result"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestConcurrentSubstDisjointExprs: workers substituting into different
// expressions concurrently (the parallel point-evaluation pattern) — the
// race detector is the main assertion here.
func TestConcurrentSubstDisjointExprs(t *testing.T) {
	b := NewBuilder()
	const n = 24
	exprs := make([]*Expr, n)
	env := make(map[*Expr]*Expr)
	for i := range exprs {
		e, vars := buildDeepExpr(b, 4+i%5)
		exprs[i] = e
		for j, v := range vars {
			if j%2 == 0 {
				env[v] = b.ConstUint(16, uint64(i+j))
			}
		}
	}
	want := make([]*Expr, n)
	for i, e := range exprs {
		want[i] = b.Subst(e, env)
	}
	var wg sync.WaitGroup
	got := make([]*Expr, n)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc SubstScratch
			for i := w; i < n; i += 6 {
				got[i] = b.SubstWith(&sc, exprs[i], env)
			}
		}(w)
	}
	wg.Wait()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("expr %d: concurrent substitution diverged", i)
		}
	}
}
