package sym

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Op identifies the operator at the root of an expression node.
type Op uint8

// Operators. Booleans are width-1 bitvectors, so there is a single sort:
// OpAnd on width 1 is logical conjunction, OpNot is logical negation, and
// comparison operators (OpEq, OpUlt) always produce width-1 results.
const (
	OpConst   Op = iota // a literal bitvector
	OpVar               // a free variable (data- or control-plane)
	OpNot               // bitwise complement
	OpAnd               // bitwise and
	OpOr                // bitwise or
	OpXor               // bitwise xor
	OpAdd               // addition mod 2^W
	OpSub               // subtraction mod 2^W
	OpShl               // left shift by constant-or-expression amount
	OpLshr              // logical right shift
	OpConcat            // bit concatenation (a is most significant)
	OpExtract           // bit slice [Hi:Lo]
	OpEq                // equality, width-1 result
	OpUlt               // unsigned less-than, width-1 result
	OpIte               // if-then-else; A is the width-1 condition
)

var opNames = [...]string{
	OpConst: "const", OpVar: "var", OpNot: "~", OpAnd: "&", OpOr: "|",
	OpXor: "^", OpAdd: "+", OpSub: "-", OpShl: "<<", OpLshr: ">>",
	OpConcat: "++", OpExtract: "extract", OpEq: "==", OpUlt: "<",
	OpIte: "ite",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// VarClass distinguishes the two runtime-dependent variable kinds the
// paper identifies (§2): data-plane variables come from packet input and
// may take any value; control-plane variables are placeholders that a
// control-plane assignment substitutes away.
type VarClass uint8

const (
	// DataVar is a data-plane variable, written @name@ in the paper.
	DataVar VarClass = iota
	// CtrlVar is a control-plane variable, written |name| in the paper.
	CtrlVar
)

func (c VarClass) String() string {
	if c == CtrlVar {
		return "ctrl"
	}
	return "data"
}

// Expr is a node in a hash-consed expression DAG. Two structurally equal
// expressions built by the same Builder are the same pointer, so pointer
// comparison is semantic-equality-modulo-simplification and maps keyed on
// *Expr implement memoization. Expr values are immutable after creation.
type Expr struct {
	Op    Op
	Width uint16 // result width in bits
	Val   BV     // OpConst only
	Name  string // OpVar only
	Class VarClass
	A     *Expr // first operand (condition for OpIte)
	B     *Expr // second operand (then-branch for OpIte)
	C     *Expr // third operand (else-branch for OpIte)
	Hi    uint16
	Lo    uint16 // OpExtract bounds

	id    uint64 // dense id assigned by the Builder, for deterministic ordering
	depth uint32 // 1 + max child depth, assigned at intern time
	canon Canon  // structural hash, assigned at intern time (canon.go)
}

// ID returns the builder-assigned dense id of the node. IDs increase in
// creation order and are stable within a Builder, which makes them usable
// as deterministic sort keys.
func (e *Expr) ID() uint64 { return e.id }

// Depth returns the expression's DAG depth (a leaf is depth 1). It is
// computed incrementally at construction, so reading it is free — the
// observability layer uses it to report how deep the post-simplification
// residue reaching the solver is.
func (e *Expr) Depth() int { return int(e.depth) }

// IsConst reports whether e is a literal.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// IsTrue reports whether e is the width-1 constant 1.
func (e *Expr) IsTrue() bool { return e.Op == OpConst && e.Val.IsTrue() }

// IsFalse reports whether e is the width-1 constant 0.
func (e *Expr) IsFalse() bool {
	return e.Op == OpConst && e.Width == 1 && e.Val.IsZero()
}

// String renders the expression in a compact prefix/infix mix. Control
// variables print as |name| and data variables as @name@, matching the
// paper's Fig. 5 notation.
func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

const maxPrintDepth = 24

func (e *Expr) write(sb *strings.Builder, depth int) {
	if depth > maxPrintDepth {
		sb.WriteString("…")
		return
	}
	switch e.Op {
	case OpConst:
		sb.WriteString(e.Val.String())
	case OpVar:
		if e.Class == CtrlVar {
			fmt.Fprintf(sb, "|%s|", e.Name)
		} else {
			fmt.Fprintf(sb, "@%s@", e.Name)
		}
	case OpNot:
		sb.WriteString("~")
		e.A.write(sb, depth+1)
	case OpExtract:
		e.A.write(sb, depth+1)
		fmt.Fprintf(sb, "[%d:%d]", e.Hi, e.Lo)
	case OpIte:
		sb.WriteString("(")
		e.A.write(sb, depth+1)
		sb.WriteString(" ? ")
		e.B.write(sb, depth+1)
		sb.WriteString(" : ")
		e.C.write(sb, depth+1)
		sb.WriteString(")")
	default:
		sb.WriteString("(")
		e.A.write(sb, depth+1)
		sb.WriteString(" " + e.Op.String() + " ")
		e.B.write(sb, depth+1)
		sb.WriteString(")")
	}
}

// exprKey is the structural identity used for hash-consing.
type exprKey struct {
	op      Op
	width   uint16
	hi, lo  uint16
	valHi   uint64
	valLo   uint64
	class   VarClass
	name    string
	a, b, c *Expr
}

// Builder creates and owns hash-consed expressions. Interning is guarded
// by an internal mutex, so goroutines may build expressions through the
// same Builder concurrently (the parallel update-analysis engine relies
// on this: hash-consing must stay global or pointer identity — and with
// it every memo keyed on *Expr — would break across workers). All other
// per-traversal state is external: concurrent substitution goes through
// SubstWith with one SubstScratch per goroutine. The zero value is not
// usable — call NewBuilder.
type Builder struct {
	mu     sync.Mutex
	nodes  map[exprKey]*Expr
	nextID uint64

	// live mirrors len(nodes) for lock-free observers: epoch publication
	// and wait-free Statistics readers sample the arena size without
	// contending on the intern mutex.
	live atomic.Int64

	// Substitution memo for the single-threaded Subst entry point.
	sub SubstScratch
}

// NewBuilder returns an empty expression arena.
func NewBuilder() *Builder {
	return &Builder{nodes: make(map[exprKey]*Expr, 1024)}
}

// NumNodes returns how many distinct nodes the builder has interned; it
// is the measure of expression complexity the benchmarks report.
func (b *Builder) NumNodes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.nodes)
}

// LiveNodes is the wait-free counterpart of NumNodes: it reads an
// atomic mirror of the intern-table size without taking the builder
// mutex, so lock-free readers (epoch publication, Statistics) never
// contend with concurrent interning.
func (b *Builder) LiveNodes() int { return int(b.live.Load()) }

// Sweep removes every interned node not reachable from roots and
// compacts the surviving nodes' dense ids (preserving their relative
// order, so id-based sort keys stay deterministic). It is the arena's
// garbage collector: hash-consed nodes are otherwise immortal, and a
// long-lived engine that substitutes fresh control-plane constants on
// every update would grow the intern table — and every id-indexed
// scratch structure — without bound.
//
// The caller must guarantee exclusive use of the Builder and of every
// retained expression for the duration of the call (the engine runs
// Sweep under its write lock, between passes): ids are reassigned, and
// any *Expr held outside roots becomes a stale alias that must never be
// compared against newly interned nodes. Canons are structural and
// exclude ids, so surviving nodes hash identically after the sweep.
func (b *Builder) Sweep(roots []*Expr) (swept int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	live := make(map[*Expr]bool, len(b.nodes)/2)
	stack := make([]*Expr, 0, 64)
	for _, r := range roots {
		if r != nil && !live[r] {
			live[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range [...]*Expr{e.A, e.B, e.C} {
			if ch != nil && !live[ch] {
				live[ch] = true
				stack = append(stack, ch)
			}
		}
	}
	keep := make([]*Expr, 0, len(live))
	for k, e := range b.nodes {
		if !live[e] {
			delete(b.nodes, k)
			swept++
			continue
		}
		keep = append(keep, e)
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].id < keep[j].id })
	for i, e := range keep {
		e.id = uint64(i)
	}
	b.nextID = uint64(len(keep))
	b.live.Store(int64(len(keep)))
	return swept
}

func (b *Builder) intern(k exprKey) *Expr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.nodes[k]; ok {
		return e
	}
	depth := uint32(0)
	for _, ch := range [...]*Expr{k.a, k.b, k.c} {
		if ch != nil && ch.depth > depth {
			depth = ch.depth
		}
	}
	e := &Expr{
		Op: k.op, Width: k.width, Hi: k.hi, Lo: k.lo,
		Val:  BV{Hi: k.valHi, Lo: k.valLo, W: k.width},
		Name: k.name, Class: k.class,
		A: k.a, B: k.b, C: k.c,
		id: b.nextID, depth: depth + 1,
		canon: canonOf(k),
	}
	if k.op != OpConst {
		e.Val = BV{}
	}
	b.nextID++
	b.nodes[k] = e
	b.live.Store(int64(len(b.nodes)))
	return e
}

// Const returns the literal node for v.
func (b *Builder) Const(v BV) *Expr {
	return b.intern(exprKey{op: OpConst, width: v.W, valHi: v.Hi, valLo: v.Lo})
}

// ConstUint returns the width-w literal for lo.
func (b *Builder) ConstUint(w uint16, lo uint64) *Expr { return b.Const(NewBV(w, lo)) }

// True returns the width-1 constant 1.
func (b *Builder) True() *Expr { return b.Const(Bool(true)) }

// False returns the width-1 constant 0.
func (b *Builder) False() *Expr { return b.Const(Bool(false)) }

// Var returns the variable node named name with the given class and
// width. The same (class, name, width) triple always yields the same
// node.
func (b *Builder) Var(class VarClass, name string, w uint16) *Expr {
	if w < 1 || w > MaxWidth {
		panic(fmt.Sprintf("sym: invalid variable width %d for %q", w, name))
	}
	return b.intern(exprKey{op: OpVar, width: w, class: class, name: name})
}

// Data returns the data-plane variable @name@ of width w.
func (b *Builder) Data(name string, w uint16) *Expr { return b.Var(DataVar, name, w) }

// Ctrl returns the control-plane variable |name| of width w.
func (b *Builder) Ctrl(name string, w uint16) *Expr { return b.Var(CtrlVar, name, w) }
