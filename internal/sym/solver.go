package sym

// Verdict is the answer of a satisfiability query.
type Verdict uint8

const (
	// Unsat means no assignment of the free variables makes the formula
	// true. Unsat answers are proofs (constant-false after
	// simplification, or exhaustive enumeration of a small domain).
	Unsat Verdict = iota
	// Sat means a witness assignment was found.
	Sat
	// Unknown means neither a witness nor an exhaustive refutation was
	// found within budget. Callers must treat Unknown conservatively:
	// code that "may be executable" stays, a variable that "may vary" is
	// not replaced by a constant, and a verdict that "may have changed"
	// triggers recompilation. That keeps the specializer sound even when
	// the solver gives up.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Solver answers executability (satisfiability) and constant-ness queries
// over simplified expressions. It is a deliberately small decision
// procedure: Flay's queries arise from substituting concrete control-
// plane assignments into match-key expressions, which the simplifier
// already folds to constants in the overwhelmingly common case; the
// solver handles the residue with candidate-point probing and exhaustive
// search over small domains.
type Solver struct {
	// MaxProbes bounds the number of candidate assignments tried before
	// answering Unknown. The default (solverDefaultProbes) is used when
	// zero.
	MaxProbes int
	// ExhaustiveBits is the largest total free-variable bit-width for
	// which an exhaustive (and therefore Unsat-capable) search runs. The
	// default is solverDefaultExhaustiveBits when zero.
	ExhaustiveBits int
	// Metrics, when set, counts how queries decide (witness-cache hits,
	// exhaustive decisions, probe luck, Unknowns). Nil disables
	// accounting at zero cost. Shared across solvers safely: the
	// underlying instruments are atomic.
	Metrics *SolverMetrics

	rng uint64
	sc  scratch
}

const (
	solverDefaultProbes         = 1024
	solverDefaultExhaustiveBits = 16
	solverRandomProbes          = 128
	maxCandidatesPerVar         = 12
)

// DefaultExhaustiveBits is the default exhaustive-search bound: the
// largest total free-variable bit-width for which the solver's search
// is complete (Unsat- and Const-capable). The decision-diagram query
// core mirrors this bound so its verdicts are interchangeable with
// solver verdicts: a diagram-side unsatisfiability or constancy proof
// only upgrades to Dead/Const when the solver's exhaustive pass would
// have certified it too.
const DefaultExhaustiveBits = solverDefaultExhaustiveBits

// NewSolver returns a Solver with default budgets and a fixed
// deterministic probe sequence.
func NewSolver() *Solver {
	return &Solver{rng: 0x9e3779b97f4a7c15}
}

func (s *Solver) next() uint64 {
	// xorshift64*: deterministic, dependency-free probe source.
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (s *Solver) probes() int {
	if s.MaxProbes > 0 {
		return s.MaxProbes
	}
	return solverDefaultProbes
}

func (s *Solver) exhaustiveBits() int {
	if s.ExhaustiveBits > 0 {
		return s.ExhaustiveBits
	}
	return solverDefaultExhaustiveBits
}

// Eval evaluates e under env using the solver's memoized scratch. It
// reports false when a variable needed by the evaluation is
// unassigned. The decision-diagram path uses it to verify walk-derived
// witnesses against the residue before installing them.
func (s *Solver) Eval(e *Expr, env Env) (BV, bool) {
	return s.sc.eval(e, env)
}

// FreeVars collects the distinct variable nodes reachable from e,
// sorted by builder id — the same enumeration the solver's searches
// use, exposed so the diagram path can mirror the exhaustive-bits
// decision exactly.
func (s *Solver) FreeVars(e *Expr) []*Expr {
	return s.sc.vars(e)
}

// Check reports whether the width-1 expression e is satisfiable over its
// free variables.
func (s *Solver) Check(e *Expr) Verdict {
	v, _ := s.CheckWitness(e, nil)
	return v
}

// CheckWitness is Check with witness support: when the result is Sat it
// returns a satisfying assignment, and a witness from a previous query
// (hint) is tried first. Incremental callers exploit this: after a
// control-plane update, the witness that proved a point live usually
// still does, turning the query into a single evaluation (the paper's
// observation that most updates "just increase the likelihood for an
// already existing data-plane program path to be taken").
func (s *Solver) CheckWitness(e *Expr, hint Env) (Verdict, Env) {
	if e.Width != 1 {
		panic("sym: Check requires a width-1 expression")
	}
	s.Metrics.query(e)
	if e.IsTrue() {
		return Sat, Env{}
	}
	if e.IsFalse() {
		return Unsat, nil
	}
	vars := s.sc.vars(e)
	if len(vars) == 0 {
		// Simplification leaves closed terms constant; a non-constant
		// closed term would be a simplifier bug.
		if v, ok := s.sc.eval(e, nil); !ok || !v.IsTrue() {
			s.Metrics.unknown()
			return Unknown, nil
		}
		return Sat, Env{}
	}
	if len(hint) > 0 {
		if out, ok := s.sc.eval(e, hint); ok && out.IsTrue() {
			s.Metrics.witnessHit()
			return Sat, hint
		}
		s.Metrics.witnessMiss()
	}

	// Exhaustive search decides small domains exactly.
	totalBits := 0
	for _, v := range vars {
		totalBits += int(v.Width)
		if totalBits > s.exhaustiveBits() {
			totalBits = -1
			break
		}
	}
	if totalBits >= 0 {
		s.Metrics.exhaustive()
		if env := s.exhaustive(e, vars); env != nil {
			return Sat, env
		}
		return Unsat, nil
	}

	// Candidate-point probing: boundary values plus constants harvested
	// from comparisons, then deterministic pseudo-random assignments.
	cands := s.candidates(e, vars)
	if env := s.probeCombos(e, vars, cands); env != nil {
		s.Metrics.probeSat()
		return Sat, env
	}
	env := make(Env, len(vars))
	for i := 0; i < solverRandomProbes; i++ {
		for _, v := range vars {
			env[v] = NewBV2(v.Width, s.next(), s.next())
		}
		if out, ok := s.sc.eval(e, env); ok && out.IsTrue() {
			s.Metrics.probeSat()
			return Sat, copyEnv(env)
		}
	}
	s.Metrics.unknown()
	return Unknown, nil
}

func copyEnv(env Env) Env {
	out := make(Env, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// exhaustive enumerates every assignment of vars (total width small) and
// returns a satisfying assignment, or nil when none exists.
func (s *Solver) exhaustive(e *Expr, vars []*Expr) Env {
	env := make(Env, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			out, ok := s.sc.eval(e, env)
			return ok && out.IsTrue()
		}
		v := vars[i]
		n := uint64(1) << v.Width
		for x := uint64(0); x < n; x++ {
			env[v] = NewBV(v.Width, x)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return env
	}
	return nil
}

// candidates harvests, per variable, the interesting values: zero,
// all-ones, one, and every constant the variable is compared against
// (plus neighbours, for strict inequalities).
func (s *Solver) candidates(e *Expr, vars []*Expr) map[*Expr][]BV {
	out := make(map[*Expr][]BV, len(vars))
	add := func(v *Expr, val BV) {
		if val.W != v.Width {
			return
		}
		for _, have := range out[v] {
			if have == val {
				return
			}
		}
		if len(out[v]) < maxCandidatesPerVar {
			out[v] = append(out[v], val)
		}
	}
	for _, v := range vars {
		add(v, BV{W: v.Width})
		add(v, AllOnes(v.Width))
		add(v, NewBV(v.Width, 1))
	}
	s.sc.harvest(e, add)
	return out
}

// probeCombos tries the cartesian product of per-variable candidates,
// capped by the probe budget. It returns a satisfying assignment or
// nil.
func (s *Solver) probeCombos(e *Expr, vars []*Expr, cands map[*Expr][]BV) Env {
	budget := s.probes()
	total := 1
	for _, v := range vars {
		total *= len(cands[v])
		if total > budget {
			total = -1
			break
		}
	}
	env := make(Env, len(vars))
	if total > 0 {
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(vars) {
				out, ok := s.sc.eval(e, env)
				return ok && out.IsTrue()
			}
			for _, val := range cands[vars[i]] {
				env[vars[i]] = val
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		if rec(0) {
			return env
		}
		return nil
	}
	// Too many combinations: sample them.
	for i := 0; i < budget; i++ {
		for _, v := range vars {
			cs := cands[v]
			env[v] = cs[int(s.next()%uint64(len(cs)))]
		}
		if out, ok := s.sc.eval(e, env); ok && out.IsTrue() {
			return copyEnv(env)
		}
	}
	return nil
}

// ConstResult is the answer of a constant-ness query.
type ConstResult struct {
	// Known reports whether the query was decided at all.
	Known bool
	// IsConst is meaningful only when Known; it reports whether the
	// expression evaluates to the same value under every assignment.
	IsConst bool
	// Val holds that value when Known && IsConst.
	Val BV
}

// ConstValue decides whether e denotes a single value regardless of its
// free variables — the paper's "can we replace this program variable with
// a constant?" query. The decision is conservative: only a simplifier-
// produced literal or an exhaustive check yields IsConst=true, while a
// pair of differing probe evaluations yields a definite IsConst=false.
func (s *Solver) ConstValue(e *Expr) ConstResult {
	s.Metrics.constQuery(e)
	if e.Op == OpConst {
		s.Metrics.constProved()
		return ConstResult{Known: true, IsConst: true, Val: e.Val}
	}
	vars := s.sc.vars(e)
	if len(vars) == 0 {
		v, ok := s.sc.eval(e, nil)
		if !ok {
			s.Metrics.constUnknown()
			return ConstResult{}
		}
		s.Metrics.constProved()
		return ConstResult{Known: true, IsConst: true, Val: v}
	}

	// Find two differing evaluations to refute constant-ness fast.
	var first BV
	haveFirst := false
	tryEnv := func(env Env) (done bool, res ConstResult) {
		out, ok := s.sc.eval(e, env)
		if !ok {
			return false, ConstResult{}
		}
		if !haveFirst {
			first, haveFirst = out, true
			return false, ConstResult{}
		}
		if out != first {
			s.Metrics.constRefuted()
			return true, ConstResult{Known: true, IsConst: false}
		}
		return false, ConstResult{}
	}

	cands := s.candidates(e, vars)
	env := make(Env, len(vars))
	for probe := 0; probe < 64; probe++ {
		for _, v := range vars {
			cs := cands[v]
			if probe < len(cs) {
				env[v] = cs[probe%len(cs)]
			} else {
				env[v] = NewBV2(v.Width, s.next(), s.next())
			}
		}
		if done, res := tryEnv(env); done {
			return res
		}
	}

	// No refutation found; only an exhaustive pass can certify.
	totalBits := 0
	for _, v := range vars {
		totalBits += int(v.Width)
		if totalBits > s.exhaustiveBits() {
			s.Metrics.constUnknown()
			return ConstResult{}
		}
	}
	same := true
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			out, ok := s.sc.eval(e, env)
			if !ok {
				return false
			}
			if !haveFirst {
				first, haveFirst = out, true
				return true
			}
			if out != first {
				same = false
				return false
			}
			return true
		}
		v := vars[i]
		n := uint64(1) << v.Width
		for x := uint64(0); x < n; x++ {
			env[v] = NewBV(v.Width, x)
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	if same && haveFirst {
		s.Metrics.constProved()
		return ConstResult{Known: true, IsConst: true, Val: first}
	}
	s.Metrics.constRefuted()
	return ConstResult{Known: true, IsConst: false}
}
