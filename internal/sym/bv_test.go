package sym

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a BV to the unsigned big.Int it denotes.
func toBig(v BV) *big.Int {
	out := new(big.Int).SetUint64(v.Hi)
	out.Lsh(out, 64)
	return out.Or(out, new(big.Int).SetUint64(v.Lo))
}

// fromBig truncates a big.Int into a width-w BV.
func fromBig(w uint16, x *big.Int) BV {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	m.Sub(m, big.NewInt(1))
	t := new(big.Int).And(x, m)
	lo := new(big.Int).And(t, new(big.Int).SetUint64(^uint64(0))).Uint64()
	hi := new(big.Int).Rsh(t, 64).Uint64()
	return BV{Hi: hi, Lo: lo, W: w}
}

var testWidths = []uint16{1, 7, 8, 16, 31, 32, 48, 63, 64, 65, 100, 127, 128}

func randBV(r *rand.Rand, w uint16) BV {
	return NewBV2(w, r.Uint64(), r.Uint64())
}

func TestBVTruncateInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, w := range testWidths {
		for i := 0; i < 200; i++ {
			v := randBV(r, w)
			if got := toBig(v); got.BitLen() > int(w) {
				t.Fatalf("width %d: value %s exceeds width (bitlen %d)", w, v, got.BitLen())
			}
		}
	}
}

func TestBVArithmeticAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mod := func(w uint16) *big.Int {
		return new(big.Int).Lsh(big.NewInt(1), uint(w))
	}
	for _, w := range testWidths {
		for i := 0; i < 300; i++ {
			a, b := randBV(r, w), randBV(r, w)
			ba, bb := toBig(a), toBig(b)

			if got, want := a.Add(b), fromBig(w, new(big.Int).Add(ba, bb)); got != want {
				t.Fatalf("w=%d add(%s,%s) = %s, want %s", w, a, b, got, want)
			}
			sub := new(big.Int).Sub(ba, bb)
			sub.Mod(sub, mod(w))
			if got, want := a.Sub(b), fromBig(w, sub); got != want {
				t.Fatalf("w=%d sub(%s,%s) = %s, want %s", w, a, b, got, want)
			}
			if got, want := a.And(b), fromBig(w, new(big.Int).And(ba, bb)); got != want {
				t.Fatalf("w=%d and mismatch", w)
			}
			if got, want := a.Or(b), fromBig(w, new(big.Int).Or(ba, bb)); got != want {
				t.Fatalf("w=%d or mismatch", w)
			}
			if got, want := a.Xor(b), fromBig(w, new(big.Int).Xor(ba, bb)); got != want {
				t.Fatalf("w=%d xor mismatch", w)
			}
			if got, want := a.Ult(b), ba.Cmp(bb) < 0; got != want {
				t.Fatalf("w=%d ult(%s,%s) = %v, want %v", w, a, b, got, want)
			}
			n := uint(r.Intn(int(w) + 10))
			shl := new(big.Int).Lsh(ba, n)
			if got, want := a.Shl(n), fromBig(w, shl); got != want {
				t.Fatalf("w=%d shl %d mismatch: %s vs %s", w, n, got, want)
			}
			if got, want := a.Lshr(n), fromBig(w, new(big.Int).Rsh(ba, n)); got != want {
				t.Fatalf("w=%d lshr %d mismatch", w, n)
			}
		}
	}
}

func TestBVNotIsComplement(t *testing.T) {
	f := func(hi, lo uint64) bool {
		for _, w := range testWidths {
			v := NewBV2(w, hi, lo)
			if !v.Or(v.Not()).IsAllOnes() {
				return false
			}
			if !v.And(v.Not()).IsZero() {
				return false
			}
			if v.Not().Not() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBVConcatExtractRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		wa := uint16(1 + r.Intn(64))
		wb := uint16(1 + r.Intn(64))
		a, b := randBV(r, wa), randBV(r, wb)
		c := a.Concat(b)
		if c.W != wa+wb {
			t.Fatalf("concat width %d, want %d", c.W, wa+wb)
		}
		if got := c.Extract(wa+wb-1, wb); got != a {
			t.Fatalf("high extract %s, want %s", got, a)
		}
		if got := c.Extract(wb-1, 0); got != b {
			t.Fatalf("low extract %s, want %s", got, b)
		}
	}
}

func TestBVExtractMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		w := testWidths[r.Intn(len(testWidths))]
		v := randBV(r, w)
		lo := uint16(r.Intn(int(w)))
		hi := lo + uint16(r.Intn(int(w-lo)))
		got := v.Extract(hi, lo)
		want := fromBig(hi-lo+1, new(big.Int).Rsh(toBig(v), uint(lo)))
		if got != want {
			t.Fatalf("extract [%d:%d] of %s = %s, want %s", hi, lo, v, got, want)
		}
	}
}

func TestBVBoundsPanics(t *testing.T) {
	cases := []func(){
		func() { NewBV(0, 1) },
		func() { NewBV(129, 1) },
		func() { NewBV(8, 1).Extract(8, 0) },
		func() { NewBV(8, 1).Extract(2, 3) },
		func() { NewBV(64, 1).Concat(NewBV(65, 1)) },
		func() { NewBV(8, 1).Add(NewBV(9, 1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBVHelpers(t *testing.T) {
	if !Bool(true).IsTrue() || Bool(false).IsTrue() {
		t.Fatal("Bool encoding broken")
	}
	if AllOnes(1) != Bool(true) {
		t.Fatal("width-1 all-ones should be true")
	}
	v := NewBV(16, 0x800)
	if v.String() != "16w0x800" {
		t.Fatalf("String() = %q", v.String())
	}
	if v.Uint64() != 0x800 {
		t.Fatal("Uint64 mismatch")
	}
	if !v.Bit(11) || v.Bit(10) || v.Bit(200) {
		t.Fatal("Bit() wrong")
	}
	if v.PopCount() != 1 {
		t.Fatal("PopCount wrong")
	}
	wide := NewBV2(128, 0xff, 0)
	if !wide.Bit(64) || wide.PopCount() != 8 {
		t.Fatal("high-limb bit accessors wrong")
	}
	if v.ZeroExtend(32).W != 32 || v.ZeroExtend(32).Uint64() != 0x800 {
		t.Fatal("ZeroExtend wrong")
	}
}
