package progs

import (
	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// fig3Source is the paper's Fig. 3 running example.
const fig3Source = `
// Fig. 3: a single ternary table whose implementation morphs with the
// control-plane configuration.
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set(bit<16> type) {
        hdr.eth.type = type;
    }
    action drop() {
        mark_to_drop(std);
    }
    action noop() { }
    table eth_table {
        key = { hdr.eth.dst: ternary; }
        actions = { set; drop; noop; }
        default_action = noop;
        size = 1024;
    }
    apply {
        eth_table.apply();
        std.egress_port = 9w1;
    }
}
`

// Fig3 is the paper's Fig. 3 program.
func Fig3() *Program {
	return &Program{
		Name:       "fig3",
		Summary:    "the paper's Fig. 3 running example: a two-table forwarding slice",
		Source:     fig3Source,
		Target:     devcompiler.TargetTofino,
		BurstTable: "Ingress.eth_table",
		// The five updates of the figure double as the program's
		// representative configuration (the `flay demo` walkthrough).
		Representative: Fig3Updates,
	}
}

// Fig3Updates returns the five control-plane updates of Fig. 3 in
// order (the "replace" step is a delete followed by an insert).
func Fig3Updates() []*controlplane.Update {
	entry := func(key, mask uint64, action string, params ...sym.BV) *controlplane.TableEntry {
		return &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{ternMatch(48, key, mask)},
			Action:  action, Params: params,
		}
	}
	t := "Ingress.eth_table"
	return []*controlplane.Update{
		{Kind: controlplane.InsertEntry, Table: t, Entry: entry(0x1, 0x0, "set", sym.NewBV(16, 0x800))},
		{Kind: controlplane.DeleteEntry, Table: t, Entry: entry(0x1, 0x0, "set", sym.NewBV(16, 0x800))},
		{Kind: controlplane.InsertEntry, Table: t, Entry: entry(0x2, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 0x900))},
		{Kind: controlplane.InsertEntry, Table: t, Entry: entry(0x5, 0x8, "set", sym.NewBV(16, 0x700))},
		{Kind: controlplane.InsertEntry, Table: t, Entry: entry(0x6, 0x7, "set", sym.NewBV(16, 0x200))},
	}
}

// fig5Source is the paper's Fig. 5a example.
const fig5Source = `
// Fig. 5a: a port variable set by a table entry; Flay's constant
// propagation resolves the downstream ternary.
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(h.eth);
        transition accept;
    }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) {
        egress_port = port_var;
    }
    action noop() { }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        h.eth.dst = egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
        std.egress_port = egress_port;
    }
}
`

// Fig5 is the paper's Fig. 5 program.
func Fig5() *Program {
	return &Program{
		Name:       "fig5",
		Summary:    "the paper's Fig. 5 example: value-set parser specialization",
		Source:     fig5Source,
		Target:     devcompiler.TargetTofino,
		BurstTable: "Ingress.port_table",
	}
}

// Fig5Entry returns the single update of Fig. 5b block C: key
// 0xDEADBEEFF00D → set(0x01).
func Fig5Entry() *controlplane.Update {
	return insertUpdate("Ingress.port_table", 0,
		[]controlplane.FieldMatch{exactMatch(48, 0xDEADBEEFF00D)},
		"set", sym.NewBV(9, 1))
}
