package progs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/devcompiler"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
)

// TestCatalogBuilds: every program parses, typechecks, analyzes and
// compiles; statement counts stay within 5% of the paper's Table 2
// numbers.
func TestCatalogBuilds(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := parser.Parse(p.Name, p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := typecheck.Check(prog); err != nil {
				t.Fatalf("typecheck: %v", err)
			}
			if p.PaperStatements > 0 {
				got := ast.CountStatements(prog)
				lo := p.PaperStatements * 95 / 100
				hi := p.PaperStatements * 105 / 100
				if got < lo || got > hi {
					t.Errorf("statements = %d, want within 5%% of %d", got, p.PaperStatements)
				}
			}
			res, err := devcompiler.New(p.Target).Compile(prog)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if p.Target == devcompiler.TargetTofino && !res.Allocation.Feasible {
				t.Errorf("unspecialized program must fit the device: %s", res.Allocation)
			}
		})
	}
}

// TestCatalogSpecializes: loading + representative config + producing a
// valid specialized program works for every entry.
func TestCatalogSpecializes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full catalog specialization")
	}
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s, err := p.Load()
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				t.Fatal(err)
			}
			spec := s.SpecializedProgram()
			src := ast.Print(spec)
			p2, err := parser.Parse(spec.Name, src)
			if err != nil {
				t.Fatalf("specialized program does not re-parse: %v", err)
			}
			if _, err := typecheck.Check(p2); err != nil {
				t.Fatalf("specialized program does not typecheck: %v", err)
			}
		})
	}
}

// TestScionStageSavings reproduces the paper's §4.2 headline: the
// unspecialized SCION program needs the maximum number of Tofino-2
// stages; specialized under the representative (IPv6-free)
// configuration it needs 20% fewer; after the IPv6-enabling batch it is
// back at the maximum.
func TestScionStageSavings(t *testing.T) {
	p := Scion()
	comp := devcompiler.New(devcompiler.TargetTofino)

	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	full, err := comp.Compile(s.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if full.Allocation.StagesUsed != comp.Device.Stages {
		t.Fatalf("unspecialized scion uses %d stages, want the maximum %d",
			full.Allocation.StagesUsed, comp.Device.Stages)
	}

	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	spec, err := comp.Compile(s.SpecializedProgram())
	if err != nil {
		t.Fatal(err)
	}
	want := comp.Device.Stages * 8 / 10 // 20% fewer
	if spec.Allocation.StagesUsed != want {
		t.Fatalf("specialized scion uses %d stages, want %d (20%% fewer than %d)",
			spec.Allocation.StagesUsed, want, comp.Device.Stages)
	}
	if spec.Allocation.PHVBits >= full.Allocation.PHVBits {
		t.Errorf("specialization should also reduce PHV: %d vs %d",
			spec.Allocation.PHVBits, full.Allocation.PHVBits)
	}

	// Enable IPv6: respecialization must be triggered and stages return
	// to the maximum.
	sawRecompile := false
	for _, u := range p.IPv6Enable() {
		d := s.Apply(u)
		if d.Kind == core.Rejected {
			t.Fatalf("ipv6 update rejected: %v", d.Err)
		}
		if d.Kind == core.Recompile {
			sawRecompile = true
		}
	}
	if !sawRecompile {
		t.Fatal("enabling IPv6 must trigger respecialization")
	}
	after, err := comp.Compile(s.SpecializedProgram())
	if err != nil {
		t.Fatal(err)
	}
	if after.Allocation.StagesUsed != comp.Device.Stages {
		t.Fatalf("after IPv6 enable: %d stages, want the maximum %d",
			after.Allocation.StagesUsed, comp.Device.Stages)
	}
}

// TestScionBurst reproduces the §4.2 burst experiment at unit-test
// scale: after the representative configuration, a burst of unique IPv4
// entries is judged semantics-preserving (forwarded) quickly.
func TestScionBurst(t *testing.T) {
	p := Scion()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	n := 100
	if testing.Short() {
		n = 20
	}
	forwarded := 0
	for i := 0; i < n; i++ {
		d := s.Apply(ScionBurstEntry(i))
		switch d.Kind {
		case core.Forward:
			forwarded++
		case core.Rejected:
			t.Fatalf("burst entry %d rejected: %v", i, d.Err)
		}
	}
	if forwarded < n*9/10 {
		t.Fatalf("only %d/%d burst updates forwarded; the burst must be recognised as semantics-preserving", forwarded, n)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("scion"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown program")
	}
}

func TestFig3UpdatesReplayCleanly(t *testing.T) {
	p := Fig3()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []core.DecisionKind{}
	for _, u := range Fig3Updates() {
		d := s.Apply(u)
		if d.Kind == core.Rejected {
			t.Fatalf("fig3 update rejected: %v", d.Err)
		}
		kinds = append(kinds, d.Kind)
	}
	// insert(0-mask), delete, insert(full), insert(masked), insert(#3):
	// the final update must forward, the others recompile.
	want := []core.DecisionKind{core.Recompile, core.Recompile, core.Recompile, core.Recompile, core.Forward}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("fig3 step %d: %v, want %v (all: %v)", i+1, kinds[i], want[i], kinds)
		}
	}
}
