package progs

import (
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// Dash re-creates the SONiC DASH pipeline shape: SDN appliance packet
// processing with direction lookup, ENI (elastic network interface)
// resolution, three-stage inbound/outbound ACL groups, VNET routing and
// CA→PA translation, and metering.
func Dash() *Program {
	return &Program{
		Name:                "dash",
		Summary:             "SONiC DASH overlay pipeline: ENI/CA-PA mapping and VXLAN paths",
		Source:              dashSource(),
		Target:              devcompiler.TargetBMv2,
		PaperStatements:     509,
		PaperCompileSeconds: 2,
		PaperAnalysis:       "1.5s",
		PaperUpdate:         "12ms",
		Representative:      dashRepresentative,
		BurstTable:          "Ingress.outbound_routing",
	}
}

var (
	dashOutboundACL = []string{"out_acl_stage1", "out_acl_stage2", "out_acl_stage3"}
	dashInboundACL  = []string{"in_acl_stage1", "in_acl_stage2", "in_acl_stage3"}
	dashRoutingCh   = []string{"outbound_routing", "outbound_ca_to_pa", "vnet_mapping", "tunnel_select", "underlay_route"}
	dashMeterCh     = []string{"meter_policy", "meter_rule", "meter_bucket"}
)

func dashSource() string {
	var b strings.Builder
	b.WriteString(`// dash: SDN appliance pipeline (SONiC DASH shape).
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
header vxlan_t {
    bit<8> flags;
    bit<24> rsv;
    bit<24> vni;
    bit<8> rsv2;
}
header inner_ipv4_t {
    bit<8> ttl;
    bit<8> protocol;
    bit<32> src;
    bit<32> dst;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    udp_t udp;
    vxlan_t vxlan;
    inner_ipv4_t inner;
}
struct metadata {
`)
	emitMetaFields(&b, "oacl", len(dashOutboundACL))
	emitMetaFields(&b, "iacl", len(dashInboundACL))
	emitMetaFields(&b, "rt", len(dashRoutingCh))
	emitMetaFields(&b, "mtr", len(dashMeterCh))
	b.WriteString(`    bit<1> direction;
    bit<16> eni_id;
    bit<24> vni;
    bit<32> pa_addr;
    bit<9> out_port;
}
parser DashParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dport) {
            16w4789: parse_vxlan;
            default: accept;
        }
    }
    state parse_vxlan {
        pkt.extract(hdr.vxlan);
        pkt.extract(hdr.inner);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set_outbound() {
        meta.direction = 1w1;
    }
    action set_inbound() {
        meta.direction = 1w0;
    }
    table direction_lookup {
        key = { hdr.vxlan.vni: exact; }
        actions = { set_outbound; set_inbound; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    action set_eni(bit<16> eni) {
        meta.eni_id = eni;
    }
    table eni_lookup {
        key = {
            hdr.eth.src: exact;
            meta.direction: exact;
        }
        actions = { set_eni; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    action set_vni(bit<24> vni) {
        meta.vni = vni;
    }
    table eni_to_vni {
        key = { meta.eni_id: exact; }
        actions = { set_vni; NoAction; }
        default_action = NoAction;
        size = 64;
    }
`)
	emitChain(&b, chainOpts{
		Names: dashOutboundACL, MetaPrefix: "oacl",
		FirstKey: "hdr.inner.src", FirstKind: "ternary",
		ExtraFirstKeys: []string{
			"hdr.inner.dst: ternary", "hdr.inner.protocol: ternary",
			"meta.eni_id: exact",
		},
		BodyAux:  []string{"hdr.inner.ttl = hdr.inner.ttl | 8w1;"},
		WithDrop: true, Size: 512, Pad: 14, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: dashInboundACL, MetaPrefix: "iacl",
		FirstKey: "hdr.inner.dst", FirstKind: "ternary",
		ExtraFirstKeys: []string{
			"hdr.inner.src: ternary", "meta.eni_id: exact",
		},
		BodyAux:  []string{"hdr.inner.ttl = hdr.inner.ttl | 8w2;"},
		WithDrop: true, Size: 512, Pad: 14, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: dashRoutingCh, MetaPrefix: "rt",
		FirstKey: "hdr.inner.dst", FirstKind: "lpm",
		ExtraFirstKeys: []string{"meta.eni_id: exact"},
		BodyAux: []string{
			"meta.pa_addr = 16w0 ++ v;",
			"meta.out_port = v[8:0];",
		},
		WithDrop: false, Size: 4096, Pad: 14, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: dashMeterCh, MetaPrefix: "mtr",
		FirstKey: "meta.eni_id", FirstKind: "exact",
		BodyAux:  []string{"hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w4;"},
		WithDrop: false, Size: 256, Pad: 14, Alt: true,
	})
	b.WriteString(`    register<bit<32>>(256) flow_bytes;
    bit<32> fb;
    apply {
        if (hdr.vxlan.isValid()) {
            direction_lookup.apply();
            eni_lookup.apply();
            eni_to_vni.apply();
            if (meta.direction == 1w1) {
`)
	emitApplies(&b, "                ", dashOutboundACL)
	emitApplies(&b, "                ", dashRoutingCh)
	b.WriteString(`                hdr.vxlan.vni = meta.vni;
                hdr.ipv4.dst = meta.pa_addr;
            } else {
`)
	emitApplies(&b, "                ", dashInboundACL)
	b.WriteString(`            }
`)
	emitApplies(&b, "            ", dashMeterCh)
	b.WriteString(`            flow_bytes.read(fb, 16w0 ++ meta.eni_id[7:0] ++ 8w0);
            fb = fb + std.packet_length;
            flow_bytes.write(16w0 ++ meta.eni_id[7:0] ++ 8w0, fb);
            hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, hdr.ipv4.total_len);
            std.egress_port = meta.out_port;
        }
    }
}
`)
	return b.String()
}

// dashRepresentative: outbound path configured, inbound ACLs sparse.
func dashRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	ups = append(ups,
		insertUpdate("Ingress.direction_lookup", 0,
			[]controlplane.FieldMatch{exactMatch(24, 1000)}, "set_outbound"),
		insertUpdate("Ingress.direction_lookup", 0,
			[]controlplane.FieldMatch{exactMatch(24, 2000)}, "set_inbound"),
		insertUpdate("Ingress.eni_lookup", 0,
			[]controlplane.FieldMatch{exactMatch(48, 0xF00D00000001), exactMatch(1, 1)},
			"set_eni", sym.NewBV(16, 7)),
		insertUpdate("Ingress.eni_to_vni", 0,
			[]controlplane.FieldMatch{exactMatch(16, 7)}, "set_vni", sym.NewBV(24, 5001)),
	)
	ups = append(ups, chainRepresentative("Ingress", "rt", dashRoutingCh, 2,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{
				lpmMatch(32, uint64(0x0a000000+e<<16), 16),
				exactMatch(16, 7),
			}
		})...)
	ups = append(ups, chainRepresentative("Ingress", "oacl", dashOutboundACL, 2,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{
				ternMatch(32, uint64(0x0a640000+e), 0xffffffff),
				ternMatch(32, 0, 0),
				ternMatch(8, 6, 0xff),
				exactMatch(16, 7),
			}
		})...)
	return ups
}

// DashRouteEntry builds the i-th unique outbound route for bursts.
func DashRouteEntry(i int) *controlplane.Update {
	return insertUpdate("Ingress.outbound_routing", 0,
		[]controlplane.FieldMatch{
			lpmMatch(32, uint64(0x0b000000+i*65537%0x00ffffff), 32),
			exactMatch(16, 7),
		},
		"set_rt_1", sym.NewBV(16, uint64(1+i%128)))
}
