// Package progs holds goflay's evaluation program catalog: structurally
// faithful re-creations (in goflay's P4 subset) of the programs the
// paper evaluates — the SCION border router, switch.p4, Google's
// middleblock.p4, SONiC DASH — plus the three Table-1 Tofino programs
// (Beaucoup, ACCTurbo, DTA) and the paper's figure programs (Fig. 3 and
// Fig. 5). Each catalog entry carries its representative control-plane
// configuration and the paper's reference numbers so the benchmark
// harness can print paper-vs-measured tables.
package progs

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// Program is one catalog entry.
type Program struct {
	Name string
	// Summary is a one-line description for catalog listings.
	Summary string
	Source  string
	Target  devcompiler.Target
	// SkipParser reproduces the paper's accommodation for switch.p4.
	SkipParser bool

	// Paper reference numbers (absent entries are zero).
	PaperStatements     int     // Tbl. 2 "Program statements"
	PaperCompileSeconds float64 // Tbl. 1 / Tbl. 2 "Compile time"
	PaperAnalysis       string  // Tbl. 2 "Data-plane analysis time"
	PaperUpdate         string  // Tbl. 2 "Update analysis time"

	// Representative returns the program's representative control-plane
	// configuration as a list of updates (the paper: SCION "is supplied
	// with representative control-plane configurations").
	Representative func() []*controlplane.Update

	// BurstTable is the table used for semantics-preserving bursts
	// (SCION's IPv4 forwarding table in §4.2).
	BurstTable string
	// ACLTable is the wide-keyed table used for the Tbl. 3 scaling
	// study (middleblock's Pre-Ingress ACL).
	ACLTable string
	// IPv6Enable returns the update batch that turns on the previously
	// unused IPv6 paths (SCION, §4.2).
	IPv6Enable func() []*controlplane.Update
}

// Catalog returns every evaluation program.
func Catalog() []*Program {
	return []*Program{
		Fig3(), Fig5(), Scion(), SwitchLite(), Middleblock(), Dash(),
		Beaucoup(), ACCTurbo(), DTA(),
		Nat44(), L4LB(), TunnelTerm(),
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (*Program, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("progs: unknown program %q", name)
}

// Load builds a Specializer for the program with its standard options.
func (p *Program) Load() (*core.Specializer, error) {
	return core.NewFromSource(p.Name, p.Source, core.Options{SkipParser: p.SkipParser})
}

// LoadWith builds a Specializer with explicit options (e.g. precise
// mode for Tbl. 3).
func (p *Program) LoadWith(opts core.Options) (*core.Specializer, error) {
	opts.SkipParser = opts.SkipParser || p.SkipParser
	return core.NewFromSource(p.Name, p.Source, opts)
}

// ApplyRepresentative installs the representative configuration.
func (p *Program) ApplyRepresentative(s *core.Specializer) error {
	if p.Representative == nil {
		return nil
	}
	for _, u := range p.Representative() {
		if d := s.Apply(u); d.Kind == core.Rejected {
			return fmt.Errorf("progs: representative config rejected: %v", d.Err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Entry-building helpers shared by the per-program files.

func exactMatch(w uint16, v uint64) controlplane.FieldMatch {
	return controlplane.FieldMatch{Kind: controlplane.MatchExact, Value: sym.NewBV(w, v)}
}

func lpmMatch(w uint16, v uint64, plen int) controlplane.FieldMatch {
	return controlplane.FieldMatch{Kind: controlplane.MatchLPM, Value: sym.NewBV(w, v), PrefixLen: plen}
}

func ternMatch(w uint16, v, mask uint64) controlplane.FieldMatch {
	return controlplane.FieldMatch{Kind: controlplane.MatchTernary, Value: sym.NewBV(w, v), Mask: sym.NewBV(w, mask)}
}

func insertUpdate(table string, prio int, matches []controlplane.FieldMatch, action string, params ...sym.BV) *controlplane.Update {
	return &controlplane.Update{
		Kind:  controlplane.InsertEntry,
		Table: table,
		Entry: &controlplane.TableEntry{Priority: prio, Matches: matches, Action: action, Params: params},
	}
}
