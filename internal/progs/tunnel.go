package progs

import (
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// TunnelTerm is a production-shaped tunnel terminator: IP-in-IPv4 and
// IP-in-IPv6 tunnel endpoint tables, per-tunnel policy, and inner-header
// forwarding after decap. Tunnel endpoints churn with overlay
// provisioning (the tep_v4 table is the churn target) while the policy
// and inner-forwarding layers change at control-plane-policy rates.
func TunnelTerm() *Program {
	return &Program{
		Name:           "tunnelterm",
		Summary:        "IPv4/IPv6 tunnel terminator: endpoint match, per-tunnel policy, inner forwarding",
		Source:         tunnelTermSource(),
		Target:         devcompiler.TargetBMv2,
		Representative: tunnelTermRepresentative,
		BurstTable:     "Ingress.tep_v4",
	}
}

var tunnelPost = []string{"overlay_qos", "vrf_select", "mirror_cfg"}

func tunnelTermSource() string {
	var b strings.Builder
	b.WriteString(`// tunnelterm: IPv4/IPv6 tunnel terminator (goflay re-creation).
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<128> src;
    bit<128> dst;
}
struct headers {
    ethernet_t eth;
    ipv4_t outer4;
    ipv6_t outer6;
    ipv4_t inner4;
}
struct metadata {
`)
	emitMetaFields(&b, "post", len(tunnelPost))
	b.WriteString(`    bit<16> tunnel;
    bit<8> tclass;
    bit<1> decap;
    bit<9> out_port;
}
parser TunnelParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_outer4;
            16w0x86DD: parse_outer6;
            default: accept;
        }
    }
    state parse_outer4 {
        pkt.extract(hdr.outer4);
        transition select(hdr.outer4.protocol) {
            8w4: parse_inner4;
            default: accept;
        }
    }
    state parse_outer6 {
        pkt.extract(hdr.outer6);
        transition select(hdr.outer6.next_hdr) {
            8w4: parse_inner4;
            default: accept;
        }
    }
    state parse_inner4 {
        pkt.extract(hdr.inner4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    // IPv4 tunnel endpoints: provisioned/withdrawn with the overlay, so
    // this table sees continuous churn.
    action term_v4(bit<16> t) {
        meta.tunnel = t;
        meta.decap = 1w1;
    }
    table tep_v4 {
        key = {
            hdr.outer4.dst: exact;
            hdr.outer4.src: ternary;
        }
        actions = { term_v4; NoAction; }
        default_action = NoAction;
        size = 2048;
    }
    action term_v6(bit<16> t) {
        meta.tunnel = t;
        meta.decap = 1w1;
    }
    table tep_v6 {
        key = { hdr.outer6.dst: ternary; }
        actions = { term_v6; NoAction; }
        default_action = NoAction;
        size = 512;
    }
    action set_tclass(bit<8> tc) {
        meta.tclass = tc;
    }
    action policy_drop() {
        mark_to_drop(std);
    }
    table tunnel_policy {
        key = { meta.tunnel: exact; }
        actions = { set_tclass; policy_drop; NoAction; }
        default_action = NoAction;
        size = 512;
    }
    action acl_drop() {
        mark_to_drop(std);
    }
    table inner_acl {
        key = {
            hdr.inner4.src: ternary;
            hdr.inner4.protocol: ternary;
        }
        actions = { acl_drop; NoAction; }
        default_action = NoAction;
        size = 128;
    }
    action inner_route(bit<48> dmac, bit<9> port) {
        hdr.eth.dst = dmac;
        meta.out_port = port;
    }
    table inner_fwd {
        key = {
            meta.tunnel: exact;
            hdr.inner4.dst: lpm;
        }
        actions = { inner_route; NoAction; }
        default_action = NoAction;
        size = 1024;
    }
`)
	emitChain(&b, chainOpts{
		Names: tunnelPost, MetaPrefix: "post",
		FirstKey: "meta.tunnel", FirstKind: "exact",
		BodyAux:  []string{"meta.out_port = v[8:0];"},
		WithDrop: false, Size: 64, Pad: 6, Alt: true,
	})
	b.WriteString(`    register<bit<32>>(1024) tunnel_pkts;
    bit<32> cell;
    apply {
        if (hdr.outer4.isValid()) {
            tep_v4.apply();
        }
        if (hdr.outer6.isValid()) {
            tep_v6.apply();
        }
        if (meta.decap == 1w1) {
            tunnel_policy.apply();
            tunnel_pkts.read(cell, (16w0 ++ meta.tunnel) & 32w0x3FF);
            cell = cell + 32w1;
            tunnel_pkts.write((16w0 ++ meta.tunnel) & 32w0x3FF, cell);
            if (hdr.inner4.isValid()) {
                inner_acl.apply();
                inner_fwd.apply();
                if (hdr.inner4.ttl == 8w0) {
                    mark_to_drop(std);
                } else {
                    hdr.inner4.ttl = hdr.inner4.ttl - 8w1;
                    hdr.inner4.diffserv = meta.tclass;
                    hdr.inner4.hdr_checksum = checksum16(hdr.inner4.src, hdr.inner4.dst, 8w0 ++ hdr.inner4.ttl, hdr.inner4.total_len);
                }
            }
`)
	emitApplies(&b, "            ", tunnelPost)
	b.WriteString(`            std.egress_port = meta.out_port;
        }
    }
}
`)
	return b.String()
}

// TunnelTermTepEntry builds the i-th unique IPv4 tunnel-endpoint entry.
func TunnelTermTepEntry(i int) *controlplane.Update {
	u := uint64(i)
	return insertUpdate("Ingress.tep_v4", 10+i,
		[]controlplane.FieldMatch{
			exactMatch(32, 0xAC100000+u*2654435761%0x000fffff),
			ternMatch(32, 0x0a000000+u<<8, 0xffffff00),
		},
		"term_v4", sym.NewBV(16, 1+u%512))
}

// tunnelTermRepresentative: a handful of v4/v6 endpoints, policies for
// the live tunnels, inner routes and a default-permit ACL.
func tunnelTermRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	for i := 0; i < 3; i++ {
		ups = append(ups, TunnelTermTepEntry(i))
	}
	ups = append(ups, insertUpdate("Ingress.tep_v6", 5,
		[]controlplane.FieldMatch{
			{Kind: controlplane.MatchTernary,
				Value: sym.NewBV2(128, 0x20010db800000000, 0),
				Mask:  sym.NewBV2(128, 0xffffffff00000000, 0)},
		}, "term_v6", sym.NewBV(16, 400)))
	for t := 1; t <= 3; t++ {
		u := uint64(t)
		ups = append(ups, insertUpdate("Ingress.tunnel_policy", 0,
			[]controlplane.FieldMatch{exactMatch(16, u)},
			"set_tclass", sym.NewBV(8, 10*u)))
		ups = append(ups, insertUpdate("Ingress.inner_fwd", 0,
			[]controlplane.FieldMatch{
				exactMatch(16, u),
				lpmMatch(32, 0xC0A80000+u<<16, 16),
			},
			"inner_route", sym.NewBV(48, 0x02BB00000000+u), sym.NewBV(9, u%4+1)))
	}
	ups = append(ups, insertUpdate("Ingress.inner_acl", 20,
		[]controlplane.FieldMatch{
			ternMatch(32, 0xE0000000, 0xf0000000),
			ternMatch(8, 0, 0),
		}, "acl_drop"))
	ups = append(ups, chainRepresentative("Ingress", "post", tunnelPost, 2, nil)...)
	return ups
}
