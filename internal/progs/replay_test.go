package progs

import (
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/sym"
	"repro/internal/trace"
)

// TestTraceReplayAgainstScion drives the specializer with a Fig.-1-shaped
// control-plane trace: routing bursts hit the IPv4 forwarding table,
// NAT-style churn hits the ACL, and the rare policy change flips a
// default action. The incremental design's promise is that the bursty
// bulk of the trace forwards without recompilation.
func TestTraceReplayAgainstScion(t *testing.T) {
	p := Scion()
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		t.Fatal(err)
	}
	g := fuzz.New(s.An, 77)

	span := 10 * time.Minute
	events := trace.Generate(span, trace.Profile{
		PolicyInterval: 4 * time.Minute, // compressed so the test sees policy changes
		BurstSize:      40,
	})
	var (
		decisions = map[core.DecisionKind]int{}
		byClass   = map[trace.Class]map[core.DecisionKind]int{}
		routingN  int
	)
	flipped := false
	for _, ev := range events {
		var u *controlplane.Update
		switch ev.Class {
		case trace.RoutingBurst:
			u = ScionBurstEntry(routingN)
			routingN++
		case trace.NATChurn:
			e, err := g.Entry("Ingress.ipv4_acl")
			if err != nil {
				t.Fatal(err)
			}
			u = &controlplane.Update{Kind: controlplane.InsertEntry, Table: "Ingress.ipv4_acl", Entry: e}
		case trace.PolicyChange:
			// Policy: flip the dscp table's default action.
			def := controlplane.ActionCall{Name: "NoAction"}
			if !flipped {
				def = controlplane.ActionCall{Name: "set_v4_8", Params: []sym.BV{sym.NewBV(16, 9)}}
			}
			flipped = !flipped
			u = &controlplane.Update{Kind: controlplane.SetDefault, Table: "Ingress.ipv4_dscp_policy", Default: def}
		}
		d := s.Apply(u)
		if d.Kind == core.Rejected {
			t.Fatalf("%v update rejected: %v", ev.Class, d.Err)
		}
		decisions[d.Kind]++
		if byClass[ev.Class] == nil {
			byClass[ev.Class] = map[core.DecisionKind]int{}
		}
		byClass[ev.Class][d.Kind]++
	}

	total := decisions[core.Forward] + decisions[core.Recompile]
	if total < 200 {
		t.Fatalf("trace too small: %d updates", total)
	}
	// The paper's economics: the overwhelming majority of updates must
	// forward.
	if forwardShare := 100 * decisions[core.Forward] / total; forwardShare < 95 {
		t.Fatalf("only %d%% of trace updates forwarded (forward=%d recompile=%d)",
			forwardShare, decisions[core.Forward], decisions[core.Recompile])
	}
	// Every policy change is a semantic change: it must recompile.
	if pc := byClass[trace.PolicyChange]; pc[core.Recompile] == 0 || pc[core.Forward] != 0 {
		t.Fatalf("policy changes should always recompile: %+v", pc)
	}
	// Routing bursts settle into pure forwarding.
	if rb := byClass[trace.RoutingBurst]; rb[core.Recompile] > 2 {
		t.Fatalf("routing bursts caused %d recompilations", rb[core.Recompile])
	}
}
