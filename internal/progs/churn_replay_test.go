package progs

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
)

// TestProductionProgramsChurn: the production-shaped programs accept
// every churn pattern on their declared churn table — on top of the
// representative configuration, with zero rejections, the pattern's
// steady-state invariant intact, and a specialized program that still
// round-trips through the frontend afterwards.
func TestProductionProgramsChurn(t *testing.T) {
	for _, name := range []string{"nat44", "l4lb", "tunnelterm"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, kind := range fuzz.PatternKinds() {
				s, err := p.Load()
				if err != nil {
					t.Fatal(err)
				}
				if err := p.ApplyRepresentative(s); err != nil {
					t.Fatal(err)
				}
				before := s.Cfg.NumEntries(p.BurstTable)
				cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
					Kind: kind, Table: p.BurstTable, Updates: 40, Seed: 9,
				})
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				for i, u := range cs.Updates {
					if d := s.Apply(u); d.Kind == core.Rejected {
						t.Fatalf("%s update %d (%s) rejected: %v", kind, i, u, d.Err)
					}
				}
				if err := cs.CheckInvariant(s.Cfg.NumEntries(p.BurstTable) - before); err != nil {
					t.Fatal(err)
				}
				src := ast.Print(s.SpecializedProgram())
				p2, err := parser.Parse(p.Name, src)
				if err != nil {
					t.Fatalf("%s: specialized program does not re-parse: %v", kind, err)
				}
				if _, err := typecheck.Check(p2); err != nil {
					t.Fatalf("%s: specialized program does not typecheck: %v", kind, err)
				}
			}
		})
	}
}

// TestProductionEntryBuilders: the exported per-program entry builders
// generate unique burst entries that replay cleanly on top of the
// representative configuration (which consumes the low indices).
func TestProductionEntryBuilders(t *testing.T) {
	cases := []struct {
		name  string
		entry func(i int) *controlplane.Update
	}{
		{"nat44", Nat44SessionEntry},
		{"l4lb", L4LBAffinityEntry},
		{"tunnelterm", TunnelTermTepEntry},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Summary == "" {
				t.Fatalf("%s: catalog entry has no summary", tc.name)
			}
			s, err := p.Load()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				t.Fatal(err)
			}
			before := s.Cfg.NumEntries(p.BurstTable)
			const n = 40
			for i := 10; i < 10+n; i++ {
				if d := s.Apply(tc.entry(i)); d.Kind == core.Rejected {
					t.Fatalf("burst entry %d rejected: %v", i, d.Err)
				}
			}
			if got := s.Cfg.NumEntries(p.BurstTable) - before; got != n {
				t.Fatalf("burst installed %d entries, want %d (builder emitted duplicates)", got, n)
			}
		})
	}
}
