package progs

import (
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// Middleblock re-creates Google's middleblock.p4 (SONiC-PINS): a
// software-switch model with a wide-keyed Pre-Ingress ACL — the table
// the paper uses for the Tbl. 3 update-scaling study ("An example of
// such a table is the Pre-Ingress ACL table of Google's Middleblock P4
// switch model").
func Middleblock() *Program {
	return &Program{
		Name:                "middleblock",
		Summary:             "Google middleblock.p4 model with the wide Pre-Ingress ACL (Tbl. 3)",
		Source:              middleblockSource(),
		Target:              devcompiler.TargetBMv2,
		PaperStatements:     346,
		PaperCompileSeconds: 2,
		PaperAnalysis:       "0.6s",
		PaperUpdate:         "5ms",
		Representative:      middleblockRepresentative,
		BurstTable:          "Ingress.acl_pre_ingress",
		ACLTable:            "Ingress.acl_pre_ingress",
	}
}

// MiddleblockACLEntry builds the i-th unique Pre-Ingress ACL entry for
// the Tbl. 3 study: a complex five-field ternary match.
func MiddleblockACLEntry(i int) *controlplane.Update {
	u := uint64(i)
	return insertUpdate("Ingress.acl_pre_ingress", 10+i,
		[]controlplane.FieldMatch{
			ternMatch(32, 0x0a000000+u*2654435761%0x00ffffff, 0xffffffff),
			ternMatch(32, 0xC0A80000+u*40503%0xffff, 0xffffff00),
			ternMatch(8, 6+u%2*11, 0xff), // tcp or udp
			ternMatch(16, 1024+u%40000, 0xffff),
			ternMatch(16, 1+u%1024, 0xffff),
		},
		"set_vrf", sym.NewBV(16, 1+u%64))
}

var (
	mbL3  = []string{"ipv4_table", "wcmp_group", "nexthop", "router_interface", "neighbor"}
	mbPre = []string{"vlan_membership", "port_config", "l3_admit_meta"}
	mbEgr = []string{"egress_port_cfg", "egress_acl", "mirror_encap", "dscp_rewrite"}
)

func middleblockSource() string {
	var b strings.Builder
	b.WriteString(`// middleblock: SONiC-PINS-style software switch model with a wide
// Pre-Ingress ACL.
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    udp_t l4;
}
struct metadata {
`)
	emitMetaFields(&b, "l3", len(mbL3))
	emitMetaFields(&b, "pre", len(mbPre))
	emitMetaFields(&b, "egr", len(mbEgr))
	b.WriteString(`    bit<16> vrf;
    bit<12> mirror_id;
    bit<9> out_port;
    bit<48> dst_mac;
    bit<1> acl_drop;
}
parser MbParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_l4;
            8w6: parse_l4;
            default: accept;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    // The Pre-Ingress ACL: a wide composite ternary key. With many
    // entries its compiled control-plane assignment becomes the deeply
    // nested expression §4.1 describes, which is exactly what slows
    // precise update processing in Tbl. 3.
    action set_vrf(bit<16> vrf) {
        meta.vrf = vrf;
    }
    table acl_pre_ingress {
        key = {
            hdr.ipv4.src: ternary;
            hdr.ipv4.dst: ternary;
            hdr.ipv4.protocol: ternary;
            hdr.l4.sport: ternary;
            hdr.l4.dport: ternary;
        }
        actions = { set_vrf; NoAction; }
        default_action = NoAction;
        size = 255;
    }
    action acl_copy(bit<12> mirror) {
        meta.mirror_id = mirror;
    }
    action acl_deny() {
        meta.acl_drop = 1w1;
        mark_to_drop(std);
    }
    table acl_ingress {
        key = {
            hdr.eth.dst: ternary;
            hdr.ipv4.dst: ternary;
            hdr.ipv4.protocol: ternary;
        }
        actions = { acl_copy; acl_deny; NoAction; }
        default_action = NoAction;
        size = 128;
    }
`)
	emitChain(&b, chainOpts{
		Names: mbL3, MetaPrefix: "l3",
		FirstKey: "hdr.ipv4.dst", FirstKind: "lpm",
		ExtraFirstKeys: []string{"meta.vrf: exact"},
		BodyAux: []string{
			"meta.out_port = v[8:0];",
			"meta.dst_mac = 16w0 ++ v ++ 16w0xBEEF;",
		},
		WithDrop: true, Size: 1024, Pad: 10, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: mbPre, MetaPrefix: "pre",
		FirstKey: "std.ingress_port", FirstKind: "exact",
		BodyAux:  []string{"hdr.eth.type = hdr.eth.type | 16w1;"},
		WithDrop: false, Size: 64, Pad: 10, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: mbEgr, MetaPrefix: "egr",
		FirstKey: "meta.out_port", FirstKind: "exact",
		BodyAux:  []string{"hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w2;"},
		WithDrop: false, Size: 64, Pad: 10, Alt: true,
	})
	b.WriteString(`    action set_mirror_port(bit<9> p) {
        std.mcast_grp = 7w0 ++ p;
    }
    table mirror_session {
        key = { meta.mirror_id: exact; }
        actions = { set_mirror_port; NoAction; }
        default_action = NoAction;
        size = 32;
    }
    table l3_admit {
        key = { hdr.eth.dst: ternary; }
        actions = { NoAction; }
        default_action = NoAction;
        size = 64;
    }
    apply {
`)
	emitApplies(&b, "        ", mbPre)
	b.WriteString(`        if (hdr.ipv4.isValid()) {
            acl_pre_ingress.apply();
            l3_admit.apply();
`)
	emitApplies(&b, "            ", mbL3)
	b.WriteString(`            if (hdr.ipv4.ttl == 8w0) {
                mark_to_drop(std);
            } else {
                hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
                hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 8w0 ++ hdr.ipv4.ttl, hdr.ipv4.total_len, hdr.ipv4.identification);
                hdr.eth.src = hdr.eth.dst;
                hdr.eth.dst = meta.dst_mac;
            }
            acl_ingress.apply();
            if (meta.mirror_id != 12w0) {
                mirror_session.apply();
            }
            std.egress_port = meta.out_port;
`)
	emitApplies(&b, "            ", mbEgr)
	b.WriteString(`        }
    }
}
`)
	return b.String()
}

// middleblockRepresentative: a small working config — a handful of ACL
// entries and routes.
func middleblockRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	for i := 0; i < 4; i++ {
		ups = append(ups, MiddleblockACLEntry(i))
	}
	ups = append(ups, chainRepresentative("Ingress", "l3", mbL3, 3,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{
				lpmMatch(32, uint64(0x0a000000+e<<20), 12),
				exactMatch(16, uint64(1+e)),
			}
		})...)
	ups = append(ups, insertUpdate("Ingress.acl_ingress", 5,
		[]controlplane.FieldMatch{
			ternMatch(48, 0x01005E000000, 0xFFFFFF000000),
			ternMatch(32, 0, 0),
			ternMatch(8, 17, 0xff),
		}, "acl_copy", sym.NewBV(12, 7)))
	return ups
}
