package progs

import (
	"fmt"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// The SCION border router re-creation (paper §4.2). Structure chosen to
// reproduce the paper's headline numbers:
//
//   - a shared path-processing front end (per-interface metadata, SCION
//     common-header checks, hop-field validation, MAC verification,
//     segment switching): a dependency chain of scionSharedDepth tables;
//   - an IPv4 underlay chain of scionV4Depth tables (ACL, LPM
//     forwarding, next-hop resolution, encap rewrite, TTL/csum);
//   - an IPv6 underlay chain of scionV6Depth tables.
//
// The chains are match-dependent (each table keys on metadata the
// previous table's action writes), so the Tofino allocator needs
// shared+v6 = 20 stages for the full program — the device maximum — and
// shared+v4 = 16 stages (20% fewer) once the unused IPv6 chain is
// specialized away, exactly the paper's experiment.
const (
	scionSharedDepth = 6
	scionV4Depth     = 10
	scionV6Depth     = 14
)

// Scion returns the SCION border router catalog entry.
func Scion() *Program {
	return &Program{
		Name:                "scion",
		Summary:             "SCION border router: the paper's \u00a74.2 headline program",
		Source:              scionSource(),
		Target:              devcompiler.TargetTofino,
		PaperStatements:     582,
		PaperCompileSeconds: 38,
		PaperAnalysis:       "2s",
		PaperUpdate:         "90ms",
		Representative:      scionRepresentative,
		BurstTable:          "Ingress.ipv4_forward",
		IPv6Enable:          scionIPv6Enable,
	}
}

// ScionBurstEntry builds the i-th unique IPv4 forwarding entry for the
// §4.2 burst experiment (1000 fuzzer-generated IPv4 entries).
func ScionBurstEntry(i int) *controlplane.Update {
	addr := uint64(0x0a000000 + i*7919%0x00ffffff) // unique, spread out
	return insertUpdate("Ingress.ipv4_forward", 0,
		[]controlplane.FieldMatch{lpmMatch(32, addr, 32), exactMatch(16, uint64(1+i%3))},
		"set_v4_2", sym.NewBV(16, uint64(1+i%4)), sym.NewBV(9, uint64(1+i%8)))
}

// scionPad emits n scratch-accumulator statements (realistic ALU work
// that sizes action bodies like the original program's).
func scionPad(b *strings.Builder, n, seed int) {
	for j := 0; j < n; j++ {
		fmt.Fprintf(b, "        meta.pad_acc = meta.pad_acc + 16w%d;\n", (seed*37+j*11+1)%4096)
	}
}

func scionSource() string {
	var b strings.Builder
	b.WriteString(`// SCION border router (goflay re-creation).
// Shared SCION path processing feeds either an IPv4 or an IPv6
// underlay chain; the representative deployment leaves IPv6 unused.
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header scion_common_t {
    bit<4> version;
    bit<8> qos;
    bit<20> flow_id;
    bit<8> next_hdr;
    bit<8> hdr_len;
    bit<16> payload_len;
    bit<8> path_type;
    bit<8> host_type_len;
    bit<16> rsv;
}
header scion_addr_t {
    bit<16> dst_isd;
    bit<48> dst_as;
    bit<16> src_isd;
    bit<48> src_as;
}
header scion_path_meta_t {
    bit<2> curr_inf;
    bit<6> curr_hf;
    bit<6> rsv;
    bit<6> seg0_len;
    bit<6> seg1_len;
    bit<6> seg2_len;
}
header scion_hop_t {
    bit<8> flags;
    bit<8> exp_time;
    bit<16> cons_ingress;
    bit<16> cons_egress;
    bit<48> mac;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<128> src;
    bit<128> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    ipv6_t ipv6;
    udp_t udp;
    scion_common_t scion;
    scion_addr_t scion_addr;
    scion_path_meta_t path_meta;
    scion_hop_t hop;
}
struct metadata {
`)
	// Chain metadata fields.
	for i := 1; i <= scionSharedDepth; i++ {
		fmt.Fprintf(&b, "    bit<16> s%d;\n", i)
	}
	for i := 1; i <= scionV4Depth; i++ {
		fmt.Fprintf(&b, "    bit<16> v4_%d;\n", i)
	}
	for i := 1; i <= scionV6Depth; i++ {
		fmt.Fprintf(&b, "    bit<16> v6_%d;\n", i)
	}
	b.WriteString(`    bit<9> out_port;
    bit<48> next_mac;
    bit<1> mac_ok;
    bit<16> pad_acc;
}
parser ScionParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dport) {
            16w50000: parse_scion;
            default: accept;
        }
    }
    state parse_scion {
        pkt.extract(hdr.scion);
        pkt.extract(hdr.scion_addr);
        pkt.extract(hdr.path_meta);
        pkt.extract(hdr.hop);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
`)
	// ------------------------------------------------------- shared chain
	sharedNames := []string{
		"ingress_iface", "scion_version_check", "path_epoch",
		"hop_field_validate", "mac_verify", "segment_switch",
	}
	for i := 1; i <= scionSharedDepth; i++ {
		name := sharedNames[i-1]
		key := fmt.Sprintf("meta.s%d", i-1)
		kind := "exact"
		if i == 1 {
			key = "std.ingress_port"
		}
		if i == 4 {
			// Hop-field validation also inspects the hop field itself.
			fmt.Fprintf(&b, `    action accept_hop_%d(bit<16> next, bit<1> ok) {
        meta.s%d = next;
        meta.mac_ok = ok;
        hdr.hop.flags = hdr.hop.flags | 8w1;
`, i, i)
			scionPad(&b, 6, i)
			fmt.Fprintf(&b, `    }
    action reject_hop_%d() {
        mark_to_drop(std);
    }
    table %s {
        key = {
            %s: %s;
            hdr.hop.cons_ingress: exact;
        }
        actions = { accept_hop_%d; reject_hop_%d; NoAction; }
        default_action = NoAction;
        size = 64;
    }
`, i, name, key, kind, i, i)
			continue
		}
		fmt.Fprintf(&b, `    action set_s%d(bit<16> v, bit<16> aux%d) {
        meta.s%d = v;
        hdr.scion.rsv = aux%d;
        hdr.scion.qos = hdr.scion.qos | 8w1;
`, i, i, i, i)
		scionPad(&b, 6, i)
		fmt.Fprintf(&b, `    }
    action peer_s%d(bit<16> v) {
        meta.s%d = v ^ 16w0x0100;
`, i, i)
		scionPad(&b, 6, i+100)
		fmt.Fprintf(&b, `    }
    action drop_s%d() {
        mark_to_drop(std);
    }
    table %s {
        key = { %s: %s; }
        actions = { set_s%d; peer_s%d; drop_s%d; NoAction; }
        default_action = NoAction;
        size = 64;
    }
`, i, name, key, kind, i, i, i)
	}

	// --------------------------------------------------------- IPv4 chain
	v4Names := []string{
		"ipv4_acl", "ipv4_forward", "ipv4_nexthop", "ipv4_local_delivery",
		"ipv4_encap_select", "ipv4_src_rewrite", "ipv4_dst_rewrite",
		"ipv4_dscp_policy", "ipv4_ttl_policy", "ipv4_egress_iface",
	}
	for i := 1; i <= scionV4Depth; i++ {
		name := v4Names[i-1]
		var key, kind string
		switch i {
		case 1:
			key, kind = "hdr.ipv4.src", "ternary"
		case 2:
			key, kind = "hdr.ipv4.dst", "lpm"
		default:
			key, kind = fmt.Sprintf("meta.v4_%d", i-1), "exact"
		}
		extra := ""
		if i == 2 {
			// The forwarding table also picks the output port: this is
			// the burst-experiment table.
			extra = "        meta.out_port = port;\n"
		}
		port := ""
		if i == 2 {
			port = ", bit<9> port"
		}
		// Keep the chain match-dependent: the first table ties to the
		// shared chain, the second to the first.
		chainDep := ""
		switch i {
		case 1:
			chainDep = fmt.Sprintf("            meta.s%d: exact;\n", scionSharedDepth)
		case 2:
			chainDep = "            meta.v4_1: exact;\n"
		}
		fmt.Fprintf(&b, `    action set_v4_%d(bit<16> v%s) {
        meta.v4_%d = v;
        hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w2;
%s`, i, port, i, extra)
		scionPad(&b, 6, 10+i)
		fmt.Fprintf(&b, `    }
    action alt_v4_%d(bit<16> v) {
        meta.v4_%d = v ^ 16w0x0200;
`, i, i)
		scionPad(&b, 6, 110+i)
		fmt.Fprintf(&b, `    }
    action drop_v4_%d() {
        mark_to_drop(std);
    }
    table %s {
        key = {
            %s: %s;
%s        }
        actions = { set_v4_%d; alt_v4_%d; drop_v4_%d; NoAction; }
        default_action = NoAction;
        size = 512;
    }
`, i, name, key, kind, chainDep, i, i, i)
	}

	// --------------------------------------------------------- IPv6 chain
	v6Names := []string{
		"ipv6_acl", "ipv6_forward", "ipv6_nexthop", "ipv6_local_delivery",
		"ipv6_encap_select", "ipv6_src_rewrite", "ipv6_dst_rewrite",
		"ipv6_flowlabel_policy", "ipv6_hoplimit_policy", "ipv6_egress_iface",
		"ipv6_neighbor", "ipv6_mtu_check", "ipv6_scope_check", "ipv6_final_xform",
	}
	for i := 1; i <= scionV6Depth; i++ {
		name := v6Names[i-1]
		var key, kind string
		switch i {
		case 1:
			key, kind = "hdr.ipv6.src", "ternary"
		case 2:
			key, kind = "hdr.ipv6.dst", "ternary"
		default:
			key, kind = fmt.Sprintf("meta.v6_%d", i-1), "exact"
		}
		chainDep := ""
		switch i {
		case 1:
			chainDep = fmt.Sprintf("            meta.s%d: exact;\n", scionSharedDepth)
		case 2:
			chainDep = "            meta.v6_1: exact;\n"
		}
		fmt.Fprintf(&b, `    action set_v6_%d(bit<16> v) {
        meta.v6_%d = v;
        hdr.ipv6.traffic_class = hdr.ipv6.traffic_class | 8w4;
`, i, i)
		scionPad(&b, 6, 20+i)
		fmt.Fprintf(&b, `    }
    action alt_v6_%d(bit<16> v) {
        meta.v6_%d = v ^ 16w0x0400;
`, i, i)
		scionPad(&b, 6, 120+i)
		fmt.Fprintf(&b, `    }
    action drop_v6_%d() {
        mark_to_drop(std);
    }
    table %s {
        key = {
            %s: %s;
%s        }
        actions = { set_v6_%d; alt_v6_%d; drop_v6_%d; NoAction; }
        default_action = NoAction;
        size = 512;
    }
`, i, name, key, kind, chainDep, i, i, i)
	}

	// -------------------------------------------------------------- apply
	b.WriteString("    apply {\n")
	b.WriteString("        if (hdr.scion.isValid()) {\n")
	for i := 1; i <= scionSharedDepth; i++ {
		fmt.Fprintf(&b, "            %s.apply();\n", sharedNames[i-1])
	}
	b.WriteString(`            if (hdr.ipv4.isValid()) {
`)
	for i := 1; i <= scionV4Depth; i++ {
		fmt.Fprintf(&b, "                %s.apply();\n", v4Names[i-1])
	}
	b.WriteString(`                hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
                hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 8w0 ++ hdr.ipv4.ttl, hdr.ipv4.total_len);
                std.egress_port = meta.out_port;
            }
            if (hdr.ipv6.isValid()) {
`)
	for i := 1; i <= scionV6Depth; i++ {
		fmt.Fprintf(&b, "                %s.apply();\n", v6Names[i-1])
	}
	b.WriteString(`                hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 8w1;
                std.egress_port = meta.v6_` + fmt.Sprint(scionV6Depth) + `[8:0];
            }
            hdr.eth.src = hdr.eth.dst;
            hdr.eth.dst = meta.next_mac;
        }
    }
}
`)
	return b.String()
}

// scionRepresentative builds the supplied deployment configuration: the
// shared chain and the IPv4 underlay are populated; IPv6 stays unused
// ("This configuration does not use IPv6 and all the IPv6 program paths
// are unused", §4.2).
func scionRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	// Shared chain: a handful of interface/path entries per table.
	sharedNames := []string{
		"ingress_iface", "scion_version_check", "path_epoch",
		"hop_field_validate", "mac_verify", "segment_switch",
	}
	for i := 1; i <= scionSharedDepth; i++ {
		table := "Ingress." + sharedNames[i-1]
		for e := 0; e < 3; e++ {
			var matches []controlplane.FieldMatch
			if i == 1 {
				matches = []controlplane.FieldMatch{exactMatch(9, uint64(e+1))}
			} else {
				matches = []controlplane.FieldMatch{exactMatch(16, uint64(e+1))}
			}
			if i == 4 {
				matches = append(matches, exactMatch(16, uint64(40+e)))
				ups = append(ups, insertUpdate(table, 0, matches,
					fmt.Sprintf("accept_hop_%d", i), sym.NewBV(16, uint64(e+1)), sym.NewBV(1, 1)))
				continue
			}
			ups = append(ups, insertUpdate(table, 0, matches,
				fmt.Sprintf("set_s%d", i), sym.NewBV(16, uint64(e+1)), sym.NewBV(16, uint64(e+7))))
		}
	}
	// IPv4 chain.
	v4Names := []string{
		"ipv4_acl", "ipv4_forward", "ipv4_nexthop", "ipv4_local_delivery",
		"ipv4_encap_select", "ipv4_src_rewrite", "ipv4_dst_rewrite",
		"ipv4_dscp_policy", "ipv4_ttl_policy", "ipv4_egress_iface",
	}
	for i := 1; i <= scionV4Depth; i++ {
		table := "Ingress." + v4Names[i-1]
		for e := 0; e < 3; e++ {
			var matches []controlplane.FieldMatch
			switch i {
			case 1:
				matches = []controlplane.FieldMatch{
					ternMatch(32, uint64(0x0a000000+e<<16), 0xffff0000),
					exactMatch(16, uint64(e+1)),
				}
			case 2:
				matches = []controlplane.FieldMatch{
					lpmMatch(32, uint64(0xC0A80000+e<<8), 24),
					exactMatch(16, uint64(e+1)),
				}
			default:
				matches = []controlplane.FieldMatch{exactMatch(16, uint64(e+1))}
			}
			if i == 2 {
				ups = append(ups, insertUpdate(table, 0, matches,
					"set_v4_2", sym.NewBV(16, uint64(e+1)), sym.NewBV(9, uint64(e+2))))
				continue
			}
			ups = append(ups, insertUpdate(table, 0, matches,
				fmt.Sprintf("set_v4_%d", i), sym.NewBV(16, uint64(e+1))))
		}
	}
	return ups
}

// scionIPv6Enable returns the update batch that enables the IPv6 paths
// (§4.2: "a batch of updates that enables the previously unused IPv6
// paths"). After applying it, the program needs the maximum number of
// stages again.
func scionIPv6Enable() []*controlplane.Update {
	var ups []*controlplane.Update
	v6Names := []string{
		"ipv6_acl", "ipv6_forward", "ipv6_nexthop", "ipv6_local_delivery",
		"ipv6_encap_select", "ipv6_src_rewrite", "ipv6_dst_rewrite",
		"ipv6_flowlabel_policy", "ipv6_hoplimit_policy", "ipv6_egress_iface",
		"ipv6_neighbor", "ipv6_mtu_check", "ipv6_scope_check", "ipv6_final_xform",
	}
	for i := 1; i <= scionV6Depth; i++ {
		table := "Ingress." + v6Names[i-1]
		for e := 0; e < 2; e++ {
			var matches []controlplane.FieldMatch
			switch i {
			case 1, 2:
				matches = []controlplane.FieldMatch{
					{Kind: controlplane.MatchTernary,
						Value: sym.NewBV2(128, 0x2001_0db8_0000_0000+uint64(e), 0),
						Mask:  sym.NewBV2(128, ^uint64(0), 0)},
					exactMatch(16, uint64(e+1)),
				}
			default:
				matches = []controlplane.FieldMatch{exactMatch(16, uint64(e+1))}
			}
			ups = append(ups, insertUpdate(table, 0, matches,
				fmt.Sprintf("set_v6_%d", i), sym.NewBV(16, uint64(e+1))))
		}
	}
	return ups
}
