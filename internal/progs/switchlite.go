package progs

import (
	"fmt"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
)

// SwitchLite re-creates switch.p4's role in the evaluation: the
// kitchen-sink data-center switch with the union of every feature (the
// paper §1 calls these "kitchen-sink programs"). Feature blocks: L2
// (VLAN/STP/MAC learning), IPv4/IPv6 routing with ECMP, ingress/egress
// ACLs, NAT, tunnels, QoS, multicast and system policy — plus a deep
// underlay feature chain that exercises the full pipeline depth. The
// paper analyses switch.p4 with parser analysis skipped (§4.2); the
// catalog entry records that.
func SwitchLite() *Program {
	return &Program{
		Name:                "switch",
		Summary:             "switch.p4-style L2/L3 pipeline (parser skipped, as in the paper)",
		Source:              switchLiteSource(),
		Target:              devcompiler.TargetTofino,
		SkipParser:          true,
		PaperStatements:     786,
		PaperCompileSeconds: 106,
		PaperAnalysis:       "9s",
		PaperUpdate:         "90ms",
		Representative:      switchLiteRepresentative,
		BurstTable:          "Ingress.ipv4_lpm",
	}
}

// Feature chains (name lists are package-level so the representative
// config builder reuses them).
var (
	swUnderlay = chainNames("feat", 20)
	swL2       = []string{"port_vlan", "stp_group", "smac", "dmac", "l2_flood", "learn_notify"}
	swRoute    = []string{"vrf_select", "ipv4_host", "ipv4_lpm", "ecmp_group", "ecmp_member", "nexthop", "rif", "neighbor"}
	swV6Route  = []string{"ipv6_host", "ipv6_lpm"}
	swACL      = []string{"mac_acl", "pre_ingress_acl", "ipv4_ingress_acl", "ipv6_ingress_acl", "mirror_acl", "ipv4_egress_acl", "ipv6_egress_acl", "system_acl"}
	swTunnel   = []string{"tunnel_term", "tunnel_decap", "tunnel_vni", "tunnel_encap", "tunnel_dst"}
	swQoS      = []string{"dscp_map", "tc_map", "meter_index", "queue_map", "wred_profile"}
	swNAT      = []string{"nat_src", "nat_dst", "nat_twice", "nat_flow"}
	swMcast    = []string{"mcast_route", "mcast_group", "mcast_rpf"}

	swEgrRewrite = []string{"egr_rif", "egr_smac_rewrite", "egr_dmac_rewrite", "egr_vlan_xlate", "egr_encap", "egr_tunnel_rewrite"}
	swEgrACL     = []string{"egr_ipv4_acl", "egr_ipv6_acl", "egr_mirror_acl", "egr_system_acl"}
	swEgrQueue   = []string{"egr_queue_map", "egr_wred", "egr_shaper", "egr_ecn_mark", "egr_buffer_profile"}
	swEgrMisc    = []string{"egr_mtu_check", "egr_sflow", "egr_port_stats", "egr_crc_fixup", "egr_timestamp"}
)

func chainNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%d", prefix, i+1)
	}
	return out
}

func switchLiteSource() string {
	var b strings.Builder
	b.WriteString(`// switch-lite: the kitchen-sink data-center switch.
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header vlan_t {
    bit<3> pcp;
    bit<1> cfi;
    bit<12> vid;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<128> src;
    bit<128> dst;
}
header tcp_t {
    bit<16> sport;
    bit<16> dport;
    bit<32> seq;
    bit<32> ack;
    bit<16> flags;
}
header vxlan_t {
    bit<8> flags;
    bit<24> rsv;
    bit<24> vni;
    bit<8> rsv2;
}
struct headers {
    ethernet_t eth;
    vlan_t vlan;
    ipv4_t ipv4;
    ipv6_t ipv6;
    tcp_t tcp;
    vxlan_t vxlan;
}
struct metadata {
`)
	emitMetaFields(&b, "feat", len(swUnderlay))
	emitMetaFields(&b, "l2", len(swL2))
	emitMetaFields(&b, "rt", len(swRoute))
	emitMetaFields(&b, "rt6", len(swV6Route))
	emitMetaFields(&b, "acl", len(swACL))
	emitMetaFields(&b, "tun", len(swTunnel))
	emitMetaFields(&b, "qos", len(swQoS))
	emitMetaFields(&b, "nat", len(swNAT))
	emitMetaFields(&b, "mc", len(swMcast))
	emitMetaFields(&b, "erw", len(swEgrRewrite))
	emitMetaFields(&b, "eacl", len(swEgrACL))
	emitMetaFields(&b, "eq", len(swEgrQueue))
	emitMetaFields(&b, "em", len(swEgrMisc))
	b.WriteString(`    bit<16> vrf;
    bit<9> out_port;
    bit<16> l4_sport;
    bit<16> l4_dport;
}
parser SwitchParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x8100: parse_vlan;
            16w0x0800: parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.type) {
            16w0x0800: parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6: parse_tcp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            8w6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
`)
	// Deep underlay feature chain: drives the pipeline to full depth.
	emitChain(&b, chainOpts{
		Names: swUnderlay, MetaPrefix: "feat",
		FirstKey: "std.ingress_port", FirstKind: "exact",
		BodyAux: []string{
			"meta.vrf = meta.vrf + 16w1;",
		},
		WithDrop: true, Size: 128, Pad: 1, Alt: true,
	})
	// L2.
	emitChain(&b, chainOpts{
		Names: swL2, MetaPrefix: "l2",
		FirstKey: "hdr.eth.src", FirstKind: "exact",
		ExtraFirstKeys: []string{"hdr.vlan.vid: exact"},
		BodyAux:        []string{"hdr.vlan.pcp = hdr.vlan.pcp | 3w1;"},
		WithDrop:       true, Size: 4096,
	})
	// IPv4 routing.
	emitChain(&b, chainOpts{
		Names: swRoute, MetaPrefix: "rt",
		FirstKey: "hdr.ipv4.dst", FirstKind: "lpm",
		BodyAux: []string{
			"meta.out_port = v[8:0];",
			"hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;",
		},
		WithDrop: true, Size: 4096, Pad: 3, Alt: true,
	})
	// IPv6 routing.
	emitChain(&b, chainOpts{
		Names: swV6Route, MetaPrefix: "rt6",
		FirstKey: "hdr.ipv6.dst", FirstKind: "lpm",
		BodyAux:  []string{"hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 8w1;"},
		WithDrop: true, Size: 1024, Pad: 3, Alt: true,
	})
	// ACL stages (TCAM-heavy).
	emitChain(&b, chainOpts{
		Names: swACL, MetaPrefix: "acl",
		FirstKey: "hdr.ipv4.src", FirstKind: "ternary",
		ExtraFirstKeys: []string{
			"hdr.ipv4.dst: ternary", "hdr.ipv4.protocol: ternary",
			"meta.l4_sport: ternary", "meta.l4_dport: ternary",
		},
		BodyAux:  []string{"std.mcast_grp = std.mcast_grp | 16w1;"},
		WithDrop: true, Size: 1024, Pad: 2, Alt: true,
	})
	// Tunnels.
	emitChain(&b, chainOpts{
		Names: swTunnel, MetaPrefix: "tun",
		FirstKey: "hdr.vxlan.vni", FirstKind: "exact",
		BodyAux:  []string{"hdr.vxlan.flags = hdr.vxlan.flags | 8w8;"},
		WithDrop: false, Size: 1024, Pad: 2, Alt: true,
	})
	// QoS.
	emitChain(&b, chainOpts{
		Names: swQoS, MetaPrefix: "qos",
		FirstKey: "hdr.ipv4.diffserv", FirstKind: "exact",
		BodyAux:  []string{"hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w1;"},
		WithDrop: false, Size: 64, Pad: 2, Alt: true,
	})
	// NAT.
	emitChain(&b, chainOpts{
		Names: swNAT, MetaPrefix: "nat",
		FirstKey: "hdr.ipv4.src", FirstKind: "exact",
		ExtraFirstKeys: []string{"meta.l4_sport: exact"},
		BodyAux: []string{
			"hdr.ipv4.src = 32w0x0a000001;",
			"meta.l4_sport = meta.l4_sport + 16w1;",
		},
		WithDrop: false, Size: 2048, Pad: 2, Alt: true,
	})
	// Multicast.
	emitChain(&b, chainOpts{
		Names: swMcast, MetaPrefix: "mc",
		FirstKey: "hdr.ipv4.dst", FirstKind: "ternary",
		BodyAux:  []string{"std.mcast_grp = v;"},
		WithDrop: true, Size: 1024, Pad: 2, Alt: true,
	})
	// Stats registers give the sketch-style statefulness.
	b.WriteString(`    register<bit<32>>(1024) port_bytes;
    register<bit<32>>(1024) drop_counters;
    bit<32> stat_tmp;
    apply {
        meta.l4_sport = hdr.tcp.sport;
        meta.l4_dport = hdr.tcp.dport;
`)
	emitApplies(&b, "        ", swUnderlay)
	b.WriteString("        if (hdr.vlan.isValid()) {\n")
	emitApplies(&b, "            ", swL2)
	b.WriteString("        }\n")
	b.WriteString("        if (hdr.ipv4.isValid()) {\n")
	emitApplies(&b, "            ", swRoute)
	emitApplies(&b, "            ", swNAT)
	b.WriteString(`            hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 8w0 ++ hdr.ipv4.ttl, hdr.ipv4.total_len);
        }
`)
	b.WriteString("        if (hdr.ipv6.isValid()) {\n")
	emitApplies(&b, "            ", swV6Route)
	b.WriteString("        }\n")
	emitApplies(&b, "        ", swACL)
	b.WriteString("        if (hdr.vxlan.isValid()) {\n")
	emitApplies(&b, "            ", swTunnel)
	b.WriteString("        }\n")
	emitApplies(&b, "        ", swQoS)
	b.WriteString("        if (hdr.ipv4.dst[31:28] == 4w0xE) {\n")
	emitApplies(&b, "            ", swMcast)
	b.WriteString(`        }
        port_bytes.read(stat_tmp, 16w0 ++ std.ingress_port[8:0] ++ 7w0);
        stat_tmp = stat_tmp + std.packet_length;
        port_bytes.write(16w0 ++ std.ingress_port[8:0] ++ 7w0, stat_tmp);
        if (std.drop == 1w1) {
            drop_counters.read(stat_tmp, 32w1);
            stat_tmp = stat_tmp + 32w1;
            drop_counters.write(32w1, stat_tmp);
        }
        std.egress_port = meta.out_port;
    }
}
control Egress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
`)
	// Egress feature blocks: rewrite, egress ACL, queueing, MTU/sflow.
	emitChain(&b, chainOpts{
		Names: swEgrRewrite, MetaPrefix: "erw",
		FirstKey: "meta.out_port", FirstKind: "exact",
		BodyAux:  []string{"hdr.eth.src = 32w0 ++ v;"},
		WithDrop: false, Size: 512, Pad: 2, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: swEgrACL, MetaPrefix: "eacl",
		FirstKey: "hdr.ipv4.src", FirstKind: "ternary",
		ExtraFirstKeys: []string{"hdr.ipv4.dst: ternary"},
		BodyAux:        []string{"hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w8;"},
		WithDrop:       true, Size: 512, Pad: 2, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: swEgrQueue, MetaPrefix: "eq",
		FirstKey: "hdr.ipv4.diffserv", FirstKind: "exact",
		BodyAux:  []string{"std.mcast_grp = std.mcast_grp | 16w2;"},
		WithDrop: false, Size: 64, Pad: 2, Alt: true,
	})
	emitChain(&b, chainOpts{
		Names: swEgrMisc, MetaPrefix: "em",
		FirstKey: "std.egress_port", FirstKind: "exact",
		BodyAux:  []string{"hdr.eth.type = hdr.eth.type | 16w1;"},
		WithDrop: false, Size: 64, Pad: 2, Alt: true,
	})
	b.WriteString("    apply {\n")
	emitApplies(&b, "        ", swEgrRewrite)
	b.WriteString("        if (hdr.ipv4.isValid()) {\n")
	emitApplies(&b, "            ", swEgrACL)
	b.WriteString("        }\n")
	emitApplies(&b, "        ", swEgrQueue)
	emitApplies(&b, "        ", swEgrMisc)
	b.WriteString(`    }
}
`)
	return b.String()
}

// switchLiteRepresentative populates a typical deployment: L2, IPv4
// routing, underlay features and two ACL stages carry entries; IPv6,
// NAT, tunnels and multicast are present but unused.
func switchLiteRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	ups = append(ups, chainRepresentative("Ingress", "feat", swUnderlay, 2,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{exactMatch(9, uint64(e+1))}
		})...)
	ups = append(ups, chainRepresentative("Ingress", "l2", swL2, 2,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{exactMatch(48, uint64(0xAA00+e)), exactMatch(12, uint64(100+e))}
		})...)
	ups = append(ups, chainRepresentative("Ingress", "rt", swRoute, 3,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{lpmMatch(32, uint64(0x0a000000+e<<16), 16)}
		})...)
	ups = append(ups, chainRepresentative("Ingress", "acl", swACL[:2], 2,
		func(e int) []controlplane.FieldMatch {
			return []controlplane.FieldMatch{
				ternMatch(32, uint64(0xC0A80000+e), 0xffffffff),
				ternMatch(32, 0, 0),
				ternMatch(8, 6, 0xff),
				ternMatch(16, 0, 0),
				ternMatch(16, uint64(443+e), 0xffff),
			}
		})...)
	return ups
}
