package progs

import (
	"fmt"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
)

// The three remaining Table-1 Tofino programs: Beaucoup (multi-query
// sketching), ACCTurbo (aggregate clustering for pulse-wave DDoS
// defense) and DTA (direct telemetry access). Re-created as
// register-heavy measurement pipelines whose table/stage structure
// lands their modelled compile times in the paper's 22–28 s band.

// sketchSource builds a measurement-style program: a parser for
// eth/ipv4/udp, the given chains, and per-chain register state.
func sketchSource(name string, chains []chainOpts, registers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `// %s: measurement pipeline (goflay re-creation).
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    udp_t l4;
}
struct metadata {
`, name)
	for _, c := range chains {
		emitMetaFields(&b, c.MetaPrefix, len(c.Names))
	}
	b.WriteString(`    bit<32> hash_a;
    bit<32> hash_b;
    bit<9> out_port;
}
parser SketchParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_l4;
            8w6: parse_l4;
            default: accept;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
`)
	for _, c := range chains {
		emitChain(&b, c)
	}
	for i := 0; i < registers; i++ {
		fmt.Fprintf(&b, "    register<bit<32>>(2048) sketch_%d;\n", i)
	}
	b.WriteString("    bit<32> cell;\n    apply {\n")
	b.WriteString("        meta.hash_a = hdr.ipv4.src ^ hdr.ipv4.dst;\n")
	b.WriteString("        meta.hash_b = meta.hash_a ^ (16w0 ++ hdr.l4.sport) ^ (16w0 ++ hdr.l4.dport);\n")
	for _, c := range chains {
		emitApplies(&b, "        ", c.Names)
	}
	for i := 0; i < registers; i++ {
		fmt.Fprintf(&b, `        sketch_%d.read(cell, meta.hash_%s & 32w0x7FF);
        cell = cell + 32w1;
        sketch_%d.write(meta.hash_%s & 32w0x7FF, cell);
`, i, []string{"a", "b"}[i%2], i, []string{"a", "b"}[i%2])
	}
	b.WriteString(`        std.egress_port = meta.out_port;
    }
}
`)
	return b.String()
}

func sketchChains(specs []struct {
	prefix string
	n      int
	key    string
	kind   string
}) []chainOpts {
	var out []chainOpts
	for _, s := range specs {
		out = append(out, chainOpts{
			Names:      chainNames(s.prefix+"_t", s.n),
			MetaPrefix: s.prefix,
			FirstKey:   s.key, FirstKind: s.kind,
			BodyAux:  []string{"meta.out_port = v[8:0];"},
			WithDrop: false, Size: 256, Pad: 2,
		})
	}
	return out
}

// Beaucoup: answering many traffic queries, one memory update at a time
// — two query-dispatch chains plus coupon registers.
func Beaucoup() *Program {
	chains := sketchChains([]struct {
		prefix string
		n      int
		key    string
		kind   string
	}{
		{"query", 12, "hdr.ipv4.dst", "exact"},
		{"coupon", 12, "hdr.l4.dport", "exact"},
	})
	return &Program{
		Name:                "beaucoup",
		Summary:             "Beaucoup multi-query sketching pipeline with coupon registers",
		Source:              sketchSource("beaucoup", chains, 4),
		Target:              devcompiler.TargetTofino,
		PaperCompileSeconds: 22,
		Representative: func() []*controlplane.Update {
			return chainRepresentative("Ingress", "query", chainNames("query_t", 12), 2,
				func(e int) []controlplane.FieldMatch {
					return []controlplane.FieldMatch{exactMatch(32, uint64(0x0a00000a+e))}
				})
		},
		BurstTable: "Ingress.query_t_1",
	}
}

// ACCTurbo: aggregate-based congestion control — online clustering over
// packet aggregates with a prioritisation chain; ternary cluster tables.
func ACCTurbo() *Program {
	chains := sketchChains([]struct {
		prefix string
		n      int
		key    string
		kind   string
	}{
		{"cluster", 16, "hdr.ipv4.src", "ternary"},
		{"prio", 10, "hdr.ipv4.diffserv", "exact"},
	})
	return &Program{
		Name:                "accturbo",
		Summary:             "ACCTurbo online aggregate clustering with ternary cluster tables",
		Source:              sketchSource("accturbo", chains, 4),
		Target:              devcompiler.TargetTofino,
		PaperCompileSeconds: 28,
		Representative: func() []*controlplane.Update {
			return chainRepresentative("Ingress", "cluster", chainNames("cluster_t", 16), 2,
				func(e int) []controlplane.FieldMatch {
					return []controlplane.FieldMatch{ternMatch(32, uint64(e)<<24, 0xff000000)}
				})
		},
		BurstTable: "Ingress.cluster_t_1",
	}
}

// DTA: direct telemetry access — translation of telemetry keys into
// RDMA-style destinations.
func DTA() *Program {
	chains := sketchChains([]struct {
		prefix string
		n      int
		key    string
		kind   string
	}{
		{"trans", 13, "hdr.ipv4.src", "exact"},
		{"qkey", 12, "hdr.l4.sport", "exact"},
	})
	return &Program{
		Name:                "dta",
		Summary:             "DTA telemetry-key translation to RDMA-style destinations",
		Source:              sketchSource("dta", chains, 3),
		Target:              devcompiler.TargetTofino,
		PaperCompileSeconds: 25,
		Representative: func() []*controlplane.Update {
			return chainRepresentative("Ingress", "trans", chainNames("trans_t", 13), 2,
				func(e int) []controlplane.FieldMatch {
					return []controlplane.FieldMatch{exactMatch(32, uint64(0xC0000000+e))}
				})
		},
		BurstTable: "Ingress.trans_t_1",
	}
}
