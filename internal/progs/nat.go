package progs

import (
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// Nat44 is a production-shaped carrier-grade NAT44 slice: per-port zone
// classification, a zone→pool mapping, port-pool allocation registers,
// and forward/reverse per-session translation tables. The session
// tables are what real NAT control planes churn at the Fig. 1
// "NAT/firewall entries" rate, so nat_session_fwd is the program's
// churn/burst target.
func Nat44() *Program {
	return &Program{
		Name:           "nat44",
		Summary:        "NAT44 gateway: zone/pool selection, port-pool registers, per-session translation",
		Source:         nat44Source(),
		Target:         devcompiler.TargetBMv2,
		Representative: nat44Representative,
		BurstTable:     "Ingress.nat_session_fwd",
	}
}

var nat44Egr = []string{"uplink_cfg", "cpe_shaper", "export_meta"}

func nat44Source() string {
	var b strings.Builder
	b.WriteString(`// nat44: carrier-grade NAT44 gateway (goflay re-creation).
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    udp_t l4;
}
struct metadata {
`)
	emitMetaFields(&b, "nategr", len(nat44Egr))
	b.WriteString(`    bit<16> zone;
    bit<16> pool;
    bit<32> pool_base;
    bit<32> sess_hash;
    bit<1> permit;
    bit<1> nat_hit;
    bit<9> out_port;
}
parser NatParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_l4;
            8w6: parse_l4;
            default: accept;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set_zone(bit<16> z) {
        meta.zone = z;
    }
    table nat_zone {
        key = { std.ingress_port: exact; }
        actions = { set_zone; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    action set_pool(bit<16> pool, bit<32> base) {
        meta.pool = pool;
        meta.pool_base = base;
    }
    table nat_pool {
        key = { meta.zone: exact; }
        actions = { set_pool; NoAction; }
        default_action = NoAction;
        size = 64;
    }
    action nat_permit() {
        meta.permit = 1w1;
    }
    action nat_deny() {
        mark_to_drop(std);
    }
    table nat_acl {
        key = {
            hdr.ipv4.src: ternary;
            hdr.ipv4.dst: ternary;
            hdr.l4.dport: ternary;
        }
        actions = { nat_permit; nat_deny; NoAction; }
        default_action = NoAction;
        size = 256;
    }
    // The forward session table: src ip/port → translated ip/port. This
    // is the table NAT control planes churn continuously.
    action snat(bit<32> nsrc, bit<16> nsport) {
        hdr.ipv4.src = nsrc;
        hdr.l4.sport = nsport;
        meta.nat_hit = 1w1;
    }
    action session_drop() {
        mark_to_drop(std);
    }
    table nat_session_fwd {
        key = {
            hdr.ipv4.src: exact;
            hdr.l4.sport: exact;
        }
        actions = { snat; session_drop; NoAction; }
        default_action = NoAction;
        size = 4096;
    }
    action dnat(bit<32> odst, bit<16> odport) {
        hdr.ipv4.dst = odst;
        hdr.l4.dport = odport;
    }
    table nat_session_rev {
        key = {
            hdr.ipv4.dst: exact;
            hdr.l4.dport: exact;
        }
        actions = { dnat; NoAction; }
        default_action = NoAction;
        size = 4096;
    }
    action hairpin_set(bit<9> p) {
        meta.out_port = p;
    }
    table nat_hairpin {
        key = { hdr.ipv4.dst: exact; }
        actions = { hairpin_set; NoAction; }
        default_action = NoAction;
        size = 128;
    }
`)
	emitChain(&b, chainOpts{
		Names: nat44Egr, MetaPrefix: "nategr",
		FirstKey: "meta.pool", FirstKind: "exact",
		BodyAux:  []string{"meta.out_port = v[8:0];"},
		WithDrop: false, Size: 64, Pad: 6, Alt: true,
	})
	b.WriteString(`    register<bit<32>>(1024) port_pool;
    register<bit<32>>(2048) session_hits;
    bit<32> cell;
    apply {
        nat_zone.apply();
        nat_pool.apply();
        if (hdr.ipv4.isValid()) {
            nat_acl.apply();
            nat_session_fwd.apply();
            nat_session_rev.apply();
            nat_hairpin.apply();
            meta.sess_hash = hdr.ipv4.src ^ (16w0 ++ hdr.l4.sport);
            port_pool.read(cell, (16w0 ++ meta.pool) & 32w0x3FF);
            cell = cell + 32w1;
            port_pool.write((16w0 ++ meta.pool) & 32w0x3FF, cell);
            session_hits.read(cell, meta.sess_hash & 32w0x7FF);
            cell = cell + 32w1;
            session_hits.write(meta.sess_hash & 32w0x7FF, cell);
            if (hdr.ipv4.ttl == 8w0) {
                mark_to_drop(std);
            } else {
                hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
                hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 8w0 ++ hdr.ipv4.ttl, hdr.ipv4.total_len);
            }
`)
	emitApplies(&b, "            ", nat44Egr)
	b.WriteString(`            std.egress_port = meta.out_port;
        }
    }
}
`)
	return b.String()
}

// Nat44SessionEntry builds the i-th unique forward-session entry.
func Nat44SessionEntry(i int) *controlplane.Update {
	u := uint64(i)
	return insertUpdate("Ingress.nat_session_fwd", 0,
		[]controlplane.FieldMatch{
			exactMatch(32, 0x0a000000+u*2654435761%0x00ffffff),
			exactMatch(16, 1024+u%60000),
		},
		"snat", sym.NewBV(32, 0xC6336400+u%256), sym.NewBV(16, 20000+u%40000))
}

// nat44Representative: a small working NAT config — two zones with
// pools, a permit ACL, a handful of sessions in both directions.
func nat44Representative() []*controlplane.Update {
	var ups []*controlplane.Update
	for z := 0; z < 2; z++ {
		ups = append(ups, insertUpdate("Ingress.nat_zone", 0,
			[]controlplane.FieldMatch{exactMatch(9, uint64(z+1))},
			"set_zone", sym.NewBV(16, uint64(z+1))))
		ups = append(ups, insertUpdate("Ingress.nat_pool", 0,
			[]controlplane.FieldMatch{exactMatch(16, uint64(z+1))},
			"set_pool", sym.NewBV(16, uint64(z+1)), sym.NewBV(32, 0xC6336400+uint64(z)<<8)))
	}
	ups = append(ups, insertUpdate("Ingress.nat_acl", 10,
		[]controlplane.FieldMatch{
			ternMatch(32, 0x0a000000, 0xff000000),
			ternMatch(32, 0, 0),
			ternMatch(16, 0, 0),
		}, "nat_permit"))
	for i := 0; i < 4; i++ {
		ups = append(ups, Nat44SessionEntry(i))
		u := uint64(i)
		ups = append(ups, insertUpdate("Ingress.nat_session_rev", 0,
			[]controlplane.FieldMatch{
				exactMatch(32, 0xC6336400+u),
				exactMatch(16, 20000+u),
			},
			"dnat", sym.NewBV(32, 0x0a000001+u), sym.NewBV(16, 1024+u)))
	}
	ups = append(ups, insertUpdate("Ingress.nat_hairpin", 0,
		[]controlplane.FieldMatch{exactMatch(32, 0xC6336401)},
		"hairpin_set", sym.NewBV(9, 3)))
	ups = append(ups, chainRepresentative("Ingress", "nategr", nat44Egr, 2, nil)...)
	return ups
}
