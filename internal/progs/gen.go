package progs

import (
	"fmt"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/sym"
)

// chainOpts describes one generated match-action chain: n tables where
// table i keys on the metadata field table i-1 writes. Chains are the
// structural backbone of the catalog programs: their depth drives stage
// usage, their count drives table counts, and their action bodies drive
// statement counts.
type chainOpts struct {
	// Names are the table names, one per chain link.
	Names []string
	// MetaPrefix names the chain's metadata fields (Prefix_i, bit<16>).
	MetaPrefix string
	// FirstKey/FirstKind key the first table (e.g. a packet field);
	// empty FirstKey keys the first table on MetaPrefix_0 (which then
	// must be written elsewhere) — usually FirstKey is set.
	FirstKey  string
	FirstKind string
	// ExtraFirstKeys appends additional key components to the first
	// table ("expr: kind" lines).
	ExtraFirstKeys []string
	// BodyAux are extra assignment statements added to every set
	// action (raw source lines).
	BodyAux []string
	// WithDrop adds a drop action per table.
	WithDrop bool
	// Size is the table capacity (0 → default).
	Size int
	// Pad adds this many scratch-accumulator statements to every set
	// action body (realistic ALU work that scales statement counts the
	// way real feature-rich actions do).
	Pad int
	// Alt adds a second data-carrying action per table (real tables
	// rarely have a single action).
	Alt bool
}

// emitMetaFields declares the chain's metadata fields plus its scratch
// accumulator.
func emitMetaFields(b *strings.Builder, prefix string, n int) {
	for i := 1; i <= n; i++ {
		fmt.Fprintf(b, "    bit<16> %s_%d;\n", prefix, i)
	}
	fmt.Fprintf(b, "    bit<16> %s_scratch;\n", prefix)
}

// emitChain writes the chain's actions and tables into a control body.
func emitChain(b *strings.Builder, o chainOpts) {
	for i := 1; i <= len(o.Names); i++ {
		name := o.Names[i-1]
		key, kind := fmt.Sprintf("meta.%s_%d", o.MetaPrefix, i-1), "exact"
		if i == 1 && o.FirstKey != "" {
			key, kind = o.FirstKey, o.FirstKind
		}
		pad := func(seed int) {
			for j := 0; j < o.Pad; j++ {
				fmt.Fprintf(b, "        meta.%s_scratch = meta.%s_scratch + 16w%d;\n",
					o.MetaPrefix, o.MetaPrefix, (seed*31+j*7+1)%4096)
			}
		}
		fmt.Fprintf(b, "    action set_%s_%d(bit<16> v) {\n", o.MetaPrefix, i)
		fmt.Fprintf(b, "        meta.%s_%d = v;\n", o.MetaPrefix, i)
		for _, aux := range o.BodyAux {
			fmt.Fprintf(b, "        %s\n", aux)
		}
		pad(i)
		b.WriteString("    }\n")
		actions := fmt.Sprintf("set_%s_%d; NoAction;", o.MetaPrefix, i)
		if o.Alt {
			fmt.Fprintf(b, "    action alt_%s_%d(bit<16> v) {\n", o.MetaPrefix, i)
			fmt.Fprintf(b, "        meta.%s_%d = v ^ 16w0x00FF;\n", o.MetaPrefix, i)
			pad(i + 1000)
			b.WriteString("    }\n")
			actions = fmt.Sprintf("set_%s_%d; alt_%s_%d; NoAction;", o.MetaPrefix, i, o.MetaPrefix, i)
		}
		if o.WithDrop {
			fmt.Fprintf(b, "    action drop_%s_%d() {\n        mark_to_drop(std);\n    }\n", o.MetaPrefix, i)
			actions = fmt.Sprintf("drop_%s_%d; ", o.MetaPrefix, i) + actions
		}
		fmt.Fprintf(b, "    table %s {\n        key = {\n            %s: %s;\n", name, key, kind)
		if i == 1 {
			for _, ek := range o.ExtraFirstKeys {
				fmt.Fprintf(b, "            %s;\n", ek)
			}
		}
		fmt.Fprintf(b, "        }\n        actions = { %s }\n        default_action = NoAction;\n", actions)
		if o.Size > 0 {
			fmt.Fprintf(b, "        size = %d;\n", o.Size)
		}
		b.WriteString("    }\n")
	}
}

// emitApplies writes the apply statements for a chain.
func emitApplies(b *strings.Builder, indent string, names []string) {
	for _, n := range names {
		fmt.Fprintf(b, "%s%s.apply();\n", indent, n)
	}
}

// chainRepresentative inserts `entries` exact-match entries into every
// chain table (first-table key shapes must be provided by the caller
// when they are not plain 16-bit exact).
func chainRepresentative(control, prefix string, names []string, entries int, firstMatches func(e int) []controlplane.FieldMatch) []*controlplane.Update {
	var ups []*controlplane.Update
	for i := 1; i <= len(names); i++ {
		table := control + "." + names[i-1]
		for e := 0; e < entries; e++ {
			var m []controlplane.FieldMatch
			if i == 1 && firstMatches != nil {
				m = firstMatches(e)
			} else {
				m = []controlplane.FieldMatch{exactMatch(16, uint64(e+1))}
			}
			ups = append(ups, insertUpdate(table, 0, m,
				fmt.Sprintf("set_%s_%d", prefix, i), sym.NewBV(16, uint64(e+1))))
		}
	}
	return ups
}
