package progs

import (
	"strings"

	"repro/internal/controlplane"
	"repro/internal/devcompiler"
	"repro/internal/sym"
)

// L4LB is a production-shaped L4 load balancer: VIP classification, a
// connection-affinity table that pins established flows to their
// backend, a hash-bucket backend pool for new flows, backend health
// gating, and the DIP rewrite. The affinity table is the churn target:
// connection state arrives and expires continuously while the VIP and
// pool configuration stays quasi-static — exactly the split Fig. 1
// describes.
func L4LB() *Program {
	return &Program{
		Name:           "l4lb",
		Summary:        "L4 load balancer: VIP map, connection-affinity pinning, hash-bucket backend pool",
		Source:         l4lbSource(),
		Target:         devcompiler.TargetBMv2,
		Representative: l4lbRepresentative,
		BurstTable:     "Ingress.conn_affinity",
	}
}

var l4lbMeta = []string{"vip_stats_cfg", "qos_class", "telemetry_tag"}

func l4lbSource() string {
	var b strings.Builder
	b.WriteString(`// l4lb: L4 load balancer with connection affinity (goflay re-creation).
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src;
    bit<32> dst;
}
header udp_t {
    bit<16> sport;
    bit<16> dport;
    bit<16> length;
    bit<16> checksum;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
    udp_t l4;
}
struct metadata {
`)
	emitMetaFields(&b, "lbm", len(l4lbMeta))
	b.WriteString(`    bit<16> vip;
    bit<16> backend;
    bit<32> flow_hash;
    bit<8> bucket;
    bit<1> pinned;
    bit<9> out_port;
}
parser LbParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_l4;
            8w6: parse_l4;
            default: accept;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set_vip(bit<16> v) {
        meta.vip = v;
    }
    action vip_drop() {
        mark_to_drop(std);
    }
    table vip_map {
        key = {
            hdr.ipv4.dst: exact;
            hdr.l4.dport: exact;
        }
        actions = { set_vip; vip_drop; NoAction; }
        default_action = NoAction;
        size = 512;
    }
    // Established flows are pinned to the backend that served their
    // first packet; this table carries per-connection state and churns
    // with connection arrivals/expiries.
    action pin_backend(bit<16> b) {
        meta.backend = b;
        meta.pinned = 1w1;
    }
    table conn_affinity {
        key = {
            hdr.ipv4.src: exact;
            hdr.l4.sport: exact;
            meta.vip: exact;
        }
        actions = { pin_backend; NoAction; }
        default_action = NoAction;
        size = 4096;
    }
    action choose_backend(bit<16> b) {
        meta.backend = b;
    }
    table backend_pool {
        key = {
            meta.vip: exact;
            meta.bucket: exact;
        }
        actions = { choose_backend; NoAction; }
        default_action = NoAction;
        size = 1024;
    }
    action backend_down() {
        mark_to_drop(std);
    }
    table backend_health {
        key = { meta.backend: exact; }
        actions = { backend_down; NoAction; }
        default_action = NoAction;
        size = 256;
    }
    action rewrite(bit<32> dip, bit<16> dport, bit<48> dmac, bit<9> port) {
        hdr.ipv4.dst = dip;
        hdr.l4.dport = dport;
        hdr.eth.dst = dmac;
        meta.out_port = port;
    }
    table backend_rewrite {
        key = { meta.backend: exact; }
        actions = { rewrite; NoAction; }
        default_action = NoAction;
        size = 256;
    }
`)
	emitChain(&b, chainOpts{
		Names: l4lbMeta, MetaPrefix: "lbm",
		FirstKey: "meta.vip", FirstKind: "exact",
		BodyAux:  []string{"hdr.ipv4.diffserv = hdr.ipv4.diffserv | 8w1;"},
		WithDrop: false, Size: 64, Pad: 6, Alt: true,
	})
	b.WriteString(`    register<bit<32>>(1024) conn_count;
    register<bit<32>>(1024) vip_pkts;
    bit<32> cell;
    apply {
        if (hdr.ipv4.isValid()) {
            vip_map.apply();
            meta.flow_hash = hdr.ipv4.src ^ (16w0 ++ hdr.l4.sport) ^ (16w0 ++ meta.vip);
            meta.bucket = meta.flow_hash[7:0];
            conn_affinity.apply();
            if (meta.pinned == 1w0) {
                backend_pool.apply();
            }
            backend_health.apply();
            backend_rewrite.apply();
            conn_count.read(cell, (16w0 ++ meta.backend) & 32w0x3FF);
            cell = cell + 32w1;
            conn_count.write((16w0 ++ meta.backend) & 32w0x3FF, cell);
            vip_pkts.read(cell, (16w0 ++ meta.vip) & 32w0x3FF);
            cell = cell + 32w1;
            vip_pkts.write((16w0 ++ meta.vip) & 32w0x3FF, cell);
            if (hdr.ipv4.ttl == 8w0) {
                mark_to_drop(std);
            } else {
                hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
                hdr.ipv4.hdr_checksum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 8w0 ++ hdr.ipv4.ttl, hdr.ipv4.total_len);
            }
`)
	emitApplies(&b, "            ", l4lbMeta)
	b.WriteString(`            std.egress_port = meta.out_port;
        }
    }
}
`)
	return b.String()
}

// L4LBAffinityEntry builds the i-th unique connection-affinity entry.
func L4LBAffinityEntry(i int) *controlplane.Update {
	u := uint64(i)
	return insertUpdate("Ingress.conn_affinity", 0,
		[]controlplane.FieldMatch{
			exactMatch(32, 0xC0A80000+u*2654435761%0x00ffffff),
			exactMatch(16, 1024+u%60000),
			exactMatch(16, 1+u%4),
		},
		"pin_backend", sym.NewBV(16, 1+u%8))
}

// l4lbRepresentative: two VIPs, a few pinned connections, a populated
// backend pool and rewrites for every backend.
func l4lbRepresentative() []*controlplane.Update {
	var ups []*controlplane.Update
	for v := 0; v < 2; v++ {
		ups = append(ups, insertUpdate("Ingress.vip_map", 0,
			[]controlplane.FieldMatch{
				exactMatch(32, 0x0A640000+uint64(v)),
				exactMatch(16, 80+uint64(v)*363),
			}, "set_vip", sym.NewBV(16, uint64(v+1))))
	}
	for i := 0; i < 4; i++ {
		ups = append(ups, L4LBAffinityEntry(i))
	}
	for v := 1; v <= 2; v++ {
		for bkt := 0; bkt < 4; bkt++ {
			ups = append(ups, insertUpdate("Ingress.backend_pool", 0,
				[]controlplane.FieldMatch{
					exactMatch(16, uint64(v)),
					exactMatch(8, uint64(bkt*64)),
				}, "choose_backend", sym.NewBV(16, uint64(1+(v+bkt)%8))))
		}
	}
	for be := 1; be <= 8; be++ {
		u := uint64(be)
		ups = append(ups, insertUpdate("Ingress.backend_rewrite", 0,
			[]controlplane.FieldMatch{exactMatch(16, u)},
			"rewrite",
			sym.NewBV(32, 0x0A0A0000+u), sym.NewBV(16, 8080),
			sym.NewBV(48, 0x02AA00000000+u), sym.NewBV(9, u%4+1)))
	}
	ups = append(ups, insertUpdate("Ingress.backend_health", 0,
		[]controlplane.FieldMatch{exactMatch(16, 7)}, "backend_down"))
	ups = append(ups, chainRepresentative("Ingress", "lbm", l4lbMeta, 2, nil)...)
	return ups
}
