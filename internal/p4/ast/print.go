package ast

import (
	"fmt"
	"strings"
)

// Print renders the program back to P4-style source. The output
// re-parses to an equivalent tree (round-trip tested) and is what the
// CLI shows when displaying specialized programs.
func Print(p *Program) string {
	var pr printer
	pr.program(p)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) program(prog *Program) {
	for _, d := range prog.Typedefs {
		p.printf("typedef %s %s;", typeStr(d.Type), d.Name)
		p.nl()
	}
	for _, d := range prog.Consts {
		p.printf("const %s %s = %s;", typeStr(d.Type), d.Name, ExprString(d.Value))
		p.nl()
	}
	for _, d := range prog.Headers {
		p.fields("header", d.Name, d.Fields)
	}
	for _, d := range prog.Structs {
		p.fields("struct", d.Name, d.Fields)
	}
	for _, d := range prog.Parsers {
		p.parser(d)
	}
	for _, d := range prog.Controls {
		p.control(d)
	}
}

func (p *printer) fields(kw, name string, fields []Field) {
	p.printf("%s %s {", kw, name)
	p.indent++
	for _, f := range fields {
		p.nl()
		p.printf("%s %s;", typeStr(f.Type), f.Name)
	}
	p.indent--
	p.nl()
	p.printf("}")
	p.nl()
}

func typeStr(t Type) string {
	switch t.Kind {
	case TypeBit:
		return fmt.Sprintf("bit<%d>", t.Width)
	case TypeBool:
		return "bool"
	default:
		return t.Name
	}
}

func paramsStr(params []Param) string {
	parts := make([]string, len(params))
	for i, pr := range params {
		if pr.Dir != "" {
			parts[i] = fmt.Sprintf("%s %s %s", pr.Dir, typeStr(pr.Type), pr.Name)
		} else {
			parts[i] = fmt.Sprintf("%s %s", typeStr(pr.Type), pr.Name)
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) parser(d *ParserDecl) {
	p.printf("parser %s(%s) {", d.Name, paramsStr(d.Params))
	p.indent++
	for _, vs := range d.ValueSets {
		p.nl()
		p.printf("value_set<%s>(%d) %s;", typeStr(vs.Type), vs.Size, vs.Name)
	}
	for _, s := range d.States {
		p.nl()
		p.printf("state %s {", s.Name)
		p.indent++
		for _, st := range s.Stmts {
			p.nl()
			p.stmt(st)
		}
		p.nl()
		p.transition(s.Trans)
		p.indent--
		p.nl()
		p.printf("}")
	}
	p.indent--
	p.nl()
	p.printf("}")
	p.nl()
}

func (p *printer) transition(t Transition) {
	if t.Select == nil {
		p.printf("transition %s;", t.Next)
		return
	}
	exprs := make([]string, len(t.Select))
	for i, e := range t.Select {
		exprs[i] = ExprString(e)
	}
	p.printf("transition select(%s) {", strings.Join(exprs, ", "))
	p.indent++
	for _, c := range t.Cases {
		p.nl()
		keys := make([]string, len(c.Keysets))
		for i, k := range c.Keysets {
			switch k.Kind {
			case KeysetDefault:
				keys[i] = "default"
			case KeysetValue:
				keys[i] = ExprString(k.Value)
			case KeysetMask:
				keys[i] = ExprString(k.Value) + " &&& " + ExprString(k.Mask)
			case KeysetValueSet:
				keys[i] = k.Ref
			}
		}
		label := strings.Join(keys, ", ")
		if len(c.Keysets) > 1 {
			label = "(" + label + ")"
		}
		p.printf("%s: %s;", label, c.Next)
	}
	p.indent--
	p.nl()
	p.printf("}")
}

func (p *printer) control(d *ControlDecl) {
	p.printf("control %s(%s) {", d.Name, paramsStr(d.Params))
	p.indent++
	for _, c := range d.Consts {
		p.nl()
		p.printf("const %s %s = %s;", typeStr(c.Type), c.Name, ExprString(c.Value))
	}
	for _, r := range d.Registers {
		p.nl()
		p.printf("register<%s>(%d) %s;", typeStr(r.Elem), r.Size, r.Name)
	}
	for _, v := range d.Locals {
		p.nl()
		if v.Init != nil {
			p.printf("%s %s = %s;", typeStr(v.Type), v.Name, ExprString(v.Init))
		} else {
			p.printf("%s %s;", typeStr(v.Type), v.Name)
		}
	}
	for _, a := range d.Actions {
		p.nl()
		p.printf("action %s(%s) ", a.Name, paramsStr(a.Params))
		p.block(a.Body)
	}
	for _, t := range d.Tables {
		p.nl()
		p.table(t)
	}
	p.nl()
	p.printf("apply ")
	p.block(d.Apply)
	p.indent--
	p.nl()
	p.printf("}")
	p.nl()
}

func (p *printer) table(t *Table) {
	p.printf("table %s {", t.Name)
	p.indent++
	if len(t.Keys) > 0 {
		p.nl()
		p.printf("key = {")
		p.indent++
		for _, k := range t.Keys {
			p.nl()
			p.printf("%s: %s;", ExprString(k.Expr), k.Match)
		}
		p.indent--
		p.nl()
		p.printf("}")
	}
	p.nl()
	p.printf("actions = {")
	p.indent++
	for _, a := range t.Actions {
		p.nl()
		p.printf("%s;", a.Name)
	}
	p.indent--
	p.nl()
	p.printf("}")
	if t.Default != nil {
		p.nl()
		args := make([]string, len(t.Default.Args))
		for i, a := range t.Default.Args {
			args[i] = ExprString(a)
		}
		if len(args) > 0 {
			p.printf("default_action = %s(%s);", t.Default.Name, strings.Join(args, ", "))
		} else {
			p.printf("default_action = %s;", t.Default.Name)
		}
	}
	if t.Size > 0 {
		p.nl()
		p.printf("size = %d;", t.Size)
	}
	p.indent--
	p.nl()
	p.printf("}")
}

func (p *printer) block(b *BlockStmt) {
	p.printf("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.printf("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		if s.Init != nil {
			p.printf("%s %s = %s;", typeStr(s.Type), s.Name, ExprString(s.Init))
		} else {
			p.printf("%s %s;", typeStr(s.Type), s.Name)
		}
	case *AssignStmt:
		p.printf("%s = %s;", ExprString(s.LHS), ExprString(s.RHS))
	case *IfStmt:
		p.printf("if (%s) ", ExprString(s.Cond))
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			p.printf(" else ")
			p.stmtAsBlock(s.Else)
		}
	case *BlockStmt:
		p.block(s)
	case *CallStmt:
		p.printf("%s;", ExprString(s.Call))
	case *ExitStmt:
		p.printf("exit;")
	default:
		p.printf("/* unknown stmt %T */", s)
	}
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.block(&BlockStmt{Stmts: []Stmt{s}})
}

// ExprString renders an expression in source syntax.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		if e.Width > 0 {
			if e.Hi != 0 {
				return fmt.Sprintf("%dw0x%x%016x", e.Width, e.Hi, e.Lo)
			}
			return fmt.Sprintf("%dw0x%x", e.Width, e.Lo)
		}
		if e.Hi != 0 {
			return fmt.Sprintf("0x%x%016x", e.Hi, e.Lo)
		}
		return fmt.Sprintf("0x%x", e.Lo)
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *Ident:
		return e.Name
	case *Member:
		return ExprString(e.X) + "." + e.Name
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return ExprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *UnaryExpr:
		return e.Op + parenthesize(e.X)
	case *BinaryExpr:
		return parenthesize(e.X) + " " + e.Op + " " + parenthesize(e.Y)
	case *TernaryExpr:
		return "(" + ExprString(e.Cond) + " ? " + ExprString(e.Then) + " : " + ExprString(e.Else) + ")"
	case *SliceExpr:
		return parenthesize(e.X) + fmt.Sprintf("[%d:%d]", e.Hi, e.Lo)
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *TernaryExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	default:
		return ExprString(e)
	}
}
