package ast

// CountStatements computes the program-size metric reported in the
// paper's Table 2 ("Program statements"): every executable statement in
// parser states, action bodies and control apply blocks, plus one per
// table (the apply site's match-action work) and one per parser
// transition.
func CountStatements(p *Program) int {
	n := 0
	for _, ps := range p.Parsers {
		for _, st := range ps.States {
			for _, s := range st.Stmts {
				n += countStmt(s)
			}
			n++ // the transition
		}
	}
	for _, c := range p.Controls {
		for _, a := range c.Actions {
			n += countStmt(a.Body) - 1 // don't count the block wrapper
		}
		n += len(c.Tables)
		n += countStmt(c.Apply) - 1
	}
	return n
}

func countStmt(s Stmt) int {
	switch s := s.(type) {
	case *BlockStmt:
		n := 1
		for _, inner := range s.Stmts {
			n += countStmt(inner)
		}
		return n
	case *IfStmt:
		n := 1 + countStmt(s.Then)
		if s.Else != nil {
			n += countStmt(s.Else)
		}
		return n
	case nil:
		return 0
	default:
		return 1
	}
}

// Tables returns every table in the program in declaration order.
func Tables(p *Program) []*Table {
	var out []*Table
	for _, c := range p.Controls {
		out = append(out, c.Tables...)
	}
	return out
}

// WalkStmts calls fn for every statement reachable from s, pre-order.
func WalkStmts(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *BlockStmt:
		for _, inner := range s.Stmts {
			WalkStmts(inner, fn)
		}
	case *IfStmt:
		WalkStmts(s.Then, fn)
		WalkStmts(s.Else, fn)
	}
}

// WalkExprs calls fn for every subexpression of e, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Member:
		WalkExprs(e.X, fn)
	case *CallExpr:
		WalkExprs(e.Fun, fn)
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *UnaryExpr:
		WalkExprs(e.X, fn)
	case *BinaryExpr:
		WalkExprs(e.X, fn)
		WalkExprs(e.Y, fn)
	case *TernaryExpr:
		WalkExprs(e.Cond, fn)
		WalkExprs(e.Then, fn)
		WalkExprs(e.Else, fn)
	case *SliceExpr:
		WalkExprs(e.X, fn)
	}
}
