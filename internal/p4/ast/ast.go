// Package ast defines the abstract syntax tree for goflay's P4-16
// subset, together with a source printer and the statement-count metric
// used by the paper's Table 2.
package ast

import (
	"repro/internal/p4/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types

// TypeKind classifies a syntactic type.
type TypeKind uint8

const (
	// TypeBit is bit<W>.
	TypeBit TypeKind = iota
	// TypeBool is bool.
	TypeBool
	// TypeNamed refers to a typedef, header or struct by name.
	TypeNamed
)

// Type is a syntactic type reference.
type Type struct {
	Kind   TypeKind
	Width  int    // TypeBit only
	Name   string // TypeNamed only
	TokPos token.Pos
}

func (t Type) Pos() token.Pos { return t.TokPos }

// ---------------------------------------------------------------------------
// Declarations

// Program is a parsed compilation unit.
type Program struct {
	Name     string // derived from the source name, informational
	Typedefs []*Typedef
	Consts   []*ConstDecl
	Headers  []*HeaderDecl
	Structs  []*StructDecl
	Parsers  []*ParserDecl
	Controls []*ControlDecl
}

func (p *Program) Pos() token.Pos { return token.Pos{Line: 1, Col: 1} }

// Header returns the header declaration named name, or nil.
func (p *Program) Header(name string) *HeaderDecl {
	for _, h := range p.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Struct returns the struct declaration named name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Control returns the control declaration named name, or nil.
func (p *Program) Control(name string) *ControlDecl {
	for _, c := range p.Controls {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Typedef aliases a name to a type.
type Typedef struct {
	Name   string
	Type   Type
	TokPos token.Pos
}

func (d *Typedef) Pos() token.Pos { return d.TokPos }

// ConstDecl is a compile-time constant.
type ConstDecl struct {
	Name   string
	Type   Type
	Value  Expr
	TokPos token.Pos
}

func (d *ConstDecl) Pos() token.Pos { return d.TokPos }

// Field is a header or struct member.
type Field struct {
	Type   Type
	Name   string
	TokPos token.Pos
}

func (f Field) Pos() token.Pos { return f.TokPos }

// HeaderDecl declares a packet header type.
type HeaderDecl struct {
	Name   string
	Fields []Field
	TokPos token.Pos
}

func (d *HeaderDecl) Pos() token.Pos { return d.TokPos }

// Field returns the field named name, or nil.
func (d *HeaderDecl) Field(name string) *Field {
	for i := range d.Fields {
		if d.Fields[i].Name == name {
			return &d.Fields[i]
		}
	}
	return nil
}

// StructDecl declares a struct type (header containers, metadata).
type StructDecl struct {
	Name   string
	Fields []Field
	TokPos token.Pos
}

func (d *StructDecl) Pos() token.Pos { return d.TokPos }

// Field returns the field named name, or nil.
func (d *StructDecl) Field(name string) *Field {
	for i := range d.Fields {
		if d.Fields[i].Name == name {
			return &d.Fields[i]
		}
	}
	return nil
}

// Param is a parser/control/action parameter. Dir is one of "", "in",
// "out", "inout" ("" for action data parameters, which are
// control-plane-supplied).
type Param struct {
	Dir    string
	Type   Type
	Name   string
	TokPos token.Pos
}

func (p Param) Pos() token.Pos { return p.TokPos }

// ---------------------------------------------------------------------------
// Parser declarations

// ParserDecl is a parser block: a state machine extracting headers.
type ParserDecl struct {
	Name      string
	Params    []Param
	ValueSets []*ValueSet
	States    []*State
	TokPos    token.Pos
}

func (d *ParserDecl) Pos() token.Pos { return d.TokPos }

// State returns the named state, or nil.
func (d *ParserDecl) State(name string) *State {
	for _, s := range d.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ValueSet is a parser value set (PVS), a control-plane-configurable
// match set used in select expressions (paper §3, parser
// specializations).
type ValueSet struct {
	Name   string
	Type   Type
	Size   int
	TokPos token.Pos
}

func (d *ValueSet) Pos() token.Pos { return d.TokPos }

// State is one parser state.
type State struct {
	Name   string
	Stmts  []Stmt
	Trans  Transition
	TokPos token.Pos
}

func (s *State) Pos() token.Pos { return s.TokPos }

// Transition is a parser state transition: either direct (Next set,
// Select nil) or a select over expressions.
type Transition struct {
	Select []Expr
	Cases  []SelectCase
	Next   string // direct transition target; "accept"/"reject" terminate
	TokPos token.Pos
}

func (t Transition) Pos() token.Pos { return t.TokPos }

// SelectCase is one arm of a select transition.
type SelectCase struct {
	Keysets []Keyset
	Next    string
	TokPos  token.Pos
}

// KeysetKind classifies a select keyset entry.
type KeysetKind uint8

const (
	// KeysetValue matches a single value.
	KeysetValue KeysetKind = iota
	// KeysetMask matches value &&& mask.
	KeysetMask
	// KeysetDefault matches anything (default or _).
	KeysetDefault
	// KeysetValueSet matches against a parser value set by name.
	KeysetValueSet
)

// Keyset is one component of a select case label.
type Keyset struct {
	Kind   KeysetKind
	Value  Expr   // KeysetValue, KeysetMask
	Mask   Expr   // KeysetMask
	Ref    string // KeysetValueSet
	TokPos token.Pos
}

// ---------------------------------------------------------------------------
// Control declarations

// ControlDecl is a control block: actions, tables, registers, locals and
// an apply body.
type ControlDecl struct {
	Name      string
	Params    []Param
	Actions   []*Action
	Tables    []*Table
	Registers []*Register
	Locals    []*VarDecl
	Consts    []*ConstDecl
	Apply     *BlockStmt
	TokPos    token.Pos
}

func (d *ControlDecl) Pos() token.Pos { return d.TokPos }

// Action returns the named action, or nil.
func (d *ControlDecl) Action(name string) *Action {
	for _, a := range d.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Table returns the named table, or nil.
func (d *ControlDecl) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Action is a named action with control-plane-supplied data parameters.
type Action struct {
	Name   string
	Params []Param
	Body   *BlockStmt
	TokPos token.Pos
}

func (a *Action) Pos() token.Pos { return a.TokPos }

// MatchKind is a table key's match kind.
type MatchKind uint8

const (
	// MatchExact requires value equality (SRAM-friendly).
	MatchExact MatchKind = iota
	// MatchTernary matches under a per-entry mask (TCAM).
	MatchTernary
	// MatchLPM is longest-prefix match.
	MatchLPM
	// MatchOptional matches a value or wildcards entirely.
	MatchOptional
)

var matchNames = [...]string{"exact", "ternary", "lpm", "optional"}

func (m MatchKind) String() string {
	if int(m) < len(matchNames) {
		return matchNames[m]
	}
	return "match?"
}

// MatchKinds maps spelling to kind, for the parser.
var MatchKinds = map[string]MatchKind{
	"exact": MatchExact, "ternary": MatchTernary,
	"lpm": MatchLPM, "optional": MatchOptional,
}

// TableKey is one key component of a table.
type TableKey struct {
	Expr   Expr
	Match  MatchKind
	TokPos token.Pos
}

// ActionRef references an action from a table's actions list or default.
type ActionRef struct {
	Name   string
	Args   []Expr // bound arguments (default_action only)
	TokPos token.Pos
}

// Table is a match-action table.
type Table struct {
	Name    string
	Keys    []TableKey
	Actions []ActionRef
	Default *ActionRef // nil means NoAction semantics
	Size    int
	TokPos  token.Pos
}

func (t *Table) Pos() token.Pos { return t.TokPos }

// HasAction reports whether the table lists the action.
func (t *Table) HasAction(name string) bool {
	for _, a := range t.Actions {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Register is a stateful register array (control-plane initialisable).
type Register struct {
	Name   string
	Elem   Type
	Size   int
	TokPos token.Pos
}

func (r *Register) Pos() token.Pos { return r.TokPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares a local variable, optionally initialised.
type VarDecl struct {
	Type   Type
	Name   string
	Init   Expr // may be nil
	TokPos token.Pos
}

func (s *VarDecl) Pos() token.Pos { return s.TokPos }
func (*VarDecl) stmtNode()        {}

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	LHS    Expr
	RHS    Expr
	TokPos token.Pos
}

func (s *AssignStmt) Pos() token.Pos { return s.TokPos }
func (*AssignStmt) stmtNode()        {}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond   Expr
	Then   Stmt
	Else   Stmt // may be nil
	TokPos token.Pos
}

func (s *IfStmt) Pos() token.Pos { return s.TokPos }
func (*IfStmt) stmtNode()        {}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Stmts  []Stmt
	TokPos token.Pos
}

func (s *BlockStmt) Pos() token.Pos { return s.TokPos }
func (*BlockStmt) stmtNode()        {}

// CallStmt is an expression-statement call: t.apply(), pkt.extract(...),
// mark_to_drop(std), reg.read(dst, idx), hdr.h.setValid(), ...
type CallStmt struct {
	Call   *CallExpr
	TokPos token.Pos
}

func (s *CallStmt) Pos() token.Pos { return s.TokPos }
func (*CallStmt) stmtNode()        {}

// ExitStmt terminates pipeline processing.
type ExitStmt struct {
	TokPos token.Pos
}

func (s *ExitStmt) Pos() token.Pos { return s.TokPos }
func (*ExitStmt) stmtNode()        {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal. Width 0 means unsized (to be inferred);
// the value is held in a 128-bit (Hi, Lo) pair.
type IntLit struct {
	Width  int
	Hi, Lo uint64
	TokPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.TokPos }
func (*IntLit) exprNode()        {}

// BoolLit is true/false.
type BoolLit struct {
	Value  bool
	TokPos token.Pos
}

func (e *BoolLit) Pos() token.Pos { return e.TokPos }
func (*BoolLit) exprNode()        {}

// Ident is a bare identifier.
type Ident struct {
	Name   string
	TokPos token.Pos
}

func (e *Ident) Pos() token.Pos { return e.TokPos }
func (*Ident) exprNode()        {}

// Member is x.Name.
type Member struct {
	X      Expr
	Name   string
	TokPos token.Pos
}

func (e *Member) Pos() token.Pos { return e.TokPos }
func (*Member) exprNode()        {}

// CallExpr is fun(args...). fun is an Ident (builtin/extern) or Member
// (method form: t.apply, pkt.extract, h.isValid, reg.read).
type CallExpr struct {
	Fun    Expr
	Args   []Expr
	TokPos token.Pos
}

func (e *CallExpr) Pos() token.Pos { return e.TokPos }
func (*CallExpr) exprNode()        {}

// UnaryExpr is op X, with Op one of "!", "~", "-".
type UnaryExpr struct {
	Op     string
	X      Expr
	TokPos token.Pos
}

func (e *UnaryExpr) Pos() token.Pos { return e.TokPos }
func (*UnaryExpr) exprNode()        {}

// BinaryExpr is X op Y.
type BinaryExpr struct {
	Op     string // "+", "-", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "++"
	X, Y   Expr
	TokPos token.Pos
}

func (e *BinaryExpr) Pos() token.Pos { return e.TokPos }
func (*BinaryExpr) exprNode()        {}

// TernaryExpr is cond ? t : e.
type TernaryExpr struct {
	Cond   Expr
	Then   Expr
	Else   Expr
	TokPos token.Pos
}

func (e *TernaryExpr) Pos() token.Pos { return e.TokPos }
func (*TernaryExpr) exprNode()        {}

// SliceExpr is x[hi:lo], a bit slice with constant bounds.
type SliceExpr struct {
	X      Expr
	Hi, Lo int
	TokPos token.Pos
}

func (e *SliceExpr) Pos() token.Pos { return e.TokPos }
func (*SliceExpr) exprNode()        {}
