package ast_test

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
)

const src = `
typedef bit<48> mac_t;
const bit<16> ETH_IPV4 = 16w0x0800;
header ethernet_t { mac_t dst; mac_t src; bit<16> type; }
struct headers { ethernet_t eth; }
struct metadata { bit<8> n; }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(4) vs;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: accept;
            16w0x8100 &&& 16w0xEFFF: accept;
            vs: accept;
            default: reject;
        }
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(8) r;
    bit<8> local_v;
    action a(bit<8> x) { meta.n = x; }
    action b() { mark_to_drop(std); }
    table t {
        key = { hdr.eth.dst: exact; }
        actions = { a; b; NoAction; }
        default_action = a(8w3);
        size = 16;
    }
    apply {
        local_v = 8w1;
        if (meta.n == local_v) {
            t.apply();
        } else {
            exit;
        }
        meta.n = meta.n + ~(8w2) - (8w1 << 1) ^ (8w4 | 8w1 & 8w3);
        meta.n = hdr.eth.dst[7:0];
        meta.n = meta.n == 8w0 ? 8w9 : meta.n;
    }
}
`

func mustParse(t *testing.T, s string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("ast-test", s)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPrintCoversEveryConstruct: the printer round-trips a program using
// every syntactic construct the AST supports.
func TestPrintCoversEveryConstruct(t *testing.T) {
	p1 := mustParse(t, src)
	out1 := ast.Print(p1)
	p2, err := parser.Parse("rt", out1)
	if err != nil {
		t.Fatalf("printed source does not re-parse: %v\n%s", err, out1)
	}
	out2 := ast.Print(p2)
	if out1 != out2 {
		t.Fatalf("print is not a fixed point:\n%s\n----\n%s", out1, out2)
	}
	for _, frag := range []string{
		"typedef bit<48> mac_t;", "const bit<16> ETH_IPV4", "value_set<bit<16>>(4) vs;",
		"&&& ", "register<bit<32>>(8) r;", "default_action = a(8w0x3);",
		"exit;", "transition select", "default: reject;",
	} {
		if !strings.Contains(out1, frag) {
			t.Errorf("printed source missing %q:\n%s", frag, out1)
		}
	}
}

func TestLookupHelpers(t *testing.T) {
	p := mustParse(t, src)
	if p.Header("ethernet_t") == nil || p.Header("nope") != nil {
		t.Fatal("Header lookup")
	}
	if p.Struct("headers") == nil || p.Struct("ethernet_t") != nil {
		t.Fatal("Struct lookup")
	}
	cd := p.Control("C")
	if cd == nil || p.Control("P") != nil {
		t.Fatal("Control lookup")
	}
	if cd.Action("a") == nil || cd.Action("zz") != nil {
		t.Fatal("Action lookup")
	}
	tb := cd.Table("t")
	if tb == nil || cd.Table("u") != nil {
		t.Fatal("Table lookup")
	}
	if !tb.HasAction("b") || tb.HasAction("zz") {
		t.Fatal("HasAction")
	}
	h := p.Header("ethernet_t")
	if h.Field("dst") == nil || h.Field("zz") != nil {
		t.Fatal("header Field lookup")
	}
	ps := p.Parsers[0]
	if ps.State("start") == nil || ps.State("zz") != nil {
		t.Fatal("State lookup")
	}
	if len(ast.Tables(p)) != 1 {
		t.Fatal("Tables")
	}
}

func TestWalkers(t *testing.T) {
	p := mustParse(t, src)
	cd := p.Control("C")
	stmts := 0
	ast.WalkStmts(cd.Apply, func(ast.Stmt) { stmts++ })
	// block + assign + if + (block + call) + (block + exit) + 3 assigns
	if stmts != 10 {
		t.Fatalf("WalkStmts visited %d, want 10", stmts)
	}
	exprs := 0
	asg := cd.Apply.Stmts[2].(*ast.AssignStmt) // the big arithmetic one
	ast.WalkExprs(asg.RHS, func(ast.Expr) { exprs++ })
	if exprs < 10 {
		t.Fatalf("WalkExprs visited %d, want >=10", exprs)
	}
	// Walkers tolerate nil.
	ast.WalkStmts(nil, func(ast.Stmt) { t.Fatal("visited nil") })
	ast.WalkExprs(nil, func(ast.Expr) { t.Fatal("visited nil") })
}

func TestCountStatementsShape(t *testing.T) {
	p := mustParse(t, src)
	n := ast.CountStatements(p)
	// parser: extract + transition = 2; actions a,b = 2; table = 1;
	// apply: assign(1) + if(1 + then-block(1+apply) + else-block(1+exit)
	// = 5) + three assigns(3) = 9. Total 14 — pinned to catch metric
	// drift, since Table 2 depends on it.
	if n != 14 {
		t.Fatalf("CountStatements = %d, want 14", n)
	}
}

func TestExprString(t *testing.T) {
	p := mustParse(t, src)
	cd := p.Control("C")
	tern := cd.Apply.Stmts[4].(*ast.AssignStmt)
	s := ast.ExprString(tern.RHS)
	if !strings.Contains(s, "?") || !strings.Contains(s, ":") {
		t.Fatalf("ternary print: %s", s)
	}
	slice := cd.Apply.Stmts[3].(*ast.AssignStmt)
	if got := ast.ExprString(slice.RHS); got != "hdr.eth.dst[7:0]" {
		t.Fatalf("slice print: %s", got)
	}
}

func TestMatchKindString(t *testing.T) {
	if ast.MatchExact.String() != "exact" || ast.MatchTernary.String() != "ternary" ||
		ast.MatchLPM.String() != "lpm" || ast.MatchOptional.String() != "optional" {
		t.Fatal("match kind names")
	}
}
