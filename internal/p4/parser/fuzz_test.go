package parser

import (
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
)

// FuzzP4Parse is the frontend's native fuzz target: arbitrary input
// must never panic the parser or the type checker, and any program
// that makes it through both must survive a print → reparse → print
// round trip with the printer as a fixpoint. That last property is
// what the whole pipeline leans on — the specializer's output is
// ast.Print of a rewritten tree, and it must remain a valid program.
func FuzzP4Parse(f *testing.F) {
	f.Add(fig3Src)
	f.Add(fig5Src)
	f.Add(`const bit<8> K = 8w7;`)
	f.Add(`
header h_t { bit<16> v; }
struct headers { h_t h; }
struct metadata { bit<8> a; }
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action a(bit<8> x) { meta.a = x; }
    table t {
        key = { hdr.h.v: exact; }
        actions = { a; NoAction; }
        default_action = NoAction;
    }
    apply { t.apply(); }
}
`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.p4", src)
		if err != nil {
			return // rejecting malformed input is the expected outcome
		}
		if _, err := typecheck.Check(prog); err != nil {
			return // parses but ill-typed: also fine
		}
		printed := ast.Print(prog)
		reparsed, err := Parse("fuzz-reprint.p4", printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\noriginal:\n%s\nprinted:\n%s", err, src, printed)
		}
		if _, err := typecheck.Check(reparsed); err != nil {
			t.Fatalf("printed program does not re-typecheck: %v\nprinted:\n%s", err, printed)
		}
		if again := ast.Print(reparsed); again != printed {
			t.Fatalf("printer is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
