package parser

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
)

// fig3Src is the program from the paper's Fig. 3 (left side).
const fig3Src = `
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers {
    ethernet_t eth;
}
struct metadata {
}
parser MyParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set(bit<16> type) {
        hdr.eth.type = type;
    }
    action drop() {
        mark_to_drop(std);
    }
    action noop() {
    }
    table eth_table {
        key = { hdr.eth.dst: ternary; }
        actions = { set; drop; noop; }
        default_action = noop;
        size = 1024;
    }
    apply {
        eth_table.apply();
    }
}
`

// fig5Src is the program from the paper's Fig. 5a.
const fig5Src = `
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers {
    ethernet_t eth;
}
struct metadata {
}
parser MyParser(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(h.eth);
        transition accept;
    }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) {
        egress_port = port_var;
    }
    action noop() {
    }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        h.eth.dst = egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
        std.egress_port = egress_port;
    }
}
`

func TestParseFig3(t *testing.T) {
	prog, err := Parse("fig3", fig3Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Headers) != 1 || prog.Headers[0].Name != "ethernet_t" {
		t.Fatal("header missing")
	}
	if len(prog.Headers[0].Fields) != 3 {
		t.Fatal("ethernet fields wrong")
	}
	ctrl := prog.Control("Ingress")
	if ctrl == nil {
		t.Fatal("Ingress missing")
	}
	if len(ctrl.Actions) != 3 {
		t.Fatalf("actions = %d, want 3", len(ctrl.Actions))
	}
	tbl := ctrl.Table("eth_table")
	if tbl == nil {
		t.Fatal("eth_table missing")
	}
	if len(tbl.Keys) != 1 || tbl.Keys[0].Match != ast.MatchTernary {
		t.Fatal("key wrong")
	}
	if got, ok := keyPath(tbl.Keys[0].Expr); !ok || got != "hdr.eth.dst" {
		t.Fatalf("key path = %q", got)
	}
	if len(tbl.Actions) != 3 || tbl.Default == nil || tbl.Default.Name != "noop" {
		t.Fatal("action list or default wrong")
	}
	if tbl.Size != 1024 {
		t.Fatal("size wrong")
	}
	if len(ctrl.Apply.Stmts) != 1 {
		t.Fatal("apply should have one statement")
	}
}

func keyPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.Member:
		base, ok := keyPath(e.X)
		return base + "." + e.Name, ok
	}
	return "", false
}

func TestParseFig5TernaryExpr(t *testing.T) {
	prog, err := Parse("fig5", fig5Src)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := prog.Control("Ingress")
	assign, ok := ctrl.Apply.Stmts[2].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T", ctrl.Apply.Stmts[2])
	}
	tern, ok := assign.RHS.(*ast.TernaryExpr)
	if !ok {
		t.Fatalf("RHS is %T, want ternary", assign.RHS)
	}
	if _, ok := tern.Cond.(*ast.BinaryExpr); !ok {
		t.Fatal("ternary condition should be a comparison")
	}
	lit := tern.Then.(*ast.IntLit)
	if lit.Width != 48 || lit.Lo != 0xAAAAAAAAAAAA {
		t.Fatalf("then literal wrong: %+v", lit)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `
struct metadata { }
control C(inout metadata meta, inout standard_metadata_t std) {
    bit<8> x;
    bit<8> y;
    bool b;
    apply {
        x = 8w1 + 8w2 << 2;
        b = x == 8w3 && y != 8w4 || !b;
        x = x & 8w0xf0 | y ^ 8w1;
    }
}
`
	prog, err := Parse("prec", src)
	if err != nil {
		t.Fatal(err)
	}
	apply := prog.Controls[0].Apply
	// x = (1+2) << 2 — shift binds tighter than +? No: in our table SHL
	// (8) binds tighter than PLUS (9)? Higher number = tighter, so + is
	// tighter than <<: x = (1+2) << 2.
	s0 := apply.Stmts[0].(*ast.AssignStmt)
	shl := s0.RHS.(*ast.BinaryExpr)
	if shl.Op != "<<" {
		t.Fatalf("top op %q, want <<", shl.Op)
	}
	if add := shl.X.(*ast.BinaryExpr); add.Op != "+" {
		t.Fatalf("lhs of shift should be +, got %q", add.Op)
	}
	// b = ((x==3) && (y!=4)) || (!b)
	s1 := apply.Stmts[1].(*ast.AssignStmt)
	or := s1.RHS.(*ast.BinaryExpr)
	if or.Op != "||" {
		t.Fatalf("top op %q, want ||", or.Op)
	}
	and := or.X.(*ast.BinaryExpr)
	if and.Op != "&&" {
		t.Fatalf("lhs op %q, want &&", and.Op)
	}
	if _, ok := or.Y.(*ast.UnaryExpr); !ok {
		t.Fatal("rhs should be unary !")
	}
	// x = (x & 0xf0) | (y ^ 1): & (7) tighter than ^ (6) tighter than | (5)
	s2 := apply.Stmts[2].(*ast.AssignStmt)
	top := s2.RHS.(*ast.BinaryExpr)
	if top.Op != "|" {
		t.Fatalf("top op %q, want |", top.Op)
	}
	if l := top.X.(*ast.BinaryExpr); l.Op != "&" {
		t.Fatalf("lhs op %q", l.Op)
	}
	if r := top.Y.(*ast.BinaryExpr); r.Op != "^" {
		t.Fatalf("rhs op %q", r.Op)
	}
}

func TestParseSelectTransition(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t { bit<32> src; bit<32> dst; }
struct headers { ethernet_t eth; ipv4_t ipv4; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(8) tunnel_types;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            16w0x8100 &&& 16w0xEFFF: parse_vlan;
            tunnel_types: parse_tunnel;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
    state parse_vlan {
        transition accept;
    }
    state parse_tunnel {
        transition accept;
    }
}
`
	prog, err := Parse("sel", src)
	if err != nil {
		t.Fatal(err)
	}
	ps := prog.Parsers[0]
	if len(ps.ValueSets) != 1 || ps.ValueSets[0].Name != "tunnel_types" || ps.ValueSets[0].Size != 8 {
		t.Fatal("value_set wrong")
	}
	start := ps.State("start")
	if start == nil || start.Trans.Select == nil {
		t.Fatal("start select missing")
	}
	cases := start.Trans.Cases
	if len(cases) != 4 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases[0].Keysets[0].Kind != ast.KeysetValue || cases[0].Next != "parse_ipv4" {
		t.Fatal("case 0 wrong")
	}
	if cases[1].Keysets[0].Kind != ast.KeysetMask {
		t.Fatal("case 1 should be masked")
	}
	if cases[2].Keysets[0].Kind != ast.KeysetValueSet || cases[2].Keysets[0].Ref != "tunnel_types" {
		t.Fatal("case 2 should be a value-set ref")
	}
	if cases[3].Keysets[0].Kind != ast.KeysetDefault {
		t.Fatal("case 3 should be default")
	}
}

func TestParseRegisterAndCalls(t *testing.T) {
	src := `
struct metadata { bit<32> idx; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(1024) counts;
    bit<32> tmp;
    apply {
        counts.read(tmp, meta.idx);
        tmp = tmp + 32w1;
        counts.write(meta.idx, tmp);
    }
}
`
	prog, err := Parse("reg", src)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := prog.Controls[0]
	if len(ctrl.Registers) != 1 || ctrl.Registers[0].Size != 1024 {
		t.Fatal("register wrong")
	}
	if len(ctrl.Apply.Stmts) != 3 {
		t.Fatal("apply statements wrong")
	}
	if _, ok := ctrl.Apply.Stmts[0].(*ast.CallStmt); !ok {
		t.Fatal("read should be a call statement")
	}
}

func TestParseIfElseChainAndSlice(t *testing.T) {
	src := `
header ipv6_t { bit<128> src; bit<128> dst; }
struct headers { ipv6_t ipv6; }
struct metadata { }
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    bit<16> top;
    apply {
        if (hdr.ipv6.isValid()) {
            top = hdr.ipv6.dst[127:112];
        } else if (top == 16w0) {
            top = 16w1;
        } else {
            exit;
        }
    }
}
`
	prog, err := Parse("ifelse", src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Controls[0].Apply.Stmts[0].(*ast.IfStmt)
	inner := ifs.Else.(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("else-if chain broken")
	}
	then := ifs.Then.(*ast.BlockStmt)
	asg := then.Stmts[0].(*ast.AssignStmt)
	sl := asg.RHS.(*ast.SliceExpr)
	if sl.Hi != 127 || sl.Lo != 112 {
		t.Fatalf("slice bounds %d:%d", sl.Hi, sl.Lo)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"missing semicolon", "typedef bit<8> x", "expected ;"},
		{"bad decl", "flub x;", "expected declaration"},
		{"state without transition", `
parser P(packet_in pkt) { state start { } }`, "transition"},
		{"control without apply", `
control C(inout standard_metadata_t std) { bit<8> x; }`, "apply"},
		{"bad match kind", `
control C(inout standard_metadata_t std) {
  action a() { }
  table t { key = { std.drop: fuzzy; } actions = { a; } }
  apply { }
}`, "unknown match kind"},
		{"giant literal", `
control C(inout standard_metadata_t std) {
  bit<8> x;
  apply { x = 8w340282366920938463463374607431768211457; }
}`, "exceeds 128 bits"},
		{"expr statement", `
control C(inout standard_metadata_t std) {
  bit<8> x;
  apply { x + 8w1; }
}`, "must be a call or assignment"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseIntLit(t *testing.T) {
	cases := []struct {
		lit    string
		w      int
		hi, lo uint64
		ok     bool
	}{
		{"255", 0, 0, 255, true},
		{"0x800", 0, 0, 0x800, true},
		{"8w255", 8, 0, 255, true},
		{"16w0x0800", 16, 0, 0x800, true},
		{"1_000", 0, 0, 1000, true},
		{"128w0xffffffffffffffffffffffffffffffff", 128, ^uint64(0), ^uint64(0), true},
		{"129w1", 0, 0, 0, false},
		{"0w1", 0, 0, 0, false},
		{"8wzz", 0, 0, 0, false},
		{"340282366920938463463374607431768211456", 0, 0, 0, false}, // 2^128
	}
	for _, c := range cases {
		w, hi, lo, err := ParseIntLit(c.lit)
		if c.ok {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.lit, err)
				continue
			}
			if w != c.w || hi != c.hi || lo != c.lo {
				t.Errorf("%q: got (%d, %#x, %#x), want (%d, %#x, %#x)", c.lit, w, hi, lo, c.w, c.hi, c.lo)
			}
		} else if err == nil {
			t.Errorf("%q: expected error", c.lit)
		}
	}
}

// TestPrintRoundTrip: Print output re-parses to a tree that prints
// identically (fixed point).
func TestPrintRoundTrip(t *testing.T) {
	for _, src := range []string{fig3Src, fig5Src} {
		p1, err := Parse("rt", src)
		if err != nil {
			t.Fatal(err)
		}
		out1 := ast.Print(p1)
		p2, err := Parse("rt2", out1)
		if err != nil {
			t.Fatalf("printed source does not re-parse: %v\n%s", err, out1)
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Fatalf("print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

func TestCountStatements(t *testing.T) {
	prog, err := Parse("fig5", fig5Src)
	if err != nil {
		t.Fatal(err)
	}
	// fig5: parser has 1 stmt + 1 transition; control has 2 action
	// bodies (1 + 0 stmts), 1 table, 4 apply stmts.
	got := ast.CountStatements(prog)
	want := 1 + 1 + 1 + 0 + 1 + 4
	if got != want {
		t.Fatalf("CountStatements = %d, want %d", got, want)
	}
}
