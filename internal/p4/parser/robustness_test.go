package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/p4/typecheck"
)

// TestParserNeverPanics mutates valid source in deterministic ways
// (truncation, byte flips, token deletion) and requires the whole
// frontend to fail with errors, never panics. This is the
// failure-injection bar for the pipeline's entry point.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{fig3Src, fig5Src, `
typedef bit<48> mac_t;
const bit<16> K = 16w7;
header h_t { mac_t m; bit<16> v; }
struct headers { h_t h; }
struct metadata { bit<8> a; }
parser P(packet_in pkt, out headers hdr, inout metadata meta) {
    value_set<bit<16>>(2) vs;
    state start {
        pkt.extract(hdr.h);
        transition select(hdr.h.v) {
            K &&& 16w0xff: accept;
            vs: accept;
            default: reject;
        }
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(4) r;
    action a(bit<8> x) { meta.a = x; }
    table t {
        key = { hdr.h.m: ternary; }
        actions = { a; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (t.apply().hit) {
            meta.a = meta.a + 8w1;
        } else {
            exit;
        }
    }
}
`}
	r := rand.New(rand.NewSource(2024))
	run := func(src string) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("frontend panicked on mutated input: %v\nsource:\n%s", p, src)
			}
		}()
		prog, err := Parse("mutated", src)
		if err != nil {
			return // an error is the expected outcome
		}
		// If it parses, the type checker must also not panic.
		_, _ = typecheck.Check(prog)
	}
	for _, seed := range seeds {
		// Truncations at every prefix boundary (cheap and brutal).
		for cut := 0; cut < len(seed); cut += 7 {
			run(seed[:cut])
		}
		// Random single-byte corruptions.
		bytes := "{}();=<>!&|^+-*/:,.~?@0129azAZ_\"' \n"
		for trial := 0; trial < 400; trial++ {
			b := []byte(seed)
			for k := 0; k < 1+r.Intn(4); k++ {
				b[r.Intn(len(b))] = bytes[r.Intn(len(bytes))]
			}
			run(string(b))
		}
		// Line deletions.
		lines := strings.Split(seed, "\n")
		for i := range lines {
			mutated := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "\n")
			run(mutated)
		}
	}
}
