// Package parser builds goflay AST from P4 source text via recursive
// descent.
package parser

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/p4/ast"
	"repro/internal/p4/lexer"
	"repro/internal/p4/token"
)

// Error is a parse error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a compilation unit. name is used for diagnostics and as
// Program.Name.
func Parse(name, src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src), name: name}
	p.next()
	p.next() // fill cur and peek
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lex  *lexer.Lexer
	name string
	cur  token.Token
	peek token.Token
}

func (p *parser) next() {
	p.cur = p.peek
	p.peek = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.cur.Kind != k {
		return token.Token{}, p.errorf(p.cur.Pos, "expected %s, found %s", k, p.cur)
	}
	t := p.cur
	p.next()
	return t, nil
}

func (p *parser) expectIdent() (string, token.Pos, error) {
	if p.cur.Kind != token.IDENT {
		return "", token.Pos{}, p.errorf(p.cur.Pos, "expected identifier, found %s", p.cur)
	}
	name, pos := p.cur.Lit, p.cur.Pos
	p.next()
	return name, pos, nil
}

// expectGT consumes a single '>' even when the lexer merged two of them
// into '>>' (as in register<bit<32>>), the classic nested-generic case.
func (p *parser) expectGT() error {
	switch p.cur.Kind {
	case token.GT:
		p.next()
		return nil
	case token.SHR:
		p.cur.Kind = token.GT // consume the first '>', leave the second
		return nil
	case token.GE:
		p.cur.Kind = token.ASSIGN // consume the '>', leave the '='
		return nil
	default:
		return p.errorf(p.cur.Pos, "expected >, found %s", p.cur)
	}
}

func (p *parser) accept(k token.Kind) bool {
	if p.cur.Kind == k {
		p.next()
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Top level

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{Name: p.name}
	for p.cur.Kind != token.EOF {
		switch p.cur.Kind {
		case token.TYPEDEF:
			d, err := p.typedef()
			if err != nil {
				return nil, err
			}
			prog.Typedefs = append(prog.Typedefs, d)
		case token.CONST:
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, d)
		case token.HEADER:
			d, err := p.headerDecl()
			if err != nil {
				return nil, err
			}
			prog.Headers = append(prog.Headers, d)
		case token.STRUCT:
			d, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, d)
		case token.PARSER:
			d, err := p.parserDecl()
			if err != nil {
				return nil, err
			}
			prog.Parsers = append(prog.Parsers, d)
		case token.CONTROL:
			d, err := p.controlDecl()
			if err != nil {
				return nil, err
			}
			prog.Controls = append(prog.Controls, d)
		default:
			return nil, p.errorf(p.cur.Pos, "expected declaration, found %s", p.cur)
		}
	}
	return prog, nil
}

func (p *parser) typedef() (*ast.Typedef, error) {
	pos := p.cur.Pos
	p.next() // typedef
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.Typedef{Name: name, Type: t, TokPos: pos}, nil
}

func (p *parser) constDecl() (*ast.ConstDecl, error) {
	pos := p.cur.Pos
	p.next() // const
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.ASSIGN); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.ConstDecl{Name: name, Type: t, Value: v, TokPos: pos}, nil
}

func (p *parser) typeRef() (ast.Type, error) {
	pos := p.cur.Pos
	switch p.cur.Kind {
	case token.BIT:
		p.next()
		if _, err := p.expect(token.LT); err != nil {
			return ast.Type{}, err
		}
		w, err := p.intValue()
		if err != nil {
			return ast.Type{}, err
		}
		if err := p.expectGT(); err != nil {
			return ast.Type{}, err
		}
		return ast.Type{Kind: ast.TypeBit, Width: w, TokPos: pos}, nil
	case token.BOOL:
		p.next()
		return ast.Type{Kind: ast.TypeBool, TokPos: pos}, nil
	case token.IDENT:
		name := p.cur.Lit
		p.next()
		return ast.Type{Kind: ast.TypeNamed, Name: name, TokPos: pos}, nil
	default:
		return ast.Type{}, p.errorf(pos, "expected type, found %s", p.cur)
	}
}

// intValue parses a plain (unwidthed) integer token into an int.
func (p *parser) intValue() (int, error) {
	t, err := p.expect(token.INT)
	if err != nil {
		return 0, err
	}
	w, hi, lo, err := ParseIntLit(t.Lit)
	if err != nil {
		return 0, p.errorf(t.Pos, "%v", err)
	}
	if w != 0 || hi != 0 || lo > 1<<30 {
		return 0, p.errorf(t.Pos, "expected a small plain integer, found %q", t.Lit)
	}
	return int(lo), nil
}

func (p *parser) fieldList() ([]ast.Field, error) {
	var fields []ast.Field
	for p.cur.Kind != token.RBRACE {
		t, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		name, pos, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		fields = append(fields, ast.Field{Type: t, Name: name, TokPos: pos})
	}
	return fields, nil
}

func (p *parser) headerDecl() (*ast.HeaderDecl, error) {
	pos := p.cur.Pos
	p.next() // header
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	fields, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return &ast.HeaderDecl{Name: name, Fields: fields, TokPos: pos}, nil
}

func (p *parser) structDecl() (*ast.StructDecl, error) {
	pos := p.cur.Pos
	p.next() // struct
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	fields, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return &ast.StructDecl{Name: name, Fields: fields, TokPos: pos}, nil
}

func (p *parser) params() ([]ast.Param, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	var out []ast.Param
	for p.cur.Kind != token.RPAREN {
		if len(out) > 0 {
			if _, err := p.expect(token.COMMA); err != nil {
				return nil, err
			}
		}
		pos := p.cur.Pos
		dir := ""
		if p.cur.Kind == token.IDENT {
			switch p.cur.Lit {
			case "in", "out", "inout":
				dir = p.cur.Lit
				p.next()
			}
		}
		t, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, ast.Param{Dir: dir, Type: t, Name: name, TokPos: pos})
	}
	p.next() // )
	return out, nil
}

// ---------------------------------------------------------------------------
// Parser declarations

func (p *parser) parserDecl() (*ast.ParserDecl, error) {
	pos := p.cur.Pos
	p.next() // parser
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.params()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	d := &ast.ParserDecl{Name: name, Params: params, TokPos: pos}
	for p.cur.Kind != token.RBRACE {
		switch p.cur.Kind {
		case token.VALUESET:
			vs, err := p.valueSet()
			if err != nil {
				return nil, err
			}
			d.ValueSets = append(d.ValueSets, vs)
		case token.STATE:
			st, err := p.state()
			if err != nil {
				return nil, err
			}
			d.States = append(d.States, st)
		default:
			return nil, p.errorf(p.cur.Pos, "expected state or value_set in parser, found %s", p.cur)
		}
	}
	p.next() // }
	return d, nil
}

func (p *parser) valueSet() (*ast.ValueSet, error) {
	pos := p.cur.Pos
	p.next() // value_set
	if _, err := p.expect(token.LT); err != nil {
		return nil, err
	}
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectGT(); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	size, err := p.intValue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.ValueSet{Name: name, Type: t, Size: size, TokPos: pos}, nil
}

func (p *parser) state() (*ast.State, error) {
	pos := p.cur.Pos
	p.next() // state
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	st := &ast.State{Name: name, TokPos: pos}
	for p.cur.Kind != token.TRANSITION && p.cur.Kind != token.RBRACE {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		st.Stmts = append(st.Stmts, s)
	}
	if p.cur.Kind != token.TRANSITION {
		return nil, p.errorf(p.cur.Pos, "parser state %s must end with a transition", name)
	}
	tr, err := p.transition()
	if err != nil {
		return nil, err
	}
	st.Trans = tr
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) transition() (ast.Transition, error) {
	pos := p.cur.Pos
	p.next() // transition
	if p.cur.Kind == token.SELECT {
		p.next()
		if _, err := p.expect(token.LPAREN); err != nil {
			return ast.Transition{}, err
		}
		var sel []ast.Expr
		for {
			e, err := p.expr()
			if err != nil {
				return ast.Transition{}, err
			}
			sel = append(sel, e)
			if !p.accept(token.COMMA) {
				break
			}
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return ast.Transition{}, err
		}
		if _, err := p.expect(token.LBRACE); err != nil {
			return ast.Transition{}, err
		}
		var cases []ast.SelectCase
		for p.cur.Kind != token.RBRACE {
			c, err := p.selectCase(len(sel))
			if err != nil {
				return ast.Transition{}, err
			}
			cases = append(cases, c)
		}
		p.next() // }
		return ast.Transition{Select: sel, Cases: cases, TokPos: pos}, nil
	}
	// Direct transition to a named state (accept/reject are plain names).
	name, _, err := p.expectIdent()
	if err != nil {
		return ast.Transition{}, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return ast.Transition{}, err
	}
	return ast.Transition{Next: name, TokPos: pos}, nil
}

func (p *parser) selectCase(arity int) (ast.SelectCase, error) {
	pos := p.cur.Pos
	var keys []ast.Keyset
	parenthesised := p.accept(token.LPAREN)
	for {
		k, err := p.keyset()
		if err != nil {
			return ast.SelectCase{}, err
		}
		keys = append(keys, k)
		if !parenthesised || !p.accept(token.COMMA) {
			break
		}
	}
	if parenthesised {
		if _, err := p.expect(token.RPAREN); err != nil {
			return ast.SelectCase{}, err
		}
	}
	if len(keys) != arity && !(len(keys) == 1 && keys[0].Kind == ast.KeysetDefault) {
		return ast.SelectCase{}, p.errorf(pos, "select case has %d keysets, want %d", len(keys), arity)
	}
	if _, err := p.expect(token.COLON); err != nil {
		return ast.SelectCase{}, err
	}
	next, _, err := p.expectIdent()
	if err != nil {
		return ast.SelectCase{}, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return ast.SelectCase{}, err
	}
	return ast.SelectCase{Keysets: keys, Next: next, TokPos: pos}, nil
}

func (p *parser) keyset() (ast.Keyset, error) {
	pos := p.cur.Pos
	switch p.cur.Kind {
	case token.DEFAULT, token.USCORE:
		p.next()
		return ast.Keyset{Kind: ast.KeysetDefault, TokPos: pos}, nil
	case token.IDENT:
		// A bare identifier in keyset position is a value-set reference
		// unless it is a declared constant; the type checker
		// disambiguates. We record it as a value-set reference and let
		// typecheck reinterpret const names.
		name := p.cur.Lit
		p.next()
		return ast.Keyset{Kind: ast.KeysetValueSet, Ref: name, TokPos: pos}, nil
	}
	v, err := p.expr()
	if err != nil {
		return ast.Keyset{}, err
	}
	if p.accept(token.MASK) {
		m, err := p.expr()
		if err != nil {
			return ast.Keyset{}, err
		}
		return ast.Keyset{Kind: ast.KeysetMask, Value: v, Mask: m, TokPos: pos}, nil
	}
	return ast.Keyset{Kind: ast.KeysetValue, Value: v, TokPos: pos}, nil
}

// ---------------------------------------------------------------------------
// Control declarations

func (p *parser) controlDecl() (*ast.ControlDecl, error) {
	pos := p.cur.Pos
	p.next() // control
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.params()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	d := &ast.ControlDecl{Name: name, Params: params, TokPos: pos}
	for p.cur.Kind != token.APPLY {
		switch p.cur.Kind {
		case token.ACTION:
			a, err := p.action()
			if err != nil {
				return nil, err
			}
			d.Actions = append(d.Actions, a)
		case token.TABLE:
			t, err := p.table()
			if err != nil {
				return nil, err
			}
			d.Tables = append(d.Tables, t)
		case token.REGISTER:
			r, err := p.register()
			if err != nil {
				return nil, err
			}
			d.Registers = append(d.Registers, r)
		case token.CONST:
			c, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			d.Consts = append(d.Consts, c)
		case token.BIT, token.BOOL, token.IDENT:
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			d.Locals = append(d.Locals, v)
		case token.EOF, token.RBRACE:
			return nil, p.errorf(p.cur.Pos, "control %s has no apply block", name)
		default:
			return nil, p.errorf(p.cur.Pos, "unexpected %s in control %s", p.cur, name)
		}
	}
	p.next() // apply
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	d.Apply = body
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) action() (*ast.Action, error) {
	pos := p.cur.Pos
	p.next() // action
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.params()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.Action{Name: name, Params: params, Body: body, TokPos: pos}, nil
}

func (p *parser) register() (*ast.Register, error) {
	pos := p.cur.Pos
	p.next() // register
	if _, err := p.expect(token.LT); err != nil {
		return nil, err
	}
	elem, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectGT(); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	size, err := p.intValue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.Register{Name: name, Elem: elem, Size: size, TokPos: pos}, nil
}

func (p *parser) table() (*ast.Table, error) {
	pos := p.cur.Pos
	p.next() // table
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	t := &ast.Table{Name: name, TokPos: pos}
	for p.cur.Kind != token.RBRACE {
		switch p.cur.Kind {
		case token.KEY:
			p.next()
			if _, err := p.expect(token.ASSIGN); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBRACE); err != nil {
				return nil, err
			}
			for p.cur.Kind != token.RBRACE {
				kpos := p.cur.Pos
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.COLON); err != nil {
					return nil, err
				}
				mkName, mkPos, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				mk, ok := ast.MatchKinds[mkName]
				if !ok {
					return nil, p.errorf(mkPos, "unknown match kind %q", mkName)
				}
				if _, err := p.expect(token.SEMICOLON); err != nil {
					return nil, err
				}
				t.Keys = append(t.Keys, ast.TableKey{Expr: e, Match: mk, TokPos: kpos})
			}
			p.next() // }
		case token.ACTIONS:
			p.next()
			if _, err := p.expect(token.ASSIGN); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBRACE); err != nil {
				return nil, err
			}
			for p.cur.Kind != token.RBRACE {
				aname, apos, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.SEMICOLON); err != nil {
					return nil, err
				}
				t.Actions = append(t.Actions, ast.ActionRef{Name: aname, TokPos: apos})
			}
			p.next() // }
		case token.DEFAULTACTION:
			p.next()
			if _, err := p.expect(token.ASSIGN); err != nil {
				return nil, err
			}
			aname, apos, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref := &ast.ActionRef{Name: aname, TokPos: apos}
			if p.accept(token.LPAREN) {
				for p.cur.Kind != token.RPAREN {
					if len(ref.Args) > 0 {
						if _, err := p.expect(token.COMMA); err != nil {
							return nil, err
						}
					}
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					ref.Args = append(ref.Args, a)
				}
				p.next() // )
			}
			if _, err := p.expect(token.SEMICOLON); err != nil {
				return nil, err
			}
			t.Default = ref
		case token.SIZE:
			p.next()
			if _, err := p.expect(token.ASSIGN); err != nil {
				return nil, err
			}
			n, err := p.intValue()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.SEMICOLON); err != nil {
				return nil, err
			}
			t.Size = n
		default:
			return nil, p.errorf(p.cur.Pos, "unexpected %s in table %s", p.cur, name)
		}
	}
	p.next() // }
	return t, nil
}

// varDecl parses "type name (= expr)? ;" where type may be a named type.
func (p *parser) varDecl() (*ast.VarDecl, error) {
	pos := p.cur.Pos
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.VarDecl{Type: t, Name: name, Init: init, TokPos: pos}, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) block() (*ast.BlockStmt, error) {
	pos := p.cur.Pos
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{TokPos: pos}
	for p.cur.Kind != token.RBRACE {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) statement() (ast.Stmt, error) {
	switch p.cur.Kind {
	case token.LBRACE:
		return p.block()
	case token.IF:
		return p.ifStmt()
	case token.EXIT:
		pos := p.cur.Pos
		p.next()
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return &ast.ExitStmt{TokPos: pos}, nil
	case token.BIT, token.BOOL:
		return p.varDecl()
	case token.IDENT:
		// Either "TypeName varName ..." (declaration) or an
		// expression statement / assignment.
		if p.peek.Kind == token.IDENT {
			return p.varDecl()
		}
		return p.exprStmt()
	default:
		return nil, p.errorf(p.cur.Pos, "expected statement, found %s", p.cur)
	}
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	pos := p.cur.Pos
	p.next() // if
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els ast.Stmt
	if p.accept(token.ELSE) {
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, TokPos: pos}, nil
}

func (p *parser) exprStmt() (ast.Stmt, error) {
	pos := p.cur.Pos
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(token.ASSIGN) {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return &ast.AssignStmt{LHS: lhs, RHS: rhs, TokPos: pos}, nil
	}
	call, ok := lhs.(*ast.CallExpr)
	if !ok {
		return nil, p.errorf(pos, "expression statement must be a call or assignment")
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.CallStmt{Call: call, TokPos: pos}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

var binaryPrec = map[token.Kind]int{
	token.LOR:  1,
	token.LAND: 2,
	token.EQ:   3, token.NE: 3,
	token.LT: 4, token.LE: 4, token.GT: 4, token.GE: 4,
	token.OR:  5,
	token.XOR: 6,
	token.AND: 7,
	token.SHL: 8, token.SHR: 8,
	token.PLUS: 9, token.MINUS: 9, token.PLUSPLUS: 9,
}

var binaryOpName = map[token.Kind]string{
	token.LOR: "||", token.LAND: "&&", token.EQ: "==", token.NE: "!=",
	token.LT: "<", token.LE: "<=", token.GT: ">", token.GE: ">=",
	token.OR: "|", token.XOR: "^", token.AND: "&", token.SHL: "<<",
	token.SHR: ">>", token.PLUS: "+", token.MINUS: "-", token.PLUSPLUS: "++",
}

func (p *parser) expr() (ast.Expr, error) {
	e, err := p.binaryExpr(1)
	if err != nil {
		return nil, err
	}
	if p.cur.Kind == token.QUESTION {
		pos := p.cur.Pos
		p.next()
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.COLON); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.TernaryExpr{Cond: e, Then: then, Else: els, TokPos: pos}, nil
	}
	return e, nil
}

func (p *parser) binaryExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binaryPrec[p.cur.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := binaryOpName[p.cur.Kind]
		pos := p.cur.Pos
		p.next()
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op, X: lhs, Y: rhs, TokPos: pos}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	switch p.cur.Kind {
	case token.NOT:
		pos := p.cur.Pos
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "!", X: x, TokPos: pos}, nil
	case token.TILDE:
		pos := p.cur.Pos
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "~", X: x, TokPos: pos}, nil
	case token.MINUS:
		pos := p.cur.Pos
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "-", X: x, TokPos: pos}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur.Kind {
		case token.DOT:
			p.next()
			// Member names may collide with keywords (e.g. "apply",
			// "size"); accept keywords as member names.
			name := p.cur.Lit
			if p.cur.Kind != token.IDENT {
				if !p.cur.Kind.IsKeyword() {
					return nil, p.errorf(p.cur.Pos, "expected member name, found %s", p.cur)
				}
				name = p.cur.Kind.String()
			}
			pos := p.cur.Pos
			p.next()
			e = &ast.Member{X: e, Name: name, TokPos: pos}
		case token.LPAREN:
			pos := p.cur.Pos
			p.next()
			var args []ast.Expr
			for p.cur.Kind != token.RPAREN {
				if len(args) > 0 {
					if _, err := p.expect(token.COMMA); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next() // )
			e = &ast.CallExpr{Fun: e, Args: args, TokPos: pos}
		case token.LBRACKET:
			pos := p.cur.Pos
			p.next()
			hi, err := p.intValue()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.COLON); err != nil {
				return nil, err
			}
			lo, err := p.intValue()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBRACKET); err != nil {
				return nil, err
			}
			e = &ast.SliceExpr{X: e, Hi: hi, Lo: lo, TokPos: pos}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	pos := p.cur.Pos
	switch p.cur.Kind {
	case token.INT:
		lit := p.cur.Lit
		p.next()
		w, hi, lo, err := ParseIntLit(lit)
		if err != nil {
			return nil, p.errorf(pos, "%v", err)
		}
		return &ast.IntLit{Width: w, Hi: hi, Lo: lo, TokPos: pos}, nil
	case token.TRUE:
		p.next()
		return &ast.BoolLit{Value: true, TokPos: pos}, nil
	case token.FALSE:
		p.next()
		return &ast.BoolLit{Value: false, TokPos: pos}, nil
	case token.IDENT:
		name := p.cur.Lit
		p.next()
		return &ast.Ident{Name: name, TokPos: pos}, nil
	case token.LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf(pos, "expected expression, found %s", p.cur)
	}
}

// ---------------------------------------------------------------------------
// Literals

// ParseIntLit parses a P4 integer literal: 255, 0x800, 8w255, 16w0x800,
// with optional underscore separators. It returns the declared width (0
// if unsized) and the 128-bit value.
func ParseIntLit(lit string) (width int, hi, lo uint64, err error) {
	body := lit
	if i := strings.IndexByte(lit, 'w'); i >= 0 {
		w := 0
		for _, c := range lit[:i] {
			if c < '0' || c > '9' {
				return 0, 0, 0, fmt.Errorf("bad width prefix in literal %q", lit)
			}
			w = w*10 + int(c-'0')
			if w > 1<<20 {
				return 0, 0, 0, fmt.Errorf("width overflow in literal %q", lit)
			}
		}
		if w < 1 || w > 128 {
			return 0, 0, 0, fmt.Errorf("literal %q: width %d out of range 1..128", lit, w)
		}
		width = w
		body = lit[i+1:]
	}
	base := uint64(10)
	if strings.HasPrefix(body, "0x") || strings.HasPrefix(body, "0X") {
		base = 16
		body = body[2:]
	}
	if body == "" {
		return 0, 0, 0, fmt.Errorf("empty integer literal %q", lit)
	}
	for _, c := range body {
		if c == '_' {
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, 0, 0, fmt.Errorf("bad digit %q in literal %q", c, lit)
		}
		// (hi, lo) = (hi, lo)*base + d with overflow detection.
		var carry uint64
		hiMul, hiLo := mul64(hi, base)
		if hiMul != 0 {
			return 0, 0, 0, fmt.Errorf("literal %q exceeds 128 bits", lit)
		}
		loHi, loLo := mul64(lo, base)
		lo = loLo + d
		if lo < loLo {
			carry = 1
		}
		hi = hiLo + loHi + carry
		if hi < loHi {
			return 0, 0, 0, fmt.Errorf("literal %q exceeds 128 bits", lit)
		}
	}
	return width, hi, lo, nil
}

func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }
