// Package typecheck resolves names and widths for a parsed program and
// validates the constructs the rest of goflay relies on: field paths,
// table shapes, action references, parser transitions and expression
// widths.
package typecheck

import (
	"fmt"
	"strings"

	"repro/internal/p4/ast"
	"repro/internal/p4/token"
)

// Kind classifies a resolved type.
type Kind uint8

const (
	// KInvalid marks an unresolved type.
	KInvalid Kind = iota
	// KBits is bit<W>.
	KBits
	// KBool is bool.
	KBool
	// KHeader is a header instance.
	KHeader
	// KStruct is a struct instance.
	KStruct
	// KTable is a table reference.
	KTable
	// KRegister is a register reference.
	KRegister
	// KPacket is the packet_in extern.
	KPacket
	// KApplyResult is the value of table.apply(), carrying .hit.
	KApplyResult
	// KVoid is the result of an effectful call.
	KVoid
)

// T is a resolved type.
type T struct {
	Kind  Kind
	Width int    // KBits
	Name  string // KHeader/KStruct type name, KTable/KRegister object name
}

func (t T) String() string {
	switch t.Kind {
	case KBits:
		return fmt.Sprintf("bit<%d>", t.Width)
	case KBool:
		return "bool"
	case KHeader:
		return "header " + t.Name
	case KStruct:
		return "struct " + t.Name
	case KTable:
		return "table " + t.Name
	case KRegister:
		return "register " + t.Name
	case KPacket:
		return "packet_in"
	case KApplyResult:
		return "apply_result"
	case KVoid:
		return "void"
	default:
		return "invalid"
	}
}

// Val is a compile-time constant value.
type Val struct {
	Width  int
	Hi, Lo uint64
}

// Info is the result of checking: resolved types for every expression,
// constant values, and helpers the analyzer and interpreter use.
type Info struct {
	Prog *ast.Program
	// Types records the resolved type of every checked expression,
	// including the inferred width of unsized integer literals.
	Types map[ast.Expr]T
	// Consts maps a constant's name to its value (program-level and
	// control-level consts share a namespace; duplicates are rejected).
	Consts map[string]Val
	// HeaderBits maps header type name to total bit width.
	HeaderBits map[string]int

	resolvedTypedefs map[string]ast.Type
}

// TypeOf returns the resolved type of e; KInvalid if e was never checked.
func (in *Info) TypeOf(e ast.Expr) T { return in.Types[e] }

// Resolve maps a syntactic type to its resolved form, following
// typedefs. Unknown names yield KInvalid (checking has already reported
// them).
func (in *Info) Resolve(t ast.Type) T {
	switch t.Kind {
	case ast.TypeBit:
		return T{Kind: KBits, Width: t.Width}
	case ast.TypeBool:
		return T{Kind: KBool}
	case ast.TypeNamed:
		if t.Name == "packet_in" {
			return T{Kind: KPacket}
		}
		if under, ok := in.resolvedTypedefs[t.Name]; ok {
			return in.Resolve(under)
		}
		if in.Prog.Header(t.Name) != nil {
			return T{Kind: KHeader, Name: t.Name}
		}
		if in.Prog.Struct(t.Name) != nil {
			return T{Kind: KStruct, Name: t.Name}
		}
		return T{}
	default:
		return T{}
	}
}

// FieldPath returns the canonical dotted path of a variable or field
// reference expression ("hdr.eth.dst", "meta.nexthop", "egress_port") and
// whether e is such a reference.
func FieldPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.Member:
		base, ok := FieldPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Name, true
	default:
		return "", false
	}
}

// Error is a type error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects multiple type errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	parts := make([]string, 0, len(l))
	for i, e := range l {
		if i == 8 {
			parts = append(parts, fmt.Sprintf("... and %d more", len(l)-i))
			break
		}
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "\n")
}

type checker struct {
	prog *ast.Program
	info *Info
	errs ErrorList

	headers map[string]*ast.HeaderDecl
	structs map[string]*ast.StructDecl

	// Current scope chain for identifier resolution.
	scopes []map[string]T
}

// Check validates the program and returns resolved type information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		prog: prog,
		info: &Info{
			Prog:             prog,
			Types:            make(map[ast.Expr]T),
			Consts:           make(map[string]Val),
			HeaderBits:       make(map[string]int),
			resolvedTypedefs: make(map[string]ast.Type),
		},
		headers: make(map[string]*ast.HeaderDecl),
		structs: make(map[string]*ast.StructDecl),
	}
	c.injectStandardMetadata()
	c.collectTypes()
	c.collectConsts()
	for _, pd := range prog.Parsers {
		c.checkParser(pd)
	}
	for _, cd := range prog.Controls {
		c.checkControl(cd)
	}
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// injectStandardMetadata provides the builtin standard_metadata_t struct
// when the program references it without declaring it, mirroring the
// v1model convention.
func (c *checker) injectStandardMetadata() {
	const name = "standard_metadata_t"
	if c.prog.Struct(name) != nil {
		return
	}
	used := false
	for _, pd := range c.prog.Parsers {
		for _, p := range pd.Params {
			if p.Type.Kind == ast.TypeNamed && p.Type.Name == name {
				used = true
			}
		}
	}
	for _, cd := range c.prog.Controls {
		for _, p := range cd.Params {
			if p.Type.Kind == ast.TypeNamed && p.Type.Name == name {
				used = true
			}
		}
	}
	if !used {
		return
	}
	c.prog.Structs = append(c.prog.Structs, &ast.StructDecl{
		Name: name,
		Fields: []ast.Field{
			{Type: ast.Type{Kind: ast.TypeBit, Width: 9}, Name: "ingress_port"},
			{Type: ast.Type{Kind: ast.TypeBit, Width: 9}, Name: "egress_port"},
			{Type: ast.Type{Kind: ast.TypeBit, Width: 1}, Name: "drop"},
			{Type: ast.Type{Kind: ast.TypeBit, Width: 16}, Name: "mcast_grp"},
			{Type: ast.Type{Kind: ast.TypeBit, Width: 32}, Name: "packet_length"},
		},
	})
}

func (c *checker) collectTypes() {
	for _, td := range c.prog.Typedefs {
		if _, dup := c.info.resolvedTypedefs[td.Name]; dup {
			c.errorf(td.Pos(), "duplicate typedef %s", td.Name)
			continue
		}
		c.info.resolvedTypedefs[td.Name] = td.Type
	}
	for _, h := range c.prog.Headers {
		if _, dup := c.headers[h.Name]; dup {
			c.errorf(h.Pos(), "duplicate header %s", h.Name)
			continue
		}
		c.headers[h.Name] = h
	}
	for _, s := range c.prog.Structs {
		if _, dup := c.structs[s.Name]; dup {
			c.errorf(s.Pos(), "duplicate struct %s", s.Name)
			continue
		}
		c.structs[s.Name] = s
	}
	// Validate member types once every type name is known.
	for _, h := range c.prog.Headers {
		total := 0
		for _, f := range h.Fields {
			ft := c.resolve(f.Type, f.Pos())
			if ft.Kind != KBits {
				c.errorf(f.Pos(), "header %s field %s must have bit type, has %s", h.Name, f.Name, ft)
				continue
			}
			total += ft.Width
		}
		c.info.HeaderBits[h.Name] = total
	}
	for _, s := range c.prog.Structs {
		for _, f := range s.Fields {
			ft := c.resolve(f.Type, f.Pos())
			switch ft.Kind {
			case KBits, KBool, KHeader, KStruct:
			default:
				c.errorf(f.Pos(), "struct %s field %s has unsupported type %s", s.Name, f.Name, ft)
			}
		}
	}
}

func (c *checker) collectConsts() {
	for _, cd := range c.prog.Consts {
		c.addConst(cd)
	}
	for _, ctrl := range c.prog.Controls {
		for _, cd := range ctrl.Consts {
			c.addConst(cd)
		}
	}
}

func (c *checker) addConst(cd *ast.ConstDecl) {
	t := c.resolve(cd.Type, cd.Pos())
	if t.Kind != KBits {
		c.errorf(cd.Pos(), "const %s must have bit type", cd.Name)
		return
	}
	lit, ok := cd.Value.(*ast.IntLit)
	if !ok {
		c.errorf(cd.Pos(), "const %s initializer must be an integer literal", cd.Name)
		return
	}
	if lit.Width != 0 && lit.Width != t.Width {
		c.errorf(cd.Pos(), "const %s: literal width %d does not match type width %d", cd.Name, lit.Width, t.Width)
		return
	}
	if _, dup := c.info.Consts[cd.Name]; dup {
		c.errorf(cd.Pos(), "duplicate const %s", cd.Name)
		return
	}
	c.info.Types[cd.Value] = T{Kind: KBits, Width: t.Width}
	c.info.Consts[cd.Name] = Val{Width: t.Width, Hi: lit.Hi, Lo: lit.Lo}
}

// resolve maps a syntactic type to a resolved one, following typedefs.
func (c *checker) resolve(t ast.Type, pos token.Pos) T {
	switch t.Kind {
	case ast.TypeBit:
		if t.Width < 1 || t.Width > 128 {
			c.errorf(pos, "bit width %d out of supported range 1..128", t.Width)
			return T{}
		}
		return T{Kind: KBits, Width: t.Width}
	case ast.TypeBool:
		return T{Kind: KBool}
	case ast.TypeNamed:
		if t.Name == "packet_in" {
			return T{Kind: KPacket}
		}
		if under, ok := c.info.resolvedTypedefs[t.Name]; ok {
			return c.resolve(under, pos)
		}
		if _, ok := c.headers[t.Name]; ok {
			return T{Kind: KHeader, Name: t.Name}
		}
		if _, ok := c.structs[t.Name]; ok {
			return T{Kind: KStruct, Name: t.Name}
		}
		c.errorf(pos, "unknown type %s", t.Name)
		return T{}
	default:
		c.errorf(pos, "invalid type")
		return T{}
	}
}

// ---------------------------------------------------------------------------
// Scopes

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]T)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t T, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %s", name)
		return
	}
	top[name] = t
}

func (c *checker) lookup(name string) (T, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if v, ok := c.info.Consts[name]; ok {
		return T{Kind: KBits, Width: v.Width}, true
	}
	return T{}, false
}

// ---------------------------------------------------------------------------
// Parsers

func (c *checker) checkParser(pd *ast.ParserDecl) {
	c.pushScope()
	defer c.popScope()
	for _, p := range pd.Params {
		c.declare(p.Name, c.resolve(p.Type, p.Pos()), p.Pos())
	}
	vsets := make(map[string]T, len(pd.ValueSets))
	for _, vs := range pd.ValueSets {
		t := c.resolve(vs.Type, vs.Pos())
		if t.Kind != KBits {
			c.errorf(vs.Pos(), "value_set %s must have bit element type", vs.Name)
			continue
		}
		if _, dup := vsets[vs.Name]; dup {
			c.errorf(vs.Pos(), "duplicate value_set %s", vs.Name)
		}
		vsets[vs.Name] = t
	}
	if pd.State("start") == nil {
		c.errorf(pd.Pos(), "parser %s has no start state", pd.Name)
	}
	seen := make(map[string]bool, len(pd.States))
	for _, st := range pd.States {
		if seen[st.Name] {
			c.errorf(st.Pos(), "duplicate state %s", st.Name)
		}
		seen[st.Name] = true
	}
	for _, st := range pd.States {
		c.pushScope()
		for _, s := range st.Stmts {
			c.checkStmt(s, stmtCtx{inParser: true})
		}
		c.checkTransition(pd, st, vsets)
		c.popScope()
	}
}

func (c *checker) checkTransition(pd *ast.ParserDecl, st *ast.State, vsets map[string]T) {
	tr := &st.Trans
	validTarget := func(name string, pos token.Pos) {
		if name == "accept" || name == "reject" {
			return
		}
		if pd.State(name) == nil {
			c.errorf(pos, "transition to unknown state %s", name)
		}
	}
	if tr.Select == nil {
		validTarget(tr.Next, tr.Pos())
		return
	}
	selTypes := make([]T, len(tr.Select))
	for i, e := range tr.Select {
		selTypes[i] = c.checkExpr(e, 0)
		if selTypes[i].Kind != KBits {
			c.errorf(e.Pos(), "select expression must have bit type, has %s", selTypes[i])
		}
	}
	for ci := range tr.Cases {
		cs := &tr.Cases[ci]
		validTarget(cs.Next, cs.TokPos)
		if len(cs.Keysets) == 1 && cs.Keysets[0].Kind == ast.KeysetDefault {
			continue
		}
		for ki := range cs.Keysets {
			ks := &cs.Keysets[ki]
			want := 0
			if ki < len(selTypes) {
				want = selTypes[ki].Width
			}
			switch ks.Kind {
			case ast.KeysetDefault:
			case ast.KeysetValue:
				c.checkExprWidth(ks.Value, want)
			case ast.KeysetMask:
				c.checkExprWidth(ks.Value, want)
				c.checkExprWidth(ks.Mask, want)
			case ast.KeysetValueSet:
				vt, ok := vsets[ks.Ref]
				if !ok {
					c.errorf(ks.TokPos, "unknown value_set %s in select", ks.Ref)
					continue
				}
				if vt.Width != want {
					c.errorf(ks.TokPos, "value_set %s width %d does not match select component width %d", ks.Ref, vt.Width, want)
				}
			}
		}
	}
}

// checkExprWidth checks e as bits of exactly width want (inferring
// literal widths).
func (c *checker) checkExprWidth(e ast.Expr, want int) {
	t := c.checkExpr(e, want)
	if t.Kind != KBits {
		c.errorf(e.Pos(), "expected bit<%d> expression, found %s", want, t)
		return
	}
	if t.Width != want {
		c.errorf(e.Pos(), "width mismatch: expected %d bits, found %d", want, t.Width)
	}
}

// ---------------------------------------------------------------------------
// Controls

func (c *checker) checkControl(cd *ast.ControlDecl) {
	c.pushScope()
	defer c.popScope()
	for _, p := range cd.Params {
		c.declare(p.Name, c.resolve(p.Type, p.Pos()), p.Pos())
	}
	for _, r := range cd.Registers {
		et := c.resolve(r.Elem, r.Pos())
		if et.Kind != KBits {
			c.errorf(r.Pos(), "register %s element must have bit type", r.Name)
		}
		if r.Size < 1 {
			c.errorf(r.Pos(), "register %s must have positive size", r.Name)
		}
		c.declare(r.Name, T{Kind: KRegister, Name: r.Name}, r.Pos())
	}
	for _, v := range cd.Locals {
		t := c.resolve(v.Type, v.Pos())
		if t.Kind != KBits && t.Kind != KBool {
			c.errorf(v.Pos(), "control local %s must be bit or bool", v.Name)
		}
		if v.Init != nil {
			c.checkInit(v, t)
		}
		c.declare(v.Name, t, v.Pos())
	}
	// Actions first (tables refer to them), then tables, then apply.
	actions := make(map[string]*ast.Action, len(cd.Actions))
	for _, a := range cd.Actions {
		if _, dup := actions[a.Name]; dup {
			c.errorf(a.Pos(), "duplicate action %s", a.Name)
		}
		actions[a.Name] = a
		c.checkAction(a)
	}
	for _, t := range cd.Tables {
		c.checkTable(cd, t, actions)
		c.declare(t.Name, T{Kind: KTable, Name: t.Name}, t.Pos())
	}
	c.pushScope()
	c.checkStmt(cd.Apply, stmtCtx{control: cd})
	c.popScope()
}

func (c *checker) checkAction(a *ast.Action) {
	c.pushScope()
	defer c.popScope()
	for _, p := range a.Params {
		if p.Dir != "" {
			c.errorf(p.Pos(), "action %s: only direction-less (control-plane) parameters are supported", a.Name)
		}
		t := c.resolve(p.Type, p.Pos())
		if t.Kind != KBits && t.Kind != KBool {
			c.errorf(p.Pos(), "action %s parameter %s must be bit or bool", a.Name, p.Name)
		}
		c.declare(p.Name, t, p.Pos())
	}
	c.checkStmt(a.Body, stmtCtx{inAction: true})
}

func (c *checker) checkTable(cd *ast.ControlDecl, t *ast.Table, actions map[string]*ast.Action) {
	for _, k := range t.Keys {
		kt := c.checkExpr(k.Expr, 0)
		if kt.Kind != KBits {
			c.errorf(k.Expr.Pos(), "table %s key must have bit type, has %s", t.Name, kt)
		}
	}
	if len(t.Actions) == 0 {
		c.errorf(t.Pos(), "table %s lists no actions", t.Name)
	}
	seen := make(map[string]bool, len(t.Actions))
	for _, ar := range t.Actions {
		if seen[ar.Name] {
			c.errorf(ar.TokPos, "table %s lists action %s twice", t.Name, ar.Name)
		}
		seen[ar.Name] = true
		if ar.Name == "NoAction" {
			continue
		}
		if _, ok := actions[ar.Name]; !ok {
			c.errorf(ar.TokPos, "table %s references unknown action %s", t.Name, ar.Name)
		}
	}
	if t.Default != nil {
		d := t.Default
		if d.Name != "NoAction" {
			act, ok := actions[d.Name]
			if !ok {
				c.errorf(d.TokPos, "table %s default_action references unknown action %s", t.Name, d.Name)
			} else {
				if !seen[d.Name] {
					c.errorf(d.TokPos, "table %s default_action %s is not in the actions list", t.Name, d.Name)
				}
				if len(d.Args) != len(act.Params) {
					c.errorf(d.TokPos, "table %s default_action %s: %d args, want %d", t.Name, d.Name, len(d.Args), len(act.Params))
				} else {
					for i, argE := range d.Args {
						pt := c.resolve(act.Params[i].Type, act.Params[i].Pos())
						if pt.Kind == KBits {
							c.checkExprWidth(argE, pt.Width)
						} else {
							at := c.checkExpr(argE, 0)
							if at.Kind != KBool {
								c.errorf(argE.Pos(), "default_action arg %d must be bool", i)
							}
						}
					}
				}
			}
		} else if len(d.Args) != 0 {
			c.errorf(d.TokPos, "NoAction takes no arguments")
		}
	}
}

func (c *checker) checkInit(v *ast.VarDecl, t T) {
	switch t.Kind {
	case KBits:
		c.checkExprWidth(v.Init, t.Width)
	case KBool:
		it := c.checkExpr(v.Init, 0)
		if it.Kind != KBool {
			c.errorf(v.Init.Pos(), "initializer for bool %s must be bool, has %s", v.Name, it)
		}
	}
}

// ---------------------------------------------------------------------------
// Statements

type stmtCtx struct {
	control  *ast.ControlDecl
	inAction bool
	inParser bool
}

func (c *checker) checkStmt(s ast.Stmt, ctx stmtCtx) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, inner := range s.Stmts {
			c.checkStmt(inner, ctx)
		}
		c.popScope()
	case *ast.VarDecl:
		t := c.resolve(s.Type, s.Pos())
		if t.Kind != KBits && t.Kind != KBool {
			c.errorf(s.Pos(), "variable %s must be bit or bool", s.Name)
		}
		if s.Init != nil {
			c.checkInit(s, t)
		}
		c.declare(s.Name, t, s.Pos())
	case *ast.AssignStmt:
		lt := c.checkLValue(s.LHS)
		switch lt.Kind {
		case KBits:
			c.checkExprWidth(s.RHS, lt.Width)
		case KBool:
			rt := c.checkExpr(s.RHS, 0)
			if rt.Kind != KBool {
				c.errorf(s.RHS.Pos(), "assigning %s to bool", rt)
			}
		case KInvalid:
			// error already reported
		default:
			c.errorf(s.LHS.Pos(), "cannot assign to %s", lt)
		}
	case *ast.IfStmt:
		ct := c.checkExpr(s.Cond, 0)
		if ct.Kind != KBool {
			c.errorf(s.Cond.Pos(), "if condition must be bool, has %s", ct)
		}
		c.checkStmt(s.Then, ctx)
		if s.Else != nil {
			c.checkStmt(s.Else, ctx)
		}
	case *ast.CallStmt:
		c.checkCall(s.Call, ctx, true)
	case *ast.ExitStmt:
		if ctx.inParser {
			c.errorf(s.Pos(), "exit is not allowed in parsers")
		}
	default:
		c.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

// checkLValue types an assignment target: a local/param variable or a
// field path.
func (c *checker) checkLValue(e ast.Expr) T {
	t := c.checkExpr(e, 0)
	if _, ok := FieldPath(e); !ok {
		c.errorf(e.Pos(), "invalid assignment target")
		return T{}
	}
	return t
}

// ---------------------------------------------------------------------------
// Calls (builtins and externs)

func (c *checker) checkCall(call *ast.CallExpr, ctx stmtCtx, stmtPos bool) T {
	set := func(t T) T {
		c.info.Types[call] = t
		return t
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "mark_to_drop":
			if len(call.Args) != 1 {
				c.errorf(call.Pos(), "mark_to_drop takes exactly one argument")
				return set(T{Kind: KVoid})
			}
			at := c.checkExpr(call.Args[0], 0)
			if at.Kind != KStruct {
				c.errorf(call.Args[0].Pos(), "mark_to_drop argument must be standard metadata")
			}
			return set(T{Kind: KVoid})
		case "checksum16":
			if len(call.Args) == 0 {
				c.errorf(call.Pos(), "checksum16 needs at least one argument")
			}
			for _, a := range call.Args {
				at := c.checkExpr(a, 0)
				if at.Kind != KBits {
					c.errorf(a.Pos(), "checksum16 arguments must have bit type")
				}
			}
			return set(T{Kind: KBits, Width: 16})
		case "count":
			// Counters have no data-plane-visible effect; accept any
			// bit-typed args.
			for _, a := range call.Args {
				c.checkExpr(a, 32)
			}
			return set(T{Kind: KVoid})
		default:
			// Direct action invocation from an apply block.
			if ctx.control != nil {
				if act := ctx.control.Action(fun.Name); act != nil {
					if !stmtPos {
						c.errorf(call.Pos(), "action %s may only be called as a statement", fun.Name)
					}
					if len(call.Args) != len(act.Params) {
						c.errorf(call.Pos(), "action %s: %d args, want %d", fun.Name, len(call.Args), len(act.Params))
					} else {
						for i, argE := range call.Args {
							pt := c.resolve(act.Params[i].Type, act.Params[i].Pos())
							if pt.Kind == KBits {
								c.checkExprWidth(argE, pt.Width)
							} else {
								at := c.checkExpr(argE, 0)
								if at.Kind != KBool {
									c.errorf(argE.Pos(), "action %s arg %d must be bool", fun.Name, i)
								}
							}
						}
					}
					return set(T{Kind: KVoid})
				}
			}
			c.errorf(call.Pos(), "unknown function %s", fun.Name)
			return set(T{})
		}
	case *ast.Member:
		recv := c.checkExpr(fun.X, 0)
		switch {
		case recv.Kind == KTable && fun.Name == "apply":
			if len(call.Args) != 0 {
				c.errorf(call.Pos(), "table apply takes no arguments")
			}
			if ctx.inAction || ctx.inParser {
				c.errorf(call.Pos(), "table %s may only be applied in a control apply block", recv.Name)
			}
			return set(T{Kind: KApplyResult, Name: recv.Name})
		case recv.Kind == KHeader && fun.Name == "isValid":
			if len(call.Args) != 0 {
				c.errorf(call.Pos(), "isValid takes no arguments")
			}
			return set(T{Kind: KBool})
		case recv.Kind == KHeader && (fun.Name == "setValid" || fun.Name == "setInvalid"):
			if len(call.Args) != 0 {
				c.errorf(call.Pos(), "%s takes no arguments", fun.Name)
			}
			if !stmtPos {
				c.errorf(call.Pos(), "%s is a statement, not an expression", fun.Name)
			}
			return set(T{Kind: KVoid})
		case recv.Kind == KPacket && fun.Name == "extract":
			if len(call.Args) != 1 {
				c.errorf(call.Pos(), "extract takes exactly one header argument")
				return set(T{Kind: KVoid})
			}
			at := c.checkExpr(call.Args[0], 0)
			if at.Kind != KHeader {
				c.errorf(call.Args[0].Pos(), "extract argument must be a header, has %s", at)
			}
			if !ctx.inParser {
				c.errorf(call.Pos(), "extract may only appear in parser states")
			}
			return set(T{Kind: KVoid})
		case recv.Kind == KRegister && fun.Name == "read":
			if len(call.Args) != 2 {
				c.errorf(call.Pos(), "register read takes (destination, index)")
				return set(T{Kind: KVoid})
			}
			dt := c.checkLValue(call.Args[0])
			if dt.Kind != KBits {
				c.errorf(call.Args[0].Pos(), "register read destination must have bit type")
			}
			c.checkExpr(call.Args[1], 32)
			return set(T{Kind: KVoid})
		case recv.Kind == KRegister && fun.Name == "write":
			if len(call.Args) != 2 {
				c.errorf(call.Pos(), "register write takes (index, value)")
				return set(T{Kind: KVoid})
			}
			c.checkExpr(call.Args[0], 32)
			vt := c.checkExpr(call.Args[1], 0)
			if vt.Kind != KBits {
				c.errorf(call.Args[1].Pos(), "register write value must have bit type")
			}
			return set(T{Kind: KVoid})
		default:
			c.errorf(call.Pos(), "unknown method %s on %s", fun.Name, recv)
			return set(T{})
		}
	default:
		c.errorf(call.Pos(), "invalid call target")
		return set(T{})
	}
}

// ---------------------------------------------------------------------------
// Expressions

// checkExpr types e. hint, when nonzero, is the width an unsized integer
// literal should adopt.
func (c *checker) checkExpr(e ast.Expr, hint int) T {
	t := c.exprType(e, hint)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr, hint int) T {
	switch e := e.(type) {
	case *ast.IntLit:
		w := e.Width
		if w == 0 {
			w = hint
		}
		if w == 0 {
			c.errorf(e.Pos(), "cannot infer width of integer literal; add a width prefix (e.g. 8w%d)", e.Lo)
			return T{}
		}
		if w < 1 || w > 128 {
			c.errorf(e.Pos(), "literal width %d out of range", w)
			return T{}
		}
		if !fitsWidth(e.Hi, e.Lo, w) {
			c.errorf(e.Pos(), "literal value does not fit in %d bits", w)
		}
		return T{Kind: KBits, Width: w}
	case *ast.BoolLit:
		return T{Kind: KBool}
	case *ast.Ident:
		if t, ok := c.lookup(e.Name); ok {
			return t
		}
		c.errorf(e.Pos(), "undefined identifier %s", e.Name)
		return T{}
	case *ast.Member:
		xt := c.checkExpr(e.X, 0)
		switch xt.Kind {
		case KHeader:
			h := c.headers[xt.Name]
			f := h.Field(e.Name)
			if f == nil {
				c.errorf(e.Pos(), "header %s has no field %s", xt.Name, e.Name)
				return T{}
			}
			return c.resolve(f.Type, f.Pos())
		case KStruct:
			s := c.structs[xt.Name]
			f := s.Field(e.Name)
			if f == nil {
				c.errorf(e.Pos(), "struct %s has no field %s", xt.Name, e.Name)
				return T{}
			}
			return c.resolve(f.Type, f.Pos())
		case KApplyResult:
			if e.Name == "hit" {
				return T{Kind: KBool}
			}
			c.errorf(e.Pos(), "apply result has no member %s (only .hit is supported)", e.Name)
			return T{}
		case KInvalid:
			return T{}
		default:
			c.errorf(e.Pos(), "%s has no members", xt)
			return T{}
		}
	case *ast.CallExpr:
		return c.checkCall(e, stmtCtx{}, false)
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X, hint)
		switch e.Op {
		case "!":
			if xt.Kind != KBool {
				c.errorf(e.Pos(), "! requires bool, has %s", xt)
			}
			return T{Kind: KBool}
		case "~", "-":
			if xt.Kind != KBits {
				c.errorf(e.Pos(), "%s requires bit type, has %s", e.Op, xt)
				return T{}
			}
			return xt
		}
		c.errorf(e.Pos(), "unknown unary operator %s", e.Op)
		return T{}
	case *ast.BinaryExpr:
		return c.binaryType(e, hint)
	case *ast.TernaryExpr:
		ct := c.checkExpr(e.Cond, 0)
		if ct.Kind != KBool {
			c.errorf(e.Cond.Pos(), "ternary condition must be bool, has %s", ct)
		}
		tt := c.checkExpr(e.Then, hint)
		et := c.checkExpr(e.Else, hint)
		if tt.Kind == KBits && et.Kind == KBits && tt.Width == 0 {
			tt = et
		}
		// Allow an unsized branch to adopt the other branch's width.
		if tt.Kind == KBits && et.Kind == KBits && tt.Width != et.Width {
			if lit, ok := e.Else.(*ast.IntLit); ok && lit.Width == 0 {
				et = tt
				c.info.Types[e.Else] = tt
			} else if lit, ok := e.Then.(*ast.IntLit); ok && lit.Width == 0 {
				tt = et
				c.info.Types[e.Then] = et
			}
		}
		if tt.Kind != et.Kind || (tt.Kind == KBits && tt.Width != et.Width) {
			c.errorf(e.Pos(), "ternary branches disagree: %s vs %s", tt, et)
			return tt
		}
		return tt
	case *ast.SliceExpr:
		xt := c.checkExpr(e.X, 0)
		if xt.Kind != KBits {
			c.errorf(e.Pos(), "slice requires bit type, has %s", xt)
			return T{}
		}
		if e.Hi < e.Lo || e.Hi >= xt.Width {
			c.errorf(e.Pos(), "slice [%d:%d] out of range for bit<%d>", e.Hi, e.Lo, xt.Width)
			return T{}
		}
		return T{Kind: KBits, Width: e.Hi - e.Lo + 1}
	default:
		c.errorf(e.Pos(), "unsupported expression %T", e)
		return T{}
	}
}

func (c *checker) binaryType(e *ast.BinaryExpr, hint int) T {
	switch e.Op {
	case "&&", "||":
		for _, sub := range []ast.Expr{e.X, e.Y} {
			t := c.checkExpr(sub, 0)
			if t.Kind != KBool && t.Kind != KInvalid {
				c.errorf(sub.Pos(), "%s requires bool operands, has %s", e.Op, t)
			}
		}
		return T{Kind: KBool}
	case "==", "!=":
		xt, yt := c.inferPair(e.X, e.Y, 0)
		if xt.Kind == KBool && yt.Kind == KBool {
			return T{Kind: KBool}
		}
		if xt.Kind != KBits || yt.Kind != KBits || xt.Width != yt.Width {
			if xt.Kind != KInvalid && yt.Kind != KInvalid {
				c.errorf(e.Pos(), "%s operands disagree: %s vs %s", e.Op, xt, yt)
			}
		}
		return T{Kind: KBool}
	case "<", "<=", ">", ">=":
		xt, yt := c.inferPair(e.X, e.Y, 0)
		if xt.Kind != KBits || yt.Kind != KBits || xt.Width != yt.Width {
			if xt.Kind != KInvalid && yt.Kind != KInvalid {
				c.errorf(e.Pos(), "%s operands disagree: %s vs %s", e.Op, xt, yt)
			}
		}
		return T{Kind: KBool}
	case "<<", ">>":
		xt := c.checkExpr(e.X, hint)
		c.checkExpr(e.Y, 32) // shift amounts default to bit<32>
		if xt.Kind != KBits {
			c.errorf(e.X.Pos(), "%s requires bit type, has %s", e.Op, xt)
			return T{}
		}
		return xt
	case "++":
		xt := c.checkExpr(e.X, 0)
		yt := c.checkExpr(e.Y, 0)
		if xt.Kind != KBits || yt.Kind != KBits {
			c.errorf(e.Pos(), "++ requires bit operands")
			return T{}
		}
		if xt.Width+yt.Width > 128 {
			c.errorf(e.Pos(), "concatenation width %d exceeds 128", xt.Width+yt.Width)
			return T{}
		}
		return T{Kind: KBits, Width: xt.Width + yt.Width}
	case "&", "|", "^", "+", "-":
		xt, yt := c.inferPair(e.X, e.Y, hint)
		if xt.Kind != KBits || yt.Kind != KBits || xt.Width != yt.Width {
			if xt.Kind != KInvalid && yt.Kind != KInvalid {
				c.errorf(e.Pos(), "%s operands disagree: %s vs %s", e.Op, xt, yt)
			}
			return T{}
		}
		return xt
	default:
		c.errorf(e.Pos(), "unknown binary operator %s", e.Op)
		return T{}
	}
}

// inferPair types two operands that must agree, letting an unsized
// literal adopt the other side's width.
func (c *checker) inferPair(x, y ast.Expr, hint int) (T, T) {
	xLit, xUnsized := x.(*ast.IntLit)
	yLit, yUnsized := y.(*ast.IntLit)
	xU := xUnsized && xLit.Width == 0
	yU := yUnsized && yLit.Width == 0
	switch {
	case xU && !yU:
		yt := c.checkExpr(y, hint)
		w := hint
		if yt.Kind == KBits {
			w = yt.Width
		}
		return c.checkExpr(x, w), yt
	case yU && !xU:
		xt := c.checkExpr(x, hint)
		w := hint
		if xt.Kind == KBits {
			w = xt.Width
		}
		return xt, c.checkExpr(y, w)
	default:
		return c.checkExpr(x, hint), c.checkExpr(y, hint)
	}
}

func fitsWidth(hi, lo uint64, w int) bool {
	switch {
	case w >= 128:
		return true
	case w > 64:
		return hi < 1<<(w-64)
	case w == 64:
		return hi == 0
	default:
		return hi == 0 && lo < 1<<w
	}
}
