package typecheck

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const goodSrc = `
typedef bit<48> mac_addr_t;
const bit<16> TYPE_IPV4 = 16w0x0800;
header ethernet_t {
    mac_addr_t dst;
    mac_addr_t src;
    bit<16> type;
}
header ipv4_t {
    bit<8> ttl;
    bit<8> proto;
    bit<16> csum;
    bit<32> src;
    bit<32> dst;
}
struct headers {
    ethernet_t eth;
    ipv4_t ipv4;
}
struct metadata {
    bit<9> nexthop;
}
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(64) flow_bytes;
    bit<32> tmp;
    action set_nexthop(bit<9> port) {
        meta.nexthop = port;
        std.egress_port = port;
    }
    action drop() {
        mark_to_drop(std);
    }
    table ipv4_lpm {
        key = { hdr.ipv4.dst: lpm; }
        actions = { set_nexthop; drop; NoAction; }
        default_action = NoAction;
        size = 1024;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (ipv4_lpm.apply().hit) {
                hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
            }
            flow_bytes.read(tmp, 0);
            tmp = tmp + std.packet_length;
            flow_bytes.write(0, tmp);
            hdr.ipv4.csum = checksum16(hdr.ipv4.src, hdr.ipv4.dst, 16w0 ++ hdr.ipv4.ttl ++ hdr.ipv4.proto);
        } else {
            drop();
        }
    }
}
`

func TestCheckGoodProgram(t *testing.T) {
	prog := mustParse(t, goodSrc)
	// Direct action calls from apply are not supported in our subset:
	// replace drop() call with mark_to_drop? The goodSrc uses drop();
	// adjust expectations accordingly.
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if info.HeaderBits["ethernet_t"] != 112 {
		t.Fatalf("ethernet bits = %d", info.HeaderBits["ethernet_t"])
	}
	if v, ok := info.Consts["TYPE_IPV4"]; !ok || v.Lo != 0x800 || v.Width != 16 {
		t.Fatalf("const TYPE_IPV4 = %+v", v)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown type", `
struct metadata { flub x; }
control C(inout metadata meta, inout standard_metadata_t std) { apply { } }`, "unknown type"},
		{"unknown field", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { meta.b = 8w1; }
}`, "no field b"},
		{"width mismatch", `
struct metadata { bit<8> a; bit<16> b; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { meta.a = meta.b; }
}`, "width mismatch"},
		{"unknown action", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  table t { key = { meta.a: exact; } actions = { ghost; } }
  apply { t.apply(); }
}`, "unknown action"},
		{"default not listed", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  action x() { }
  action y() { }
  table t { key = { meta.a: exact; } actions = { x; } default_action = y; }
  apply { t.apply(); }
}`, "not in the actions list"},
		{"bad transition", `
struct metadata { bit<8> a; }
parser P(packet_in pkt, inout metadata meta) {
  state start { transition nowhere; }
}`, "unknown state"},
		{"bool condition", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { if (meta.a) { meta.a = 8w1; } }
}`, "must be bool"},
		{"unsized literal", `
struct metadata { bit<8> a; bit<16> b; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { if (1 == 2) { meta.a = 8w1; } }
}`, "cannot infer width"},
		{"literal too wide", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { meta.a = 8w256; }
}`, "does not fit"},
		{"slice out of range", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { meta.a = meta.a[8:1]; }
}`, "out of range"},
		{"unknown method", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { if (meta.isValid()) { meta.a = 8w1; } }
}`, "unknown method"},
		{"apply in action", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  action x() { }
  table t { key = { meta.a: exact; } actions = { x; } }
  action y() { t.apply(); }
  apply { }
}`, ""},
		{"duplicate state", `
struct metadata { }
parser P(packet_in pkt, inout metadata meta) {
  state start { transition accept; }
  state start { transition accept; }
}`, "duplicate state"},
		{"no start state", `
struct metadata { }
parser P(packet_in pkt, inout metadata meta) {
  state begin { transition accept; }
}`, "no start state"},
		{"value set unknown", `
struct metadata { bit<16> a; }
parser P(packet_in pkt, inout metadata meta) {
  state start {
    transition select(meta.a) {
      ghost_set: accept;
      default: accept;
    }
  }
}`, "unknown value_set"},
		{"assign to table", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  action x() { }
  table t { key = { meta.a: exact; } actions = { x; } }
  apply { t = 8w1; }
}`, ""},
		{"redeclaration", `
struct metadata { bit<8> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply {
    bit<8> v;
    bit<8> v;
  }
}`, "redeclaration"},
	}
	for _, c := range cases {
		prog := mustParse(t, c.src)
		_, err := Check(prog)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestStandardMetadataInjected(t *testing.T) {
	prog := mustParse(t, `
struct metadata { }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply { std.egress_port = 9w3; }
}`)
	if _, err := Check(prog); err != nil {
		t.Fatalf("standard metadata not injected: %v", err)
	}
	if prog.Struct("standard_metadata_t") == nil {
		t.Fatal("struct not present after check")
	}
}

func TestFieldPath(t *testing.T) {
	prog := mustParse(t, `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { }
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
  apply { hdr.h.x = 8w1; }
}`)
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	asg := prog.Controls[0].Apply.Stmts[0].(*ast.AssignStmt)
	path, ok := FieldPath(asg.LHS)
	if !ok || path != "hdr.h.x" {
		t.Fatalf("FieldPath = %q, %v", path, ok)
	}
	if _, ok := FieldPath(asg.RHS); ok {
		t.Fatal("literal should not have a field path")
	}
}

func TestUnsizedLiteralAdoption(t *testing.T) {
	prog := mustParse(t, `
struct metadata { bit<12> a; }
control C(inout metadata meta, inout standard_metadata_t std) {
  apply {
    meta.a = 7;
    if (meta.a == 0) { meta.a = meta.a + 1; }
    meta.a = meta.a == 3 ? 5 : meta.a;
  }
}`)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	asg := prog.Controls[0].Apply.Stmts[0].(*ast.AssignStmt)
	if tt := info.TypeOf(asg.RHS); tt.Kind != KBits || tt.Width != 12 {
		t.Fatalf("literal adopted %v", tt)
	}
}
