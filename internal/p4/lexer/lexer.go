// Package lexer turns P4 source text into a token stream.
package lexer

import (
	"fmt"

	"repro/internal/p4/token"
)

// Lexer scans a single source buffer. Create one with New and call Next
// until it returns an EOF token. Scanning never fails hard: unexpected
// bytes become ILLEGAL tokens carrying the offending text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(next byte, withKind, without token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: without, Pos: pos}
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '+':
		return two('+', token.PLUSPLUS, token.PLUS)
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NE, token.NOT)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GE, token.GT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			if l.peek() == '&' {
				l.advance()
				return token.Token{Kind: token.MASK, Pos: pos}
			}
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		return token.Token{Kind: token.AND, Pos: pos}
	case '|':
		return two('|', token.LOR, token.OR)
	}
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if lit == "_" {
		return token.Token{Kind: token.USCORE, Pos: pos}
	}
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Pos: pos, Lit: lit}
}

// scanNumber accepts decimal and hexadecimal literals, optionally
// width-prefixed in P4 style: 255, 0x800, 8w255, 16w0x0800.
func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	digits := func(hex bool) {
		for l.off < len(l.src) {
			c := l.peek()
			if c == '_' || isDigit(c) || (hex && isHexDigit(c)) {
				l.advance()
				continue
			}
			break
		}
	}
	digits(false)
	// Width prefix: <decimal>w<number>.
	if l.peek() == 'w' {
		l.advance()
		if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			digits(true)
		} else {
			digits(false)
		}
		return token.Token{Kind: token.INT, Pos: pos, Lit: l.src[start:l.off]}
	}
	// Hex literal: the leading 0 was already consumed by digits(false).
	if l.off == start+1 && l.src[start] == '0' && (l.peek() == 'x' || l.peek() == 'X') {
		l.advance()
		digits(true)
	}
	return token.Token{Kind: token.INT, Pos: pos, Lit: l.src[start:l.off]}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	start := l.off
	for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
		l.advance()
	}
	lit := l.src[start:l.off]
	if l.off >= len(l.src) || l.peek() != '"' {
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: fmt.Sprintf("unterminated string %q", lit)}
	}
	l.advance() // closing quote
	return token.Token{Kind: token.STRING, Pos: pos, Lit: lit}
}

// All scans the entire buffer, for tests and tooling.
func All(src string) []token.Token {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
