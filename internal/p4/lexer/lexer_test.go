package lexer

import (
	"testing"

	"repro/internal/p4/token"
)

func kinds(src string) []token.Kind {
	toks := All(src)
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	src := `table eth_table { key = { hdr.eth.dst: ternary; } }`
	want := []token.Kind{
		token.TABLE, token.IDENT, token.LBRACE, token.KEY, token.ASSIGN,
		token.LBRACE, token.IDENT, token.DOT, token.IDENT, token.DOT,
		token.IDENT, token.COLON, token.IDENT, token.SEMICOLON,
		token.RBRACE, token.RBRACE, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := `== != <= >= << >> && || &&& ++ & | ^ ~ ! ? : = < > + - _`
	want := []token.Kind{
		token.EQ, token.NE, token.LE, token.GE, token.SHL, token.SHR,
		token.LAND, token.LOR, token.MASK, token.PLUSPLUS, token.AND,
		token.OR, token.XOR, token.TILDE, token.NOT, token.QUESTION,
		token.COLON, token.ASSIGN, token.LT, token.GT, token.PLUS,
		token.MINUS, token.USCORE, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct{ src, lit string }{
		{"255", "255"},
		{"0x800", "0x800"},
		{"0XFF", "0XFF"},
		{"8w255", "8w255"},
		{"16w0x0800", "16w0x0800"},
		{"48w0xDEADBEEFF00D", "48w0xDEADBEEFF00D"},
		{"1_000_000", "1_000_000"},
	}
	for _, c := range cases {
		toks := All(c.src)
		if toks[0].Kind != token.INT || toks[0].Lit != c.lit {
			t.Errorf("%q: got %s", c.src, toks[0])
		}
		if toks[1].Kind != token.EOF {
			t.Errorf("%q: trailing token %s", c.src, toks[1])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := "a // line comment\n/* block\ncomment */ b"
	toks := All(src)
	if len(toks) != 3 || toks[0].Lit != "a" || toks[1].Lit != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Fatalf("line tracking through block comment wrong: %v", toks[1].Pos)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := All("action actions applied value_set value_sets")
	want := []token.Kind{token.ACTION, token.ACTIONS, token.IDENT, token.VALUESET, token.IDENT, token.EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %s, want %s", i, toks[i], k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := All("ab\n  cd")
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Fatalf("first pos %v", toks[0].Pos)
	}
	if toks[1].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Fatalf("second pos %v", toks[1].Pos)
	}
}

func TestLexIllegal(t *testing.T) {
	toks := All("a $ b")
	if toks[1].Kind != token.ILLEGAL || toks[1].Lit != "$" {
		t.Fatalf("expected ILLEGAL($), got %s", toks[1])
	}
	toks = All(`"unterminated`)
	if toks[0].Kind != token.ILLEGAL {
		t.Fatalf("expected ILLEGAL for unterminated string, got %s", toks[0])
	}
}

func TestLexString(t *testing.T) {
	toks := All(`"hello world"`)
	if toks[0].Kind != token.STRING || toks[0].Lit != "hello world" {
		t.Fatalf("got %s", toks[0])
	}
}
