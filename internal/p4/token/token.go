// Package token defines the lexical tokens of the P4-16 subset accepted
// by goflay's frontend, together with source positions for error
// reporting.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds. Keywords occupy a contiguous range so IsKeyword is a range
// check.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // port_table
	INT    // 10, 0x800, 8w255, 16w0x800
	STRING // "..." (annotations only)

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	SEMICOLON // ;
	COLON     // :
	COMMA     // ,
	DOT       // .
	ASSIGN    // =
	QUESTION  // ?
	AT        // @

	PLUS     // +
	MINUS    // -
	STAR     // *
	AND      // &
	OR       // |
	XOR      // ^
	NOT      // !
	TILDE    // ~
	SHL      // <<
	SHR      // >>
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=
	LAND     // &&
	LOR      // ||
	MASK     // &&& (ternary keyset mask)
	PLUSPLUS // ++ (bit concatenation)
	USCORE   // _ (wildcard keyset)

	keywordStart
	ACTION
	ACTIONS
	APPLY
	BIT
	BOOL
	CONST
	CONTROL
	DEFAULT
	DEFAULTACTION // default_action
	ELSE
	EXIT
	FALSE
	HEADER
	IF
	KEY
	PARSER
	REGISTER
	RETURN
	SELECT
	SIZE
	STATE
	STRUCT
	TABLE
	TRANSITION
	TRUE
	TYPEDEF
	VALUESET // value_set
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", STRING: "STRING",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[",
	RBRACKET: "]", SEMICOLON: ";", COLON: ":", COMMA: ",", DOT: ".",
	ASSIGN: "=", QUESTION: "?", AT: "@",
	PLUS: "+", MINUS: "-", STAR: "*", AND: "&", OR: "|", XOR: "^",
	NOT: "!", TILDE: "~", SHL: "<<", SHR: ">>", LT: "<", GT: ">",
	LE: "<=", GE: ">=", EQ: "==", NE: "!=", LAND: "&&", LOR: "||",
	MASK: "&&&", PLUSPLUS: "++", USCORE: "_",
	ACTION: "action", ACTIONS: "actions", APPLY: "apply", BIT: "bit",
	BOOL: "bool", CONST: "const", CONTROL: "control", DEFAULT: "default",
	DEFAULTACTION: "default_action", ELSE: "else", EXIT: "exit",
	FALSE: "false", HEADER: "header", IF: "if", KEY: "key",
	PARSER: "parser", REGISTER: "register", RETURN: "return",
	SELECT: "select", SIZE: "size", STATE: "state", STRUCT: "struct",
	TABLE: "table", TRANSITION: "transition", TRUE: "true",
	TYPEDEF: "typedef", VALUESET: "value_set",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordStart && k < keywordEnd }

// Keywords maps spelling to keyword kind.
var Keywords = map[string]Kind{
	"action": ACTION, "actions": ACTIONS, "apply": APPLY, "bit": BIT,
	"bool": BOOL, "const": CONST, "control": CONTROL, "default": DEFAULT,
	"default_action": DEFAULTACTION, "else": ELSE, "exit": EXIT,
	"false": FALSE, "header": HEADER, "if": IF, "key": KEY,
	"parser": PARSER, "register": REGISTER, "return": RETURN,
	"select": SELECT, "size": SIZE, "state": STATE, "struct": STRUCT,
	"table": TABLE, "transition": TRANSITION, "true": TRUE,
	"typedef": TYPEDEF, "value_set": VALUESET,
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT, INT, STRING and ILLEGAL
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
