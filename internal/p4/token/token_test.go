package token

import "testing"

func TestKeywordRange(t *testing.T) {
	for spelling, kind := range Keywords {
		if !kind.IsKeyword() {
			t.Errorf("%q (%v) should satisfy IsKeyword", spelling, kind)
		}
		if kind.String() != spelling {
			t.Errorf("keyword %v prints %q, want %q", kind, kind.String(), spelling)
		}
	}
	for _, k := range []Kind{IDENT, INT, EOF, LPAREN, MASK, PLUSPLUS} {
		if k.IsKeyword() {
			t.Errorf("%v should not be a keyword", k)
		}
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Lit: "foo"}, `IDENT("foo")`},
		{Token{Kind: INT, Lit: "8w255"}, `INT("8w255")`},
		{Token{Kind: ILLEGAL, Lit: "$"}, `ILLEGAL("$")`},
		{Token{Kind: LBRACE}, "{"},
		{Token{Kind: TABLE}, "table"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
	if Kind(255).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("Pos.String() = %q", p.String())
	}
	if !p.IsValid() || (Pos{}).IsValid() {
		t.Error("IsValid wrong")
	}
}
