package dd

import (
	"fmt"

	"repro/internal/sym"
)

// Path walks: the decision procedures over a compiled diagram.
//
// A diagram's predicates are correlated through their shared atoms
// (x==3 and x==5 cannot both hold), so a non-False root does not by
// itself prove satisfiability. The walks below run a depth-first
// search over root-to-terminal paths while tracking, per atom, the set
// of values still consistent with the branches taken: one positive
// equality pins the atom, negative equalities exclude constants, and
// the less-than branches narrow an inclusive [lo, hi] window. A branch
// whose constraint empties the atom's value set is pruned — that path
// is followed by no concrete packet. Every total assignment follows
// exactly one path and trivially satisfies that path's constraints, so
// the feasible paths cover the function exactly: no feasible true-path
// means unsatisfiable, and all feasible paths sharing one terminal
// means constant. The search is budgeted; a blown budget reports Over
// and the engine falls back to the probe solver, keeping the walks
// pure speedup, never a soundness risk.

// con is the per-atom feasibility state along the current path. fm/fv
// track bits forced by positive mask-equality branches ((x & m) == c
// taken true forces the m bits to c); fv is kept masked to fm. The
// mask state interacts exactly with equalities (a pinned value must
// agree with the forced bits, and vice versa) and conservatively with
// everything else: a constraint combination the tracker cannot decide
// stays "feasible", which can only send the walk down a path whose
// witness later fails verification — never prune a genuinely feasible
// path, so SatNo/ConstUniform stay proofs.
type con struct {
	assigned bool
	val      sym.BV
	lo, hi   sym.BV   // inclusive window
	excl     []sym.BV // excluded values inside the window
	fm, fv   sym.BV   // bits forced by mask equalities, and their values
	// nmask holds negated multi-bit mask equalities: (val & m) == v is
	// false on this path. Single-bit negations fold into fm/fv exactly
	// (the bit is forced to its complement); wider ones land here and
	// are consulted by equality tests, feasibility scans and picks.
	nmask []maskCon
}

// maskCon is one excluded pattern on a set of masked bits.
type maskCon struct{ m, v sym.BV }

// walker is the DFS state shared by Sat and ConstCheck.
type walker struct {
	atoms  []Atom
	cons   map[int32]*con
	visits int
	budget int
	over   bool
}

func newWalker(atoms []Atom, budget int) *walker {
	return &walker{atoms: atoms, cons: make(map[int32]*con, 8), budget: budget}
}

// conOf returns the atom's constraint state, creating the
// unconstrained full-window state on first touch (creation needs no
// undo: a full window encodes "no constraint").
func (w *walker) conOf(atom int32) *con {
	if c, ok := w.cons[atom]; ok {
		return c
	}
	width := uint16(1)
	if int(atom) < len(w.atoms) {
		width = w.atoms[atom].Width
	}
	c := &con{lo: sym.BV{W: width}, hi: sym.AllOnes(width), fm: sym.BV{W: width}, fv: sym.BV{W: width}}
	w.cons[atom] = c
	return c
}

// predConst resolves the constant a predicate tests against (PredBool
// is the equality x == 1).
func predConst(p pred) sym.BV {
	if p.kind == PredBool {
		return sym.Bool(true)
	}
	return p.c
}

// state classifies a predicate against the atom's current constraints:
// +1 forced true, -1 forced false, 0 open (both branches feasible so
// far).
func (w *walker) state(c *con, p pred) int {
	pc := predConst(p)
	if c.assigned {
		hold := false
		switch p.kind {
		case PredLt:
			hold = c.val.Ult(pc)
		case PredMaskEq:
			hold = c.val.And(p.m) == pc
		default:
			hold = c.val == pc
		}
		if hold {
			return 1
		}
		return -1
	}
	if p.kind == PredMaskEq {
		// Bits the path has already forced decide what they cover: a
		// disagreement on any covered bit refutes the test outright,
		// full coverage with agreement proves it. A previously negated
		// identical test refutes it too.
		known := c.fm.And(p.m)
		if c.fv.And(known) != pc.And(known) {
			return -1
		}
		for _, n := range c.nmask {
			if n.m == p.m && n.v == pc {
				return -1
			}
		}
		if known == p.m {
			return 1
		}
		return 0
	}
	if p.kind == PredLt {
		if c.hi.Ult(pc) {
			return 1 // whole window below the bound
		}
		if !c.lo.Ult(pc) {
			return -1 // whole window at or above the bound
		}
		return 0
	}
	// Equality: a constant outside the window, already excluded,
	// disagreeing with a forced bit, or matching a negated mask
	// pattern cannot hold; a window pinned to exactly the constant
	// must.
	if pc.Ult(c.lo) || c.hi.Ult(pc) || c.excluded(pc) || pc.And(c.fm) != c.fv || c.maskExcluded(pc) {
		return -1
	}
	if c.lo == c.hi && c.lo == pc {
		return 1
	}
	return 0
}

func (c *con) excluded(v sym.BV) bool {
	for _, e := range c.excl {
		if e == v {
			return true
		}
	}
	return false
}

// maskExcluded reports whether a concrete value hits one of the
// negated mask patterns.
func (c *con) maskExcluded(v sym.BV) bool {
	for _, n := range c.nmask {
		if v.And(n.m) == n.v {
			return true
		}
	}
	return false
}

// consistent reports whether one concrete value satisfies every
// constraint tracked for the atom.
func (c *con) consistent(v sym.BV) bool {
	if c.assigned {
		return v == c.val
	}
	if v.Ult(c.lo) || c.hi.Ult(v) || v.And(c.fm) != c.fv || c.excluded(v) || c.maskExcluded(v) {
		return false
	}
	return true
}

// feasScanCap bounds the exhaustive feasibility scan: windows at most
// this wide are decided exactly (the toy widths walks must be precise
// on); wider windows use the cheap counting argument and stay
// conservative — "feasible" can overclaim there, which only ever costs
// a witness verification downstream, never a soundness hole.
const feasScanCap = 64

// feasible reports whether the window still contains a value
// consistent with every tracked constraint. Narrow windows are decided
// exactly by scanning; wide ones by bounding the exclusion list
// against the window size (forced bits and negated masks cannot empty
// a >64-value window that the list does not).
func (c *con) feasible() bool {
	if c.assigned {
		return true
	}
	if c.hi.Ult(c.lo) {
		return false
	}
	diff := c.hi.Sub(c.lo)
	if diff.Hi == 0 && diff.Lo < feasScanCap {
		v := c.lo
		one := sym.NewBV(v.W, 1)
		for i := uint64(0); i <= diff.Lo; i++ {
			if c.consistent(v) {
				return true
			}
			v = v.Add(one)
		}
		return false
	}
	if diff.Hi != 0 || diff.Lo+1 == 0 {
		return true
	}
	size := diff.Lo + 1
	in := uint64(0)
	for _, e := range c.excl {
		if !e.Ult(c.lo) && !c.hi.Ult(e) {
			in++
		}
	}
	return in < size
}

// assume narrows the atom's state by taking the given branch of the
// predicate; it reports whether the narrowed state is still feasible.
// The caller restores the returned snapshot to backtrack (the excl
// slice only grows, so restoring the old header truncates it).
func (w *walker) assume(c *con, p pred, branch bool) (prev con, ok bool) {
	prev = *c
	pc := predConst(p)
	if p.kind == PredMaskEq {
		if branch {
			// Merge the forced bits (state already ruled out a
			// disagreement on previously forced bits; pc is masked to
			// p.m by construction).
			c.fm = c.fm.Or(p.m)
			c.fv = c.fv.Or(pc)
			return prev, c.feasible()
		}
		// The negated test excludes one pattern on the masked bits. A
		// single-bit mask negates exactly — the bit is forced to its
		// complement — and folds into the forced-bit state; wider
		// masks land on the exclusion list.
		if p.m.PopCount() == 1 {
			c.fm = c.fm.Or(p.m)
			c.fv = c.fv.Or(pc.Xor(p.m))
			return prev, c.feasible()
		}
		c.nmask = append(c.nmask, maskCon{m: p.m, v: pc})
		return prev, c.feasible()
	}
	if p.kind == PredLt {
		if branch {
			// val < pc: new upper bound pc-1 (pc > 0, or the branch
			// would have been forced false).
			nh := pc.Sub(sym.NewBV(pc.W, 1))
			if nh.Ult(c.hi) {
				c.hi = nh
			}
		} else {
			// val >= pc.
			if c.lo.Ult(pc) {
				c.lo = pc
			}
		}
		return prev, c.feasible()
	}
	if branch {
		c.assigned = true
		c.val = pc
		return prev, true
	}
	c.excl = append(c.excl, pc)
	return prev, c.feasible()
}

// pickScanCap bounds pick's fallback scan through the window.
const pickScanCap = 64

// pick extracts one concrete value consistent with the atom's state.
// The forced-bits candidate is repaired against negated-mask hits by
// flipping free bits, then a bounded window scan runs — exact whenever
// feasible() was exact, so on narrow windows a feasible state always
// yields a consistent value. A wide window that defeats both (possible
// only when feasibility overclaimed) returns a best-effort value;
// picks are verified against the residue before anything trusts them.
func (c *con) pick() sym.BV {
	if c.assigned {
		return c.val
	}
	v := c.fv.Or(c.lo.And(c.fm.Not()))
	for round := 0; round <= len(c.nmask); round++ {
		if c.consistent(v) {
			return v
		}
		fixed := false
		for _, n := range c.nmask {
			if v.And(n.m) == n.v {
				free := n.m.And(c.fm.Not())
				if free.IsZero() {
					break
				}
				// Flip the lowest free masked bit out of the pattern.
				v = v.Xor(free.And(sym.BV{W: free.W}.Sub(free)))
				fixed = true
				break
			}
		}
		if !fixed {
			break
		}
	}
	v = c.lo
	one := sym.NewBV(v.W, 1)
	for i := 0; i < pickScanCap; i++ {
		if c.consistent(v) {
			return v
		}
		if v == c.hi {
			break
		}
		v = v.Add(one)
	}
	return c.fv.Or(c.lo.And(c.fm.Not()))
}

// env snapshots one concrete assignment from the current constraints.
func (w *walker) env() map[int32]sym.BV {
	out := make(map[int32]sym.BV, len(w.cons))
	for atom, c := range w.cons {
		out[atom] = c.pick()
	}
	return out
}

// SatOutcome is the answer of a Sat walk.
type SatOutcome uint8

const (
	// SatYes: a feasible path to the true terminal exists; the returned
	// assignment follows it.
	SatYes SatOutcome = iota
	// SatNo: every path to the true terminal is infeasible — the
	// condition is unsatisfiable. This is a proof, not a heuristic.
	SatNo
	// SatOver: the walk exceeded its budget; fall back to the solver.
	SatOver
)

// Sat decides satisfiability of a width-1 diagram by feasibility-
// pruned DFS, biased towards true branches so live conditions (the
// overwhelmingly common case) answer on the first descent.
func Sat(n *Node, atoms []Atom, budget int) (map[int32]sym.BV, SatOutcome) {
	w := newWalker(atoms, budget)
	if w.sat(n) {
		return w.env(), SatYes
	}
	if w.over {
		return nil, SatOver
	}
	return nil, SatNo
}

func (w *walker) sat(n *Node) bool {
	if w.over {
		return false
	}
	w.visits++
	if w.visits > w.budget {
		w.over = true
		return false
	}
	if n.IsTerminal() {
		return n.val.IsTrue()
	}
	c := w.conOf(n.p.atom)
	switch w.state(c, n.p) {
	case 1:
		return w.sat(n.t)
	case -1:
		return w.sat(n.f)
	}
	if prev, ok := w.assume(c, n.p, true); ok {
		if w.sat(n.t) {
			return true
		}
		*c = prev
	} else {
		*c = prev
	}
	if prev, ok := w.assume(c, n.p, false); ok {
		if w.sat(n.f) {
			return true
		}
		*c = prev
	} else {
		*c = prev
	}
	return false
}

// ConstOutcome is the answer of a ConstCheck walk.
type ConstOutcome uint8

const (
	// ConstUniform: every feasible path reaches the same terminal — the
	// diagram denotes a single value (returned as val, with one
	// witnessing assignment).
	ConstUniform ConstOutcome = iota
	// ConstVaries: two feasible paths reach distinct terminals; the two
	// returned assignments evaluate to different values.
	ConstVaries
	// ConstOver: budget exceeded; fall back to the solver.
	ConstOver
)

// ConstCheck decides whether a (possibly multi-terminal) diagram
// denotes a constant, by enumerating feasible paths until two distinct
// terminals are reached or the paths are exhausted.
func ConstCheck(n *Node, atoms []Atom, budget int) (val sym.BV, envA, envB map[int32]sym.BV, out ConstOutcome) {
	w := newWalker(atoms, budget)
	cc := &constCheck{w: w}
	cc.walk(n)
	if cc.varies {
		return cc.first, cc.envA, cc.envB, ConstVaries
	}
	if w.over || !cc.haveFirst {
		return sym.BV{}, nil, nil, ConstOver
	}
	return cc.first, cc.envA, nil, ConstUniform
}

type constCheck struct {
	w          *walker
	haveFirst  bool
	first      sym.BV
	envA, envB map[int32]sym.BV
	varies     bool
}

// walk returns true to abort the DFS (varies proven or budget blown).
func (cc *constCheck) walk(n *Node) bool {
	w := cc.w
	if w.over || cc.varies {
		return true
	}
	w.visits++
	if w.visits > w.budget {
		w.over = true
		return true
	}
	if n.IsTerminal() {
		if !cc.haveFirst {
			cc.haveFirst, cc.first = true, n.val
			cc.envA = w.env()
			return false
		}
		if n.val != cc.first {
			cc.varies = true
			cc.envB = w.env()
			return true
		}
		return false
	}
	c := w.conOf(n.p.atom)
	switch w.state(c, n.p) {
	case 1:
		return cc.walk(n.t)
	case -1:
		return cc.walk(n.f)
	}
	if prev, ok := w.assume(c, n.p, true); ok {
		stop := cc.walk(n.t)
		*c = prev
		if stop {
			return true
		}
	} else {
		*c = prev
	}
	if prev, ok := w.assume(c, n.p, false); ok {
		stop := cc.walk(n.f)
		*c = prev
		return stop
	} else {
		*c = prev
	}
	return false
}

// EvalNode evaluates the diagram under a (possibly partial)
// assignment: one root-to-terminal descent, testing each predicate
// concretely. It reports false when the path needs an unassigned atom.
// This is the near-O(1) re-proof walk: retrying a liveness witness
// costs the path length, not a traversal of the residue DAG.
func EvalNode(n *Node, get func(atom int32) (sym.BV, bool)) (sym.BV, bool) {
	for !n.IsTerminal() {
		v, ok := get(n.p.atom)
		if !ok {
			return sym.BV{}, false
		}
		if predHolds(n.p, v) {
			n = n.t
		} else {
			n = n.f
		}
	}
	return n.val, true
}

func predHolds(p pred, v sym.BV) bool {
	switch p.kind {
	case PredBool:
		return v.IsTrue()
	case PredEq:
		return v == p.c
	case PredLt:
		return v.Ult(p.c)
	default:
		return v.And(p.m) == p.c
	}
}

// Step is one predicate test along an explained path.
type Step struct {
	// Pred is the predicate in the paper's notation, e.g.
	// "@hdr.ipv4.dstAddr@ == 0x0a000001".
	Pred string
	// Taken reports which branch the assignment took.
	Taken bool
}

// PathSteps records the descent of a total assignment through the
// diagram: the predicates tested, the branches taken, and the terminal
// reached. It is the introspection walk behind Explain.
func PathSteps(atoms []Atom, n *Node, get func(atom int32) sym.BV) ([]Step, *Node) {
	var steps []Step
	for !n.IsTerminal() {
		v := get(n.p.atom)
		taken := predHolds(n.p, v)
		steps = append(steps, Step{Pred: formatPred(atoms, n.p), Taken: taken})
		if taken {
			n = n.t
		} else {
			n = n.f
		}
	}
	return steps, n
}

// AtomValueString renders one witness value for the introspection API.
func AtomValueString(v sym.BV) string { return fmt.Sprintf("%s", v) }
