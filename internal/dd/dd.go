// Package dd implements a canonical ordered decision diagram over
// match-key predicates — the query core the ROADMAP names as "the
// refactor that makes every other speed item cheaper" (after the FDD
// construction in *A Fast Compiler for NetKAT*).
//
// A diagram node tests one predicate over a data-plane variable (an
// "atom"): the bare truth of a width-1 variable, equality against a
// constant, or an unsigned less-than against a constant. Internal
// nodes branch on the predicate; terminal nodes carry a bitvector
// value (width-1 terminals are the booleans, wider terminals make the
// diagram an MTBDD for constancy queries). Three invariants give
// canonical form:
//
//   - ordered: predicates appear in strictly increasing order along
//     every root-to-terminal path, under a fixed total order — atoms
//     in registration order (the engine registers them by taint
//     frequency, most-tested first), predicates of one atom by (kind,
//     constant);
//   - reduced: no node has identical branches (reduce-on-construct);
//   - hash-consed: structurally equal nodes are pointer-equal, so
//     structurally equal conditions compiled through one Store are the
//     same pointer and sharing across program points is free.
//
// Because predicates over one atom are correlated (x==3 and x==5
// cannot both hold), pointer equality implies semantic equality but a
// non-False diagram is not automatically satisfiable; walk.go provides
// the feasibility-pruned path walks (Sat, ConstCheck) that close the
// gap, and the engine falls back to the probe solver when a walk
// exceeds its budget.
//
// Concurrency: a Store's intern table is guarded by an internal mutex
// (mirroring sym.Builder), so evaluation workers may compile through
// one shared Store concurrently — pointer identity must stay global or
// cross-point sharing would break. Nodes are immutable after creation
// and the atom table is published through an atomic pointer, so
// lock-free readers (epoch-based Explain) may walk any node they hold
// without ever touching the mutex. Per-worker mutable scratch — the
// compile and apply memos — lives in a Ctx, one per worker.
package dd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sym"
)

// PredKind classifies the predicate an internal node tests.
type PredKind uint8

const (
	// PredBool tests the truth of a width-1 atom (x != 0).
	PredBool PredKind = iota
	// PredEq tests atom == C.
	PredEq
	// PredLt tests atom < C (unsigned).
	PredLt
	// PredMaskEq tests (atom & M) == C — the ternary-match shape. The
	// constant C is normalized to lie inside the mask (C & ~M == 0).
	PredMaskEq
)

func (k PredKind) String() string {
	switch k {
	case PredBool:
		return "bool"
	case PredEq:
		return "=="
	case PredLt:
		return "<"
	default:
		return "&=="
	}
}

// Atom is one data-plane variable the diagram may test. Atoms are
// identified by their registration index, which is also their level in
// the variable order: lower index = nearer the root.
type Atom struct {
	Name  string
	Width uint16
}

// pred is the label of an internal node. The zero atom index is a
// valid atom; terminals are marked by atom == -1 on the node itself.
// m is the mask of a PredMaskEq test and zero for every other kind.
type pred struct {
	atom int32
	kind PredKind
	c    sym.BV
	m    sym.BV
}

// less is the fixed total predicate order: atom level first (the
// engine's taint-frequency order), then kind, then constant, then
// mask.
func (p pred) less(q pred) bool {
	if p.atom != q.atom {
		return p.atom < q.atom
	}
	if p.kind != q.kind {
		return p.kind < q.kind
	}
	if p.c.W != q.c.W {
		return p.c.W < q.c.W
	}
	if p.c.Hi != q.c.Hi {
		return p.c.Hi < q.c.Hi
	}
	if p.c.Lo != q.c.Lo {
		return p.c.Lo < q.c.Lo
	}
	if p.m.Hi != q.m.Hi {
		return p.m.Hi < q.m.Hi
	}
	return p.m.Lo < q.m.Lo
}

// Node is one hash-consed diagram node. Nodes are immutable and owned
// by their Store; two nodes from one Store are pointer-equal iff they
// are structurally equal.
type Node struct {
	p    pred
	t, f *Node  // branches; nil on terminals
	val  sym.BV // terminal value
}

// IsTerminal reports whether n is a terminal (value) node.
func (n *Node) IsTerminal() bool { return n.t == nil }

// Value returns the terminal's bitvector; meaningless on internal
// nodes.
func (n *Node) Value() sym.BV { return n.val }

// IsTrue reports whether n is the width-1 terminal 1.
func (n *Node) IsTrue() bool { return n.IsTerminal() && n.val.W == 1 && n.val.IsTrue() }

// IsFalse reports whether n is the width-1 terminal 0.
func (n *Node) IsFalse() bool { return n.IsTerminal() && n.val.W == 1 && n.val.IsZero() }

// nodeKey is the structural identity used for hash-consing internal
// nodes.
type nodeKey struct {
	p    pred
	t, f *Node
}

// atomTab is one immutable snapshot of the atom table. Registration
// replaces the snapshot wholesale (copy-on-write under the Store
// mutex), so lock-free readers see a consistent list.
type atomTab struct {
	atoms []Atom
	index map[string]int32
}

// Store owns the hash-consed nodes and the atom table. See the
// package comment for the concurrency contract.
type Store struct {
	mu    sync.Mutex
	nodes map[nodeKey]*Node
	terms map[sym.BV]*Node
	tab   atomic.Pointer[atomTab]
	live  atomic.Int64 // lock-free node count mirror

	nTrue, nFalse *Node
}

// NewStore returns an empty diagram store.
func NewStore() *Store {
	s := &Store{
		nodes: make(map[nodeKey]*Node, 256),
		terms: make(map[sym.BV]*Node, 16),
	}
	s.tab.Store(&atomTab{index: make(map[string]int32)})
	s.nTrue = s.Term(sym.Bool(true))
	s.nFalse = s.Term(sym.Bool(false))
	return s
}

// NumNodes returns the number of distinct nodes interned, without
// taking the mutex — the measure the engine's sweep trigger and the
// benchmarks read.
func (s *Store) NumNodes() int { return int(s.live.Load()) }

// Register adds an atom (or returns the existing index when the name
// is already registered). Registration order is the variable order;
// the engine registers atoms serially under its write lock — at open
// in taint-frequency order, then append-only as fresh variables
// appear — so the order is deterministic. The returned index is the
// atom's level.
func (s *Store) Register(name string, width uint16) int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	tab := s.tab.Load()
	if id, ok := tab.index[name]; ok {
		return id
	}
	next := &atomTab{
		atoms: append(append([]Atom(nil), tab.atoms...), Atom{Name: name, Width: width}),
		index: make(map[string]int32, len(tab.index)+1),
	}
	for k, v := range tab.index {
		next.index[k] = v
	}
	id := int32(len(tab.atoms))
	next.index[name] = id
	s.tab.Store(next)
	return id
}

// Atoms returns the current atom table snapshot (immutable; safe to
// hold and index concurrently with registration).
func (s *Store) Atoms() []Atom { return s.tab.Load().atoms }

// Has reports whether an atom is registered under name (lock-free).
func (s *Store) Has(name string) bool {
	_, ok := s.tab.Load().index[name]
	return ok
}

// lookup resolves an atom name without registering. Width must match;
// a mismatch (or an unknown name) reports false and the caller bails
// to the solver.
func (s *Store) lookup(name string, width uint16) (int32, bool) {
	tab := s.tab.Load()
	id, ok := tab.index[name]
	if !ok || tab.atoms[id].Width != width {
		return 0, false
	}
	return id, true
}

// Term returns the terminal node for value v.
func (s *Store) Term(v sym.BV) *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.terms[v]; ok {
		return n
	}
	n := &Node{p: pred{atom: -1}, val: v}
	s.terms[v] = n
	s.live.Add(1)
	return n
}

// True returns the width-1 terminal 1.
func (s *Store) True() *Node { return s.nTrue }

// False returns the width-1 terminal 0.
func (s *Store) False() *Node { return s.nFalse }

// mk interns the internal node (p ? t : f), reducing identical
// branches on construction. Callers maintain the order invariant: p
// precedes every predicate in t and f (apply and compile only ever
// branch on the minimal predicate).
func (s *Store) mk(p pred, t, f *Node) *Node {
	if t == f {
		return t
	}
	key := nodeKey{p: p, t: t, f: f}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[key]; ok {
		return n
	}
	n := &Node{p: p, t: t, f: f}
	s.nodes[key] = n
	s.live.Add(1)
	return n
}

// predNode builds the leaf-level predicate diagram (p ? 1 : 0),
// normalizing so each semantic test has one form: width-1 atoms always
// test PredBool, `x < 1` becomes `x == 0`, and vacuous bounds fold to
// constants. Normalization is what makes structurally different but
// equivalent conditions land on the same pointer.
func (s *Store) predNode(atom int32, width uint16, kind PredKind, c sym.BV) *Node {
	switch kind {
	case PredEq:
		if width == 1 {
			// x == 1 is x; x == 0 is !x.
			if c.IsTrue() {
				return s.mk(pred{atom: atom, kind: PredBool, c: sym.Bool(true)}, s.nTrue, s.nFalse)
			}
			return s.mk(pred{atom: atom, kind: PredBool, c: sym.Bool(true)}, s.nFalse, s.nTrue)
		}
	case PredLt:
		if c.IsZero() {
			return s.nFalse // x < 0 is unsatisfiable
		}
		if c.Hi == 0 && c.Lo == 1 {
			// x < 1 is x == 0.
			return s.predNode(atom, width, PredEq, sym.BV{W: width})
		}
		if width == 1 {
			// c >= 2 on a 1-bit atom: always true. (c==1 handled above.)
			return s.nTrue
		}
	case PredBool:
		c = sym.Bool(true)
	}
	return s.mk(pred{atom: atom, kind: kind, c: c}, s.nTrue, s.nFalse)
}

// maskNode builds the ternary-match predicate diagram ((x & m) == c ?
// 1 : 0), normalizing the degenerate masks: bits of c outside m make
// the test unsatisfiable, a full mask is plain equality, and an empty
// mask holds vacuously.
func (s *Store) maskNode(atom int32, width uint16, m, c sym.BV) *Node {
	if !c.And(m.Not()).IsZero() {
		return s.nFalse
	}
	if m.IsAllOnes() {
		return s.predNode(atom, width, PredEq, c)
	}
	if m.IsZero() {
		return s.nTrue
	}
	return s.mk(pred{atom: atom, kind: PredMaskEq, c: c, m: m}, s.nTrue, s.nFalse)
}

// top returns n's predicate; terminals sort after every predicate.
func top(n *Node) (pred, bool) {
	if n.IsTerminal() {
		return pred{}, false
	}
	return n.p, true
}

// minPred returns the least predicate among the given nodes' roots; ok
// is false when all are terminals.
func minPred(ns ...*Node) (best pred, ok bool) {
	for _, n := range ns {
		if p, has := top(n); has {
			if !ok || p.less(best) {
				best, ok = p, true
			}
		}
	}
	return best, ok
}

// cofactor splits n by predicate p: when n branches on p it returns
// the two branches, otherwise n is independent of p and both cofactors
// are n itself.
func cofactor(n *Node, p pred) (t, f *Node) {
	if !n.IsTerminal() && n.p == p {
		return n.t, n.f
	}
	return n, n
}

// Ctx is one worker's compilation context: the per-worker memo tables
// over a shared Store. A Ctx is not safe for concurrent use; the
// engine embeds one per evaluation shard and discards it when the
// expression arena is swept (the compile memo is keyed on hash-consed
// *sym.Expr pointers, which a sweep retires) or when the Store is
// rebuilt.
type Ctx struct {
	st      *Store
	compile map[*sym.Expr]compileRes
	apply   map[applyKey]*Node
	cmpMemo map[cmpKey]*Node
	steps   int
	limit   int
}

type compileRes struct {
	n  *Node
	ok bool
}

// cmpKey memoizes one comparison-against-constant compilation
// (cmpConst, and maskCmp when masked is set).
type cmpKey struct {
	op      sym.Op
	x       *sym.Expr
	k       sym.BV
	m       sym.BV
	flipped bool
	masked  bool
}

// applyKey memoizes one apply step. Extract carries its bounds in the
// parameter slots; every other operator leaves them zero.
type applyKey struct {
	op      sym.Op
	a, b, c *Node
	p1, p2  uint16
}

// NewCtx returns a fresh compilation context over st.
func NewCtx(st *Store) *Ctx {
	return &Ctx{
		st:      st,
		compile: make(map[*sym.Expr]compileRes, 256),
		apply:   make(map[applyKey]*Node, 256),
		cmpMemo: make(map[cmpKey]*Node, 256),
	}
}

// Store returns the store this context compiles into.
func (c *Ctx) Store() *Store { return c.st }

// compileLimit bounds the work (node constructions + apply steps) one
// Compile call may perform before giving up; a blown budget means the
// condition does not have a compact diagram under the current order
// and the caller falls back to the probe solver.
const compileLimit = 1 << 17

// bailErr aborts a compilation. Both flavors memoize at the top-level
// expression — a structural bail because the residue shape can never
// compile, a budget bail because retrying the same pointer would burn
// the full limit again for the same answer (the memo is per-worker and
// flushed on arena sweeps, so a genuinely changed residue — a new
// pointer — always gets a fresh attempt).
type bailErr struct{ budget bool }

func (c *Ctx) step() {
	c.steps++
	if c.steps > c.limit {
		panic(bailErr{budget: true})
	}
}

// Compile translates a simplified symbolic residue into a diagram.
// ok=false means the residue is out of the diagram fragment (e.g. an
// unregistered or non-match-key variable position, or the budget was
// blown) and the caller must use the solver path. Compilation is
// memoized on the hash-consed expression pointer, so re-compiling a
// residue that shares structure with previous ones — the common case
// after an incremental update — costs only the changed region.
func (c *Ctx) Compile(e *sym.Expr) (n *Node, ok bool) {
	n, _, ok = c.CompileBudget(e, compileLimit)
	return n, ok
}

// CompileBudget is Compile under a caller-chosen work limit (clamped
// to the package cap). used reports the steps the attempt consumed
// whether or not it landed, so a caller re-compiling residues on every
// update can meter real costs and stop retrying conditions that are
// inside the fragment but too large to rebuild at update rate. A
// budget bail is memoized against the expression pointer like any
// other: a later call with a larger limit still reports the cached
// failure, which is the behavior the engine wants — per-pointer
// verdicts must be stable until a sweep retires the memo.
func (c *Ctx) CompileBudget(e *sym.Expr, limit int) (n *Node, used int, ok bool) {
	if r, hit := c.compile[e]; hit {
		return r.n, 0, r.ok
	}
	c.steps = 0
	c.limit = min(limit, compileLimit)
	defer func() {
		if r := recover(); r != nil {
			if _, isBail := r.(bailErr); !isBail {
				panic(r)
			}
			n, ok = nil, false
			c.compile[e] = compileRes{}
		}
	}()
	defer func() { used = c.steps }()
	n = c.rec(e)
	return n, c.steps, true
}

// rec compiles one node, panicking with bailErr when the expression
// leaves the diagram fragment.
func (c *Ctx) rec(e *sym.Expr) *Node {
	if r, hit := c.compile[e]; hit {
		if !r.ok {
			panic(bailErr{})
		}
		return r.n
	}
	c.step()
	n := c.recUncached(e)
	c.compile[e] = compileRes{n: n, ok: true}
	return n
}

func (c *Ctx) recUncached(e *sym.Expr) *Node {
	st := c.st
	switch e.Op {
	case sym.OpConst:
		return st.Term(e.Val)
	case sym.OpVar:
		if e.Class != sym.DataVar || e.Width != 1 {
				// A wide variable has no finite terminal set; it only enters
			// the fragment through a predicate (Eq/Ult against a
			// constant), handled one level up. Control variables never
			// survive substitution.
			panic(bailErr{})
		}
		id, ok := st.lookup(e.Name, e.Width)
		if !ok {
				panic(bailErr{})
		}
		return st.predNode(id, e.Width, PredBool, sym.Bool(true))
	case sym.OpEq, sym.OpUlt:
		return c.cmp(e.Op, e.A, e.B)
	case sym.OpNot:
		return c.apply1(sym.OpNot, c.rec(e.A), 0, 0)
	case sym.OpExtract:
		return c.apply1(sym.OpExtract, c.rec(e.A), e.Hi, e.Lo)
	case sym.OpAnd, sym.OpOr, sym.OpXor, sym.OpAdd, sym.OpSub,
		sym.OpShl, sym.OpLshr, sym.OpConcat:
		return c.apply2(e.Op, c.rec(e.A), c.rec(e.B), 0, 0)
	case sym.OpIte:
		return c.ite(c.rec(e.A), c.rec(e.B), c.rec(e.C))
	default:
		panic(bailErr{})
	}
}

// cmp compiles the comparison `a op b`. When one side is constant it
// routes through cmpConst, which recognizes every predicate shape the
// fragment admits and pushes the comparison through ite chains so wide
// variables in value position reach predicate position; otherwise both
// sides compile independently and the comparison Shannon-expands.
func (c *Ctx) cmp(op sym.Op, a, b *sym.Expr) *Node {
	flipped := false
	if a.Op == sym.OpConst && b.Op != sym.OpConst {
		a, b, flipped = b, a, true
	}
	if b.Op == sym.OpConst {
		return c.cmpConst(op, a, b.Val, flipped)
	}
	return c.apply2(op, c.rec(a), c.rec(b), 0, 0)
}

// cmpConst compiles `x op k` (or `k op x` when flipped) against a
// constant, memoized per (x, k) pair so ite chains sharing hash-consed
// subtrees compile linearly:
//
//   - var op k is a single predicate node; for strict less-than with
//     the constant on the left, k < x is rewritten as !(x < k+1), with
//     the k == all-ones edge folding to false;
//   - (v & m) == k is the ternary-match predicate (maskCmp);
//   - ite(p, t, f) op k pushes the comparison into both branches —
//     this is what keeps a wide variable selected by protocol dispatch
//     (e.g. ite(isUDP, sport, 0) == 0x400) inside the fragment;
//   - a constant folds, and anything else falls back to Shannon
//     expansion over the compiled operands.
func (c *Ctx) cmpConst(op sym.Op, x *sym.Expr, k sym.BV, flipped bool) *Node {
	key := cmpKey{op: op, x: x, k: k, flipped: flipped}
	if n, ok := c.cmpMemo[key]; ok {
		return n
	}
	c.step()
	n := c.cmpConstUncached(op, x, k, flipped)
	c.cmpMemo[key] = n
	return n
}

func (c *Ctx) cmpConstUncached(op sym.Op, x *sym.Expr, k sym.BV, flipped bool) *Node {
	switch {
	case x.Op == sym.OpConst:
		if flipped {
			return c.st.Term(termOp(op, k, x.Val))
		}
		return c.st.Term(termOp(op, x.Val, k))
	case x.Op == sym.OpVar && x.Class == sym.DataVar:
		id, ok := c.st.lookup(x.Name, x.Width)
		if !ok {
			panic(bailErr{})
		}
		if op == sym.OpEq {
			return c.st.predNode(id, x.Width, PredEq, k)
		}
		if !flipped {
			return c.st.predNode(id, x.Width, PredLt, k)
		}
		// k < x  ≡  !(x < k+1); all-ones has no successor.
		if k == sym.AllOnes(k.W) {
			return c.st.False()
		}
		return c.not(c.st.predNode(id, x.Width, PredLt, k.Add(sym.NewBV(k.W, 1))))
	case x.Op == sym.OpIte:
		return c.ite(c.rec(x.A),
			c.cmpConst(op, x.B, k, flipped),
			c.cmpConst(op, x.C, k, flipped))
	case op == sym.OpEq && x.Op == sym.OpAnd &&
		(x.A.Op == sym.OpConst || x.B.Op == sym.OpConst):
		v, m := x.A, x.B
		if v.Op == sym.OpConst {
			v, m = m, v
		}
		return c.maskCmp(v, m.Val, k)
	}
	if flipped {
		return c.apply2(op, c.st.Term(k), c.rec(x), 0, 0)
	}
	return c.apply2(op, c.rec(x), c.st.Term(k), 0, 0)
}

// maskCmp compiles the ternary-match comparison (v & m) == k, pushing
// through ite and folding nested constant masks.
func (c *Ctx) maskCmp(v *sym.Expr, m, k sym.BV) *Node {
	key := cmpKey{op: sym.OpEq, x: v, k: k, m: m, masked: true}
	if n, ok := c.cmpMemo[key]; ok {
		return n
	}
	c.step()
	n := c.maskCmpUncached(v, m, k)
	c.cmpMemo[key] = n
	return n
}

func (c *Ctx) maskCmpUncached(v *sym.Expr, m, k sym.BV) *Node {
	switch {
	case v.Op == sym.OpConst:
		return c.st.Term(sym.Bool(v.Val.And(m) == k))
	case v.Op == sym.OpVar && v.Class == sym.DataVar:
		id, ok := c.st.lookup(v.Name, v.Width)
		if !ok {
			panic(bailErr{})
		}
		return c.st.maskNode(id, v.Width, m, k)
	case v.Op == sym.OpIte:
		return c.ite(c.rec(v.A), c.maskCmp(v.B, m, k), c.maskCmp(v.C, m, k))
	case v.Op == sym.OpAnd && (v.A.Op == sym.OpConst || v.B.Op == sym.OpConst):
		w, m2 := v.A, v.B
		if w.Op == sym.OpConst {
			w, m2 = m2, w
		}
		return c.maskCmp(w, m.And(m2.Val), k)
	}
	return c.apply2(sym.OpEq,
		c.apply2(sym.OpAnd, c.rec(v), c.st.Term(m), 0, 0),
		c.st.Term(k), 0, 0)
}

// not negates a width-1 diagram.
func (c *Ctx) not(n *Node) *Node { return c.apply1(sym.OpNot, n, 0, 0) }

// apply1 lifts a unary bitvector operator over a diagram's terminals.
func (c *Ctx) apply1(op sym.Op, a *Node, p1, p2 uint16) *Node {
	key := applyKey{op: op, a: a, p1: p1, p2: p2}
	if n, ok := c.apply[key]; ok {
		return n
	}
	c.step()
	var n *Node
	if a.IsTerminal() {
		switch op {
		case sym.OpNot:
			n = c.st.Term(a.val.Not())
		case sym.OpExtract:
			n = c.st.Term(a.val.Extract(p1, p2))
		default:
				panic(bailErr{})
		}
	} else {
		n = c.st.mk(a.p, c.apply1(op, a.t, p1, p2), c.apply1(op, a.f, p1, p2))
	}
	c.apply[key] = n
	return n
}

// apply2 lifts a binary bitvector operator pointwise over two
// diagrams, Shannon-expanding on the least root predicate. Terminal
// arithmetic mirrors the solver's evaluator exactly (including the
// shift-out-of-range guards), which is what makes diagram verdicts
// interchangeable with solver verdicts.
func (c *Ctx) apply2(op sym.Op, a, b *Node, p1, p2 uint16) *Node {
	// Boolean short-circuits: absorbing/identity terminals prune the
	// expansion without touching the memo (IsTrue/IsFalse only match
	// width-1 terminals, so wide operands pass through).
	if op == sym.OpAnd {
		if a.IsFalse() || b.IsTrue() {
			return a
		}
		if b.IsFalse() || a.IsTrue() {
			return b
		}
	}
	if op == sym.OpOr {
		if a.IsTrue() || b.IsFalse() {
			return a
		}
		if b.IsTrue() || a.IsFalse() {
			return b
		}
	}
	key := applyKey{op: op, a: a, b: b, p1: p1, p2: p2}
	if n, ok := c.apply[key]; ok {
		return n
	}
	c.step()
	var n *Node
	if a.IsTerminal() && b.IsTerminal() {
		n = c.st.Term(termOp(op, a.val, b.val))
	} else {
		p, _ := minPred(a, b)
		at, af := cofactor(a, p)
		bt, bf := cofactor(b, p)
		n = c.st.mk(p, c.apply2(op, at, bt, p1, p2), c.apply2(op, af, bf, p1, p2))
	}
	c.apply[key] = n
	return n
}

// ite Shannon-expands if-then-else over three diagrams; the condition
// is width-1.
func (c *Ctx) ite(cond, t, f *Node) *Node {
	if cond.IsTrue() {
		return t
	}
	if cond.IsFalse() {
		return f
	}
	if t == f {
		return t
	}
	key := applyKey{op: sym.OpIte, a: cond, b: t, c: f}
	if n, ok := c.apply[key]; ok {
		return n
	}
	c.step()
	p, _ := minPred(cond, t, f)
	ct, cf := cofactor(cond, p)
	tt, tf := cofactor(t, p)
	ft, ff := cofactor(f, p)
	n := c.st.mk(p, c.ite(ct, tt, ft), c.ite(cf, tf, ff))
	c.apply[key] = n
	return n
}

// termOp evaluates one binary operator on terminal values with the
// exact semantics of the solver's evaluator (sym/scratch.go).
func termOp(op sym.Op, a, b sym.BV) sym.BV {
	switch op {
	case sym.OpAnd:
		return a.And(b)
	case sym.OpOr:
		return a.Or(b)
	case sym.OpXor:
		return a.Xor(b)
	case sym.OpAdd:
		return a.Add(b)
	case sym.OpSub:
		return a.Sub(b)
	case sym.OpShl:
		if b.Hi != 0 || b.Lo >= uint64(a.W) {
			return sym.BV{W: a.W}
		}
		return a.Shl(uint(b.Lo))
	case sym.OpLshr:
		if b.Hi != 0 || b.Lo >= uint64(a.W) {
			return sym.BV{W: a.W}
		}
		return a.Lshr(uint(b.Lo))
	case sym.OpConcat:
		return a.Concat(b)
	case sym.OpEq:
		return sym.Bool(a.Eq(b))
	case sym.OpUlt:
		return sym.Bool(a.Ult(b))
	default:
		panic(bailErr{})
	}
}

// Format renders a diagram as a stable, human-readable text form for
// golden tests and debugging: one line per node in DFS order, shared
// nodes printed once and referenced by their DFS number.
func (s *Store) Format(n *Node) string {
	atoms := s.Atoms()
	var sb strings.Builder
	ids := map[*Node]int{}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if id, ok := ids[n]; ok {
			return -id // reference
		}
		if n.IsTerminal() {
			id := len(ids) + 1
			ids[n] = id
			fmt.Fprintf(&sb, "n%d: [%s]\n", id, n.val)
			return id
		}
		t := walk(n.t)
		f := walk(n.f)
		id := len(ids) + 1
		ids[n] = id
		fmt.Fprintf(&sb, "n%d: %s -> t:n%d f:n%d\n", id, formatPred(atoms, n.p), abs(t), abs(f))
		return id
	}
	root := walk(n)
	fmt.Fprintf(&sb, "root: n%d\n", abs(root))
	return sb.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// formatPred renders one predicate with the paper's @var@ notation.
func formatPred(atoms []Atom, p pred) string {
	name := fmt.Sprintf("atom%d", p.atom)
	if int(p.atom) < len(atoms) {
		name = atoms[p.atom].Name
	}
	switch p.kind {
	case PredBool:
		return fmt.Sprintf("@%s@", name)
	case PredEq:
		return fmt.Sprintf("@%s@ == %s", name, p.c)
	case PredLt:
		return fmt.Sprintf("@%s@ < %s", name, p.c)
	default:
		return fmt.Sprintf("(@%s@ & %s) == %s", name, p.m, p.c)
	}
}

// SortAtomsByCount is the order-derivation helper: names sorted by
// descending count (taint frequency — how many program points test the
// atom), ties by name, so the order is deterministic per program.
func SortAtomsByCount(counts map[string]int) []string {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
