package dd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sym"
)

// harness bundles one Store, one Ctx and the sym builder the test
// expressions come from, with the atoms the tests use pre-registered in
// a fixed order (the variable order).
type harness struct {
	b  *sym.Builder
	st *Store
	cx *Ctx
	// vars maps atom name to the hash-consed variable expression.
	vars map[string]*sym.Expr
}

func newHarness(t *testing.T, atoms ...Atom) *harness {
	t.Helper()
	h := &harness{b: sym.NewBuilder(), st: NewStore(), vars: map[string]*sym.Expr{}}
	for _, a := range atoms {
		h.st.Register(a.Name, a.Width)
		h.vars[a.Name] = h.b.Data(a.Name, a.Width)
	}
	h.cx = NewCtx(h.st)
	return h
}

func (h *harness) compile(t *testing.T, e *sym.Expr) *Node {
	t.Helper()
	n, ok := h.cx.Compile(e)
	if !ok {
		t.Fatalf("Compile(%s) bailed out of the diagram fragment", e)
	}
	return n
}

// TestGoldenCanonicalForm pins the canonical text form of a hand-built
// condition: predicate order follows atom registration order (dst
// before port regardless of expression shape), identical branches are
// reduced away, and the shared false terminal prints once.
func TestGoldenCanonicalForm(t *testing.T) {
	h := newHarness(t, Atom{"dst", 8}, Atom{"port", 8})
	dst, port := h.vars["dst"], h.vars["port"]
	// port first in the expression; dst must still root the diagram.
	e := h.b.And(
		h.b.Eq(port, h.b.ConstUint(8, 5)),
		h.b.Eq(dst, h.b.ConstUint(8, 3)),
	)
	got := h.st.Format(h.compile(t, e))
	want := strings.Join([]string{
		"n1: [1w0x1]",
		"n2: [1w0x0]",
		"n3: @port@ == 8w0x5 -> t:n1 f:n2",
		"n4: @dst@ == 8w0x3 -> t:n3 f:n2",
		"root: n4",
		"",
	}, "\n")
	if got != want {
		t.Errorf("canonical form drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenMultiTerminal pins the MTBDD form constancy queries walk: an
// ite with wide terminals.
func TestGoldenMultiTerminal(t *testing.T) {
	h := newHarness(t, Atom{"sel", 1})
	e := h.b.Ite(h.vars["sel"], h.b.ConstUint(16, 0x900), h.b.ConstUint(16, 0x700))
	got := h.st.Format(h.compile(t, e))
	want := strings.Join([]string{
		"n1: [16w0x900]",
		"n2: [16w0x700]",
		"n3: @sel@ -> t:n1 f:n2",
		"root: n3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("multi-terminal form drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPointerEqualityEquivalentForms checks that structurally different
// but semantically equal conditions land on the same hash-consed node —
// the sharing property the engine's cross-point reuse rides on.
func TestPointerEqualityEquivalentForms(t *testing.T) {
	h := newHarness(t, Atom{"x", 8}, Atom{"a", 1}, Atom{"b", 1})
	x, a, b := h.vars["x"], h.vars["a"], h.vars["b"]
	c3 := h.b.ConstUint(8, 3)

	pairs := []struct {
		name string
		l, r *sym.Expr
	}{
		{"not-eq vs ite", h.b.Not(h.b.Eq(x, c3)), h.b.Ite(h.b.Eq(x, c3), h.b.False(), h.b.True())},
		{"lt-one vs eq-zero", h.b.Ult(x, h.b.ConstUint(8, 1)), h.b.Eq(x, h.b.ConstUint(8, 0))},
		{"de morgan", h.b.Not(h.b.And(a, b)), h.b.Or(h.b.Not(a), h.b.Not(b))},
		{"flipped lt", h.b.Ult(h.b.ConstUint(8, 3), x), h.b.Not(h.b.Ult(x, h.b.ConstUint(8, 4)))},
		{"xor vs ite", h.b.Xor(a, b), h.b.Ite(a, h.b.Not(b), b)},
	}
	for _, p := range pairs {
		ln, rn := h.compile(t, p.l), h.compile(t, p.r)
		if ln != rn {
			t.Errorf("%s: equivalent forms compiled to distinct nodes:\n%s\nvs\n%s",
				p.name, h.st.Format(ln), h.st.Format(rn))
		}
	}
}

// TestCompileIdempotent checks that recompilation is stable: the same
// expression through a fresh Ctx (cold memos) over the same Store
// returns the identical pointer, and the canonical text form does not
// drift between compilations.
func TestCompileIdempotent(t *testing.T) {
	h := newHarness(t, Atom{"x", 4}, Atom{"y", 4})
	x, y := h.vars["x"], h.vars["y"]
	e := h.b.Or(
		h.b.And(h.b.Eq(x, h.b.ConstUint(4, 2)), h.b.Ult(y, h.b.ConstUint(4, 7))),
		h.b.Eq(y, h.b.ConstUint(4, 9)),
	)
	first := h.compile(t, e)
	form := h.st.Format(first)
	for i := 0; i < 3; i++ {
		h.cx = NewCtx(h.st) // cold memo, same store
		again := h.compile(t, e)
		if again != first {
			t.Fatalf("recompile %d returned a different node", i)
		}
		if got := h.st.Format(again); got != form {
			t.Fatalf("canonical form drifted on recompile %d:\n%s\nwas:\n%s", i, got, form)
		}
	}
}

// TestVariableOrderStability checks the two order contracts: Register
// is append-only and idempotent (re-registration keeps the level), and
// SortAtomsByCount derives a deterministic order — descending count,
// ties broken by name.
func TestVariableOrderStability(t *testing.T) {
	st := NewStore()
	if id := st.Register("dst", 32); id != 0 {
		t.Fatalf("first atom level = %d, want 0", id)
	}
	if id := st.Register("port", 9); id != 1 {
		t.Fatalf("second atom level = %d, want 1", id)
	}
	if id := st.Register("dst", 32); id != 0 {
		t.Fatalf("re-registration moved dst to level %d", id)
	}
	atoms := st.Atoms()
	if len(atoms) != 2 || atoms[0].Name != "dst" || atoms[1].Name != "port" {
		t.Fatalf("atom table = %v", atoms)
	}

	counts := map[string]int{"c": 2, "a": 2, "b": 7, "z": 1}
	want := []string{"b", "a", "c", "z"}
	for i := 0; i < 10; i++ {
		got := SortAtomsByCount(counts)
		if len(got) != len(want) {
			t.Fatalf("SortAtomsByCount = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("SortAtomsByCount = %v, want %v", got, want)
			}
		}
	}
}

// checkInvariants walks every node reachable from n and verifies the
// two structural canonicity invariants: ordered (predicates strictly
// increase along every path) and reduced (no node with identical
// branches).
func checkInvariants(t *testing.T, n *Node) {
	t.Helper()
	seen := map[*Node]bool{}
	var walk func(n *Node, floor pred, bounded bool)
	walk = func(n *Node, floor pred, bounded bool) {
		if n.IsTerminal() {
			return
		}
		if bounded && !floor.less(n.p) {
			t.Fatalf("order violation: %v not above %v", n.p, floor)
		}
		if n.t == n.f {
			t.Fatalf("unreduced node: identical branches")
		}
		if seen[n] {
			// Shared node: the per-path floor check above already ran for
			// this path; the subtree was validated on first visit.
			return
		}
		seen[n] = true
		walk(n.t, n.p, true)
		walk(n.f, n.p, true)
	}
	walk(n, pred{}, false)
}

// genExpr builds a random expression over the harness variables,
// staying inside the diagram fragment: wide variables appear only in
// predicate position (var ⋈ const), width-1 atoms may appear bare, and
// wide values arise from constants combined under ite/arithmetic.
// Boolean-valued when wantBool.
func genExpr(h *harness, r *rand.Rand, depth int, wantBool bool) *sym.Expr {
	b := h.b
	x, y, s := h.vars["x"], h.vars["y"], h.vars["s"]
	if wantBool {
		if depth == 0 {
			switch r.Intn(6) {
			case 0:
				return s
			case 1:
				return b.Eq(x, b.ConstUint(3, uint64(r.Intn(8))))
			case 2:
				return b.Ult(y, b.ConstUint(3, uint64(r.Intn(8))))
			case 3:
				return b.Ult(b.ConstUint(3, uint64(r.Intn(8))), x)
			case 4:
				// Ternary match: (atom & M) == C, the masked fragment.
				return b.Eq(b.And(x, b.ConstUint(3, uint64(r.Intn(8)))), b.ConstUint(3, uint64(r.Intn(8))))
			default:
				// Guarded-select match: the protocol-dispatch shape the
				// compare pushdown splits into per-branch predicates.
				return b.Eq(b.Ite(s, y, b.ConstUint(3, 0)), b.ConstUint(3, uint64(r.Intn(8))))
			}
		}
		switch r.Intn(6) {
		case 0:
			return b.And(genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, true))
		case 1:
			return b.Or(genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, true))
		case 2:
			return b.Not(genExpr(h, r, depth-1, true))
		case 3:
			return b.Xor(genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, true))
		case 4:
			return b.Ite(genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, true))
		default:
			return b.Eq(genExpr(h, r, depth-1, false), genExpr(h, r, depth-1, false))
		}
	}
	if depth == 0 {
		return b.ConstUint(3, uint64(r.Intn(8)))
	}
	switch r.Intn(4) {
	case 0:
		return b.Add(genExpr(h, r, depth-1, false), genExpr(h, r, depth-1, false))
	case 1:
		return b.Xor(genExpr(h, r, depth-1, false), genExpr(h, r, depth-1, false))
	case 2:
		return b.Ite(genExpr(h, r, depth-1, true), genExpr(h, r, depth-1, false), genExpr(h, r, depth-1, false))
	default:
		return b.Sub(genExpr(h, r, depth-1, false), genExpr(h, r, depth-1, false))
	}
}

// assignments enumerates every total assignment over x:3, y:3, s:1.
func (h *harness) assignments() []sym.Env {
	var out []sym.Env
	for xv := uint64(0); xv < 8; xv++ {
		for yv := uint64(0); yv < 8; yv++ {
			for sv := uint64(0); sv < 2; sv++ {
				out = append(out, sym.Env{
					h.vars["x"]: sym.NewBV(3, xv),
					h.vars["y"]: sym.NewBV(3, yv),
					h.vars["s"]: sym.NewBV(1, sv),
				})
			}
		}
	}
	return out
}

// getter adapts a sym.Env to EvalNode's atom-indexed lookup.
func (h *harness) getter(env sym.Env) func(int32) (sym.BV, bool) {
	atoms := h.st.Atoms()
	return func(atom int32) (sym.BV, bool) {
		v, ok := env[h.vars[atoms[atom].Name]]
		return v, ok
	}
}

// TestPropertySemantics is the ground-truth property suite: for a fleet
// of random expressions, the compiled diagram must agree with the sym
// evaluator on every total assignment and satisfy the structural
// canonicity invariants. Across the fleet, pointer equality must imply
// semantic equality (one node, one function); the converse holds only
// up to atom correlation (x==3 and x==5 are structurally independent
// predicates), so for semantically equal diagrams on distinct pointers
// the feasibility walks — which do see correlation — must agree.
func TestPropertySemantics(t *testing.T) {
	h := newHarness(t, Atom{"x", 3}, Atom{"y", 3}, Atom{"s", 1})
	r := rand.New(rand.NewSource(0xdd01))
	envs := h.assignments()

	type compiled struct {
		e   *sym.Expr
		n   *Node
		sig string // concatenated values over all assignments
	}
	var fleet []compiled
	for i := 0; i < 120; i++ {
		e := genExpr(h, r, 1+r.Intn(3), i%2 == 0)
		n, ok := h.cx.Compile(e)
		if !ok {
			continue
		}
		checkInvariants(t, n)
		var sig strings.Builder
		for _, env := range envs {
			want, err := sym.Eval(e, env)
			if err != nil {
				t.Fatalf("sym.Eval(%s): %v", e, err)
			}
			got, ok := EvalNode(n, h.getter(env))
			if !ok {
				t.Fatalf("EvalNode hit an unassigned atom on a total assignment (expr %s)", e)
			}
			if got != want {
				t.Fatalf("diagram disagrees with evaluator on %s: got %s want %s", e, got, want)
			}
			sig.WriteString(want.String())
			sig.WriteByte(';')
		}
		fleet = append(fleet, compiled{e: e, n: n, sig: sig.String()})
	}
	if len(fleet) < 60 {
		t.Fatalf("only %d/120 expressions compiled; generator drifted out of the fragment", len(fleet))
	}
	// Pointer equality ⇒ semantic equality (hash-consing is sound).
	byNode := map[*Node]string{}
	for _, c := range fleet {
		if sig, ok := byNode[c.n]; ok && sig != c.sig {
			t.Fatalf("one node carries two semantics — hash-consing broken")
		}
		byNode[c.n] = c.sig
	}
	// Semantically equal diagrams on distinct pointers: the correlation
	// gap. The feasibility-pruned deciders must still agree on them.
	atoms := h.st.Atoms()
	decide := func(n *Node) (sym.BV, ConstOutcome) {
		v, _, _, out := ConstCheck(n, atoms, 1<<16)
		return v, out
	}
	bySig := map[string]compiled{}
	for _, c := range fleet {
		prev, ok := bySig[c.sig]
		bySig[c.sig] = c
		if !ok || prev.n == c.n {
			continue
		}
		av, aout := decide(prev.n)
		bv, bout := decide(c.n)
		if aout != bout || (aout == ConstUniform && av != bv) {
			t.Fatalf("semantically equal diagrams decided differently (%v/%s vs %v/%s):\n%s\nvs\n%s",
				aout, av, bout, bv, h.st.Format(prev.n), h.st.Format(c.n))
		}
	}
}

// TestPropertySatConst cross-checks the feasibility-pruned walks
// against brute force: Sat must agree with exhaustive satisfiability
// (and return a verified witness), ConstCheck with exhaustive constancy
// (and return distinguishing assignments when it reports varies).
func TestPropertySatConst(t *testing.T) {
	h := newHarness(t, Atom{"x", 3}, Atom{"y", 3}, Atom{"s", 1})
	r := rand.New(rand.NewSource(0xdd02))
	envs := h.assignments()
	atoms := h.st.Atoms()
	const budget = 1 << 16

	// total fills a walk's partial witness with zeros for untouched
	// atoms (an untouched atom is unconstrained, so zero realizes it).
	total := func(partial map[int32]sym.BV) func(int32) (sym.BV, bool) {
		return func(atom int32) (sym.BV, bool) {
			if v, ok := partial[atom]; ok {
				return v, true
			}
			return sym.BV{W: atoms[atom].Width}, true
		}
	}

	checked := 0
	for i := 0; i < 150; i++ {
		wantBool := i%3 != 0 // mix in wide diagrams for ConstCheck
		e := genExpr(h, r, 1+r.Intn(3), wantBool)
		n, ok := h.cx.Compile(e)
		if !ok {
			continue
		}
		checked++

		// Brute force over every total assignment.
		var vals []sym.BV
		satisfiable := false
		for _, env := range envs {
			v, err := sym.Eval(e, env)
			if err != nil {
				t.Fatalf("sym.Eval: %v", err)
			}
			vals = append(vals, v)
			if v.W == 1 && v.IsTrue() {
				satisfiable = true
			}
		}
		constant := true
		for _, v := range vals[1:] {
			if v != vals[0] {
				constant = false
				break
			}
		}

		if wantBool {
			witness, out := Sat(n, atoms, budget)
			switch out {
			case SatOver:
				t.Fatalf("Sat blew a %d budget on a %d-node toy diagram", budget, h.st.NumNodes())
			case SatYes:
				if !satisfiable {
					t.Fatalf("Sat said yes on an unsatisfiable condition %s", e)
				}
				if v, ok := EvalNode(n, total(witness)); !ok || !v.IsTrue() {
					t.Fatalf("Sat witness does not satisfy the diagram (expr %s)", e)
				}
			case SatNo:
				if satisfiable {
					t.Fatalf("Sat said no on a satisfiable condition %s", e)
				}
			}
		}

		val, envA, envB, out := ConstCheck(n, atoms, budget)
		switch out {
		case ConstOver:
			t.Fatalf("ConstCheck blew a %d budget on a toy diagram", budget)
		case ConstUniform:
			if !constant {
				t.Fatalf("ConstCheck claimed uniform on a varying diagram %s", e)
			}
			if val != vals[0] {
				t.Fatalf("ConstCheck value %s, brute force %s", val, vals[0])
			}
			if got, ok := EvalNode(n, total(envA)); !ok || got != val {
				t.Fatalf("ConstCheck witness does not realize the constant")
			}
		case ConstVaries:
			if constant {
				t.Fatalf("ConstCheck claimed varies on a constant diagram %s", e)
			}
			a, okA := EvalNode(n, total(envA))
			b, okB := EvalNode(n, total(envB))
			if !okA || !okB || a == b {
				t.Fatalf("ConstCheck distinguishing assignments agree (%s vs %s)", a, b)
			}
		}
	}
	if checked < 80 {
		t.Fatalf("only %d/150 expressions compiled", checked)
	}
}

// TestPredNodeNormalization pins the leaf normalizations that make
// equivalent predicates land on one pointer (white box: drives
// predNode directly).
func TestPredNodeNormalization(t *testing.T) {
	st := NewStore()
	w1 := st.Register("flag", 1)
	w8 := st.Register("x", 8)

	// Width-1 equality folds to the bare boolean test.
	eq1 := st.predNode(w1, 1, PredEq, sym.Bool(true))
	boolT := st.predNode(w1, 1, PredBool, sym.Bool(true))
	if eq1 != boolT {
		t.Error("flag == 1 did not normalize to the boolean test")
	}
	eq0 := st.predNode(w1, 1, PredEq, sym.Bool(false))
	if eq0.IsTerminal() || eq0.t != st.False() || eq0.f != st.True() {
		t.Error("flag == 0 did not normalize to the negated boolean test")
	}
	// x < 0 is unsatisfiable; x < 1 is x == 0.
	if n := st.predNode(w8, 8, PredLt, sym.NewBV(8, 0)); n != st.False() {
		t.Error("x < 0 did not fold to false")
	}
	lt1 := st.predNode(w8, 8, PredLt, sym.NewBV(8, 1))
	eqz := st.predNode(w8, 8, PredEq, sym.NewBV(8, 0))
	if lt1 != eqz {
		t.Error("x < 1 did not normalize to x == 0")
	}
	// A 1-bit atom is always below a bound >= 2 (the bound arrives wider
	// than the atom only on this defensive path).
	if n := st.predNode(w1, 1, PredLt, sym.NewBV(8, 2)); n != st.True() {
		t.Error("1-bit atom < 2 did not fold to true")
	}
}

// TestPathStepsExplainsDescent checks the introspection walk: the
// recorded steps follow the assignment's actual branches and end on the
// terminal EvalNode reaches.
func TestPathStepsExplainsDescent(t *testing.T) {
	h := newHarness(t, Atom{"dst", 8}, Atom{"port", 8})
	dst, port := h.vars["dst"], h.vars["port"]
	e := h.b.And(
		h.b.Eq(dst, h.b.ConstUint(8, 3)),
		h.b.Ult(port, h.b.ConstUint(8, 10)),
	)
	n := h.compile(t, e)
	env := sym.Env{dst: sym.NewBV(8, 3), port: sym.NewBV(8, 4)}
	get := func(atom int32) sym.BV {
		v, _ := h.getter(env)(atom)
		return v
	}
	steps, term := PathSteps(h.st.Atoms(), n, get)
	if !term.IsTrue() {
		t.Fatalf("descent ended on %s, want true", term.Value())
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %v, want 2 predicates", steps)
	}
	if steps[0].Pred != "@dst@ == 8w0x3" || !steps[0].Taken {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[1].Pred != "@port@ < 8w0xa" || !steps[1].Taken {
		t.Errorf("step 1 = %+v", steps[1])
	}
	// Flip one field: the first untaken branch short-circuits to false.
	env[dst] = sym.NewBV(8, 9)
	steps, term = PathSteps(h.st.Atoms(), n, get)
	if !term.IsFalse() || len(steps) != 1 || steps[0].Taken {
		t.Errorf("miss descent: steps=%v term=%v", steps, term.Value())
	}
}

// TestCompileBails pins the fragment boundary: conditions the diagram
// cannot host must report ok=false (and the engine falls back to the
// solver) rather than mis-compiling.
func TestCompileBails(t *testing.T) {
	h := newHarness(t, Atom{"x", 8})
	// An unregistered variable is out of the fragment.
	free := h.b.Data("unregistered", 8)
	if _, ok := h.cx.Compile(h.b.Eq(free, h.b.ConstUint(8, 1))); ok {
		t.Error("compile of an unregistered variable did not bail")
	}
	// A control variable never enters the diagram.
	ctrl := h.b.Ctrl("entry0", 8)
	if _, ok := h.cx.Compile(h.b.Eq(ctrl, h.b.ConstUint(8, 1))); ok {
		t.Error("compile of a control variable did not bail")
	}
	// A width mismatch against the registered atom bails too.
	narrow := h.b.Data("x", 4)
	if _, ok := h.cx.Compile(h.b.Eq(narrow, h.b.ConstUint(4, 1))); ok {
		t.Error("compile of a width-mismatched atom did not bail")
	}
	// After bails, the fragment still works (bails must not poison the
	// memo for good expressions).
	x := h.vars["x"]
	if n, ok := h.cx.Compile(h.b.Eq(x, h.b.ConstUint(8, 1))); !ok || n.IsTerminal() {
		t.Error("fragment compile broken after bails")
	}
}

// TestStoreSharedAcrossCtxs checks the cross-worker sharing contract:
// two Ctxs over one Store intern structurally equal conditions to the
// same pointer.
func TestStoreSharedAcrossCtxs(t *testing.T) {
	h := newHarness(t, Atom{"x", 8})
	x := h.vars["x"]
	e := h.b.Or(h.b.Eq(x, h.b.ConstUint(8, 1)), h.b.Eq(x, h.b.ConstUint(8, 2)))
	c1, c2 := NewCtx(h.st), NewCtx(h.st)
	n1, ok1 := c1.Compile(e)
	n2, ok2 := c2.Compile(e)
	if !ok1 || !ok2 || n1 != n2 {
		t.Fatal("two contexts over one store interned distinct nodes")
	}
}

// TestGoldenTernaryMatch pins the canonical form of the ternary-match
// predicate: a masked equality over one atom compiles to a single
// (atom & M) == C node, with the constant normalized inside the mask.
func TestGoldenTernaryMatch(t *testing.T) {
	h := newHarness(t, Atom{"dst", 8})
	dst := h.vars["dst"]
	e := h.b.Eq(h.b.And(dst, h.b.ConstUint(8, 0xf0)), h.b.ConstUint(8, 0x30))
	got := h.st.Format(h.compile(t, e))
	want := strings.Join([]string{
		"n1: [1w0x1]",
		"n2: [1w0x0]",
		"n3: (@dst@ & 8w0xf0) == 8w0x30 -> t:n1 f:n2",
		"root: n3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("ternary-match form drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMaskEqNormalization pins the masked-equality folds: constant
// bits outside the mask are unsatisfiable, a full mask is exact
// equality, a zero mask constrains nothing.
func TestMaskEqNormalization(t *testing.T) {
	h := newHarness(t, Atom{"x", 8})
	x := h.vars["x"]
	mk := func(m, c uint64) *Node {
		return h.compile(t, h.b.Eq(h.b.And(x, h.b.ConstUint(8, m)), h.b.ConstUint(8, c)))
	}
	if n := mk(0xf0, 0x03); n != h.st.False() {
		t.Errorf("constant outside mask did not fold to false:\n%s", h.st.Format(n))
	}
	if mk(0xff, 0x2a) != h.compile(t, h.b.Eq(x, h.b.ConstUint(8, 0x2a))) {
		t.Error("full mask did not normalize to exact equality")
	}
	// Builder-level simplification can fold the zero-mask expression
	// before the diagram sees it; pin the store-level fold directly.
	st := NewStore()
	a := st.Register("x", 8)
	if st.maskNode(a, 8, sym.NewBV(8, 0), sym.NewBV(8, 0)) != st.True() {
		t.Error("zero mask did not fold to true")
	}
}

// TestPointerEqualityMaskForms extends the canonicity proof to the
// masked fragment: equivalent ternary-match and guarded-select
// spellings must intern to the identical node.
func TestPointerEqualityMaskForms(t *testing.T) {
	h := newHarness(t, Atom{"x", 8}, Atom{"s", 1})
	x, s := h.vars["x"], h.vars["s"]
	c := func(v uint64) *sym.Expr { return h.b.ConstUint(8, v) }

	pairs := []struct {
		name string
		l, r *sym.Expr
	}{
		{
			"nested masks fold",
			h.b.Eq(h.b.And(h.b.And(x, c(0xf0)), c(0xcc)), c(0x40)),
			h.b.Eq(h.b.And(x, c(0xc0)), c(0x40)),
		},
		{
			"select pushdown",
			h.b.Eq(h.b.Ite(s, x, c(0)), c(3)),
			h.b.And(s, h.b.Eq(x, c(3))),
		},
		{
			"masked select pushdown",
			h.b.Eq(h.b.And(h.b.Ite(s, x, c(0)), c(0x0f)), c(0x05)),
			h.b.And(s, h.b.Eq(h.b.And(x, c(0x0f)), c(0x05))),
		},
	}
	for _, p := range pairs {
		ln, rn := h.compile(t, p.l), h.compile(t, p.r)
		if ln != rn {
			t.Errorf("%s: equivalent forms compiled to distinct nodes:\n%s\nvs\n%s",
				p.name, h.st.Format(ln), h.st.Format(rn))
		}
	}
}
