// Package flayerr holds the typed sentinel errors shared across the
// goflay stack. They live in a leaf package (stdlib imports only) so
// every layer — controlplane validation, the core engine, the wire
// protocol, the HTTP server and the client — can wrap the same
// sentinels without import cycles; the goflay facade re-exports them as
// the public API surface.
//
// Callers classify failures with errors.Is instead of string matching:
//
//	if errors.Is(err, flayerr.ErrUnknownTable) { ... }
//
// The wire protocol carries the classification as a machine-readable
// error code (wire.CodeOf / wire.SentinelOf), so the same errors.Is
// checks work on both sides of the HTTP boundary.
package flayerr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrUnknownTable marks an update (or compile) against a table the
	// program does not declare.
	ErrUnknownTable = errors.New("unknown table")

	// ErrClosed marks an operation against an engine or session that has
	// been shut down.
	ErrClosed = errors.New("closed")

	// ErrDeadlineExceeded marks work abandoned because its latency budget
	// ran out. It wraps context.DeadlineExceeded, so both
	// errors.Is(err, flayerr.ErrDeadlineExceeded) and
	// errors.Is(err, context.DeadlineExceeded) hold.
	ErrDeadlineExceeded = fmt.Errorf("deadline exceeded: %w", context.DeadlineExceeded)

	// ErrSnapshotCorrupt marks snapshot bytes that failed validation:
	// truncation, checksum mismatch, or fields inconsistent with the
	// embedded program.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")

	// ErrBackpressure marks a write shed because a bounded queue was at
	// capacity (HTTP 429 on the wire).
	ErrBackpressure = errors.New("backpressure")

	// ErrExecDisabled marks a packet-execution request against an engine
	// or session that was opened without the data-plane executor.
	ErrExecDisabled = errors.New("exec disabled")

	// ErrBadPacket marks a malformed packet in a wire exec request:
	// bad hex, an oversized frame, or a missing body.
	ErrBadPacket = errors.New("bad packet")

	// ErrStandby marks a write against a standby replica: its sessions
	// mutate only through the replication channel until promotion
	// (HTTP 503 on the wire; clients re-route or retry).
	ErrStandby = errors.New("standby")
)
