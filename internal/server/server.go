// Package server implements flayd's control plane: a session registry
// hosting one goflay.Pipeline per named session behind a
// P4Runtime-flavored HTTP/JSON API (internal/wire). The serving shape
// follows runtime controllers like RBFRT and Morpheus — a long-lived
// daemon on the control-plane update path — built entirely on net/http:
//
//	POST   /v1/sessions                  create/load a session
//	GET    /v1/sessions                  list sessions
//	GET    /v1/sessions/{name}           session info
//	DELETE /v1/sessions/{name}           close a session (and its snapshot)
//	POST   /v1/sessions/{name}/updates   apply updates (single or batched)
//	POST   /v1/sessions/{name}/exec      execute packets (sessions created with exec)
//	GET    /v1/sessions/{name}/stats     engine statistics
//	GET    /v1/sessions/{name}/explain   decision-diagram point explanations
//	GET    /v1/sessions/{name}/audit     decision audit records (?since=seq)
//	POST   /v1/sessions/{name}/snapshot  checkpoint warm state
//	GET    /v1/sessions/{name}/source    specialized/original P4 source
//	GET    /metrics                      Prometheus text exposition
//	GET    /v1/metrics                   metrics snapshot as JSON
//	GET    /healthz                      liveness + drain state
//
// Writes are funneled through a per-session dispatcher with a bounded
// queue (full queue = HTTP 429 backpressure) and an optional
// batch-coalescing window that turns concurrent requests into one
// ApplyBatch. Shutdown drains every queue, then snapshots every dirty
// session into the snapshot directory; New warm-restarts from that
// directory, so a restarted daemon resumes its sessions with audit
// sequence continuity.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	goflay "repro"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config tunes the daemon. The zero value serves with sane defaults
// and no persistence.
type Config struct {
	// SnapshotDir, when non-empty, enables warm restarts: sessions are
	// checkpointed there on shutdown (and on demand) and restored from
	// there on boot. The directory is created if missing.
	SnapshotDir string
	// CoalesceWindow is how long the dispatcher keeps collecting
	// concurrent write requests after the first one arrives before
	// funneling them into one ApplyBatch. Zero disables coalescing.
	CoalesceWindow time.Duration
	// MaxBatch bounds the updates folded into one coalesced ApplyBatch
	// (default 512).
	MaxBatch int
	// QueueDepth bounds each session's in-flight write requests; a full
	// queue answers 429 (default 64).
	QueueDepth int
	// PressureDeadline, when positive, is the latency budget the server
	// attaches to write requests that carry none while a session's
	// queue is at least half full: the engine degrades table precision
	// to meet it, shedding load before the queue fills and 429s start.
	// Zero disables pressure shedding.
	PressureDeadline time.Duration
	// MaxBody caps request bodies (default wire.DefaultMaxBody).
	MaxBody int64
	// AuditLimit bounds each session's audit ring (default 4096;
	// negative keeps every record).
	AuditLimit int
	// Metrics is the shared registry all sessions and the HTTP layer
	// record into; one is created when nil.
	Metrics *obs.Registry
	// Logf receives operational log lines (default: drop them).
	Logf func(format string, args ...any)

	// Standby boots the server as a replication target: its sessions
	// mutate only through the /v1/replica/* channel (client writes and
	// creates answer 503 with code "standby", reads are served normally)
	// until Promote flips it live.
	Standby bool
	// ReplicateTo, when non-empty, is the base URL of a standby flayd:
	// every session is base-shipped there on create/restore, and every
	// applied write round is forwarded there before it is acknowledged,
	// so a killed shard loses no accepted write.
	ReplicateTo string
	// ReplicaClient overrides the HTTP client used for replication
	// (tests; default is a dedicated pooled client).
	ReplicaClient *http.Client
}

const (
	defaultMaxBatch   = 512
	defaultQueueDepth = 64
	defaultAuditLimit = 4096
)

// Server is the session registry plus its HTTP API. Create one with
// New, serve it (it implements http.Handler), and stop it with
// Shutdown.
type Server struct {
	cfg   Config
	met   *obs.Registry
	mux   *http.ServeMux
	start time.Time

	// standby is the replication role flag; Promote flips it false.
	standby atomic.Bool
	// ship forwards rounds and base snapshots to the standby (nil when
	// replication is not configured).
	ship *shipper

	mu       sync.RWMutex
	sessions map[string]*Session
	draining bool

	// binMu/binConns track live binary-protocol connections so Shutdown
	// can close them (their read loops would otherwise block forever).
	binMu    sync.Mutex
	binConns map[io.Closer]struct{}
}

// nameRE validates session names: path- and filename-safe, no leading
// punctuation (which also rules out "." and "..").
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// New builds a server and, when a snapshot directory is configured,
// warm-restarts every session checkpointed in it. A snapshot that
// fails to restore is logged and skipped (and counted on
// server.restore_failures) rather than blocking boot.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = wire.DefaultMaxBody
	}
	if cfg.AuditLimit == 0 {
		cfg.AuditLimit = defaultAuditLimit
	} else if cfg.AuditLimit < 0 {
		cfg.AuditLimit = 0 // obs.NewTrail: <=0 keeps everything
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		met:      cfg.Metrics,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		sessions: make(map[string]*Session),
		binConns: make(map[io.Closer]struct{}),
	}
	s.standby.Store(cfg.Standby)
	if cfg.ReplicateTo != "" {
		s.ship = newShipper(cfg.ReplicateTo, cfg.ReplicaClient, s.met, cfg.Logf)
	}
	s.routes()
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: snapshot dir: %w", err)
		}
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restoreAll warm-starts every *.snap session in the snapshot dir.
func (s *Server) restoreAll() error {
	entries, err := os.ReadDir(s.cfg.SnapshotDir)
	if err != nil {
		return fmt.Errorf("server: snapshot dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapSuffix) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), snapSuffix)
		if !nameRE.MatchString(name) {
			s.cfg.Logf("server: skipping snapshot with unusable name %q", e.Name())
			continue
		}
		data, err := os.ReadFile(snapPath(s.cfg.SnapshotDir, name))
		if err != nil {
			s.met.Counter("server.restore_failures").Inc()
			s.cfg.Logf("server: reading snapshot %s: %v", e.Name(), err)
			continue
		}
		trail := obs.NewTrail(s.cfg.AuditLimit)
		pipe, err := goflay.Restore(data, goflay.WithMetrics(s.met), goflay.WithAudit(trail))
		if err != nil {
			s.met.Counter("server.restore_failures").Inc()
			s.cfg.Logf("server: restoring snapshot %s: %v", e.Name(), err)
			continue
		}
		sess := s.newSession(name, "(restored)", pipe, trail, true)
		s.sessions[name] = sess
		s.met.Counter("server.sessions_restored").Inc()
		s.cfg.Logf("server: restored session %s (%d updates deep)", name, pipe.Statistics().Updates)
		if s.ship != nil {
			// Seed the standby; a failure here self-heals on the first
			// round ship (409 gap -> base catch-up).
			s.ship.shipBase(sess)
		}
	}
	s.met.Gauge("server.sessions").Set(int64(len(s.sessions)))
	return nil
}

// session looks up a live session.
func (s *Server) session(name string) (*Session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[name]
	return sess, ok
}

// addSession registers a new session; it fails while draining or when
// the name is taken.
func (s *Server) addSession(sess *Session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("server: draining")
	}
	if _, ok := s.sessions[sess.name]; ok {
		return fmt.Errorf("server: session %q exists", sess.name)
	}
	s.sessions[sess.name] = sess
	s.met.Gauge("server.sessions").Set(int64(len(s.sessions)))
	return nil
}

// removeSession unregisters and stops a session, deleting its snapshot
// file so it does not resurrect on the next boot.
func (s *Server) removeSession(name string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[name]
	if ok {
		delete(s.sessions, name)
		s.met.Gauge("server.sessions").Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.close()
	if s.cfg.SnapshotDir != "" {
		if err := os.Remove(snapPath(s.cfg.SnapshotDir, name)); err != nil && !os.IsNotExist(err) {
			s.cfg.Logf("server: removing snapshot for %s: %v", name, err)
		}
	}
	return true
}

// snapshotList returns the live sessions sorted by name.
func (s *Server) snapshotList() []*Session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Shutdown gracefully stops the server: new writes are refused, every
// session's queue is drained, and every dirty session is checkpointed
// to the snapshot directory. It returns the first snapshot error (after
// attempting all of them). The HTTP listener is the caller's to close —
// typically before calling Shutdown, so in-flight handlers finish
// first.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	// Unblock binary-protocol read loops; their in-flight writes were
	// already accepted into session queues and drain below.
	s.binMu.Lock()
	for c := range s.binConns {
		c.Close()
	}
	s.binConns = make(map[io.Closer]struct{})
	s.binMu.Unlock()

	var firstErr error
	for _, sess := range s.snapshotList() {
		sess.close() // drains accepted writes
		if s.cfg.SnapshotDir == "" || !sess.dirty() {
			continue
		}
		path, err := sess.persistSnapshot()
		if err != nil {
			s.cfg.Logf("server: %v", err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.cfg.Logf("server: snapshotted session %s -> %s", sess.name, path)
	}
	return firstErr
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.Counter("server.http_requests").Inc()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsText)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{name}/updates", s.handleUpdates)
	s.mux.HandleFunc("POST /v1/sessions/{name}/exec", s.handleExec)
	s.mux.HandleFunc("GET /v1/sessions/{name}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sessions/{name}/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/sessions/{name}/audit", s.handleAudit)
	s.mux.HandleFunc("POST /v1/sessions/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/sessions/{name}/source", s.handleSource)
	s.mux.HandleFunc("POST /v1/replica/sessions", s.handleReplicaSession)
	s.mux.HandleFunc("POST /v1/replica/sessions/{name}/rounds", s.handleReplicaRound)
	s.mux.HandleFunc("POST /v1/replica/promote", s.handleReplicaPromote)
}

// Standby reports whether the server is still a replication target.
func (s *Server) Standby() bool { return s.standby.Load() }

// Promote flips a standby live: client writes are accepted from here
// on, replica rounds are refused. Idempotent; returns the names of the
// sessions now serving.
func (s *Server) Promote() []string {
	if s.standby.CompareAndSwap(true, false) {
		s.met.Counter("server.promotions_to_active").Inc()
		s.cfg.Logf("server: promoted to active")
	}
	var names []string
	for _, sess := range s.snapshotList() {
		names = append(names, sess.name)
	}
	return names
}

// gateStandby refuses mutations while the server is a standby (503 with
// code "standby"; the front door re-routes).
func (s *Server) gateStandby(w http.ResponseWriter) bool {
	if s.standby.Load() {
		s.errorErr(w, http.StatusServiceUnavailable, fmt.Errorf("server: %w", flayerr.ErrStandby))
		return false
	}
	return true
}

func (s *Server) info(sess *Session) wire.SessionInfo {
	tables := sess.pipe.Tables()
	entries := make(map[string]int, len(tables))
	for _, tbl := range tables {
		entries[tbl] = sess.pipe.Entries(tbl)
	}
	return wire.SessionInfo{
		Name:       sess.name,
		Program:    sess.program,
		Tables:     tables,
		Entries:    entries,
		Stats:      wire.FromStats(sess.pipe.Statistics()),
		Restored:   sess.restored,
		Dirty:      sess.dirty(),
		AuditTotal: sess.audit.Total(),
		Epoch:      sess.pipe.Epoch(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n, draining := len(s.sessions), s.draining
	s.mu.RUnlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, wire.HealthResponse{
		Status:   status,
		Version:  wire.Version,
		Sessions: n,
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Standby:  s.standby.Load(),
	})
}

// sampleRuntime refreshes the process-health gauges scraped alongside
// the engine metrics. Pull-based: sampled when a scrape arrives, so an
// idle daemon burns no cycles and the soak harness sees values that are
// current as of each probe.
func (s *Server) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.met.Gauge("server.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	s.met.Gauge("server.heap_sys_bytes").Set(int64(ms.HeapSys))
	s.met.Gauge("server.heap_objects").Set(int64(ms.HeapObjects))
	s.met.Gauge("server.goroutines").Set(int64(runtime.NumGoroutine()))
}

func (s *Server) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	s.sampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.Snapshot().WriteProm(w, "flay"); err != nil {
		s.cfg.Logf("server: writing /metrics: %v", err)
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.sampleRuntime()
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !s.gateStandby(w) {
		return
	}
	var req wire.CreateSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !nameRE.MatchString(req.Name) {
		s.errorf(w, http.StatusBadRequest, "invalid session name %q (want %s)", req.Name, nameRE)
		return
	}
	quality, _ := wire.ParseQuality(req.Quality) // validated above
	trail := obs.NewTrail(s.cfg.AuditLimit)
	opts := []goflay.Option{
		goflay.WithOverapproxThreshold(req.OverapproxThreshold),
		goflay.WithQuality(quality),
		goflay.WithWorkers(req.Workers),
		goflay.WithMetrics(s.met),
		goflay.WithAudit(trail),
	}
	if req.SkipParser {
		opts = append(opts, goflay.WithSkipParser())
	}
	if req.NoCache {
		opts = append(opts, goflay.WithNoCache())
	}
	if req.NoDD {
		opts = append(opts, goflay.WithNoDD())
	}
	if req.Exec {
		opts = append(opts, goflay.WithExec())
	}
	var (
		pipe    *goflay.Pipeline
		program string
		err     error
	)
	start := time.Now()
	switch {
	case req.Catalog != "":
		program = "catalog:" + req.Catalog
		pipe, err = goflay.OpenCatalog(req.Catalog, opts...)
	case req.Source != "":
		program = "source:" + req.Name
		pipe, err = goflay.Open(req.Name, req.Source, opts...)
	default:
		program = "snapshot:" + req.Name
		pipe, err = goflay.Restore(req.Snapshot, opts...)
	}
	if err != nil {
		s.errorErr(w, http.StatusUnprocessableEntity, fmt.Errorf("loading session: %w", err))
		return
	}
	sess := s.newSession(req.Name, program, pipe, trail, len(req.Snapshot) > 0)
	sess.exec = req.Exec
	if err := s.addSession(sess); err != nil {
		sess.close()
		s.errorf(w, http.StatusConflict, "%v", err)
		return
	}
	if s.ship != nil {
		s.ship.shipBase(sess)
	}
	s.cfg.Logf("server: session %s loaded %s in %v", req.Name, program, time.Since(start).Round(time.Millisecond))
	writeJSON(w, http.StatusCreated, s.info(sess))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var list wire.SessionList
	for _, sess := range s.snapshotList() {
		list.Sessions = append(list.Sessions, s.info(sess))
	}
	writeJSON(w, http.StatusOK, list)
}

// named resolves the {name} path segment to a session or answers 404.
func (s *Server) named(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	name := r.PathValue("name")
	sess, ok := s.session(name)
	if !ok {
		s.errorf(w, http.StatusNotFound, "no session %q", name)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.named(w, r); ok {
		writeJSON(w, http.StatusOK, s.info(sess))
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.gateStandby(w) {
		return
	}
	name := r.PathValue("name")
	if !s.removeSession(name) {
		s.errorf(w, http.StatusNotFound, "no session %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if !s.gateStandby(w) {
		return
	}
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.errorf(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req wire.WriteRequest
	if !s.decode(w, r, &req) {
		return
	}
	updates, err := req.ToUpdates()
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve the request's latency budget: an explicit deadline_ms
	// wins; otherwise, under queue pressure, the configured pressure
	// deadline is attached so the engine degrades precision (shedding
	// analysis cost) before the queue overflows into 429s.
	var deadline time.Time
	switch {
	case req.DeadlineMS > 0:
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case s.cfg.PressureDeadline > 0 && sess.pressured():
		deadline = time.Now().Add(s.cfg.PressureDeadline)
		s.met.Counter("server.pressure_deadlines").Inc()
	}
	wr := &writeReq{updates: updates, batch: req.Batch(), deadline: deadline, reqID: req.ReqID, resp: make(chan writeResult, 1)}
	start := time.Now()
	if err := sess.submit(wr); err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusTooManyRequests
		}
		s.errorErr(w, status, err)
		return
	}
	res, err := sess.wait(wr)
	if err != nil {
		s.errorErr(w, http.StatusServiceUnavailable, err)
		return
	}
	s.met.Counter("server.write_requests").Inc()
	s.met.Counter("server.write_updates").Add(int64(len(updates)))
	s.met.Histogram("server.write_ns").ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, writeResponse(res))
}

// writeResponse converts a dispatcher result to its wire form. A result
// carrying pre-wired decisions (idempotency-cache hits, and any request
// that sent a req_id) reuses them verbatim.
func writeResponse(res writeResult) wire.WriteResponse {
	out := wire.WriteResponse{Coalesced: res.coalesced, Replayed: res.replayed}
	if res.wired != nil {
		out.Decisions = res.wired
		return out
	}
	out.Decisions = wireDecisions(res.decisions)
	return out
}

// handleExec runs a packet burst through the session's current
// specialized program. Packet execution is a wait-free read against
// the published epoch's image, so it bypasses the write dispatcher —
// exec requests are never queued behind control-plane writes and never
// answer 429.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	var req wire.ExecRequest
	if !s.decode(w, r, &req) {
		return
	}
	packets, ports, err := req.ToPackets()
	if err != nil {
		s.errorErr(w, http.StatusBadRequest, err)
		return
	}
	epoch := sess.pipe.Epoch()
	results, err := sess.pipe.ExecBatch(packets, ports)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, goflay.ErrExecDisabled):
			// The session exists but was created without exec.
			status = http.StatusConflict
		case errors.Is(err, goflay.ErrBadPacket):
			status = http.StatusBadRequest
		}
		s.errorErr(w, status, err)
		return
	}
	s.met.Counter("server.exec_requests").Inc()
	s.met.Counter("server.exec_packets").Add(int64(len(packets)))
	out := wire.ExecResponse{Epoch: epoch, Results: make([]wire.ExecResult, len(results))}
	for i, res := range results {
		out.Results[i] = wire.FromExecResult(res)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.named(w, r); ok {
		writeJSON(w, http.StatusOK, wire.FromStats(sess.pipe.Statistics()))
	}
}

// handleExplain reports decision-diagram explanations of program
// points: ?table=NAME explains every point the named table influences;
// adding &point=N narrows to one point (with membership checked);
// ?point=N alone explains one point by ID. Like stats and exec, it is a
// wait-free read against the published epoch — it never queues behind
// control-plane writes.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	table := r.URL.Query().Get("table")
	rawPoint := r.URL.Query().Get("point")
	if table == "" && rawPoint == "" {
		s.errorf(w, http.StatusBadRequest, "explain wants ?table=NAME and/or ?point=N")
		return
	}
	resp := wire.ExplainResponse{Table: table}
	var ids []int
	if rawPoint != "" {
		id, err := strconv.Atoi(rawPoint)
		if err != nil || id < 0 {
			s.errorf(w, http.StatusBadRequest, "invalid point=%q", rawPoint)
			return
		}
		ids = []int{id}
	} else {
		var err error
		if ids, err = sess.pipe.Points(table); err != nil {
			s.errorErr(w, http.StatusNotFound, err)
			return
		}
	}
	for _, id := range ids {
		ex, err := sess.pipe.Explain(table, id)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, goflay.ErrUnknownTable) {
				status = http.StatusNotFound
			}
			s.errorErr(w, status, err)
			return
		}
		resp.Points = append(resp.Points, ex)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	since, okQ := intQuery(w, s, r, "since", 0)
	if !okQ {
		return
	}
	limit, okQ := intQuery(w, s, r, "limit", 0)
	if !okQ {
		return
	}
	recs := sess.audit.Records()
	if since > 0 {
		i := sort.Search(len(recs), func(i int) bool { return recs[i].Seq > since })
		recs = recs[i:]
	}
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	writeJSON(w, http.StatusOK, wire.AuditResponse{
		Records: recs,
		Total:   sess.audit.Total(),
		Dropped: sess.audit.Dropped(),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	data, err := sess.pipe.Snapshot()
	if err != nil {
		s.errorErr(w, http.StatusInternalServerError, fmt.Errorf("snapshot: %w", err))
		return
	}
	resp := wire.SnapshotResponse{Name: sess.name, Bytes: len(data), Snapshot: data}
	if s.cfg.SnapshotDir != "" {
		path, err := sess.persistSnapshot()
		if err != nil {
			s.errorf(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Path = path
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.named(w, r)
	if !ok {
		return
	}
	var src string
	switch which := r.URL.Query().Get("which"); which {
	case "", "specialized":
		src = sess.pipe.SpecializedSource()
	case "original":
		src = sess.pipe.OriginalSource()
	default:
		s.errorf(w, http.StatusBadRequest, "unknown source %q (want specialized|original)", which)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, src)
}

// decode strictly parses the request body, answering 400/413 itself.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	err := wire.Decode(r.Body, s.cfg.MaxBody, v)
	switch {
	case err == nil:
		return true
	case errors.Is(err, wire.ErrTooLarge):
		s.errorf(w, http.StatusRequestEntityTooLarge, "%v", err)
	default:
		s.errorf(w, http.StatusBadRequest, "%v", err)
	}
	return false
}

func intQuery(w http.ResponseWriter, s *Server, r *http.Request, key string, def int) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		s.errorf(w, http.StatusBadRequest, "invalid %s=%q", key, raw)
		return 0, false
	}
	return n, true
}

func (s *Server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.Counter("server.http_errors").Inc()
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// errorErr answers with a classified error body: alongside the message,
// the sentinel-derived machine-readable code travels so clients can
// errors.Is across the HTTP boundary.
func (s *Server) errorErr(w http.ResponseWriter, status int, err error) {
	s.met.Counter("server.http_errors").Inc()
	writeJSON(w, status, wire.ErrorResponse{Error: err.Error(), Code: wire.CodeOf(err)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
