// Replication suite: an active daemon shipping to a hot standby must
// keep the standby observationally identical (state, audit sequence,
// specialized source), survive a standby restart via gap-triggered base
// catch-up, refuse client writes until promoted, and keep req_id'd
// writes exactly-once through the idempotency cache.
package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/fuzz"
	"repro/internal/server"
	"repro/internal/wire"
)

// startStandby runs a standby daemon on its own listener and returns
// the daemon plus its base URL.
func startStandby(t *testing.T) *testDaemon {
	t.Helper()
	return startDaemon(t, server.Config{Standby: true})
}

func promote(t *testing.T, base string) wire.ReplicaPromoteResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer resp.Body.Close()
	var out wire.ReplicaPromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("promote decode: %v", err)
	}
	return out
}

// TestReplicationTracksActive drives a mixed single/batch stream
// through an active daemon and asserts the standby converges to the
// same session: update counts, audit sequence, entry counts, and
// byte-identical specialized source. Then a promote flips the standby
// live and it starts accepting writes where the active left off.
func TestReplicationTracksActive(t *testing.T) {
	standby := startStandby(t)
	active := startDaemon(t, server.Config{ReplicateTo: standby.ts.URL})

	if _, err := active.c.CreateSession(wire.CreateSessionRequest{Name: "rep", Catalog: "fig3"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 21).Stream(120)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range mixedChunks(stream) {
		if _, err := active.c.Write("rep", ch.mode, ch.updates); err != nil {
			t.Fatalf("write: %v", err)
		}
	}

	// The ship is synchronous (before ack), so by now the standby has
	// everything that was acknowledged.
	aInfo, err := active.c.Session("rep")
	if err != nil {
		t.Fatal(err)
	}
	sInfo, err := standby.c.Session("rep")
	if err != nil {
		t.Fatalf("standby has no replica session: %v", err)
	}
	if sInfo.Stats.Updates != aInfo.Stats.Updates {
		t.Fatalf("standby absorbed %d updates, active applied %d", sInfo.Stats.Updates, aInfo.Stats.Updates)
	}
	if sInfo.AuditTotal != aInfo.AuditTotal {
		t.Fatalf("audit sequence diverged: standby %d, active %d", sInfo.AuditTotal, aInfo.AuditTotal)
	}
	if !reflect.DeepEqual(sInfo.Entries, aInfo.Entries) {
		t.Fatalf("entry counts diverged: standby %v, active %v", sInfo.Entries, aInfo.Entries)
	}
	aSrc, _ := active.c.Source("rep", "specialized")
	sSrc, _ := standby.c.Source("rep", "specialized")
	if aSrc != sSrc {
		t.Fatal("specialized source diverged between active and standby")
	}

	// Standby refuses client writes with the typed sentinel...
	if _, err := standby.c.Write("rep", "", stream[:1]); !errors.Is(err, flayerr.ErrStandby) {
		t.Fatalf("standby write: got %v, want ErrStandby", err)
	}
	if h, _ := standby.c.Health(); !h.Standby {
		t.Fatal("standby health does not report standby")
	}

	// ...until promoted, after which the session continues with audit
	// sequence continuity.
	out := promote(t, standby.ts.URL)
	if len(out.Sessions) != 1 || out.Sessions[0] != "rep" {
		t.Fatalf("promote reported sessions %v", out.Sessions)
	}
	resp, err := standby.c.Write("rep", "", stream[:1])
	if err != nil {
		t.Fatalf("post-promote write: %v", err)
	}
	if len(resp.Decisions) != 1 {
		t.Fatalf("post-promote write got %d decisions", len(resp.Decisions))
	}
	post, _ := standby.c.Session("rep")
	if post.AuditTotal != aInfo.AuditTotal+1 {
		t.Fatalf("audit sequence after promote: %d, want %d", post.AuditTotal, aInfo.AuditTotal+1)
	}
	if h, _ := standby.c.Health(); h.Standby {
		t.Fatal("promoted daemon still reports standby")
	}
}

// TestReplicaGapCatchup kills the replication target entirely: the
// active's ships fail while the standby is down, and when a fresh
// (empty) standby comes up on the same address, the next round answers
// a replica gap and the active catches it up with a base snapshot that
// subsumes everything missed.
func TestReplicaGapCatchup(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	// Short ship timeout: while the standby is down its listener accepts
	// but never answers, and the test should not sit out the default.
	active := startDaemon(t, server.Config{
		ReplicateTo:   url,
		ReplicaClient: &http.Client{Timeout: 200 * time.Millisecond},
	})
	if _, err := active.c.CreateSession(wire.CreateSessionRequest{Name: "gap", Catalog: "fig3"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 22).Stream(40)
	if err != nil {
		t.Fatal(err)
	}
	// Standby is not serving yet: these rounds ship into the void (the
	// writes still succeed — replication degrades, never blocks acks).
	for _, u := range stream[:10] {
		if _, err := active.c.Write("gap", wire.ModeSingle, []*controlplane.Update{u}); err != nil {
			t.Fatalf("write while standby down: %v", err)
		}
	}

	standbySrv, err := server.New(server.Config{Standby: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: standbySrv}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	sc := client.New(url)

	// The next round hits "no session" -> gap -> base catch-up, and the
	// rounds after it extend the base.
	for _, u := range stream[10:] {
		if _, err := active.c.Write("gap", wire.ModeSingle, []*controlplane.Update{u}); err != nil {
			t.Fatalf("write after standby restart: %v", err)
		}
	}
	aInfo, _ := active.c.Session("gap")
	sInfo, err := sc.Session("gap")
	if err != nil {
		t.Fatalf("standby did not catch up: %v", err)
	}
	if sInfo.Stats.Updates == 0 || !reflect.DeepEqual(sInfo.Entries, aInfo.Entries) {
		t.Fatalf("standby entries %v diverge from active %v", sInfo.Entries, aInfo.Entries)
	}
	met, _ := active.c.Metrics()
	if met.Counters["server.ship_gaps"] == 0 {
		t.Fatal("no gap catch-up recorded despite standby restart")
	}
}

// TestWriteIdempotency sends the same req_id twice and expects the
// second answer to replay the cached decisions without re-applying.
func TestWriteIdempotency(t *testing.T) {
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "idem", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 23).Stream(4)
	if err != nil {
		t.Fatal(err)
	}
	post := func() wire.WriteResponse {
		t.Helper()
		body, _ := json.Marshal(wire.WriteRequest{Updates: wire.FromUpdates(stream), ReqID: "req-1", Mode: wire.ModeBatch})
		resp, err := http.Post(d.ts.URL+"/v1/sessions/idem/updates", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post status %d", resp.StatusCode)
		}
		var out wire.WriteResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := post()
	if first.Replayed {
		t.Fatal("first write marked replayed")
	}
	st1, _ := d.c.Stats("idem")
	second := post()
	if !second.Replayed {
		t.Fatal("duplicate req_id was not replayed")
	}
	if !reflect.DeepEqual(first.Decisions, second.Decisions) {
		t.Fatalf("replayed decisions differ:\n first: %+v\nsecond: %+v", first.Decisions, second.Decisions)
	}
	st2, _ := d.c.Stats("idem")
	if st2.Updates != st1.Updates {
		t.Fatalf("duplicate req_id re-applied updates: %d -> %d", st1.Updates, st2.Updates)
	}
	// Distinct req_ids still apply.
	time.Sleep(10 * time.Millisecond)
	body, _ := json.Marshal(wire.WriteRequest{Updates: wire.FromUpdates(stream[:1]), ReqID: "req-2"})
	resp, err := http.Post(d.ts.URL+"/v1/sessions/idem/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st3, _ := d.c.Stats("idem")
	if st3.Updates != st1.Updates+1 {
		t.Fatalf("fresh req_id did not apply: %d -> %d", st1.Updates, st3.Updates)
	}
}
