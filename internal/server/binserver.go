// The binary listener: flayd's second protocol surface. Same versioned
// vocabulary as the HTTP/JSON API (internal/wire), framed as
// length-prefixed binary (internal/wire/binproto) over a raw TCP
// connection, with pipelining: a client may have many writes in flight
// on one connection, matched back by correlation ID.
//
// Connections are session-scoped: after the handshake, the first frame
// must be an Attach naming the session (optionally creating it from a
// catalog program). Every subsequent Write lands on that session. This
// is what makes the front door's job trivial — it routes the Attach and
// then splices bytes.
//
// The read loop never blocks on the engine: each Write is submitted to
// the session's dispatcher and a bounded number of waiter goroutines
// (binInflight) carry results back to the single writer goroutine,
// which batches frame flushes. Responses may therefore interleave out
// of order — that is the point of correlation IDs.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	goflay "repro"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// binInflight bounds the write requests in flight per connection (the
// pipelining window the server is willing to buffer).
const binInflight = 256

// ServeBin accepts binary-protocol connections until the listener
// closes. Run it in its own goroutine alongside the HTTP server.
func (s *Server) ServeBin(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinConn(conn)
	}
}

// trackBinConn registers a live connection for Shutdown to close;
// reports false when the server is already draining.
func (s *Server) trackBinConn(conn net.Conn) bool {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		return false
	}
	s.binMu.Lock()
	s.binConns[conn] = struct{}{}
	s.binMu.Unlock()
	return true
}

func (s *Server) untrackBinConn(conn net.Conn) {
	s.binMu.Lock()
	delete(s.binConns, conn)
	s.binMu.Unlock()
}

func (s *Server) serveBinConn(conn net.Conn) {
	defer conn.Close()
	if !s.trackBinConn(conn) {
		return
	}
	defer s.untrackBinConn(conn)
	s.met.Counter("server.bin_conns").Inc()

	br := bufio.NewReaderSize(conn, 64<<10)
	if err := binproto.ReadHandshake(br); err != nil {
		return
	}
	if err := binproto.WriteHandshake(conn); err != nil {
		return
	}

	// Single writer: waiter goroutines funnel response frames here; the
	// writer flushes when the channel runs dry, batching under load.
	out := make(chan binproto.Frame, binInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// On a write error, keep draining so waiter goroutines blocked
		// on a full channel always get to finish.
		defer func() {
			for range out {
			}
		}()
		bw := bufio.NewWriterSize(conn, 64<<10)
		for f := range out {
			if err := binproto.WriteFrame(bw, f); err != nil {
				return
			}
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}
		bw.Flush()
	}()
	defer func() { close(out); <-writerDone }()

	sess, ok := s.binAttach(br, out)
	if !ok {
		return
	}
	sem := make(chan struct{}, binInflight)
	defer func() {
		// Wait for in-flight writes so their responses beat the close.
		for i := 0; i < binInflight; i++ {
			sem <- struct{}{}
		}
	}()
	for {
		f, err := binproto.ReadFrame(br)
		if err != nil {
			return
		}
		s.met.Counter("server.bin_frames").Inc()
		switch f.Type {
		case binproto.TWrite:
			if !s.binWrite(sess, f, out, sem) {
				return
			}
		case binproto.TStats:
			payload, err := json.Marshal(wire.FromStats(sess.pipe.Statistics()))
			if err != nil {
				binErr(out, f.Corr, 500, fmt.Errorf("stats: %w", err))
				continue
			}
			out <- binproto.Frame{Type: binproto.TStatsOK, Corr: f.Corr, Payload: payload}
		case binproto.TSnapshot:
			data, err := sess.pipe.Snapshot()
			if err != nil {
				binErr(out, f.Corr, 500, fmt.Errorf("snapshot: %w", err))
				continue
			}
			out <- binproto.Frame{Type: binproto.TSnapshotOK, Corr: f.Corr, Payload: data}
		case binproto.TPing:
			out <- binproto.Frame{Type: binproto.TPong, Corr: f.Corr}
		default:
			// Unknown frame type is a protocol error; drop the conn.
			binErr(out, f.Corr, 400, fmt.Errorf("unexpected frame type %#x", f.Type))
			return
		}
	}
}

// binAttach consumes the mandatory first frame: Attach resolves (or
// creates, given a catalog) the session the connection is scoped to.
func (s *Server) binAttach(br *bufio.Reader, out chan<- binproto.Frame) (*Session, bool) {
	f, err := binproto.ReadFrame(br)
	if err != nil {
		return nil, false
	}
	if f.Type != binproto.TAttach {
		binErr(out, f.Corr, 400, fmt.Errorf("first frame must be attach, got %#x", f.Type))
		return nil, false
	}
	a, err := binproto.DecodeAttach(f.Payload)
	if err != nil {
		binErr(out, f.Corr, 400, err)
		return nil, false
	}
	sess, ok := s.session(a.Name)
	created := false
	if !ok {
		if a.Catalog == "" {
			binErr(out, f.Corr, 404, fmt.Errorf("no session %q", a.Name))
			return nil, false
		}
		sess, err = s.binCreate(a)
		if err != nil {
			status := 422
			switch {
			case errors.Is(err, flayerr.ErrStandby):
				status = 503
			case errors.Is(err, errExists):
				// Lost a create race: attach to the winner.
				if sess, ok = s.session(a.Name); ok {
					err = nil
				}
			}
			if err != nil {
				binErr(out, f.Corr, status, err)
				return nil, false
			}
		} else {
			created = true
		}
	}
	out <- binproto.Frame{Type: binproto.TAttachOK, Corr: f.Corr, Payload: binproto.AppendAttachOK(nil, &binproto.AttachOK{
		Name:    sess.name,
		Program: sess.program,
		Epoch:   sess.pipe.Epoch(),
		Created: created,
	})}
	return sess, true
}

var errExists = errors.New("session exists")

// binCreate loads a catalog session on behalf of an Attach, mirroring
// the HTTP create path (standby gate, audit trail, base ship).
func (s *Server) binCreate(a *binproto.Attach) (*Session, error) {
	if s.standby.Load() {
		return nil, fmt.Errorf("server: %w", flayerr.ErrStandby)
	}
	if !nameRE.MatchString(a.Name) {
		return nil, fmt.Errorf("invalid session name %q (want %s)", a.Name, nameRE)
	}
	trail := obs.NewTrail(s.cfg.AuditLimit)
	opts := []goflay.Option{goflay.WithMetrics(s.met), goflay.WithAudit(trail)}
	if a.Exec {
		opts = append(opts, goflay.WithExec())
	}
	pipe, err := goflay.OpenCatalog(a.Catalog, opts...)
	if err != nil {
		return nil, fmt.Errorf("loading session: %w", err)
	}
	sess := s.newSession(a.Name, "catalog:"+a.Catalog, pipe, trail, false)
	sess.exec = a.Exec
	if err := s.addSession(sess); err != nil {
		sess.close()
		return nil, fmt.Errorf("%w: %v", errExists, err)
	}
	if s.ship != nil {
		s.ship.shipBase(sess)
	}
	return sess, nil
}

// binWrite decodes and submits one pipelined write. Returns false only
// on unrecoverable protocol errors (malformed payload).
func (s *Server) binWrite(sess *Session, f binproto.Frame, out chan<- binproto.Frame, sem chan struct{}) bool {
	if s.standby.Load() {
		binErr(out, f.Corr, 503, fmt.Errorf("server: %w", flayerr.ErrStandby))
		return true
	}
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		binErr(out, f.Corr, 503, errors.New("draining"))
		return true
	}
	w, err := binproto.DecodeWrite(f.Payload)
	if err != nil {
		binErr(out, f.Corr, 400, err)
		return false
	}
	var deadline time.Time
	switch {
	case w.DeadlineMS > 0:
		deadline = time.Now().Add(time.Duration(w.DeadlineMS) * time.Millisecond)
	case s.cfg.PressureDeadline > 0 && sess.pressured():
		deadline = time.Now().Add(s.cfg.PressureDeadline)
		s.met.Counter("server.pressure_deadlines").Inc()
	}
	wr := &writeReq{updates: w.Updates, batch: w.Batch, deadline: deadline, reqID: w.ReqID, resp: make(chan writeResult, 1)}
	start := time.Now()
	sem <- struct{}{} // bound in-flight before accepting more frames
	if err := sess.submit(wr); err != nil {
		<-sem
		status := 503
		if errors.Is(err, ErrQueueFull) {
			status = 429
		}
		binErr(out, f.Corr, status, err)
		return true
	}
	corr := f.Corr
	go func() {
		defer func() { <-sem }()
		res, err := sess.wait(wr)
		if err != nil {
			binErr(out, corr, 503, err)
			return
		}
		s.met.Counter("server.write_requests").Inc()
		s.met.Counter("server.write_updates").Add(int64(len(w.Updates)))
		s.met.Histogram("server.write_ns").ObserveDuration(time.Since(start))
		resp := writeResponse(res)
		out <- binproto.Frame{Type: binproto.TWriteOK, Corr: corr, Payload: binproto.AppendWriteOK(nil, &binproto.WriteOK{
			Coalesced: resp.Coalesced,
			Replayed:  resp.Replayed,
			Decisions: resp.Decisions,
		})}
	}()
	return true
}

// binErr emits an error frame carrying the same status + machine code
// the HTTP surface would have answered.
func binErr(out chan<- binproto.Frame, corr uint64, status int, err error) {
	out <- binproto.Frame{Type: binproto.TErr, Corr: corr, Payload: binproto.AppendErrMsg(nil, &binproto.ErrMsg{
		Status: status,
		Code:   wire.CodeOf(err),
		Msg:    err.Error(),
	})}
}
