package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	goflay "repro"
	"repro/internal/controlplane"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Submission errors the HTTP layer maps to statuses. Both wrap the
// goflay sentinels, so clients classify them with errors.Is across the
// wire (internal/wire error codes).
var (
	// ErrQueueFull is backpressure: the session's bounded in-flight
	// queue is at capacity (HTTP 429).
	ErrQueueFull = fmt.Errorf("server: session queue full: %w", flayerr.ErrBackpressure)
	// ErrSessionClosed marks a write against a closing session (503).
	ErrSessionClosed = fmt.Errorf("server: session %w", flayerr.ErrClosed)
)

// writeReq is one write request in flight between an HTTP handler and
// the session's dispatcher.
type writeReq struct {
	updates []*controlplane.Update
	// batch requests ApplyBatch semantics; otherwise the updates are
	// applied one at a time.
	batch bool
	// deadline is the request's latency budget (zero = none): the
	// dispatcher turns it into a context deadline, under which the
	// engine may degrade table precision rather than miss it.
	deadline time.Time
	// reqID is the client's idempotency key ("" = none): a duplicate is
	// answered from the session's decision cache without re-applying.
	reqID string
	// resp is buffered (capacity 1) so the dispatcher never blocks
	// handing a result back, even if the requester gave up.
	resp chan writeResult
}

type writeResult struct {
	decisions []*goflay.Decision
	// wired, when non-nil, is the response already in wire form (the
	// idempotency-cache hit path); it takes precedence over decisions.
	wired []wire.Decision
	// coalesced is set when the request shared an ApplyBatch with at
	// least one other request.
	coalesced bool
	// replayed is set when the result came from the idempotency cache.
	replayed bool
}

// Session hosts one named Pipeline behind a single dispatcher
// goroutine. Every write is funneled through a bounded queue: the
// dispatcher applies requests in arrival order, optionally coalescing
// requests that arrive within the configured window into one
// ApplyBatch, which recompiles per-target assignments once and
// re-evaluates the union of tainted points in a single parallel pass.
// Reads (stats, audit, snapshot, source) go straight to the engine,
// which is internally RWMutex-guarded, so they never queue behind
// writes.
type Session struct {
	name    string
	program string
	// restored marks a session warm-started from the snapshot dir.
	restored bool

	pipe  *goflay.Pipeline
	audit *obs.Trail
	srv   *Server

	// exec records whether the session was created with the data-plane
	// executor, so a base ship re-enables it on the standby.
	exec bool

	queue chan *writeReq
	stop  chan struct{} // closed by close(); dispatcher drains and exits
	done  chan struct{} // closed when the dispatcher has exited

	// roundMu serializes write rounds against replication: the active
	// holds it across apply+seq+ship so a base snapshot (taken under the
	// same mutex) covers exactly repSeq rounds; the standby holds it
	// while applying incoming rounds. repSeq is the sequence number of
	// the last round applied (active) or absorbed (standby).
	roundMu sync.Mutex
	repSeq  uint64

	// Idempotency cache: reqID → response already answered, bounded
	// FIFO. Guarded by dedupMu (the binary and HTTP paths share it).
	dedupMu    sync.Mutex
	dedup      map[string]cachedWrite
	dedupOrder []string

	// snapGen is the engine generation captured by the last snapshot;
	// genNever means no snapshot has been taken yet. snapMu serializes
	// checkpoints (the HTTP snapshot handler can race shutdown).
	snapMu  sync.Mutex
	snapGen uint64
}

// genNever marks a session that has never been snapshotted, so the
// shutdown path persists it even if it took no updates (otherwise a
// freshly created idle session would not survive a restart).
const genNever = ^uint64(0)

func (s *Server) newSession(name, program string, pipe *goflay.Pipeline, audit *obs.Trail, restored bool) *Session {
	sess := &Session{
		name:     name,
		program:  program,
		restored: restored,
		pipe:     pipe,
		audit:    audit,
		srv:      s,
		queue:    make(chan *writeReq, s.cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		dedup:    make(map[string]cachedWrite),
		snapGen:  genNever,
	}
	if restored {
		// The on-disk snapshot is exactly this state; don't rewrite it
		// on shutdown unless updates arrive.
		sess.snapGen = pipe.Generation()
	}
	go sess.dispatch()
	return sess
}

// submit enqueues a write without blocking: a full queue is
// backpressure, reported to the caller as ErrQueueFull rather than
// letting requests pile up unboundedly inside the daemon.
func (sess *Session) submit(req *writeReq) error {
	select {
	case <-sess.stop:
		return ErrSessionClosed
	default:
	}
	select {
	case sess.queue <- req:
		return nil
	default:
		sess.srv.met.Counter("server.queue_full").Inc()
		return ErrQueueFull
	}
}

// wait blocks until the dispatcher answers req (or the session shuts
// down underneath it).
func (sess *Session) wait(req *writeReq) (writeResult, error) {
	select {
	case res := <-req.resp:
		return res, nil
	case <-sess.done:
		// The dispatcher may have served the request while we were
		// racing with shutdown; prefer the result if it is there.
		select {
		case res := <-req.resp:
			return res, nil
		default:
			return writeResult{}, ErrSessionClosed
		}
	}
}

// dispatch is the session's single writer loop.
func (sess *Session) dispatch() {
	defer close(sess.done)
	for {
		select {
		case req := <-sess.queue:
			sess.serve(sess.collect(req))
		case <-sess.stop:
			// Drain whatever was accepted before the stop signal so
			// "graceful" means no accepted update is dropped.
			for {
				select {
				case req := <-sess.queue:
					sess.serve([]*writeReq{req})
				default:
					return
				}
			}
		}
	}
}

// collect implements the coalescing window: after the first request of
// a round arrives, the dispatcher keeps accepting requests for up to
// CoalesceWindow (bounded by MaxBatch updates) and funnels them into
// one ApplyBatch. A zero window disables coalescing — every request is
// served alone, preserving exact single/batch attribution.
func (sess *Session) collect(first *writeReq) []*writeReq {
	reqs := []*writeReq{first}
	window := sess.srv.cfg.CoalesceWindow
	if window <= 0 {
		return reqs
	}
	n := len(first.updates)
	timer := time.NewTimer(window)
	defer timer.Stop()
	for n < sess.srv.cfg.MaxBatch {
		select {
		case r := <-sess.queue:
			reqs = append(reqs, r)
			n += len(r.updates)
		case <-timer.C:
			return reqs
		case <-sess.stop:
			return reqs
		}
	}
	return reqs
}

// serveCtx resolves one round's latency budget: the earliest request
// deadline wins (a coalesced round must honor its most impatient
// member). The returned cancel must be called.
func serveCtx(reqs []*writeReq) (context.Context, context.CancelFunc) {
	var deadline time.Time
	for _, r := range reqs {
		if !r.deadline.IsZero() && (deadline.IsZero() || r.deadline.Before(deadline)) {
			deadline = r.deadline
		}
	}
	if deadline.IsZero() {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), deadline)
}

// serve applies one round of requests and distributes decisions back.
// A lone single-mode request keeps sequential Apply semantics; anything
// else — an explicit batch, or several coalesced requests regardless of
// their modes — goes through ApplyBatch as one atomic configuration
// transition, with the decision slice split back per request in order.
//
// Requests carrying an idempotency key that is already in the decision
// cache are answered from it without touching the engine (exactly-once
// under client retries). When replication is configured, the round is
// shipped to the standby before any request is acknowledged: an
// acknowledged write is on the standby, so a shard kill loses nothing
// that was accepted.
func (sess *Session) serve(reqs []*writeReq) {
	met := sess.srv.met
	fresh := reqs[:0]
	for _, r := range reqs {
		if r.reqID != "" {
			if c, ok := sess.dedupGet(r.reqID); ok {
				met.Counter("server.replayed_requests").Inc()
				r.resp <- writeResult{wired: c.decisions, coalesced: c.coalesced, replayed: true}
				continue
			}
		}
		fresh = append(fresh, r)
	}
	if len(fresh) == 0 {
		return
	}
	start := time.Now()
	ctx, cancel := serveCtx(fresh)
	defer cancel()
	batch := len(fresh) > 1 || fresh[0].batch
	if sess.srv.ship != nil {
		sess.roundMu.Lock()
		defer sess.roundMu.Unlock()
	}
	var ds []*goflay.Decision
	if !batch {
		ds = sess.pipe.ApplyAllCtx(ctx, fresh[0].updates)
	} else {
		var all []*controlplane.Update
		for _, r := range fresh {
			all = append(all, r.updates...)
		}
		ds = sess.pipe.ApplyBatchCtx(ctx, all)
	}
	met.Histogram("server.apply_ns").ObserveDuration(time.Since(start))
	coalesced := len(fresh) > 1
	if coalesced {
		met.Counter("server.coalesced_requests").Add(int64(len(fresh)))
	}
	if sess.srv.ship != nil {
		sess.repSeq++
		sess.srv.ship.shipRound(sess, sess.repSeq, batch, fresh)
	}
	off := 0
	for _, r := range fresh {
		slice := ds[off : off+len(r.updates)]
		off += len(r.updates)
		res := writeResult{decisions: slice, coalesced: coalesced}
		if r.reqID != "" {
			res.wired = wireDecisions(slice)
			sess.dedupPut(r.reqID, cachedWrite{decisions: res.wired, coalesced: coalesced})
		}
		r.resp <- res
	}
}

// cachedWrite is one idempotency-cache entry: the wire-form response a
// reqID was originally answered with, replayed verbatim on duplicates.
type cachedWrite struct {
	decisions []wire.Decision
	coalesced bool
}

// dedupCap bounds the idempotency cache: old enough entries age out
// FIFO, which is safe because a client only retries a reqID while the
// original request is unresolved — not dedupCap writes later.
const dedupCap = 512

func (sess *Session) dedupGet(reqID string) (cachedWrite, bool) {
	sess.dedupMu.Lock()
	defer sess.dedupMu.Unlock()
	c, ok := sess.dedup[reqID]
	return c, ok
}

func (sess *Session) dedupPut(reqID string, c cachedWrite) {
	sess.dedupMu.Lock()
	defer sess.dedupMu.Unlock()
	if _, ok := sess.dedup[reqID]; ok {
		return
	}
	for len(sess.dedupOrder) >= dedupCap {
		delete(sess.dedup, sess.dedupOrder[0])
		sess.dedupOrder = sess.dedupOrder[1:]
	}
	sess.dedup[reqID] = c
	sess.dedupOrder = append(sess.dedupOrder, reqID)
}

// wireDecisions converts engine decisions to wire form (the shape the
// idempotency cache stores, so a replayed answer is byte-stable).
func wireDecisions(ds []*goflay.Decision) []wire.Decision {
	out := make([]wire.Decision, len(ds))
	for i, d := range ds {
		out[i] = wire.FromDecision(d)
	}
	return out
}

// close stops the dispatcher, waits for it to drain, and releases the
// pipeline's background resources (the precision repair goroutine).
// Idempotent.
func (sess *Session) close() {
	select {
	case <-sess.stop:
	default:
		close(sess.stop)
	}
	<-sess.done
	sess.pipe.Close()
}

// pressured reports whether the session's write queue is at least half
// full — the load-shedding trigger: rather than waiting for the queue
// to fill and answering 429, the server starts attaching the configured
// pressure deadline so the engine degrades precision first.
func (sess *Session) pressured() bool {
	return len(sess.queue)*2 >= cap(sess.queue)
}

// dirty reports whether the engine state moved past the last snapshot.
func (sess *Session) dirty() bool {
	sess.snapMu.Lock()
	defer sess.snapMu.Unlock()
	return sess.pipe.Generation() != sess.snapGen
}

// snapPath is the session's snapshot file under dir.
func snapPath(dir, name string) string {
	return filepath.Join(dir, name+snapSuffix)
}

const snapSuffix = ".snap"

// persistSnapshot checkpoints the session's warm state to the snapshot
// directory (atomically: temp file + rename) and records the
// generation, so an unchanged session is not rewritten next time.
func (sess *Session) persistSnapshot() (string, error) {
	dir := sess.srv.cfg.SnapshotDir
	if dir == "" {
		return "", nil
	}
	sess.snapMu.Lock()
	defer sess.snapMu.Unlock()
	gen := sess.pipe.Generation()
	data, err := sess.pipe.Snapshot()
	if err != nil {
		return "", fmt.Errorf("snapshot %s: %w", sess.name, err)
	}
	path := snapPath(dir, sess.name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("snapshot %s: %w", sess.name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot %s: %w", sess.name, err)
	}
	sess.snapGen = gen
	sess.srv.met.Counter("server.snapshots_written").Inc()
	return path, nil
}
