// Raw-socket suite for the binary listener: handshake, attach-scoped
// connections, pipelined writes answered out of band by correlation ID,
// stats/snapshot/ping frames, and protocol-error handling.
package server_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"testing"

	goflay "repro"
	"repro/internal/controlplane"
	"repro/internal/fuzz"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// startBinDaemon starts a daemon serving both protocols and returns the
// binary listener's address alongside the daemon.
func startBinDaemon(t *testing.T, cfg server.Config) (*testDaemon, string) {
	t.Helper()
	d := startDaemon(t, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go d.srv.ServeBin(ln)
	return d, ln.Addr().String()
}

// binConn is a minimal raw binary-protocol connection for tests.
type binConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialBin(t *testing.T, addr string) *binConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := binproto.WriteHandshake(conn); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if err := binproto.ReadHandshake(br); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	return &binConn{t: t, conn: conn, br: br}
}

func (c *binConn) send(f binproto.Frame) {
	c.t.Helper()
	if err := binproto.WriteFrame(c.conn, f); err != nil {
		c.t.Fatalf("write frame: %v", err)
	}
}

func (c *binConn) recv() binproto.Frame {
	c.t.Helper()
	f, err := binproto.ReadFrame(c.br)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return f
}

func (c *binConn) attach(a *binproto.Attach) *binproto.AttachOK {
	c.t.Helper()
	c.send(binproto.Frame{Type: binproto.TAttach, Corr: 1, Payload: binproto.AppendAttach(nil, a)})
	f := c.recv()
	if f.Type != binproto.TAttachOK {
		c.t.Fatalf("attach answered frame type %#x", f.Type)
	}
	ok, err := binproto.DecodeAttachOK(f.Payload)
	if err != nil {
		c.t.Fatalf("attach-ok decode: %v", err)
	}
	return ok
}

func TestBinProtocolPipelinedWrites(t *testing.T) {
	d, addr := startBinDaemon(t, server.Config{})
	c := dialBin(t, addr)

	ok := c.attach(&binproto.Attach{Name: "bin", Catalog: "fig3"})
	if !ok.Created || ok.Name != "bin" {
		t.Fatalf("attach: %+v", ok)
	}

	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 31).Stream(16)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline all writes before reading any response; responses come
	// back keyed by correlation ID, in whatever order they finish.
	const base = 100
	for i, u := range stream {
		c.send(binproto.Frame{Type: binproto.TWrite, Corr: uint64(base + i), Payload: binproto.AppendWrite(nil, &binproto.Write{
			Updates: []*controlplane.Update{u},
		})})
	}
	seen := make(map[uint64]*binproto.WriteOK, len(stream))
	for range stream {
		f := c.recv()
		if f.Type == binproto.TErr {
			e, _ := binproto.DecodeErrMsg(f.Payload)
			t.Fatalf("write corr %d failed: %+v", f.Corr, e)
		}
		if f.Type != binproto.TWriteOK {
			t.Fatalf("unexpected frame type %#x", f.Type)
		}
		w, err := binproto.DecodeWriteOK(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := seen[f.Corr]; dup {
			t.Fatalf("correlation id %d answered twice", f.Corr)
		}
		seen[f.Corr] = w
	}
	for i := range stream {
		w, ok := seen[uint64(base+i)]
		if !ok {
			t.Fatalf("write %d never answered", i)
		}
		if len(w.Decisions) != 1 {
			t.Fatalf("write %d: %d decisions", i, len(w.Decisions))
		}
	}

	// The binary surface and the HTTP surface expose the same session.
	c.send(binproto.Frame{Type: binproto.TStats, Corr: 7})
	f := c.recv()
	if f.Type != binproto.TStatsOK {
		t.Fatalf("stats frame type %#x", f.Type)
	}
	var st wire.Stats
	if err := json.Unmarshal(f.Payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.Updates != len(stream) {
		t.Fatalf("stats over binary: %d updates, want %d", st.Updates, len(stream))
	}
	httpStats, err := d.c.Stats("bin")
	if err != nil {
		t.Fatal(err)
	}
	if httpStats.Updates != st.Updates {
		t.Fatalf("stats diverge across protocols: %d vs %d", httpStats.Updates, st.Updates)
	}

	// Ping and snapshot frames.
	c.send(binproto.Frame{Type: binproto.TPing, Corr: 8})
	if f := c.recv(); f.Type != binproto.TPong || f.Corr != 8 {
		t.Fatalf("ping answered %#x corr %d", f.Type, f.Corr)
	}
	c.send(binproto.Frame{Type: binproto.TSnapshot, Corr: 9})
	f = c.recv()
	if f.Type != binproto.TSnapshotOK {
		t.Fatalf("snapshot frame type %#x", f.Type)
	}
	pipe, err := goflay.Restore(f.Payload)
	if err != nil {
		t.Fatalf("snapshot over binary does not restore: %v", err)
	}
	if pipe.Statistics().Updates != len(stream) {
		t.Fatalf("restored snapshot has %d updates", pipe.Statistics().Updates)
	}
	pipe.Close()
}

func TestBinProtocolErrors(t *testing.T) {
	_, addr := startBinDaemon(t, server.Config{})

	// First frame must be an attach.
	c := dialBin(t, addr)
	c.send(binproto.Frame{Type: binproto.TPing, Corr: 1})
	f := c.recv()
	if f.Type != binproto.TErr {
		t.Fatalf("non-attach first frame answered %#x", f.Type)
	}
	if _, err := binproto.ReadFrame(c.br); err != io.EOF {
		t.Fatalf("connection stayed open after protocol error: %v", err)
	}

	// Attaching to a missing session without a catalog is a clean error.
	c2 := dialBin(t, addr)
	c2.send(binproto.Frame{Type: binproto.TAttach, Corr: 2, Payload: binproto.AppendAttach(nil, &binproto.Attach{Name: "nope"})})
	f = c2.recv()
	if f.Type != binproto.TErr {
		t.Fatalf("missing session attach answered %#x", f.Type)
	}
	e, err := binproto.DecodeErrMsg(f.Payload)
	if err != nil || e.Status != 404 {
		t.Fatalf("missing session error: %+v (%v)", e, err)
	}

	// A standby refuses binary writes with the standby code.
	_, saddr := startBinDaemon(t, server.Config{Standby: true})
	c3 := dialBin(t, saddr)
	c3.send(binproto.Frame{Type: binproto.TAttach, Corr: 3, Payload: binproto.AppendAttach(nil, &binproto.Attach{Name: "sb", Catalog: "fig3"})})
	f = c3.recv()
	if f.Type != binproto.TErr {
		t.Fatalf("standby create attach answered %#x", f.Type)
	}
	e, err = binproto.DecodeErrMsg(f.Payload)
	if err != nil || e.Status != 503 || e.Code != wire.CodeStandby {
		t.Fatalf("standby attach error: %+v (%v)", e, err)
	}
}
