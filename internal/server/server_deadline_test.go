// End-to-end test of the deadline path through the daemon: a write
// carrying deadline_ms must reach the engine as a context deadline,
// degrade the table when the precise cost no longer fits, surface the
// degradation on the wire decisions, in /stats, in the audit trail and
// in the metrics snapshot — and stay sound.
package server_test

import (
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/progs"
	"repro/internal/server"
	"repro/internal/wire"
)

func TestDeadlineDegradesOverTheWire(t *testing.T) {
	d := startDaemon(t, server.Config{CoalesceWindow: 0})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{
		Name:    "ddl",
		Catalog: "middleblock",
		// Never overapproximate statically: precise cost grows with the
		// installed ACL, which is what the deadline defends against.
		OverapproxThreshold: -1,
	}); err != nil {
		t.Fatal(err)
	}

	// Train the engine's cost estimator with deadline-free precise
	// writes until per-update cost is far beyond a 2ms budget.
	train := make([]*controlplane.Update, 60)
	for i := range train {
		train[i] = progs.MiddleblockACLEntry(i)
	}
	resp, err := d.c.Write("ddl", wire.ModeSingle, train)
	if err != nil {
		t.Fatal(err)
	}
	for i, dec := range resp.Decisions {
		if dec.Kind == "rejected" {
			t.Fatalf("training update %d rejected: %s", i, dec.Error)
		}
		if dec.Precision != "" {
			t.Fatalf("training update %d already degraded", i)
		}
	}

	// One write under a 2ms budget: the engine must degrade rather than
	// run the ~10ms precise pass, and say so on the wire.
	resp, err = d.c.WriteDeadline("ddl", wire.ModeSingle,
		[]*controlplane.Update{progs.MiddleblockACLEntry(60)}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) != 1 || resp.Decisions[0].Kind == "rejected" {
		t.Fatalf("deadline write decisions = %+v", resp.Decisions)
	}
	if resp.Decisions[0].Precision != "degraded" {
		t.Fatalf("deadline decision precision = %q, want degraded", resp.Decisions[0].Precision)
	}

	// The degradation must be visible on every observability surface.
	// The session's background repair loop may already have promoted the
	// table back (that is its job), so assert on the cumulative
	// counters, not the live degraded set.
	st, err := d.c.Stats("ddl")
	if err != nil {
		t.Fatal(err)
	}
	if st.Degradations < 1 {
		t.Fatalf("stats degradations = %d, want >= 1", st.Degradations)
	}
	if st.UnsoundDegraded != 0 {
		t.Fatalf("unsound degraded verdicts = %d, want 0", st.UnsoundDegraded)
	}
	snap, err := d.c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["core.degradations"]; got < 1 {
		t.Fatalf("core.degradations metric = %d, want >= 1", got)
	}
	audit, err := d.c.Audit("ddl", 0)
	if err != nil {
		t.Fatal(err)
	}
	degrades := 0
	for _, rec := range audit.Records {
		if rec.Decision == "degrade" {
			degrades++
		}
	}
	if degrades < 1 {
		t.Fatalf("audit trail has no degrade records among %d", len(audit.Records))
	}

	// Quiescence: the default repair loop should promote the table back
	// to precise (and verify soundness) without any operator action.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err = d.c.Stats("ddl")
		if err != nil {
			t.Fatal(err)
		}
		if st.DegradedTables == 0 && st.Promotions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never promoted over the wire: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.UnsoundDegraded != 0 {
		t.Fatalf("unsound degraded verdicts after promotion = %d, want 0", st.UnsoundDegraded)
	}
}
