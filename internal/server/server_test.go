// End-to-end suite for the flayd control-plane service: the typed Go
// client replays catalog programs and fuzz.Stream update streams
// against a live (httptest) daemon and asserts the hosted session is
// observationally identical to a local in-process engine fed the same
// chunks — per-request decisions, outcome counters, audit trail
// (sequence numbers included), and byte-identical specialized source.
// It also proves the operational half: kill-and-warm-restart round
// trips through the snapshot directory, coalescing of concurrent
// writers into shared batches, drain semantics, and the Prometheus
// exposition under traffic.
package server_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/progs"
	"repro/internal/server"
	"repro/internal/wire"
)

// testDaemon is one live server plus a client pointed at it.
type testDaemon struct {
	srv *server.Server
	ts  *httptest.Server
	c   *client.Client
}

func startDaemon(t *testing.T, cfg server.Config) *testDaemon {
	t.Helper()
	cfg.Logf = t.Logf
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &testDaemon{srv: srv, ts: ts, c: client.New(ts.URL)}
}

// localEngine loads the catalog program exactly like the server does
// for a create request with default options, with an unbounded audit
// trail.
func localEngine(t *testing.T, prog string) (*core.Specializer, *obs.Trail) {
	t.Helper()
	p, err := progs.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Audit: trail})
	if err != nil {
		t.Fatalf("loading %s locally: %v", prog, err)
	}
	return s, trail
}

// chunk is one client write: its updates and the request mode.
type chunk struct {
	updates []*controlplane.Update
	mode    string
}

// mixedChunks splits a stream into a deterministic mix of single-update
// requests, explicit multi-update single-mode requests (sequential
// Apply semantics), and batches of varying size — the "mixed single +
// batch" shape of the acceptance round trip.
func mixedChunks(stream []*controlplane.Update) []chunk {
	var out []chunk
	sizes := []struct {
		n    int
		mode string
	}{
		{1, wire.ModeSingle}, {17, wire.ModeBatch}, {1, ""}, {3, wire.ModeSingle},
		{8, wire.ModeBatch}, {1, wire.ModeSingle}, {32, ""}, {5, wire.ModeBatch},
	}
	for i := 0; len(stream) > 0; i++ {
		s := sizes[i%len(sizes)]
		n := min(s.n, len(stream))
		out = append(out, chunk{updates: stream[:n], mode: s.mode})
		stream = stream[n:]
	}
	return out
}

// applyLocal mirrors one chunk on the local engine the way the server
// serves it with coalescing disabled: single-mode requests apply one
// update at a time, everything else is one ApplyBatch.
func applyLocal(s *core.Specializer, ch chunk) []*core.Decision {
	batch := ch.mode == wire.ModeBatch || (ch.mode == "" && len(ch.updates) > 1)
	if !batch {
		out := make([]*core.Decision, len(ch.updates))
		for i, u := range ch.updates {
			out[i] = s.Apply(u)
		}
		return out
	}
	return s.ApplyBatch(ch.updates)
}

func sameWireDecision(t *testing.T, label string, i int, got wire.Decision, want *core.Decision) {
	t.Helper()
	if got.Kind != want.Kind.String() {
		t.Fatalf("%s decision %d: kind %s vs local %s", label, i, got.Kind, want.Kind)
	}
	if got.AffectedPoints != want.AffectedPoints {
		t.Fatalf("%s decision %d: affected %d vs local %d", label, i, got.AffectedPoints, want.AffectedPoints)
	}
	if !slices.Equal(got.ChangedPoints, want.ChangedPoints) {
		t.Fatalf("%s decision %d: changed %v vs local %v", label, i, got.ChangedPoints, want.ChangedPoints)
	}
	if !slices.Equal(got.Components, want.Components) {
		t.Fatalf("%s decision %d: components %v vs local %v", label, i, got.Components, want.Components)
	}
	if got.ImplChange != want.ImplementationChange {
		t.Fatalf("%s decision %d: impl change %q vs local %q", label, i, got.ImplChange, want.ImplementationChange)
	}
}

func sameOutcome(t *testing.T, label string, got wire.Stats, want core.Stats) {
	t.Helper()
	if got.Updates != want.Updates || got.Forwarded != want.Forwarded ||
		got.Recompilations != want.Recompilations || got.Rejected != want.Rejected {
		t.Fatalf("%s: outcome counters diverged: server %+v vs local %+v", label, got, want)
	}
	if got.Points != want.Points || got.Batches != want.Batches ||
		got.BatchedUpdates != want.BatchedUpdates || got.Coalesced != want.Coalesced {
		t.Fatalf("%s: engine counters diverged: server %+v vs local %+v", label, got, want)
	}
}

// sameCache compares cache traffic counter-for-counter. Only valid for
// uninterrupted runs with mirrored chunking: restoring a snapshot
// installs the warm cache but resets the hit/miss counters (the core
// cache suite pins that), so cross-restart comparisons skip this.
func sameCache(t *testing.T, label string, got wire.Stats, want core.Stats) {
	t.Helper()
	if got.CacheHits != want.CacheHits || got.CacheMisses != want.CacheMisses {
		t.Fatalf("%s: cache counters diverged: server hits=%d misses=%d vs local hits=%d misses=%d",
			label, got.CacheHits, got.CacheMisses, want.CacheHits, want.CacheMisses)
	}
}

// normalizeAudit strips the fields that legitimately differ between two
// engines answering the same stream (wall time, pool size, which worker
// proved a point) — same contract as the core equivalence suites.
func normalizeAudit(recs []obs.AuditRecord) []obs.AuditRecord {
	out := make([]obs.AuditRecord, len(recs))
	for i, r := range recs {
		r.ElapsedNS = 0
		r.Workers = 0
		r.Changes = slices.Clone(r.Changes)
		for j := range r.Changes {
			r.Changes[j].Worker = 0
		}
		out[i] = r
	}
	return out
}

func sameAuditRecords(t *testing.T, label string, got, want []obs.AuditRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d audit records vs local %d", label, len(got), len(want))
	}
	ng, nw := normalizeAudit(got), normalizeAudit(want)
	for i := range ng {
		if ng[i].Seq != nw[i].Seq || ng[i].Batch != nw[i].Batch ||
			ng[i].Target != nw[i].Target || ng[i].Update != nw[i].Update ||
			ng[i].Decision != nw[i].Decision || ng[i].Affected != nw[i].Affected ||
			!slices.Equal(ng[i].Changes, nw[i].Changes) ||
			!slices.Equal(ng[i].Components, nw[i].Components) ||
			ng[i].ImplChange != nw[i].ImplChange || ng[i].Err != nw[i].Err {
			t.Fatalf("%s: audit record %d diverged:\n  server %+v\nvs local %+v", label, i, ng[i], nw[i])
		}
	}
}

// TestDaemonRoundTripWithWarmRestart is the acceptance round trip:
// start flayd, load a catalog program, drive a 1000-update fuzz.Stream
// through the client as a mix of single and batched writes, and require
// the hosted session to match a local in-process engine decision for
// decision, stat for stat, audit record for audit record — then kill
// the daemon mid-stream, warm-restart from its shutdown snapshot, and
// require the resumed session to finish the stream with audit sequence
// continuity and an identical end state.
func TestDaemonRoundTripWithWarmRestart(t *testing.T) {
	const (
		prog      = "scion"
		streamLen = 1000
		seed      = 42
	)
	dir := t.TempDir()
	d := startDaemon(t, server.Config{SnapshotDir: dir, AuditLimit: -1})

	info, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "acceptance", Catalog: prog})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	if info.Stats.Points == 0 || len(info.Tables) == 0 {
		t.Fatalf("implausible session info: %+v", info)
	}

	local, localTrail := localEngine(t, prog)
	stream, err := fuzz.New(local.An, seed).Stream(streamLen)
	if err != nil {
		t.Fatal(err)
	}
	chunks := mixedChunks(stream)
	half := len(chunks) / 2

	serve := func(ch chunk, idx int) {
		t.Helper()
		resp, err := d.c.Write("acceptance", ch.mode, ch.updates)
		if err != nil {
			t.Fatalf("chunk %d: %v", idx, err)
		}
		if len(resp.Decisions) != len(ch.updates) {
			t.Fatalf("chunk %d: %d decisions for %d updates", idx, len(resp.Decisions), len(ch.updates))
		}
		want := applyLocal(local, ch)
		for i := range want {
			sameWireDecision(t, "chunk", idx, resp.Decisions[i], want[i])
		}
	}

	for i, ch := range chunks[:half] {
		serve(ch, i)
	}

	// Mid-stream, before the restart, the hosted session must match the
	// local engine on every counter — cache traffic included, since both
	// engines are uninterrupted and identically chunked so far.
	preStats, err := d.c.Stats("acceptance")
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "pre-restart", preStats, local.Statistics())
	sameCache(t, "pre-restart", preStats, local.Statistics())

	// Fetch what the first daemon saw, then kill it gracefully: drains,
	// snapshots the dirty session, and the process would exit 0.
	preAudit, err := d.c.Audit("acceptance", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "acceptance.snap")); err != nil {
		t.Fatalf("shutdown did not snapshot the dirty session: %v", err)
	}
	d.ts.Close()

	// Warm restart: a fresh daemon over the same snapshot directory
	// resumes the session.
	d2 := startDaemon(t, server.Config{SnapshotDir: dir, AuditLimit: -1})
	info2, err := d2.c.Session("acceptance")
	if err != nil {
		t.Fatalf("restored session missing: %v", err)
	}
	if !info2.Restored {
		t.Fatal("restored session not marked Restored")
	}
	d = d2

	for i, ch := range chunks[half:] {
		serve(ch, half+i)
	}

	// End state: specialized source byte-identical to the local engine.
	src, err := d.c.Source("acceptance", "specialized")
	if err != nil {
		t.Fatal(err)
	}
	if want := ast.Print(local.SpecializedProgram()); src != want {
		t.Fatalf("specialized source diverged after %d updates:\n--- daemon ---\n%.400s\n--- local ---\n%.400s", streamLen, src, want)
	}

	// Stats: full engine-counter equality with the uninterrupted local
	// run (outcomes, batch accounting, cache traffic).
	st, err := d.c.Stats("acceptance")
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "acceptance", st, local.Statistics())

	// Audit: pre-shutdown records plus post-restart records must equal
	// the local engine's single uninterrupted trail, with continuous
	// sequence numbers across the restart.
	postAudit, err := d.c.Audit("acceptance", 0)
	if err != nil {
		t.Fatal(err)
	}
	combined := append(slices.Clone(preAudit.Records), postAudit.Records...)
	sameAuditRecords(t, "acceptance", combined, localTrail.Records())
	for i, r := range combined {
		if r.Seq != i+1 {
			t.Fatalf("audit record %d has seq %d: sequence not continuous across restart", i, r.Seq)
		}
	}

	// The metrics endpoint must cover the engine under this traffic.
	text, err := d.c.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flay_core_update_ns{quantile=\"0.99\"}",
		"# TYPE flay_core_update_ns summary",
		"flay_core_forwarded", "flay_core_recompiled",
		"flay_core_cache_hits", "flay_core_cache_misses",
		"flay_server_write_ns_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSessionFromSnapshotBytes round-trips warm state through the API
// itself: snapshot a session over HTTP, delete it, recreate it from the
// returned bytes, and continue streaming with full equivalence.
func TestSessionFromSnapshotBytes(t *testing.T) {
	d := startDaemon(t, server.Config{AuditLimit: -1})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "s1", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 7).Stream(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stream[:100] {
		if _, err := d.c.Write("s1", wire.ModeSingle, []*controlplane.Update{u}); err != nil {
			t.Fatal(err)
		}
		local.Apply(u)
	}
	snap, err := d.c.Snapshot("s1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bytes == 0 || len(snap.Snapshot) != snap.Bytes {
		t.Fatalf("bad snapshot response: bytes=%d len=%d", snap.Bytes, len(snap.Snapshot))
	}
	if err := d.c.DeleteSession("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Session("s1"); !client.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("deleted session still answers: %v", err)
	}
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "s1", Snapshot: snap.Snapshot}); err != nil {
		t.Fatalf("recreate from snapshot bytes: %v", err)
	}
	for _, u := range stream[100:] {
		resp, err := d.c.Write("s1", wire.ModeSingle, []*controlplane.Update{u})
		if err != nil {
			t.Fatal(err)
		}
		sameWireDecision(t, "resumed", 0, resp.Decisions[0], local.Apply(u))
	}
	st, err := d.c.Stats("s1")
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "snapshot-bytes", st, local.Statistics())
}

// TestCoalescingFunnelsConcurrentWriters drives concurrent single-update
// writers through a wide coalescing window and asserts (a) the requests
// really were funneled into shared ApplyBatch transitions and (b) the
// end state is identical to a local engine applying the same updates —
// chunking-independence of the batch engine, now over HTTP.
func TestCoalescingFunnelsConcurrentWriters(t *testing.T) {
	d := startDaemon(t, server.Config{CoalesceWindow: 250 * time.Millisecond})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "co", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	table := local.An.TableOrder[0]
	updates, err := fuzz.New(local.An, 9).Updates(table, 40)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	per := len(updates) / writers
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	coalesced := make(chan bool, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(mine []*controlplane.Update) {
			defer wg.Done()
			for _, u := range mine {
				resp, _, err := d.c.WriteRetry("co", wire.ModeSingle, []*controlplane.Update{u}, 10, 10*time.Millisecond)
				if err != nil {
					errs <- err
					return
				}
				coalesced <- resp.Coalesced
			}
		}(updates[w*per : (w+1)*per])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(coalesced)
	sawCoalesced := false
	for c := range coalesced {
		sawCoalesced = sawCoalesced || c
	}
	if !sawCoalesced {
		t.Fatal("no request reported coalescing despite 8 concurrent writers and a 250ms window")
	}

	// End state must equal the local engine applying the same updates
	// (insertion order across writers is irrelevant: unique priorities).
	local.ApplyBatch(updates)
	src, err := d.c.Source("co", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := ast.Print(local.SpecializedProgram()); src != want {
		t.Fatalf("coalesced end state diverged from local batch:\n%.400s\nvs\n%.400s", src, want)
	}
	st, err := d.c.Stats("co")
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != len(updates) {
		t.Fatalf("server saw %d updates, sent %d", st.Updates, len(updates))
	}
	if st.Coalesced == 0 {
		t.Fatal("engine Coalesced counter is zero after coalesced batches")
	}
}

// TestDrainRejectsNewWrites: after Shutdown the daemon answers health
// as draining and refuses new writes and sessions without crashing.
func TestDrainRejectsNewWrites(t *testing.T) {
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "s", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 3).Stream(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	h, err := d.c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health after shutdown: %q, want draining", h.Status)
	}
	if _, err := d.c.Write("s", "", stream[:1]); !client.IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("write after shutdown: %v, want 503", err)
	}
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "s2", Catalog: "fig3"}); err == nil {
		t.Fatal("session created while draining")
	}
	// Reads still work during drain.
	if _, err := d.c.Stats("s"); err != nil {
		t.Fatalf("stats during drain: %v", err)
	}
}

// TestShutdownSkipsCleanSessions: a restored, untouched session is not
// re-snapshotted on the next shutdown.
func TestShutdownSkipsCleanSessions(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, server.Config{SnapshotDir: dir})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "clean", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	if err := d.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	d.ts.Close()

	met := obs.NewRegistry()
	d2 := startDaemon(t, server.Config{SnapshotDir: dir, Metrics: met})
	if n := met.Counter("server.sessions_restored").Value(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	if err := d2.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if n := met.Counter("server.snapshots_written").Value(); n != 0 {
		t.Fatalf("clean session was re-snapshotted %d times", n)
	}
}

// TestAPIErrors pins the HTTP error surface: invalid bodies, names,
// catalogs, duplicate sessions, unknown sessions and bad queries.
func TestAPIErrors(t *testing.T) {
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "dup", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		status int
		run    func() error
	}{
		{"duplicate session", http.StatusConflict, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "dup", Catalog: "fig3"})
			return err
		}},
		{"unknown catalog", http.StatusUnprocessableEntity, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "x", Catalog: "nope"})
			return err
		}},
		{"bad source", http.StatusUnprocessableEntity, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "x", Source: "not p4"})
			return err
		}},
		{"bad name", http.StatusBadRequest, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "../evil", Catalog: "fig3"})
			return err
		}},
		{"no program", http.StatusBadRequest, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "x"})
			return err
		}},
		{"future version", http.StatusBadRequest, func() error {
			_, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "x", Catalog: "fig3", Version: wire.Version + 1})
			return err
		}},
		{"unknown session write", http.StatusNotFound, func() error {
			_, err := d.c.Write("ghost", "", []*controlplane.Update{{Kind: controlplane.FillRegister}})
			return err
		}},
		{"unknown session stats", http.StatusNotFound, func() error {
			_, err := d.c.Stats("ghost")
			return err
		}},
		{"delete unknown", http.StatusNotFound, func() error { return d.c.DeleteSession("ghost") }},
		{"bad source which", http.StatusBadRequest, func() error {
			_, err := d.c.Source("dup", "annotated")
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); !client.IsStatus(err, c.status) {
			t.Errorf("%s: got %v, want HTTP %d", c.name, err, c.status)
		}
	}

	// Raw malformed bodies (the client can't produce these).
	for _, body := range []string{`{"updates":[],"bogus":1}`, `{"updates":[`, `[]`} {
		resp, err := http.Post(d.ts.URL+"/v1/sessions/dup/updates", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	// Oversized body.
	big := strings.NewReader(`{"updates":[` + strings.Repeat(`{"kind":"insert"},`, 100000) + `{}]}`)
	d2 := startDaemon(t, server.Config{MaxBody: 1024})
	if _, err := d2.c.CreateSession(wire.CreateSessionRequest{Name: "dup", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d2.ts.URL+"/v1/sessions/dup/updates", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
}

// TestAuditSincePagination: the ?since cursor returns exactly the tail.
func TestAuditSincePagination(t *testing.T) {
	d := startDaemon(t, server.Config{AuditLimit: -1})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "a", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 5).Stream(30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Write("a", wire.ModeSingle, stream); err != nil {
		t.Fatal(err)
	}
	all, err := d.c.Audit("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Records) != 30 || all.Total != 30 {
		t.Fatalf("got %d records (total %d), want 30", len(all.Records), all.Total)
	}
	tail, err := d.c.Audit("a", 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Records) != 5 || tail.Records[0].Seq != 26 {
		t.Fatalf("since=25: got %d records starting at seq %d", len(tail.Records), tail.Records[0].Seq)
	}
}

// TestMetricsServedUnderTraffic polls /metrics concurrently with a
// write stream and requires every poll to be a valid exposition
// carrying the engine's update-latency summary.
func TestMetricsServedUnderTraffic(t *testing.T) {
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "m", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "fig3")
	stream, err := fuzz.New(local.An, 13).Stream(120)
	if err != nil {
		t.Fatal(err)
	}
	stopPoll := make(chan struct{})
	pollErr := make(chan error, 1)
	typeLine := regexp.MustCompile(`(?m)^# TYPE flay_core_update_ns summary$`)
	go func() {
		defer close(pollErr)
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			text, err := d.c.MetricsText()
			if err != nil {
				pollErr <- err
				return
			}
			if !typeLine.MatchString(text) {
				pollErr <- &client.APIError{Status: 200, Msg: "exposition missing update_ns summary"}
				return
			}
		}
	}()
	for i := 0; i < len(stream); i += 8 {
		if _, err := d.c.Write("m", wire.ModeBatch, stream[i:min(i+8, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}
	close(stopPoll)
	if err := <-pollErr; err != nil {
		t.Fatal(err)
	}
	snap, err := d.c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["core.update_ns"].Count == 0 {
		t.Fatal("JSON metrics missing core.update_ns samples")
	}
	if snap.Counters["server.write_updates"] != int64(len(stream)) {
		t.Fatalf("server.write_updates = %d, want %d", snap.Counters["server.write_updates"], len(stream))
	}
}

// TestSessionInfoEntriesAndRuntimeGauges: session info reports per-table
// live entry counts — the wire-level hook flayload and flaysoak use to
// verify churn steady-state invariants — and a metrics scrape refreshes
// the process-health gauges the soak harness watches for flat memory.
func TestSessionInfoEntriesAndRuntimeGauges(t *testing.T) {
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "e", Catalog: "nat44"}); err != nil {
		t.Fatal(err)
	}
	p, err := progs.ByName("nat44")
	if err != nil {
		t.Fatal(err)
	}
	local, _ := localEngine(t, "nat44")
	cs, err := fuzz.Churn(local.An, fuzz.ChurnSpec{
		Kind: fuzz.Diurnal, Table: p.BurstTable, Updates: 48, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cs.Batches() {
		resp, err := d.c.Write("e", wire.ModeBatch, b)
		if err != nil {
			t.Fatal(err)
		}
		for i, dec := range resp.Decisions {
			if dec.Kind == "rejected" {
				t.Fatalf("churn update %d rejected: %s", i, dec.Error)
			}
		}
	}
	info, err := d.c.Session("e")
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries == nil {
		t.Fatal("session info has no entries map")
	}
	if got := info.Entries[p.BurstTable]; got != cs.WantLive {
		t.Fatalf("entries[%s] = %d over the wire, churn invariant wants %d", p.BurstTable, got, cs.WantLive)
	}
	if len(info.Entries) != len(info.Tables) {
		t.Fatalf("entries map covers %d tables, session has %d", len(info.Entries), len(info.Tables))
	}
	snap, err := d.c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"server.heap_alloc_bytes", "server.heap_sys_bytes", "server.heap_objects", "server.goroutines"} {
		if snap.Gauges[g] <= 0 {
			t.Fatalf("gauge %s = %d after a scrape, want > 0", g, snap.Gauges[g])
		}
	}
}

// TestExplainEndpoint drives the decision-diagram introspection API
// over the wire: a hosted session and a local engine ingest the same
// update stream, then every point of one table is explained through
// GET /v1/sessions/{name}/explain and cross-checked against the local
// engine's Explain. Also pins the query-parameter contract (point-only
// lookup, membership check, and the no-filter error).
func TestExplainEndpoint(t *testing.T) {
	const (
		prog = "fig3"
		seed = 7
	)
	d := startDaemon(t, server.Config{})
	info, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "xp", Catalog: prog})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	if len(info.Tables) == 0 {
		t.Fatal("session reports no tables")
	}

	local, _ := localEngine(t, prog)
	stream, err := fuzz.New(local.An, seed).Stream(200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Write("xp", wire.ModeBatch, stream); err != nil {
		t.Fatalf("write: %v", err)
	}
	local.ApplyBatch(stream)

	table := info.Tables[0]
	resp, err := d.c.Explain("xp", table, -1)
	if err != nil {
		t.Fatalf("explain table %q: %v", table, err)
	}
	if resp.Table != table {
		t.Fatalf("response echoes table %q, want %q", resp.Table, table)
	}
	if len(resp.Points) == 0 {
		t.Fatalf("table %q explained zero points", table)
	}
	for _, ex := range resp.Points {
		if ex.Verdict == "" || ex.Query == "" || ex.Kind == "" {
			t.Fatalf("point %d: incomplete explanation %+v", ex.Point, ex)
		}
		if ex.Source != "dd" && ex.Source != "solver" {
			t.Fatalf("point %d: source %q, want dd or solver", ex.Point, ex.Source)
		}
		want, err := local.Explain(ex.Point)
		if err != nil {
			t.Fatalf("local explain %d: %v", ex.Point, err)
		}
		if ex.Verdict != want.Verdict || ex.Query != want.Query {
			t.Fatalf("point %d: wire verdict %s/%s, local %s/%s",
				ex.Point, ex.Query, ex.Verdict, want.Query, want.Verdict)
		}
		// Diagram-backed explanations must carry path evidence when
		// the point is live; the local engine agrees on the source.
		if ex.Source == "dd" && ex.Verdict == "live" && len(ex.Steps) == 0 && len(ex.Witness) == 0 {
			t.Fatalf("point %d: dd-sourced live verdict with no steps or witness", ex.Point)
		}
	}

	// Point-only addressing returns exactly the requested record.
	pt := resp.Points[0].Point
	one, err := d.c.Explain("xp", "", pt)
	if err != nil {
		t.Fatalf("explain point %d: %v", pt, err)
	}
	if len(one.Points) != 1 || one.Points[0].Point != pt {
		t.Fatalf("point query returned %d records (first %+v), want the one point %d",
			len(one.Points), one.Points[0], pt)
	}

	// Contract errors: some filter is mandatory, table names are
	// checked, and table+point enforces membership.
	if _, err := d.c.Explain("xp", "", -1); err == nil {
		t.Fatal("explain with neither filter succeeded")
	}
	if _, err := d.c.Explain("xp", "no-such-table", -1); !client.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown table: %v, want 404", err)
	}
	if _, err := d.c.Explain("xp", table, 1<<30); err == nil {
		t.Fatalf("explain accepted point 2^30 as influenced by %q", table)
	}
}
