// /exec wire round-trip suite: the hosted packet-execution endpoint
// must be observationally identical to a local exec-enabled engine fed
// the same config, and every malformed-packet and wrong-session shape
// must map to the documented status code and flayerr sentinel.
package server_test

import (
	"errors"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/flayerr"
	"repro/internal/progs"
	"repro/internal/server"
	"repro/internal/wire"
)

// execDaemon starts a daemon with one exec-enabled session ("jit") and
// one plain session ("plain"), both on the named catalog program.
func execDaemon(t *testing.T, prog string) *testDaemon {
	t.Helper()
	d := startDaemon(t, server.Config{})
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "jit", Catalog: prog, Exec: true}); err != nil {
		t.Fatalf("creating exec session: %v", err)
	}
	if _, err := d.c.CreateSession(wire.CreateSessionRequest{Name: "plain", Catalog: prog}); err != nil {
		t.Fatalf("creating plain session: %v", err)
	}
	return d
}

// TestExecRoundTrip: packets executed over the wire come back with the
// same verdicts a local exec-enabled engine produces for the same
// program, config, and frames — before and after the representative
// config lands.
func TestExecRoundTrip(t *testing.T) {
	const prog = "nat44"
	d := execDaemon(t, prog)

	p, err := progs.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	local, err := p.LoadWith(core.Options{Exec: true})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(11))
	packets := make([][]byte, 64)
	ports := make([]uint16, len(packets))
	for i := range packets {
		packets[i] = make([]byte, r.Intn(96))
		r.Read(packets[i])
		ports[i] = uint16(r.Intn(64))
	}

	check := func(stage string) {
		t.Helper()
		resp, err := d.c.ExecBytes("jit", packets, ports)
		if err != nil {
			t.Fatalf("%s: ExecBytes: %v", stage, err)
		}
		if len(resp.Results) != len(packets) {
			t.Fatalf("%s: %d results for %d packets", stage, len(resp.Results), len(packets))
		}
		want, err := local.ExecBatch(packets, ports)
		if err != nil {
			t.Fatalf("%s: local ExecBatch: %v", stage, err)
		}
		for i, got := range resp.Results {
			w := wire.FromExecResult(want[i])
			same := got.Dropped == w.Dropped && got.ParserRejected == w.ParserRejected &&
				got.EgressPort == w.EgressPort && got.McastGrp == w.McastGrp &&
				(got.Emitted == nil) == (w.Emitted == nil) &&
				(got.Emitted == nil || *got.Emitted == *w.Emitted)
			if !same {
				t.Fatalf("%s: packet %d: wire %+v vs local %+v", stage, i, got, w)
			}
		}
	}

	check("initial config")

	updates := p.Representative()
	if _, err := d.c.Write("jit", wire.ModeBatch, updates); err != nil {
		t.Fatalf("representative write: %v", err)
	}
	local.ApplyBatch(updates)
	check("representative config")

	// The response's epoch correlates with the engine's published state:
	// after verdict-changing writes it must have advanced past the
	// initial one.
	resp, err := d.c.ExecBytes("jit", packets[:1], ports[:1])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch == 0 {
		t.Fatalf("epoch not reported after %d updates", len(updates))
	}
}

// TestExecErrors: every /exec error path maps to the documented status
// code, and the wire code unwraps to the matching flayerr sentinel
// through the client.
func TestExecErrors(t *testing.T) {
	d := execDaemon(t, "fig3")
	ok := []wire.Packet{{W: 1, Hex: "a0"}}

	cases := []struct {
		name     string
		status   int
		sentinel error
		run      func() error
	}{
		{"unknown session", http.StatusNotFound, nil, func() error {
			_, err := d.c.Exec("ghost", ok)
			return err
		}},
		{"exec disabled", http.StatusConflict, flayerr.ErrExecDisabled, func() error {
			_, err := d.c.Exec("plain", ok)
			return err
		}},
		{"no packets", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", nil)
			return err
		}},
		{"too many packets", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", make([]wire.Packet, wire.MaxExecPackets+1))
			return err
		}},
		{"negative length", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", []wire.Packet{{W: -1}})
			return err
		}},
		{"oversized packet", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", []wire.Packet{{W: wire.MaxPacketBytes + 1,
				Hex: strings.Repeat("00", wire.MaxPacketBytes+1)}})
			return err
		}},
		{"hex length mismatch", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", []wire.Packet{{W: 2, Hex: "abc"}})
			return err
		}},
		{"bad hex digit", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", []wire.Packet{ok[0], {W: 1, Hex: "zz"}})
			return err
		}},
		{"uppercase hex", http.StatusBadRequest, flayerr.ErrBadPacket, func() error {
			_, err := d.c.Exec("jit", []wire.Packet{{W: 1, Hex: "A0"}})
			return err
		}},
	}
	for _, c := range cases {
		err := c.run()
		if !client.IsStatus(err, c.status) {
			t.Errorf("%s: got %v, want HTTP %d", c.name, err, c.status)
			continue
		}
		if c.sentinel != nil && !errors.Is(err, c.sentinel) {
			t.Errorf("%s: %v does not unwrap to %v", c.name, err, c.sentinel)
		}
	}

	// Raw malformed bodies (the client can't produce these): unknown
	// field, truncated JSON, wrong top-level shape, future version.
	for _, body := range []string{
		`{"packets":[],"bogus":1}`,
		`{"packets":[`,
		`[]`,
		`{"version":99,"packets":[{"w":0,"hex":""}]}`,
	} {
		resp, err := http.Post(d.ts.URL+"/v1/sessions/jit/exec", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	// Oversized body → 413, same as the write path.
	d2 := startDaemon(t, server.Config{MaxBody: 1024})
	if _, err := d2.c.CreateSession(wire.CreateSessionRequest{Name: "jit", Catalog: "fig3", Exec: true}); err != nil {
		t.Fatal(err)
	}
	big := strings.NewReader(`{"packets":[` + strings.Repeat(`{"w":0,"hex":""},`, 4096) + `{}]}`)
	resp, err := http.Post(d2.ts.URL+"/v1/sessions/jit/exec", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
}
