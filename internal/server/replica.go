// Replication: snapshot-shipping failover between an active shard and
// its standby.
//
// The active side is the shipper. Every session is base-shipped (full
// warm-state snapshot) when it is created or restored, and after that
// every applied write round is forwarded — synchronously, before the
// round's requests are acknowledged — so an acknowledged write is
// always on the standby. The dispatcher holds the session's roundMu
// across apply+seq+ship, and the base shipper snapshots under the same
// mutex, so a base's Seq covers exactly the rounds applied before it:
// the standby can never double-apply a round that a snapshot already
// contains.
//
// The standby side hosts live pipelines (hot standby): bases restore
// into a running session, rounds apply with the active's exact
// single/batch semantics. The engine is deterministic, so the standby's
// state, audit sequence and decision stream track the active's; a
// promote is a flag flip, not a rebuild — warm restart in milliseconds.
// A round whose Seq does not extend the standby's state (or names an
// unknown session) answers 409 code "replica_gap", and the active
// catches up by re-shipping a base. A round at or below the standby's
// Seq is a duplicate re-send and acks as replayed.
//
// Caveat, documented rather than papered over: a deadline-degraded
// round can diverge (degradation depends on wall-clock budget, which
// the standby does not share). The replica channel therefore ships
// rounds without deadlines; a degraded active round may yield precise
// standby state. State remains conservative-correct, but byte-identical
// audit trails are only guaranteed for undegraded workloads.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	goflay "repro"
	"repro/internal/controlplane"
	"repro/internal/obs"
	"repro/internal/wire"
)

// shipper forwards base snapshots and write rounds to the standby.
type shipper struct {
	base string // standby base URL, e.g. http://127.0.0.1:7071
	hc   *http.Client
	met  *obs.Registry
	logf func(format string, args ...any)
}

func newShipper(base string, hc *http.Client, met *obs.Registry, logf func(string, ...any)) *shipper {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &shipper{base: base, hc: hc, met: met, logf: logf}
}

// shipBase snapshots the session and ships it as a new base. Safe to
// call concurrently with the dispatcher: the snapshot and the covered
// sequence number are read under the session's roundMu.
func (sh *shipper) shipBase(sess *Session) {
	sess.roundMu.Lock()
	defer sess.roundMu.Unlock()
	sh.shipBaseLocked(sess)
}

// shipBaseLocked is shipBase for callers already holding roundMu (the
// dispatcher's gap catch-up path).
func (sh *shipper) shipBaseLocked(sess *Session) {
	data, err := sess.pipe.Snapshot()
	if err != nil {
		sh.fail("snapshot for base ship of %s: %v", sess.name, err)
		return
	}
	status, err := sh.post("/v1/replica/sessions", &wire.ReplicaSession{
		Version:  wire.Version,
		Name:     sess.name,
		Program:  sess.program,
		Seq:      sess.repSeq,
		Snapshot: data,
		Exec:     sess.exec,
	})
	if err != nil || status/100 != 2 {
		sh.fail("base ship of %s: status %d err %v", sess.name, status, err)
		return
	}
	sh.met.Counter("server.ship_bases").Inc()
}

// shipRound forwards one applied round. Called by the dispatcher under
// roundMu, after the round was applied and seq incremented, before any
// request is acknowledged. A gap answer re-ships a base, which subsumes
// the round (it was already applied locally).
func (sh *shipper) shipRound(sess *Session, seq uint64, batch bool, reqs []*writeReq) {
	start := time.Now()
	var updates []*controlplane.Update
	segs := make([]wire.ReplicaSeg, len(reqs))
	for i, r := range reqs {
		updates = append(updates, r.updates...)
		segs[i] = wire.ReplicaSeg{ReqID: r.reqID, N: len(r.updates)}
	}
	round := &wire.ReplicaRound{
		Version: wire.Version,
		Seq:     seq,
		Batch:   batch,
		Segs:    segs,
		Updates: wire.FromUpdates(updates),
	}
	status, err := sh.post("/v1/replica/sessions/"+sess.name+"/rounds", round)
	switch {
	case err == nil && status/100 == 2:
		sh.met.Counter("server.ship_rounds").Inc()
		sh.met.Histogram("server.ship_ns").ObserveDuration(time.Since(start))
	case err == nil && status == http.StatusConflict:
		// Gap: the standby restarted or missed rounds. The round is in
		// local state already, so a fresh base covers it.
		sh.met.Counter("server.ship_gaps").Inc()
		sh.shipBaseLocked(sess)
	default:
		sh.fail("round %d ship of %s: status %d err %v", seq, sess.name, status, err)
	}
}

func (sh *shipper) fail(format string, args ...any) {
	sh.met.Counter("server.ship_errors").Inc()
	sh.logf("server: replication: "+format, args...)
}

func (sh *shipper) post(path string, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := sh.hc.Post(sh.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}

// --- standby handlers ---

// handleReplicaSession absorbs a base snapshot: the session is restored
// into a live pipeline, superseding any previous incarnation.
func (s *Server) handleReplicaSession(w http.ResponseWriter, r *http.Request) {
	if !s.standby.Load() {
		s.errorf(w, http.StatusConflict, "not a standby")
		return
	}
	var req wire.ReplicaSession
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !nameRE.MatchString(req.Name) {
		s.errorf(w, http.StatusBadRequest, "invalid session name %q (want %s)", req.Name, nameRE)
		return
	}
	trail := obs.NewTrail(s.cfg.AuditLimit)
	opts := []goflay.Option{goflay.WithMetrics(s.met), goflay.WithAudit(trail)}
	if req.Exec {
		opts = append(opts, goflay.WithExec())
	}
	pipe, err := goflay.Restore(req.Snapshot, opts...)
	if err != nil {
		s.errorErr(w, http.StatusUnprocessableEntity, fmt.Errorf("restoring base: %w", err))
		return
	}
	sess := s.newSession(req.Name, req.Program, pipe, trail, true)
	sess.exec = req.Exec
	sess.repSeq = req.Seq
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		sess.close()
		s.errorf(w, http.StatusServiceUnavailable, "draining")
		return
	}
	old := s.sessions[req.Name]
	s.sessions[req.Name] = sess
	s.met.Gauge("server.sessions").Set(int64(len(s.sessions)))
	s.mu.Unlock()
	if old != nil {
		old.close()
	}
	s.met.Counter("server.replica_bases").Inc()
	s.cfg.Logf("server: replica base %s at seq %d (%d updates deep)", req.Name, req.Seq, pipe.Statistics().Updates)
	writeJSON(w, http.StatusCreated, s.info(sess))
}

// handleReplicaRound applies one forwarded round to the standby's live
// pipeline, preserving the active's single/batch semantics and seeding
// the idempotency cache so retried writes stay exactly-once across a
// failover.
func (s *Server) handleReplicaRound(w http.ResponseWriter, r *http.Request) {
	if !s.standby.Load() {
		s.errorf(w, http.StatusConflict, "not a standby")
		return
	}
	name := r.PathValue("name")
	sess, ok := s.session(name)
	if !ok {
		s.replicaGap(w, fmt.Sprintf("no session %q", name))
		return
	}
	var req wire.ReplicaRound
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	updates := make([]*controlplane.Update, len(req.Updates))
	for i := range req.Updates {
		u, err := wire.ToUpdate(&req.Updates[i])
		if err != nil {
			s.errorf(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		updates[i] = u
	}
	sess.roundMu.Lock()
	defer sess.roundMu.Unlock()
	switch {
	case req.Seq <= sess.repSeq:
		// A re-sent round (the active retried after a partial failure);
		// its state is already absorbed.
		writeJSON(w, http.StatusOK, wire.WriteResponse{Replayed: true})
		return
	case req.Seq != sess.repSeq+1:
		s.replicaGap(w, fmt.Sprintf("round seq %d does not extend %d", req.Seq, sess.repSeq))
		return
	}
	var ds []*goflay.Decision
	if req.Batch {
		ds = sess.pipe.ApplyBatchCtx(context.Background(), updates)
	} else {
		ds = sess.pipe.ApplyAllCtx(context.Background(), updates)
	}
	sess.repSeq = req.Seq
	coalesced := len(req.Segs) > 1
	off := 0
	for _, seg := range req.Segs {
		slice := ds[off : off+seg.N]
		off += seg.N
		if seg.ReqID != "" {
			sess.dedupPut(seg.ReqID, cachedWrite{decisions: wireDecisions(slice), coalesced: coalesced})
		}
	}
	s.met.Counter("server.replica_rounds").Inc()
	writeJSON(w, http.StatusOK, wire.WriteResponse{})
}

// handleReplicaPromote flips the standby live (idempotent).
func (s *Server) handleReplicaPromote(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.ReplicaPromoteResponse{Sessions: s.Promote()})
}

// replicaGap is the standby's "re-ship a base" answer.
func (s *Server) replicaGap(w http.ResponseWriter, msg string) {
	s.met.Counter("server.replica_gaps").Inc()
	writeJSON(w, http.StatusConflict, wire.ErrorResponse{Error: msg, Code: wire.CodeReplicaGap})
}
