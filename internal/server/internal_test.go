// White-box tests for the session dispatcher's concurrency edges.
// Timing-sensitive states (a full queue, shutdown racing a reply) are
// constructed directly instead of provoked with sleeps, so the suite is
// deterministic under -race.
package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	goflay "repro"
	"repro/internal/obs"
)

// jammedSession builds a Session whose dispatcher is not running, with
// its bounded queue already at capacity — the backpressure state, held
// still so tests can poke at it.
func jammedSession(srv *Server, depth int) *Session {
	sess := &Session{
		name:  "jam",
		srv:   srv,
		queue: make(chan *writeReq, depth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		sess.queue <- &writeReq{}
	}
	return sess
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Logf = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestSubmitBackpressure: a full queue rejects the write immediately
// with ErrQueueFull and counts it, instead of blocking the handler.
func TestSubmitBackpressure(t *testing.T) {
	srv := newTestServer(t, Config{QueueDepth: 2})
	sess := jammedSession(srv, 2)
	if err := sess.submit(&writeReq{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit on full queue: %v, want ErrQueueFull", err)
	}
	if n := srv.met.Counter("server.queue_full").Value(); n != 1 {
		t.Fatalf("server.queue_full = %d, want 1", n)
	}
}

// TestSubmitAfterClose: a stopped session refuses writes with
// ErrSessionClosed even if its queue has room.
func TestSubmitAfterClose(t *testing.T) {
	srv := newTestServer(t, Config{})
	sess := jammedSession(srv, 4)
	<-sess.queue // leave room, so only the stop check can reject
	<-sess.queue
	close(sess.stop)
	if err := sess.submit(&writeReq{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("submit after close: %v, want ErrSessionClosed", err)
	}
}

// TestWaitPrefersServedResult: when shutdown and a served reply race,
// wait must hand back the reply — an accepted, applied update's
// decisions are never dropped on the floor.
func TestWaitPrefersServedResult(t *testing.T) {
	srv := newTestServer(t, Config{})
	sess := jammedSession(srv, 1)
	req := &writeReq{resp: make(chan writeResult, 1)}
	req.resp <- writeResult{coalesced: true}
	close(sess.done) // dispatcher exited after serving req
	res, err := sess.wait(req)
	if err != nil {
		t.Fatalf("wait with buffered result: %v", err)
	}
	if !res.coalesced {
		t.Fatal("wait returned the wrong result")
	}
}

// TestWaitShutdownWithoutResult: if the dispatcher exits without
// serving the request, wait reports ErrSessionClosed.
func TestWaitShutdownWithoutResult(t *testing.T) {
	srv := newTestServer(t, Config{})
	sess := jammedSession(srv, 1)
	req := &writeReq{resp: make(chan writeResult, 1)}
	close(sess.done)
	if _, err := sess.wait(req); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("wait after shutdown: %v, want ErrSessionClosed", err)
	}
}

// TestQueueFullMapsTo429: the HTTP layer translates ErrQueueFull into
// 429 Too Many Requests. The jammed session is injected into the
// registry so the test never depends on winning a race against the
// dispatcher.
func TestQueueFullMapsTo429(t *testing.T) {
	srv := newTestServer(t, Config{QueueDepth: 1})
	sess := jammedSession(srv, 1)
	srv.mu.Lock()
	srv.sessions[sess.name] = sess
	srv.mu.Unlock()

	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := `{"updates":[{"kind":"fill-register","register":"r","fill":{"w":8,"hex":"00"}}]}`
	resp, err := http.Post(ts.URL+"/v1/sessions/jam/updates", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("write against full queue: HTTP %d, want 429", resp.StatusCode)
	}
}

// TestCloseDrainsAcceptedWrites: every write accepted before close()
// is served during the drain — graceful shutdown loses nothing.
func TestCloseDrainsAcceptedWrites(t *testing.T) {
	srv := newTestServer(t, Config{QueueDepth: 16})
	pipe, err := goflay.OpenCatalog("fig3", goflay.WithMetrics(srv.met))
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.newSession("drain", "fig3", pipe, obs.NewTrail(0), false)

	// Stop the dispatcher's main loop from consuming: hold it inside a
	// serve call by submitting one request and not reading the response
	// until the rest are enqueued. The dispatcher is single-threaded, so
	// the remaining requests stay queued until drain.
	reqs := make([]*writeReq, 8)
	for i := range reqs {
		reqs[i] = &writeReq{resp: make(chan writeResult, 1)}
		if err := sess.submit(reqs[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	sess.close()
	for i, r := range reqs {
		select {
		case res := <-r.resp:
			if res.decisions == nil && len(r.updates) > 0 {
				t.Fatalf("request %d drained without decisions", i)
			}
		default:
			t.Fatalf("request %d was accepted but never served", i)
		}
	}
}

// TestConfigDefaults pins the zero-value Config normalization.
// TestServeCtxEarliestDeadlineWins: a coalesced round's context must
// carry the most impatient member's deadline; a round with no deadlines
// gets a plain background context.
func TestServeCtxEarliestDeadlineWins(t *testing.T) {
	ctx, cancel := serveCtx([]*writeReq{{}, {}})
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("deadline-free round got a context deadline")
	}

	near := time.Now().Add(10 * time.Millisecond)
	far := time.Now().Add(10 * time.Second)
	ctx2, cancel2 := serveCtx([]*writeReq{{deadline: far}, {deadline: near}, {}})
	defer cancel2()
	got, ok := ctx2.Deadline()
	if !ok || !got.Equal(near) {
		t.Fatalf("round deadline = %v (ok=%v), want earliest %v", got, ok, near)
	}
}

// TestPressured: the load-shedding trigger fires at half queue
// occupancy, not before.
func TestPressured(t *testing.T) {
	sess := &Session{queue: make(chan *writeReq, 4)}
	if sess.pressured() {
		t.Fatal("empty queue reported pressure")
	}
	sess.queue <- &writeReq{}
	if sess.pressured() {
		t.Fatal("quarter-full queue reported pressure")
	}
	sess.queue <- &writeReq{}
	if !sess.pressured() {
		t.Fatal("half-full queue did not report pressure")
	}
}

func TestConfigDefaults(t *testing.T) {
	srv := newTestServer(t, Config{})
	if srv.cfg.MaxBatch <= 0 || srv.cfg.QueueDepth <= 0 || srv.cfg.MaxBody <= 0 {
		t.Fatalf("zero config not defaulted: %+v", srv.cfg)
	}
	if srv.cfg.AuditLimit != defaultAuditLimit {
		t.Fatalf("default audit limit = %d, want %d", srv.cfg.AuditLimit, defaultAuditLimit)
	}
	// Negative normalizes to 0 — obs.NewTrail's "keep everything".
	srv2 := newTestServer(t, Config{AuditLimit: -1})
	if srv2.cfg.AuditLimit != 0 {
		t.Fatalf("negative audit limit normalized to %d, want 0", srv2.cfg.AuditLimit)
	}
}
