package wire

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dpexec"
	"repro/internal/flayerr"
)

// TestPacketRoundTrip: FromPacket ∘ ToPacket is the identity on raw
// bytes, for every length up to the cap's neighborhood.
func TestPacketRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 64, 1500, MaxPacketBytes} {
		data := make([]byte, n)
		r.Read(data)
		p := FromPacket(data, uint16(n%512))
		if p.W != n || len(p.Hex) != 2*n || p.Port != uint16(n%512) {
			t.Fatalf("FromPacket(%d bytes) = {w:%d hex:%d port:%d}", n, p.W, len(p.Hex), p.Port)
		}
		got, err := ToPacket(p)
		if err != nil {
			t.Fatalf("ToPacket(%d bytes): %v", n, err)
		}
		if string(got) != string(data) {
			t.Fatalf("round trip of %d bytes diverged", n)
		}
	}
}

// TestToPacketErrors: every malformed packet shape maps to the
// ErrBadPacket sentinel (and through CodeOf to the bad_packet wire
// code), mirroring the error-code round-trip suite.
func TestToPacketErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
	}{
		{"negative-length", Packet{W: -1}},
		{"over-cap", Packet{W: MaxPacketBytes + 1, Hex: strings.Repeat("00", MaxPacketBytes+1)}},
		{"hex-too-short", Packet{W: 4, Hex: "0a0b0c"}},
		{"hex-too-long", Packet{W: 1, Hex: "0a0b"}},
		{"uppercase-hex", Packet{W: 2, Hex: "0A0b"}},
		{"non-hex-digit", Packet{W: 2, Hex: "0g0b"}},
		{"whitespace", Packet{W: 2, Hex: "0a b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ToPacket(tc.p)
			if err == nil {
				t.Fatalf("ToPacket(%+v) accepted malformed packet", tc.p)
			}
			if !errors.Is(err, flayerr.ErrBadPacket) {
				t.Fatalf("err = %v, want errors.Is ErrBadPacket", err)
			}
			if code := CodeOf(err); code != CodeBadPacket {
				t.Fatalf("CodeOf = %q, want %q", code, CodeBadPacket)
			}
		})
	}
}

// TestExecRequestErrors: request-level validation.
func TestExecRequestErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		r := ExecRequest{}
		if _, _, err := r.ToPackets(); !errors.Is(err, flayerr.ErrBadPacket) {
			t.Fatalf("err = %v, want ErrBadPacket", err)
		}
	})
	t.Run("too-many", func(t *testing.T) {
		r := ExecRequest{Packets: make([]Packet, MaxExecPackets+1)}
		if _, _, err := r.ToPackets(); !errors.Is(err, flayerr.ErrBadPacket) {
			t.Fatalf("err = %v, want ErrBadPacket", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		r := ExecRequest{Version: Version + 1, Packets: []Packet{{W: 0}}}
		if _, _, err := r.ToPackets(); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("bad-member", func(t *testing.T) {
		r := ExecRequest{Packets: []Packet{{W: 1, Hex: "ab"}, {W: 2, Hex: "xz"}}}
		_, _, err := r.ToPackets()
		if !errors.Is(err, flayerr.ErrBadPacket) {
			t.Fatalf("err = %v, want ErrBadPacket", err)
		}
		if !strings.Contains(err.Error(), "packet 1") {
			t.Fatalf("error %q does not name the offending packet", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		r := ExecRequest{Packets: []Packet{{W: 2, Hex: "abcd", Port: 7}, {W: 0, Hex: ""}}}
		packets, ports, err := r.ToPackets()
		if err != nil {
			t.Fatal(err)
		}
		if len(packets) != 2 || packets[0][0] != 0xab || ports[0] != 7 || len(packets[1]) != 0 {
			t.Fatalf("unexpected decode: %v %v", packets, ports)
		}
	})
}

// TestFromExecResult: dropped results omit the emitted frame; live
// results carry it in wire form.
func TestFromExecResult(t *testing.T) {
	dropped := FromExecResult(dpexec.Result{Dropped: true, ParserRejected: true})
	if !dropped.Dropped || !dropped.ParserRejected || dropped.Emitted != nil {
		t.Fatalf("dropped result malformed: %+v", dropped)
	}
	live := FromExecResult(dpexec.Result{EgressPort: 3, Emitted: []byte{0xde, 0xad}})
	if live.Dropped || live.Emitted == nil || live.Emitted.Hex != "dead" || live.Emitted.W != 2 {
		t.Fatalf("live result malformed: %+v", live)
	}
	if live.EgressPort != 3 {
		t.Fatalf("egress port lost: %+v", live)
	}
}

// TestExecCodesRoundTrip pins the new codes into the CodeOf/SentinelOf
// bijection next to the existing ones.
func TestExecCodesRoundTrip(t *testing.T) {
	for _, sentinel := range []error{flayerr.ErrExecDisabled, flayerr.ErrBadPacket} {
		code := CodeOf(sentinel)
		if code == "" {
			t.Fatalf("CodeOf(%v) unclassified", sentinel)
		}
		if back := SentinelOf(code); back != sentinel {
			t.Fatalf("SentinelOf(%q) = %v, want %v", code, back, sentinel)
		}
	}
}
