package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/sym"
)

// DefaultMaxBody is the request body cap Decode applies when the caller
// passes max <= 0. Snapshot uploads are the largest legitimate bodies.
const DefaultMaxBody = 32 << 20

// Decoding errors a handler can map to distinct HTTP statuses.
var (
	// ErrTooLarge marks a body over the size cap.
	ErrTooLarge = errors.New("wire: body too large")
	// ErrTrailing marks bytes after the JSON value.
	ErrTrailing = errors.New("wire: trailing data after JSON body")
)

// Decode strictly parses one JSON value from r into v: at most max
// bytes (DefaultMaxBody when max <= 0), unknown fields rejected, and
// nothing but whitespace after the value. Malformed, truncated or
// oversized input returns an error; no input panics.
func Decode(r io.Reader, max int64, v any) error {
	if max <= 0 {
		max = DefaultMaxBody
	}
	lr := &io.LimitedReader{R: r, N: max + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if lr.N <= 0 {
			return fmt.Errorf("%w (cap %d bytes)", ErrTooLarge, max)
		}
		return fmt.Errorf("wire: %w", err)
	}
	if lr.N <= 0 {
		return fmt.Errorf("%w (cap %d bytes)", ErrTooLarge, max)
	}
	if _, err := dec.Token(); err != io.EOF {
		return ErrTrailing
	}
	return nil
}

// DecodeBytes is Decode over an in-memory body.
func DecodeBytes(data []byte, v any) error {
	return Decode(strings.NewReader(string(data)), int64(len(data))+1, v)
}

// hexDigits renders the low 4*n bits of (hi, lo), most significant
// nibble first.
func hexNibble(hi, lo uint64, idx int) byte {
	// idx counts nibbles from the least significant end.
	var v uint64
	if idx >= 16 {
		v = hi >> (uint(idx-16) * 4)
	} else {
		v = lo >> (uint(idx) * 4)
	}
	return "0123456789abcdef"[v&0xf]
}

// FromBV converts a bitvector to its wire form. The zero-width BV (the
// engine's "no value" — e.g. an absent ternary mask) has no wire form;
// callers encode it as an omitted optional field.
func FromBV(v sym.BV) BV {
	n := (int(v.W) + 3) / 4
	var b strings.Builder
	b.Grow(n)
	for i := n - 1; i >= 0; i-- {
		b.WriteByte(hexNibble(v.Hi, v.Lo, i))
	}
	return BV{W: v.W, Hex: b.String()}
}

// ToBV validates and converts a wire bitvector: width 1..128, hex
// exactly (w+3)/4 lowercase nibbles, and no bit set above the width.
func ToBV(v BV) (sym.BV, error) {
	if v.W < 1 || v.W > sym.MaxWidth {
		return sym.BV{}, fmt.Errorf("wire: bitvector width %d out of range [1,%d]", v.W, sym.MaxWidth)
	}
	want := (int(v.W) + 3) / 4
	if len(v.Hex) != want {
		return sym.BV{}, fmt.Errorf("wire: width-%d bitvector needs %d hex nibbles, got %d", v.W, want, len(v.Hex))
	}
	var hi, lo uint64
	for i := 0; i < len(v.Hex); i++ {
		c := v.Hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return sym.BV{}, fmt.Errorf("wire: invalid hex digit %q in bitvector", c)
		}
		hi = hi<<4 | lo>>60
		lo = lo<<4 | d
	}
	out := sym.BV{Hi: hi, Lo: lo, W: v.W}
	if out != sym.NewBV2(v.W, hi, lo) {
		return sym.BV{}, fmt.Errorf("wire: bitvector value overflows width %d", v.W)
	}
	return out, nil
}

// toOptBV maps an optional wire bitvector; nil decodes to the
// zero-width "no value" BV.
func toOptBV(v *BV) (sym.BV, error) {
	if v == nil {
		return sym.BV{}, nil
	}
	return ToBV(*v)
}

// fromOptBV maps a zero-width BV back to an omitted field.
func fromOptBV(v sym.BV) *BV {
	if v.W == 0 {
		return nil
	}
	w := FromBV(v)
	return &w
}

var matchKinds = map[string]controlplane.MatchKind{
	"exact":    controlplane.MatchExact,
	"ternary":  controlplane.MatchTernary,
	"lpm":      controlplane.MatchLPM,
	"optional": controlplane.MatchOptional,
}

func toFieldMatch(m FieldMatch) (controlplane.FieldMatch, error) {
	kind, ok := matchKinds[m.Kind]
	if !ok {
		return controlplane.FieldMatch{}, fmt.Errorf("unknown match kind %q", m.Kind)
	}
	val, err := ToBV(m.Value)
	if err != nil {
		return controlplane.FieldMatch{}, err
	}
	out := controlplane.FieldMatch{Kind: kind, Value: val}
	// Per-kind shape checks: only the kind's own refinements may appear.
	switch kind {
	case controlplane.MatchExact:
		if m.Mask != nil || m.PrefixLen != 0 || m.Wildcard {
			return controlplane.FieldMatch{}, fmt.Errorf("exact match carries ternary/lpm/optional fields")
		}
	case controlplane.MatchTernary:
		if m.PrefixLen != 0 || m.Wildcard {
			return controlplane.FieldMatch{}, fmt.Errorf("ternary match carries lpm/optional fields")
		}
		if out.Mask, err = toOptBV(m.Mask); err != nil {
			return controlplane.FieldMatch{}, err
		}
	case controlplane.MatchLPM:
		if m.Mask != nil || m.Wildcard {
			return controlplane.FieldMatch{}, fmt.Errorf("lpm match carries ternary/optional fields")
		}
		if m.PrefixLen < 0 || m.PrefixLen > int(val.W) {
			return controlplane.FieldMatch{}, fmt.Errorf("lpm prefix length %d out of range [0,%d]", m.PrefixLen, val.W)
		}
		out.PrefixLen = m.PrefixLen
	case controlplane.MatchOptional:
		if m.Mask != nil || m.PrefixLen != 0 {
			return controlplane.FieldMatch{}, fmt.Errorf("optional match carries ternary/lpm fields")
		}
		out.Wildcard = m.Wildcard
	}
	return out, nil
}

func fromFieldMatch(m controlplane.FieldMatch) FieldMatch {
	out := FieldMatch{Kind: m.Kind.String(), Value: FromBV(m.Value)}
	switch m.Kind {
	case controlplane.MatchTernary:
		out.Mask = fromOptBV(m.Mask)
	case controlplane.MatchLPM:
		out.PrefixLen = m.PrefixLen
	case controlplane.MatchOptional:
		out.Wildcard = m.Wildcard
	}
	return out
}

func toEntry(e *TableEntry) (*controlplane.TableEntry, error) {
	out := &controlplane.TableEntry{Priority: e.Priority, Action: e.Action}
	if e.Action == "" {
		return nil, fmt.Errorf("entry has no action")
	}
	for i, m := range e.Matches {
		fm, err := toFieldMatch(m)
		if err != nil {
			return nil, fmt.Errorf("match %d: %w", i, err)
		}
		out.Matches = append(out.Matches, fm)
	}
	for i, p := range e.Params {
		v, err := ToBV(p)
		if err != nil {
			return nil, fmt.Errorf("param %d: %w", i, err)
		}
		out.Params = append(out.Params, v)
	}
	return out, nil
}

func fromEntry(e *controlplane.TableEntry) *TableEntry {
	out := &TableEntry{Priority: e.Priority, Action: e.Action}
	for _, m := range e.Matches {
		out.Matches = append(out.Matches, fromFieldMatch(m))
	}
	for _, p := range e.Params {
		out.Params = append(out.Params, FromBV(p))
	}
	return out
}

func toActionCall(a *ActionCall) (controlplane.ActionCall, error) {
	if a.Name == "" {
		return controlplane.ActionCall{}, fmt.Errorf("default action has no name")
	}
	out := controlplane.ActionCall{Name: a.Name}
	for i, p := range a.Params {
		v, err := ToBV(p)
		if err != nil {
			return controlplane.ActionCall{}, fmt.Errorf("param %d: %w", i, err)
		}
		out.Params = append(out.Params, v)
	}
	return out, nil
}

// ToUpdate validates and converts one wire update into engine
// vocabulary. Every field not belonging to the update's kind must be
// absent.
func ToUpdate(u *Update) (*controlplane.Update, error) {
	entryKind := func(kind controlplane.UpdateKind) (*controlplane.Update, error) {
		if u.Table == "" || u.Entry == nil {
			return nil, fmt.Errorf("%s update needs table and entry", u.Kind)
		}
		if u.Default != nil || u.ValueSet != "" || len(u.Members) > 0 || u.Register != "" || u.Fill != nil {
			return nil, fmt.Errorf("%s update carries unrelated fields", u.Kind)
		}
		e, err := toEntry(u.Entry)
		if err != nil {
			return nil, err
		}
		return &controlplane.Update{Kind: kind, Table: u.Table, Entry: e}, nil
	}
	switch u.Kind {
	case KindInsert:
		return entryKind(controlplane.InsertEntry)
	case KindModify:
		return entryKind(controlplane.ModifyEntry)
	case KindDelete:
		return entryKind(controlplane.DeleteEntry)
	case KindSetDefault:
		if u.Table == "" || u.Default == nil {
			return nil, fmt.Errorf("set-default update needs table and default")
		}
		if u.Entry != nil || u.ValueSet != "" || len(u.Members) > 0 || u.Register != "" || u.Fill != nil {
			return nil, fmt.Errorf("set-default update carries unrelated fields")
		}
		call, err := toActionCall(u.Default)
		if err != nil {
			return nil, err
		}
		return &controlplane.Update{Kind: controlplane.SetDefault, Table: u.Table, Default: call}, nil
	case KindSetValueSet:
		if u.ValueSet == "" {
			return nil, fmt.Errorf("set-value-set update needs value_set")
		}
		if u.Table != "" || u.Entry != nil || u.Default != nil || u.Register != "" || u.Fill != nil {
			return nil, fmt.Errorf("set-value-set update carries unrelated fields")
		}
		out := &controlplane.Update{Kind: controlplane.SetValueSet, ValueSet: u.ValueSet}
		for i, m := range u.Members {
			v, err := ToBV(m.Value)
			if err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			mask, err := toOptBV(m.Mask)
			if err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			out.Members = append(out.Members, controlplane.ValueSetMember{Value: v, Mask: mask})
		}
		return out, nil
	case KindFillRegister:
		if u.Register == "" || u.Fill == nil {
			return nil, fmt.Errorf("fill-register update needs register and fill")
		}
		if u.Table != "" || u.Entry != nil || u.Default != nil || u.ValueSet != "" || len(u.Members) > 0 {
			return nil, fmt.Errorf("fill-register update carries unrelated fields")
		}
		v, err := ToBV(*u.Fill)
		if err != nil {
			return nil, err
		}
		return &controlplane.Update{Kind: controlplane.FillRegister, Register: u.Register, Fill: v}, nil
	default:
		return nil, fmt.Errorf("unknown update kind %q", u.Kind)
	}
}

// FromUpdate converts an engine update to its wire form. It is total
// over updates the engine accepts (valid widths everywhere; a
// zero-width mask encodes as an omitted field).
func FromUpdate(u *controlplane.Update) Update {
	switch u.Kind {
	case controlplane.InsertEntry, controlplane.ModifyEntry, controlplane.DeleteEntry:
		return Update{Kind: u.Kind.String(), Table: u.Table, Entry: fromEntry(u.Entry)}
	case controlplane.SetDefault:
		call := ActionCall{Name: u.Default.Name}
		for _, p := range u.Default.Params {
			call.Params = append(call.Params, FromBV(p))
		}
		return Update{Kind: KindSetDefault, Table: u.Table, Default: &call}
	case controlplane.SetValueSet:
		out := Update{Kind: KindSetValueSet, ValueSet: u.ValueSet}
		for _, m := range u.Members {
			out.Members = append(out.Members, ValueSetMember{Value: FromBV(m.Value), Mask: fromOptBV(m.Mask)})
		}
		return out
	case controlplane.FillRegister:
		fill := FromBV(u.Fill)
		return Update{Kind: KindFillRegister, Register: u.Register, Fill: &fill}
	default:
		return Update{Kind: u.Kind.String()}
	}
}

// FromUpdates maps FromUpdate over a slice.
func FromUpdates(us []*controlplane.Update) []Update {
	out := make([]Update, len(us))
	for i, u := range us {
		out[i] = FromUpdate(u)
	}
	return out
}
