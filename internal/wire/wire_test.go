package wire

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/flayerr"
	"repro/internal/fuzz"
	"repro/internal/progs"
	"repro/internal/sym"
)

func TestBVRoundTrip(t *testing.T) {
	cases := []sym.BV{
		sym.NewBV(1, 1),
		sym.NewBV(1, 0),
		sym.NewBV(7, 0x5a),
		sym.NewBV(32, 0x0a000001),
		sym.NewBV(48, 0xdeadbeef1234),
		sym.NewBV(64, ^uint64(0)),
		sym.NewBV2(65, 1, ^uint64(0)),
		sym.NewBV2(128, 0x0123456789abcdef, 0xfedcba9876543210),
		sym.AllOnes(128),
	}
	for _, v := range cases {
		w := FromBV(v)
		if want := (int(v.W) + 3) / 4; len(w.Hex) != want {
			t.Fatalf("FromBV(%v): hex %q has %d nibbles, want %d", v, w.Hex, len(w.Hex), want)
		}
		got, err := ToBV(w)
		if err != nil {
			t.Fatalf("ToBV(FromBV(%v)): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %v -> %+v -> %v", v, w, got)
		}
	}
}

func TestToBVRejectsMalformed(t *testing.T) {
	cases := []BV{
		{W: 0, Hex: ""},
		{W: 129, Hex: strings.Repeat("0", 33)},
		{W: 8, Hex: "0"},                  // too short
		{W: 8, Hex: "000"},                // too long
		{W: 8, Hex: "ZZ"},                 // bad digits
		{W: 8, Hex: "FF"},                 // uppercase rejected
		{W: 1, Hex: "2"},                  // bit above width
		{W: 7, Hex: "ff"},                 // bit above width
		{W: 65, Hex: "fffffffffffffffff"}, // hi bits above width
	}
	for _, c := range cases {
		if _, err := ToBV(c); err == nil {
			t.Errorf("ToBV(%+v) accepted malformed input", c)
		}
	}
}

// TestUpdateRoundTrip replays every update kind the fuzzer can produce
// through FromUpdate/ToUpdate and asserts the engine-side value is
// reconstructed exactly.
func TestUpdateRoundTrip(t *testing.T) {
	for _, name := range []string{"fig3", "scion", "switch"} {
		p, err := progs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Load()
		if err != nil {
			t.Fatal(err)
		}
		stream, err := fuzz.New(s.An, 11).Stream(200)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range stream {
			got, err := ToUpdate(ptr(FromUpdate(u)))
			if err != nil {
				t.Fatalf("%s update %d (%s): %v", name, i, u, err)
			}
			if !updatesEqual(u, got) {
				t.Fatalf("%s update %d: round trip diverged:\n%+v\nvs\n%+v", name, i, u, got)
			}
		}
	}
}

func ptr[T any](v T) *T { return &v }

func updatesEqual(a, b *controlplane.Update) bool {
	if a.Kind != b.Kind || a.Table != b.Table || a.ValueSet != b.ValueSet ||
		a.Register != b.Register || a.Fill != b.Fill {
		return false
	}
	if (a.Entry == nil) != (b.Entry == nil) {
		return false
	}
	if a.Entry != nil {
		x, y := a.Entry, b.Entry
		if x.Priority != y.Priority || x.Action != y.Action ||
			len(x.Matches) != len(y.Matches) || len(x.Params) != len(y.Params) {
			return false
		}
		for i := range x.Matches {
			if x.Matches[i] != y.Matches[i] {
				return false
			}
		}
		for i := range x.Params {
			if x.Params[i] != y.Params[i] {
				return false
			}
		}
	}
	if a.Default.Name != b.Default.Name || len(a.Default.Params) != len(b.Default.Params) {
		return false
	}
	for i := range a.Default.Params {
		if a.Default.Params[i] != b.Default.Params[i] {
			return false
		}
	}
	if len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}

func TestToUpdateRejectsChimeras(t *testing.T) {
	bv8 := BV{W: 8, Hex: "2a"}
	entry := &TableEntry{Action: "drop"}
	cases := []Update{
		{Kind: "mystery"},
		{Kind: KindInsert},             // no table/entry
		{Kind: KindInsert, Table: "t"}, // no entry
		{Kind: KindInsert, Table: "t", Entry: entry, Register: "r"},     // chimera
		{Kind: KindInsert, Table: "t", Entry: &TableEntry{}},            // no action
		{Kind: KindSetDefault, Table: "t"},                              // no default
		{Kind: KindSetDefault, Table: "t", Default: &ActionCall{}},      // unnamed action
		{Kind: KindSetValueSet},                                         // no value set
		{Kind: KindSetValueSet, ValueSet: "v", Table: "t"},              // chimera
		{Kind: KindFillRegister, Register: "r"},                         // no fill
		{Kind: KindFillRegister, Register: "r", Fill: &bv8, Table: "t"}, // chimera
	}
	for i, c := range cases {
		if _, err := ToUpdate(&c); err == nil {
			t.Errorf("case %d (%+v): chimera accepted", i, c)
		}
	}
}

func TestToFieldMatchShapeChecks(t *testing.T) {
	v := BV{W: 8, Hex: "01"}
	bad := []FieldMatch{
		{Kind: "fancy", Value: v},
		{Kind: "exact", Value: v, PrefixLen: 3},
		{Kind: "exact", Value: v, Mask: &v},
		{Kind: "ternary", Value: v, PrefixLen: 3},
		{Kind: "lpm", Value: v, PrefixLen: 9},
		{Kind: "lpm", Value: v, PrefixLen: -1},
		{Kind: "lpm", Value: v, Mask: &v},
		{Kind: "optional", Value: v, PrefixLen: 1},
	}
	for i, m := range bad {
		if _, err := toFieldMatch(m); err == nil {
			t.Errorf("case %d (%+v): invalid match accepted", i, m)
		}
	}
	good := []FieldMatch{
		{Kind: "exact", Value: v},
		{Kind: "ternary", Value: v},
		{Kind: "ternary", Value: v, Mask: &v},
		{Kind: "lpm", Value: v, PrefixLen: 8},
		{Kind: "lpm", Value: v},
		{Kind: "optional", Value: v, Wildcard: true},
	}
	for i, m := range good {
		if _, err := toFieldMatch(m); err != nil {
			t.Errorf("case %d (%+v): valid match rejected: %v", i, m, err)
		}
	}
}

func TestDecodeStrictness(t *testing.T) {
	var req WriteRequest
	if err := DecodeBytes([]byte(`{"updates":[]}`), &req); err != nil {
		t.Fatalf("minimal body rejected: %v", err)
	}
	if err := DecodeBytes([]byte(`{"updates":[],"bogus":1}`), &req); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := DecodeBytes([]byte(`{"updates":[]}{"updates":[]}`), &req); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing data: got %v, want ErrTrailing", err)
	}
	if err := DecodeBytes([]byte(`{"updates":`), &req); err == nil {
		t.Fatal("truncated body accepted")
	}
	big := `{"mode":"` + strings.Repeat("x", 100) + `","updates":[]}`
	if err := Decode(strings.NewReader(big), 16, &req); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized body: got %v, want ErrTooLarge", err)
	}
}

func TestCreateSessionRequestValidate(t *testing.T) {
	ok := CreateSessionRequest{Name: "s1", Catalog: "fig3"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []CreateSessionRequest{
		{},
		{Name: "s1"},
		{Name: "s1", Catalog: "fig3", Source: "x"},
		{Name: "s1", Catalog: "fig3", Snapshot: []byte{1}},
		{Name: "s1", Catalog: "fig3", Quality: "turbo"},
		{Name: "s1", Catalog: "fig3", Version: Version + 1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid request accepted", i, r)
		}
	}
	if err := (&CreateSessionRequest{Name: "s1", Catalog: "f", Version: Version + 1}).Validate(); !errors.Is(err, ErrVersion) {
		t.Error("future version must map to ErrVersion")
	}
}

func TestWriteRequestModeAndBatch(t *testing.T) {
	u := Update{Kind: KindFillRegister, Register: "r", Fill: &BV{W: 8, Hex: "01"}}
	if _, err := (&WriteRequest{Mode: "jumbo", Updates: []Update{u}}).ToUpdates(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := (&WriteRequest{}).ToUpdates(); err == nil {
		t.Fatal("empty update list accepted")
	}
	if (&WriteRequest{Updates: []Update{u}}).Batch() {
		t.Fatal("one update with default mode must be single")
	}
	if !(&WriteRequest{Updates: []Update{u, u}}).Batch() {
		t.Fatal("several updates with default mode must be batch")
	}
	if (&WriteRequest{Mode: ModeSingle, Updates: []Update{u, u}}).Batch() {
		t.Fatal("explicit single mode must stay single")
	}
}

func TestFromDecisionAndStats(t *testing.T) {
	p, err := progs.ByName("fig3")
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := fuzz.New(s.An, 3).Stream(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stream {
		d := s.Apply(u)
		w := FromDecision(d)
		if w.Kind != d.Kind.String() || w.AffectedPoints != d.AffectedPoints ||
			w.Target != u.Target() || w.ElapsedNS != d.Elapsed.Nanoseconds() {
			t.Fatalf("FromDecision mismatch: %+v vs %+v", w, d)
		}
	}
	st := s.Statistics()
	ws := FromStats(st)
	if ws.Updates != st.Updates || ws.Forwarded != st.Forwarded ||
		ws.UpdateNS != st.UpdateTime.Nanoseconds() || ws.CacheHits != st.CacheHits {
		t.Fatalf("FromStats mismatch: %+v vs %+v", ws, st)
	}
	var rejected *core.Decision
	rejected = s.Apply(&controlplane.Update{Kind: controlplane.InsertEntry, Table: "no.such.table",
		Entry: &controlplane.TableEntry{Action: "x"}})
	if w := FromDecision(rejected); w.Kind != "rejected" || w.Error == "" {
		t.Fatalf("rejected decision must carry its error: %+v", w)
	}
}

// TestErrorCodeRoundTrip pins the error classification contract: every
// flayerr sentinel round-trips through its wire code (bare and wrapped,
// so errors.Is works across the HTTP boundary), and everything outside
// the sentinel set falls back to the unclassified empty code / nil
// sentinel rather than being misclassified.
func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		code     string
		sentinel error
	}{
		{CodeUnknownTable, flayerr.ErrUnknownTable},
		{CodeClosed, flayerr.ErrClosed},
		{CodeDeadlineExceeded, flayerr.ErrDeadlineExceeded},
		{CodeSnapshotCorrupt, flayerr.ErrSnapshotCorrupt},
		{CodeBackpressure, flayerr.ErrBackpressure},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			if got := CodeOf(tc.sentinel); got != tc.code {
				t.Fatalf("CodeOf(sentinel) = %q, want %q", got, tc.code)
			}
			wrapped := fmt.Errorf("session %q: %w", "s", tc.sentinel)
			if got := CodeOf(wrapped); got != tc.code {
				t.Fatalf("CodeOf(wrapped) = %q, want %q", got, tc.code)
			}
			back := SentinelOf(tc.code)
			if back == nil || !errors.Is(back, tc.sentinel) {
				t.Fatalf("SentinelOf(%q) = %v, does not match the sentinel", tc.code, back)
			}
			// The round trip must hold both ways.
			if got := CodeOf(back); got != tc.code {
				t.Fatalf("CodeOf(SentinelOf(%q)) = %q", tc.code, got)
			}
			// No cross-talk: the code maps to exactly one sentinel.
			for _, other := range cases {
				if other.code != tc.code && errors.Is(back, other.sentinel) {
					t.Fatalf("SentinelOf(%q) also matches %q", tc.code, other.code)
				}
			}
		})
	}

	// Unknown-code and unclassified-error fallbacks.
	if got := CodeOf(nil); got != "" {
		t.Fatalf("CodeOf(nil) = %q, want empty", got)
	}
	if got := CodeOf(errors.New("some local failure")); got != "" {
		t.Fatalf("CodeOf(unclassified) = %q, want empty", got)
	}
	if got := SentinelOf("bogus_code"); got != nil {
		t.Fatalf("SentinelOf(bogus) = %v, want nil", got)
	}
	if got := SentinelOf(""); got != nil {
		t.Fatalf("SentinelOf(\"\") = %v, want nil", got)
	}
}
