package wire

import (
	"testing"
)

// FuzzWireDecode holds the strict decoder to its contract: arbitrary
// bytes — malformed, truncated, oversized, unicode-mangled — either
// decode into a request that survives conversion to engine vocabulary,
// or return an error. Nothing panics, and nothing out of range (widths,
// prefix lengths, hex digits) reaches the engine types, whose
// constructors would panic on it.
func FuzzWireDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"updates":[]}`,
		`{"version":1,"mode":"batch","updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"exact","value":{"w":32,"hex":"0a000001"}}],"action":"fwd","params":[{"w":9,"hex":"1ff"}]}}]}`,
		`{"updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"lpm","value":{"w":32,"hex":"0a000000"},"prefix_len":8}],"action":"fwd"}}]}`,
		`{"updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"ternary","value":{"w":16,"hex":"00ff"},"mask":{"w":16,"hex":"ffff"}}],"action":"fwd","params":[]}}]}`,
		`{"updates":[{"kind":"set-default","table":"t","default":{"name":"drop"}}]}`,
		`{"updates":[{"kind":"set-value-set","value_set":"vs","members":[{"value":{"w":8,"hex":"2a"}}]}]}`,
		`{"updates":[{"kind":"fill-register","register":"r","fill":{"w":128,"hex":"ffffffffffffffffffffffffffffffff"}}]}`,
		`{"updates":[{"kind":"fill-register","register":"r","fill":{"w":1,"hex":"3"}}]}`,
		`{"updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"exact","value":{"w":999,"hex":"00"}}],"action":"a"}}]}`,
		`{"name":"s","catalog":"fig3"}`,
		`{"name":"s","source":"parser p(){}","workers":-3,"quality":"dce-only"}`,
		`{"name":"s","snapshot":"AAECAw=="}`,
		`{"updates":[{"kind":"insert"`,
		`[1,2,3]`,
		`"just a string"`,
		`{"updates":[{"kind":"insert","table":"t","entry":{"action":"a"}}]} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// A write request: decode strictly, then force every decoded
		// update through the engine-vocabulary conversion.
		var wr WriteRequest
		if err := DecodeBytes(data, &wr); err == nil {
			if us, err := wr.ToUpdates(); err == nil {
				// Converted updates must round-trip losslessly.
				for i, u := range us {
					back, err := ToUpdate(ptr(FromUpdate(u)))
					if err != nil {
						t.Fatalf("re-encode of accepted update %d failed: %v", i, err)
					}
					if !updatesEqual(u, back) {
						t.Fatalf("accepted update %d does not round-trip: %+v vs %+v", i, u, back)
					}
				}
			}
		}
		// A create request: decode plus shape validation.
		var cr CreateSessionRequest
		if err := DecodeBytes(data, &cr); err == nil {
			_ = cr.Validate()
		}
		// A raw BV on its own.
		var bv BV
		if err := DecodeBytes(data, &bv); err == nil {
			if v, err := ToBV(bv); err == nil {
				if got, err := ToBV(FromBV(v)); err != nil || got != v {
					t.Fatalf("accepted BV does not round-trip: %+v -> %v (%v)", bv, got, err)
				}
			}
		}
	})
}
