// Package wire defines flayd's versioned HTTP/JSON wire protocol: the
// request/response bodies exchanged between the daemon
// (internal/server), the typed Go client (internal/client) and any
// curl-wielding operator. The shapes are P4Runtime-flavored — an Update
// is one Write entity, a WriteRequest is one Write RPC with single or
// batched semantics — rendered in plain JSON so the protocol needs
// nothing beyond net/http and encoding/json.
//
// Two properties the package guarantees:
//
//   - Versioned encoding. Requests carry an optional "version" field;
//     zero means "current". A peer speaking a newer major version is
//     rejected up front with ErrVersion instead of being misparsed.
//
//   - Strict decoding. Decode (codec.go) enforces a body size cap,
//     rejects unknown fields and trailing data, and every conversion
//     into engine vocabulary (bitvector widths, match kinds, update
//     shapes) validates before constructing values — malformed input
//     yields an error, never a panic. FuzzWireDecode holds the package
//     to that.
package wire

import (
	"errors"
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/flayerr"
	"repro/internal/obs"
)

// Version is the current protocol version. It is bumped on any change
// an old peer could misinterpret; additive optional fields do not bump
// it.
const Version = 1

// CheckVersion validates a request's version field (0 = current).
func CheckVersion(v int) error {
	if v != 0 && v != Version {
		return fmt.Errorf("%w: got %d, speak %d", ErrVersion, v, Version)
	}
	return nil
}

// ErrVersion marks a protocol version mismatch.
var ErrVersion = fmt.Errorf("wire: unsupported protocol version")

// BV is the wire form of a bitvector: an explicit width plus the value
// in fixed-length lowercase hex ((w+3)/4 nibbles, most significant
// first). {"w":32,"hex":"0a000001"} is 10.0.0.1/32.
type BV struct {
	W   uint16 `json:"w"`
	Hex string `json:"hex"`
}

// FieldMatch is one key component of a table entry.
type FieldMatch struct {
	// Kind is one of "exact", "ternary", "lpm", "optional".
	Kind  string `json:"kind"`
	Value BV     `json:"value"`
	// Mask applies to ternary matches; omitted means match-anything.
	Mask *BV `json:"mask,omitempty"`
	// PrefixLen applies to lpm matches.
	PrefixLen int `json:"prefix_len,omitempty"`
	// Wildcard marks an omitted optional match.
	Wildcard bool `json:"wildcard,omitempty"`
}

// TableEntry is one match-action entry.
type TableEntry struct {
	Priority int          `json:"priority,omitempty"`
	Matches  []FieldMatch `json:"matches"`
	Action   string       `json:"action"`
	Params   []BV         `json:"params,omitempty"`
}

// ActionCall names an action with bound parameters.
type ActionCall struct {
	Name   string `json:"name"`
	Params []BV   `json:"params,omitempty"`
}

// ValueSetMember is one parser value-set member.
type ValueSetMember struct {
	Value BV  `json:"value"`
	Mask  *BV `json:"mask,omitempty"`
}

// Update kind spellings, matching controlplane.UpdateKind.String().
const (
	KindInsert       = "insert"
	KindModify       = "modify"
	KindDelete       = "delete"
	KindSetDefault   = "set-default"
	KindSetValueSet  = "set-value-set"
	KindFillRegister = "fill-register"
)

// Update is one control-plane write. Exactly the fields of its kind
// may be set; ToUpdate rejects chimeras (e.g. an insert that also names
// a register) so a mistyped request fails loudly instead of applying
// half of what the caller meant.
type Update struct {
	Kind     string           `json:"kind"`
	Table    string           `json:"table,omitempty"`
	Entry    *TableEntry      `json:"entry,omitempty"`
	Default  *ActionCall      `json:"default,omitempty"`
	ValueSet string           `json:"value_set,omitempty"`
	Members  []ValueSetMember `json:"members,omitempty"`
	Register string           `json:"register,omitempty"`
	Fill     *BV              `json:"fill,omitempty"`
}

// CreateSessionRequest loads one named session. Exactly one program
// source must be given: Catalog (a progs catalog name), Source (P4
// source text), or Snapshot (Pipeline.Snapshot bytes, base64 in JSON).
type CreateSessionRequest struct {
	Version int    `json:"version,omitempty"`
	Name    string `json:"name"`

	Catalog  string `json:"catalog,omitempty"`
	Source   string `json:"source,omitempty"`
	Snapshot []byte `json:"snapshot,omitempty"`

	// Engine options (zero values = engine defaults).
	SkipParser          bool   `json:"skip_parser,omitempty"`
	OverapproxThreshold int    `json:"overapprox_threshold,omitempty"`
	Quality             string `json:"quality,omitempty"` // full | no-narrowing | dce-only | none
	Workers             int    `json:"workers,omitempty"`
	NoCache             bool   `json:"no_cache,omitempty"`
	// NoDD disables the canonical decision-diagram query core (ablation;
	// every point query runs the probe-solver path).
	NoDD bool `json:"no_dd,omitempty"`
	// Exec enables the data-plane executor for the session, making
	// POST /v1/sessions/{name}/exec available.
	Exec bool `json:"exec,omitempty"`
}

// Stats is the wire form of core.Stats (durations as nanoseconds).
type Stats struct {
	Points         int   `json:"points"`
	Tables         int   `json:"tables"`
	AnalysisNS     int64 `json:"analysis_ns"`
	PreprocessNS   int64 `json:"preprocess_ns"`
	Updates        int   `json:"updates"`
	Forwarded      int   `json:"forwarded"`
	Recompilations int   `json:"recompilations"`
	Rejected       int   `json:"rejected"`
	UpdateNS       int64 `json:"update_ns"`
	Batches        int   `json:"batches"`
	BatchedUpdates int   `json:"batched_updates"`
	Coalesced      int   `json:"coalesced"`
	EvalNS         int64 `json:"eval_ns"`
	Workers        int   `json:"workers"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`

	// Decision-diagram query-core counters (all zero when the core is
	// disabled with no_dd).
	DDQueries   int64 `json:"dd_queries,omitempty"`
	DDFallbacks int64 `json:"dd_fallbacks,omitempty"`
	DDCompiles  int64 `json:"dd_compiles,omitempty"`
	DDNodes     int   `json:"dd_nodes,omitempty"`

	// Adaptive precision controller counters.
	Degradations    int `json:"degradations,omitempty"`
	Promotions      int `json:"promotions,omitempty"`
	DegradedTables  int `json:"degraded_tables,omitempty"`
	UnsoundDegraded int `json:"unsound_degraded,omitempty"`
}

// FromStats converts engine statistics to their wire form.
func FromStats(s core.Stats) Stats {
	return Stats{
		Points:          s.Points,
		Tables:          s.Tables,
		AnalysisNS:      s.AnalysisTime.Nanoseconds(),
		PreprocessNS:    s.PreprocessTime.Nanoseconds(),
		Updates:         s.Updates,
		Forwarded:       s.Forwarded,
		Recompilations:  s.Recompilations,
		Rejected:        s.Rejected,
		UpdateNS:        s.UpdateTime.Nanoseconds(),
		Batches:         s.Batches,
		BatchedUpdates:  s.BatchedUpdates,
		Coalesced:       s.Coalesced,
		EvalNS:          s.EvalTime.Nanoseconds(),
		Workers:         s.Workers,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		CacheEvictions:  s.CacheEvictions,
		DDQueries:       s.DDQueries,
		DDFallbacks:     s.DDFallbacks,
		DDCompiles:      s.DDCompiles,
		DDNodes:         s.DDNodes,
		Degradations:    s.Degradations,
		Promotions:      s.Promotions,
		DegradedTables:  s.DegradedTables,
		UnsoundDegraded: s.UnsoundDegraded,
	}
}

// SessionInfo describes one live session.
type SessionInfo struct {
	Name    string   `json:"name"`
	Program string   `json:"program"`
	Tables  []string `json:"tables,omitempty"`
	// Entries maps each table to its live entry count, so clients can
	// verify steady-state invariants (e.g. churn WantLive) over the wire.
	Entries map[string]int `json:"entries,omitempty"`
	Stats   Stats          `json:"stats"`
	// Restored marks a session warm-started from a snapshot.
	Restored bool `json:"restored,omitempty"`
	// Dirty reports state-changing updates since the last snapshot.
	Dirty bool `json:"dirty,omitempty"`
	// AuditTotal is the number of audit records ever appended.
	AuditTotal int64 `json:"audit_total,omitempty"`
	// Epoch is the engine's published epoch sequence number — the
	// wait-free read-state version clients can correlate snapshots and
	// stats against (it advances on every mutating call).
	Epoch uint64 `json:"epoch,omitempty"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Explanation is one program point's introspection record. The engine
// type already carries wire-stable json tags, so it travels as-is.
type Explanation = core.Explanation

// ExplainResponse is the GET /v1/sessions/{name}/explain response:
// introspection records for every requested program point, cut from the
// published epoch named in each record.
type ExplainResponse struct {
	// Table echoes the ?table= filter, empty for a point-only query.
	Table  string         `json:"table,omitempty"`
	Points []*Explanation `json:"points"`
}

// Write modes.
const (
	// ModeSingle applies the request's updates one at a time
	// (sequential Apply semantics).
	ModeSingle = "single"
	// ModeBatch applies them as one atomic ApplyBatch transition.
	ModeBatch = "batch"
)

// WriteRequest streams updates into a session. Mode defaults to
// ModeSingle for one update and ModeBatch for several. When the server
// runs a coalescing window, concurrent requests may be funneled into a
// shared ApplyBatch regardless of mode; decisions are still returned
// per request, in order.
type WriteRequest struct {
	Version int      `json:"version,omitempty"`
	Mode    string   `json:"mode,omitempty"`
	Updates []Update `json:"updates"`
	// DeadlineMS is the request's latency budget in milliseconds
	// (optional; 0 = none). The server turns it into a context deadline
	// for the engine, which may degrade table precision to honor it —
	// affected decisions come back with "precision":"degraded".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ReqID is an optional idempotency key. A session remembers the
	// decisions of recently served IDs and answers a duplicate from
	// that cache instead of re-applying, so a client retrying a write
	// whose response was lost (crash, failover) lands it exactly once.
	ReqID string `json:"req_id,omitempty"`
}

// Decision is the wire form of one core.Decision.
type Decision struct {
	Kind           string   `json:"kind"` // forward | recompile | rejected
	Target         string   `json:"target,omitempty"`
	Update         string   `json:"update,omitempty"`
	AffectedPoints int      `json:"affected_points"`
	ChangedPoints  []int    `json:"changed_points,omitempty"`
	Components     []string `json:"components,omitempty"`
	ImplChange     string   `json:"impl_change,omitempty"`
	ElapsedNS      int64    `json:"elapsed_ns"`
	// Precision is "degraded" when the verdict was computed under a
	// deadline-forced overapproximated assignment (conservative, never
	// wrong), empty for precise decisions.
	Precision string `json:"precision,omitempty"`
	Error     string `json:"error,omitempty"`
	// ErrorCode is the machine-readable classification of Error (the
	// same code vocabulary as ErrorResponse.Code).
	ErrorCode string `json:"error_code,omitempty"`
}

// FromDecision converts an engine decision to its wire form.
func FromDecision(d *core.Decision) Decision {
	out := Decision{
		Kind:           d.Kind.String(),
		AffectedPoints: d.AffectedPoints,
		ChangedPoints:  d.ChangedPoints,
		Components:     d.Components,
		ImplChange:     d.ImplementationChange,
		ElapsedNS:      d.Elapsed.Nanoseconds(),
	}
	if d.Degraded {
		out.Precision = "degraded"
	}
	if d.Update != nil {
		out.Target = d.Update.Target()
		out.Update = d.Update.String()
	}
	if d.Err != nil {
		out.Error = d.Err.Error()
		out.ErrorCode = CodeOf(d.Err)
	}
	return out
}

// WriteResponse returns one decision per submitted update, in order.
type WriteResponse struct {
	Decisions []Decision `json:"decisions"`
	// Coalesced is set when the server folded this request into a
	// shared batch with at least one other concurrent request.
	Coalesced bool `json:"coalesced,omitempty"`
	// Replayed is set when the response was served from the session's
	// idempotency cache (duplicate req_id) without re-applying.
	Replayed bool `json:"replayed,omitempty"`
}

// AuditResponse is a slice of the session's decision audit trail.
type AuditResponse struct {
	Records []obs.AuditRecord `json:"records"`
	// Total counts records ever appended; Dropped counts ring
	// evictions. Records beyond the ring are gone — a reader that needs
	// everything must poll with ?since= faster than the ring turns over.
	Total   int64 `json:"total"`
	Dropped int64 `json:"dropped"`
}

// SnapshotResponse carries one warm-state checkpoint.
type SnapshotResponse struct {
	Name string `json:"name"`
	// Bytes is len(Snapshot).
	Bytes int `json:"bytes"`
	// Path is the server-side snapshot file, when persistence is on.
	Path string `json:"path,omitempty"`
	// Snapshot is the checkpoint itself (base64 in JSON); feed it to
	// CreateSessionRequest.Snapshot or goflay.Restore.
	Snapshot []byte `json:"snapshot,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" | "draining" | "degraded"
	Version  int    `json:"version"`
	Sessions int    `json:"sessions"`
	UptimeNS int64  `json:"uptime_ns"`
	// Standby marks a replication target that has not been promoted:
	// it serves reads but refuses client writes.
	Standby bool `json:"standby,omitempty"`
	// Shards is the per-shard detail when the responder is a flayfront
	// fronting a fleet; empty for a single daemon. Status is "degraded"
	// while any shard is unhealthy.
	Shards []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one shard's row in a front door's health report.
type ShardHealth struct {
	Name       string `json:"name"`
	Addr       string `json:"addr"`
	Healthy    bool   `json:"healthy"`
	FailedOver bool   `json:"failed_over"`
	HasStandby bool   `json:"has_standby"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error classification (one of the
	// Code* constants), empty for unclassified errors. The client maps
	// it back to the goflay sentinel, so errors.Is works across the
	// HTTP boundary.
	Code string `json:"code,omitempty"`
}

// Machine-readable error codes, the wire form of the goflay sentinel
// errors (internal/flayerr).
const (
	CodeUnknownTable     = "unknown_table"
	CodeClosed           = "closed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeSnapshotCorrupt  = "snapshot_corrupt"
	CodeBackpressure     = "backpressure"
	CodeExecDisabled     = "exec_disabled"
	CodeBadPacket        = "bad_packet"
	CodeStandby          = "standby"
)

// CodeOf classifies an error against the sentinel set; it returns ""
// for errors outside the classification.
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, flayerr.ErrUnknownTable):
		return CodeUnknownTable
	case errors.Is(err, flayerr.ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, flayerr.ErrSnapshotCorrupt):
		return CodeSnapshotCorrupt
	case errors.Is(err, flayerr.ErrBackpressure):
		return CodeBackpressure
	case errors.Is(err, flayerr.ErrClosed):
		return CodeClosed
	case errors.Is(err, flayerr.ErrExecDisabled):
		return CodeExecDisabled
	case errors.Is(err, flayerr.ErrBadPacket):
		return CodeBadPacket
	case errors.Is(err, flayerr.ErrStandby):
		return CodeStandby
	default:
		return ""
	}
}

// SentinelOf is CodeOf's inverse: the sentinel a wire code stands for,
// nil for unknown or empty codes.
func SentinelOf(code string) error {
	switch code {
	case CodeUnknownTable:
		return flayerr.ErrUnknownTable
	case CodeClosed:
		return flayerr.ErrClosed
	case CodeDeadlineExceeded:
		return flayerr.ErrDeadlineExceeded
	case CodeSnapshotCorrupt:
		return flayerr.ErrSnapshotCorrupt
	case CodeBackpressure:
		return flayerr.ErrBackpressure
	case CodeExecDisabled:
		return flayerr.ErrExecDisabled
	case CodeBadPacket:
		return flayerr.ErrBadPacket
	case CodeStandby:
		return flayerr.ErrStandby
	default:
		return nil
	}
}

// quality spellings, matching core.Quality.String().
var qualities = map[string]core.Quality{
	"":             core.QualityFull,
	"full":         core.QualityFull,
	"no-narrowing": core.QualityNoNarrowing,
	"dce-only":     core.QualityDCEOnly,
	"none":         core.QualityNone,
}

// ParseQuality maps a wire quality spelling to the engine enum.
func ParseQuality(s string) (core.Quality, error) {
	q, ok := qualities[s]
	if !ok {
		return 0, fmt.Errorf("wire: unknown quality %q", s)
	}
	return q, nil
}

// Validate checks a create request's shape (name handling and source
// exclusivity are the server's concern; this is pure wire validity).
func (r *CreateSessionRequest) Validate() error {
	if err := CheckVersion(r.Version); err != nil {
		return err
	}
	if r.Name == "" {
		return fmt.Errorf("wire: session name required")
	}
	n := 0
	if r.Catalog != "" {
		n++
	}
	if r.Source != "" {
		n++
	}
	if len(r.Snapshot) > 0 {
		n++
	}
	if n != 1 {
		return fmt.Errorf("wire: exactly one of catalog, source, snapshot required (got %d)", n)
	}
	if _, err := ParseQuality(r.Quality); err != nil {
		return err
	}
	return nil
}

// ToUpdates validates and converts a write request into engine updates.
func (r *WriteRequest) ToUpdates() ([]*controlplane.Update, error) {
	if err := CheckVersion(r.Version); err != nil {
		return nil, err
	}
	switch r.Mode {
	case "", ModeSingle, ModeBatch:
	default:
		return nil, fmt.Errorf("wire: unknown write mode %q", r.Mode)
	}
	if len(r.Updates) == 0 {
		return nil, fmt.Errorf("wire: write request carries no updates")
	}
	if r.DeadlineMS < 0 {
		return nil, fmt.Errorf("wire: negative deadline_ms %d", r.DeadlineMS)
	}
	out := make([]*controlplane.Update, len(r.Updates))
	for i := range r.Updates {
		u, err := ToUpdate(&r.Updates[i])
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		out[i] = u
	}
	return out, nil
}

// Batch reports whether the request asks for ApplyBatch semantics
// (explicitly, or implicitly by carrying more than one update).
func (r *WriteRequest) Batch() bool {
	if r.Mode == ModeBatch {
		return true
	}
	return r.Mode == "" && len(r.Updates) > 1
}
