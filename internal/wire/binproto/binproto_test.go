package binproto

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/sym"
	"repro/internal/wire"
)

func bv(w uint16, lo uint64) sym.BV { return sym.NewBV(w, lo) }

// sampleUpdates covers every update kind and every match kind.
func sampleUpdates() []*controlplane.Update {
	return []*controlplane.Update{
		{Kind: controlplane.InsertEntry, Table: "ingress.t", Entry: &controlplane.TableEntry{
			Priority: 7,
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchExact, Value: bv(32, 0x0a000001)},
				{Kind: controlplane.MatchTernary, Value: bv(16, 0x00ff), Mask: bv(16, 0xffff)},
				{Kind: controlplane.MatchTernary, Value: bv(16, 0)}, // zero-width mask
				{Kind: controlplane.MatchLPM, Value: bv(32, 0x0a000000), PrefixLen: 8},
				{Kind: controlplane.MatchOptional, Value: bv(9, 0x1ff), Wildcard: true},
			},
			Action: "fwd",
			Params: []sym.BV{bv(9, 3), sym.NewBV2(128, ^uint64(0), ^uint64(0))},
		}},
		{Kind: controlplane.ModifyEntry, Table: "t2", Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{Kind: controlplane.MatchExact, Value: bv(8, 42)}},
			Action:  "drop",
		}},
		{Kind: controlplane.DeleteEntry, Table: "t3", Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{Kind: controlplane.MatchExact, Value: bv(1, 1)}},
			Action:  "x",
		}},
		{Kind: controlplane.SetDefault, Table: "t4", Default: controlplane.ActionCall{
			Name: "drop", Params: []sym.BV{bv(48, 0xdeadbeef)},
		}},
		{Kind: controlplane.SetValueSet, ValueSet: "vs", Members: []controlplane.ValueSetMember{
			{Value: bv(16, 0x0800)},
			{Value: bv(16, 0x8100), Mask: bv(16, 0xff00)},
		}},
		{Kind: controlplane.FillRegister, Register: "r", Fill: bv(64, 123456789)},
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in := &Write{Batch: true, DeadlineMS: 50, ReqID: "req-1", Updates: sampleUpdates()}
	out, err := DecodeWrite(AppendWrite(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestUpdateRoundTripMatchesJSON(t *testing.T) {
	// The binary encoding and the JSON encoding must decode to the same
	// engine vocabulary for every update kind.
	for i, u := range sampleUpdates() {
		bin, err := DecodeUpdate(AppendUpdate(nil, u))
		if err != nil {
			t.Fatalf("update %d: binary decode: %v", i, err)
		}
		ju := wire.FromUpdate(u)
		jsonBack, err := wire.ToUpdate(&ju)
		if err != nil {
			t.Fatalf("update %d: json round trip: %v", i, err)
		}
		if !reflect.DeepEqual(bin, jsonBack) {
			t.Fatalf("update %d: binary %+v != json %+v", i, bin, jsonBack)
		}
	}
}

func TestAttachRoundTrip(t *testing.T) {
	in := &Attach{Name: "s1", Catalog: "scion", Exec: true}
	out, err := DecodeAttach(AppendAttach(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("attach round trip: %+v, %v", out, err)
	}
	ok := &AttachOK{Name: "s1", Program: "catalog:scion", Epoch: 42, Created: true}
	got, err := DecodeAttachOK(AppendAttachOK(nil, ok))
	if err != nil || !reflect.DeepEqual(ok, got) {
		t.Fatalf("attach-ok round trip: %+v, %v", got, err)
	}
}

func TestWriteOKRoundTrip(t *testing.T) {
	in := &WriteOK{Coalesced: true, Replayed: true, Decisions: []wire.Decision{
		{Kind: "forward", Target: "t", Update: "insert t", AffectedPoints: 3,
			ChangedPoints: []int{1, 2}, Components: []string{"a", "b"},
			ImplChange: "hash->hash", ElapsedNS: 1234, Precision: "degraded"},
		{Kind: "rejected", Error: "duplicate key", ErrorCode: "unknown_table"},
	}}
	out, err := DecodeWriteOK(AppendWriteOK(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestErrMsgRoundTrip(t *testing.T) {
	in := &ErrMsg{Status: 429, Code: wire.CodeBackpressure, Msg: "queue full"}
	out, err := DecodeErrMsg(AppendErrMsg(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("errmsg round trip: %+v, %v", out, err)
	}
	if !strings.Contains(out.Error(), "429") {
		t.Fatalf("ErrMsg.Error() = %q", out.Error())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: TAttach, Corr: 0, Payload: AppendAttach(nil, &Attach{Name: "s"})},
		{Type: TWrite, Corr: 1 << 40, Payload: AppendWrite(nil, &Write{Updates: sampleUpdates()})},
		{Type: TPing, Corr: 7, Payload: nil},
	}
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	if err := ReadHandshake(r); err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Corr != want.Corr || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got, want)
		}
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("FLA"),
		[]byte("HTTP/"),
		{'F', 'L', 'A', 'Y', 99},
	} {
		if err := ReadHandshake(bytes.NewReader(bad)); err == nil {
			t.Fatalf("handshake %q accepted", bad)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := AppendWrite(nil, &Write{Updates: sampleUpdates()})
	cases := map[string][]byte{
		"empty":            {},
		"trailing":         append(append([]byte{}, good...), 0xff),
		"truncated":        good[:len(good)-3],
		"no updates":       AppendWrite(nil, &Write{}),
		"bad kind":         {0, 0, 0, 1, 99},
		"lying count":      {0, 0, 0, 0xff, 0xff, 0x03}, // claims 65535 updates in 0 bytes
		"bool out of band": {7, 0, 0, 1},
	}
	for name, data := range cases {
		if _, err := DecodeWrite(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Overwide bitvector and overflowing value.
	if _, err := DecodeUpdate([]byte{byte(controlplane.FillRegister), 1, 'r', 200, 1, 0}); err == nil {
		t.Error("width-200 bitvector accepted")
	}
	if _, err := DecodeUpdate([]byte{byte(controlplane.FillRegister), 1, 'r', 1, 0xff}); err == nil {
		t.Error("overflowing width-1 bitvector accepted")
	}
	// LPM prefix beyond width.
	bad := []byte{byte(controlplane.InsertEntry), 1, 't', 0 /*prio*/, 1 /*1 match*/, byte(controlplane.MatchLPM), 8, 0x0a, 33}
	if _, err := DecodeUpdate(bad); err == nil {
		t.Error("lpm prefix 33 on width 8 accepted")
	}
}

func TestFrameCap(t *testing.T) {
	// A frame header claiming more than MaxFrame must be rejected before
	// any allocation.
	var buf bytes.Buffer
	buf.WriteByte(TWrite)
	buf.Write([]byte{0})                                        // corr
	buf.Write(appendUvarint(nil, uint64(MaxFrame)+1))           // len
	if _, err := ReadFrame(bufio.NewReader(&buf)); err == nil { // no payload needed
		t.Fatal("oversized frame accepted")
	}
}
