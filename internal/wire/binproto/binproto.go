// Package binproto is the length-prefixed binary framing of flayd's
// versioned wire protocol — the streaming update channel the HTTP/JSON
// surface (internal/wire) is the compat layer for. The shape follows
// RBFRT's observation that a runtime-control channel lives or dies on
// per-update overhead: instead of one HTTP request/response per write,
// a connection carries a stream of varint-framed update batches with
// client-chosen correlation IDs, so many writes are in flight at once
// (pipelining) and responses are matched by ID rather than by order.
//
// Connection layout:
//
//	handshake  "FLAY" + version byte, sent by both sides
//	frames     type(1) | corr(uvarint) | len(uvarint) | payload(len)
//
// A connection is session-scoped: the first frame must be Attach, which
// names (and optionally creates) the session every subsequent Write on
// the connection applies to. The hot path — Write frames carrying
// update batches, WriteOK frames carrying decisions — is fully binary:
// bitvectors travel as width + big-endian bytes, never hex strings.
// Low-rate control frames (Stats, Snapshot) carry their existing JSON
// bodies inside the frame, so the two surfaces cannot drift.
//
// The decoder mirrors the strictness of the JSON path: every frame is
// capped, every string and count bounded, every bitvector width checked
// before a sym.BV is built, and malformed input yields an error — never
// a panic, and never a chimera update the engine would misapply.
// FuzzBinFrameDecode holds the package to that, differentially: a
// logical message accepted by the JSON decoder must round-trip through
// the binary encoding to the identical engine vocabulary.
package binproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/controlplane"
	"repro/internal/sym"
	"repro/internal/wire"
)

// Version is the binary protocol version, carried in the handshake.
// It tracks wire.Version: the framing and the logical protocol version
// move together.
const Version = wire.Version

// magic opens every connection in both directions.
var magic = [4]byte{'F', 'L', 'A', 'Y'}

// Frame types. Requests are odd-ish client-to-server types; every
// request is answered by its OK type or by TErr, echoing the corr ID.
const (
	TAttach     byte = 0x01 // payload: Attach
	TAttachOK   byte = 0x02 // payload: AttachOK
	TWrite      byte = 0x03 // payload: Write (binary update batch)
	TWriteOK    byte = 0x04 // payload: WriteOK (binary decisions)
	TStats      byte = 0x05 // payload: empty; answered with JSON wire.Stats
	TStatsOK    byte = 0x06 // payload: JSON wire.Stats
	TSnapshot   byte = 0x07 // payload: empty
	TSnapshotOK byte = 0x08 // payload: raw Pipeline.Snapshot bytes
	TPing       byte = 0x09 // payload: empty
	TPong       byte = 0x0a // payload: empty
	TErr        byte = 0x0f // payload: ErrMsg
)

// MaxFrame caps a frame payload, mirroring the HTTP body cap.
const MaxFrame = wire.DefaultMaxBody

// Bounds on decoded aggregates, so a short malicious frame cannot make
// the decoder allocate gigabytes before length checks catch up.
const (
	maxString  = 1 << 16
	maxUpdates = 1 << 16
	maxSlice   = 1 << 20
)

// Decoding errors.
var (
	// ErrHandshake marks a peer that did not open with magic+version.
	ErrHandshake = errors.New("binproto: bad handshake")
	// ErrFrameTooLarge marks a frame over MaxFrame.
	ErrFrameTooLarge = errors.New("binproto: frame too large")
	// ErrTruncated marks a payload that ended mid-value.
	ErrTruncated = errors.New("binproto: truncated payload")
	// ErrMalformed marks a payload that decoded to out-of-range values.
	ErrMalformed = errors.New("binproto: malformed payload")
)

// Frame is one unit on the wire.
type Frame struct {
	Type byte
	// Corr is the client-chosen correlation ID; responses echo it, so
	// many requests can be in flight on one connection.
	Corr    uint64
	Payload []byte
}

// WriteHandshake sends magic + version.
func WriteHandshake(w io.Writer) error {
	_, err := w.Write([]byte{magic[0], magic[1], magic[2], magic[3], Version})
	return err
}

// ReadHandshake consumes and validates the peer's magic + version.
func ReadHandshake(r io.Reader) error {
	var b [5]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return fmt.Errorf("%w: bad magic %q", ErrHandshake, b[:4])
	}
	if b[4] != Version {
		return fmt.Errorf("%w: version %d, speak %d", ErrHandshake, b[4], Version)
	}
	return nil
}

// WriteFrame writes one frame. The caller owns buffering and flushing
// (batch several frames, then flush — that is the point of the
// protocol).
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [1 + 2*binMaxVarint]byte
	hdr[0] = f.Type
	n := 1
	n += putUvarint(hdr[n:], f.Corr)
	n += putUvarint(hdr[n:], uint64(len(f.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame, enforcing the payload cap.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	t, err := r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	corr, err := readUvarint(r)
	if err != nil {
		return Frame{}, err
	}
	n, err := readUvarint(r)
	if err != nil {
		return Frame{}, err
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: %d bytes (cap %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("binproto: reading %d-byte payload: %w", n, err)
	}
	return Frame{Type: t, Corr: corr, Payload: payload}, nil
}

// ---------------------------------------------------------------------------
// Messages

// Attach opens a session scope on the connection. When Catalog is
// non-empty and no session Name exists, the server creates one from the
// catalog program; otherwise the session must already exist.
type Attach struct {
	Name    string
	Catalog string
	// Exec asks a created session to enable the data-plane executor.
	Exec bool
}

// AttachOK acknowledges an Attach.
type AttachOK struct {
	Name    string
	Program string
	Epoch   uint64
	// Created reports whether the attach created the session.
	Created bool
}

// Write is one streamed update batch.
type Write struct {
	// Batch requests ApplyBatch semantics (one atomic transition);
	// otherwise updates apply one at a time.
	Batch bool
	// DeadlineMS is the request's latency budget in milliseconds (0 =
	// none), same semantics as the JSON deadline_ms field.
	DeadlineMS uint64
	// ReqID is the optional idempotency key: a session remembers
	// recently served IDs and answers duplicates from the decision
	// cache instead of re-applying (exactly-once across retries and
	// shard failover).
	ReqID   string
	Updates []*controlplane.Update
}

// WriteOK carries one decision per update of the matching Write.
type WriteOK struct {
	Coalesced bool
	// Replayed reports the request was answered from the session's
	// idempotency cache (a duplicate ReqID) without re-applying.
	Replayed  bool
	Decisions []wire.Decision
}

// ErrMsg is the payload of a TErr frame: the binary form of
// wire.ErrorResponse plus the HTTP status the JSON surface would have
// answered, so both surfaces classify identically.
type ErrMsg struct {
	Status int
	Code   string
	Msg    string
}

// Err converts the message to a client-side error value.
func (e *ErrMsg) Error() string {
	return fmt.Sprintf("binproto: status %d: %s", e.Status, e.Msg)
}

// ---------------------------------------------------------------------------
// Encoders. All appenders; callers build payloads with them.

const binMaxVarint = 10

func putUvarint(b []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binMaxVarint]byte
	return append(b, tmp[:putUvarint(tmp[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendBV encodes a bitvector as width + ceil(w/8) big-endian bytes.
// The zero-width BV (the engine's "no value") encodes as width 0 and no
// bytes.
func appendBV(b []byte, v sym.BV) []byte {
	b = appendUvarint(b, uint64(v.W))
	n := (int(v.W) + 7) / 8
	for i := n - 1; i >= 0; i-- {
		var byt byte
		if i >= 8 {
			byt = byte(v.Hi >> (uint(i-8) * 8))
		} else {
			byt = byte(v.Lo >> (uint(i) * 8))
		}
		b = append(b, byt)
	}
	return b
}

// AppendAttach encodes an Attach payload.
func AppendAttach(b []byte, a *Attach) []byte {
	b = appendString(b, a.Name)
	b = appendString(b, a.Catalog)
	return appendBool(b, a.Exec)
}

// AppendAttachOK encodes an AttachOK payload.
func AppendAttachOK(b []byte, a *AttachOK) []byte {
	b = appendString(b, a.Name)
	b = appendString(b, a.Program)
	b = appendUvarint(b, a.Epoch)
	return appendBool(b, a.Created)
}

// AppendWrite encodes a Write payload.
func AppendWrite(b []byte, w *Write) []byte {
	b = appendBool(b, w.Batch)
	b = appendUvarint(b, w.DeadlineMS)
	b = appendString(b, w.ReqID)
	b = appendUvarint(b, uint64(len(w.Updates)))
	for _, u := range w.Updates {
		b = AppendUpdate(b, u)
	}
	return b
}

// AppendUpdate encodes one engine update. It is total over updates the
// engine accepts, like wire.FromUpdate.
func AppendUpdate(b []byte, u *controlplane.Update) []byte {
	b = append(b, byte(u.Kind))
	switch u.Kind {
	case controlplane.InsertEntry, controlplane.ModifyEntry, controlplane.DeleteEntry:
		b = appendString(b, u.Table)
		b = appendEntry(b, u.Entry)
	case controlplane.SetDefault:
		b = appendString(b, u.Table)
		b = appendActionCall(b, u.Default)
	case controlplane.SetValueSet:
		b = appendString(b, u.ValueSet)
		b = appendUvarint(b, uint64(len(u.Members)))
		for _, m := range u.Members {
			b = appendBV(b, m.Value)
			b = appendBV(b, m.Mask)
		}
	case controlplane.FillRegister:
		b = appendString(b, u.Register)
		b = appendBV(b, u.Fill)
	}
	return b
}

func appendEntry(b []byte, e *controlplane.TableEntry) []byte {
	b = appendUvarint(b, uint64(e.Priority))
	b = appendUvarint(b, uint64(len(e.Matches)))
	for _, m := range e.Matches {
		b = append(b, byte(m.Kind))
		b = appendBV(b, m.Value)
		switch m.Kind {
		case controlplane.MatchTernary:
			b = appendBV(b, m.Mask)
		case controlplane.MatchLPM:
			b = appendUvarint(b, uint64(m.PrefixLen))
		case controlplane.MatchOptional:
			b = appendBool(b, m.Wildcard)
		}
	}
	b = appendString(b, e.Action)
	b = appendUvarint(b, uint64(len(e.Params)))
	for _, p := range e.Params {
		b = appendBV(b, p)
	}
	return b
}

func appendActionCall(b []byte, a controlplane.ActionCall) []byte {
	b = appendString(b, a.Name)
	b = appendUvarint(b, uint64(len(a.Params)))
	for _, p := range a.Params {
		b = appendBV(b, p)
	}
	return b
}

// AppendWriteOK encodes a WriteOK payload.
func AppendWriteOK(b []byte, w *WriteOK) []byte {
	b = appendBool(b, w.Coalesced)
	b = appendBool(b, w.Replayed)
	b = appendUvarint(b, uint64(len(w.Decisions)))
	for i := range w.Decisions {
		b = appendDecision(b, &w.Decisions[i])
	}
	return b
}

func appendDecision(b []byte, d *wire.Decision) []byte {
	b = appendString(b, d.Kind)
	b = appendString(b, d.Target)
	b = appendString(b, d.Update)
	b = appendUvarint(b, uint64(d.AffectedPoints))
	b = appendUvarint(b, uint64(len(d.ChangedPoints)))
	for _, p := range d.ChangedPoints {
		b = appendUvarint(b, uint64(p))
	}
	b = appendUvarint(b, uint64(len(d.Components)))
	for _, c := range d.Components {
		b = appendString(b, c)
	}
	b = appendString(b, d.ImplChange)
	b = appendUvarint(b, uint64(d.ElapsedNS))
	b = appendString(b, d.Precision)
	b = appendString(b, d.Error)
	return appendString(b, d.ErrorCode)
}

// AppendErrMsg encodes an ErrMsg payload.
func AppendErrMsg(b []byte, e *ErrMsg) []byte {
	b = appendUvarint(b, uint64(e.Status))
	b = appendString(b, e.Code)
	return appendString(b, e.Msg)
}

// ---------------------------------------------------------------------------
// Decoders. Strict: every length bounded, every width validated, every
// leftover byte an error.

type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binMaxVarint; i++ {
		if r.off >= len(r.b) {
			return 0, ErrTruncated
		}
		c := r.b[r.off]
		r.off++
		if c < 0x80 {
			if i == binMaxVarint-1 && c > 1 {
				return 0, fmt.Errorf("%w: uvarint overflow", ErrMalformed)
			}
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("%w: uvarint too long", ErrMalformed)
}

func (r *reader) count(max uint64, what string) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > max {
		return 0, fmt.Errorf("%w: %d %s (cap %d)", ErrMalformed, n, what, max)
	}
	// A count can never exceed the bytes remaining (every element is at
	// least one byte), so a lying prefix fails here instead of
	// allocating.
	if n > uint64(len(r.b)-r.off) {
		return 0, fmt.Errorf("%w: %d %s in %d remaining bytes", ErrTruncated, n, what, len(r.b)-r.off)
	}
	return int(n), nil
}

func (r *reader) str() (string, error) {
	n, err := r.count(maxString, "string bytes")
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) boolean() (bool, error) {
	if r.off >= len(r.b) {
		return false, ErrTruncated
	}
	c := r.b[r.off]
	r.off++
	if c > 1 {
		return false, fmt.Errorf("%w: bool byte %d", ErrMalformed, c)
	}
	return c == 1, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

// bv decodes a width-carrying bitvector; allowZero admits the
// zero-width "no value".
func (r *reader) bv(allowZero bool) (sym.BV, error) {
	w, err := r.uvarint()
	if err != nil {
		return sym.BV{}, err
	}
	if w == 0 {
		if !allowZero {
			return sym.BV{}, fmt.Errorf("%w: zero-width bitvector", ErrMalformed)
		}
		return sym.BV{}, nil
	}
	if w > sym.MaxWidth {
		return sym.BV{}, fmt.Errorf("%w: bitvector width %d out of range [1,%d]", ErrMalformed, w, sym.MaxWidth)
	}
	n := (int(w) + 7) / 8
	if r.off+n > len(r.b) {
		return sym.BV{}, ErrTruncated
	}
	var hi, lo uint64
	for i := 0; i < n; i++ {
		hi = hi<<8 | lo>>56
		lo = lo<<8 | uint64(r.b[r.off+i])
	}
	r.off += n
	out := sym.BV{Hi: hi, Lo: lo, W: uint16(w)}
	if out != sym.NewBV2(uint16(w), hi, lo) {
		return sym.BV{}, fmt.Errorf("%w: bitvector value overflows width %d", ErrMalformed, w)
	}
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.off)
	}
	return nil
}

// DecodeAttach decodes an Attach payload.
func DecodeAttach(b []byte) (*Attach, error) {
	r := &reader{b: b}
	var a Attach
	var err error
	if a.Name, err = r.str(); err != nil {
		return nil, err
	}
	if a.Catalog, err = r.str(); err != nil {
		return nil, err
	}
	if a.Exec, err = r.boolean(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if a.Name == "" {
		return nil, fmt.Errorf("%w: attach without session name", ErrMalformed)
	}
	return &a, nil
}

// DecodeAttachOK decodes an AttachOK payload.
func DecodeAttachOK(b []byte) (*AttachOK, error) {
	r := &reader{b: b}
	var a AttachOK
	var err error
	if a.Name, err = r.str(); err != nil {
		return nil, err
	}
	if a.Program, err = r.str(); err != nil {
		return nil, err
	}
	if a.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	if a.Created, err = r.boolean(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &a, nil
}

// DecodeWrite decodes a Write payload into validated engine updates.
func DecodeWrite(b []byte) (*Write, error) {
	r := &reader{b: b}
	var w Write
	var err error
	if w.Batch, err = r.boolean(); err != nil {
		return nil, err
	}
	if w.DeadlineMS, err = r.uvarint(); err != nil {
		return nil, err
	}
	if w.ReqID, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.count(maxUpdates, "updates")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: write carries no updates", ErrMalformed)
	}
	w.Updates = make([]*controlplane.Update, n)
	for i := range w.Updates {
		u, err := decodeUpdate(r)
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		w.Updates[i] = u
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &w, nil
}

// DecodeUpdate decodes one standalone engine update (used by the
// differential fuzz target; the frame path goes through DecodeWrite).
func DecodeUpdate(b []byte) (*controlplane.Update, error) {
	r := &reader{b: b}
	u, err := decodeUpdate(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return u, nil
}

func decodeUpdate(r *reader) (*controlplane.Update, error) {
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	u := &controlplane.Update{Kind: controlplane.UpdateKind(kind)}
	switch u.Kind {
	case controlplane.InsertEntry, controlplane.ModifyEntry, controlplane.DeleteEntry:
		if u.Table, err = r.str(); err != nil {
			return nil, err
		}
		if u.Table == "" {
			return nil, fmt.Errorf("%w: entry update without table", ErrMalformed)
		}
		if u.Entry, err = decodeEntry(r); err != nil {
			return nil, err
		}
	case controlplane.SetDefault:
		if u.Table, err = r.str(); err != nil {
			return nil, err
		}
		if u.Table == "" {
			return nil, fmt.Errorf("%w: set-default without table", ErrMalformed)
		}
		if u.Default, err = decodeActionCall(r); err != nil {
			return nil, err
		}
	case controlplane.SetValueSet:
		if u.ValueSet, err = r.str(); err != nil {
			return nil, err
		}
		if u.ValueSet == "" {
			return nil, fmt.Errorf("%w: set-value-set without value set", ErrMalformed)
		}
		n, err := r.count(maxSlice, "members")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			var m controlplane.ValueSetMember
			if m.Value, err = r.bv(false); err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			if m.Mask, err = r.bv(true); err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			u.Members = append(u.Members, m)
		}
	case controlplane.FillRegister:
		if u.Register, err = r.str(); err != nil {
			return nil, err
		}
		if u.Register == "" {
			return nil, fmt.Errorf("%w: fill-register without register", ErrMalformed)
		}
		if u.Fill, err = r.bv(false); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown update kind %d", ErrMalformed, kind)
	}
	return u, nil
}

func decodeEntry(r *reader) (*controlplane.TableEntry, error) {
	prio, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if prio > 1<<31 {
		return nil, fmt.Errorf("%w: priority %d out of range", ErrMalformed, prio)
	}
	e := &controlplane.TableEntry{Priority: int(prio)}
	nm, err := r.count(maxSlice, "matches")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nm; i++ {
		kind, err := r.byte()
		if err != nil {
			return nil, err
		}
		m := controlplane.FieldMatch{Kind: controlplane.MatchKind(kind)}
		if m.Value, err = r.bv(false); err != nil {
			return nil, fmt.Errorf("match %d: %w", i, err)
		}
		switch m.Kind {
		case controlplane.MatchExact:
		case controlplane.MatchTernary:
			if m.Mask, err = r.bv(true); err != nil {
				return nil, fmt.Errorf("match %d: %w", i, err)
			}
		case controlplane.MatchLPM:
			plen, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("match %d: %w", i, err)
			}
			if plen > uint64(m.Value.W) {
				return nil, fmt.Errorf("%w: lpm prefix length %d out of range [0,%d]", ErrMalformed, plen, m.Value.W)
			}
			m.PrefixLen = int(plen)
		case controlplane.MatchOptional:
			if m.Wildcard, err = r.boolean(); err != nil {
				return nil, fmt.Errorf("match %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("%w: unknown match kind %d", ErrMalformed, kind)
		}
		e.Matches = append(e.Matches, m)
	}
	if e.Action, err = r.str(); err != nil {
		return nil, err
	}
	if e.Action == "" {
		return nil, fmt.Errorf("%w: entry has no action", ErrMalformed)
	}
	np, err := r.count(maxSlice, "params")
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		p, err := r.bv(false)
		if err != nil {
			return nil, fmt.Errorf("param %d: %w", i, err)
		}
		e.Params = append(e.Params, p)
	}
	return e, nil
}

func decodeActionCall(r *reader) (controlplane.ActionCall, error) {
	var a controlplane.ActionCall
	var err error
	if a.Name, err = r.str(); err != nil {
		return a, err
	}
	if a.Name == "" {
		return a, fmt.Errorf("%w: default action has no name", ErrMalformed)
	}
	n, err := r.count(maxSlice, "params")
	if err != nil {
		return a, err
	}
	for i := 0; i < n; i++ {
		p, err := r.bv(false)
		if err != nil {
			return a, fmt.Errorf("param %d: %w", i, err)
		}
		a.Params = append(a.Params, p)
	}
	return a, nil
}

// DecodeWriteOK decodes a WriteOK payload.
func DecodeWriteOK(b []byte) (*WriteOK, error) {
	r := &reader{b: b}
	var w WriteOK
	var err error
	if w.Coalesced, err = r.boolean(); err != nil {
		return nil, err
	}
	if w.Replayed, err = r.boolean(); err != nil {
		return nil, err
	}
	n, err := r.count(maxUpdates, "decisions")
	if err != nil {
		return nil, err
	}
	w.Decisions = make([]wire.Decision, n)
	for i := range w.Decisions {
		if err := decodeDecision(r, &w.Decisions[i]); err != nil {
			return nil, fmt.Errorf("decision %d: %w", i, err)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &w, nil
}

func decodeDecision(r *reader, d *wire.Decision) error {
	var err error
	if d.Kind, err = r.str(); err != nil {
		return err
	}
	if d.Target, err = r.str(); err != nil {
		return err
	}
	if d.Update, err = r.str(); err != nil {
		return err
	}
	ap, err := r.uvarint()
	if err != nil {
		return err
	}
	if ap > 1<<31 {
		return fmt.Errorf("%w: affected points %d out of range", ErrMalformed, ap)
	}
	d.AffectedPoints = int(ap)
	ncp, err := r.count(maxSlice, "changed points")
	if err != nil {
		return err
	}
	for i := 0; i < ncp; i++ {
		p, err := r.uvarint()
		if err != nil {
			return err
		}
		if p > 1<<31 {
			return fmt.Errorf("%w: changed point %d out of range", ErrMalformed, p)
		}
		d.ChangedPoints = append(d.ChangedPoints, int(p))
	}
	nc, err := r.count(maxSlice, "components")
	if err != nil {
		return err
	}
	for i := 0; i < nc; i++ {
		c, err := r.str()
		if err != nil {
			return err
		}
		d.Components = append(d.Components, c)
	}
	if d.ImplChange, err = r.str(); err != nil {
		return err
	}
	el, err := r.uvarint()
	if err != nil {
		return err
	}
	d.ElapsedNS = int64(el)
	if d.ElapsedNS < 0 {
		return fmt.Errorf("%w: negative elapsed", ErrMalformed)
	}
	if d.Precision, err = r.str(); err != nil {
		return err
	}
	if d.Error, err = r.str(); err != nil {
		return err
	}
	d.ErrorCode, err = r.str()
	return err
}

// DecodeErrMsg decodes an ErrMsg payload.
func DecodeErrMsg(b []byte) (*ErrMsg, error) {
	r := &reader{b: b}
	var e ErrMsg
	status, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if status > 999 {
		return nil, fmt.Errorf("%w: status %d", ErrMalformed, status)
	}
	e.Status = int(status)
	if e.Code, err = r.str(); err != nil {
		return nil, err
	}
	if e.Msg, err = r.str(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &e, nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binMaxVarint; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == binMaxVarint-1 && c > 1 {
				return 0, fmt.Errorf("%w: uvarint overflow", ErrMalformed)
			}
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("%w: uvarint too long", ErrMalformed)
}
