package binproto

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

// FuzzBinFrameDecode is the differential fuzz target for the binary
// framing: the binary decoder and the JSON decoder must agree on every
// logical message.
//
// Two obligations, from one byte stream:
//
//  1. Robustness: the binary decoders (Write, WriteOK, Attach, ErrMsg)
//     never panic on arbitrary bytes — they decode or they error.
//  2. Equivalence: when the same bytes parse as a JSON WriteRequest
//     whose updates survive conversion to engine vocabulary, encoding
//     those updates in binary and decoding them back must yield the
//     identical engine updates (binary decode ≡ JSON decode on the
//     same logical message). The response direction is held to the
//     same bar via wire.Decision round-trips.
func FuzzBinFrameDecode(f *testing.F) {
	// Binary seeds: well-formed payloads of each message type.
	f.Add(AppendWrite(nil, &Write{Batch: true, ReqID: "r", Updates: sampleUpdates()}))
	f.Add(AppendAttach(nil, &Attach{Name: "s", Catalog: "scion"}))
	f.Add(AppendWriteOK(nil, &WriteOK{Decisions: []wire.Decision{{Kind: "forward", ElapsedNS: 1}}}))
	f.Add(AppendErrMsg(nil, &ErrMsg{Status: 429, Code: wire.CodeBackpressure, Msg: "q"}))
	// JSON seeds: the same logical messages on the compat surface.
	f.Add([]byte(`{"version":1,"mode":"batch","updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"exact","value":{"w":32,"hex":"0a000001"}}],"action":"fwd","params":[{"w":9,"hex":"1ff"}]}}]}`))
	f.Add([]byte(`{"updates":[{"kind":"insert","table":"t","entry":{"matches":[{"kind":"lpm","value":{"w":32,"hex":"0a000000"},"prefix_len":8}],"action":"fwd"}}]}`))
	f.Add([]byte(`{"updates":[{"kind":"set-value-set","value_set":"vs","members":[{"value":{"w":8,"hex":"2a"},"mask":{"w":8,"hex":"ff"}}]}]}`))
	f.Add([]byte(`{"updates":[{"kind":"fill-register","register":"r","fill":{"w":128,"hex":"ffffffffffffffffffffffffffffffff"}}]}`))
	f.Add([]byte(`{"updates":[{"kind":"set-default","table":"t","default":{"name":"drop","params":[{"w":48,"hex":"0000deadbeef"}]}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Binary decoders must not panic, and anything they accept
		// must re-encode byte-identically (canonical encoding).
		if w, err := DecodeWrite(data); err == nil {
			re := AppendWrite(nil, w)
			back, err := DecodeWrite(re)
			if err != nil {
				t.Fatalf("re-decode of accepted Write failed: %v", err)
			}
			if !reflect.DeepEqual(w, back) {
				t.Fatalf("binary Write does not round-trip: %+v vs %+v", w, back)
			}
		}
		if a, err := DecodeAttach(data); err == nil {
			if back, err := DecodeAttach(AppendAttach(nil, a)); err != nil || !reflect.DeepEqual(a, back) {
				t.Fatalf("binary Attach does not round-trip (%v)", err)
			}
		}
		if ok, err := DecodeWriteOK(data); err == nil {
			if back, err := DecodeWriteOK(AppendWriteOK(nil, ok)); err != nil || !reflect.DeepEqual(ok, back) {
				t.Fatalf("binary WriteOK does not round-trip (%v)", err)
			}
		}
		if e, err := DecodeErrMsg(data); err == nil {
			if back, err := DecodeErrMsg(AppendErrMsg(nil, e)); err != nil || !reflect.DeepEqual(e, back) {
				t.Fatalf("binary ErrMsg does not round-trip (%v)", err)
			}
		}

		// 2. Differential: JSON-accepted updates must survive the binary
		// encoding unchanged.
		var wr wire.WriteRequest
		if err := wire.DecodeBytes(data, &wr); err != nil {
			return
		}
		jsonUpdates, err := wr.ToUpdates()
		if err != nil {
			return
		}
		bin := AppendWrite(nil, &Write{Batch: wr.Batch(), Updates: jsonUpdates})
		w, err := DecodeWrite(bin)
		if err != nil {
			t.Fatalf("binary encoding of JSON-accepted updates fails to decode: %v", err)
		}
		if !reflect.DeepEqual(jsonUpdates, w.Updates) {
			t.Fatalf("binary decode != JSON decode on the same logical message:\n json: %+v\n  bin: %+v",
				jsonUpdates, w.Updates)
		}
		if w.Batch != wr.Batch() {
			t.Fatalf("batch semantics diverge: json %v, bin %v", wr.Batch(), w.Batch)
		}
	})
}
