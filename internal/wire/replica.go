package wire

import "fmt"

// Replication message bodies: the snapshot-shipping channel between an
// active shard and its standby (internal/server's /v1/replica/*
// endpoints). The model is base-plus-rounds:
//
//   - ReplicaSession ships a full warm-state snapshot (the base), which
//     the standby restores into a live pipeline. A base carries the
//     round sequence number its state covers.
//   - ReplicaRound ships one applied write round — the updates of one
//     dispatcher round, with its request segmentation — which the
//     standby applies to its live pipeline with the same single/batch
//     semantics. The engine is deterministic, so the standby's state,
//     audit sequence and decision stream track the active's exactly.
//
// Rounds carry consecutive Seq numbers. A standby that is missing the
// session or sees a gap answers 409 with CodeReplicaGap, and the active
// catches it up with a fresh base (whose state subsumes the gap —
// rounds are shipped after they are applied).

// ReplicaSession ships a base snapshot to a standby.
type ReplicaSession struct {
	Version int    `json:"version,omitempty"`
	Name    string `json:"name"`
	Program string `json:"program,omitempty"`
	// Seq is the round sequence the snapshot covers: the standby
	// accepts rounds starting at Seq+1.
	Seq uint64 `json:"seq"`
	// Snapshot is the Pipeline.Snapshot checkpoint (base64 in JSON).
	Snapshot []byte `json:"snapshot"`
	// Exec re-enables the data-plane executor on the restored session.
	Exec bool `json:"exec,omitempty"`
}

// Validate checks a base ship's shape.
func (r *ReplicaSession) Validate() error {
	if err := CheckVersion(r.Version); err != nil {
		return err
	}
	if r.Name == "" {
		return fmt.Errorf("wire: replica session name required")
	}
	if len(r.Snapshot) == 0 {
		return fmt.Errorf("wire: replica session carries no snapshot")
	}
	return nil
}

// ReplicaSeg attributes a slice of a round's updates to one original
// write request, so the standby can populate its idempotency cache
// with per-request decisions (exactly-once across failover).
type ReplicaSeg struct {
	// ReqID is the originating request's idempotency key ("" when the
	// client sent none).
	ReqID string `json:"req_id,omitempty"`
	// N is how many of the round's updates belong to this request.
	N int `json:"n"`
}

// ReplicaRound ships one applied dispatcher round.
type ReplicaRound struct {
	Version int    `json:"version,omitempty"`
	Seq     uint64 `json:"seq"`
	// Batch mirrors the active's apply semantics for the round: one
	// atomic ApplyBatch transition, or sequential single applies.
	Batch   bool         `json:"batch,omitempty"`
	Segs    []ReplicaSeg `json:"segs,omitempty"`
	Updates []Update     `json:"updates"`
}

// Validate checks a round's shape; the per-update validation happens in
// ToUpdates.
func (r *ReplicaRound) Validate() error {
	if err := CheckVersion(r.Version); err != nil {
		return err
	}
	if r.Seq == 0 {
		return fmt.Errorf("wire: replica round seq must be positive")
	}
	if len(r.Updates) == 0 {
		return fmt.Errorf("wire: replica round carries no updates")
	}
	n := 0
	for _, s := range r.Segs {
		if s.N <= 0 {
			return fmt.Errorf("wire: replica segment with %d updates", s.N)
		}
		n += s.N
	}
	if len(r.Segs) > 0 && n != len(r.Updates) {
		return fmt.Errorf("wire: replica segments cover %d of %d updates", n, len(r.Updates))
	}
	return nil
}

// ReplicaPromoteResponse answers a promote call with the sessions that
// went live.
type ReplicaPromoteResponse struct {
	Sessions []string `json:"sessions"`
}

// CodeReplicaGap is the 409 error code a standby answers when a round's
// Seq does not extend its state (or the session is unknown): the active
// must re-ship a base snapshot.
const CodeReplicaGap = "replica_gap"
