package wire

import (
	"fmt"
	"strings"

	"repro/internal/dpexec"
	"repro/internal/flayerr"
)

// MaxPacketBytes caps one wire packet (jumbo frame headroom). The cap
// bounds the per-request work an /exec call can demand, independently
// of the body size cap.
const MaxPacketBytes = 9216

// MaxExecPackets caps the packets of one /exec request.
const MaxExecPackets = 4096

// Packet is the wire form of one data-plane packet: the byte length
// plus the bytes in lowercase hex (two nibbles per byte, most
// significant first), mirroring the {w,hex} bitvector convention with
// w counting bytes. {"w":3,"hex":"08004f"} is the frame 08 00 4f.
type Packet struct {
	W   int    `json:"w"`
	Hex string `json:"hex"`
	// Port is the ingress port (ignored on emitted packets).
	Port uint16 `json:"port,omitempty"`
}

// ExecRequest runs a burst of packets through a session's current
// specialized program (POST /v1/sessions/{name}/exec).
type ExecRequest struct {
	Version int      `json:"version,omitempty"`
	Packets []Packet `json:"packets"`
}

// ExecResult is the observable outcome of one packet.
type ExecResult struct {
	Dropped        bool   `json:"dropped,omitempty"`
	ParserRejected bool   `json:"parser_rejected,omitempty"`
	EgressPort     uint64 `json:"egress_port,omitempty"`
	McastGrp       uint64 `json:"mcast_grp,omitempty"`
	// Emitted is the deparsed output frame; omitted when dropped.
	Emitted *Packet `json:"emitted,omitempty"`
}

// ExecResponse returns one result per submitted packet, in order.
type ExecResponse struct {
	Results []ExecResult `json:"results"`
	// Epoch is the engine epoch whose image executed the burst, for
	// correlating results against stats and audit reads.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ToPacket validates a wire packet and returns its raw bytes. Every
// malformed shape yields an error satisfying
// errors.Is(err, flayerr.ErrBadPacket).
func ToPacket(p Packet) ([]byte, error) {
	bad := func(format string, args ...any) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s", flayerr.ErrBadPacket, fmt.Sprintf(format, args...))
	}
	if p.W < 0 || p.W > MaxPacketBytes {
		return bad("length %d out of range [0,%d]", p.W, MaxPacketBytes)
	}
	if len(p.Hex) != 2*p.W {
		return bad("length-%d packet needs %d hex nibbles, got %d", p.W, 2*p.W, len(p.Hex))
	}
	data := make([]byte, p.W)
	for i := 0; i < len(p.Hex); i++ {
		c := p.Hex[i]
		var d byte
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		default:
			return bad("invalid hex digit %q", c)
		}
		data[i/2] = data[i/2]<<4 | d
	}
	return data, nil
}

// FromPacket converts raw bytes to the wire packet form.
func FromPacket(data []byte, port uint16) Packet {
	var b strings.Builder
	b.Grow(2 * len(data))
	for _, c := range data {
		b.WriteByte("0123456789abcdef"[c>>4])
		b.WriteByte("0123456789abcdef"[c&0xf])
	}
	return Packet{W: len(data), Hex: b.String(), Port: port}
}

// ToPackets validates an exec request into raw packet buffers plus
// their ingress ports.
func (r *ExecRequest) ToPackets() ([][]byte, []uint16, error) {
	if err := CheckVersion(r.Version); err != nil {
		return nil, nil, err
	}
	if len(r.Packets) == 0 {
		return nil, nil, fmt.Errorf("%w: exec request carries no packets", flayerr.ErrBadPacket)
	}
	if len(r.Packets) > MaxExecPackets {
		return nil, nil, fmt.Errorf("%w: %d packets over the per-request cap %d",
			flayerr.ErrBadPacket, len(r.Packets), MaxExecPackets)
	}
	packets := make([][]byte, len(r.Packets))
	ports := make([]uint16, len(r.Packets))
	for i, p := range r.Packets {
		data, err := ToPacket(p)
		if err != nil {
			return nil, nil, fmt.Errorf("packet %d: %w", i, err)
		}
		packets[i] = data
		ports[i] = p.Port
	}
	return packets, ports, nil
}

// FromExecResult converts an executor result to its wire form.
func FromExecResult(r dpexec.Result) ExecResult {
	out := ExecResult{
		Dropped:        r.Dropped,
		ParserRejected: r.ParserRejected,
		EgressPort:     r.EgressPort,
		McastGrp:       r.McastGrp,
	}
	if !r.Dropped {
		p := FromPacket(r.Emitted, 0)
		out.Emitted = &p
	}
	return out
}
