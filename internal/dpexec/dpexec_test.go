package dpexec_test

import (
	"math/rand"
	"testing"

	"repro/internal/bmv2"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dpexec"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/progs"
	"repro/internal/sym"
)

func build(t *testing.T, src string) (*ast.Program, *typecheck.Info) {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, info
}

// diff runs the same packets through the compiled image and the
// reference interpreter and requires identical observable results.
func diff(t *testing.T, prog *ast.Program, info *typecheck.Info, cfg *controlplane.Config, packets int, gen func() ([]byte, uint16)) {
	t.Helper()
	img, err := dpexec.Compile(prog, info, cfg)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, ast.Print(prog))
	}
	in := bmv2.New(prog, info, cfg)
	m := dpexec.NewMachine()
	for i := 0; i < packets; i++ {
		data, port := gen()
		want, err1 := in.Run(bmv2.Packet{Data: data, IngressPort: port})
		got, err2 := m.Run(img, data, port)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("packet %x: error divergence: bmv2=%v dpexec=%v", data, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !got.Equal(dpexec.Result{Dropped: want.Dropped, EgressPort: want.EgressPort, McastGrp: want.McastGrp, Emitted: want.Emitted}) {
			t.Fatalf("packet %x port %d:\nbmv2:   %+v\ndpexec: %+v\nprogram:\n%s",
				data, port, want, got, ast.Print(prog))
		}
	}
}

// TestDifferentialCatalog is the core equivalence property: for every
// catalog program under its representative configuration, the compiled
// image is packet-for-packet identical to the reference interpreter —
// on the original program and on the current specialized program.
func TestDifferentialCatalog(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, p := range progs.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s, err := p.Load()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := p.ApplyRepresentative(s); err != nil {
				t.Fatal(err)
			}
			gen := func() ([]byte, uint16) {
				data := make([]byte, r.Intn(96))
				r.Read(data)
				return data, uint16(r.Intn(1024))
			}
			diff(t, s.Prog, s.Info, s.Cfg, 150, gen)

			spec := s.SpecializedProgram()
			specInfo, err := typecheck.Check(spec)
			if err != nil {
				t.Fatalf("specialized program fails typecheck: %v", err)
			}
			diff(t, spec, specInfo, s.Cfg, 150, gen)
		})
	}
}

// TestDifferentialRouterChurn drives random LPM churn and checks
// equivalence at every step, exercising the incremental rebuild path
// against a from-scratch reference.
func TestDifferentialRouterChurn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s, err := core.NewFromSource("router", routerSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen := func() ([]byte, uint16) {
		data := ipv4Packet(uint64(r.Int63())&0xFFFFFFFFFFFF, byte(r.Intn(256)), r.Uint32())
		if r.Intn(4) == 0 {
			data[12], data[13] = byte(r.Intn(256)), byte(r.Intn(256))
		}
		if r.Intn(6) == 0 {
			data = data[:r.Intn(len(data))]
		}
		return data, uint16(r.Intn(512))
	}
	img, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		var u *controlplane.Update
		if r.Intn(4) == 0 {
			u = &controlplane.Update{
				Kind: controlplane.SetDefault, Table: "Ingress.route",
				Default: controlplane.ActionCall{Name: []string{"drop", "NoAction"}[r.Intn(2)]},
			}
		} else {
			action, params := "fwd", []sym.BV{sym.NewBV(9, uint64(r.Intn(512)))}
			if r.Intn(4) == 0 {
				action, params = "drop", nil
			}
			u = &controlplane.Update{
				Kind: controlplane.InsertEntry, Table: "Ingress.route",
				Entry: &controlplane.TableEntry{
					Matches: []controlplane.FieldMatch{{
						Kind:      controlplane.MatchLPM,
						Value:     sym.NewBV(32, uint64(r.Uint32())),
						PrefixLen: r.Intn(33),
					}},
					Action: action, Params: params,
				},
			}
		}
		if d := s.Apply(u); d.Kind == core.Rejected {
			continue
		}
		// Incremental image must stay equivalent...
		ni, err := img.WithTarget(s.Cfg, u.Target())
		if err != nil {
			t.Fatalf("step %d: rebuild: %v", step, err)
		}
		img = ni
		// ...and hash-identical to a from-scratch compile.
		full, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
		if err != nil {
			t.Fatalf("step %d: compile: %v", step, err)
		}
		if img.Hash() != full.Hash() {
			t.Fatalf("step %d: incremental hash %x != full hash %x", step, img.Hash(), full.Hash())
		}
		in := bmv2.New(s.Prog, s.Info, s.Cfg)
		m := dpexec.NewMachine()
		for i := 0; i < 25; i++ {
			data, port := gen()
			want, err1 := in.Run(bmv2.Packet{Data: data, IngressPort: port})
			got, err2 := m.Run(img, data, port)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d packet %x: error divergence: %v vs %v", step, data, err1, err2)
			}
			if err1 == nil && !got.Equal(dpexec.Result{Dropped: want.Dropped, EgressPort: want.EgressPort, McastGrp: want.McastGrp, Emitted: want.Emitted}) {
				t.Fatalf("step %d packet %x:\nbmv2:   %+v\ndpexec: %+v", step, data, want, got)
			}
		}
	}
}

// TestHashParityCatalog: for each catalog program, chaining WithTarget
// over the representative updates hashes identically to one full
// compile of the final configuration.
func TestHashParityCatalog(t *testing.T) {
	for _, p := range progs.Catalog() {
		p := p
		if p.Representative == nil {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			s, err := p.Load()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			img, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range p.Representative() {
				if d := s.Apply(u); d.Kind == core.Rejected {
					t.Fatalf("representative update rejected: %v", d.Err)
				}
				if img, err = img.WithTarget(s.Cfg, u.Target()); err != nil {
					t.Fatal(err)
				}
			}
			full, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			if img.Hash() != full.Hash() {
				t.Fatalf("incremental %x != full %x", img.Hash(), full.Hash())
			}
		})
	}
}

// TestZeroAllocRun: steady-state packet execution must not allocate.
func TestZeroAllocRun(t *testing.T) {
	prog, info := build(t, routerSrc)
	s, err := core.NewFromSource("router", routerSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		d := s.Apply(&controlplane.Update{
			Kind: controlplane.InsertEntry, Table: "Ingress.route",
			Entry: &controlplane.TableEntry{
				Matches: []controlplane.FieldMatch{{
					Kind: controlplane.MatchLPM, Value: sym.NewBV(32, uint64(0x0a000000+i<<16)), PrefixLen: 16,
				}},
				Action: "fwd", Params: []sym.BV{sym.NewBV(9, uint64(i+1))},
			},
		})
		if d.Kind == core.Rejected {
			t.Fatal(d.Err)
		}
	}
	img, err := dpexec.Compile(prog, info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := dpexec.NewMachine()
	pkt := ipv4Packet(0xAABBCCDDEEFF, 64, 0x0a030201)
	if _, err := m.Run(img, pkt, 3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Run(img, pkt, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %v times per packet, want 0", allocs)
	}
}

// TestRegisterSemantics: register state persists across packets within
// one image and resets when the machine attaches to a new image.
func TestRegisterSemantics(t *testing.T) {
	src := `
header h_t { bit<8> v; }
struct headers { h_t h; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    register<bit<9>>(4) seen;
    apply {
        bit<9> prev;
        seen.read(prev, 32w0);
        std.egress_port = prev;
        seen.write(32w0, prev + 9w1);
    }
}
`
	prog, info := build(t, src)
	img, err := dpexec.Compile(prog, info, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := dpexec.NewMachine()
	for want := 0; want < 3; want++ {
		res, err := m.Run(img, []byte{0xFF}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.EgressPort != uint64(want) {
			t.Fatalf("packet %d: egress %d, want %d", want, res.EgressPort, want)
		}
	}
	// A hot-swap resets register state to the new image's fill.
	m2 := dpexec.NewMachine()
	res, err := m2.Run(img, []byte{0xFF}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 0 {
		t.Fatalf("fresh machine sees register %d, want 0", res.EgressPort)
	}
}

// TestParserNonTermination: a looping parser must trap at the same
// step budget as the reference interpreter, not hang.
func TestParserNonTermination(t *testing.T) {
	prog, info := build(t, `
header h_t { bit<8> v; }
struct headers { h_t h; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { transition spin; }
    state spin { transition spin; }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply { std.egress_port = 9w1; }
}
`)
	img, err := dpexec.Compile(prog, info, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := dpexec.NewMachine()
	_, derr := m.Run(img, []byte{0xAB}, 0)
	in := bmv2.New(prog, info, nil)
	_, berr := in.Run(bmv2.Packet{Data: []byte{0xAB}})
	if derr == nil || berr == nil {
		t.Fatalf("expected both engines to trap: dpexec=%v bmv2=%v", derr, berr)
	}
}

// routerSrc mirrors the bmv2 test router for cross-checking.
const routerSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst; }
struct headers { ethernet_t eth; ipv4_t ipv4; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            16w0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action fwd(bit<9> port) {
        std.egress_port = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std); }
    table route {
        key = { hdr.ipv4.dst: lpm; }
        actions = { fwd; drop; NoAction; }
        default_action = drop;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            route.apply();
        }
    }
}
`

func ipv4Packet(ethDst uint64, ttl byte, dst uint32) []byte {
	var buf []byte
	for i := 5; i >= 0; i-- {
		buf = append(buf, byte(ethDst>>(8*i)))
	}
	buf = append(buf, 0, 0, 0, 0, 0, 0)
	buf = append(buf, 0x08, 0x00)
	buf = append(buf, ttl, 6)
	buf = append(buf, 1, 2, 3, 4)
	buf = append(buf, byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst))
	return buf
}
