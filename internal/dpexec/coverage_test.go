package dpexec_test

// Differential tests targeting the compiler paths the catalog programs
// do not reach: value sets (incl. masked members), dynamic operator
// evaluation and folding, default actions with arguments, optional
// matches, indexed exact tables, hit-form conditions, and the
// WithTarget rebuild paths for value sets and registers.

import (
	"math/rand"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dpexec"
	"repro/internal/sym"
)

// opsSrc exercises the expression compiler: mixed const/dynamic
// operands, shifts (incl. oversized dynamic amounts), comparisons,
// boolean connectives, concat, slices, ternary choice, unary ops, and
// checksum16 over dynamic arguments — on non-byte-aligned widths.
const opsSrc = `
header w_t { bit<4> a; bit<12> b; bit<16> c; bit<16> d; bit<8> e; bit<8> f; }
struct headers { w_t w; }
struct metadata { bit<16> acc; }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.w); transition accept; }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        meta.acc = hdr.w.c + hdr.w.d;
        meta.acc = meta.acc - 16w3;
        meta.acc = meta.acc & (hdr.w.c | 16w0x0F0F);
        meta.acc = meta.acc ^ (hdr.w.d << 2);
        meta.acc = meta.acc ^ (hdr.w.c >> hdr.w.e);
        meta.acc = meta.acc + (hdr.w.c << hdr.w.f);
        if ((hdr.w.c < hdr.w.d) && (hdr.w.e != 8w0) || !(hdr.w.f >= 8w128)) {
            meta.acc = ~meta.acc;
        }
        if (hdr.w.c <= hdr.w.d) {
            meta.acc = -meta.acc;
        }
        if (hdr.w.e > hdr.w.f) {
            meta.acc = (hdr.w.a == 4w7) ? 16w99 : (8w0 ++ ~hdr.w.f);
        }
        hdr.w.c = checksum16(meta.acc, hdr.w.d, hdr.w.a ++ hdr.w.b);
        std.egress_port = (hdr.w.a ++ hdr.w.b)[10:2];
    }
}
`

func TestDifferentialOps(t *testing.T) {
	prog, info := build(t, opsSrc)
	r := rand.New(rand.NewSource(11))
	diff(t, prog, info, nil, 400, func() ([]byte, uint16) {
		data := make([]byte, r.Intn(12))
		r.Read(data)
		// Bias shift amounts toward the in-range/oversized boundary.
		if len(data) >= 8 && r.Intn(2) == 0 {
			data[6] = byte(r.Intn(20))
			data[7] = byte(r.Intn(20))
		}
		return data, uint16(r.Intn(512))
	})
}

// vsetSrc mirrors the parser-pruning shape: a value set steering a
// select, with the vlan tail only live when the set matches.
const vsetSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header vlan_t { bit<16> tci; bit<16> next; }
struct headers { ethernet_t eth; vlan_t vlan; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(4) vlan_types;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            vlan_types: parse_vlan;
            16w0x0900 &&& 16w0xFF00: reject;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition accept;
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (hdr.vlan.isValid()) {
            std.egress_port = hdr.vlan.tci[8:0];
        } else {
            std.egress_port = 9w1;
        }
    }
}
`

func TestDifferentialValueSets(t *testing.T) {
	s, err := core.NewFromSource("vset", vsetSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(13))
	gen := func() ([]byte, uint16) {
		data := make([]byte, 14+4+r.Intn(6))
		r.Read(data)
		switch r.Intn(4) {
		case 0:
			data[12], data[13] = 0x81, 0x00
		case 1:
			data[12], data[13] = 0x88, byte(r.Intn(4))
		}
		return data, uint16(r.Intn(512))
	}
	// Unconfigured set: never matches.
	diff(t, s.Prog, s.Info, s.Cfg, 100, gen)

	img, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exact, masked, and catch-all (zero-mask) members.
	u := &controlplane.Update{
		Kind: controlplane.SetValueSet, ValueSet: "P.vlan_types",
		Members: []controlplane.ValueSetMember{
			{Value: sym.NewBV(16, 0x8100)},
			{Value: sym.NewBV(16, 0x8800), Mask: sym.NewBV(16, 0xFF00)},
		},
	}
	if d := s.Apply(u); d.Kind == core.Rejected {
		t.Fatal(d.Err)
	}
	diff(t, s.Prog, s.Info, s.Cfg, 100, gen)

	// Incremental vset rebuild must hash like a full compile.
	img, err = img.WithTarget(s.Cfg, u.Target())
	if err != nil {
		t.Fatal(err)
	}
	full, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if img.Hash() != full.Hash() {
		t.Fatalf("incremental vset hash %x != full %x", img.Hash(), full.Hash())
	}
}

// tblSrc exercises miss blocks with arguments, optional matches, the
// indexed all-exact probe, and hit-form conditions.
const tblSrc = `
header w_t { bit<16> c; bit<16> d; bit<8> e; }
struct headers { w_t w; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.w); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action setp(bit<9> port, bit<16> tag) { std.egress_port = port; hdr.w.c = tag; }
    action bump() { hdr.w.d = hdr.w.d + 16w1; }
    action drop() { mark_to_drop(std); }
    table wide {
        key = { hdr.w.c: exact; hdr.w.e: optional; }
        actions = { setp; drop; NoAction; }
        default_action = setp(9w3, 16w7);
    }
    table fast {
        key = { hdr.w.e: exact; }
        actions = { bump; drop; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (fast.apply().hit) {
            hdr.w.d = hdr.w.d + 16w0x100;
        }
        wide.apply();
    }
}
`

func TestDifferentialTables(t *testing.T) {
	s, err := core.NewFromSource("tbl", tblSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(19))
	gen := func() ([]byte, uint16) {
		data := make([]byte, 5+r.Intn(4))
		r.Read(data)
		// Bias keys toward configured values.
		if r.Intn(2) == 0 {
			data[4] = byte(r.Intn(8))
		}
		if r.Intn(2) == 0 {
			data[0], data[1] = 0, byte(r.Intn(4))
		}
		return data, uint16(r.Intn(512))
	}
	// Program defaults only (miss block with runtime-evaluated args).
	diff(t, s.Prog, s.Info, s.Cfg, 100, gen)

	apply := func(u *controlplane.Update) {
		t.Helper()
		if d := s.Apply(u); d.Kind == core.Rejected {
			t.Fatal(d.Err)
		}
	}
	// Six all-exact entries cross the index floor on fast.
	for i := 0; i < 6; i++ {
		kind := "bump"
		if i == 3 {
			kind = "drop"
		}
		apply(&controlplane.Update{
			Kind: controlplane.InsertEntry, Table: "Ing.fast",
			Entry: &controlplane.TableEntry{
				Matches: []controlplane.FieldMatch{{Kind: controlplane.MatchExact, Value: sym.NewBV(8, uint64(i))}},
				Action:  kind,
			},
		})
	}
	// Exact+optional entries, one wildcard, plus NoAction entries.
	apply(&controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ing.wide",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchExact, Value: sym.NewBV(16, 1)},
				{Kind: controlplane.MatchOptional, Value: sym.NewBV(8, 2)},
			},
			Action: "setp", Params: []sym.BV{sym.NewBV(9, 17), sym.NewBV(16, 0xAB)},
		},
	})
	apply(&controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ing.wide",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchExact, Value: sym.NewBV(16, 2)},
				{Kind: controlplane.MatchOptional, Value: sym.NewBV(8, 0), Wildcard: true},
			},
			Action: "NoAction",
		},
	})
	diff(t, s.Prog, s.Info, s.Cfg, 150, gen)

	// Control-plane default override replaces the program default.
	apply(&controlplane.Update{
		Kind: controlplane.SetDefault, Table: "Ing.wide",
		Default: controlplane.ActionCall{Name: "setp", Params: []sym.BV{sym.NewBV(9, 5), sym.NewBV(16, 0xFF)}},
	})
	diff(t, s.Prog, s.Info, s.Cfg, 150, gen)
}

// TestDifferentialDynamicDefaultArgs: bmv2 evaluates program-default
// action arguments at runtime; the engine front end restricts them to
// literals, but the executors agree on the general form. Compiled
// without a configuration, so the program default is live.
func TestDifferentialDynamicDefaultArgs(t *testing.T) {
	prog, info := build(t, `
header w_t { bit<16> c; bit<16> d; bit<8> e; }
struct headers { w_t w; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.w); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action setp(bit<9> port, bit<16> tag) { std.egress_port = port; hdr.w.c = tag; }
    table dflt {
        key = { hdr.w.c: exact; }
        actions = { setp; NoAction; }
        default_action = setp(9w3, hdr.w.d + 16w1);
    }
    apply { dflt.apply(); }
}
`)
	r := rand.New(rand.NewSource(23))
	diff(t, prog, info, nil, 100, func() ([]byte, uint16) {
		data := make([]byte, 5+r.Intn(3))
		r.Read(data)
		return data, uint16(r.Intn(512))
	})
}

// regSrc is a counting register for the WithTarget register path.
const regSrc = `
header h_t { bit<8> v; }
struct headers { h_t h; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    register<bit<9>>(4) seen;
    apply {
        bit<9> prev;
        seen.read(prev, 32w0);
        std.egress_port = prev;
        seen.write(32w0, prev + 9w1);
    }
}
`

func TestWithTargetRegister(t *testing.T) {
	s, err := core.NewFromSource("reg", regSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	img, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := &controlplane.Update{Kind: controlplane.FillRegister, Register: "C.seen", Fill: sym.NewBV(9, 40)}
	if d := s.Apply(u); d.Kind == core.Rejected {
		t.Fatal(d.Err)
	}
	ni, err := img.WithTarget(s.Cfg, u.Target())
	if err != nil {
		t.Fatal(err)
	}
	full, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ni.Hash() != full.Hash() {
		t.Fatalf("incremental register hash %x != full %x", ni.Hash(), full.Hash())
	}
	if ni.Hash() == img.Hash() {
		t.Fatal("register fill did not change the image hash")
	}
	m := dpexec.NewMachine()
	res, err := m.Run(ni, []byte{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 40 {
		t.Fatalf("register fill not applied: egress %d, want 40", res.EgressPort)
	}
	// Swapping images resets register state to the new image's fill.
	if _, err := m.Run(ni, []byte{0}, 0); err != nil {
		t.Fatal(err)
	}
	res, err = m.Run(img, []byte{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 0 {
		t.Fatalf("hot swap kept stale register state: egress %d, want 0", res.EgressPort)
	}
}

// TestWithTargetUnknown: patching a target the image does not contain
// (a pruned table) returns the image unchanged — the engine only
// forwards updates whose target is unobservable in the program.
func TestWithTargetUnknown(t *testing.T) {
	prog, info := build(t, opsSrc)
	img, err := dpexec.Compile(prog, info, nil)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := img.WithTarget(nil, "Ing.gone")
	if err != nil {
		t.Fatal(err)
	}
	if ni != img {
		t.Fatal("unknown target rebuilt a new image")
	}
}

func TestImageAccessors(t *testing.T) {
	prog, info := build(t, opsSrc)
	img, err := dpexec.Compile(prog, info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.NumSlots() == 0 || img.NumInstrs() == 0 || img.Hash() == 0 {
		t.Fatalf("degenerate image: slots=%d instrs=%d hash=%x",
			img.NumSlots(), img.NumInstrs(), img.Hash())
	}
}
