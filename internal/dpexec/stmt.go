package dpexec

import (
	"strconv"

	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// ---------------------------------------------------------------------------
// Parser FSM

// compileParser flattens the parser state machine: each state is a
// basic block starting with a step-counter check, transitions are
// direct jumps, and select cases are chains of keyset tests. It
// returns the index of the accept block's exit jump, which the caller
// patches to the first control's entry.
func (c *compiler) compileParser(pd *ast.ParserDecl) (int, error) {
	a := c.asm
	nonterm := c.trap("parser did not terminate")

	type fix struct {
		idx   int
		state string
	}
	var fixes []fix
	jumpTo := func(state string) {
		fixes = append(fixes, fix{a.emit(opJmp, -1, 0, 0), state})
	}

	jumpTo("start")
	pcOf := map[string]int{}
	for _, st := range pd.States {
		if _, dup := pcOf[st.Name]; dup || st.Name == "accept" || st.Name == "reject" {
			continue // unreachable by bmv2's name resolution
		}
		pcOf[st.Name] = len(a.code)
		a.emit(opStep, nonterm, 0, 0)
		c.pushScope()
		for _, s := range st.Stmts {
			if err := c.compileStmt(s); err != nil {
				c.popScope()
				return 0, err
			}
		}
		err := c.compileTransition(pd, st.Trans, jumpTo)
		c.popScope()
		if err != nil {
			return 0, err
		}
	}
	// Accept: count the final step, then fall through to the controls.
	pcOf["accept"] = len(a.code)
	a.emit(opStep, nonterm, 0, 0)
	acceptJ := a.emit(opJmp, -1, 0, 0)
	// Reject: count the final step, then halt rejected.
	pcOf["reject"] = len(a.code)
	a.emit(opStep, nonterm, 0, 0)
	a.emit(opRejectPkt, 0, 0, 0)
	// Unknown transition targets trap exactly like bmv2's runtime
	// lookup failure (after counting the step that reached them).
	for _, f := range fixes {
		pc, ok := pcOf[f.state]
		if !ok {
			pc = len(a.code)
			pcOf[f.state] = pc
			a.emit(opStep, nonterm, 0, 0)
			a.emit(opTrap, c.trap("unknown parser state "+f.state), 0, 0)
		}
		a.code[f.idx].a = int32(pc)
	}
	return acceptJ, nil
}

func (c *compiler) compileTransition(pd *ast.ParserDecl, tr ast.Transition, jumpTo func(string)) error {
	a := c.asm
	if tr.Select == nil {
		jumpTo(tr.Next)
		return nil
	}
	// Evaluate every select key once, into stable slots.
	selSlots := make([]int32, len(tr.Select))
	pos := tr.Pos().String()
	for i, e := range tr.Select {
		v, err := c.expr(e)
		if err != nil {
			return err
		}
		slot := c.cc.alloc("$sel:"+pos+":"+strconv.Itoa(i), sym.BV{})
		if v.c {
			a.emit(opStoreC, slot, a.constIdx(v.k), 0)
		} else {
			a.emit(opStore, slot, 0, 0)
		}
		selSlots[i] = slot
	}
	for _, cs := range tr.Cases {
		if len(cs.Keysets) == 1 && cs.Keysets[0].Kind == ast.KeysetDefault {
			jumpTo(cs.Next)
			return nil // later cases are unreachable
		}
		var toNext []int
		for ki, ks := range cs.Keysets {
			if ki >= len(selSlots) {
				return cerr("select case has more keysets than keys")
			}
			switch ks.Kind {
			case ast.KeysetDefault:
				// Matches anything: no test.
			case ast.KeysetValue:
				a.emit(opLoad, selSlots[ki], 0, 0)
				v, err := c.expr(ks.Value)
				if err != nil {
					return err
				}
				c.mat(v)
				a.emit(opEqv, 0, 0, 0)
				toNext = append(toNext, a.emit(opJf, -1, 0, 0))
			case ast.KeysetMask:
				// key & mask == value & mask. Keyset expressions are
				// pure, so re-evaluating the mask for the second
				// conjunct is observationally identical to bmv2's
				// evaluate-once.
				a.emit(opLoad, selSlots[ki], 0, 0)
				m, err := c.expr(ks.Mask)
				if err != nil {
					return err
				}
				c.mat(m)
				a.emit(opAnd, 0, 0, 0)
				v, err := c.expr(ks.Value)
				if err != nil {
					return err
				}
				if v.c && m.c {
					a.emit(opPushC, a.constIdx(v.k.And(m.k)), 0, 0)
				} else {
					c.mat(v)
					m2, err := c.expr(ks.Mask)
					if err != nil {
						return err
					}
					c.mat(m2)
					a.emit(opAnd, 0, 0, 0)
				}
				a.emit(opEqv, 0, 0, 0)
				toNext = append(toNext, a.emit(opJf, -1, 0, 0))
			case ast.KeysetValueSet:
				vi, err := c.vsetRef(pd, ks.Ref)
				if err != nil {
					return err
				}
				a.emit(opLoad, selSlots[ki], 0, 0)
				a.emit(opVsMatch, vi, 0, 0)
				toNext = append(toNext, a.emit(opJf, -1, 0, 0))
			default:
				return cerr("unknown keyset kind")
			}
		}
		jumpTo(cs.Next)
		for _, j := range toNext {
			a.code[j].a = int32(len(a.code))
		}
	}
	jumpTo("reject")
	return nil
}

func (c *compiler) vsetRef(pd *ast.ParserDecl, ref string) (int32, error) {
	q := pd.Name + "." + ref
	if i, ok := c.img.vsetIdx[q]; ok {
		return int32(i), nil
	}
	i := len(c.img.vsets)
	c.img.vsetIdx[q] = i
	c.img.vsets = append(c.img.vsets, buildVset(q, c.cfg))
	return int32(i), nil
}

// ---------------------------------------------------------------------------
// Controls

func (c *compiler) compileControl(cd *ast.ControlDecl) error {
	a := c.asm
	a.emit(opCtlBegin, 0, 0, 0)
	c.control = cd
	c.exitFix = c.exitFix[:0]
	c.tblFix = c.tblFix[:0]
	c.pushScope()
	defer func() { c.popScope(); c.control = nil }()
	for _, v := range cd.Locals {
		if err := c.compileVarDecl(v); err != nil {
			return err
		}
	}
	for _, r := range cd.Registers {
		q := cd.Name + "." + r.Name
		ri, ok := c.img.regIdx[q]
		if !ok {
			t := c.cc.info.Resolve(r.Elem)
			ri = len(c.img.regs)
			fill := sym.BV{W: uint16(t.Width)}
			if c.cfg != nil {
				if f, got := c.cfg.RegisterFill(q); got {
					fill = f
				}
			}
			c.img.regs = append(c.img.regs, regTemplate{qname: q, size: r.Size, width: uint16(t.Width), fill: fill})
			c.img.regIdx[q] = ri
		}
		c.bind(r.Name, binding{kind: bindRegister, reg: int32(ri)})
	}
	if err := c.compileStmt(cd.Apply); err != nil {
		return err
	}
	end := int32(len(a.code))
	for _, i := range c.exitFix {
		a.code[i].a = end
	}
	for _, i := range c.tblFix {
		a.code[i].c = end
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (c *compiler) compileStmt(s ast.Stmt) error {
	a := c.asm
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, inner := range s.Stmts {
			if err := c.compileStmt(inner); err != nil {
				c.popScope()
				return err
			}
		}
		c.popScope()
		return nil
	case *ast.VarDecl:
		return c.compileVarDecl(s)
	case *ast.AssignStmt:
		v, err := c.expr(s.RHS)
		if err != nil {
			return err
		}
		path, err := c.lvalPath(s.LHS)
		if err != nil {
			return err
		}
		slot, ok := c.cc.slot(path)
		if !ok {
			return cerr("assignment to unknown location %s", path)
		}
		if v.c {
			a.emit(opStoreC, slot, a.constIdx(v.k), 0)
		} else {
			a.emit(opStore, slot, 0, 0)
		}
		return nil
	case *ast.IfStmt:
		return c.compileIf(s)
	case *ast.CallStmt:
		return c.compileCall(s.Call)
	case *ast.ExitStmt:
		if c.inBlock {
			a.emit(opExitBlk, 0, 0, 0)
			return nil
		}
		if c.control == nil {
			return cerr("exit outside a control")
		}
		c.exitFix = append(c.exitFix, a.emit(opExit, -1, 0, 0))
		return nil
	default:
		return cerr("unsupported statement %T", s)
	}
}

func (c *compiler) compileVarDecl(v *ast.VarDecl) error {
	a := c.asm
	t := c.cc.info.Resolve(v.Type)
	key := localKey(v)
	slot, ok := c.cc.slot(key)
	if !ok {
		return cerr("internal: local %s not pre-allocated", key)
	}
	var iv cv
	if v.Init != nil {
		var err error
		if iv, err = c.expr(v.Init); err != nil {
			return err
		}
	} else if t.Kind == typecheck.KBool {
		iv = constCV(sym.Bool(false))
	} else {
		iv = constCV(sym.BV{W: uint16(t.Width)})
	}
	if iv.c {
		a.emit(opStoreC, slot, a.constIdx(iv.k), 0)
	} else {
		a.emit(opStore, slot, 0, 0)
	}
	c.bind(v.Name, binding{kind: bindPath, path: key})
	return nil
}

// hitForm matches `t.apply().hit`, the one side-effecting condition.
func hitForm(e ast.Expr) *ast.Member {
	m, ok := e.(*ast.Member)
	if !ok || m.Name != "hit" {
		return nil
	}
	call, ok := m.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	inner, ok := call.Fun.(*ast.Member)
	if !ok || inner.Name != "apply" {
		return nil
	}
	return inner
}

func (c *compiler) compileIf(s *ast.IfStmt) error {
	a := c.asm
	if inner := hitForm(s.Cond); inner != nil {
		if err := c.tableApply(inner, true); err != nil {
			return err
		}
	} else {
		v, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if v.c {
			if v.k.IsTrue() {
				return c.compileStmt(s.Then)
			}
			if s.Else != nil {
				return c.compileStmt(s.Else)
			}
			return nil
		}
	}
	jf := a.emit(opJf, -1, 0, 0)
	if err := c.compileStmt(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		a.code[jf].a = int32(len(a.code))
		return nil
	}
	jend := a.emit(opJmp, -1, 0, 0)
	a.code[jf].a = int32(len(a.code))
	if err := c.compileStmt(s.Else); err != nil {
		return err
	}
	a.code[jend].a = int32(len(a.code))
	return nil
}

// ---------------------------------------------------------------------------
// Calls

func (c *compiler) compileCall(call *ast.CallExpr) error {
	a := c.asm
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "mark_to_drop":
			if len(call.Args) != 1 {
				return cerr("mark_to_drop takes one argument")
			}
			path, err := c.lvalPath(call.Args[0])
			if err != nil {
				return err
			}
			slot, ok := c.cc.slot(path + ".drop")
			if !ok {
				return cerr("internal: drop slot for %s not pre-allocated", path)
			}
			a.emit(opStoreC, slot, a.constIdx(sym.NewBV(1, 1)), 0)
			return nil
		case "count":
			return nil
		default:
			if c.control == nil {
				return cerr("unknown function %s", fun.Name)
			}
			act := c.control.Action(fun.Name)
			if act == nil {
				return cerr("unknown function %s", fun.Name)
			}
			pos := call.Pos().String()
			args := make([]argVal, len(call.Args))
			for i, aE := range call.Args {
				v, err := c.expr(aE)
				if err != nil {
					return err
				}
				if v.c {
					args[i] = argVal{c: true, k: v.k}
					continue
				}
				slot, ok := c.cc.slot(argKey(pos, i))
				if !ok {
					return cerr("internal: arg slot %s not pre-allocated", argKey(pos, i))
				}
				a.emit(opStore, slot, 0, 0)
				args[i] = argVal{slot: slot}
			}
			return c.inlineAction(act, args, pos)
		}
	case *ast.Member:
		switch fun.Name {
		case "apply":
			return c.tableApply(fun, false)
		case "setValid", "setInvalid":
			path, err := c.lvalPath(fun.X)
			if err != nil {
				return err
			}
			slot, ok := c.cc.slot(path + ".$valid")
			if !ok {
				return cerr("internal: valid slot for %s not pre-allocated", path)
			}
			a.emit(opStoreC, slot, a.constIdx(sym.Bool(fun.Name == "setValid")), 0)
			return nil
		case "extract":
			return c.compileExtract(call)
		case "read":
			ri, err := c.registerRef(fun.X)
			if err != nil {
				return err
			}
			idx, err := c.expr(call.Args[1])
			if err != nil {
				return err
			}
			dst, err := c.lvalPath(call.Args[0])
			if err != nil {
				return err
			}
			slot, ok := c.cc.slot(dst)
			if !ok {
				return cerr("register read into unknown location %s", dst)
			}
			c.mat(idx)
			a.emit(opRegRead, ri, slot, 0)
			return nil
		case "write":
			ri, err := c.registerRef(fun.X)
			if err != nil {
				return err
			}
			idx, err := c.expr(call.Args[0])
			if err != nil {
				return err
			}
			c.mat(idx)
			v, err := c.expr(call.Args[1])
			if err != nil {
				return err
			}
			c.mat(v)
			a.emit(opRegWrite, ri, 0, 0)
			return nil
		default:
			return cerr("unknown method %s", fun.Name)
		}
	default:
		return cerr("invalid call")
	}
}

func (c *compiler) compileExtract(call *ast.CallExpr) error {
	if c.inBlock {
		return cerr("extract inside a table action")
	}
	if len(call.Args) != 1 {
		return cerr("extract takes one argument")
	}
	path, err := c.lvalPath(call.Args[0])
	if err != nil {
		return err
	}
	ht := c.cc.info.TypeOf(call.Args[0])
	h := c.cc.prog.Header(ht.Name)
	if h == nil {
		return cerr("extract of non-header %s", path)
	}
	d := extractDesc{inParser: c.control == nil}
	for _, f := range h.Fields {
		ft := c.cc.info.Resolve(f.Type)
		slot, ok := c.cc.slot(path + "." + f.Name)
		if !ok {
			return cerr("extract into unknown field %s.%s", path, f.Name)
		}
		d.fields = append(d.fields, fieldRef{slot: slot, w: uint16(ft.Width)})
	}
	vs, ok := c.cc.slot(path + ".$valid")
	if !ok {
		return cerr("extract target %s has no valid slot", path)
	}
	d.validSlot = vs
	di := len(c.img.extracts)
	c.img.extracts = append(c.img.extracts, d)
	c.asm.emit(opExtractHdr, int32(di), 0, 0)
	return nil
}

func (c *compiler) registerRef(e ast.Expr) (int32, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, cerr("register reference must be an identifier")
	}
	b, found := c.lookup(id.Name)
	if !found || b.kind != bindRegister {
		return 0, cerr("%s is not a register", id.Name)
	}
	if c.img != nil {
		if rt := c.img.regs[b.reg]; rt.size <= 0 {
			return 0, cerr("register %s has no cells", id.Name)
		}
	}
	return b.reg, nil
}

// inlineAction flattens an action call: constant arguments bind as
// compile-time constants (so entry-bound parameters fold through the
// body), dynamic arguments read from their spill slots.
func (c *compiler) inlineAction(act *ast.Action, args []argVal, pos string) error {
	if len(args) != len(act.Params) {
		return cerr("action %s called with %d args, wants %d", act.Name, len(args), len(act.Params))
	}
	c.pushScope()
	defer c.popScope()
	for i, p := range act.Params {
		if args[i].c {
			c.bind(p.Name, binding{kind: bindConst, k: args[i].k})
		} else {
			c.bind(p.Name, binding{kind: bindVal, slot: args[i].slot})
		}
	}
	return c.compileStmt(act.Body)
}
