package dpexec_test

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dpexec"
	"repro/internal/sym"
)

// BenchmarkExec isolates the per-packet cost of the bytecode executor
// on a configured router: parse + lookup + TTL rewrite + deparse.
// The steady state must stay at 0 allocs/op.
func BenchmarkExec(b *testing.B) {
	s, err := core.NewFromSource("router", routerSrc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		d := s.Apply(&controlplane.Update{
			Kind: controlplane.InsertEntry, Table: "Ingress.route",
			Entry: &controlplane.TableEntry{
				Matches: []controlplane.FieldMatch{{
					Kind:      controlplane.MatchLPM,
					Value:     sym.NewBV(32, uint64(0x0a000000+i<<16)),
					PrefixLen: 16,
				}},
				Action: "fwd", Params: []sym.BV{sym.NewBV(9, uint64(i+1))},
			},
		})
		if d.Kind == core.Rejected {
			b.Fatal(d.Err)
		}
	}
	img, err := dpexec.Compile(s.Prog, s.Info, s.Cfg)
	if err != nil {
		b.Fatal(err)
	}
	pkt := ipv4Packet(0x020000000001, 64, 0x0a030405)
	m := dpexec.NewMachine()
	if _, err := m.Run(img, pkt, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(img, pkt, 1); err != nil {
			b.Fatal(err)
		}
	}
}
